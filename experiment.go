package shift

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnknownExperiment is returned (wrapped, with the offending name)
// by RunExperiment for a name not in Experiments(); match it with
// errors.Is — shiftd uses it to answer 404 instead of 500.
var ErrUnknownExperiment = errors.New("unknown experiment")

// This file is the by-name experiment registry shared by cmd/shiftsim
// and cmd/shiftd: both front ends dispatch through RunExperiment, so a
// figure served over HTTP is byte-identical to the same figure printed
// by the CLI.

// experiment is one registry entry: the canonical name, an optional
// alias (the bare figure number), and the driver. Experiments() and
// RunExperiment both derive from the experiments table, so a new entry
// is automatically listable, dispatchable, and part of `-experiment
// all` — the two can never drift.
type experiment struct {
	name, alias string
	run         func(Options) (string, error)
}

// experiments holds every runnable experiment in the order
// `shiftsim -experiment all` runs them.
var experiments = []experiment{
	{"tableI", "", func(Options) (string, error) { return TableI(), nil }},
	{"storage", "", func(Options) (string, error) { return RunStorageReport().String(), nil }},
	{"fig1", "1", func(o Options) (string, error) { return render(RunFigure1(o)) }},
	{"fig2", "2", func(o Options) (string, error) {
		pd, err := RunPerfDensity(o)
		if err != nil {
			return "", err
		}
		return pd.Figure2(), nil
	}},
	{"fig3", "3", func(o Options) (string, error) { return render(RunFigure3(o)) }},
	{"fig6", "6", func(o Options) (string, error) { return render(RunFigure6(o, nil)) }},
	{"fig7", "7", func(o Options) (string, error) { return render(RunFigure7(o)) }},
	{"fig8", "8", func(o Options) (string, error) { return render(RunFigure8(o)) }},
	{"fig9", "9", func(o Options) (string, error) { return render(RunFigure9(o)) }},
	{"fig10", "10", func(o Options) (string, error) { return render(RunFigure10(o)) }},
	{"pd", "", func(o Options) (string, error) { return render(RunPerfDensity(o)) }},
	{"power", "", func(o Options) (string, error) { return render(RunPowerStudy(o)) }},
	{"sensitivity", "", func(o Options) (string, error) { return render(RunSensitivity(o)) }},
	{"generator", "", func(o Options) (string, error) { return render(RunGeneratorStudy(o)) }},
}

// Experiments returns the names of every runnable experiment, in the
// order `shiftsim -experiment all` runs them.
func Experiments() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

// RunExperiment runs the named experiment driver and returns its
// rendered output. Names are matched case-insensitively and accept the
// bare figure number ("7" ≡ "fig7"). The output is a pure function of
// (name, Options): byte-identical run over run and across Parallelism
// settings.
func RunExperiment(name string, opts Options) (string, error) {
	for _, e := range experiments {
		if strings.EqualFold(name, e.name) || (e.alias != "" && name == e.alias) {
			return e.run(opts)
		}
	}
	return "", fmt.Errorf("%w %q", ErrUnknownExperiment, name)
}

// render stringifies a driver's figure unless the run failed. The error
// must be checked before calling String: on failure drivers return a
// typed nil pointer, which a plain fmt.Stringer nil-check cannot
// detect.
func render[T fmt.Stringer](v T, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// ParseDesign resolves a design point by its figure-legend name
// ("SHIFT", "PIF_32K", ...), matched case-insensitively.
func ParseDesign(name string) (Design, error) {
	for i, n := range designNames {
		if strings.EqualFold(name, n) {
			return Design(i), nil
		}
	}
	return 0, fmt.Errorf("unknown design %q (want one of %s)",
		name, strings.Join(designNames[:], ", "))
}

// ParseCoreType resolves a core microarchitecture by its paper name
// ("Lean-OoO", "Fat-OoO", "Lean-IO"), matched case-insensitively; the
// empty string resolves to the default LeanOoO.
func ParseCoreType(name string) (CoreType, error) {
	switch {
	case name == "" || strings.EqualFold(name, LeanOoO.String()):
		return LeanOoO, nil
	case strings.EqualFold(name, FatOoO.String()):
		return FatOoO, nil
	case strings.EqualFold(name, LeanIO.String()):
		return LeanIO, nil
	}
	return 0, fmt.Errorf("unknown core type %q (want %s, %s, or %s)",
		name, FatOoO, LeanOoO, LeanIO)
}
