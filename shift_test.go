package shift

import (
	"strings"
	"testing"
)

// tinyOptions keeps root-package tests fast: one small workload, 8 cores,
// short windows. Shapes (orderings) still hold at this scale.
func tinyOptions() Options {
	return Options{
		Workloads:      []string{"Web Search"},
		Cores:          8,
		CoreType:       LeanOoO,
		WarmupRecords:  12000,
		MeasureRecords: 12000,
		Seed:           1,
	}
}

func tinyConfig(d Design) Config {
	cfg := DefaultRunConfig("Web Search", d)
	cfg.Cores = 8
	cfg.WarmupRecords = 12000
	cfg.MeasureRecords = 12000
	return cfg
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 7 {
		t.Fatalf("got %d workloads, want 7", len(ws))
	}
	if ws[0] != "OLTP DB2" || ws[6] != "Web Search" {
		t.Errorf("unexpected workload list: %v", ws)
	}
}

func TestDesignAndCoreTypeNames(t *testing.T) {
	if DesignSHIFT.String() != "SHIFT" || DesignZeroLatSHIFT.String() != "ZeroLat-SHIFT" ||
		DesignPIF32K.String() != "PIF_32K" || DesignPIF2K.String() != "PIF_2K" ||
		DesignNextLine.String() != "NextLine" || DesignBaseline.String() != "Baseline" {
		t.Error("design names do not match the paper's figures")
	}
	if Design(99).String() == "" {
		t.Error("unknown design should format")
	}
	if LeanOoO.String() != "Lean-OoO" || FatOoO.String() != "Fat-OoO" || LeanIO.String() != "Lean-IO" {
		t.Error("core type names")
	}
	if len(FigureDesigns()) != 5 || len(AllCoreTypes()) != 3 {
		t.Error("comparison sets wrong size")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Workload: "nope", Design: DesignBaseline}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run(Config{Workload: "Web Search", Design: Design(42)}); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o, err := Options{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.Cores != 16 || len(o.Workloads) != 7 || o.MeasureRecords != 60000 {
		t.Errorf("defaults not filled: %+v", o)
	}
	if _, err := (Options{Workloads: []string{"zzz"}}).normalize(); err == nil {
		t.Error("bad workload accepted")
	}
	if _, err := (Options{Cores: 99}).normalize(); err == nil {
		t.Error("too many cores accepted")
	}
	if QuickOptions().MeasureRecords >= DefaultOptions().MeasureRecords {
		t.Error("QuickOptions should be smaller")
	}
}

func TestRunSHIFTBeatsBaseline(t *testing.T) {
	base, err := Run(tinyConfig(DesignBaseline))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Run(tinyConfig(DesignSHIFT))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Throughput <= base.Throughput {
		t.Errorf("SHIFT %.3f <= baseline %.3f", sh.Throughput, base.Throughput)
	}
	if sh.CoveredByPrefetch == 0 || sh.Traffic.HistRead == 0 {
		t.Error("SHIFT produced no coverage or history traffic")
	}
	if base.MPKI <= 0 || base.FetchStallFraction <= 0 {
		t.Errorf("baseline stats: MPKI=%v stall=%v", base.MPKI, base.FetchStallFraction)
	}
}

func TestFigure1(t *testing.T) {
	fig, err := RunFigure1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	row := fig.Speedup["Web Search"]
	if len(row) != 11 || row[0] != 1.0 {
		t.Fatalf("row = %v", row)
	}
	// Monotone-ish increase; final point must clearly beat the first.
	if row[10] <= 1.05 {
		t.Errorf("perfect-I speedup %v too small", row[10])
	}
	if fig.PerfectGeoMean() != fig.GeoMean[10] {
		t.Error("PerfectGeoMean mismatch")
	}
	if !strings.Contains(fig.String(), "Figure 1") {
		t.Error("String output")
	}
}

func TestFigure3(t *testing.T) {
	fig, err := RunFigure3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := fig.Commonality["Web Search"]
	if v < 80 || v > 100 {
		t.Errorf("commonality = %v%%, want high (paper >90%%)", v)
	}
	if fig.Mean() != v {
		t.Error("Mean over one workload should equal it")
	}
	if !strings.Contains(fig.String(), "Figure 3") {
		t.Error("String output")
	}
}

func TestFigure6(t *testing.T) {
	fig, err := RunFigure6(tinyOptions(), []int{2048, 32768})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.SHIFT) != 2 || len(fig.PIF) != 2 {
		t.Fatalf("curve lengths: %d/%d", len(fig.SHIFT), len(fig.PIF))
	}
	// Coverage grows with history size, and SHIFT dominates PIF at equal
	// aggregate size (the figure's headline claim).
	if fig.SHIFT[1] <= fig.SHIFT[0] {
		t.Errorf("SHIFT coverage not increasing: %v", fig.SHIFT)
	}
	if !fig.SHIFTAlwaysAbovePIF() {
		t.Errorf("SHIFT %v not above PIF %v", fig.SHIFT, fig.PIF)
	}
	if !strings.Contains(fig.String(), "Figure 6") {
		t.Error("String output")
	}
}

func TestFigure7(t *testing.T) {
	fig, err := RunFigure7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("got %d rows", len(fig.Rows))
	}
	if fig.MeanCovered(DesignPIF32K) <= fig.MeanCovered(DesignPIF2K) {
		t.Errorf("PIF_32K covered %.1f <= PIF_2K %.1f",
			fig.MeanCovered(DesignPIF32K), fig.MeanCovered(DesignPIF2K))
	}
	if fig.MeanCovered(DesignSHIFT) <= fig.MeanCovered(DesignPIF2K) {
		t.Errorf("SHIFT covered %.1f <= PIF_2K %.1f",
			fig.MeanCovered(DesignSHIFT), fig.MeanCovered(DesignPIF2K))
	}
	for _, r := range fig.Rows {
		if r.Covered < 0 || r.Uncovered < 0 || r.Overpredicted < 0 {
			t.Errorf("negative bar: %+v", r)
		}
	}
	if !strings.Contains(fig.String(), "Figure 7") {
		t.Error("String output")
	}
}

func TestFigure8(t *testing.T) {
	fig, err := RunFigure8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	geo := fig.Geo
	// The paper's ordering: NextLine < PIF_2K < SHIFT <= ZeroLat <= PIF_32K.
	if !(geo["NextLine"] < geo["PIF_32K"]) {
		t.Errorf("NextLine %v !< PIF_32K %v", geo["NextLine"], geo["PIF_32K"])
	}
	if !(geo["PIF_2K"] < geo["SHIFT"]) {
		t.Errorf("PIF_2K %v !< SHIFT %v", geo["PIF_2K"], geo["SHIFT"])
	}
	if geo["SHIFT"] > geo["ZeroLat-SHIFT"]*1.02 {
		t.Errorf("SHIFT %v implausibly above ZeroLat %v", geo["SHIFT"], geo["ZeroLat-SHIFT"])
	}
	if r := fig.SHIFTRetainsPIFBenefit(); r < 0.5 {
		t.Errorf("SHIFT retains only %.0f%% of PIF benefit", r*100)
	}
	if fig.MaxSHIFTSpeedup() < 1 {
		t.Error("MaxSHIFTSpeedup < 1")
	}
	if !strings.Contains(fig.String(), "Figure 8") {
		t.Error("String output")
	}
}

func TestFigure9(t *testing.T) {
	fig, err := RunFigure9(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 1 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	r := fig.Rows[0]
	if r.LogRead <= 0 || r.LogWrite <= 0 || r.IndexUpdate <= 0 {
		t.Errorf("missing traffic components: %+v", r)
	}
	if r.Total() <= 0 || r.Total() > 60 {
		t.Errorf("total traffic increase %.1f%% implausible", r.Total())
	}
	name, worst := fig.WorstTotal()
	if name != "Web Search" || worst != r.Total() {
		t.Error("WorstTotal wrong")
	}
	if !strings.Contains(fig.String(), "Figure 9") {
		t.Error("String output")
	}
}

func TestFigure10(t *testing.T) {
	o := tinyOptions()
	o.Workloads = nil // consolidation uses its own fixed set
	fig, err := RunFigure10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Workloads) != 4 {
		t.Fatalf("workloads = %v", fig.Workloads)
	}
	if fig.Geo["SHIFT"] <= 1 {
		t.Errorf("consolidated SHIFT geo speedup %v <= 1", fig.Geo["SHIFT"])
	}
	if frac := fig.SHIFTvsPIF32KAbsolute(); frac < 0.85 || frac > 1.1 {
		t.Errorf("SHIFT/PIF_32K absolute = %v, want ~0.95", frac)
	}
	if !strings.Contains(fig.String(), "Figure 10") {
		t.Error("String output")
	}
}

func TestFigure10RejectsTooFewCores(t *testing.T) {
	o := tinyOptions()
	o.Cores = 2
	if _, err := RunFigure10(o); err == nil {
		t.Error("2 cores for 4 workloads accepted")
	}
}

func TestPerfDensity(t *testing.T) {
	pd, err := RunPerfDensity(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Points) != 9 {
		t.Fatalf("points = %d, want 9", len(pd.Points))
	}
	// SHIFT's PD advantage over PIF_32K must grow as cores get leaner
	// (the paper's 2% / 16% / 59% trend).
	fat := pd.SHIFTPDGainOver(DesignPIF32K, FatOoO)
	lean := pd.SHIFTPDGainOver(DesignPIF32K, LeanOoO)
	io := pd.SHIFTPDGainOver(DesignPIF32K, LeanIO)
	if !(fat < lean && lean < io) {
		t.Errorf("PD gains not increasing with leanness: %.3f %.3f %.3f", fat, lean, io)
	}
	if io <= 0.2 {
		t.Errorf("Lean-IO PD gain %.2f too small (paper: 59%%)", io)
	}
	// PIF_32K on Lean-IO must lose PD (Figure 2's key point).
	if p := pd.Point(LeanIO, DesignPIF32K); p == nil || p.PD >= 1 {
		t.Errorf("PIF_32K on Lean-IO should lose PD, got %+v", p)
	}
	if pd.Point(LeanOoO, Design(42)) != nil {
		t.Error("unknown point should be nil")
	}
	if !strings.Contains(pd.Figure2(), "Figure 2") || !strings.Contains(pd.String(), "5.6") {
		t.Error("String outputs")
	}
}

func TestPowerStudy(t *testing.T) {
	p, err := RunPowerStudy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 1 || p.Rows[0].ExtraMW <= 0 {
		t.Fatalf("rows = %+v", p.Rows)
	}
	if !p.UnderPaperBudget() {
		t.Errorf("power %.1f mW exceeds the paper's 150mW", p.MaxMW)
	}
	if !strings.Contains(p.String(), "5.7") {
		t.Error("String output")
	}
}

func TestStorageReport(t *testing.T) {
	r := RunStorageReport()
	if r.PIF32KPerCoreKB < 210 || r.PIF32KPerCoreKB > 216 {
		t.Errorf("PIF storage = %.1fKB, want ~213", r.PIF32KPerCoreKB)
	}
	if r.SHIFTHistoryLines != 2731 {
		t.Errorf("history lines = %d, want 2731", r.SHIFTHistoryLines)
	}
	if r.SHIFTIndexKB != 240 {
		t.Errorf("index = %vKB, want 240", r.SHIFTIndexKB)
	}
	if r.AreaRatio < 13 || r.AreaRatio > 16 {
		t.Errorf("area ratio = %.1f, want ~14-15x", r.AreaRatio)
	}
	if r.VirtualizedPIFMB < 2.5 || r.VirtualizedPIFMB > 2.9 {
		t.Errorf("virtualized PIF = %.2fMB, want ~2.7", r.VirtualizedPIFMB)
	}
	if !strings.Contains(r.String(), "14") {
		t.Error("String output")
	}
}

func TestSensitivity(t *testing.T) {
	s, err := RunSensitivity(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 14 {
		t.Fatalf("points = %d, want 14", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Speedup <= 0.8 || p.Speedup > 3 {
			t.Errorf("%s=%d speedup %v implausible", p.Parameter, p.Value, p.Speedup)
		}
	}
	if v, _ := s.Best("lookahead"); v == 0 {
		t.Error("no best lookahead found")
	}
	if !strings.Contains(s.String(), "sensitivity") {
		t.Error("String output")
	}
}

func TestTableI(t *testing.T) {
	s := TableI()
	for _, want := range []string{"Lean-OoO", "32KB", "OLTP Oracle", "45ns", "gShare"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestGeneratorStudy(t *testing.T) {
	g, err := RunGeneratorStudy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Points) < 3 {
		t.Fatalf("points = %d", len(g.Points))
	}
	// Section 6.1: no sensitivity to the generator choice — allow a small
	// spread at test scale.
	if g.Spread > 0.08 {
		t.Errorf("speedup spread %.1f%% too large (paper: none)", g.Spread*100)
	}
	for _, p := range g.Points {
		if p.Speedup <= 1 {
			t.Errorf("generator %d: speedup %v <= 1", p.GeneratorCore, p.Speedup)
		}
	}
	if !strings.Contains(g.String(), "6.1") {
		t.Error("String output")
	}
}

func TestTIFSDesign(t *testing.T) {
	base, err := Run(tinyConfig(DesignBaseline))
	if err != nil {
		t.Fatal(err)
	}
	tf, err := Run(tinyConfig(DesignTIFS))
	if err != nil {
		t.Fatal(err)
	}
	p32, err := Run(tinyConfig(DesignPIF32K))
	if err != nil {
		t.Fatal(err)
	}
	if DesignTIFS.String() != "TIFS" {
		t.Error("TIFS name")
	}
	if tf.Throughput <= base.Throughput {
		t.Errorf("TIFS %.3f <= baseline %.3f", tf.Throughput, base.Throughput)
	}
	// The access-vs-miss-stream result of Section 2.2: recording full
	// access streams (PIF) beats recording miss streams (TIFS) at equal
	// history capacity, because miss streams depend on cache content.
	if tf.Throughput >= p32.Throughput {
		t.Errorf("TIFS %.3f >= PIF_32K %.3f; access streams should win",
			tf.Throughput, p32.Throughput)
	}
}
