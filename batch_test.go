package shift

import (
	"reflect"
	"strings"
	"testing"
)

// TestStreamKey pins the stream partition: designs, seeds, modes, and
// history sizes share a stream; workloads, core counts, and window
// lengths split it. Zero and default window/core values must coincide
// (the key normalizes exactly like Config.spec).
func TestStreamKey(t *testing.T) {
	base := DefaultRunConfig("Web Search", DesignSHIFT)
	same := []func(*Config){
		func(c *Config) { c.Design = DesignBaseline },
		func(c *Config) { c.Seed = 99 },
		func(c *Config) { c.CoreType = LeanIO },
		func(c *Config) { c.HistEntries = 2048 },
		func(c *Config) { c.PredictionOnly = true },
		func(c *Config) { c.CommonalityMode = true },
		func(c *Config) { c.ElimProb = 0.5 },
	}
	for i, mut := range same {
		c := base
		mut(&c)
		if c.StreamKey() != base.StreamKey() {
			t.Errorf("stream-preserving mutation %d changed the key", i)
		}
	}
	diff := []func(*Config){
		func(c *Config) { c.Workload = "OLTP Oracle" },
		func(c *Config) { c.Cores = 8 },
		func(c *Config) { c.WarmupRecords = 1000 },
		func(c *Config) { c.MeasureRecords = 1000 },
	}
	for i, mut := range diff {
		c := base
		mut(&c)
		if c.StreamKey() == base.StreamKey() {
			t.Errorf("stream-changing mutation %d kept the key", i)
		}
	}
	// Defaults: zero values normalize to the explicit defaults.
	zero := Config{Workload: "Web Search", Design: DesignSHIFT}
	if zero.StreamKey() != base.StreamKey() {
		t.Error("zero-value windows do not normalize to the default stream key")
	}
}

// TestRunBatchMatchesRun is the public batched ≡ unbatched
// differential: one batch holding every design point of a workload must
// return results bit-identical to per-cell Run.
func TestRunBatchMatchesRun(t *testing.T) {
	o := engineTestOptions()
	designs := []Design{DesignBaseline, DesignNextLine, DesignPIF2K, DesignPIF32K,
		DesignZeroLatSHIFT, DesignSHIFT, DesignTIFS}
	cfgs := make([]Config, len(designs))
	for i, d := range designs {
		cfgs[i] = o.config("Web Search", d)
	}
	batched, err := RunBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		solo, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("%s: batched result differs from Run", designs[i])
		}
	}
}

// TestRunBatchRejectsMixedStreams asserts mismatched StreamKeys fail
// with the offending index named.
func TestRunBatchRejectsMixedStreams(t *testing.T) {
	o := engineTestOptions()
	cfgs := []Config{
		o.config("Web Search", DesignBaseline),
		o.config("OLTP Oracle", DesignBaseline),
	}
	if _, err := RunBatch(cfgs); err == nil {
		t.Fatal("mixed-stream batch accepted")
	} else if !strings.Contains(err.Error(), "1") {
		t.Errorf("error does not name the mismatched spec: %v", err)
	}
	bad := []Config{o.config("Web Search", DesignBaseline), o.config("Web Search", Design(99))}
	if _, err := RunBatch(bad); err == nil {
		t.Fatal("unknown design accepted in batch")
	}
}

// TestEngineBatchesStreams checks the engine's batch scheduling and its
// observability: a Figure-7-shaped grid is executed as one batch per
// workload, the counters record it, and the output matches both the
// unbatched engine and the parallel batched engine bit for bit.
func TestEngineBatchesStreams(t *testing.T) {
	o := engineTestOptions()
	var cells []Cell
	for _, w := range o.Workloads {
		for _, d := range []Design{DesignBaseline, DesignPIF2K, DesignPIF32K, DesignSHIFT} {
			cells = append(cells, cell(o.config(w, d)))
		}
	}

	batchedEng := NewEngine(1, nil)
	batched, err := batchedEng.RunAll(cells)
	if err != nil {
		t.Fatal(err)
	}
	st := batchedEng.Stats()
	if st.Batched != int64(len(cells)) {
		t.Errorf("Batched = %d, want %d", st.Batched, len(cells))
	}
	wantShared := int64(len(cells) - len(o.Workloads)) // K-1 per workload batch
	if st.StreamsShared != wantShared {
		t.Errorf("StreamsShared = %d, want %d", st.StreamsShared, wantShared)
	}
	if st.Simulated != int64(len(cells)) {
		t.Errorf("Simulated = %d, want %d", st.Simulated, len(cells))
	}

	unbatchedEng := NewEngine(1, nil)
	unbatchedEng.noBatch = true
	unbatched, err := unbatchedEng.RunAll(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, unbatched) {
		t.Error("batched engine output differs from unbatched")
	}
	ust := unbatchedEng.Stats()
	if ust.Batched != 0 || ust.StreamsShared != 0 {
		t.Errorf("unbatched engine recorded batching: %+v", ust)
	}

	parallelEng := NewEngine(4, nil)
	parallel, err := parallelEng.RunAll(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched, parallel) {
		t.Error("parallel batched output differs from serial batched")
	}
}

// TestOptionsDisableBatching checks the user-facing switch: figure
// output is identical with batching forced off.
func TestOptionsDisableBatching(t *testing.T) {
	on := engineTestOptions()
	off := engineTestOptions()
	off.DisableBatching = true
	a, err := RunFigure7(on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure7(off)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("DisableBatching changed Figure 7 output")
	}
}

// TestEngineBatchErrorDeterminism places failing cells inside and
// across would-be batches and checks the lowest-index-cell error
// contract holds regardless of parallelism or batching.
func TestEngineBatchErrorDeterminism(t *testing.T) {
	o := engineTestOptions()
	badA := o.config("Web Search", Design(99)) // fails spec conversion
	badB := o.config("Web Search", Design(98))
	grids := map[string][]Cell{
		"within batch": {
			cell(o.config("Web Search", DesignBaseline)),
			cell(badA),
			cell(badB),
			cell(o.config("Web Search", DesignNextLine)),
		},
		// The lowest-index failing cell (index 1) lives in the SECOND
		// batch (stream "OLTP Oracle" first appears at cell 1), while
		// the first batch fails later at cell 2 — the error selection
		// must not depend on batch scheduling or parallelism.
		"across batches": {
			cell(o.config("Web Search", DesignBaseline)),
			cell(o.config("OLTP Oracle", Design(97))),
			cell(badB),
			cell(o.config("OLTP Oracle", DesignBaseline)),
		},
	}
	for name, cells := range grids {
		var errs []string
		for _, par := range []int{1, 4} {
			e := NewEngine(par, nil)
			_, err := e.RunAll(cells)
			if err == nil {
				t.Fatalf("%s parallelism %d: bad design accepted", name, par)
			}
			errs = append(errs, err.Error())
		}
		if errs[0] != errs[1] {
			t.Errorf("%s: error differs by parallelism:\nserial:   %s\nparallel: %s", name, errs[0], errs[1])
		}
		want := "Design(99)"
		if name == "across batches" {
			want = "Design(97)"
		}
		if !strings.Contains(errs[0], want) {
			t.Errorf("%s: error does not reference the lowest failing cell (%s): %s", name, want, errs[0])
		}
	}
}
