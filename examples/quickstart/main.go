// Quickstart: run the no-prefetch baseline and SHIFT on one server
// workload and print the headline numbers (miss rate, fetch-stall
// fraction, miss coverage, speedup) — the smallest useful use of the
// public API.
package main

import (
	"fmt"
	"log"

	"shift"
)

func main() {
	const workloadName = "OLTP Oracle"

	baseCfg := shift.DefaultRunConfig(workloadName, shift.DesignBaseline)
	base, err := shift.Run(baseCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on 16 Lean-OoO cores (no prefetching):\n", workloadName)
	fmt.Printf("  L1-I MPKI:            %.1f\n", base.MPKI)
	fmt.Printf("  fetch-stall fraction: %.0f%% of cycles\n", base.FetchStallFraction*100)
	fmt.Printf("  throughput:           %.2f aggregate IPC\n\n", base.Throughput)

	shiftCfg := shift.DefaultRunConfig(workloadName, shift.DesignSHIFT)
	res, err := shift.Run(shiftCfg)
	if err != nil {
		log.Fatal(err)
	}
	covered := float64(base.Misses-res.Misses) / float64(base.Misses) * 100
	fmt.Printf("with SHIFT (shared history embedded in the LLC):\n")
	fmt.Printf("  misses eliminated:    %.0f%%\n", covered)
	fmt.Printf("  history records:      %d written by the generator core\n", res.HistRecordsWritten)
	fmt.Printf("  LLC history traffic:  %d reads, %d writes\n",
		res.Traffic.HistRead, res.Traffic.HistWrite)
	fmt.Printf("  speedup:              %.2fx\n", res.Throughput/base.Throughput)
}
