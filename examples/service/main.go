// Service: drive a running shiftd instance from Go — the minimal HTTP
// client for the /v1 API. Start the server first:
//
//	go run ./cmd/shiftd -quick
//
// then run this client. It checks /v1/healthz, runs a baseline and a
// SHIFT cell through POST /v1/run, prints the speedup, and shows the
// server-side cache counters from /v1/stats — run it twice and the
// second pass is served entirely from the server's store.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"shift"
)

// runCell posts one cell to /v1/run and returns the decoded result.
func runCell(client *http.Client, base, workload, design string) (shift.RunResult, error) {
	body, err := json.Marshal(map[string]string{"workload": workload, "design": design})
	if err != nil {
		return shift.RunResult{}, err
	}
	resp, err := client.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return shift.RunResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return shift.RunResult{}, fmt.Errorf("POST /v1/run: %s: %s", resp.Status, msg)
	}
	var reply struct {
		Key    string          `json:"key"`
		Result shift.RunResult `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return shift.RunResult{}, err
	}
	fmt.Printf("  %-9s key=%s throughput=%.2f\n", design, reply.Key, reply.Result.Throughput)
	return reply.Result, nil
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "shiftd base URL")
	workload := flag.String("workload", "OLTP Oracle", "Table I workload")
	flag.Parse()
	client := &http.Client{Timeout: 10 * time.Minute}

	resp, err := client.Get(*addr + "/v1/healthz")
	if err != nil {
		log.Fatalf("is shiftd running? (go run ./cmd/shiftd -quick): %v", err)
	}
	resp.Body.Close()

	fmt.Printf("running %s on %s:\n", *workload, *addr)
	base, err := runCell(client, *addr, *workload, "Baseline")
	if err != nil {
		log.Fatal(err)
	}
	res, err := runCell(client, *addr, *workload, "SHIFT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SHIFT speedup: %.2fx\n\n", res.Throughput/base.Throughput)

	stats, err := client.Get(*addr + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer stats.Body.Close()
	fmt.Println("server stats:")
	io.Copy(os.Stdout, stats.Body)
}
