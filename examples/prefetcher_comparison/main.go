// Prefetcher comparison: sweep every design point of the paper's Figure 8
// on a chosen workload and print speedups, coverage, and traffic — the
// experiment a prefetcher designer would run first when evaluating SHIFT
// against per-core alternatives.
package main

import (
	"flag"
	"fmt"
	"log"

	"shift"
)

func main() {
	workloadName := flag.String("workload", "Web Frontend", "Table I workload")
	quick := flag.Bool("quick", false, "reduced run length")
	flag.Parse()

	cfg := shift.DefaultRunConfig(*workloadName, shift.DesignBaseline)
	if *quick {
		cfg.WarmupRecords, cfg.MeasureRecords = 20000, 20000
	}
	base, err := shift.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %8s %10s %10s %12s %12s\n",
		"Design", "Speedup", "Covered%", "Discards%", "PrefetchTraf", "HistTraf")
	fmt.Printf("%-14s %8.3f %10s %10s %12d %12s\n", "Baseline", 1.0, "-", "-",
		int64(0), "-")
	for _, d := range shift.FigureDesigns() {
		c := cfg
		c.Design = d
		res, err := shift.Run(c)
		if err != nil {
			log.Fatal(err)
		}
		covered := float64(base.Misses-res.Misses) / float64(base.Misses) * 100
		discards := float64(res.Discards) / float64(base.Misses) * 100
		hist := res.Traffic.HistRead + res.Traffic.HistWrite
		histStr := "-"
		if hist > 0 {
			histStr = fmt.Sprint(hist)
		}
		fmt.Printf("%-14s %8.3f %10.1f %10.1f %12d %12s\n",
			d, res.Throughput/base.Throughput, covered, discards,
			res.Traffic.PrefetchFill, histStr)
	}
	fmt.Println("\n(paper's ordering: NextLine < PIF_2K < SHIFT <= ZeroLat-SHIFT <= PIF_32K,")
	fmt.Println(" with SHIFT retaining >90% of PIF_32K's benefit at ~14x less storage)")
}
