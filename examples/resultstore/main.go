// Resultstore: run a figure sweep against a disk-backed result store
// and resume it across processes. The first invocation simulates every
// cell and persists one JSON blob per cell under -dir; run the binary
// again and the whole sweep is served from disk — zero simulations,
// bit-identical output. Delete the directory to go cold again.
package main

import (
	"flag"
	"fmt"
	"log"

	"shift"
)

func main() {
	dir := flag.String("dir", "shift-cache", "result store directory (persists across runs)")
	flag.Parse()

	store, err := shift.NewTieredStore(*dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store %q opens with %d cells\n", *dir, store.Len())

	// Route the sweep through an engine we hold on to, so we can ask it
	// afterwards how much work this process actually did.
	engine := shift.NewEngine(0, store)
	opts := shift.QuickOptions()
	opts.Workloads = []string{"OLTP Oracle", "Web Search"}
	opts.Engine = engine

	fig, err := shift.RunFigure8(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)

	st := engine.Stats()
	fmt.Printf("this process simulated %d cells (store: %d hits, %d misses, %d cells on disk)\n",
		st.Simulated, st.StoreHits, st.StoreMisses, st.StoreCells)
	if st.Simulated == 0 {
		fmt.Println("fully resumed from a previous process — nothing was re-simulated")
	} else {
		fmt.Println("run me again: the same sweep will simulate nothing")
	}
}
