// Consolidation: run four different server workloads side by side on one
// 16-core CMP (four cores each), with one LLC-embedded shared history per
// workload — the Section 4.3 / Figure 10 scenario. Demonstrates that
// SHIFT's benefit survives multi-tenancy because each workload gets its
// own history generator core and HBBase.
package main

import (
	"fmt"
	"log"

	"shift"
)

func main() {
	opts := shift.DefaultOptions()
	fig, err := shift.RunFigure10(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)

	fmt.Println("Per-workload detail (SHIFT vs dedicated-storage ZeroLat-SHIFT):")
	for _, w := range fig.Workloads {
		sh := fig.Speedup[w][shift.DesignSHIFT.String()]
		zl := fig.Speedup[w][shift.DesignZeroLatSHIFT.String()]
		fmt.Printf("  %-16s SHIFT %.3fx  ZeroLat %.3fx  (virtualization cost %.1f%%)\n",
			w, sh, zl, (zl/sh-1)*100)
	}
}
