// Cluster: a coordinator/worker sweep fabric in one process. Two
// workers execute whole stream-key batches and share one remote result
// store; a coordinator shards a Figure 7 sweep across them by workload
// affinity. The demo then kills a worker mid-cluster and shows batches
// re-routing to the survivor, and finally restarts against the shared
// store to re-serve the whole figure without simulating a cell — with
// every rendered figure byte-identical to a plain single-host run.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"shift"
	"shift/internal/cluster"
	"shift/internal/store"
)

// newWorker starts an HTTP worker whose engine persists results to the
// shared blob store at blobURL — the same wiring as shiftd -worker
// -store-url.
func newWorker(blobURL string) (*httptest.Server, *shift.Engine) {
	eng := shift.NewEngine(2, shift.NewTieredRemoteStore(blobURL, nil))
	w := cluster.NewWorker(eng)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", w.HandleBatch)
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	return httptest.NewServer(mux), eng
}

// options is a reduced-scale Figure 7 configuration so the demo runs
// in seconds.
func options(eng *shift.Engine) shift.Options {
	o := shift.QuickOptions()
	o.Workloads = []string{"OLTP Oracle", "Web Search"}
	o.Cores = 8
	o.WarmupRecords = 20000
	o.MeasureRecords = 20000
	o.Engine = eng
	return o
}

func main() {
	// The reference: the same sweep on a plain single-host engine.
	ref, err := shift.RunFigure7(options(shift.NewEngine(0, shift.NewResultCache())))
	if err != nil {
		log.Fatal(err)
	}
	refText := ref.String()

	// One shared result store, served over the blob wire protocol with
	// CRC footers intact — every worker verifies blobs end to end.
	blobSrv := httptest.NewServer(store.NewBlobHandler(store.NewMem()))
	defer blobSrv.Close()

	srv1, eng1 := newWorker(blobSrv.URL)
	srv2, eng2 := newWorker(blobSrv.URL)
	defer srv2.Close()

	// Round-robin guarantees the demo exercises both workers; the
	// default affinity policy instead pins each workload family to one
	// worker so its trace graphs and store entries stay hot there.
	coord, err := cluster.New(cluster.Config{Peers: []string{srv1.URL, srv2.URL}, Route: "round-robin"})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	coordEng := shift.NewEngine(0, shift.NewResultCache())
	coordEng.SetExecutor(coord)

	fig, err := shift.RunFigure7(options(coordEng))
	if err != nil {
		log.Fatal(err)
	}
	st := coord.Stats()
	fmt.Printf("pass 1: %d batches routed across 2 workers (worker simulations: %d + %d)\n",
		st.BatchesRouted, eng1.Stats().Simulated, eng2.Stats().Simulated)
	fmt.Printf("clustered figure byte-identical to single host: %v\n\n", fig.String() == refText)

	// Kill worker 1 without telling the coordinator. Its batches fail
	// at dispatch, re-route to the survivor, and the sweep still
	// completes; the health probe then demotes the dead worker so later
	// sweeps skip it entirely.
	srv1.Close()
	coordEng2 := shift.NewEngine(0, shift.NewResultCache())
	coordEng2.SetExecutor(coord)
	o := options(coordEng2)
	o.Workloads = []string{"OLTP DB2", "Web Frontend"} // fresh cells, not memoized
	fig2, err := shift.RunFigure7(o)
	if err != nil {
		log.Fatal(err)
	}
	st = coord.Stats()
	fmt.Printf("pass 2 (worker killed): %d re-routes, %d dispatch errors, figure still rendered %d rows\n",
		st.BatchesRerouted, st.DispatchErrors, len(fig2.Rows))
	coord.Probe()
	for _, m := range coord.Members() {
		fmt.Printf("  worker %s: %s\n", m.Addr, m.State)
	}

	// Restart: a brand-new worker and coordinator against the same
	// store re-serve the first figure without simulating anything.
	srv3, eng3 := newWorker(blobSrv.URL)
	defer srv3.Close()
	coord2, err := cluster.New(cluster.Config{Peers: []string{srv3.URL}})
	if err != nil {
		log.Fatal(err)
	}
	defer coord2.Close()
	coordEng3 := shift.NewEngine(0, shift.NewResultCache())
	coordEng3.SetExecutor(coord2)
	fig3, err := shift.RunFigure7(options(coordEng3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npass 3 (restarted cluster): simulated %d cells, byte-identical: %v\n",
		eng3.Stats().Simulated, fig3.String() == refText)
}
