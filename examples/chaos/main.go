// Chaos: corrupt a real result-store blob on disk and watch the store
// detect it, quarantine the bad bytes for inspection, and self-heal on
// the next write — with the figure output byte-identical throughout.
// The demo runs a small sweep twice around a deliberate corruption:
// the damaged cell costs one recomputation, never a wrong number.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"shift"
)

func main() {
	dir := flag.String("dir", "shift-chaos-cache", "result store directory (a blob in it will be corrupted)")
	flag.Parse()

	store, err := shift.NewTieredStore(*dir)
	if err != nil {
		log.Fatal(err)
	}
	engine := shift.NewEngine(0, store)
	opts := shift.QuickOptions()
	opts.Workloads = []string{"Web Search"}
	opts.Engine = engine

	// Pass 1: populate the store.
	before, err := shift.RunExperiment("fig8", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 1: %d cells on disk, %d quarantined\n\n", store.Len(), store.Quarantined())

	// Sabotage: flip one byte in the middle of every blob of one shard.
	// The CRC-32C footer written with each blob makes this detectable.
	corrupted := 0
	blobs, _ := filepath.Glob(filepath.Join(*dir, "??", "*.json"))
	for _, p := range blobs[:1] { // one victim is enough to tell the story
		b, err := os.ReadFile(p)
		if err != nil || len(b) == 0 {
			continue
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(p, b, 0o644); err == nil {
			corrupted++
			fmt.Printf("corrupted %s (flipped one byte)\n", p)
		}
	}
	if corrupted == 0 {
		log.Fatal("found no blob to corrupt")
	}

	// Pass 2 must be byte-identical: a fresh process opens the damaged
	// directory, the corrupt blob fails CRC verification on lookup, is
	// moved to <dir>/quarantine/, and the cell is recomputed and
	// rewritten (self-heal). Every healthy cell is served from disk.
	store2, err := shift.NewTieredStore(*dir)
	if err != nil {
		log.Fatal(err)
	}
	engine2 := shift.NewEngine(0, store2)
	opts.Engine = engine2
	after, err := shift.RunExperiment("fig8", opts)
	if err != nil {
		log.Fatal(err)
	}

	st := engine2.Stats()
	fmt.Printf("\npass 2: recomputed %d cell(s), quarantined %d, store errors %d\n",
		st.Simulated, store2.Quarantined(), store2.Errors())
	fmt.Printf("figure output byte-identical across the corruption: %t\n", before == after)
	q, _ := filepath.Glob(filepath.Join(*dir, "quarantine", "*.json"))
	fmt.Printf("quarantined bytes preserved for inspection: %v\n", q)

	// Pass 3 proves the self-heal: everything serves from disk again.
	store3, err := shift.NewTieredStore(*dir)
	if err != nil {
		log.Fatal(err)
	}
	engine3 := shift.NewEngine(0, store3)
	opts.Engine = engine3
	if _, err := shift.RunExperiment("fig8", opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npass 3: simulated %d cells — the corrupted key healed itself\n",
		engine3.Stats().Simulated)
}
