// Recovery: durable jobs surviving a crash. The demo wires a
// journal-backed job manager exactly as shiftd does under -state-dir,
// kills it SIGKILL-style mid-job — one cell completed and journaled,
// one in flight, one still queued, plus a half-written journal record
// on disk — and then reopens the same state directory. The journal
// replays: the completed cell restores from the result store without
// re-simulating, the unfinished cells re-run, and the recovered job's
// results are byte-identical to an uninterrupted run.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"shift"
	"shift/internal/jobs"
)

// cells is the job: three same-cost cells, so the single worker runs
// them in submission order.
func cells() []shift.Cell {
	mk := func(d shift.Design) shift.Cell {
		cfg := shift.DefaultRunConfig("Web Search", d)
		cfg.Cores = 4
		cfg.WarmupRecords = 8000
		cfg.MeasureRecords = 8000
		return shift.Cell{Label: "Web Search/" + d.String(), Config: cfg}
	}
	return []shift.Cell{mk(shift.DesignBaseline), mk(shift.DesignSHIFT), mk(shift.DesignTIFS)}
}

func main() {
	dir, err := os.MkdirTemp("", "shift-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "jobs.wal")

	// One result store shared across both "processes" — it stands in
	// for the durable -cache-dir tier that survives restarts for real.
	store := shift.NewResultCache()

	// The reference: the same three cells, uninterrupted.
	var ref []shift.RunResult
	for _, c := range cells() {
		r, err := shift.Run(c.Config)
		if err != nil {
			log.Fatal(err)
		}
		ref = append(ref, r)
	}

	// ---- process 1: accept the job, die mid-way ----------------------
	engine1 := shift.NewEngine(0, store)
	var calls atomic.Int32
	blocked := make(chan struct{}, 8)
	crash := make(chan struct{})
	journal1, err := jobs.OpenWAL(walPath)
	if err != nil {
		log.Fatal(err)
	}
	m1, err := jobs.Open(jobs.Config{
		Workers: 1,
		Journal: journal1,
		Lookup:  store.Lookup,
		// The first cell runs for real; later cells stall at a gate so
		// the crash lands with deterministic progress.
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			if calls.Add(1) > 1 {
				blocked <- struct{}{}
				<-crash
				return shift.RunResult{}, errors.New("process died mid-cell")
			}
			return engine1.RunOne(cfg)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	job, err := m1.Submit(cells())
	if err != nil {
		log.Fatal(err)
	}
	<-blocked // cell 0 finished and journaled; cell 1 in flight; cell 2 queued
	fmt.Printf("job %s accepted and journaled; crashing with %d/3 cells done\n",
		job.ID(), job.Snapshot().Completed)

	// kill -9: the journal's file handle vanishes with the process; the
	// in-flight cell dies unacknowledged.
	journal1.Close()
	close(crash)

	// The crash also interrupted an append: a length prefix promising
	// 64 bytes with only 10 behind it — a torn tail.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	var torn [14]byte
	binary.BigEndian.PutUint32(torn[:4], 64)
	f.Write(torn[:])
	f.Close()
	fmt.Printf("left a half-written journal record (%d bytes) behind\n\n", len(torn))

	// ---- process 2: replay the journal, finish the job ---------------
	engine2 := shift.NewEngine(0, store)
	journal2, err := jobs.OpenWAL(walPath)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := jobs.Open(jobs.Config{
		Workers: 2,
		Journal: journal2,
		Lookup:  store.Lookup,
		Run:     engine2.RunOne,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	fmt.Printf("journal replayed: %d job re-admitted, %d cell restored from the store, %d cells re-queued\n",
		rec.JobsRecovered, rec.CellsRestored, rec.CellsRequeued)
	fmt.Printf("torn tail discarded: %d record, %d bytes\n", rec.TailRecords, rec.TailBytes)

	recovered, ok := m2.Get(job.ID())
	if !ok {
		log.Fatalf("job %s lost across the restart", job.ID())
	}
	for !recovered.Snapshot().State.Terminal() {
		time.Sleep(10 * time.Millisecond)
	}
	st := recovered.Snapshot()
	fmt.Printf("\njob %s after recovery: %s, %d/%d cells\n", st.ID, st.State, st.Completed, st.Cells)

	// Determinism closes the loop: the recovered results are
	// byte-identical to the uninterrupted run, and only the two cells
	// the crash interrupted were ever simulated again.
	for i, r := range st.Results {
		got, _ := json.Marshal(r)
		want, _ := json.Marshal(ref[i])
		verdict := "byte-identical"
		if !bytes.Equal(got, want) {
			verdict = "MISMATCH"
		}
		fmt.Printf("  %-20s throughput=%.2f  %s\n", st.Labels[i], r.Throughput, verdict)
	}
	fmt.Printf("new process simulated %d cells (the stored one was restored, not re-run)\n",
		engine2.Stats().Simulated)
}
