// Spec: run a declarative workload spec through the library, then push
// the same spec through a running shiftd's async job API and confirm
// both paths produce the identical result — the determinism and
// content-addressing contract of workload specs, end to end.
//
// The library half always runs. For the service half, start the server
// first (matching scale so the cells are identical):
//
//	go run ./cmd/shiftd -quick
//
// then run this example; without a reachable server it prints the
// library results and skips the service comparison.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"shift"
)

func main() {
	// Compile and register the spec document. The returned ID embeds a
	// hash of the normalized content: equal documents give equal IDs.
	id, err := shift.LoadSpecFile("examples/spec/burst.yaml")
	if err != nil {
		var fe *shift.FieldError
		if errors.As(err, &fe) {
			log.Fatalf("spec rejected at field %q: %s", fe.Field, fe.Msg)
		}
		log.Fatal(err)
	}
	fmt.Printf("compiled %s\n", id)

	// Sweep designs over the spec exactly like a catalog workload: the
	// Figure 8 driver with the workload axis set to the spec ID.
	o := shift.QuickOptions()
	o.Workloads = []string{id}
	o.Cache = shift.NewResultCache()
	fig, err := shift.RunFigure8(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)

	// The same sweep through shiftd's async job API, submitted as inline
	// spec cells. Requires a server at :8080 started with -quick.
	doc, err := os.ReadFile("examples/spec/burst.yaml")
	if err != nil {
		log.Fatal(err)
	}
	if err := viaJobAPI(doc); err != nil {
		fmt.Printf("service half skipped: %v\n", err)
	}
}

// viaJobAPI submits Baseline and SHIFT cells for the spec through
// POST /v1/jobs, polls to completion, and prints the speedup.
func viaJobAPI(yamlDoc []byte) error {
	// The wire carries the spec as JSON; shiftd accepts the same content
	// either way, and identical content resolves to the identical
	// content-addressed ID the library half just ran.
	spec, err := yamlToJSON(yamlDoc)
	if err != nil {
		return err
	}
	body, err := json.Marshal(map[string]any{"cells": []map[string]any{
		{"spec": spec, "design": "Baseline"},
		{"spec": spec, "design": "SHIFT"},
	}})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Post("http://localhost:8080/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, msg)
	}
	var sub struct {
		StatusURL string `json:"status_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}

	for {
		st, err := jobStatus(client, "http://localhost:8080"+sub.StatusURL)
		if err != nil {
			return err
		}
		if st.State == "done" || st.State == "failed" {
			if len(st.Results) != 2 || st.Results[0] == nil || st.Results[1] == nil {
				return fmt.Errorf("job finished %s with incomplete results", st.State)
			}
			sp := st.Results[1].Result.Throughput / st.Results[0].Result.Throughput
			fmt.Printf("via job API: SHIFT speedup %.2fx (keys %s, %s)\n",
				sp, st.Results[0].Key, st.Results[1].Key)
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// jobStatus fetches and decodes one job status document.
func jobStatus(client *http.Client, url string) (*status, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// status is the subset of the job status document this example reads.
type status struct {
	State   string `json:"state"`
	Results []*struct {
		Key    string          `json:"key"`
		Result shift.RunResult `json:"result"`
	} `json:"results"`
}

// yamlToJSON converts the example's own spec document to the JSON value
// shape for the wire. The subset used here (block maps, sequences,
// scalars) keeps the conversion trivial; shiftd performs full parsing
// and validation server-side either way.
func yamlToJSON(doc []byte) (map[string]any, error) {
	// Rather than re-implement YAML here, lean on the library: compile
	// the document and ship its canonical JSON form, which is the exact
	// content the ID was derived from.
	id, err := shift.LoadSpec(doc)
	if err != nil {
		return nil, err
	}
	canonical, err := shift.SpecCanonical(id)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(canonical, &m); err != nil {
		return nil, err
	}
	return m, nil
}
