// Jobs: drive shiftd's asynchronous job API from Go. Start the server
// first:
//
//	go run ./cmd/shiftd -quick
//
// then run this client. It submits a small experiment grid as an async
// job (POST /v1/jobs → 202 + job id), follows the NDJSON event stream
// (GET /v1/jobs/{id}/stream) printing each cell result the moment it
// lands, and finally fetches the completed status document — whose
// "results" array is byte-identical to what the synchronous POST
// /v1/grid would have returned for the same cells.
//
// A 429 reply means the client's admission bucket is drained; the
// example honors the Retry-After header and resubmits, which is the
// intended client loop.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"shift"
)

// cell is the wire form of one grid cell (a subset of shiftd's
// cellSpec fields).
type cell struct {
	Label        string `json:"label,omitempty"`
	Workload     string `json:"workload"`
	Design       string `json:"design"`
	SamplePeriod int64  `json:"sample_period,omitempty"`
}

// submitted is the 202 reply of POST /v1/jobs.
type submitted struct {
	ID        string `json:"id"`
	Cells     int    `json:"cells"`
	StatusURL string `json:"status_url"`
	StreamURL string `json:"stream_url"`
}

// event is one NDJSON line of the job stream.
type event struct {
	Type   string           `json:"type"`
	Index  *int             `json:"index,omitempty"`
	Label  string           `json:"label,omitempty"`
	Result *shift.RunResult `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
	State  string           `json:"state,omitempty"`
}

// submit posts the job, retrying on 429 as Retry-After instructs.
func submit(client *http.Client, base string, cells []cell) (submitted, error) {
	body, err := json.Marshal(map[string]any{"cells": cells})
	if err != nil {
		return submitted{}, err
	}
	for {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return submitted{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			resp.Body.Close()
			if wait < 1 {
				wait = 1
			}
			fmt.Printf("admission bucket drained; retrying in %ds\n", wait)
			time.Sleep(time.Duration(wait) * time.Second)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			return submitted{}, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, msg)
		}
		var sub submitted
		err = json.NewDecoder(resp.Body).Decode(&sub)
		return sub, err
	}
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "shiftd base URL")
	workload := flag.String("workload", "Web Search", "Table I workload")
	flag.Parse()
	client := &http.Client{Timeout: 30 * time.Minute}

	if resp, err := client.Get(*addr + "/v1/healthz"); err != nil {
		log.Fatalf("is shiftd running? (go run ./cmd/shiftd -quick): %v", err)
	} else {
		resp.Body.Close()
	}

	// A mixed grid: the sampled probe cells are cheapest, so the
	// server's shortest-job-first queue streams them back first even
	// though they are listed last.
	cells := []cell{
		{Label: "exact/base", Workload: *workload, Design: "Baseline"},
		{Label: "exact/shift", Workload: *workload, Design: "SHIFT"},
		{Label: "probe/base", Workload: *workload, Design: "Baseline", SamplePeriod: 10},
		{Label: "probe/shift", Workload: *workload, Design: "SHIFT", SamplePeriod: 10},
	}
	sub, err := submit(client, *addr, cells)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s accepted (%d cells); streaming %s\n", sub.ID, sub.Cells, sub.StreamURL)

	stream, err := client.Get(*addr + sub.StreamURL)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "cell":
			if ev.Error != "" {
				fmt.Printf("  cell %d %-12s FAILED: %s\n", *ev.Index, ev.Label, ev.Error)
				continue
			}
			fmt.Printf("  cell %d %-12s throughput=%.2f sampled=%v\n",
				*ev.Index, ev.Label, ev.Result.Throughput, ev.Result.Sampled)
		case "end":
			fmt.Printf("job %s: %s\n", sub.ID, ev.State)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// The completed status document carries the full result array in
	// request order — identical to a synchronous /v1/grid reply.
	resp, err := client.Get(*addr + sub.StatusURL)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		State   string `json:"state"`
		Results []*struct {
			Label  string          `json:"label"`
			Result shift.RunResult `json:"result"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal state %s; results in request order:\n", status.State)
	for _, r := range status.Results {
		if r == nil {
			continue
		}
		fmt.Printf("  %-12s throughput=%.2f\n", r.Label, r.Result.Throughput)
	}
}
