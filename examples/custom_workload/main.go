// Custom workload: build a synthetic server workload from scratch with
// the internal workload model, inspect its trace properties, and measure
// how SHIFT's coverage responds as the instruction footprint grows — the
// workflow for studying a workload that is not in the Table I catalog.
//
// (Examples live inside the module, so they may import internal packages;
// external users would instead start from the shift.Workloads() catalog.)
package main

import (
	"fmt"
	"log"

	"shift/internal/core"
	"shift/internal/sim"
	"shift/internal/trace"
	"shift/internal/workload"
)

func main() {
	for _, footprintKB := range []int{256, 768, 1536, 3072} {
		p := workload.Params{
			Name: fmt.Sprintf("custom-%dKB", footprintKB), Seed: 42,
			FootprintBytes:   footprintKB * 1024,
			OSFootprintBytes: 64 * 1024,
			RequestTypes:     8, RequestZipf: 0.5,
			FuncBlocksMean: 5, CallDepth: 7, CallSiteDensity: 0.3,
			VaryProb: 0.04, SkipProb: 0.24, CoreBias: 0.04,
			TrapRate: 0.003, SchedProb: 0.25,
			LoopWeight: 0.4,
		}
		w, err := workload.New(p)
		if err != nil {
			log.Fatal(err)
		}
		st, err := trace.Measure(trace.Limit(w.NewCoreReader(0), 150000), 0)
		if err != nil {
			log.Fatal(err)
		}

		run := func(pf sim.PrefetcherSpec) sim.Result {
			cfg := sim.DefaultConfig()
			cfg.Prefetcher = pf
			res, err := sim.Run(sim.RunSpec{
				Config: cfg, Workload: p,
				WarmupRecords: 40000, MeasureRecords: 40000,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		base := run(sim.PrefetcherSpec{Kind: sim.KindNone})
		sh := run(sim.PrefetcherSpec{Kind: sim.KindSHIFT, SHIFT: core.DefaultConfig()})

		covered := float64(base.Fetch.Misses-sh.Fetch.Misses) / float64(base.Fetch.Misses) * 100
		fmt.Printf("footprint %4dKB: touched %4.0fKB, seq %4.1f%%, baseline MPKI %5.1f, "+
			"SHIFT covers %5.1f%% -> speedup %.3fx\n",
			footprintKB, float64(st.FootprintBytes())/1024, st.SeqFraction()*100,
			base.MPKI, covered, sh.Throughput/base.Throughput)
	}
	fmt.Println("\nLarger instruction working sets miss more and gain more from SHIFT —")
	fmt.Println("the paper's motivation for targeting server software stacks.")
}
