package shift

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"shift/internal/store"
)

// This file defines the result-storage subsystem consumed by the
// experiment engine: the ResultStore interface and its two persistent
// backends, DiskStore (one JSON blob per Config.Key under a
// content-addressed directory) and TieredStore (ResultCache over
// DiskStore, with a circuit breaker that degrades to memory-only when
// the disk tier is failing). The in-memory backend, ResultCache,
// predates the interface and lives in storage.go.

// ResultStore persists simulation results content-addressed by
// Config.Key. The engine treats a store strictly as a memo table:
// because the simulator is a pure function of its Config, a stored
// RunResult is bit-identical to re-running the cell, so serving from
// the store never changes experiment output — only how fast it arrives.
//
// Implementations must be safe for concurrent use by the engine's
// workers, and must degrade softly: a backend failure (unreadable file,
// corrupt blob, full disk) is reported as a miss or a dropped write,
// never an experiment error — but never silently: failures are counted
// (Errors), corrupt blobs are quarantined for inspection (Quarantined),
// and a failing disk tier trips a circuit breaker (StoreHealth) rather
// than being paid for on every cell. Three backends are provided:
// ResultCache (memory, dies with the process), DiskStore (survives
// restarts, shareable between processes), and TieredStore (memory speed
// over disk durability — the default for anything long-running).
type ResultStore interface {
	// Lookup returns the stored result for key, if any.
	Lookup(key string) (RunResult, bool)
	// Store persists a result under key, replacing any previous entry.
	Store(key string, r RunResult)
	// Len returns the number of stored cells.
	Len() int
	// Stats returns the cumulative Lookup hit/miss counts.
	Stats() (hits, misses int64)
}

// StoreHealth is a point-in-time snapshot of a persistent store's
// failure-handling state, consumed by shiftd's /v1/readyz, /v1/stats,
// and /v1/metrics. Stores without a failing-backend concept (the
// in-memory ResultCache) simply don't implement Health.
type StoreHealth struct {
	// Errors counts absorbed backend failures (IO, corruption, decode)
	// since creation. A healthy store reports zero; a growing count
	// means results are being recomputed instead of served.
	Errors int64
	// Quarantined counts corrupt blobs moved aside into the store's
	// quarantine directory — each was detected once, preserved for
	// inspection, and its key self-heals on the next write. Non-zero
	// means the directory deserves a look before being deleted.
	Quarantined int64
	// BreakerState is the disk-tier circuit breaker state ("closed",
	// "open", "half-open"), or empty for stores without a breaker.
	BreakerState string
	// BreakerTrips counts transitions into the open state.
	BreakerTrips int64
	// MemOnlyOps counts operations absorbed by the memory tier while
	// the breaker was open (lookups served as misses, writes not
	// persisted).
	MemOnlyOps int64
}

// HealthReporter is the optional ResultStore extension for stores that
// track failure-handling state; shiftd feeds it into /v1/readyz and
// /v1/metrics.
type HealthReporter interface {
	// Health returns the store's failure-handling snapshot.
	Health() StoreHealth
}

// DiskStore is the disk-backed ResultStore: one JSON-encoded RunResult
// per Config.Key under a content-addressed directory
// (<dir>/<key[:2]>/<key>.json). Writes are atomic (temp file + rename),
// so any number of processes may share one directory — concurrent
// writers of the same cell write identical bytes, and readers never
// observe a torn blob; a crash mid-write leaves only an invisible
// temporary file.
//
// Every blob is written with a CRC-32C integrity footer and verified on
// read; a blob that fails verification — or whose payload no longer
// decodes — is moved to <dir>/quarantine/ (preserved for inspection,
// counted by Quarantined) and the key self-heals on the next Store.
// Blobs written before integrity checking are read unverified, so
// existing directories stay valid. Transient IO errors are retried
// with jittered backoff before being absorbed; full-disk and
// permission errors fail fast. JSON keeps blobs greppable and
// editor-friendly, and round-trips every RunResult field exactly
// (encoding/json emits the shortest float64 representation that parses
// back to the same bits).
//
// A nil *DiskStore is a valid no-op store. IO and decode failures are
// absorbed as misses or dropped writes and counted by Errors.
type DiskStore struct {
	blobs                *store.Integrity
	base                 store.Blobs // raw footered tier (what BlobTier serves)
	disk                 *store.Disk // base layer; nil in fault-injected test stacks
	hits, misses, errors atomic.Int64
	lastLen              atomic.Int64
}

// NewDiskStore opens (creating if necessary) a disk store rooted at
// dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	disk, err := store.OpenDisk(dir)
	if err != nil {
		return nil, err
	}
	return newDiskStoreStack(disk, disk), nil
}

// NewRemoteStore returns a ResultStore whose blobs live on a cluster
// peer: reads and writes go to the peer's /v1/blobs routes (any shiftd
// with a blob tier serves them) through the same resilience stack as
// DiskStore — jittered retry below CRC-32C verification — so a blob
// corrupted on the remote disk, in the peer process, or on the wire
// fails the local CRC check exactly as a local bit-flip would, and the
// key self-heals on the next Store. A nil client selects a default
// with a 30-second timeout. baseURL is the peer's blob mount, e.g.
// "http://coordinator:8080/v1/blobs".
//
// Coordinator and workers pointed at one peer's blob tier converge on
// a single content-addressed result store: a cell computed anywhere in
// the cluster is a store hit everywhere.
func NewRemoteStore(baseURL string, client *http.Client) *DiskStore {
	return newDiskStoreStack(store.NewRemote(baseURL, client), nil)
}

// newDiskStoreStack assembles the resilience stack over base — retry
// (jittered backoff for transient IO) below integrity (CRC footers,
// quarantine on corruption) — and seeds the last-known blob count.
// disk is the base *store.Disk when base is (or wraps) one, nil when
// the stack runs over an in-memory or remote backend.
func newDiskStoreStack(base store.Blobs, disk *store.Disk) *DiskStore {
	s := &DiskStore{
		blobs: store.WithIntegrity(store.WithRetry(base, store.RetryPolicy{})),
		base:  base,
		disk:  disk,
	}
	if n, err := s.blobs.Len(); err == nil {
		s.lastLen.Store(int64(n))
	}
	return s
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string {
	if s == nil || s.disk == nil {
		return ""
	}
	return s.disk.Dir()
}

// BlobTier returns the store's raw blob backend — the layer below
// integrity checking, holding blobs with their CRC footers attached.
// This is the tier a cluster process serves to peers over /v1/blobs:
// serving raw footered bytes lets remote clients verify the CRC
// end-to-end over the wire. Nil for stores without a blob backend.
func (s *DiskStore) BlobTier() store.Blobs {
	if s == nil {
		return nil
	}
	return s.base
}

// Lookup reads, verifies, and decodes the result stored under key. An
// unreadable blob counts as a miss (and toward Errors); a corrupt blob
// additionally lands in quarantine and its key self-heals on the next
// Store.
func (s *DiskStore) Lookup(key string) (RunResult, bool) {
	r, ok, _ := s.lookupErr(key)
	return r, ok
}

// lookupErr is Lookup with the absorbed error exposed, so TieredStore
// can feed its circuit breaker. Corruption is reported wrapped in
// store.ErrCorrupt — a data problem the quarantine already handled, not
// a disk-health signal.
func (s *DiskStore) lookupErr(key string) (RunResult, bool, error) {
	if s == nil {
		return RunResult{}, false, nil
	}
	blob, ok, err := s.blobs.Get(key)
	if err != nil {
		s.errors.Add(1)
	}
	if err != nil || !ok {
		s.misses.Add(1)
		return RunResult{}, false, err
	}
	var r RunResult
	if derr := json.Unmarshal(blob, &r); derr != nil {
		// The bytes passed (or predate) the CRC but the payload no
		// longer decodes — a torn or corrupt legacy blob. Quarantine it
		// so the corruption is observed once and the key self-heals,
		// instead of being re-missed forever.
		s.errors.Add(1)
		s.misses.Add(1)
		s.blobs.Quarantine(key)
		return RunResult{}, false, fmt.Errorf("%w: decoding result: %v", store.ErrCorrupt, derr)
	}
	s.hits.Add(1)
	return r, true, nil
}

// Store atomically writes the result under key. A write failure is
// dropped (and counted by Errors): the store is a cache, not a ledger.
func (s *DiskStore) Store(key string, r RunResult) {
	s.storeErr(key, r)
}

// storeErr is Store with the absorbed error exposed, so TieredStore
// can feed its circuit breaker.
func (s *DiskStore) storeErr(key string, r RunResult) error {
	if s == nil {
		return nil
	}
	blob, err := json.Marshal(r)
	if err == nil {
		err = s.blobs.Put(key, blob)
	}
	if err != nil {
		s.errors.Add(1)
	}
	return err
}

// Len returns the number of cells this handle has observed: those on
// disk at open plus its own writes (cheap; no directory walk). When the
// backend cannot be counted right now, Len returns the last known
// count — never a misleading zero that reads like an empty store — and
// the failure lands in Errors.
func (s *DiskStore) Len() int {
	if s == nil {
		return 0
	}
	n, err := s.blobs.Len()
	if err != nil {
		s.errors.Add(1)
		return int(s.lastLen.Load())
	}
	s.lastLen.Store(int64(n))
	return n
}

// Stats returns the cumulative Lookup hit/miss counts.
func (s *DiskStore) Stats() (hits, misses int64) {
	if s == nil {
		return 0, 0
	}
	return s.hits.Load(), s.misses.Load()
}

// Errors returns the number of absorbed backend failures (IO, corrupt
// blob, or decode) since creation. A healthy store reports zero; a
// growing count means results are being silently recomputed — check
// the directory and /v1/readyz.
func (s *DiskStore) Errors() int64 {
	if s == nil {
		return 0
	}
	return s.errors.Load()
}

// Quarantined returns the number of corrupt blobs held in
// <dir>/quarantine: those present at open plus every corruption
// detected by this handle. Each quarantined key reads as a miss and is
// recreated by the next Store of the same cell; the quarantined bytes
// stay on disk for inspection until an operator deletes them.
func (s *DiskStore) Quarantined() int64 {
	if s == nil {
		return 0
	}
	if s.disk != nil {
		return s.disk.QuarantineLen()
	}
	return s.blobs.Quarantined()
}

// Health returns the store's failure-handling snapshot. DiskStore has
// no breaker of its own (that belongs to TieredStore, which has a
// memory tier to degrade to), so the breaker fields are zero.
func (s *DiskStore) Health() StoreHealth {
	return StoreHealth{Errors: s.Errors(), Quarantined: s.Quarantined()}
}

// TieredStore layers an in-memory ResultCache over a DiskStore: Lookup
// tries memory first and promotes disk hits into memory, Store writes
// through to both. It serves hot cells at map speed while every result
// survives process restarts — the backend behind `shiftsim -cache-dir`
// and the shiftd service.
//
// The disk tier sits behind a circuit breaker: when disk errors spike
// (a failing device, a full filesystem), the breaker trips and the
// store runs memory-only — hot cells keep serving and new results keep
// landing in memory — instead of paying the failing disk's latency on
// every cell. After a cooldown the breaker lets one half-open probe
// through; a healthy disk closes it and write-through resumes. The
// breaker state is visible in Health and shiftd's /v1/readyz.
//
// A nil *TieredStore is a valid no-op store.
type TieredStore struct {
	mem     *ResultCache
	disk    *DiskStore
	breaker *store.Breaker
	memOnly atomic.Int64
}

// NewTieredStore opens (creating if necessary) a tiered store whose
// disk layer is rooted at dir.
func NewTieredStore(dir string) (*TieredStore, error) {
	disk, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return newTieredStore(disk), nil
}

// NewTieredRemoteStore returns a tiered store whose persistent layer is
// a cluster peer's blob tier (see NewRemoteStore) instead of a local
// directory: memory speed for hot cells, the shared remote tier for
// durability and cross-process reuse, and the usual circuit breaker in
// between — when the peer is unreachable the breaker trips and the
// store runs memory-only until a half-open probe finds it healthy
// again. This is the store behind shiftd's -store-url.
func NewTieredRemoteStore(baseURL string, client *http.Client) *TieredStore {
	return newTieredStore(NewRemoteStore(baseURL, client))
}

// NewTieredStoreOver assembles a tiered store — memory over the full
// retry/integrity/breaker resilience stack — on an arbitrary blob
// backend. A shiftd worker without a cache directory uses it over an
// in-memory blob tier so it still has raw footered blobs to serve to
// cluster peers.
func NewTieredStoreOver(base store.Blobs) *TieredStore {
	var disk *store.Disk
	if d, ok := base.(*store.Disk); ok {
		disk = d
	}
	return newTieredStore(newDiskStoreStack(base, disk))
}

// newTieredStore assembles a tiered store over an existing disk layer
// with the default breaker policy (trip on 8 failures within the last
// 16 disk operations, probe every 5s).
func newTieredStore(disk *DiskStore) *TieredStore {
	return &TieredStore{
		mem:     NewResultCache(),
		disk:    disk,
		breaker: store.NewBreaker(store.BreakerConfig{}),
	}
}

// diskFailure classifies an absorbed disk-tier error for the breaker:
// corruption is a data problem the quarantine already isolated — the
// disk itself is healthy — so only genuine IO failures count toward
// tripping.
func diskFailure(err error) bool {
	return err != nil && !errors.Is(err, store.ErrCorrupt)
}

// Lookup returns the result for key from the memory tier, falling back
// to disk (promoting a disk hit into memory for next time). While the
// breaker is open the disk tier is skipped entirely: a memory miss is
// a store miss, and the engine recomputes the cell.
func (s *TieredStore) Lookup(key string) (RunResult, bool) {
	if s == nil {
		return RunResult{}, false
	}
	if r, ok := s.mem.Lookup(key); ok {
		return r, true
	}
	if !s.breaker.Allow() {
		s.memOnly.Add(1)
		return RunResult{}, false
	}
	r, ok, err := s.disk.lookupErr(key)
	s.breaker.Record(diskFailure(err))
	if ok {
		s.mem.Store(key, r)
	}
	return r, ok
}

// Store writes the result through to both tiers. While the breaker is
// open the write lands in memory only; the cells skipped this way are
// recomputed (and re-persisted) after the disk recovers — the store is
// a cache, so nothing is lost but work.
func (s *TieredStore) Store(key string, r RunResult) {
	if s == nil {
		return
	}
	s.mem.Store(key, r)
	if !s.breaker.Allow() {
		s.memOnly.Add(1)
		return
	}
	err := s.disk.storeErr(key, r)
	s.breaker.Record(diskFailure(err))
}

// Len returns the number of stored cells: the disk tier's count, which
// is authoritative (memory holds a subset), unless disk writes have
// failed, in which case the memory tier may be larger.
func (s *TieredStore) Len() int {
	if s == nil {
		return 0
	}
	n := s.disk.Len()
	if m := s.mem.Len(); m > n {
		n = m
	}
	return n
}

// Stats returns the tiered hit/miss counts: a hit in either tier is a
// hit, a miss means both tiers missed. (Memory-tier promotions are not
// double-counted: disk hits and memory hits are disjoint lookups.)
func (s *TieredStore) Stats() (hits, misses int64) {
	if s == nil {
		return 0, 0
	}
	memHits, _ := s.mem.Stats()
	diskHits, diskMisses := s.disk.Stats()
	return memHits + diskHits, diskMisses
}

// Errors returns the disk tier's absorbed-failure count (see
// DiskStore.Errors).
func (s *TieredStore) Errors() int64 {
	if s == nil {
		return 0
	}
	return s.disk.Errors()
}

// Quarantined returns the disk tier's quarantined-blob count (see
// DiskStore.Quarantined).
func (s *TieredStore) Quarantined() int64 {
	if s == nil {
		return 0
	}
	return s.disk.Quarantined()
}

// BlobTier returns the persistent layer's raw blob backend (see
// DiskStore.BlobTier); a cluster process serves it to peers over
// /v1/blobs.
func (s *TieredStore) BlobTier() store.Blobs {
	if s == nil {
		return nil
	}
	return s.disk.BlobTier()
}

// Health returns the store's failure-handling snapshot, including the
// disk-tier circuit breaker.
func (s *TieredStore) Health() StoreHealth {
	if s == nil {
		return StoreHealth{}
	}
	h := s.disk.Health()
	h.BreakerState = s.breaker.State()
	h.BreakerTrips = s.breaker.Trips()
	h.MemOnlyOps = s.memOnly.Load()
	return h
}
