package shift

import (
	"encoding/json"
	"sync/atomic"

	"shift/internal/store"
)

// This file defines the result-storage subsystem consumed by the
// experiment engine: the ResultStore interface and its two persistent
// backends, DiskStore (one JSON blob per Config.Key under a
// content-addressed directory) and TieredStore (ResultCache over
// DiskStore). The in-memory backend, ResultCache, predates the
// interface and lives in storage.go.

// ResultStore persists simulation results content-addressed by
// Config.Key. The engine treats a store strictly as a memo table:
// because the simulator is a pure function of its Config, a stored
// RunResult is bit-identical to re-running the cell, so serving from
// the store never changes experiment output — only how fast it arrives.
//
// Implementations must be safe for concurrent use by the engine's
// workers, and must degrade softly: a backend failure (unreadable file,
// full disk) is reported as a miss or a dropped write, never an
// experiment error. Three backends are provided: ResultCache (memory,
// dies with the process), DiskStore (survives restarts, shareable
// between processes), and TieredStore (memory speed over disk
// durability — the default for anything long-running).
type ResultStore interface {
	// Lookup returns the stored result for key, if any.
	Lookup(key string) (RunResult, bool)
	// Store persists a result under key, replacing any previous entry.
	Store(key string, r RunResult)
	// Len returns the number of stored cells.
	Len() int
	// Stats returns the cumulative Lookup hit/miss counts.
	Stats() (hits, misses int64)
}

// DiskStore is the disk-backed ResultStore: one JSON-encoded RunResult
// per Config.Key under a content-addressed directory
// (<dir>/<key[:2]>/<key>.json). Writes are atomic (temp file + rename),
// so any number of processes may share one directory — concurrent
// writers of the same cell write identical bytes, and readers never
// observe a torn blob; a crash mid-write leaves only an invisible
// temporary file. JSON keeps blobs greppable and editor-friendly, and
// round-trips every RunResult field exactly (encoding/json emits the
// shortest float64 representation that parses back to the same bits).
//
// A nil *DiskStore is a valid no-op store. IO and decode failures are
// absorbed as misses or dropped writes and counted by Errors.
type DiskStore struct {
	blobs                *store.Disk
	hits, misses, errors atomic.Int64
}

// NewDiskStore opens (creating if necessary) a disk store rooted at
// dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	blobs, err := store.OpenDisk(dir)
	if err != nil {
		return nil, err
	}
	return &DiskStore{blobs: blobs}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string {
	if s == nil {
		return ""
	}
	return s.blobs.Dir()
}

// Lookup reads and decodes the result stored under key. An unreadable
// or undecodable blob counts as a miss (and toward Errors).
func (s *DiskStore) Lookup(key string) (RunResult, bool) {
	if s == nil {
		return RunResult{}, false
	}
	blob, ok, err := s.blobs.Get(key)
	if err != nil {
		s.errors.Add(1)
	}
	if err != nil || !ok {
		s.misses.Add(1)
		return RunResult{}, false
	}
	var r RunResult
	if err := json.Unmarshal(blob, &r); err != nil {
		s.errors.Add(1)
		s.misses.Add(1)
		return RunResult{}, false
	}
	s.hits.Add(1)
	return r, true
}

// Store atomically writes the result under key. A write failure is
// dropped (and counted by Errors): the store is a cache, not a ledger.
func (s *DiskStore) Store(key string, r RunResult) {
	if s == nil {
		return
	}
	blob, err := json.Marshal(r)
	if err == nil {
		err = s.blobs.Put(key, blob)
	}
	if err != nil {
		s.errors.Add(1)
	}
}

// Len returns the number of cells this handle has observed: those on
// disk at open plus its own writes (cheap; no directory walk).
func (s *DiskStore) Len() int {
	if s == nil {
		return 0
	}
	n, err := s.blobs.Len()
	if err != nil {
		s.errors.Add(1)
		return 0
	}
	return n
}

// Stats returns the cumulative Lookup hit/miss counts.
func (s *DiskStore) Stats() (hits, misses int64) {
	if s == nil {
		return 0, 0
	}
	return s.hits.Load(), s.misses.Load()
}

// Errors returns the number of absorbed backend failures (IO or decode)
// since creation. A healthy store reports zero; a growing count means
// results are being silently recomputed — check the directory.
func (s *DiskStore) Errors() int64 {
	if s == nil {
		return 0
	}
	return s.errors.Load()
}

// TieredStore layers an in-memory ResultCache over a DiskStore: Lookup
// tries memory first and promotes disk hits into memory, Store writes
// through to both. It serves hot cells at map speed while every result
// survives process restarts — the backend behind `shiftsim -cache-dir`
// and the shiftd service. A nil *TieredStore is a valid no-op store.
type TieredStore struct {
	mem  *ResultCache
	disk *DiskStore
}

// NewTieredStore opens (creating if necessary) a tiered store whose
// disk layer is rooted at dir.
func NewTieredStore(dir string) (*TieredStore, error) {
	disk, err := NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return &TieredStore{mem: NewResultCache(), disk: disk}, nil
}

// Lookup returns the result for key from the memory tier, falling back
// to disk (promoting a disk hit into memory for next time).
func (s *TieredStore) Lookup(key string) (RunResult, bool) {
	if s == nil {
		return RunResult{}, false
	}
	if r, ok := s.mem.Lookup(key); ok {
		return r, true
	}
	r, ok := s.disk.Lookup(key)
	if ok {
		s.mem.Store(key, r)
	}
	return r, ok
}

// Store writes the result through to both tiers.
func (s *TieredStore) Store(key string, r RunResult) {
	if s == nil {
		return
	}
	s.mem.Store(key, r)
	s.disk.Store(key, r)
}

// Len returns the number of stored cells: the disk tier's count, which
// is authoritative (memory holds a subset), unless disk writes have
// failed, in which case the memory tier may be larger.
func (s *TieredStore) Len() int {
	if s == nil {
		return 0
	}
	n := s.disk.Len()
	if m := s.mem.Len(); m > n {
		n = m
	}
	return n
}

// Stats returns the tiered hit/miss counts: a hit in either tier is a
// hit, a miss means both tiers missed. (Memory-tier promotions are not
// double-counted: disk hits and memory hits are disjoint lookups.)
func (s *TieredStore) Stats() (hits, misses int64) {
	if s == nil {
		return 0, 0
	}
	memHits, _ := s.mem.Stats()
	diskHits, diskMisses := s.disk.Stats()
	return memHits + diskHits, diskMisses
}

// Errors returns the disk tier's absorbed-failure count (see
// DiskStore.Errors).
func (s *TieredStore) Errors() int64 {
	if s == nil {
		return 0
	}
	return s.disk.Errors()
}
