package shift

import (
	"math"
	"reflect"
	"testing"
)

// sampledTestPolicy is the policy the benchmarks gate (see
// BenchmarkSampledFigure7): 1 interval in 40 detailed, 500-record
// intervals, 30% detailed warmup.
func sampledTestPolicy() Sampling {
	return Sampling{Period: 40, IntervalRecords: 500, WarmupFraction: 0.3}
}

// sampledAccuracyOptions is the windowing the accuracy contract is
// stated over: quick warmup, a 100k-record measurement window (the
// scale where sampling pays — 20x fewer detailed records).
func sampledAccuracyOptions() Options {
	o := QuickOptions()
	o.Workloads = []string{"Web Search"}
	o.Parallelism = 1
	o.MeasureRecords = 100000
	return o
}

// TestSampledAccuracy is the differential accuracy contract across all
// seven design points: a sampled run's IPC-class headline (Throughput)
// must land within 2% of the exact run over the same window, its MPKI
// within 20% (the effective-miss process of the stream prefetchers is
// bursty at interval granularity — see ARCHITECTURE.md "Sampled
// execution" — which is exactly why sampled results carry error bars),
// and the error-bound fields must be populated. The simulator is a
// pure function of its inputs, so this test is deterministic, not
// statistical.
func TestSampledAccuracy(t *testing.T) {
	o := sampledAccuracyOptions()
	designs := []Design{DesignBaseline, DesignNextLine, DesignPIF2K, DesignPIF32K,
		DesignZeroLatSHIFT, DesignSHIFT, DesignTIFS}
	grid := func(o Options) []Cell {
		var cells []Cell
		for _, d := range designs {
			cells = append(cells, Cell{Label: d.String(), Config: o.config("Web Search", d)})
		}
		return cells
	}
	exact, err := NewEngine(1, nil).RunAll(grid(o))
	if err != nil {
		t.Fatal(err)
	}
	so := o
	so.Sampling = sampledTestPolicy()
	sampled, err := NewEngine(1, nil).RunAll(grid(so))
	if err != nil {
		t.Fatal(err)
	}
	wantIntervals := 100000 / int(so.Sampling.Period*so.Sampling.IntervalRecords)
	for i, d := range designs {
		e, s := exact[i], sampled[i]
		if e.Sampled || !s.Sampled {
			t.Fatalf("%s: Sampled flags wrong (exact %v, sampled %v)", d, e.Sampled, s.Sampled)
		}
		if s.SampledIntervals != wantIntervals || s.SampleConfidence != 0.95 {
			t.Errorf("%s: intervals %d (want %d), confidence %v",
				d, s.SampledIntervals, wantIntervals, s.SampleConfidence)
		}
		if s.ThroughputStdErr <= 0 || s.ThroughputCI < s.ThroughputStdErr ||
			s.MPKIStdErr <= 0 || s.MPKICI < s.MPKIStdErr {
			t.Errorf("%s: degenerate error bounds %+v", d, s)
		}
		if rel := math.Abs(s.Throughput-e.Throughput) / e.Throughput; rel > 0.02 {
			t.Errorf("%s: Throughput rel err %.2f%% > 2%% (sampled %.4f, exact %.4f)",
				d, rel*100, s.Throughput, e.Throughput)
		}
		if rel := math.Abs(s.MPKI-e.MPKI) / e.MPKI; rel > 0.20 {
			t.Errorf("%s: MPKI rel err %.1f%% > 20%% (sampled %.3f, exact %.3f)",
				d, rel*100, s.MPKI, e.MPKI)
		}
	}
}

// TestSampledBatchMatchesRun mirrors the sim layer's determinism
// contract through the public API: a sampled batch (what the engine
// schedules for a figure grid) is bit-identical to standalone sampled
// runs, error bounds included.
func TestSampledBatchMatchesRun(t *testing.T) {
	o := QuickOptions()
	o.Workloads = []string{"Web Search"}
	o.WarmupRecords = 10000
	o.MeasureRecords = 20000
	o.Sampling = Sampling{Period: 5, IntervalRecords: 500, WarmupFraction: 0.25}
	var cfgs []Config
	for _, d := range []Design{DesignBaseline, DesignPIF2K, DesignSHIFT} {
		cfgs = append(cfgs, o.config("Web Search", d))
	}
	batched, err := RunBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		solo, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("%s: sampled batch result differs from standalone Run", cfg.Design)
		}
		if !solo.Sampled || solo.SampledIntervals != 8 {
			t.Errorf("%s: sampled metadata wrong: %+v", cfg.Design, solo)
		}
	}
}

// TestSampledKeysNeverCollide locks the storage contract: a sampled
// cell must never alias its exact twin (or a differently-sampled twin)
// in any ResultStore backend, while exact keys stay byte-stable across
// releases.
func TestSampledKeysNeverCollide(t *testing.T) {
	exact := DefaultRunConfig("Web Search", DesignSHIFT)
	sampled := exact
	sampled.Sampling = sampledTestPolicy()
	other := sampled
	other.Sampling.Period = 10

	keys := map[string]string{
		"exact":    exact.Key(),
		"sampled":  sampled.Key(),
		"period10": other.Key(),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, ok := seen[k]; ok {
			t.Fatalf("configs %s and %s share key %s", prev, name, k)
		}
		seen[k] = name
	}
	// A disabled policy (Period 0 or 1) is exact simulation and must
	// key identically to the plain exact config.
	one := exact
	one.Sampling.Period = 1
	if one.Key() != exact.Key() {
		t.Error("Period=1 config keyed differently from exact")
	}
	// Policies are keyed in normalized form: writing the defaults out
	// and leaving them zero describe the identical simulation and must
	// share a key (and a batch schedule).
	spelled := sampled
	spelled.Sampling.Confidence = 0.95 // the default, written out
	implicit := exact
	implicit.Sampling = Sampling{Period: 40} // interval/warmup/confidence defaulted
	explicit := exact
	explicit.Sampling = Sampling{Period: 40, IntervalRecords: 500,
		WarmupFraction: 0.25, Confidence: 0.95} // the same defaults, written out
	if spelled.Key() != sampled.Key() {
		t.Error("spelled-out default confidence keyed differently")
	}
	if implicit.Key() != explicit.Key() || implicit.StreamKey() != explicit.StreamKey() {
		t.Error("normalization-equivalent policies keyed differently")
	}
	// Sampled and exact cells of one workload must not share a batch
	// schedule either; different schedules must not share one; but a
	// confidence-only difference (reporting, not schedule) must batch.
	if sampled.StreamKey() == exact.StreamKey() {
		t.Error("sampled and exact cells share a StreamKey (batch schedule)")
	}
	if sampled.StreamKey() == other.StreamKey() {
		t.Error("different sampling policies share a StreamKey")
	}
	conf := sampled
	conf.Sampling.Confidence = 0.99
	if conf.StreamKey() != sampled.StreamKey() {
		t.Error("confidence-only difference changed the StreamKey (schedule)")
	}
	if conf.Key() == sampled.Key() {
		t.Error("confidence-only difference did not change the result Key")
	}
}

// TestSampledEngineStoresBothModes runs the same cell exactly and
// sampled through one engine+store and checks both results live side
// by side, with the sampled-cell counter tracking only the latter.
func TestSampledEngineStoresBothModes(t *testing.T) {
	cache := NewResultCache()
	e := NewEngine(1, cache)
	o := QuickOptions()
	o.Workloads = []string{"Web Search"}
	o.WarmupRecords = 5000
	o.MeasureRecords = 10000
	exactCfg := o.config("Web Search", DesignBaseline)
	sampledCfg := exactCfg
	sampledCfg.Sampling = Sampling{Period: 5, IntervalRecords: 500}

	re, err := e.RunOne(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.RunOne(sampledCfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Sampled || !rs.Sampled {
		t.Fatalf("mode flags wrong: exact %v sampled %v", re.Sampled, rs.Sampled)
	}
	if cache.Len() != 2 {
		t.Fatalf("store holds %d cells, want 2 (exact and sampled must not collide)", cache.Len())
	}
	if st := e.Stats(); st.Simulated != 2 || st.SampledCells != 1 {
		t.Fatalf("engine stats %+v, want 2 simulated / 1 sampled", st)
	}
	// Both must now be served from the store without re-simulation.
	if _, err := e.RunOne(exactCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunOne(sampledCfg); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Simulated != 2 {
		t.Fatalf("store round trip re-simulated: %+v", st)
	}
}

// TestSampledOptionsValidation: experiment drivers reject malformed
// sampling policies up front.
func TestSampledOptionsValidation(t *testing.T) {
	o := QuickOptions()
	o.Sampling = Sampling{Period: 4, WarmupFraction: 2}
	if _, err := RunFigure7(o); err == nil {
		t.Error("bad warmup fraction accepted")
	}
	o.Sampling = Sampling{Period: -2}
	if _, err := RunFigure8(o); err == nil {
		t.Error("negative period accepted")
	}
}
