package shift

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"shift/internal/core"
	"shift/internal/sim"
	"shift/internal/spec"
	"shift/internal/validate"
	"shift/internal/workload"
)

// FieldError is a validation failure naming the offending field — the
// error type every spec rejection (and shiftd 400) carries. Use
// errors.As to recover the field name programmatically.
type FieldError = validate.FieldError

// StreamShortError reports a bounded record stream (a trace replay)
// that could not supply a full simulation window. Phase is "validate"
// when the shortage was detected up front, "warmup"/"measure" when a
// stream ran dry mid-run; Core is the starved core or -1.
type StreamShortError = sim.StreamShortError

// LoadSpec compiles and registers a workload spec document (YAML or
// JSON; see ARCHITECTURE.md "Workload specs"). It returns the spec's
// content-addressed workload ID — "spec:<name>@<hash16>" — which is
// usable anywhere a catalog workload name is: Config.Workload,
// Options.Workloads, shiftsim -workloads, shiftd cells. Equal documents
// (and equal trace content) compile to equal IDs, so spec-driven cells
// memoize, batch, and sample exactly like catalog cells; any parameter
// or trace change yields a new ID and therefore new cache keys.
//
// Trace recordings referenced by relative paths resolve against the
// current directory; use LoadSpecFile to resolve them against the
// document's own directory.
func LoadSpec(data []byte) (string, error) {
	c, err := spec.Load(data, nil)
	if err != nil {
		return "", err
	}
	return spec.Register(c).ID(), nil
}

// LoadSpecFile reads, compiles, and registers the spec document at
// path. Relative trace-recording paths resolve against the document's
// directory, so a spec and its recordings travel together.
func LoadSpecFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	dir := filepath.Dir(path)
	open := func(p string) (io.ReadCloser, error) {
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		return os.Open(p)
	}
	c, err := spec.Load(data, open)
	if err != nil {
		return "", err
	}
	return spec.Register(c).ID(), nil
}

// LoadSpecRestricted compiles and registers a spec document like
// LoadSpec but refuses trace-replay specs. It exists for untrusted wire
// input (shiftd's inline "spec" cells), where honoring a spec's trace
// paths would let a remote client read server-local files.
func LoadSpecRestricted(data []byte) (string, error) {
	c, err := spec.Load(data, func(string) (io.ReadCloser, error) {
		return nil, errors.New("trace replay is not available here (submit trace specs via shiftsim -spec)")
	})
	if err != nil {
		return "", err
	}
	return spec.Register(c).ID(), nil
}

// SpecCanonical returns the canonical JSON form of a registered spec —
// the exact bytes its content hash was computed over. This is the
// document to submit when forwarding a locally compiled spec to a
// remote shiftd as an inline "spec" cell: identical canonical content
// resolves to the identical content-addressed ID on the server.
func SpecCanonical(id string) ([]byte, error) {
	c, ok := spec.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("unknown spec %q", id)
	}
	return c.Canonical(), nil
}

// KnownWorkload reports whether name resolves to a runnable workload in
// this process: a Table I catalog name, or the ID of a spec previously
// registered with LoadSpec/LoadSpecFile.
func KnownWorkload(name string) bool {
	if spec.IsID(name) {
		_, ok := spec.Lookup(name)
		return ok
	}
	_, err := workload.ByName(name)
	return err == nil
}

// WorkloadCores returns the core count a workload pins a configuration
// to — the client-core total of a mix spec — or 0 when the workload
// runs at any CMP size.
func WorkloadCores(name string) int {
	if c, ok := spec.Lookup(name); ok {
		return c.PinnedCores()
	}
	return 0
}

// WorkloadDisplayName returns the label results and figure rows render
// for a workload: a registered spec's display name, or name itself for
// catalog workloads (and unregistered IDs).
func WorkloadDisplayName(name string) string {
	if c, ok := spec.Lookup(name); ok {
		return c.Name()
	}
	return name
}

// displayNames maps workload identifiers to their display labels.
func displayNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = WorkloadDisplayName(n)
	}
	return out
}

// resolveWorkloadInto fills rs's workload form from a workload
// identifier: catalog names become a homogeneous Params, registered
// spec IDs resolve to whatever the spec compiled to (Params, groups, or
// a shared record Source).
func resolveWorkloadInto(name string, rs *sim.RunSpec) error {
	if comp, ok := spec.Lookup(name); ok {
		return specWorkload(comp, rs)
	}
	if spec.IsID(name) {
		return fmt.Errorf("shift: spec %q is not registered in this process (load it with LoadSpec first)", name)
	}
	wp, err := workload.ByName(name)
	if err != nil {
		return err
	}
	rs.Workload = wp
	return nil
}

// specWorkload resolves a registered spec into the run spec's workload
// form: a homogeneous Params, consolidated groups (mix), or a shared
// record Source (phases, trace replay).
func specWorkload(c *spec.Compiled, rs *sim.RunSpec) error {
	if p, ok := c.Single(); ok {
		rs.Workload = p
		return nil
	}
	if clients, ok := c.Clients(); ok {
		if n := c.PinnedCores(); n != rs.Config.Cores {
			return fmt.Errorf("shift: spec %q is a %d-core mix, configured for %d cores", c.Name(), n, rs.Config.Cores)
		}
		next := 0
		for _, cl := range clients {
			cores := make([]int, cl.Cores)
			for j := range cores {
				cores[j] = next
				next++
			}
			rs.Groups = append(rs.Groups, core.Group{Name: cl.Name, Cores: cores})
			rs.GroupWorkloads = append(rs.GroupWorkloads, cl.Params)
		}
		return nil
	}
	src, err := c.Source()
	if err != nil {
		return err
	}
	rs.Source = src
	return nil
}
