package shift

import (
	"fmt"
	"strings"

	"shift/internal/core"
	"shift/internal/exp"
	"shift/internal/pif"
	"shift/internal/sim"
	"shift/internal/stats"
	"shift/internal/workload"
)

// ConsolidationWorkloads returns the four workloads the paper
// consolidates in Figure 10: two traditional (OLTP on Oracle, web
// frontend) and two emerging (media streaming, web search), four cores
// each.
func ConsolidationWorkloads() []string {
	return []string{"OLTP Oracle", "Web Frontend", "Media Streaming", "Web Search"}
}

// Figure10 reproduces the paper's Figure 10: speedups under workload
// consolidation, with one shared history (and one generator core) per
// workload for SHIFT. The paper reports SHIFT at 22% mean speedup (95%
// of PIF_32K's absolute performance), ZeroLat at 25%.
type Figure10 struct {
	// Speedup[workload][design] is the per-workload-group speedup
	// (throughput of that group's cores over the baseline run).
	Speedup map[string]map[string]float64
	// Geo[design] is the geometric mean across groups.
	Geo map[string]float64
	// Workloads is the outer grid axis, in rendering order.
	Workloads []string
	// Designs is the inner grid axis, in rendering order.
	Designs []Design
}

// RunFigure10 regenerates Figure 10. Cores are split evenly across the
// four consolidated workloads.
func RunFigure10(o Options) (*Figure10, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	names := ConsolidationWorkloads()
	per := o.Cores / len(names)
	if per < 1 {
		return nil, fmt.Errorf("shift: %d cores cannot host %d consolidated workloads", o.Cores, len(names))
	}
	groups := make([]core.Group, len(names))
	groupWl := make([]workload.Params, len(names))
	for i, n := range names {
		cores := make([]int, per)
		for j := range cores {
			cores[j] = i*per + j
		}
		groups[i] = core.Group{Name: n, Cores: cores}
		wp, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		groupWl[i] = wp
	}

	designs := FigureDesigns()
	fig := &Figure10{
		Speedup:   make(map[string]map[string]float64),
		Geo:       make(map[string]float64),
		Workloads: names,
		Designs:   designs,
	}
	for _, n := range names {
		fig.Speedup[n] = make(map[string]float64)
	}

	run := func(d Design) (map[string]float64, error) {
		sc := sim.DefaultConfig()
		sc.Cores = o.Cores
		sc.CoreType = o.CoreType.internal()
		sc.Seed = o.Seed
		switch d {
		case DesignBaseline:
			sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindNone}
		case DesignNextLine:
			sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindNextLine, NextLineDegree: 1}
		case DesignPIF2K, DesignPIF32K:
			var pc pif.Config
			if d == DesignPIF2K {
				pc = pif.Config2K()
			} else {
				pc = pif.Config32K()
			}
			sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindPIF, PIF: pc}
		case DesignZeroLatSHIFT, DesignSHIFT:
			shc := core.DefaultConfig()
			if d == DesignZeroLatSHIFT {
				shc.Variant = core.Dedicated
			}
			sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindSHIFT, SHIFT: shc}
		}
		res, err := sim.Run(sim.RunSpec{
			Config:         sc,
			Groups:         groups,
			GroupWorkloads: groupWl,
			WarmupRecords:  o.WarmupRecords,
			MeasureRecords: o.MeasureRecords,
		})
		if err != nil {
			return nil, err
		}
		// Per-group throughput: sum of that group's cores' IPC.
		out := make(map[string]float64, len(groups))
		for gi, g := range groups {
			var thr float64
			for _, c := range g.Cores {
				thr += res.PerCore[c].IPC
			}
			out[names[gi]] = thr
		}
		return out, nil
	}

	// Consolidated runs are not expressible as a public Config (they
	// carry core groups), so they use the engine's generic worker pool
	// directly: one cell per design point, baseline first.
	points := append([]Design{DesignBaseline}, designs...)
	perDesign, err := exp.Map(o.expOptions(), len(points), func(i int) (map[string]float64, error) {
		return run(points[i])
	})
	if err != nil {
		return nil, err
	}
	base := perDesign[0]
	for di, d := range designs {
		thr := perDesign[1+di]
		var sp []float64
		for _, n := range names {
			v := thr[n] / base[n]
			fig.Speedup[n][d.String()] = v
			sp = append(sp, v)
		}
		fig.Geo[d.String()] = stats.GeoMean(sp)
	}
	return fig, nil
}

// SHIFTvsPIF32KAbsolute returns SHIFT's absolute performance as a
// fraction of PIF_32K's under consolidation (the paper's 95%).
func (f *Figure10) SHIFTvsPIF32KAbsolute() float64 {
	pif := f.Geo[DesignPIF32K.String()]
	if pif <= 0 {
		return 0
	}
	return f.Geo[DesignSHIFT.String()] / pif
}

// String renders the consolidation speedup table.
func (f *Figure10) String() string {
	header := []string{"Workload (4 cores each)"}
	for _, d := range f.Designs {
		header = append(header, d.String())
	}
	t := stats.NewTable(header...)
	for _, w := range f.Workloads {
		row := []string{w}
		for _, d := range f.Designs {
			row = append(row, fmt.Sprintf("%.3f", f.Speedup[w][d.String()]))
		}
		t.AddRow(row...)
	}
	row := []string{"Geo. Mean"}
	for _, d := range f.Designs {
		row = append(row, fmt.Sprintf("%.3f", f.Geo[d.String()]))
	}
	t.AddRow(row...)
	var b strings.Builder
	b.WriteString("Figure 10: Speedup under workload consolidation (per-workload histories)\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "SHIFT delivers %.0f%% of PIF_32K's absolute performance (paper: 95%%)\n",
		f.SHIFTvsPIF32KAbsolute()*100)
	return b.String()
}
