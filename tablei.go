package shift

import (
	"fmt"
	"strings"

	"shift/internal/cpu"
	"shift/internal/sim"
	"shift/internal/stats"
	"shift/internal/workload"
)

// TableI renders the reproduced system and application parameters
// (the paper's Table I), as configured in this package's defaults.
func TableI() string {
	var b strings.Builder
	sc := sim.DefaultConfig()

	sys := stats.NewTable("Component", "Configuration")
	sys.AddRow("Processing nodes", fmt.Sprintf("%d cores, 2GHz, 4x4 mesh (%d cycles/hop)",
		sc.Cores, sc.Mesh.HopCycles))
	for _, ct := range []cpu.CoreType{cpu.FatOoO, cpu.LeanOoO, cpu.LeanIO} {
		p := cpu.ParamsFor(ct)
		desc := fmt.Sprintf("%d-wide", p.Width)
		if p.ROB > 0 {
			desc += fmt.Sprintf(", %d-entry ROB, %d-entry LSQ", p.ROB, p.LSQ)
		} else {
			desc += ", in-order"
		}
		sys.AddRow(fmt.Sprintf("  %s (%.1f mm^2)", ct, p.AreaMM2), desc)
	}
	sys.AddRow("I-fetch unit", fmt.Sprintf("%dKB %d-way L1-I, 64B blocks; hybrid bpred (16K gShare + 16K bimodal)",
		sc.L1I.SizeBytes/1024, sc.L1I.Assoc))
	sys.AddRow("L2 NUCA cache", fmt.Sprintf("%dKB/core, %d-way, %d banks, %d-cycle hit, 64 MSHRs",
		sc.LLCBankBytes/1024, sc.LLCAssoc, sc.Mesh.Tiles(), sc.L2HitCycles))
	sys.AddRow("Main memory", fmt.Sprintf("%d-cycle access (45ns @ 2GHz)", sc.MemCycles))
	b.WriteString("Table I (system): reproduced configuration\n")
	b.WriteString(sys.String())

	apps := stats.NewTable("Workload", "Instr. footprint", "Request types", "OS traps/sched")
	for _, p := range workload.Catalog() {
		apps.AddRow(p.Name,
			fmt.Sprintf("%.1f MB", float64(p.FootprintBytes)/(1024*1024)),
			fmt.Sprintf("%d", p.RequestTypes),
			fmt.Sprintf("%.2f%% / %.0f%%", p.TrapRate*100, p.SchedProb*100))
	}
	b.WriteString("\nTable I (applications): synthetic workload models\n")
	b.WriteString(apps.String())
	return b.String()
}
