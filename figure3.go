package shift

import (
	"fmt"
	"strings"

	"shift/internal/stats"
)

// Figure3 reproduces the paper's Figure 3: the fraction of all
// instruction-cache accesses (application + OS) that fall within temporal
// streams recorded by a single history generator core and replayed by the
// other cores. The paper reports more than 90% (up to 96%) on average
// across 16 cores.
type Figure3 struct {
	// Commonality[workload] is the percentage of accesses inside common
	// temporal streams.
	Commonality map[string]float64
	// Workloads is the bar axis, in rendering order.
	Workloads []string
}

// RunFigure3 regenerates Figure 3 using prediction-only simulation with
// replay allocation on every access (the Section 3 methodology).
func RunFigure3(o Options) (*Figure3, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(o.Workloads))
	for i, w := range o.Workloads {
		cfg := o.config(w, DesignZeroLatSHIFT)
		cfg.PredictionOnly = true
		cfg.CommonalityMode = true
		cells[i] = cell(cfg, "commonality")
	}
	results, err := o.engine().RunAll(cells)
	if err != nil {
		return nil, err
	}
	fig := &Figure3{Commonality: make(map[string]float64), Workloads: displayNames(o.Workloads)}
	for i, w := range o.Workloads {
		fig.Commonality[WorkloadDisplayName(w)] = results[i].AccessCoverage * 100
	}
	return fig, nil
}

// Mean returns the mean commonality percentage.
func (f *Figure3) Mean() float64 {
	vals := make([]float64, 0, len(f.Workloads))
	for _, w := range f.Workloads {
		vals = append(vals, f.Commonality[w])
	}
	return stats.Mean(vals)
}

// String renders the figure as a bar table.
func (f *Figure3) String() string {
	t := stats.NewTable("Workload", "Common stream accesses (%)", "")
	for _, w := range f.Workloads {
		v := f.Commonality[w]
		t.AddRow(w, fmt.Sprintf("%.1f", v), stats.Bar(v, 100, 40))
	}
	var b strings.Builder
	b.WriteString("Figure 3: Instruction cache accesses within common temporal streams\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Mean: %.1f%% (paper: >90%%, up to 96%%)\n", f.Mean())
	return b.String()
}
