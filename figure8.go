package shift

import (
	"fmt"
	"strings"

	"shift/internal/stats"
)

// Figure8 reproduces the paper's Figure 8: speedup of NextLine, PIF_2K,
// PIF_32K, ZeroLat-SHIFT, and SHIFT over the no-prefetch baseline on each
// workload, on the Lean-OoO CMP. The paper reports on average: NextLine
// 9%, PIF_2K ~10%, PIF_32K 21%, ZeroLat-SHIFT 20%, SHIFT 19% (up to 42%).
type Figure8 struct {
	// Speedup[workload][design] is the speedup over baseline.
	Speedup map[string]map[string]float64
	// Geo[design] is the geometric-mean speedup.
	Geo map[string]float64
	// Workloads is the outer grid axis, in rendering order.
	Workloads []string
	// Designs is the inner grid axis, in rendering order.
	Designs []Design
}

// RunFigure8 regenerates Figure 8.
func RunFigure8(o Options) (*Figure8, error) {
	return runSpeedupComparison(o, FigureDesigns())
}

// speedupCells builds the comparison grid: per workload, the baseline
// followed by each compared design. The cell layout is consumed by
// speedupFromResults with stride 1+len(designs).
func speedupCells(o Options, designs []Design) []Cell {
	var cells []Cell
	for _, w := range o.Workloads {
		cells = append(cells, cell(o.config(w, DesignBaseline)))
		for _, d := range designs {
			cells = append(cells, cell(o.config(w, d)))
		}
	}
	return cells
}

// speedupFromResults assembles a Figure8 from a speedupCells grid's
// results (in cell order).
func speedupFromResults(o Options, designs []Design, results []RunResult) *Figure8 {
	fig := &Figure8{
		Speedup:   make(map[string]map[string]float64),
		Geo:       make(map[string]float64),
		Workloads: displayNames(o.Workloads),
		Designs:   designs,
	}
	logs := make(map[string][]float64)
	stride := 1 + len(designs)
	for wi, w := range o.Workloads {
		base := results[wi*stride]
		name := WorkloadDisplayName(w)
		fig.Speedup[name] = make(map[string]float64)
		for di, d := range designs {
			sp := results[wi*stride+1+di].Throughput / base.Throughput
			fig.Speedup[name][d.String()] = sp
			logs[d.String()] = append(logs[d.String()], sp)
		}
	}
	for _, d := range designs {
		fig.Geo[d.String()] = stats.GeoMean(logs[d.String()])
	}
	return fig
}

// runSpeedupComparison runs the Figure 8 comparison for a design set
// (shared with the sensitivity and performance-density studies) on the
// experiment engine.
func runSpeedupComparison(o Options, designs []Design) (*Figure8, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	results, err := o.engine().RunAll(speedupCells(o, designs))
	if err != nil {
		return nil, err
	}
	return speedupFromResults(o, designs, results), nil
}

// SHIFTRetainsPIFBenefit returns SHIFT's geometric-mean speedup benefit
// as a fraction of PIF_32K's (the paper's "over 90% of the performance
// benefit" claim).
func (f *Figure8) SHIFTRetainsPIFBenefit() float64 {
	pif := f.Geo[DesignPIF32K.String()] - 1
	sh := f.Geo[DesignSHIFT.String()] - 1
	if pif <= 0 {
		return 0
	}
	return sh / pif
}

// MaxSHIFTSpeedup returns the best per-workload SHIFT speedup (the
// paper's "up to 42%").
func (f *Figure8) MaxSHIFTSpeedup() float64 {
	best := 0.0
	for _, w := range f.Workloads {
		if v := f.Speedup[w][DesignSHIFT.String()]; v > best {
			best = v
		}
	}
	return best
}

// String renders the speedup table.
func (f *Figure8) String() string {
	header := []string{"Workload"}
	for _, d := range f.Designs {
		header = append(header, d.String())
	}
	t := stats.NewTable(header...)
	for _, w := range f.Workloads {
		row := []string{w}
		for _, d := range f.Designs {
			row = append(row, fmt.Sprintf("%.3f", f.Speedup[w][d.String()]))
		}
		t.AddRow(row...)
	}
	row := []string{"Geo. Mean"}
	for _, d := range f.Designs {
		row = append(row, fmt.Sprintf("%.3f", f.Geo[d.String()]))
	}
	t.AddRow(row...)
	var b strings.Builder
	b.WriteString("Figure 8: Performance comparison (speedup over no-prefetch baseline)\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "SHIFT retains %.0f%% of PIF_32K's benefit (paper: >90%%); max SHIFT speedup %.2fx (paper: up to 1.42x)\n",
		f.SHIFTRetainsPIFBenefit()*100, f.MaxSHIFTSpeedup())
	return b.String()
}
