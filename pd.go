package shift

import (
	"fmt"
	"strings"

	"shift/internal/area"
	"shift/internal/stats"
)

// PDPoint is one performance-density design point: a prefetcher on a core
// type, with performance and area relative to the prefetcher-less core.
type PDPoint struct {
	// CoreType and Design identify the point.
	CoreType, Design string
	// RelPerf is geometric-mean speedup over the baseline core.
	RelPerf float64
	// RelArea is (core + prefetcher)/core area.
	RelArea float64
	// PD is RelPerf/RelArea (>1 = the paper's shaded "PD gain" region).
	PD float64
	// PrefetcherAreaMM2 is the per-core prefetcher area cost.
	PrefetcherAreaMM2 float64
}

// PerfDensity reproduces the paper's Figure 2 and the Section 5.6
// analysis: performance density of PIF_2K, PIF_32K, and SHIFT across the
// Fat-OoO, Lean-OoO, and Lean-IO core designs. The paper's headline:
// SHIFT improves PD over PIF_32K by 2% (Fat-OoO), 16% (Lean-OoO), and
// 59% (Lean-IO), and PIF actively loses PD on the Lean-IO core.
type PerfDensity struct {
	// Points holds one entry per (core type, design), core-type-major.
	Points []PDPoint
}

// llcBytesTotal is the Table I LLC: 512KB per core x 16.
const llcBytesTotal = 16 * 512 * 1024

// prefetcherAreaPerCore returns a design's per-core area cost in mm².
func prefetcherAreaPerCore(d Design, cores int) float64 {
	switch d {
	case DesignPIF32K:
		return area.PIFAreaPerCoreMM2(32768, 8192)
	case DesignPIF2K:
		return area.PIFAreaPerCoreMM2(2048, 512)
	case DesignSHIFT, DesignZeroLatSHIFT:
		// SHIFT's only area cost is the LLC tag extension, shared by all
		// cores ("0.96mm2 in total").
		return area.SHIFTTotalAreaMM2(llcBytesTotal) / float64(cores)
	default:
		return 0
	}
}

// RunPerfDensity regenerates the PD study: for each core type it measures
// the geometric-mean speedup of each design over the no-prefetch baseline
// and combines it with the analytical area model. The speedup grids of
// all three core types are submitted to the engine as one combined grid,
// so every (core type × workload × design) cell runs on the worker pool.
func RunPerfDensity(o Options) (*PerfDensity, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	designs := []Design{DesignPIF2K, DesignPIF32K, DesignSHIFT}
	coreTypes := AllCoreTypes()
	var cells []Cell
	perType := make([]Options, len(coreTypes))
	for i, ct := range coreTypes {
		oc := o
		oc.CoreType = ct
		perType[i] = oc
		cells = append(cells, speedupCells(oc, designs)...)
	}
	results, err := o.engine().RunAll(cells)
	if err != nil {
		return nil, err
	}

	pd := &PerfDensity{}
	stride := len(o.Workloads) * (1 + len(designs))
	for i, ct := range coreTypes {
		fig := speedupFromResults(perType[i], designs, results[i*stride:(i+1)*stride])
		for _, d := range designs {
			pref := prefetcherAreaPerCore(d, o.Cores)
			dp := area.Evaluate(d.String(), ct.internal(), pref, fig.Geo[d.String()])
			pd.Points = append(pd.Points, PDPoint{
				CoreType:          ct.String(),
				Design:            d.String(),
				RelPerf:           dp.RelPerf,
				RelArea:           dp.RelArea,
				PD:                dp.PD(),
				PrefetcherAreaMM2: pref,
			})
		}
	}
	return pd, nil
}

// Point returns the design point for (coreType, design), or nil.
func (p *PerfDensity) Point(ct CoreType, d Design) *PDPoint {
	for i := range p.Points {
		if p.Points[i].CoreType == ct.String() && p.Points[i].Design == d.String() {
			return &p.Points[i]
		}
	}
	return nil
}

// SHIFTPDGainOver returns SHIFT's PD improvement over the given design on
// the given core type (e.g. 0.59 for 59%).
func (p *PerfDensity) SHIFTPDGainOver(d Design, ct CoreType) float64 {
	sh := p.Point(ct, DesignSHIFT)
	other := p.Point(ct, d)
	if sh == nil || other == nil || other.PD == 0 {
		return 0
	}
	return sh.PD/other.PD - 1
}

// Figure2 renders the PIF_32K rows of the study — the paper's Figure 2
// (relative performance vs relative area against the PD=1 line).
func (p *PerfDensity) Figure2() string {
	t := stats.NewTable("Core", "Relative perf", "Relative area", "PD", "Region")
	for _, ct := range AllCoreTypes() {
		pt := p.Point(ct, DesignPIF32K)
		if pt == nil {
			continue
		}
		region := "PD gain"
		if pt.PD < 1 {
			region = "PD loss"
		} else if pt.PD < 1.005 {
			region = "~PD neutral"
		}
		t.AddRow(ct.String(), fmt.Sprintf("%.3f", pt.RelPerf),
			fmt.Sprintf("%.3f", pt.RelArea), fmt.Sprintf("%.3f", pt.PD), region)
	}
	return "Figure 2: PIF_32K performance vs area by core type (PD=1 line separates gain/loss)\n" + t.String()
}

// String renders the full Section 5.6 PD table.
func (p *PerfDensity) String() string {
	t := stats.NewTable("Core", "Design", "Rel perf", "Pref. area/core (mm^2)", "Rel area", "PD")
	for _, pt := range p.Points {
		t.AddRow(pt.CoreType, pt.Design,
			fmt.Sprintf("%.3f", pt.RelPerf),
			fmt.Sprintf("%.3f", pt.PrefetcherAreaMM2),
			fmt.Sprintf("%.3f", pt.RelArea),
			fmt.Sprintf("%.3f", pt.PD))
	}
	var b strings.Builder
	b.WriteString("Section 5.6: Performance-density comparison\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "SHIFT PD gain over PIF_32K: Fat-OoO %+.0f%%, Lean-OoO %+.0f%%, Lean-IO %+.0f%% (paper: +2%%, +16%%, +59%%)\n",
		p.SHIFTPDGainOver(DesignPIF32K, FatOoO)*100,
		p.SHIFTPDGainOver(DesignPIF32K, LeanOoO)*100,
		p.SHIFTPDGainOver(DesignPIF32K, LeanIO)*100)
	return b.String()
}
