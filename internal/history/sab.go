package history

import (
	"fmt"

	"shift/internal/trace"
)

// SABConfig sizes the per-core stream address buffers. Defaults are the
// paper's tuned values (Section 4.1): four streams, twelve records per
// stream, lookahead of five records.
type SABConfig struct {
	// Streams is the number of concurrent streams replayed per core
	// ("multiple stream buffers (four in our design) to replay multiple
	// streams, which may arise due to frequent traps and context
	// switches").
	Streams int
	// Capacity is the maximum region records queued per stream.
	Capacity int
	// Lookahead is how many records ahead of the stream head are read
	// from the history buffer when a stream starts or advances.
	Lookahead int
	// Span is the spatial region span used for Contains tests.
	Span int
}

// DefaultSABConfig returns the paper's tuned parameters.
func DefaultSABConfig() SABConfig {
	return SABConfig{Streams: 4, Capacity: 12, Lookahead: 5, Span: DefaultRegionSpan}
}

// Validate reports the first problem with c, or nil.
func (c SABConfig) Validate() error {
	switch {
	case c.Streams <= 0:
		return fmt.Errorf("history: SAB streams %d <= 0", c.Streams)
	case c.Capacity <= 0:
		return fmt.Errorf("history: SAB capacity %d <= 0", c.Capacity)
	case c.Lookahead <= 0:
		return fmt.Errorf("history: SAB lookahead %d <= 0", c.Lookahead)
	case c.Span < 2 || c.Span > MaxRegionSpan:
		return fmt.Errorf("history: SAB span %d out of [2,%d]", c.Span, MaxRegionSpan)
	}
	return nil
}

// posRegion is a region record together with its history position.
type posRegion struct {
	pos uint64
	r   Region
}

// stream is one replay context: a queue of upcoming region records and
// the history position from which to read further records. pfIdx marks
// how many records from the queue head have already been issued as
// prefetches; the issue window never runs more than Lookahead records
// ahead of the replay point, bounding the prefetches wasted when the
// stream is abandoned.
type stream struct {
	regions []posRegion
	pfIdx   int
	nextPos uint64
	lastUse uint64
	live    bool
}

// SAB is one core's stream address buffer file.
type SAB struct {
	cfg     SABConfig
	streams []stream
	clock   uint64

	allocs    int64
	advances  int64
	evictions int64
}

// NewSAB builds a stream address buffer file.
func NewSAB(cfg SABConfig) (*SAB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SAB{cfg: cfg, streams: make([]stream, cfg.Streams)}, nil
}

// MustNewSAB panics on config errors.
func MustNewSAB(cfg SABConfig) *SAB {
	s, err := NewSAB(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the SAB configuration.
func (s *SAB) Config() SABConfig { return s.cfg }

// Covers reports whether blk falls inside any queued region of any live
// stream, without modifying state.
func (s *SAB) Covers(blk trace.BlockAddr) bool {
	_, _, ok := s.find(blk)
	return ok
}

// find locates the first (stream, region) covering blk.
func (s *SAB) find(blk trace.BlockAddr) (si, ri int, ok bool) {
	for si := range s.streams {
		st := &s.streams[si]
		if !st.live {
			continue
		}
		for ri := range st.regions {
			if st.regions[ri].r.Contains(blk, s.cfg.Span) {
				return si, ri, true
			}
		}
	}
	return 0, 0, false
}

// Advance consumes a retired/fetched block. If a live stream covers blk,
// records queued before the covering record are dropped (the stream has
// moved past them), and the call returns the stream index and how many
// replacement records the caller should read from the history buffer to
// keep Lookahead records in flight ahead of the core. Capacity only
// bounds storage; the issue window is the lookahead, which bounds the
// prefetches wasted when a stream is abandoned.
func (s *SAB) Advance(blk trace.BlockAddr) (si, needed int, ok bool) {
	si, ri, ok := s.find(blk)
	if !ok {
		return 0, 0, false
	}
	st := &s.streams[si]
	if ri > 0 {
		st.regions = append(st.regions[:0], st.regions[ri:]...)
		st.pfIdx -= ri
		if st.pfIdx < 0 {
			st.pfIdx = 0
		}
	}
	s.clock++
	st.lastUse = s.clock
	s.advances++
	needed = s.cfg.Lookahead - len(st.regions)
	if max := s.cfg.Capacity - len(st.regions); needed > max {
		needed = max
	}
	if needed < 0 {
		needed = 0
	}
	return si, needed, true
}

// Alloc claims a stream for a new replay, evicting the least recently
// used live stream if all are busy. The returned stream is empty.
func (s *SAB) Alloc() int {
	victim := 0
	var victimUse uint64 = ^uint64(0)
	for i := range s.streams {
		if !s.streams[i].live {
			victim, victimUse = i, 0
			break
		}
		if s.streams[i].lastUse < victimUse {
			victim, victimUse = i, s.streams[i].lastUse
		}
	}
	if s.streams[victim].live {
		s.evictions++
	}
	s.clock++
	s.streams[victim] = stream{live: true, lastUse: s.clock}
	s.allocs++
	return victim
}

// Fill appends records (with their history positions) to stream si and
// sets the position from which subsequent reads continue. If the queue
// exceeds capacity, the oldest records are evicted (Section 4.1: "the
// oldest spatial region record is evicted to make space").
func (s *SAB) Fill(si int, recs []posRegion, nextPos uint64) {
	st := &s.streams[si]
	if !st.live {
		return
	}
	st.regions = append(st.regions, recs...)
	if over := len(st.regions) - s.cfg.Capacity; over > 0 {
		st.regions = append(st.regions[:0], st.regions[over:]...)
		st.pfIdx -= over
		if st.pfIdx < 0 {
			st.pfIdx = 0
		}
	}
	st.nextPos = nextPos
}

// TakePrefetchWindow appends to dst the queued records of stream si that
// are inside the issue window (the first Lookahead records of the queue)
// and have not been issued yet, marking them issued. Prefetch issue is
// thus decoupled from history read granularity: virtualized SHIFT reads
// whole 12-record history blocks into the queue, but prefetches still
// trickle out at the lookahead rate as the stream advances.
func (s *SAB) TakePrefetchWindow(si int, dst []Region) []Region {
	st := &s.streams[si]
	if !st.live {
		return dst
	}
	end := s.cfg.Lookahead
	if end > len(st.regions) {
		end = len(st.regions)
	}
	for i := st.pfIdx; i < end; i++ {
		dst = append(dst, st.regions[i].r)
	}
	if end > st.pfIdx {
		st.pfIdx = end
	}
	return dst
}

// FillRegions is Fill for callers that track positions themselves.
func (s *SAB) FillRegions(si int, recs []Region, basePos, nextPos uint64) {
	tmp := make([]posRegion, len(recs))
	for i, r := range recs {
		tmp[i] = posRegion{pos: basePos + uint64(i), r: r}
	}
	s.Fill(si, tmp, nextPos)
}

// NextPos returns the history position stream si continues reading from.
func (s *SAB) NextPos(si int) uint64 { return s.streams[si].nextPos }

// StreamLen returns the queued record count of stream si.
func (s *SAB) StreamLen(si int) int { return len(s.streams[si].regions) }

// LiveStreams returns the number of live streams.
func (s *SAB) LiveStreams() int {
	n := 0
	for i := range s.streams {
		if s.streams[i].live {
			n++
		}
	}
	return n
}

// Reset invalidates all streams (used at workload switches).
func (s *SAB) Reset() {
	for i := range s.streams {
		s.streams[i] = stream{}
	}
}

// Stats returns (allocations, advances, stream evictions).
func (s *SAB) Stats() (allocs, advances, evictions int64) {
	return s.allocs, s.advances, s.evictions
}

// CheckInvariants verifies stream bounds; used by property tests.
func (s *SAB) CheckInvariants() error {
	if len(s.streams) != s.cfg.Streams {
		return fmt.Errorf("history: stream count %d != %d", len(s.streams), s.cfg.Streams)
	}
	for i := range s.streams {
		if n := len(s.streams[i].regions); n > s.cfg.Capacity {
			return fmt.Errorf("history: stream %d holds %d > capacity %d", i, n, s.cfg.Capacity)
		}
		if !s.streams[i].live && len(s.streams[i].regions) > 0 {
			return fmt.Errorf("history: dead stream %d holds records", i)
		}
	}
	return nil
}
