package history

import (
	"fmt"
	"math/bits"

	"shift/internal/trace"
)

// SABConfig sizes the per-core stream address buffers. Defaults are the
// paper's tuned values (Section 4.1): four streams, twelve records per
// stream, lookahead of five records.
type SABConfig struct {
	// Streams is the number of concurrent streams replayed per core
	// ("multiple stream buffers (four in our design) to replay multiple
	// streams, which may arise due to frequent traps and context
	// switches").
	Streams int
	// Capacity is the maximum region records queued per stream.
	Capacity int
	// Lookahead is how many records ahead of the stream head are read
	// from the history buffer when a stream starts or advances.
	Lookahead int
	// Span is the spatial region span used for Contains tests.
	Span int
}

// DefaultSABConfig returns the paper's tuned parameters.
func DefaultSABConfig() SABConfig {
	return SABConfig{Streams: 4, Capacity: 12, Lookahead: 5, Span: DefaultRegionSpan}
}

// Validate reports the first problem with c, or nil.
func (c SABConfig) Validate() error {
	switch {
	case c.Streams <= 0:
		return fmt.Errorf("history: SAB streams %d <= 0", c.Streams)
	case c.Capacity <= 0:
		return fmt.Errorf("history: SAB capacity %d <= 0", c.Capacity)
	case c.Lookahead <= 0:
		return fmt.Errorf("history: SAB lookahead %d <= 0", c.Lookahead)
	case c.Span < 2 || c.Span > MaxRegionSpan:
		return fmt.Errorf("history: SAB span %d out of [2,%d]", c.Span, MaxRegionSpan)
	}
	return nil
}

// stream is one replay context: a queue of upcoming region records and
// the history position from which to read further records. pfIdx marks
// how many records from the queue head have already been issued as
// prefetches; the issue window never runs more than Lookahead records
// ahead of the replay point, bounding the prefetches wasted when the
// stream is abandoned.
//
// The queue is stored as parallel trigger/coverage arrays rather than a
// slice of records: the per-record coverage probe (SAB.find, the hottest
// loop of the simulator) then scans a dense array of 8-byte triggers and
// 4-byte bitmaps — a couple of cache lines per stream — instead of
// striding over fat record structs. cov bit i means block Trigger+i is
// covered (bit 0, the trigger itself, is always set).
//
// lo/hi conservatively bound the union of the queued regions'
// [Trigger, Trigger+span) ranges (empty when hi == 0). The bound only
// grows while the stream lives (dropping records does not shrink it)
// and resets on Alloc, which keeps maintenance off the per-record path
// while staying a safe overapproximation. find consults it before
// scanning the queue, so the coverage probe skips streams that cannot
// possibly cover the block — the common case on the simulator hot path.
type stream struct {
	trig    []uint64
	cov     []uint32
	pfIdx   int
	nextPos uint64
	lastUse uint64
	live    bool
	lo, hi  trace.BlockAddr
}

// SAB is one core's stream address buffer file.
type SAB struct {
	cfg     SABConfig
	streams []stream
	clock   uint64

	allocs    int64
	advances  int64
	evictions int64
}

// NewSAB builds a stream address buffer file.
func NewSAB(cfg SABConfig) (*SAB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SAB{cfg: cfg, streams: make([]stream, cfg.Streams)}
	for i := range s.streams {
		// The queues are bounded by Capacity; allocate them once so no
		// steady-state operation allocates.
		s.streams[i].trig = make([]uint64, 0, cfg.Capacity)
		s.streams[i].cov = make([]uint32, 0, cfg.Capacity)
	}
	return s, nil
}

// MustNewSAB panics on config errors.
func MustNewSAB(cfg SABConfig) *SAB {
	s, err := NewSAB(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the SAB configuration.
func (s *SAB) Config() SABConfig { return s.cfg }

// Covers reports whether blk falls inside any queued region of any live
// stream, without modifying state.
func (s *SAB) Covers(blk trace.BlockAddr) bool {
	_, _, ok := s.find(blk)
	return ok
}

// find locates the first (stream, region) covering blk.
func (s *SAB) find(blk trace.BlockAddr) (si, ri int, ok bool) {
	for si := range s.streams {
		st := &s.streams[si]
		if !st.live || blk < st.lo || blk >= st.hi {
			continue
		}
		cov := st.cov[:len(st.trig)] // hoist the bounds proof out of the scan
		for ri, t := range st.trig {
			if d := uint64(blk) - t; d < MaxRegionSpan && cov[ri]>>d&1 != 0 {
				return si, ri, true
			}
		}
	}
	return 0, 0, false
}

// covMask builds the coverage bitmap of r at the configured span:
// Region.Contains ignores vector bits at or beyond span-1, so they are
// masked out here to keep the cached probe exactly equivalent.
func (s *SAB) covMask(r Region) uint32 {
	vec := uint32(r.Vec) & (1<<(s.cfg.Span-1) - 1)
	return vec<<1 | 1
}

// grow widens st's coverage bound to include the queued records in
// [from, len).
func (s *SAB) grow(st *stream, from int) {
	span := trace.BlockAddr(s.cfg.Span)
	for _, t := range st.trig[from:] {
		tb := trace.BlockAddr(t)
		if st.hi == 0 || tb < st.lo {
			st.lo = tb
		}
		if end := tb + span; end > st.hi {
			st.hi = end
		}
	}
}

// Advance consumes a retired/fetched block. If a live stream covers blk,
// records queued before the covering record are dropped (the stream has
// moved past them), and the call returns the stream index and how many
// replacement records the caller should read from the history buffer to
// keep Lookahead records in flight ahead of the core. Capacity only
// bounds storage; the issue window is the lookahead, which bounds the
// prefetches wasted when a stream is abandoned.
func (s *SAB) Advance(blk trace.BlockAddr) (si, needed int, ok bool) {
	si, ri, ok := s.find(blk)
	if !ok {
		return 0, 0, false
	}
	st := &s.streams[si]
	if ri > 0 {
		st.trig = append(st.trig[:0], st.trig[ri:]...)
		st.cov = append(st.cov[:0], st.cov[ri:]...)
		st.pfIdx -= ri
		if st.pfIdx < 0 {
			st.pfIdx = 0
		}
	}
	s.clock++
	st.lastUse = s.clock
	s.advances++
	needed = s.cfg.Lookahead - len(st.trig)
	if max := s.cfg.Capacity - len(st.trig); needed > max {
		needed = max
	}
	if needed < 0 {
		needed = 0
	}
	return si, needed, true
}

// Alloc claims a stream for a new replay, evicting the least recently
// used live stream if all are busy. The returned stream is empty.
func (s *SAB) Alloc() int {
	victim := 0
	var victimUse uint64 = ^uint64(0)
	for i := range s.streams {
		if !s.streams[i].live {
			victim, victimUse = i, 0
			break
		}
		if s.streams[i].lastUse < victimUse {
			victim, victimUse = i, s.streams[i].lastUse
		}
	}
	if s.streams[victim].live {
		s.evictions++
	}
	s.clock++
	// Reset in place, keeping the queue backing arrays so steady-state
	// stream turnover does not allocate.
	st := &s.streams[victim]
	st.trig = st.trig[:0]
	st.cov = st.cov[:0]
	st.pfIdx = 0
	st.nextPos = 0
	st.lastUse = s.clock
	st.live = true
	st.lo, st.hi = 0, 0
	s.allocs++
	return victim
}

// FillRegions appends records to stream si and sets the position from
// which subsequent reads continue. If the queue exceeds capacity, the
// oldest records are evicted (Section 4.1: "the oldest spatial region
// record is evicted to make space"). It performs no steady-state
// allocation.
func (s *SAB) FillRegions(si int, recs []Region, nextPos uint64) {
	st := &s.streams[si]
	if !st.live {
		return
	}
	from := len(st.trig)
	for _, r := range recs {
		st.trig = append(st.trig, uint64(r.Trigger))
		st.cov = append(st.cov, s.covMask(r))
	}
	s.grow(st, from)
	if over := len(st.trig) - s.cfg.Capacity; over > 0 {
		st.trig = append(st.trig[:0], st.trig[over:]...)
		st.cov = append(st.cov[:0], st.cov[over:]...)
		st.pfIdx -= over
		if st.pfIdx < 0 {
			st.pfIdx = 0
		}
	}
	st.nextPos = nextPos
}

// TakePrefetchBlocks appends to dst the block addresses covered by the
// un-issued records inside the issue window (the first Lookahead records
// of the queue) — trigger first, then set vector offsets ascending,
// exactly as Region.Blocks orders them — skipping `skip` (the block
// being demand-fetched right now), and marks the records issued.
// Prefetch issue is thus decoupled from history read granularity:
// virtualized SHIFT reads whole 12-record history blocks into the
// queue, but prefetches still trickle out at the lookahead rate as the
// stream advances.
func (s *SAB) TakePrefetchBlocks(si int, skip trace.BlockAddr, dst []trace.BlockAddr) []trace.BlockAddr {
	st := &s.streams[si]
	if !st.live {
		return dst
	}
	end := s.cfg.Lookahead
	if end > len(st.trig) {
		end = len(st.trig)
	}
	for i := st.pfIdx; i < end; i++ {
		t := trace.BlockAddr(st.trig[i])
		for cov := st.cov[i]; cov != 0; cov &= cov - 1 {
			b := t + trace.BlockAddr(bits.TrailingZeros32(cov))
			if b != skip {
				dst = append(dst, b)
			}
		}
	}
	if end > st.pfIdx {
		st.pfIdx = end
	}
	return dst
}

// NextPos returns the history position stream si continues reading from.
func (s *SAB) NextPos(si int) uint64 { return s.streams[si].nextPos }

// StreamLen returns the queued record count of stream si.
func (s *SAB) StreamLen(si int) int { return len(s.streams[si].trig) }

// LiveStreams returns the number of live streams.
func (s *SAB) LiveStreams() int {
	n := 0
	for i := range s.streams {
		if s.streams[i].live {
			n++
		}
	}
	return n
}

// Reset invalidates all streams (used at workload switches).
func (s *SAB) Reset() {
	for i := range s.streams {
		st := &s.streams[i]
		st.trig = st.trig[:0]
		st.cov = st.cov[:0]
		*st = stream{trig: st.trig, cov: st.cov}
	}
}

// Stats returns (allocations, advances, stream evictions).
func (s *SAB) Stats() (allocs, advances, evictions int64) {
	return s.allocs, s.advances, s.evictions
}

// CheckInvariants verifies stream bounds; used by property tests.
func (s *SAB) CheckInvariants() error {
	if len(s.streams) != s.cfg.Streams {
		return fmt.Errorf("history: stream count %d != %d", len(s.streams), s.cfg.Streams)
	}
	for i := range s.streams {
		st := &s.streams[i]
		if len(st.trig) != len(st.cov) {
			return fmt.Errorf("history: stream %d trigger/coverage length mismatch", i)
		}
		if n := len(st.trig); n > s.cfg.Capacity {
			return fmt.Errorf("history: stream %d holds %d > capacity %d", i, n, s.cfg.Capacity)
		}
		if !st.live && len(st.trig) > 0 {
			return fmt.Errorf("history: dead stream %d holds records", i)
		}
		for ri := range st.trig {
			t := trace.BlockAddr(st.trig[ri])
			if t < st.lo || t+trace.BlockAddr(s.cfg.Span) > st.hi {
				return fmt.Errorf("history: stream %d region %d outside coverage bound [%d,%d)", i, ri, st.lo, st.hi)
			}
			if st.cov[ri]&1 == 0 {
				return fmt.Errorf("history: stream %d region %d missing trigger coverage bit", i, ri)
			}
		}
	}
	return nil
}
