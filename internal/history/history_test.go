package history

import (
	"testing"
	"testing/quick"

	"shift/internal/trace"
)

func TestRegionContains(t *testing.T) {
	r := Region{Trigger: 100, Vec: 0b0000101} // +1 and +3
	span := 8
	if !r.Contains(100, span) {
		t.Error("trigger not contained")
	}
	if !r.Contains(101, span) || !r.Contains(103, span) {
		t.Error("vector blocks not contained")
	}
	if r.Contains(102, span) || r.Contains(104, span) || r.Contains(99, span) || r.Contains(108, span) {
		t.Error("uncovered blocks reported contained")
	}
}

func TestRegionBlocksAndCount(t *testing.T) {
	r := Region{Trigger: 10, Vec: 0b1000001}
	got := r.Blocks(nil, 8)
	want := []trace.BlockAddr{10, 11, 17}
	if len(got) != len(want) {
		t.Fatalf("Blocks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Blocks = %v, want %v", got, want)
		}
	}
	if r.Count(8) != 3 {
		t.Errorf("Count = %d, want 3", r.Count(8))
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestRegionBlocksContainsAgreeProperty(t *testing.T) {
	f := func(trigger uint32, vec uint16, probe uint8) bool {
		r := Region{Trigger: trace.BlockAddr(trigger), Vec: vec & 0x7F}
		span := 8
		blocks := r.Blocks(nil, span)
		inList := false
		b := trace.BlockAddr(trigger) + trace.BlockAddr(probe%10)
		for _, x := range blocks {
			if x == b {
				inList = true
			}
		}
		return inList == r.Contains(b, span)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStorageMathMatchesPaper(t *testing.T) {
	// Section 4.2: 34-bit trigger + 7-bit vector = 41 bits; 12 records per
	// 64-byte block.
	if got := BitsPerRecord(8); got != 41 {
		t.Errorf("BitsPerRecord(8) = %d, want 41", got)
	}
	if got := RecordsPerCacheBlock(8); got != 12 {
		t.Errorf("RecordsPerCacheBlock(8) = %d, want 12", got)
	}
}

func TestBuilderSequence(t *testing.T) {
	b := MustNewBuilder(8)
	// Paper Figure 4(a): access stream A, A+2, A+3, B  => record (A, 0110).
	// With bit i meaning trigger+i+1: +2 sets bit 1, +3 sets bit 2.
	A := trace.BlockAddr(1000)
	B := trace.BlockAddr(5000)
	for _, blk := range []trace.BlockAddr{A, A + 2, A + 3} {
		if _, done := b.Add(blk); done {
			t.Fatal("region closed early")
		}
	}
	rec, done := b.Add(B)
	if !done {
		t.Fatal("region not closed by out-of-region access")
	}
	if rec.Trigger != A || rec.Vec != 0b0000110 {
		t.Errorf("record = %+v, want trigger A vec 0110", rec)
	}
	// Flush yields the open region for B.
	rec, ok := b.Flush()
	if !ok || rec.Trigger != B {
		t.Errorf("Flush = %+v, %v", rec, ok)
	}
	if _, ok := b.Flush(); ok {
		t.Error("second Flush should be empty")
	}
}

func TestBuilderRepeatedTrigger(t *testing.T) {
	b := MustNewBuilder(8)
	b.Add(50)
	if _, done := b.Add(50); done {
		t.Error("re-access of trigger closed region")
	}
	rec, _ := b.Flush()
	if rec.Vec != 0 {
		t.Errorf("vec = %#x, want 0", rec.Vec)
	}
}

func TestBuilderBackwardAccessCloses(t *testing.T) {
	b := MustNewBuilder(8)
	b.Add(100)
	rec, done := b.Add(99) // backward: outside region
	if !done || rec.Trigger != 100 {
		t.Errorf("backward access: rec=%+v done=%v", rec, done)
	}
}

func TestBuilderSpanValidation(t *testing.T) {
	if _, err := NewBuilder(1); err == nil {
		t.Error("span 1 accepted")
	}
	if _, err := NewBuilder(17); err == nil {
		t.Error("span 17 accepted")
	}
	if b, err := NewBuilder(0); err != nil || b.Span() != DefaultRegionSpan {
		t.Errorf("span 0 should default to %d", DefaultRegionSpan)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewBuilder should panic")
		}
	}()
	MustNewBuilder(99)
}

func TestBufferAppendRead(t *testing.T) {
	b := MustNewBuffer(4)
	if b.Len() != 0 || b.WritePos() != 0 {
		t.Fatal("new buffer not empty")
	}
	p0 := b.Append(Region{Trigger: 1})
	p1 := b.Append(Region{Trigger: 2})
	if p0 != 0 || p1 != 1 {
		t.Fatalf("positions %d, %d", p0, p1)
	}
	if r, ok := b.Read(p0); !ok || r.Trigger != 1 {
		t.Errorf("Read(p0) = %+v, %v", r, ok)
	}
	if _, ok := b.Read(99); ok {
		t.Error("read past write pointer succeeded")
	}
}

func TestBufferWrapInvalidation(t *testing.T) {
	b := MustNewBuffer(4)
	positions := make([]uint64, 6)
	for i := 0; i < 6; i++ {
		positions[i] = b.Append(Region{Trigger: trace.BlockAddr(i)})
	}
	// Capacity 4: positions 0 and 1 are overwritten.
	for i := 0; i < 2; i++ {
		if b.Valid(positions[i]) {
			t.Errorf("position %d still valid after wrap", i)
		}
	}
	for i := 2; i < 6; i++ {
		r, ok := b.Read(positions[i])
		if !ok || r.Trigger != trace.BlockAddr(i) {
			t.Errorf("position %d: %+v, %v", i, r, ok)
		}
	}
	if b.Len() != 4 {
		t.Errorf("Len = %d, want 4", b.Len())
	}
}

func TestBufferReadSeq(t *testing.T) {
	b := MustNewBuffer(8)
	for i := 0; i < 5; i++ {
		b.Append(Region{Trigger: trace.BlockAddr(i)})
	}
	recs, next := b.ReadSeq(nil, 2, 10)
	if len(recs) != 3 || next != 5 {
		t.Fatalf("ReadSeq = %d recs, next %d; want 3, 5", len(recs), next)
	}
	for i, r := range recs {
		if r.Trigger != trace.BlockAddr(2+i) {
			t.Errorf("rec %d = %+v", i, r)
		}
	}
}

func TestBufferValidityProperty(t *testing.T) {
	f := func(appends uint16, probe uint16) bool {
		b := MustNewBuffer(16)
		n := uint64(appends % 200)
		for i := uint64(0); i < n; i++ {
			b.Append(Region{})
		}
		p := uint64(probe)
		want := p < n && n-p <= 16
		return b.Valid(p) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferRejectsBadCap(t *testing.T) {
	if _, err := NewBuffer(0); err == nil {
		t.Error("zero capacity accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewBuffer should panic")
		}
	}()
	MustNewBuffer(-1)
}

func TestIndexTableBasic(t *testing.T) {
	it := MustNewIndexTable(8, 4)
	if it.Cap() != 8 {
		t.Fatalf("Cap = %d", it.Cap())
	}
	if _, ok := it.Lookup(5); ok {
		t.Fatal("hit in empty table")
	}
	it.Update(5, 123)
	if pos, ok := it.Lookup(5); !ok || pos != 123 {
		t.Fatalf("Lookup = %d, %v", pos, ok)
	}
	it.Update(5, 456) // update in place
	if pos, _ := it.Lookup(5); pos != 456 {
		t.Errorf("updated pos = %d, want 456", pos)
	}
	if it.Len() != 1 {
		t.Errorf("Len = %d, want 1", it.Len())
	}
	if hr := it.HitRate(); hr <= 0 || hr > 1 {
		t.Errorf("HitRate = %v", hr)
	}
}

func TestIndexTableCapacityEviction(t *testing.T) {
	it := MustNewIndexTable(8, 4) // 2 sets of 4
	// Fill one set (triggers = even numbers map to set 0 with 2 sets).
	for i := 0; i < 8; i++ {
		it.Update(trace.BlockAddr(i*2), uint64(i))
	}
	if it.Len() > 8 {
		t.Errorf("Len = %d exceeds capacity", it.Len())
	}
	// The oldest entries in the overfilled set must be gone.
	if _, ok := it.Lookup(0); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := it.Lookup(14); !ok {
		t.Error("MRU entry evicted")
	}
}

func TestIndexTableLRUTouchOnLookup(t *testing.T) {
	it := MustNewIndexTable(4, 4)
	for i := 0; i < 4; i++ {
		it.Update(trace.BlockAddr(i), uint64(i))
	}
	it.Lookup(0) // make 0 MRU
	it.Update(100, 99)
	if _, ok := it.Lookup(0); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := it.Lookup(1); ok {
		t.Error("LRU entry survived")
	}
}

func TestIndexTableValidation(t *testing.T) {
	if _, err := NewIndexTable(0, 1); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewIndexTable(8, 3); err == nil {
		t.Error("non-dividing assoc accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewIndexTable should panic")
		}
	}()
	MustNewIndexTable(8, 0)
}

func TestIndexTableCapProperty(t *testing.T) {
	f := func(updates []uint16) bool {
		it := MustNewIndexTable(16, 4)
		for i, u := range updates {
			it.Update(trace.BlockAddr(u), uint64(i))
			if it.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
