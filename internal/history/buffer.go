package history

import "fmt"

// Buffer is the circular history buffer of spatial region records
// (Section 4.1: "The history buffer, logically organized as a circular
// buffer, maintains the stream of retired instructions as a queue of
// spatial region records").
//
// Positions are absolute (monotonically increasing), so a stale index
// pointer to an overwritten entry is detected rather than silently
// replaying unrelated records.
type Buffer struct {
	records []Region
	next    uint64 // absolute position of the next write
}

// NewBuffer allocates a history buffer with the given record capacity.
func NewBuffer(capacity int) (*Buffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("history: buffer capacity %d <= 0", capacity)
	}
	return &Buffer{records: make([]Region, capacity)}, nil
}

// MustNewBuffer panics on config errors.
func MustNewBuffer(capacity int) *Buffer {
	b, err := NewBuffer(capacity)
	if err != nil {
		panic(err)
	}
	return b
}

// Cap returns the record capacity.
func (b *Buffer) Cap() int { return len(b.records) }

// WritePos returns the absolute position the next Append will write to
// (the paper's write pointer).
func (b *Buffer) WritePos() uint64 { return b.next }

// Append stores r and returns its absolute position.
func (b *Buffer) Append(r Region) uint64 {
	pos := b.next
	b.records[pos%uint64(len(b.records))] = r
	b.next++
	return pos
}

// Valid reports whether pos still refers to live (not yet overwritten)
// history.
func (b *Buffer) Valid(pos uint64) bool {
	if pos >= b.next {
		return false
	}
	return b.next-pos <= uint64(len(b.records))
}

// Read returns the record at absolute position pos.
func (b *Buffer) Read(pos uint64) (Region, bool) {
	if !b.Valid(pos) {
		return Region{}, false
	}
	return b.records[pos%uint64(len(b.records))], true
}

// ReadSeq appends up to n consecutive records starting at pos to dst,
// stopping at the write pointer or at the first invalid position. It
// returns the extended slice and the position after the last record read.
func (b *Buffer) ReadSeq(dst []Region, pos uint64, n int) ([]Region, uint64) {
	for i := 0; i < n; i++ {
		r, ok := b.Read(pos)
		if !ok {
			break
		}
		dst = append(dst, r)
		pos++
	}
	return dst, pos
}

// Len returns the number of live records (saturates at capacity).
func (b *Buffer) Len() int {
	if b.next < uint64(len(b.records)) {
		return int(b.next)
	}
	return len(b.records)
}
