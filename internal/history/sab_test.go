package history

import (
	"testing"
	"testing/quick"

	"shift/internal/trace"
)

func sabCfg() SABConfig { return DefaultSABConfig() }

func TestSABConfigValidate(t *testing.T) {
	if err := DefaultSABConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if DefaultSABConfig().Streams != 4 || DefaultSABConfig().Capacity != 12 || DefaultSABConfig().Lookahead != 5 {
		t.Error("defaults do not match the paper's tuned values (4 streams, 12 records, lookahead 5)")
	}
	bad := []SABConfig{
		{Streams: 0, Capacity: 12, Lookahead: 5, Span: 8},
		{Streams: 4, Capacity: 0, Lookahead: 5, Span: 8},
		{Streams: 4, Capacity: 12, Lookahead: 0, Span: 8},
		{Streams: 4, Capacity: 12, Lookahead: 5, Span: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSABAllocAndFill(t *testing.T) {
	s := MustNewSAB(sabCfg())
	si := s.Alloc()
	s.FillRegions(si, []Region{{Trigger: 100, Vec: 0b11}}, 1)
	if !s.Covers(100) || !s.Covers(101) || !s.Covers(102) {
		t.Error("filled region not covered")
	}
	if s.Covers(104) {
		t.Error("uncovered block reported covered")
	}
	if s.NextPos(si) != 1 {
		t.Errorf("NextPos = %d", s.NextPos(si))
	}
	if s.LiveStreams() != 1 {
		t.Errorf("LiveStreams = %d", s.LiveStreams())
	}
}

func TestSABAdvanceDropsPassedRegions(t *testing.T) {
	s := MustNewSAB(sabCfg())
	si := s.Alloc()
	recs := []Region{{Trigger: 10}, {Trigger: 20}, {Trigger: 30}}
	s.FillRegions(si, recs, 3)
	// Advance to the block in region 2 (trigger 30): regions 10 and 20
	// are passed and must be dropped.
	gotSi, needed, ok := s.Advance(30)
	if !ok || gotSi != si {
		t.Fatalf("Advance = %d, %v", gotSi, ok)
	}
	if s.StreamLen(si) != 1 {
		t.Errorf("StreamLen = %d, want 1", s.StreamLen(si))
	}
	// The issue window tops up to Lookahead records: 1 remains queued,
	// so 4 replacements are requested.
	if needed != sabCfg().Lookahead-1 {
		t.Errorf("needed = %d, want %d", needed, sabCfg().Lookahead-1)
	}
	if s.Covers(10) || s.Covers(20) {
		t.Error("passed regions still covered")
	}
}

func TestSABAdvanceMissReturnsFalse(t *testing.T) {
	s := MustNewSAB(sabCfg())
	if _, _, ok := s.Advance(42); ok {
		t.Error("Advance hit in empty SAB")
	}
}

func TestSABCapacityEviction(t *testing.T) {
	cfg := sabCfg()
	s := MustNewSAB(cfg)
	si := s.Alloc()
	recs := make([]Region, cfg.Capacity+5)
	for i := range recs {
		recs[i] = Region{Trigger: trace.BlockAddr(1000 + 100*i)}
	}
	s.FillRegions(si, recs, uint64(len(recs)))
	if s.StreamLen(si) != cfg.Capacity {
		t.Errorf("StreamLen = %d, want %d", s.StreamLen(si), cfg.Capacity)
	}
	// Oldest records must have been evicted.
	if s.Covers(1000) {
		t.Error("oldest record survived over-capacity fill")
	}
	if !s.Covers(trace.BlockAddr(1000 + 100*(len(recs)-1))) {
		t.Error("newest record missing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSABLRUStreamReplacement(t *testing.T) {
	cfg := sabCfg()
	s := MustNewSAB(cfg)
	sis := make([]int, cfg.Streams)
	for i := range sis {
		sis[i] = s.Alloc()
		s.FillRegions(sis[i], []Region{{Trigger: trace.BlockAddr(100 * (i + 1))}}, 0)
	}
	// Touch stream 0 so stream 1 is LRU.
	s.Advance(100)
	victim := s.Alloc()
	if victim != sis[1] {
		t.Errorf("Alloc evicted stream %d, want LRU stream %d", victim, sis[1])
	}
	_, advances, evictions := func() (int64, int64, int64) { return s.Stats() }()
	if advances != 1 || evictions != 1 {
		t.Errorf("advances=%d evictions=%d", advances, evictions)
	}
}

func TestSABReset(t *testing.T) {
	s := MustNewSAB(sabCfg())
	si := s.Alloc()
	s.FillRegions(si, []Region{{Trigger: 5}}, 0)
	s.Reset()
	if s.LiveStreams() != 0 || s.Covers(5) {
		t.Error("Reset did not clear streams")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSABFillDeadStreamIgnored(t *testing.T) {
	s := MustNewSAB(sabCfg())
	s.FillRegions(0, []Region{{Trigger: 5}}, 0) // never allocated
	if s.Covers(5) {
		t.Error("fill of dead stream took effect")
	}
}

func TestSABInvariantsProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		s := MustNewSAB(sabCfg())
		rng := trace.NewRNG(seed)
		for _, op := range ops {
			blk := trace.BlockAddr(op % 512)
			switch rng.Intn(3) {
			case 0:
				si := s.Alloc()
				n := 1 + rng.Intn(20)
				recs := make([]Region, n)
				for i := range recs {
					recs[i] = Region{Trigger: blk + trace.BlockAddr(i*10), Vec: uint16(rng.Intn(128))}
				}
				s.FillRegions(si, recs, uint64(n))
			case 1:
				s.Advance(blk)
			case 2:
				s.Covers(blk)
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSABRejectsBadConfig(t *testing.T) {
	if _, err := NewSAB(SABConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewSAB should panic")
		}
	}()
	MustNewSAB(SABConfig{})
}
