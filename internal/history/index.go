package history

import (
	"fmt"

	"shift/internal/trace"
)

// IndexTable maps trigger instruction-block addresses to the absolute
// history-buffer position of their most recent occurrence (Section 4.1:
// "each entry is tagged with a trigger instruction block address and
// stores a pointer to that block's most recent occurrence").
//
// It is organized as a set-associative, LRU-replaced structure so that
// the capacity-limited design points of the paper (PIF's 8K-entry and
// 512-entry index tables) behave like the hardware they model.
type IndexTable struct {
	assoc   int
	sets    [][]idxEntry
	clock   uint64
	entries int
	// setMask accelerates the set index when the set count is a power
	// of two (all paper design points): trigger&setMask ≡ trigger%sets,
	// sparing an integer division on the simulator's hot path. Zero
	// when the set count is not a power of two.
	setMask uint64

	lookups int64
	hits    int64
}

type idxEntry struct {
	trigger trace.BlockAddr
	pos     uint64
	lru     uint64
	valid   bool
}

// NewIndexTable builds a table with `entries` total entries and the given
// associativity.
func NewIndexTable(entries, assoc int) (*IndexTable, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("history: index entries %d <= 0", entries)
	}
	if assoc <= 0 || entries%assoc != 0 {
		return nil, fmt.Errorf("history: index assoc %d does not divide entries %d", assoc, entries)
	}
	nsets := entries / assoc
	t := &IndexTable{assoc: assoc, entries: entries, sets: make([][]idxEntry, nsets)}
	if nsets&(nsets-1) == 0 {
		t.setMask = uint64(nsets - 1)
	}
	backing := make([]idxEntry, entries)
	for i := range t.sets {
		t.sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return t, nil
}

// MustNewIndexTable panics on config errors.
func MustNewIndexTable(entries, assoc int) *IndexTable {
	t, err := NewIndexTable(entries, assoc)
	if err != nil {
		panic(err)
	}
	return t
}

// Cap returns the total entry capacity.
func (t *IndexTable) Cap() int { return t.entries }

func (t *IndexTable) set(trigger trace.BlockAddr) []idxEntry {
	if t.setMask != 0 || len(t.sets) == 1 {
		return t.sets[uint64(trigger)&t.setMask]
	}
	return t.sets[uint64(trigger)%uint64(len(t.sets))]
}

// Lookup returns the stored history position for trigger.
func (t *IndexTable) Lookup(trigger trace.BlockAddr) (pos uint64, ok bool) {
	t.lookups++
	set := t.set(trigger)
	for i := range set {
		if set[i].valid && set[i].trigger == trigger {
			t.clock++
			set[i].lru = t.clock
			t.hits++
			return set[i].pos, true
		}
	}
	return 0, false
}

// Update points trigger at pos, allocating (and possibly evicting LRU)
// as needed.
func (t *IndexTable) Update(trigger trace.BlockAddr, pos uint64) {
	set := t.set(trigger)
	t.clock++
	victim := 0
	var victimLRU uint64 = ^uint64(0)
	for i := range set {
		if set[i].valid && set[i].trigger == trigger {
			set[i].pos = pos
			set[i].lru = t.clock
			return
		}
		if !set[i].valid {
			victim, victimLRU = i, 0
		} else if set[i].lru < victimLRU {
			victim, victimLRU = i, set[i].lru
		}
	}
	set[victim] = idxEntry{trigger: trigger, pos: pos, lru: t.clock, valid: true}
}

// Len returns the number of valid entries.
func (t *IndexTable) Len() int {
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// HitRate returns the fraction of lookups that hit (1.0 if none yet).
func (t *IndexTable) HitRate() float64 {
	if t.lookups == 0 {
		return 1
	}
	return float64(t.hits) / float64(t.lookups)
}
