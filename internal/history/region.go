// Package history implements the temporal-instruction-streaming machinery
// shared by PIF and SHIFT (paper Sections 2.2 and 4.1):
//
//   - spatial region records: a trigger instruction-block address plus a
//     bit vector over the blocks that follow it;
//   - the region builder that collapses a retire-order block stream into
//     region records;
//   - the circular history buffer of region records with its write pointer;
//   - the index table mapping trigger addresses to their most recent
//     position in the history buffer;
//   - the per-core stream address buffers (SABs) that replay streams and
//     coordinate prefetch requests.
package history

import (
	"fmt"
	"math/bits"

	"shift/internal/trace"
)

// DefaultRegionSpan is the paper's spatial region size: the trigger block
// plus the seven following blocks ("a spatial region size of eight ...
// achieve[s] the maximum performance", Section 4.1).
const DefaultRegionSpan = 8

// MaxRegionSpan bounds the configurable span (the sensitivity sweep
// explores 2..16; the bit vector is 15 bits wide at span 16).
const MaxRegionSpan = 16

// Region is one spatial region record. Bit i of Vec set means block
// Trigger+i+1 was accessed while the region was live; the trigger block
// itself is implicitly accessed.
//
// At the paper's span of 8 this is the 41-bit record of Section 4.2
// (34-bit trigger + 7-bit vector).
type Region struct {
	Trigger trace.BlockAddr
	Vec     uint16
}

// Contains reports whether the record covers block b under the given span.
func (r Region) Contains(b trace.BlockAddr, span int) bool {
	if b == r.Trigger {
		return true
	}
	if b < r.Trigger {
		return false
	}
	off := uint64(b - r.Trigger)
	if off >= uint64(span) {
		return false
	}
	return r.Vec&(1<<(off-1)) != 0
}

// Blocks appends the covered block addresses (trigger first, then the set
// vector offsets in ascending order) to dst and returns it. The vector is
// walked set-bit by set-bit, so the cost scales with the blocks actually
// covered rather than the span.
func (r Region) Blocks(dst []trace.BlockAddr, span int) []trace.BlockAddr {
	dst = append(dst, r.Trigger)
	vec := uint32(r.Vec) & (1<<(span-1) - 1)
	for vec != 0 {
		off := bits.TrailingZeros32(vec)
		dst = append(dst, r.Trigger+trace.BlockAddr(off+1))
		vec &= vec - 1
	}
	return dst
}

// Count returns the number of blocks the record covers (trigger included).
func (r Region) Count(span int) int {
	n := 1
	for off := 1; off < span; off++ {
		if r.Vec&(1<<(off-1)) != 0 {
			n++
		}
	}
	return n
}

// String formats the record compactly.
func (r Region) String() string {
	return fmt.Sprintf("{%s vec=%#x}", r.Trigger, r.Vec)
}

// BitsPerRecord returns the storage cost of one record in bits at the
// given span: a 34-bit trigger block address plus span-1 vector bits
// (41 bits at span 8, matching Section 5.1).
func BitsPerRecord(span int) int { return trace.BlockAddrBits + span - 1 }

// RecordsPerCacheBlock returns how many records fit in a 64-byte cache
// block at the given span (12 at span 8, matching Section 4.2).
func RecordsPerCacheBlock(span int) int {
	return (trace.BlockBytes * 8) / BitsPerRecord(span)
}

// Builder collapses a retire-order stream of instruction block accesses
// into spatial region records ("the history generator core collapses
// retired instruction addresses by forming spatial regions", Section 4.1).
//
// The first access to a new region is the trigger; subsequent accesses to
// blocks within [trigger, trigger+span) set vector bits; the first access
// outside the region completes the record.
type Builder struct {
	span int
	cur  Region
	open bool
}

// NewBuilder creates a Builder with the given span (DefaultRegionSpan if 0).
func NewBuilder(span int) (*Builder, error) {
	if span == 0 {
		span = DefaultRegionSpan
	}
	if span < 2 || span > MaxRegionSpan {
		return nil, fmt.Errorf("history: region span %d out of [2,%d]", span, MaxRegionSpan)
	}
	return &Builder{span: span}, nil
}

// MustNewBuilder panics on config errors.
func MustNewBuilder(span int) *Builder {
	b, err := NewBuilder(span)
	if err != nil {
		panic(err)
	}
	return b
}

// Span returns the region span.
func (b *Builder) Span() int { return b.span }

// Add consumes one retired block access. If the access closes the current
// region, the completed record is returned with done=true.
func (b *Builder) Add(blk trace.BlockAddr) (completed Region, done bool) {
	if !b.open {
		b.cur = Region{Trigger: blk}
		b.open = true
		return Region{}, false
	}
	if blk == b.cur.Trigger {
		return Region{}, false
	}
	if blk > b.cur.Trigger {
		if off := uint64(blk - b.cur.Trigger); off < uint64(b.span) {
			b.cur.Vec |= 1 << (off - 1)
			return Region{}, false
		}
	}
	completed = b.cur
	b.cur = Region{Trigger: blk}
	return completed, true
}

// Flush completes and returns the in-progress region, if any.
func (b *Builder) Flush() (Region, bool) {
	if !b.open {
		return Region{}, false
	}
	b.open = false
	return b.cur, true
}
