// Package area provides the analytical area, energy, and performance-
// density models behind the paper's cost analyses: Section 2.3 / Figure 2
// (performance density of PIF on three core types), Section 5.1 (storage
// budgets), Section 5.6 (PD of SHIFT vs PIF), Section 5.7 (power), and
// Section 6.2 (virtualized per-core PIF cost).
//
// The paper used CACTI 6.0 at 40nm plus published core areas. CACTI is
// not reproducible here, so this package uses linear SRAM density and
// per-event energy constants *calibrated to the paper's published
// anchors*, each documented at its definition:
//
//   - 213KB of PIF storage = 0.9 mm^2  =>  ~0.00422 mm^2/KB (data SRAM);
//   - 240KB of LLC tag extension = 0.96 mm^2 total SHIFT cost
//     =>  0.004 mm^2/KB (tag SRAM);
//   - SHIFT's LLC+NoC activity < 150 mW on a 16-core CMP.
package area

import (
	"fmt"

	"shift/internal/cpu"
	"shift/internal/trace"
)

// SRAM densities at 40nm, calibrated to the paper's anchors.
const (
	// DataSRAMMM2PerKB reproduces "213KB ... occupies 0.9mm2": 0.9/213.
	DataSRAMMM2PerKB = 0.9 / 213.0
	// TagSRAMMM2PerKB reproduces SHIFT's "0.96mm2 in total" for the
	// 240KB index embedded in the LLC tag array: 0.96/240.
	TagSRAMMM2PerKB = 0.96 / 240.0
)

// DataSRAMAreaMM2 returns the area of a data SRAM of the given size.
func DataSRAMAreaMM2(bytes int64) float64 {
	return float64(bytes) / 1024 * DataSRAMMM2PerKB
}

// TagSRAMAreaMM2 returns the area of a tag SRAM of the given size.
func TagSRAMAreaMM2(bytes int64) float64 {
	return float64(bytes) / 1024 * TagSRAMMM2PerKB
}

// CoreAreaMM2 returns the core+L1 area at 40nm (Section 2.3: Xeon 25mm²,
// Cortex-A15 4.5mm², Cortex-A8 1.3mm²).
func CoreAreaMM2(t cpu.CoreType) float64 { return cpu.ParamsFor(t).AreaMM2 }

// PIFStorageBytes returns the per-core PIF storage (history + index) for
// the given record/entry counts at the paper's record geometry
// (41-bit records, 49-bit index entries): 213KB at 32K/8K.
func PIFStorageBytes(histEntries, indexEntries int) int64 {
	const recordBits, indexBits = 41, 49
	bits := int64(histEntries)*recordBits + int64(indexEntries)*indexBits
	return bits / 8
}

// PIFAreaPerCoreMM2 returns the per-core PIF area (0.9mm² at 32K/8K).
func PIFAreaPerCoreMM2(histEntries, indexEntries int) float64 {
	return DataSRAMAreaMM2(PIFStorageBytes(histEntries, indexEntries))
}

// SHIFTIndexBytes returns the LLC tag-array extension cost: one 15-bit
// pointer per LLC line (240KB for an 8MB LLC; Section 4.2 "Hardware
// cost").
func SHIFTIndexBytes(llcBytes int64) int64 {
	lines := llcBytes / trace.BlockBytes
	return lines * 15 / 8
}

// SHIFTTotalAreaMM2 returns SHIFT's total CMP-wide area cost: the tag
// extension only, since history records live inside existing LLC data
// lines ("the only source of meaningful area overhead in SHIFT is due to
// the index table appended to the LLC tag array").
func SHIFTTotalAreaMM2(llcBytes int64) float64 {
	return TagSRAMAreaMM2(SHIFTIndexBytes(llcBytes))
}

// VirtualizedPIFLLCBytes returns the LLC capacity a virtualized *per-core*
// PIF would consume (Section 6.2: "2.7MB of LLC capacity ... grows
// linearly with the number of cores"): per-core history records packed
// into cache lines, times cores.
func VirtualizedPIFLLCBytes(histEntries, cores int) int64 {
	const recordBits = 41
	recordsPerLine := int64(trace.BlockBytes * 8 / recordBits) // 12
	lines := (int64(histEntries) + recordsPerLine - 1) / recordsPerLine
	return lines * trace.BlockBytes * int64(cores)
}

// DesignPoint is one point of the Figure 2 / Section 5.6 PD analysis.
type DesignPoint struct {
	// Name labels the point ("PIF_32K on Lean-IO").
	Name string
	// RelPerf is performance relative to the no-prefetch baseline core.
	RelPerf float64
	// RelArea is (core + prefetcher) area over core area.
	RelArea float64
}

// PD returns performance density relative to the baseline core
// (RelPerf / RelArea); >1 lands in the paper's shaded "PD gain" region.
func (d DesignPoint) PD() float64 {
	if d.RelArea <= 0 {
		return 0
	}
	return d.RelPerf / d.RelArea
}

// Evaluate builds a design point for a prefetcher of the given per-core
// area cost achieving the given speedup on the given core type.
func Evaluate(name string, t cpu.CoreType, prefetcherAreaPerCore, speedup float64) DesignPoint {
	coreArea := CoreAreaMM2(t)
	return DesignPoint{
		Name:    name,
		RelPerf: speedup,
		RelArea: (coreArea + prefetcherAreaPerCore) / coreArea,
	}
}

// String formats a design point like the paper's PD discussion.
func (d DesignPoint) String() string {
	return fmt.Sprintf("%s: perf %.3fx, area %.3fx, PD %.3f", d.Name, d.RelPerf, d.RelArea, d.PD())
}
