package area

// EnergyModel holds the per-event energy constants of the Section 5.7
// power analysis (LLC via the CACTI-calibrated constants below, NoC via
// the paper's custom link/router/buffer model [21]). All energies are in
// nanojoules; frequency in GHz.
type EnergyModel struct {
	// LLCDataAccessNJ is one 64-byte LLC data-array read or write.
	LLCDataAccessNJ float64
	// LLCTagAccessNJ is one LLC tag-array access (index update/read).
	LLCTagAccessNJ float64
	// NoCHopDataNJ is moving one 64-byte payload one hop (link + router
	// switch fabric + buffers).
	NoCHopDataNJ float64
	// NoCHopCtrlNJ is moving a payload-free request/control flit one hop.
	NoCHopCtrlNJ float64
	// FreqGHz converts cycles to seconds.
	FreqGHz float64
}

// DefaultEnergyModel returns 40nm-class constants calibrated so that the
// paper's SHIFT activity lands under its reported 150mW budget on a
// 16-core CMP.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		LLCDataAccessNJ: 0.45,
		LLCTagAccessNJ:  0.07,
		NoCHopDataNJ:    0.10,
		NoCHopCtrlNJ:    0.02,
		FreqGHz:         2.0,
	}
}

// Activity summarizes the SHIFT-induced extra events of a measurement
// window (taken from the simulator's traffic counters).
type Activity struct {
	// HistReads and HistWrites are history-block LLC transfers; their
	// Hops fields carry the accumulated round-trip hop counts.
	HistReads, HistReadHops   int64
	HistWrites, HistWriteHops int64
	// IndexUpdates touch only the LLC tag array.
	IndexUpdates, IndexUpdateHops int64
	// Cycles is the measurement window length in core cycles.
	Cycles int64
}

// PowerMW returns the average extra power of the activity in milliwatts.
func (m EnergyModel) PowerMW(a Activity) float64 {
	if a.Cycles <= 0 {
		return 0
	}
	energyNJ := float64(a.HistReads+a.HistWrites)*m.LLCDataAccessNJ +
		float64(a.IndexUpdates)*m.LLCTagAccessNJ +
		float64(a.HistReadHops+a.HistWriteHops)*m.NoCHopDataNJ +
		float64(a.IndexUpdateHops)*m.NoCHopCtrlNJ
	seconds := float64(a.Cycles) / (m.FreqGHz * 1e9)
	// nJ / s = nW; convert to mW.
	return energyNJ / seconds * 1e-6
}
