package area

import (
	"math"
	"strings"
	"testing"

	"shift/internal/cpu"
)

func TestPIFStorageMatchesPaper(t *testing.T) {
	// Section 5.1: history 32K*41b = 164KB; index 8K*49b = 49KB.
	bytes := PIFStorageBytes(32768, 8192)
	kb := float64(bytes) / 1024
	if kb < 210 || kb > 216 {
		t.Errorf("PIF_32K storage = %.1fKB, want ~213KB", kb)
	}
	// And the area anchor: 0.9mm².
	a := PIFAreaPerCoreMM2(32768, 8192)
	if math.Abs(a-0.9) > 0.02 {
		t.Errorf("PIF area = %.3f mm², want ~0.9", a)
	}
}

func TestSHIFTIndexMatchesPaper(t *testing.T) {
	// Section 4.2: 8MB LLC, 15-bit pointer per tag => 240KB.
	b := SHIFTIndexBytes(8 * 1024 * 1024)
	kb := float64(b) / 1024
	if kb != 240 {
		t.Errorf("SHIFT index = %vKB, want 240KB", kb)
	}
	a := SHIFTTotalAreaMM2(8 * 1024 * 1024)
	if math.Abs(a-0.96) > 0.01 {
		t.Errorf("SHIFT area = %.3f mm², want ~0.96 (Section 5.6)", a)
	}
}

func TestAggregatePIFvsSHIFT(t *testing.T) {
	// Section 5.6: PIF_32K costs 14.4mm² across 16 cores vs SHIFT 0.96mm².
	agg := PIFAreaPerCoreMM2(32768, 8192) * 16
	if math.Abs(agg-14.4) > 0.3 {
		t.Errorf("aggregate PIF area = %.2f, want ~14.4", agg)
	}
	ratio := agg / SHIFTTotalAreaMM2(8*1024*1024)
	// The abstract's "14x less storage cost".
	if ratio < 13 || ratio > 16 {
		t.Errorf("area ratio = %.1fx, want ~14-15x", ratio)
	}
}

func TestVirtualizedPIFLLCBytes(t *testing.T) {
	// Section 6.2: virtualizing PIF's per-core histories needs ~2.7MB.
	b := VirtualizedPIFLLCBytes(32768, 16)
	mb := float64(b) / (1024 * 1024)
	if mb < 2.5 || mb > 2.9 {
		t.Errorf("virtualized PIF = %.2fMB, want ~2.7MB", mb)
	}
	// Linear growth in cores.
	if VirtualizedPIFLLCBytes(32768, 32) != 2*b {
		t.Error("virtualized PIF cost should grow linearly with cores")
	}
}

func TestCoreAreas(t *testing.T) {
	if CoreAreaMM2(cpu.FatOoO) != 25.0 || CoreAreaMM2(cpu.LeanOoO) != 4.5 || CoreAreaMM2(cpu.LeanIO) != 1.3 {
		t.Error("core areas do not match Section 2.3")
	}
}

func TestPDRegions(t *testing.T) {
	// Section 2.3's qualitative result: PIF (0.9mm²/core, +23%) gains PD
	// on a Xeon but loses on an A8 (+17%).
	fat := Evaluate("PIF on Fat-OoO", cpu.FatOoO, 0.9, 1.23)
	if fat.PD() <= 1 {
		t.Errorf("PIF on Fat-OoO PD = %.3f, want >1", fat.PD())
	}
	io := Evaluate("PIF on Lean-IO", cpu.LeanIO, 0.9, 1.17)
	if io.PD() >= 1 {
		t.Errorf("PIF on Lean-IO PD = %.3f, want <1", io.PD())
	}
	if !strings.Contains(fat.String(), "PD") {
		t.Error("String format")
	}
	if (DesignPoint{RelArea: 0}).PD() != 0 {
		t.Error("degenerate PD should be 0")
	}
}

func TestRelAreaComputation(t *testing.T) {
	d := Evaluate("x", cpu.LeanIO, 1.3, 1.0) // prefetcher as big as the core
	if math.Abs(d.RelArea-2.0) > 1e-9 {
		t.Errorf("RelArea = %v, want 2.0", d.RelArea)
	}
}

func TestPowerModel(t *testing.T) {
	m := DefaultEnergyModel()
	// A representative 16-core SHIFT activity profile over 1e9 cycles
	// (0.5s at 2GHz): ~60M history ops, ~25M index updates with ~4 hops
	// round trip each.
	act := Activity{
		HistReads: 25e6, HistReadHops: 100e6,
		HistWrites: 5e6, HistWriteHops: 20e6,
		IndexUpdates: 12e6, IndexUpdateHops: 48e6,
		Cycles: 1e9,
	}
	mw := m.PowerMW(act)
	if mw <= 0 {
		t.Fatalf("power = %v", mw)
	}
	// Section 5.7: "less than 150mW in total for a 16-core CMP".
	if mw >= 150 {
		t.Errorf("SHIFT power = %.1f mW, want < 150", mw)
	}
	if m.PowerMW(Activity{}) != 0 {
		t.Error("zero-cycle activity should be 0 power")
	}
}

func TestSRAMAreaLinear(t *testing.T) {
	if DataSRAMAreaMM2(2048) != 2*DataSRAMAreaMM2(1024) {
		t.Error("data SRAM area not linear")
	}
	if TagSRAMAreaMM2(0) != 0 {
		t.Error("zero bytes should be zero area")
	}
}
