// Package cache implements the set-associative caches of the simulated CMP:
// the per-core 32KB 2-way L1 instruction caches and the 16-bank, 16-way
// NUCA LLC of Table I.
//
// Beyond a plain LRU cache, it provides the two mechanisms virtualized
// SHIFT needs from the LLC (paper Section 4.2):
//
//   - pinned (non-evictable) address ranges, implemented as the paper
//     describes ("trivial logic that compares a block's address to the
//     address range reserved for the history");
//   - a per-line tag extension holding an index pointer into the history
//     buffer, returned on demand lookups and lost when the line is evicted.
//
// Prefetch bookkeeping (a prefetched bit and a referenced bit per line)
// supports the covered/overpredicted accounting of the paper's Figure 7.
//
// # Performance
//
// Every figure of the evaluation is a grid of simulations whose cost is
// dominated by per-record cache probes, so the hot operations (Lookup,
// Insert, Contains, Invalidate and the combined LookupInsert/Extract) are
// O(1) expected and allocation-free in steady state:
//
//   - very-high-associativity caches (the 128-way fully-associative
//     prefetch buffers, probed up to three times per simulated record)
//     carry a block→line hash index (open addressing, linear probing,
//     backward-shift deletion) plus intrusive recency/free lists, so
//     probes, LRU victim selection, and fills are all O(1);
//   - lower-associativity caches (the 2-way L1s, the 16-way LLC banks)
//     scan a dense compressed tag array — 4 bytes per way, one cache
//     line for a whole 16-way set — with move-to-front transposition so
//     hot blocks match on the first compare, and pick victims by
//     scanning a packed per-way word (validity + flags + stamp in 8
//     bytes) instead of fat line structs;
//   - the probe helpers are written to stay inside the compiler's
//     inlining budget, so the hot operations perform no function calls
//     for the lookup itself.
//
// The package retains the original linear-scan implementation as
// Reference (reference.go); a differential test drives both with
// randomized operation sequences and requires identical observable
// behavior.
package cache

import (
	"fmt"

	"shift/internal/trace"
)

// NoPointer is the tag-extension value meaning "no index pointer".
const NoPointer uint32 = 0xFFFFFFFF

// indexMinAssoc is the associativity at which the block→line hash index
// (and the recency/free lists) pay for themselves. Below it a linear
// scan of the set's dense compressed tag array is faster than a hash
// probe: the 2-way L1 scan is two adjacent 4-byte loads, and a whole
// 16-way LLC bank set's tags fit one cache line, which beats a
// random-access probe of a bank-sized hash table. The 128-way prefetch
// buffer, probed up to three times per simulated record, is where the
// index wins decisively (measured ~1.9x on simulator throughput).
const indexMinAssoc = 24

// noLine marks "no line" in list links and index slots.
const noLine int32 = -1

// invalidTag marks an invalid way in the tags array. Block addresses are
// 34 bits (trace.BlockAddrBits), so all-ones never collides with a real
// tag.
const invalidTag = ^uint64(0)

// invalidTag32 is the compressed-scan-tag equivalent; compressed tags
// are at most 31 bits (enforced in New), so all-ones is never real.
const invalidTag32 = ^uint32(0)

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total data capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// BlockBytes is the line size (64 in all Table I caches).
	BlockBytes int
	// TagPointers enables the per-line index-pointer tag extension
	// (LLC only, for virtualized SHIFT).
	TagPointers bool
	// IndexShift drops this many low block-address bits before set
	// indexing. Banked caches whose bank is selected by the low bits
	// (block mod #banks) must set it to log2(#banks), otherwise only
	// 1/#banks of each bank's sets are reachable.
	IndexShift uint
}

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache: SizeBytes %d <= 0", c.SizeBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: Assoc %d <= 0", c.Assoc)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: BlockBytes %d not a positive power of two", c.BlockBytes)
	case c.SizeBytes%(c.Assoc*c.BlockBytes) != 0:
		return fmt.Errorf("cache: SizeBytes %d not divisible by Assoc*BlockBytes", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Assoc * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.BlockBytes) }

// Line is one cache line's cold metadata: the tag lives in Cache.tags,
// and the hot state (valid/prefetched/referenced/pinned bits plus the
// recency stamp) is folded into the packed Cache.vlru word, so a cache
// hit updates a single word instead of a fat struct.
type line struct {
	// pointer is the tag-extension index pointer (NoPointer if unset).
	pointer uint32
	// prev/next link the line into its set's recency list while valid
	// (prev = toward MRU, next = toward LRU); while invalid, next links
	// the set's free list (listed caches only).
	prev, next int32
}

// vlru word layout: 0 means invalid; valid lines hold
// stamp<<vlruStampShift | flags. Stamps start at 1, so a valid word is
// always non-zero, and comparing whole words orders lines by recency
// (stamps are unique, so the flag bits never decide a comparison).
const (
	vlruPrefetched = 1 << 0 // installed by a prefetcher, no demand use yet
	vlruReferenced = 1 << 1 // demand-referenced since fill
	vlruPinned     = 1 << 2 // never chosen as a victim
	vlruFlags      = vlruPrefetched | vlruReferenced | vlruPinned
	vlruStampShift = 3
)

// Stats counts cache events.
type Stats struct {
	Hits             int64 // demand hits
	Misses           int64 // demand misses
	PrefetchHits     int64 // demand hits on lines brought in by prefetch
	Inserts          int64
	Evictions        int64
	PrefetchInserted int64
	// PrefetchDiscards counts prefetched lines evicted before any demand
	// reference — the paper's "discarded before used by the core".
	PrefetchDiscards int64
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg   Config
	lines []line   // nsets * assoc, set-major: per-line metadata
	tags  []uint64 // parallel to lines: block address, or invalidTag
	// vlru packs each way's hot state (validity, flag bits, recency
	// stamp — see the vlru* constants) into one word, so hits and
	// victim scans read 8 bytes per way instead of a line struct.
	vlru []uint64
	// scanTags holds the compressed per-way tags of unlisted caches: the
	// set-index bits are implied by the way's position, so the remaining
	// bits fit 32 and a 16-way set's tags fit one cache line, halving
	// the memory touched per probe. nil when the cache is indexed.
	scanTags []uint32
	// tagDropHi supports compressTag: the set-index bits [IndexShift,
	// tagDropHi) are dropped and the halves rejoined.
	tagDropHi uint
	setMask   uint64
	assoc     int32
	// listed is true for high-associativity caches, which maintain the
	// recency/free lists below; low-associativity caches pick victims by
	// scanning recency stamps instead, which is cheaper than list upkeep
	// on every touch.
	listed bool
	// mtf enables move-to-front way transposition on unlisted scans:
	// repeated probes of hot blocks terminate on the first compare. It
	// measurably pays even at 2 ways (the L1 lookup runs once per
	// simulated record, and hot blocks stick at way 0). wayMask is
	// assoc-1 (unlisted associativity is a power of two; see New).
	mtf     bool
	wayMask int32

	// head/tail are the MRU/LRU ends of each set's recency list; free is
	// the head of each set's invalid-way list (listed caches only).
	head, tail, free []int32

	// idx is the block→line hash index (nil for low-associativity caches,
	// which scan the set linearly); key and line index live in one slot
	// so a probe touches a single cache line. noLine marks an empty slot.
	idx      []idxSlot
	idxMask  uint64
	idxShift uint

	lruClock   uint64
	stats      Stats
	pinLo      trace.BlockAddr
	pinHi      trace.BlockAddr
	pinEnabled bool
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	nlines := nsets * cfg.Assoc
	c := &Cache{
		cfg:     cfg,
		setMask: uint64(nsets - 1),
		assoc:   int32(cfg.Assoc),
		listed:  cfg.Assoc >= indexMinAssoc,
		mtf:     cfg.Assoc < indexMinAssoc,
		lines:   make([]line, nlines),
		tags:    make([]uint64, nlines),
		vlru:    make([]uint64, nlines),
	}
	setBits := uint(0)
	for 1<<setBits < nsets {
		setBits++
	}
	c.tagDropHi = cfg.IndexShift + setBits
	if !c.listed && (trace.BlockAddrBits-int(setBits) > 31 || cfg.Assoc&(cfg.Assoc-1) != 0) {
		// The scan layout requires the compressed tag to fit 31 bits
		// (possible to violate only with very small set counts) and a
		// power-of-two associativity (for the way-mask arithmetic).
		// Exotic geometries fall back to the indexed/listed layout; all
		// Table I caches use their natural layout.
		c.listed = true
		c.mtf = false
	}
	if !c.listed {
		c.wayMask = c.assoc - 1
		c.scanTags = make([]uint32, nlines)
		for i := range c.scanTags {
			c.scanTags[i] = invalidTag32
		}
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for i := range c.lines {
		c.lines[i] = line{pointer: NoPointer, prev: noLine, next: noLine}
	}
	if c.listed {
		c.head = make([]int32, nsets)
		c.tail = make([]int32, nsets)
		c.free = make([]int32, nsets)
		for si := 0; si < nsets; si++ {
			c.head[si], c.tail[si] = noLine, noLine
			base := int32(si) * c.assoc
			c.free[si] = base
			for w := int32(0); w < c.assoc; w++ {
				li := base + w
				if w+1 < c.assoc {
					c.lines[li].next = li + 1
				} else {
					c.lines[li].next = noLine
				}
			}
		}
	}
	if c.listed {
		// ≤25% load: probe chains and backward-shift deletion clusters
		// stay near length one, and the table is still tiny relative to
		// the line metadata it indexes.
		size := 1
		for size < 4*nlines {
			size <<= 1
		}
		c.idx = make([]idxSlot, size)
		for i := range c.idx {
			c.idx[i].li = noLine
		}
		c.idxMask = uint64(size - 1)
		shift := uint(64)
		for s := size; s > 1; s >>= 1 {
			shift--
		}
		c.idxShift = shift
	}
	return c, nil
}

// MustNew is New that panics on config errors; for tests and fixed configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// setIndex maps a block address to its set.
func (c *Cache) setIndex(b trace.BlockAddr) uint64 {
	return (uint64(b) >> c.cfg.IndexShift) & c.setMask
}

// idxSlot is one open-addressing slot of the block→line index.
type idxSlot struct {
	key uint64
	li  int32
}

// idxHome is the preferred index slot of key (Fibonacci hashing).
func (c *Cache) idxHome(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> c.idxShift
}

// idxFind returns the line index of block key, or noLine.
func (c *Cache) idxFind(key uint64) int32 {
	for i := c.idxHome(key); ; i = (i + 1) & c.idxMask {
		s := &c.idx[i]
		if s.li == noLine {
			return noLine
		}
		if s.key == key {
			return s.li
		}
	}
}

// idxInsert records key→li. The table is sized to ≥2× the line count, so
// load stays below 50% and probe chains stay short.
func (c *Cache) idxInsert(key uint64, li int32) {
	i := c.idxHome(key)
	for c.idx[i].li != noLine {
		i = (i + 1) & c.idxMask
	}
	c.idx[i] = idxSlot{key: key, li: li}
}

// idxDelete removes key using backward-shift deletion, which keeps probe
// chains tombstone-free (Knuth 6.4 algorithm R).
func (c *Cache) idxDelete(key uint64) {
	i := c.idxHome(key)
	for {
		if c.idx[i].li == noLine {
			return // absent
		}
		if c.idx[i].key == key {
			break
		}
		i = (i + 1) & c.idxMask
	}
	j := i
	for {
		j = (j + 1) & c.idxMask
		if c.idx[j].li == noLine {
			c.idx[i].li = noLine
			return
		}
		home := c.idxHome(c.idx[j].key)
		// Move idx[j] into the hole at i only if its home position does
		// not lie in the cyclic interval (i, j] — otherwise the move would
		// break j's probe chain.
		if (j-home)&c.idxMask >= (j-i)&c.idxMask {
			c.idx[i] = c.idx[j]
			i = j
		}
	}
}

// find returns the line index holding b, or noLine. The probe helpers
// below (scan, idxFind, promote) are written to stay within the
// compiler's inlining budget so the hot operations pay no call overhead
// for the lookup itself; find is the wrapper for the colder entry
// points.
func (c *Cache) find(b trace.BlockAddr) int32 {
	if c.idx != nil {
		return c.idxFind(uint64(b))
	}
	li := c.scan(b)
	if li != noLine {
		li = c.mtfAdjust(li)
	}
	return li
}

// compressTag drops b's set-index bits (implied by way position).
func (c *Cache) compressTag(b trace.BlockAddr) uint32 {
	lo := uint64(b) & (1<<c.cfg.IndexShift - 1)
	return uint32(uint64(b)>>c.tagDropHi<<c.cfg.IndexShift | lo)
}

// scan is the pure linear probe of b's set (no transposition — callers
// apply move-to-front via mtfAdjust). Tags are dense — 4 compressed
// bytes per way, one cache line for a 16-way set — so it is a plain
// compare loop over one sub-slice with a single bounds check. scan and
// mtfAdjust are deliberately small enough to inline into the hot
// operations, so a probe costs no function calls at all (only unlisted
// caches call them; indexed caches probe via idxFind).
func (c *Cache) scan(b trace.BlockAddr) int32 {
	base := int32(c.setIndex(b)) * c.assoc
	key := c.compressTag(b)
	for w, t := range c.scanTags[base : base+c.assoc] {
		if t == key {
			return base + int32(w)
		}
	}
	return noLine
}

// mtfAdjust applies the unlisted move-to-front transposition after a
// successful scan. Callers invoke it only on a hit (li != noLine) of an
// unlisted cache, where mtf is always enabled.
func (c *Cache) mtfAdjust(li int32) int32 {
	base := li &^ c.wayMask
	if li == base {
		return li
	}
	return c.promote(base, li)
}

// promote move-to-front transposes a hit at li to its set's way 0:
// repeated probes of hot blocks (history-block reads, cross-core
// prefetches of the same stream) then terminate on the first compare.
// Way position is unobservable through the API, so this is purely a
// scan-length optimization. Only unlisted caches may transpose: list
// links address lines by index.
//
//go:noinline
func (c *Cache) promote(base, li int32) int32 {
	c.tags[base], c.tags[li] = c.tags[li], c.tags[base]
	c.lines[base], c.lines[li] = c.lines[li], c.lines[base]
	c.vlru[base], c.vlru[li] = c.vlru[li], c.vlru[base]
	if c.scanTags != nil {
		c.scanTags[base], c.scanTags[li] = c.scanTags[li], c.scanTags[base]
	}
	return base
}

// listDetach unlinks li from its set's recency list.
func (c *Cache) listDetach(si uint64, li int32) {
	ln := &c.lines[li]
	if ln.prev != noLine {
		c.lines[ln.prev].next = ln.next
	} else {
		c.head[si] = ln.next
	}
	if ln.next != noLine {
		c.lines[ln.next].prev = ln.prev
	} else {
		c.tail[si] = ln.prev
	}
}

// listPushFront makes li the MRU line of set si.
func (c *Cache) listPushFront(si uint64, li int32) {
	ln := &c.lines[li]
	ln.prev = noLine
	ln.next = c.head[si]
	if c.head[si] != noLine {
		c.lines[c.head[si]].prev = li
	}
	c.head[si] = li
	if c.tail[si] == noLine {
		c.tail[si] = li
	}
}

// PinRange marks [lo, hi) as non-evictable. Blocks in the range are pinned
// when inserted. Only one range is supported (one history buffer per LLC
// bank); consolidation uses multiple caches' worth of ranges via PinRanges
// in the controller layer.
func (c *Cache) PinRange(lo, hi trace.BlockAddr) {
	c.pinLo, c.pinHi, c.pinEnabled = lo, hi, true
}

// inPinRange reports whether b falls in the pinned range.
func (c *Cache) inPinRange(b trace.BlockAddr) bool {
	return c.pinEnabled && b >= c.pinLo && b < c.pinHi
}

// Contains reports whether b is present, without touching LRU or stats.
func (c *Cache) Contains(b trace.BlockAddr) bool {
	if c.idx != nil {
		return c.idxFind(uint64(b)) != noLine
	}
	li := c.scan(b)
	if li != noLine {
		c.mtfAdjust(li)
		return true
	}
	return false
}

// Lookup performs a demand access to b. It returns hit=true if present,
// and wasPrefetch=true if the line was filled by a prefetch and this is
// its first demand reference (a covered miss in Figure 7's terms).
func (c *Cache) Lookup(b trace.BlockAddr) (hit, wasPrefetch bool) {
	var li int32
	if c.idx != nil {
		li = c.idxFind(uint64(b))
	} else {
		// Inlined probe: scan and mtfAdjust stay within the compiler's
		// inlining budget, so the common case costs no function calls.
		if li = c.scan(b); li != noLine {
			li = c.mtfAdjust(li)
		}
	}
	if li == noLine {
		c.stats.Misses++
		return false, false
	}
	c.stats.Hits++
	wasPrefetch = c.demandTouch(c.setIndex(b), li)
	return true, wasPrefetch
}

// demandTouch applies a demand hit to li: bump recency, set referenced,
// and consume the prefetched bit, reporting whether it was set. The
// whole update is one read-modify-write of the packed word.
func (c *Cache) demandTouch(si uint64, li int32) (wasPrefetch bool) {
	c.lruClock++
	v := c.vlru[li]
	if v&vlruPrefetched != 0 {
		c.stats.PrefetchHits++
		wasPrefetch = true
	}
	c.vlru[li] = c.lruClock<<vlruStampShift | (v&vlruFlags)&^vlruPrefetched | vlruReferenced
	if c.listed && c.head[si] != li {
		c.listDetach(si, li)
		c.listPushFront(si, li)
	}
	return wasPrefetch
}

// Extract performs a demand access to b that also removes the line on a
// hit — the prefetch-buffer drain path, where a buffered block moves into
// the L1-I on its first demand use. Statistics are identical to Lookup
// followed by Invalidate.
func (c *Cache) Extract(b trace.BlockAddr) (hit, wasPrefetch bool) {
	var li int32
	if c.idx != nil {
		li = c.idxFind(uint64(b))
	} else {
		// Inlined probe: scan and mtfAdjust stay within the compiler's
		// inlining budget, so the common case costs no function calls.
		if li = c.scan(b); li != noLine {
			li = c.mtfAdjust(li)
		}
	}
	if li == noLine {
		c.stats.Misses++
		return false, false
	}
	c.lruClock++ // Lookup would have stamped the line before removal
	c.stats.Hits++
	if c.vlru[li]&vlruPrefetched != 0 {
		c.stats.PrefetchHits++
		wasPrefetch = true
	}
	c.remove(c.setIndex(b), li)
	return true, wasPrefetch
}

// Evicted describes a line displaced by an insert.
type Evicted struct {
	Block trace.BlockAddr
	// PrefetchUnused is true if the line was prefetched and never
	// demand-referenced (an overprediction/discard).
	PrefetchUnused bool
	Pointer        uint32
}

// Insert fills b. prefetch marks the line as prefetcher-installed.
// It returns the displaced line, if any.
//
// Inserting a block that is already present refreshes its recency and
// returns no eviction. A demand re-fill (prefetch=false) of a resident
// prefetched line additionally clears the prefetched bit — the demand
// fill supersedes the speculative one, so the line must not later count
// as a prefetch hit or discard — and both re-fill flavors re-apply the
// pin check, so a line inserted before PinRange was configured becomes
// pinned on its next fill inside the range.
func (c *Cache) Insert(b trace.BlockAddr, prefetch bool) (ev Evicted, evicted bool) {
	var li int32
	if c.idx != nil {
		li = c.idxFind(uint64(b))
	} else {
		// Inlined probe: scan and mtfAdjust stay within the compiler's
		// inlining budget, so the common case costs no function calls.
		if li = c.scan(b); li != noLine {
			li = c.mtfAdjust(li)
		}
	}
	c.lruClock++
	if li != noLine {
		si := c.setIndex(b)
		fl := c.vlru[li] & vlruFlags
		if !prefetch {
			fl &^= vlruPrefetched
		}
		if c.inPinRange(b) {
			fl |= vlruPinned
		} else {
			fl &^= vlruPinned
		}
		c.vlru[li] = c.lruClock<<vlruStampShift | fl
		if c.listed && c.head[si] != li {
			c.listDetach(si, li)
			c.listPushFront(si, li)
		}
		return Evicted{}, false
	}
	return c.fill(b, prefetch)
}

// LookupInsert performs a demand access to b and, on a miss, fills b in
// the same probe (the common miss path: a lookup that misses is always
// followed by a fill). Statistics and recency are identical to Lookup
// followed by Insert on a miss, and to Lookup alone on a hit.
func (c *Cache) LookupInsert(b trace.BlockAddr, prefetch bool) (hit, wasPrefetch bool, ev Evicted, evicted bool) {
	var li int32
	if c.idx != nil {
		li = c.idxFind(uint64(b))
	} else {
		// Inlined probe: scan and mtfAdjust stay within the compiler's
		// inlining budget, so the common case costs no function calls.
		if li = c.scan(b); li != noLine {
			li = c.mtfAdjust(li)
		}
	}
	if li != noLine {
		c.stats.Hits++
		wasPrefetch = c.demandTouch(c.setIndex(b), li)
		return true, wasPrefetch, Evicted{}, false
	}
	c.stats.Misses++
	c.lruClock++
	ev, evicted = c.fill(b, prefetch)
	return false, false, ev, evicted
}

// fill installs b into a free or victim way of its set. The caller has
// already established that b is absent and bumped the LRU clock.
func (c *Cache) fill(b trace.BlockAddr, prefetch bool) (ev Evicted, evicted bool) {
	si := c.setIndex(b)
	var li int32
	if c.listed {
		li = c.free[si]
		if li != noLine {
			c.free[si] = c.lines[li].next
		} else {
			// Victim: walk from the LRU end past pinned lines.
			for li = c.tail[si]; li != noLine && c.vlru[li]&vlruPinned != 0; li = c.lines[li].prev {
			}
			if li == noLine {
				// Whole set pinned; cannot insert. Callers treat this as
				// a fill that bypasses the cache (only possible with
				// pathological pin ranges; guarded in SHIFT sizing).
				return Evicted{}, false
			}
			ev, evicted = c.evict(si, li)
		}
	} else {
		// Unlisted: first invalid way, else the minimum-stamp non-pinned
		// way — a scan over at most indexMinAssoc-1 ways.
		li = c.scanVictim(si)
		if li == noLine {
			return Evicted{}, false
		}
		if c.vlru[li] != 0 {
			ev, evicted = c.evict(si, li)
		}
	}
	fl := uint64(0)
	if prefetch {
		fl |= vlruPrefetched
	}
	if c.inPinRange(b) {
		fl |= vlruPinned
	}
	c.vlru[li] = c.lruClock<<vlruStampShift | fl
	c.lines[li].pointer = NoPointer
	c.tags[li] = uint64(b)
	if c.scanTags != nil {
		c.scanTags[li] = c.compressTag(b)
	}
	if c.listed {
		c.listPushFront(si, li)
	}
	if c.idx != nil {
		c.idxInsert(uint64(b), li)
	}
	c.stats.Inserts++
	if prefetch {
		c.stats.PrefetchInserted++
	}
	return ev, evicted
}

// evict accounts the displacement of valid line li and unlinks it.
func (c *Cache) evict(si uint64, li int32) (ev Evicted, evicted bool) {
	v := c.vlru[li]
	ev = Evicted{
		Block:          trace.BlockAddr(c.tags[li]),
		PrefetchUnused: v&vlruPrefetched != 0 && v&vlruReferenced == 0,
		Pointer:        NoPointer,
	}
	if c.cfg.TagPointers {
		ev.Pointer = c.lines[li].pointer
	}
	c.stats.Evictions++
	if ev.PrefetchUnused {
		c.stats.PrefetchDiscards++
	}
	if c.listed {
		c.listDetach(si, li)
	}
	if c.idx != nil {
		c.idxDelete(c.tags[li])
	}
	return ev, true
}

// scanVictim picks the first invalid way of set si, or the LRU non-pinned
// way by stamp scan, or noLine if the whole set is pinned. It reads only
// the packed vlru words — 8 bytes per way instead of the full line
// metadata — so a 16-way victim scan touches two cache lines.
func (c *Cache) scanVictim(si uint64) int32 {
	base := int32(si) * c.assoc
	best := noLine
	bestV := ^uint64(0)
	for w, v := range c.vlru[base : base+c.assoc] {
		if v == 0 {
			return base + int32(w) // first invalid way
		}
		if v&vlruPinned == 0 && v < bestV {
			best, bestV = base+int32(w), v
		}
	}
	return best
}

// remove invalidates line li of set si: detach from the recency list and
// the index, clear the metadata, and push the way onto the free list.
func (c *Cache) remove(si uint64, li int32) {
	if c.idx != nil {
		c.idxDelete(c.tags[li])
	}
	c.tags[li] = invalidTag
	if c.scanTags != nil {
		c.scanTags[li] = invalidTag32
	}
	c.vlru[li] = 0
	if c.listed {
		c.listDetach(si, li)
		c.lines[li] = line{pointer: NoPointer, prev: noLine, next: c.free[si]}
		c.free[si] = li
		return
	}
	c.lines[li] = line{pointer: NoPointer, prev: noLine, next: noLine}
}

// Invalidate removes b if present, returning whether it was present.
func (c *Cache) Invalidate(b trace.BlockAddr) bool {
	li := c.find(b)
	if li == noLine {
		return false
	}
	c.remove(c.setIndex(b), li)
	return true
}

// SetPointer writes the tag-extension index pointer of b if b is present.
// It returns false if b is absent (the paper: the index update is dropped
// when the trigger block is not LLC-resident).
func (c *Cache) SetPointer(b trace.BlockAddr, ptr uint32) bool {
	if !c.cfg.TagPointers {
		return false
	}
	li := c.find(b)
	if li == noLine {
		return false
	}
	c.lines[li].pointer = ptr
	return true
}

// Pointer reads the tag-extension index pointer of b. ok is false if b is
// absent or has no pointer set.
func (c *Cache) Pointer(b trace.BlockAddr) (ptr uint32, ok bool) {
	if !c.cfg.TagPointers {
		return NoPointer, false
	}
	li := c.find(b)
	if li == noLine || c.lines[li].pointer == NoPointer {
		return NoPointer, false
	}
	return c.lines[li].pointer, true
}

// PinnedCount returns the number of currently pinned, valid lines.
func (c *Cache) PinnedCount() int {
	n := 0
	for _, v := range c.vlru {
		if v != 0 && v&vlruPinned != 0 {
			n++
		}
	}
	return n
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	for _, v := range c.vlru {
		if v != 0 {
			n++
		}
	}
	return n
}

// SetLRUOrder returns the valid blocks of set si ordered MRU→LRU. It
// allocates and is meant for tests and debugging, not the hot path.
func (c *Cache) SetLRUOrder(si int) []trace.BlockAddr {
	var out []trace.BlockAddr
	if c.listed {
		for li := c.head[si]; li != noLine; li = c.lines[li].next {
			out = append(out, trace.BlockAddr(c.tags[li]))
		}
		return out
	}
	// Unlisted: order by descending packed stamp (whole-word comparison
	// is stamp order; stamps are unique).
	base := int32(si) * c.assoc
	taken := make([]bool, c.assoc)
	for {
		best, bestW := uint64(0), int32(noLine)
		for w := int32(0); w < c.assoc; w++ {
			li := base + w
			if v := c.vlru[li]; v != 0 && !taken[w] && (bestW == noLine || v > best) {
				best, bestW = v, w
			}
		}
		if bestW == noLine {
			return out
		}
		taken[bestW] = true
		out = append(out, trace.BlockAddr(c.tags[base+bestW]))
	}
}

// CheckLRUInvariant verifies internal consistency: each set's recency
// list covers exactly its valid lines in strictly decreasing stamp order,
// free lists cover exactly the invalid ways, pinned bits appear only
// inside the pin range, and the hash index (when present) maps exactly
// the valid tags. It is used by property tests.
func (c *Cache) CheckLRUInvariant() error {
	nsets := int(c.setMask) + 1
	for si := 0; si < nsets; si++ {
		base := int32(si) * c.assoc
		valid := 0
		seenStamp := make(map[uint64]bool, c.assoc)
		for li := base; li < base+c.assoc; li++ {
			v := c.vlru[li]
			if (v != 0) != (c.tags[li] != invalidTag) {
				return fmt.Errorf("cache: set %d line %d tag/valid mismatch", si, li-base)
			}
			if v == 0 {
				continue
			}
			if c.scanTags != nil && c.scanTags[li] != c.compressTag(trace.BlockAddr(c.tags[li])) {
				return fmt.Errorf("cache: set %d line %d stale compressed tag", si, li-base)
			}
			valid++
			stamp := v >> vlruStampShift
			if stamp == 0 || seenStamp[stamp] {
				return fmt.Errorf("cache: set %d has zero or duplicate LRU stamp %d", si, stamp)
			}
			seenStamp[stamp] = true
			if v&vlruPinned != 0 && !c.inPinRange(trace.BlockAddr(c.tags[li])) {
				return fmt.Errorf("cache: set %d line %d pinned outside pin range", si, li-base)
			}
		}
		if !c.listed {
			continue
		}
		// Walk the recency list: strictly decreasing stamps, all valid.
		seen := 0
		var prevStamp uint64
		for li := c.head[si]; li != noLine; li = c.lines[li].next {
			v := c.vlru[li]
			if v == 0 {
				return fmt.Errorf("cache: set %d recency list holds invalid line", si)
			}
			if stamp := v >> vlruStampShift; seen > 0 && stamp >= prevStamp {
				return fmt.Errorf("cache: set %d recency list out of order (%d >= %d)", si, stamp, prevStamp)
			} else {
				prevStamp = stamp
			}
			seen++
			if seen > int(c.assoc) {
				return fmt.Errorf("cache: set %d recency list cycles", si)
			}
		}
		if seen != valid {
			return fmt.Errorf("cache: set %d recency list covers %d of %d valid lines", si, seen, valid)
		}
		// Walk the free list: all invalid.
		freeN := 0
		for li := c.free[si]; li != noLine; li = c.lines[li].next {
			if c.vlru[li] != 0 {
				return fmt.Errorf("cache: set %d free list holds valid line", si)
			}
			freeN++
			if freeN > int(c.assoc) {
				return fmt.Errorf("cache: set %d free list cycles", si)
			}
		}
		if freeN != int(c.assoc)-valid {
			return fmt.Errorf("cache: set %d free list covers %d of %d invalid ways", si, freeN, int(c.assoc)-valid)
		}
	}
	if c.idx != nil {
		indexed := 0
		for i := range c.idx {
			li := c.idx[i].li
			if li == noLine {
				continue
			}
			indexed++
			if c.vlru[li] == 0 || c.tags[li] != c.idx[i].key {
				return fmt.Errorf("cache: index slot %d stale (line %d)", i, li)
			}
		}
		if indexed != c.ValidCount() {
			return fmt.Errorf("cache: index holds %d entries for %d valid lines", indexed, c.ValidCount())
		}
	}
	return nil
}

// fpMix is the splitmix64 finalizer, used to decorrelate Fingerprint's
// per-line field combinations.
func fpMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fingerprint returns a canonical hash of the cache's semantic content:
// every valid line's block address, flag bits, recency stamp, and index
// pointer, plus the replacement clock. Lines combine commutatively
// within their set, so the physically unobservable way permutation
// (move-to-front transposition; see promote) does not affect the value:
// two caches with equal fingerprints respond identically to any
// subsequent operation sequence. Used by the sampled-execution
// differential tests to prove functional and detailed stepping leave
// identical instruction-cache state.
func (c *Cache) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	nsets := int(c.setMask) + 1
	for si := 0; si < nsets; si++ {
		base := si * int(c.assoc)
		var setH uint64
		for w := 0; w < int(c.assoc); w++ {
			li := base + w
			if c.vlru[li] == 0 {
				continue
			}
			setH += fpMix(c.tags[li] ^ fpMix(c.vlru[li]^fpMix(uint64(c.lines[li].pointer))))
		}
		h = (h ^ setH) * prime
	}
	return (h ^ c.lruClock) * prime
}

// CopyStateFrom makes c an exact replica of src, which must share c's
// configuration (same geometry and layout). The sampled batch runner
// uses it to catch followers' instruction caches up after a functional
// fast-forward segment in which only the batch lead stepped the
// (provably stream-pure, hence identical across members) L1-I: one
// bulk copy per segment replaces a per-record probe per member.
func (c *Cache) CopyStateFrom(src *Cache) {
	if c.cfg != src.cfg {
		panic("cache: CopyStateFrom across different configurations")
	}
	copy(c.lines, src.lines)
	copy(c.tags, src.tags)
	copy(c.vlru, src.vlru)
	if c.scanTags != nil {
		copy(c.scanTags, src.scanTags)
	}
	if c.listed {
		copy(c.head, src.head)
		copy(c.tail, src.tail)
		copy(c.free, src.free)
	}
	if c.idx != nil {
		copy(c.idx, src.idx)
	}
	c.lruClock = src.lruClock
	c.stats = src.stats
	c.pinLo, c.pinHi, c.pinEnabled = src.pinLo, src.pinHi, src.pinEnabled
}
