// Package cache implements the set-associative caches of the simulated CMP:
// the per-core 32KB 2-way L1 instruction caches and the 16-bank, 16-way
// NUCA LLC of Table I.
//
// Beyond a plain LRU cache, it provides the two mechanisms virtualized
// SHIFT needs from the LLC (paper Section 4.2):
//
//   - pinned (non-evictable) address ranges, implemented as the paper
//     describes ("trivial logic that compares a block's address to the
//     address range reserved for the history");
//   - a per-line tag extension holding an index pointer into the history
//     buffer, returned on demand lookups and lost when the line is evicted.
//
// Prefetch bookkeeping (a prefetched bit and a referenced bit per line)
// supports the covered/overpredicted accounting of the paper's Figure 7.
package cache

import (
	"fmt"

	"shift/internal/trace"
)

// NoPointer is the tag-extension value meaning "no index pointer".
const NoPointer uint32 = 0xFFFFFFFF

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total data capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// BlockBytes is the line size (64 in all Table I caches).
	BlockBytes int
	// TagPointers enables the per-line index-pointer tag extension
	// (LLC only, for virtualized SHIFT).
	TagPointers bool
	// IndexShift drops this many low block-address bits before set
	// indexing. Banked caches whose bank is selected by the low bits
	// (block mod #banks) must set it to log2(#banks), otherwise only
	// 1/#banks of each bank's sets are reachable.
	IndexShift uint
}

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache: SizeBytes %d <= 0", c.SizeBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: Assoc %d <= 0", c.Assoc)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: BlockBytes %d not a positive power of two", c.BlockBytes)
	case c.SizeBytes%(c.Assoc*c.BlockBytes) != 0:
		return fmt.Errorf("cache: SizeBytes %d not divisible by Assoc*BlockBytes", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Assoc * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.BlockBytes) }

// Line is one cache line's metadata.
type line struct {
	tag   uint64 // block address (full address stored for simplicity)
	valid bool
	// lru is a per-set sequence number; larger = more recently used.
	lru uint64
	// prefetched marks lines installed by a prefetcher and not yet
	// referenced by demand fetch.
	prefetched bool
	// referenced marks lines touched by demand fetch since fill.
	referenced bool
	// pinned lines are never chosen as victims.
	pinned bool
	// pointer is the tag-extension index pointer (NoPointer if unset).
	pointer uint32
}

// Stats counts cache events.
type Stats struct {
	Hits             int64 // demand hits
	Misses           int64 // demand misses
	PrefetchHits     int64 // demand hits on lines brought in by prefetch
	Inserts          int64
	Evictions        int64
	PrefetchInserted int64
	// PrefetchDiscards counts prefetched lines evicted before any demand
	// reference — the paper's "discarded before used by the core".
	PrefetchDiscards int64
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg        Config
	sets       [][]line
	setMask    uint64
	lruClock   uint64
	stats      Stats
	pinLo      trace.BlockAddr
	pinHi      trace.BlockAddr
	pinEnabled bool
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Cache{cfg: cfg, setMask: uint64(nsets - 1)}
	c.sets = make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
		for w := range c.sets[i] {
			c.sets[i][w].pointer = NoPointer
		}
	}
	return c, nil
}

// MustNew is New that panics on config errors; for tests and fixed configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// setIndex maps a block address to its set.
func (c *Cache) setIndex(b trace.BlockAddr) uint64 {
	return (uint64(b) >> c.cfg.IndexShift) & c.setMask
}

// find returns the way holding b in its set, or -1.
func (c *Cache) find(b trace.BlockAddr) (set []line, way int) {
	set = c.sets[c.setIndex(b)]
	for w := range set {
		if set[w].valid && set[w].tag == uint64(b) {
			return set, w
		}
	}
	return set, -1
}

// PinRange marks [lo, hi) as non-evictable. Blocks in the range are pinned
// when inserted. Only one range is supported (one history buffer per LLC
// bank); consolidation uses multiple caches' worth of ranges via PinRanges
// in the controller layer.
func (c *Cache) PinRange(lo, hi trace.BlockAddr) {
	c.pinLo, c.pinHi, c.pinEnabled = lo, hi, true
}

// inPinRange reports whether b falls in the pinned range.
func (c *Cache) inPinRange(b trace.BlockAddr) bool {
	return c.pinEnabled && b >= c.pinLo && b < c.pinHi
}

// Contains reports whether b is present, without touching LRU or stats.
func (c *Cache) Contains(b trace.BlockAddr) bool {
	_, w := c.find(b)
	return w >= 0
}

// Lookup performs a demand access to b. It returns hit=true if present,
// and wasPrefetch=true if the line was filled by a prefetch and this is
// its first demand reference (a covered miss in Figure 7's terms).
func (c *Cache) Lookup(b trace.BlockAddr) (hit, wasPrefetch bool) {
	set, w := c.find(b)
	if w < 0 {
		c.stats.Misses++
		return false, false
	}
	ln := &set[w]
	c.lruClock++
	ln.lru = c.lruClock
	c.stats.Hits++
	if ln.prefetched {
		c.stats.PrefetchHits++
		ln.prefetched = false
		wasPrefetch = true
	}
	ln.referenced = true
	return true, wasPrefetch
}

// Evicted describes a line displaced by an insert.
type Evicted struct {
	Block trace.BlockAddr
	// PrefetchUnused is true if the line was prefetched and never
	// demand-referenced (an overprediction/discard).
	PrefetchUnused bool
	Pointer        uint32
}

// Insert fills b. prefetch marks the line as prefetcher-installed.
// It returns the displaced line, if any. Inserting a block that is already
// present refreshes LRU and returns no eviction.
func (c *Cache) Insert(b trace.BlockAddr, prefetch bool) (ev Evicted, evicted bool) {
	set, w := c.find(b)
	c.lruClock++
	if w >= 0 {
		// Already present: refresh recency; a demand fill of a prefetched
		// line keeps its prefetched bit (only Lookup clears it).
		set[w].lru = c.lruClock
		return Evicted{}, false
	}
	victim := c.victim(set)
	if victim < 0 {
		// Whole set pinned; cannot insert. Callers treat this as a fill
		// that bypasses the cache (only possible with pathological pin
		// ranges; guarded in SHIFT sizing).
		return Evicted{}, false
	}
	ln := &set[victim]
	if ln.valid {
		ev = Evicted{Block: trace.BlockAddr(ln.tag), PrefetchUnused: ln.prefetched && !ln.referenced, Pointer: ln.pointer}
		evicted = true
		c.stats.Evictions++
		if ev.PrefetchUnused {
			c.stats.PrefetchDiscards++
		}
	}
	*ln = line{
		tag:        uint64(b),
		valid:      true,
		lru:        c.lruClock,
		prefetched: prefetch,
		pinned:     c.inPinRange(b),
		pointer:    NoPointer,
	}
	c.stats.Inserts++
	if prefetch {
		c.stats.PrefetchInserted++
	}
	return ev, evicted
}

// victim picks the LRU non-pinned way, or an invalid way if present.
func (c *Cache) victim(set []line) int {
	best := -1
	var bestLRU uint64
	for w := range set {
		if !set[w].valid {
			return w
		}
		if set[w].pinned {
			continue
		}
		if best < 0 || set[w].lru < bestLRU {
			best, bestLRU = w, set[w].lru
		}
	}
	return best
}

// Invalidate removes b if present, returning whether it was present.
func (c *Cache) Invalidate(b trace.BlockAddr) bool {
	set, w := c.find(b)
	if w < 0 {
		return false
	}
	set[w] = line{pointer: NoPointer}
	return true
}

// SetPointer writes the tag-extension index pointer of b if b is present.
// It returns false if b is absent (the paper: the index update is dropped
// when the trigger block is not LLC-resident).
func (c *Cache) SetPointer(b trace.BlockAddr, ptr uint32) bool {
	if !c.cfg.TagPointers {
		return false
	}
	set, w := c.find(b)
	if w < 0 {
		return false
	}
	set[w].pointer = ptr
	return true
}

// Pointer reads the tag-extension index pointer of b. ok is false if b is
// absent or has no pointer set.
func (c *Cache) Pointer(b trace.BlockAddr) (ptr uint32, ok bool) {
	if !c.cfg.TagPointers {
		return NoPointer, false
	}
	set, w := c.find(b)
	if w < 0 || set[w].pointer == NoPointer {
		return NoPointer, false
	}
	return set[w].pointer, true
}

// PinnedCount returns the number of currently pinned, valid lines.
func (c *Cache) PinnedCount() int {
	n := 0
	for _, set := range c.sets {
		for w := range set {
			if set[w].valid && set[w].pinned {
				n++
			}
		}
	}
	return n
}

// ValidCount returns the number of valid lines.
func (c *Cache) ValidCount() int {
	n := 0
	for _, set := range c.sets {
		for w := range set {
			if set[w].valid {
				n++
			}
		}
	}
	return n
}

// CheckLRUInvariant verifies internal consistency (each set's valid lines
// have distinct LRU stamps; pinned bits only inside the pin range). It is
// used by property tests.
func (c *Cache) CheckLRUInvariant() error {
	for si, set := range c.sets {
		seen := make(map[uint64]bool, len(set))
		for w := range set {
			if !set[w].valid {
				continue
			}
			if seen[set[w].lru] {
				return fmt.Errorf("cache: set %d has duplicate LRU stamp %d", si, set[w].lru)
			}
			seen[set[w].lru] = true
			if set[w].pinned && !c.inPinRange(trace.BlockAddr(set[w].tag)) {
				return fmt.Errorf("cache: set %d way %d pinned outside pin range", si, w)
			}
		}
	}
	return nil
}
