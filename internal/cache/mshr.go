package cache

import "shift/internal/trace"

// MSHRs track in-flight fills for the timing model. Each entry records the
// cycle at which the fill completes; a demand access to an in-flight block
// stalls only for the remaining latency (the partial-hiding case of
// prefetches that were issued but have not yet arrived).
//
// Capacity mirrors Table I (32 MSHRs for the L1s, 64 for L2 banks); when
// full, the oldest completed entry is retired first, and if none has
// completed, the new request must wait for the earliest completion
// (modelled by returning that cycle as the earliest issue time).
type MSHRs struct {
	cap     int
	entries map[trace.BlockAddr]int64 // block -> ready cycle
}

// NewMSHRs builds an MSHR file with the given capacity.
func NewMSHRs(capacity int) *MSHRs {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHRs{cap: capacity, entries: make(map[trace.BlockAddr]int64, capacity)}
}

// Lookup returns the ready cycle of an in-flight fill for b, if any.
func (m *MSHRs) Lookup(b trace.BlockAddr) (ready int64, ok bool) {
	ready, ok = m.entries[b]
	return
}

// Allocate records a fill for b completing at ready. If b is already in
// flight the earlier completion wins. It returns the cycle at which the
// request could actually be accepted (== now unless the file was full of
// still-pending entries).
func (m *MSHRs) Allocate(b trace.BlockAddr, now, ready int64) int64 {
	if cur, ok := m.entries[b]; ok {
		if cur <= ready {
			return now
		}
		m.entries[b] = ready
		return now
	}
	accepted := now
	if len(m.entries) >= m.cap {
		accepted = m.reclaim(now)
	}
	m.entries[b] = ready
	return accepted
}

// reclaim retires completed entries; if none are complete, it waits until
// the earliest completion and retires that entry, returning the wait cycle.
func (m *MSHRs) reclaim(now int64) int64 {
	var earliestBlk trace.BlockAddr
	earliest := int64(-1)
	for b, r := range m.entries {
		if r <= now {
			delete(m.entries, b)
			return now
		}
		if earliest < 0 || r < earliest {
			earliest, earliestBlk = r, b
		}
	}
	delete(m.entries, earliestBlk)
	return earliest
}

// Complete removes b's entry once the fill has been consumed.
func (m *MSHRs) Complete(b trace.BlockAddr) { delete(m.entries, b) }

// Expire drops all entries that completed at or before now. Calling it
// periodically keeps the file small without changing semantics.
func (m *MSHRs) Expire(now int64) {
	for b, r := range m.entries {
		if r <= now {
			delete(m.entries, b)
		}
	}
}

// InFlight returns the number of live entries.
func (m *MSHRs) InFlight() int { return len(m.entries) }

// Cap returns the configured capacity.
func (m *MSHRs) Cap() int { return m.cap }
