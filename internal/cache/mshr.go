package cache

import "shift/internal/trace"

// MSHRs track in-flight fills for the timing model. Each entry records the
// cycle at which the fill completes; a demand access to an in-flight block
// stalls only for the remaining latency (the partial-hiding case of
// prefetches that were issued but have not yet arrived).
//
// Capacity mirrors Table I (32 MSHRs for the L1s, 64 for L2 banks); when
// full, the oldest completed entry is retired first, and if none has
// completed, the new request must wait for the earliest completion
// (modelled by returning that cycle as the earliest issue time).
//
// The file is a dense ring of in-flight entries (two parallel arrays,
// swap-remove compaction) with a cached minimum completion cycle:
//
//   - Expire, called once per simulated record, is a single compare when
//     nothing has completed — amortized O(1) instead of the full-map
//     sweep the previous map-backed implementation performed per record;
//   - victim selection on reclaim is fully deterministic: the earliest
//     completion wins and ties break on the lowest slot index, where the
//     map-backed version retired whichever entry Go's randomized map
//     iteration happened to visit first;
//   - all other operations are short scans over the dense arrays (the
//     file holds at most 32–64 entries and typically far fewer in
//     flight, so a scan of two hot cache lines beats pointer-heavy
//     structures), and nothing allocates after construction.
type MSHRs struct {
	cap int
	// blocks/ready are the live entries, dense in [0, n). Slot order is
	// deterministic (insertion order permuted by swap-removes, which are
	// themselves deterministic).
	blocks []trace.BlockAddr
	ready  []int64
	n      int
	// minReady caches min(ready[:n]) (maxReady when empty) so the
	// per-record Expire call usually costs one compare.
	minReady int64
}

const maxReady = int64(^uint64(0) >> 1)

// NewMSHRs builds an MSHR file with the given capacity.
func NewMSHRs(capacity int) *MSHRs {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHRs{
		cap:      capacity,
		blocks:   make([]trace.BlockAddr, capacity),
		ready:    make([]int64, capacity),
		minReady: maxReady,
	}
}

// find returns the slot of block b, or -1.
func (m *MSHRs) find(b trace.BlockAddr) int {
	for i, blk := range m.blocks[:m.n] {
		if blk == b {
			return i
		}
	}
	return -1
}

// syncMin recomputes the cached minimum completion cycle.
func (m *MSHRs) syncMin() {
	min := maxReady
	for _, r := range m.ready[:m.n] {
		if r < min {
			min = r
		}
	}
	m.minReady = min
}

// removeAt swap-removes slot i and refreshes the cached minimum.
func (m *MSHRs) removeAt(i int) {
	last := m.n - 1
	r := m.ready[i]
	m.blocks[i] = m.blocks[last]
	m.ready[i] = m.ready[last]
	m.n = last
	if r <= m.minReady {
		m.syncMin()
	}
}

// Lookup returns the ready cycle of an in-flight fill for b, if any.
func (m *MSHRs) Lookup(b trace.BlockAddr) (ready int64, ok bool) {
	i := m.find(b)
	if i < 0 {
		return 0, false
	}
	return m.ready[i], true
}

// Allocate records a fill for b completing at ready. If b is already in
// flight the earlier completion wins. It returns the cycle at which the
// request could actually be accepted (== now unless the file was full of
// still-pending entries).
func (m *MSHRs) Allocate(b trace.BlockAddr, now, ready int64) int64 {
	if i := m.find(b); i >= 0 {
		if ready < m.ready[i] {
			m.ready[i] = ready
			if ready < m.minReady {
				m.minReady = ready
			}
		}
		return now
	}
	accepted := now
	if m.n >= m.cap {
		accepted = m.reclaim(now)
	}
	m.blocks[m.n] = b
	m.ready[m.n] = ready
	m.n++
	if ready < m.minReady {
		m.minReady = ready
	}
	return accepted
}

// reclaim retires the earliest-completing entry (ties: lowest slot, a
// deterministic choice). If it has already completed the new request
// proceeds at now; otherwise the request waits for that completion cycle.
func (m *MSHRs) reclaim(now int64) int64 {
	victim, earliest := 0, m.ready[0]
	for i := 1; i < m.n; i++ {
		if m.ready[i] < earliest {
			victim, earliest = i, m.ready[i]
		}
	}
	accepted := now
	if earliest > now {
		accepted = earliest
	}
	m.removeAt(victim)
	return accepted
}

// Complete removes b's entry once the fill has been consumed.
func (m *MSHRs) Complete(b trace.BlockAddr) {
	if i := m.find(b); i >= 0 {
		m.removeAt(i)
	}
}

// Take is Lookup followed by Complete in a single probe: it returns the
// ready cycle of an in-flight fill for b and retires the entry.
func (m *MSHRs) Take(b trace.BlockAddr) (ready int64, ok bool) {
	i := m.find(b)
	if i < 0 {
		return 0, false
	}
	ready = m.ready[i]
	m.removeAt(i)
	return ready, true
}

// Expire drops all entries that completed at or before now. Calling it
// periodically keeps the file small without changing semantics; the
// cached minimum makes the common nothing-completed call a single
// compare.
func (m *MSHRs) Expire(now int64) {
	if m.minReady > now {
		return
	}
	min := maxReady
	for i := 0; i < m.n; {
		if m.ready[i] <= now {
			last := m.n - 1
			m.blocks[i] = m.blocks[last]
			m.ready[i] = m.ready[last]
			m.n = last
			continue // re-examine the swapped-in entry
		}
		if m.ready[i] < min {
			min = m.ready[i]
		}
		i++
	}
	m.minReady = min
}

// InFlight returns the number of live entries.
func (m *MSHRs) InFlight() int { return m.n }

// Cap returns the configured capacity.
func (m *MSHRs) Cap() int { return m.cap }
