package cache

import (
	"reflect"
	"sort"
	"testing"

	"shift/internal/trace"
)

// The differential test drives the optimized Cache and the naive
// Reference with identical randomized operation sequences and requires
// identical observable behavior at every step: operation results (hits,
// wasPrefetch, evictions and their metadata), Stats, membership, pointer
// tags, pin/valid counts, and per-set LRU order. Way placement is the
// only internal freedom the optimized implementation has, and it is
// unobservable through the API.

// diffConfigs covers both internal layouts: linear scan + stamp victims
// (low assoc, with and without the LLC-style IndexShift) and hash index
// + recency lists (high assoc, including the fully-associative prefetch
// buffer shape).
func diffConfigs() []Config {
	return []Config{
		{SizeBytes: 8 * 2 * 64, Assoc: 2, BlockBytes: 64, TagPointers: true},
		{SizeBytes: 4 * 4 * 64, Assoc: 4, BlockBytes: 64},
		{SizeBytes: 8 * 16 * 64, Assoc: 16, BlockBytes: 64, TagPointers: true, IndexShift: 4},
		{SizeBytes: 64 * 64, Assoc: 64, BlockBytes: 64},
	}
}

// diffOp applies one random operation to both implementations and fails
// on any observable divergence.
func diffOp(t *testing.T, rng *trace.RNG, opt *Cache, ref *Reference, blocks int) {
	t.Helper()
	b := trace.BlockAddr(rng.Intn(blocks))
	switch rng.Intn(8) {
	case 0:
		oh, op := opt.Lookup(b)
		rh, rp := ref.Lookup(b)
		if oh != rh || op != rp {
			t.Fatalf("Lookup(%d): (%v,%v) vs reference (%v,%v)", b, oh, op, rh, rp)
		}
	case 1:
		pf := rng.Bool(0.5)
		oe, ook := opt.Insert(b, pf)
		re, rok := ref.Insert(b, pf)
		if ook != rok || oe != re {
			t.Fatalf("Insert(%d,%v): (%+v,%v) vs reference (%+v,%v)", b, pf, oe, ook, re, rok)
		}
	case 2:
		if o, r := opt.Invalidate(b), ref.Invalidate(b); o != r {
			t.Fatalf("Invalidate(%d): %v vs reference %v", b, o, r)
		}
	case 3:
		oh, op := opt.Extract(b)
		rh, rp := ref.Extract(b)
		if oh != rh || op != rp {
			t.Fatalf("Extract(%d): (%v,%v) vs reference (%v,%v)", b, oh, op, rh, rp)
		}
	case 4:
		pf := rng.Bool(0.5)
		oh, op, oe, ook := opt.LookupInsert(b, pf)
		rh, rp, re, rok := ref.LookupInsert(b, pf)
		if oh != rh || op != rp || ook != rok || oe != re {
			t.Fatalf("LookupInsert(%d,%v): (%v,%v,%+v,%v) vs reference (%v,%v,%+v,%v)",
				b, pf, oh, op, oe, ook, rh, rp, re, rok)
		}
	case 5:
		ptr := uint32(rng.Intn(1 << 15))
		if o, r := opt.SetPointer(b, ptr), ref.SetPointer(b, ptr); o != r {
			t.Fatalf("SetPointer(%d,%d): %v vs reference %v", b, ptr, o, r)
		}
	case 6:
		optr, ook := opt.Pointer(b)
		rptr, rok := ref.Pointer(b)
		if optr != rptr || ook != rok {
			t.Fatalf("Pointer(%d): (%d,%v) vs reference (%d,%v)", b, optr, ook, rptr, rok)
		}
	case 7:
		if o, r := opt.Contains(b), ref.Contains(b); o != r {
			t.Fatalf("Contains(%d): %v vs reference %v", b, o, r)
		}
	}
}

// diffState compares the full observable state of both implementations.
func diffState(t *testing.T, cfg Config, opt *Cache, ref *Reference) {
	t.Helper()
	if os, rs := opt.Stats(), ref.Stats(); os != rs {
		t.Fatalf("stats diverged: %+v vs reference %+v", os, rs)
	}
	if ov, rv := opt.ValidCount(), ref.ValidCount(); ov != rv {
		t.Fatalf("ValidCount: %d vs reference %d", ov, rv)
	}
	if op, rp := opt.PinnedCount(), ref.PinnedCount(); op != rp {
		t.Fatalf("PinnedCount: %d vs reference %d", op, rp)
	}
	for si := 0; si < cfg.Sets(); si++ {
		oorder, rorder := opt.SetLRUOrder(si), ref.SetLRUOrder(si)
		if len(oorder) == 0 && len(rorder) == 0 {
			continue
		}
		if !reflect.DeepEqual(oorder, rorder) {
			t.Fatalf("set %d LRU order: %v vs reference %v", si, oorder, rorder)
		}
	}
	if err := opt.CheckLRUInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialAgainstReference(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run("", func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				opt, ref := MustNew(cfg), MustNewReference(cfg)
				rng := trace.NewRNG(seed)
				// Half the seeds exercise the pin range (as virtualized
				// SHIFT pins its history range in every LLC bank).
				blocks := cfg.Sets() * cfg.Assoc * 3
				if seed%2 == 0 {
					lo := trace.BlockAddr(rng.Intn(blocks / 2))
					hi := lo + trace.BlockAddr(rng.Intn(blocks/4)+1)
					opt.PinRange(lo, hi)
					ref.PinRange(lo, hi)
				}
				for op := 0; op < 4000; op++ {
					diffOp(t, rng, opt, ref, blocks)
					if op%256 == 0 {
						diffState(t, cfg, opt, ref)
					}
				}
				diffState(t, cfg, opt, ref)
			}
		})
	}
}

// TestDifferentialPointerLifetime checks the tag-extension pointers
// survive and die identically across eviction-heavy sequences.
func TestDifferentialPointerLifetime(t *testing.T) {
	cfg := Config{SizeBytes: 4 * 16 * 64, Assoc: 16, BlockBytes: 64, TagPointers: true}
	opt, ref := MustNew(cfg), MustNewReference(cfg)
	rng := trace.NewRNG(99)
	for op := 0; op < 20000; op++ {
		b := trace.BlockAddr(rng.Intn(512))
		switch rng.Intn(3) {
		case 0:
			if oe, ook := opt.Insert(b, false); true {
				re, rok := ref.Insert(b, false)
				if ook != rok || oe != re {
					t.Fatalf("Insert(%d): (%+v,%v) vs (%+v,%v)", b, oe, ook, re, rok)
				}
			}
		case 1:
			ptr := uint32(op)
			if o, r := opt.SetPointer(b, ptr), ref.SetPointer(b, ptr); o != r {
				t.Fatalf("SetPointer(%d): %v vs %v", b, o, r)
			}
		case 2:
			optr, ook := opt.Pointer(b)
			rptr, rok := ref.Pointer(b)
			if optr != rptr || ook != rok {
				t.Fatalf("Pointer(%d): (%d,%v) vs (%d,%v)", b, optr, ook, rptr, rok)
			}
		}
	}
	if opt.Stats() != ref.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", opt.Stats(), ref.Stats())
	}
}

// TestSetLRUOrderAgreesWithStamps cross-checks the two SetLRUOrder
// implementations' tie-free ordering on a listed cache by comparing
// against a stamp sort of the reference.
func TestSetLRUOrderAgreesWithStamps(t *testing.T) {
	cfg := Config{SizeBytes: 32 * 64, Assoc: 32, BlockBytes: 64}
	c := MustNew(cfg)
	rng := trace.NewRNG(7)
	type stamped struct {
		b     trace.BlockAddr
		order int
	}
	var inserted []stamped
	for i := 0; i < 24; i++ {
		b := trace.BlockAddr(rng.Intn(1000) + 1)
		c.Insert(b, false)
		inserted = append(inserted, stamped{b: b, order: i})
	}
	// Most recent insert of each block wins; order MRU-first.
	last := map[trace.BlockAddr]int{}
	for _, s := range inserted {
		last[s.b] = s.order
	}
	var want []stamped
	for b, o := range last {
		want = append(want, stamped{b, o})
	}
	sort.Slice(want, func(i, j int) bool { return want[i].order > want[j].order })
	got := c.SetLRUOrder(0)
	if len(got) != len(want) {
		t.Fatalf("order length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i].b {
			t.Fatalf("order[%d] = %d, want %d", i, got[i], want[i].b)
		}
	}
}
