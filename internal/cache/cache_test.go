package cache

import (
	"testing"
	"testing/quick"

	"shift/internal/trace"
)

func tiny() Config {
	return Config{SizeBytes: 4 * 64 * 2, Assoc: 2, BlockBytes: 64} // 4 sets, 2 ways
}

func TestConfigValidate(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 1024, Assoc: 0, BlockBytes: 64},
		{SizeBytes: 1024, Assoc: 2, BlockBytes: 60},
		{SizeBytes: 1000, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 3 * 2 * 64, Assoc: 2, BlockBytes: 64}, // 3 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestTableIGeometries(t *testing.T) {
	l1i := Config{SizeBytes: 32 * 1024, Assoc: 2, BlockBytes: 64}
	if err := l1i.Validate(); err != nil {
		t.Errorf("L1-I config invalid: %v", err)
	}
	if l1i.Sets() != 256 {
		t.Errorf("L1-I sets = %d, want 256", l1i.Sets())
	}
	llcBank := Config{SizeBytes: 512 * 1024, Assoc: 16, BlockBytes: 64, TagPointers: true}
	if err := llcBank.Validate(); err != nil {
		t.Errorf("LLC bank config invalid: %v", err)
	}
	if llcBank.Sets() != 512 {
		t.Errorf("LLC bank sets = %d, want 512", llcBank.Sets())
	}
}

func TestHitMiss(t *testing.T) {
	c := MustNew(tiny())
	if hit, _ := c.Lookup(100); hit {
		t.Fatal("hit in empty cache")
	}
	c.Insert(100, false)
	if hit, wasPf := c.Lookup(100); !hit || wasPf {
		t.Fatalf("Lookup(100) = %v, %v; want hit, not prefetch", hit, wasPf)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(tiny()) // 4 sets, 2 ways; blocks with same low 2 bits collide
	// Set 0: blocks 0, 4, 8.
	c.Insert(0, false)
	c.Insert(4, false)
	c.Lookup(0) // make 0 MRU
	ev, evicted := c.Insert(8, false)
	if !evicted || ev.Block != 4 {
		t.Fatalf("evicted %+v (%v), want block 4", ev, evicted)
	}
	if !c.Contains(0) || !c.Contains(8) || c.Contains(4) {
		t.Error("wrong residency after eviction")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := MustNew(tiny())
	c.Insert(0, false)
	c.Insert(4, false)
	c.Insert(0, false) // refresh 0 → 4 becomes LRU
	ev, evicted := c.Insert(8, false)
	if !evicted || ev.Block != 4 {
		t.Fatalf("evicted %+v, want 4", ev)
	}
}

// TestInsertRefreshClearsStalePrefetchBit pins down the demand re-fill
// semantics: re-inserting a resident prefetched line as a demand fill
// (prefetch=false) clears the prefetched bit, so the line neither counts
// a later demand hit as prefetch-covered nor counts its eviction as a
// discard. A prefetch re-fill (prefetch=true) leaves the bit alone.
func TestInsertRefreshClearsStalePrefetchBit(t *testing.T) {
	c := MustNew(tiny())
	c.Insert(0, true)  // prefetched, never referenced
	c.Insert(0, false) // demand fill of the same line supersedes it
	if hit, wasPf := c.Lookup(0); !hit || wasPf {
		t.Fatalf("Lookup(0) = %v,%v; demand re-fill must clear the prefetched bit", hit, wasPf)
	}
	if c.Stats().PrefetchHits != 0 {
		t.Errorf("PrefetchHits = %d, want 0", c.Stats().PrefetchHits)
	}
	// Eviction after a demand re-fill must not count a discard.
	c2 := MustNew(tiny())
	c2.Insert(0, true)
	c2.Insert(0, false)
	c2.Insert(4, false)
	if ev, evicted := c2.Insert(8, false); !evicted || ev.PrefetchUnused {
		t.Errorf("evicted %+v (%v); demand-refilled line flagged as unused prefetch", ev, evicted)
	}
	if c2.Stats().PrefetchDiscards != 0 {
		t.Errorf("PrefetchDiscards = %d, want 0", c2.Stats().PrefetchDiscards)
	}
	// Prefetch re-fill keeps the bit: the first demand use still reports
	// prefetch coverage.
	c3 := MustNew(tiny())
	c3.Insert(0, true)
	c3.Insert(0, true)
	if _, wasPf := c3.Lookup(0); !wasPf {
		t.Error("prefetch re-fill must keep the prefetched bit")
	}
}

// TestInsertRefreshHonorsPinRange pins down the other refresh-path fix:
// a re-fill re-applies the pin check, so a line inserted before the pin
// range was configured becomes non-evictable on its next fill.
func TestInsertRefreshHonorsPinRange(t *testing.T) {
	c := MustNew(tiny())
	c.Insert(0, false) // inserted before the range exists: not pinned
	c.PinRange(0, 1)
	c.Insert(0, false) // refresh inside the range: now pinned
	if got := c.PinnedCount(); got != 1 {
		t.Fatalf("PinnedCount = %d, want 1 after refresh inside pin range", got)
	}
	// Thrash set 0: the refreshed line must survive.
	for b := trace.BlockAddr(4); b < 400; b += 4 {
		c.Insert(b, false)
	}
	if !c.Contains(0) {
		t.Fatal("refreshed pinned line evicted")
	}
	if err := c.CheckLRUInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := MustNew(tiny())
	c.Insert(0, true)
	if hit, wasPf := c.Lookup(0); !hit || !wasPf {
		t.Fatal("first demand hit on prefetched line should report wasPrefetch")
	}
	if _, wasPf := c.Lookup(0); wasPf {
		t.Fatal("second hit should not report wasPrefetch")
	}
	st := c.Stats()
	if st.PrefetchHits != 1 || st.PrefetchInserted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPrefetchDiscard(t *testing.T) {
	c := MustNew(tiny())
	c.Insert(0, true) // prefetched, never referenced
	c.Insert(4, false)
	ev, evicted := c.Insert(8, false) // evicts 0 (LRU)
	if !evicted || ev.Block != 0 || !ev.PrefetchUnused {
		t.Fatalf("evicted %+v, want unused prefetch of block 0", ev)
	}
	if c.Stats().PrefetchDiscards != 1 {
		t.Errorf("PrefetchDiscards = %d, want 1", c.Stats().PrefetchDiscards)
	}
	// A referenced prefetch must not count as a discard.
	c2 := MustNew(tiny())
	c2.Insert(0, true)
	c2.Lookup(0)
	c2.Insert(4, false)
	if ev, _ := c2.Insert(8, false); ev.PrefetchUnused {
		t.Error("referenced prefetch flagged as unused")
	}
}

func TestPinning(t *testing.T) {
	c := MustNew(tiny())
	c.PinRange(0, 16)
	c.Insert(0, false) // pinned
	c.Insert(4, false) // pinned
	// Set 0 is now fully pinned; inserting another set-0 block must fail
	// to evict anything and not insert.
	ev, evicted := c.Insert(8, false)
	if evicted {
		t.Fatalf("evicted pinned line: %+v", ev)
	}
	if c.Contains(8) {
		t.Error("insert into fully pinned set should bypass")
	}
	if c.PinnedCount() != 2 {
		t.Errorf("PinnedCount = %d, want 2", c.PinnedCount())
	}
	if err := c.CheckLRUInvariant(); err != nil {
		t.Error(err)
	}
}

func TestPinnedSurvivesThrash(t *testing.T) {
	c := MustNew(Config{SizeBytes: 8 * 64 * 4, Assoc: 4, BlockBytes: 64}) // 8 sets
	c.PinRange(0, 1)
	c.Insert(0, false)
	for b := trace.BlockAddr(8); b < 8*100; b += 8 {
		c.Insert(b, false) // hammer set 0
	}
	if !c.Contains(0) {
		t.Fatal("pinned block evicted")
	}
}

func TestTagPointers(t *testing.T) {
	cfg := tiny()
	cfg.TagPointers = true
	c := MustNew(cfg)
	c.Insert(5, false)
	if ok := c.SetPointer(5, 1234); !ok {
		t.Fatal("SetPointer on resident block failed")
	}
	if ptr, ok := c.Pointer(5); !ok || ptr != 1234 {
		t.Fatalf("Pointer = %d, %v", ptr, ok)
	}
	if ok := c.SetPointer(99, 1); ok {
		t.Error("SetPointer on absent block succeeded")
	}
	if _, ok := c.Pointer(99); ok {
		t.Error("Pointer on absent block succeeded")
	}
	// Pointer must die with the line.
	c.Insert(1, false)
	c.Insert(9, false)
	c.Insert(13, false) // evicts 5 or 1 in set 1... ensure 5 evicted by LRU
	// set index = block & 3. Blocks 5, 1, 9, 13 => sets 1,1,1,1; assoc 2.
	if c.Contains(5) {
		// then 1 was evicted; touch to force 5 out
		c.Insert(17, false)
	}
	c.Insert(5, false) // re-insert: pointer must be reset
	if _, ok := c.Pointer(5); ok {
		t.Error("pointer survived eviction + reinsert")
	}
}

func TestTagPointersDisabled(t *testing.T) {
	c := MustNew(tiny())
	c.Insert(5, false)
	if c.SetPointer(5, 1) {
		t.Error("SetPointer succeeded with TagPointers disabled")
	}
	if _, ok := c.Pointer(5); ok {
		t.Error("Pointer succeeded with TagPointers disabled")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(tiny())
	c.Insert(7, false)
	if !c.Invalidate(7) {
		t.Fatal("Invalidate on resident block returned false")
	}
	if c.Contains(7) {
		t.Fatal("block present after Invalidate")
	}
	if c.Invalidate(7) {
		t.Error("Invalidate on absent block returned true")
	}
}

func TestValidCount(t *testing.T) {
	c := MustNew(tiny())
	for b := trace.BlockAddr(0); b < 100; b++ {
		c.Insert(b, false)
	}
	if got := c.ValidCount(); got != 8 { // capacity: 4 sets * 2 ways
		t.Errorf("ValidCount = %d, want 8", got)
	}
}

func TestLRUInvariantProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		c := MustNew(Config{SizeBytes: 8 * 4 * 64, Assoc: 4, BlockBytes: 64})
		c.PinRange(0, 4)
		rng := trace.NewRNG(seed)
		for _, op := range ops {
			b := trace.BlockAddr(op % 256)
			switch rng.Intn(3) {
			case 0:
				c.Lookup(b)
			case 1:
				c.Insert(b, rng.Bool(0.5))
			case 2:
				c.Invalidate(b)
			}
			if err := c.CheckLRUInvariant(); err != nil {
				return false
			}
			if c.ValidCount() > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{})
}
