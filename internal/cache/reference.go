package cache

import "shift/internal/trace"

// Reference is the retained naive implementation of the Cache contract:
// linear tag scans, full-set victim scans, no hash index, no recency
// lists. It is the executable specification the optimized Cache is
// differentially tested against (see diff_test.go) and is deliberately
// kept simple — do not optimize it.
//
// Observable behavior (operation results, Stats, membership, LRU order,
// pointer tags) must match Cache exactly; internal way placement may
// differ, which is unobservable through the API.
type Reference struct {
	cfg        Config
	sets       [][]refLine
	setMask    uint64
	lruClock   uint64
	stats      Stats
	pinLo      trace.BlockAddr
	pinHi      trace.BlockAddr
	pinEnabled bool
}

type refLine struct {
	tag        uint64
	valid      bool
	lru        uint64
	prefetched bool
	referenced bool
	pinned     bool
	pointer    uint32
}

// NewReference builds the naive reference cache.
func NewReference(cfg Config) (*Reference, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Reference{cfg: cfg, setMask: uint64(nsets - 1)}
	c.sets = make([][]refLine, nsets)
	backing := make([]refLine, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
		for w := range c.sets[i] {
			c.sets[i][w].pointer = NoPointer
		}
	}
	return c, nil
}

// MustNewReference panics on config errors.
func MustNewReference(cfg Config) *Reference {
	c, err := NewReference(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a copy of the event counters.
func (c *Reference) Stats() Stats { return c.stats }

func (c *Reference) setIndex(b trace.BlockAddr) uint64 {
	return (uint64(b) >> c.cfg.IndexShift) & c.setMask
}

func (c *Reference) findWay(b trace.BlockAddr) (set []refLine, way int) {
	set = c.sets[c.setIndex(b)]
	for w := range set {
		if set[w].valid && set[w].tag == uint64(b) {
			return set, w
		}
	}
	return set, -1
}

// PinRange marks [lo, hi) as non-evictable.
func (c *Reference) PinRange(lo, hi trace.BlockAddr) {
	c.pinLo, c.pinHi, c.pinEnabled = lo, hi, true
}

func (c *Reference) inPinRange(b trace.BlockAddr) bool {
	return c.pinEnabled && b >= c.pinLo && b < c.pinHi
}

// Contains reports whether b is present, without touching LRU or stats.
func (c *Reference) Contains(b trace.BlockAddr) bool {
	_, w := c.findWay(b)
	return w >= 0
}

// Lookup performs a demand access to b.
func (c *Reference) Lookup(b trace.BlockAddr) (hit, wasPrefetch bool) {
	set, w := c.findWay(b)
	if w < 0 {
		c.stats.Misses++
		return false, false
	}
	ln := &set[w]
	c.lruClock++
	ln.lru = c.lruClock
	c.stats.Hits++
	if ln.prefetched {
		c.stats.PrefetchHits++
		ln.prefetched = false
		wasPrefetch = true
	}
	ln.referenced = true
	return true, wasPrefetch
}

// Extract is a demand access that removes the line on a hit.
func (c *Reference) Extract(b trace.BlockAddr) (hit, wasPrefetch bool) {
	hit, wasPrefetch = c.Lookup(b)
	if hit {
		c.Invalidate(b)
	}
	return hit, wasPrefetch
}

// Insert fills b; see Cache.Insert for the refresh semantics.
func (c *Reference) Insert(b trace.BlockAddr, prefetch bool) (ev Evicted, evicted bool) {
	set, w := c.findWay(b)
	c.lruClock++
	if w >= 0 {
		set[w].lru = c.lruClock
		if !prefetch {
			set[w].prefetched = false
		}
		set[w].pinned = c.inPinRange(b)
		return Evicted{}, false
	}
	victim := c.victim(set)
	if victim < 0 {
		return Evicted{}, false
	}
	ln := &set[victim]
	if ln.valid {
		ev = Evicted{Block: trace.BlockAddr(ln.tag), PrefetchUnused: ln.prefetched && !ln.referenced, Pointer: ln.pointer}
		evicted = true
		c.stats.Evictions++
		if ev.PrefetchUnused {
			c.stats.PrefetchDiscards++
		}
	}
	*ln = refLine{
		tag:        uint64(b),
		valid:      true,
		lru:        c.lruClock,
		prefetched: prefetch,
		pinned:     c.inPinRange(b),
		pointer:    NoPointer,
	}
	c.stats.Inserts++
	if prefetch {
		c.stats.PrefetchInserted++
	}
	return ev, evicted
}

// LookupInsert is a demand access that fills on a miss.
func (c *Reference) LookupInsert(b trace.BlockAddr, prefetch bool) (hit, wasPrefetch bool, ev Evicted, evicted bool) {
	hit, wasPrefetch = c.Lookup(b)
	if !hit {
		ev, evicted = c.Insert(b, prefetch)
	}
	return hit, wasPrefetch, ev, evicted
}

// victim picks the LRU non-pinned way, or an invalid way if present.
func (c *Reference) victim(set []refLine) int {
	best := -1
	var bestLRU uint64
	for w := range set {
		if !set[w].valid {
			return w
		}
		if set[w].pinned {
			continue
		}
		if best < 0 || set[w].lru < bestLRU {
			best, bestLRU = w, set[w].lru
		}
	}
	return best
}

// Invalidate removes b if present, returning whether it was present.
func (c *Reference) Invalidate(b trace.BlockAddr) bool {
	set, w := c.findWay(b)
	if w < 0 {
		return false
	}
	set[w] = refLine{pointer: NoPointer}
	return true
}

// SetPointer writes the tag-extension index pointer of b if present.
func (c *Reference) SetPointer(b trace.BlockAddr, ptr uint32) bool {
	if !c.cfg.TagPointers {
		return false
	}
	set, w := c.findWay(b)
	if w < 0 {
		return false
	}
	set[w].pointer = ptr
	return true
}

// Pointer reads the tag-extension index pointer of b.
func (c *Reference) Pointer(b trace.BlockAddr) (ptr uint32, ok bool) {
	if !c.cfg.TagPointers {
		return NoPointer, false
	}
	set, w := c.findWay(b)
	if w < 0 || set[w].pointer == NoPointer {
		return NoPointer, false
	}
	return set[w].pointer, true
}

// PinnedCount returns the number of currently pinned, valid lines.
func (c *Reference) PinnedCount() int {
	n := 0
	for _, set := range c.sets {
		for w := range set {
			if set[w].valid && set[w].pinned {
				n++
			}
		}
	}
	return n
}

// ValidCount returns the number of valid lines.
func (c *Reference) ValidCount() int {
	n := 0
	for _, set := range c.sets {
		for w := range set {
			if set[w].valid {
				n++
			}
		}
	}
	return n
}

// SetLRUOrder returns the valid blocks of set si ordered MRU→LRU
// (descending stamp).
func (c *Reference) SetLRUOrder(si int) []trace.BlockAddr {
	set := c.sets[si]
	var out []trace.BlockAddr
	used := make([]bool, len(set))
	for {
		best, bestW := uint64(0), -1
		for w := range set {
			if set[w].valid && !used[w] && (bestW < 0 || set[w].lru > best) {
				best, bestW = set[w].lru, w
			}
		}
		if bestW < 0 {
			return out
		}
		used[bestW] = true
		out = append(out, trace.BlockAddr(set[bestW].tag))
	}
}
