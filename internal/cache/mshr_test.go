package cache

import (
	"reflect"
	"testing"

	"shift/internal/trace"
)

func TestMSHRBasic(t *testing.T) {
	m := NewMSHRs(4)
	if m.Cap() != 4 {
		t.Fatalf("Cap = %d", m.Cap())
	}
	if _, ok := m.Lookup(1); ok {
		t.Fatal("lookup in empty MSHRs hit")
	}
	if acc := m.Allocate(1, 100, 120); acc != 100 {
		t.Fatalf("accepted at %d, want 100", acc)
	}
	if r, ok := m.Lookup(1); !ok || r != 120 {
		t.Fatalf("Lookup = %d, %v", r, ok)
	}
	m.Complete(1)
	if _, ok := m.Lookup(1); ok {
		t.Fatal("entry survived Complete")
	}
}

func TestMSHRDuplicateKeepsEarlier(t *testing.T) {
	m := NewMSHRs(4)
	m.Allocate(1, 0, 50)
	m.Allocate(1, 0, 80) // later completion must not extend
	if r, _ := m.Lookup(1); r != 50 {
		t.Errorf("ready = %d, want 50", r)
	}
	m.Allocate(1, 0, 30) // earlier completion wins
	if r, _ := m.Lookup(1); r != 30 {
		t.Errorf("ready = %d, want 30", r)
	}
}

func TestMSHRFullWithCompleted(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(1, 0, 5)
	m.Allocate(2, 0, 500)
	// At now=10, entry 1 has completed; allocation should proceed at 10.
	if acc := m.Allocate(3, 10, 100); acc != 10 {
		t.Errorf("accepted at %d, want 10", acc)
	}
	if m.InFlight() != 2 {
		t.Errorf("InFlight = %d, want 2", m.InFlight())
	}
}

func TestMSHRFullStalls(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(1, 0, 40)
	m.Allocate(2, 0, 60)
	// Nothing completed at now=10: must wait until the earliest (40).
	if acc := m.Allocate(3, 10, 100); acc != 40 {
		t.Errorf("accepted at %d, want 40", acc)
	}
}

func TestMSHRExpire(t *testing.T) {
	m := NewMSHRs(8)
	m.Allocate(1, 0, 10)
	m.Allocate(2, 0, 20)
	m.Allocate(3, 0, 30)
	m.Expire(20)
	if m.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", m.InFlight())
	}
	if _, ok := m.Lookup(3); !ok {
		t.Error("unexpired entry dropped")
	}
}

func TestMSHRZeroCap(t *testing.T) {
	m := NewMSHRs(0)
	if m.Cap() != 1 {
		t.Errorf("zero capacity should clamp to 1, got %d", m.Cap())
	}
}

// TestMSHRTake checks the fused Lookup+Complete.
func TestMSHRTake(t *testing.T) {
	m := NewMSHRs(4)
	m.Allocate(7, 0, 30)
	if r, ok := m.Take(7); !ok || r != 30 {
		t.Fatalf("Take(7) = %d,%v; want 30,true", r, ok)
	}
	if _, ok := m.Lookup(7); ok {
		t.Fatal("entry survived Take")
	}
	if _, ok := m.Take(7); ok {
		t.Fatal("Take of absent entry succeeded")
	}
}

// mshrTrace replays a seeded operation mix and returns the surviving
// (block, ready) set plus the sequence of accepted cycles — everything
// observable about the file.
func mshrTrace(seed int64) (entries map[trace.BlockAddr]int64, accepted []int64) {
	rng := trace.NewRNG(seed)
	m := NewMSHRs(8)
	now := int64(0)
	for op := 0; op < 5000; op++ {
		now += int64(rng.Intn(3))
		b := trace.BlockAddr(rng.Intn(32))
		switch rng.Intn(4) {
		case 0, 1:
			// Ties on the ready cycle are common by construction: ready
			// is drawn from a tiny window, so reclaim's victim choice is
			// exercised on equal completion cycles.
			accepted = append(accepted, m.Allocate(b, now, now+int64(rng.Intn(4))))
		case 2:
			m.Complete(b)
		case 3:
			m.Expire(now)
		}
	}
	entries = make(map[trace.BlockAddr]int64)
	for b := trace.BlockAddr(0); b < 32; b++ {
		if r, ok := m.Lookup(b); ok {
			entries[b] = r
		}
	}
	return entries, accepted
}

// TestMSHRDeterministicVictims runs two identically-seeded operation
// sequences and requires identical surviving entries and accepted
// cycles. The map-backed implementation this replaced picked reclaim
// victims in Go's randomized map iteration order, so ties on the ready
// cycle retired a different entry from run to run; the dense ring makes
// retirement order a pure function of the operation sequence.
func TestMSHRDeterministicVictims(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		e1, a1 := mshrTrace(seed)
		e2, a2 := mshrTrace(seed)
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("seed %d: surviving entries diverged:\n%v\n%v", seed, e1, e2)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("seed %d: accepted cycles diverged", seed)
		}
	}
}

// TestMSHRReclaimPrefersCompleted verifies that a full file retires a
// completed entry (accepting at now) before stalling on pending ones,
// and that the deterministic victim is the earliest completion.
func TestMSHRReclaimPrefersCompleted(t *testing.T) {
	m := NewMSHRs(3)
	m.Allocate(1, 0, 5)
	m.Allocate(2, 0, 7)
	m.Allocate(3, 0, 500)
	// At now=10, entries 1 and 2 have completed; the earliest (1) is
	// retired and the request proceeds immediately.
	if acc := m.Allocate(4, 10, 100); acc != 10 {
		t.Fatalf("accepted at %d, want 10", acc)
	}
	if _, ok := m.Lookup(1); ok {
		t.Fatal("earliest completed entry not retired")
	}
	if _, ok := m.Lookup(2); !ok {
		t.Fatal("later completed entry wrongly retired")
	}
}

// TestMSHRExpireKeepsMinimum drives interleaved allocate/expire cycles
// and cross-checks InFlight against a naive model.
func TestMSHRExpireKeepsMinimum(t *testing.T) {
	rng := trace.NewRNG(3)
	m := NewMSHRs(16)
	naive := map[trace.BlockAddr]int64{}
	now := int64(0)
	for op := 0; op < 3000; op++ {
		now += int64(rng.Intn(2))
		b := trace.BlockAddr(rng.Intn(64))
		if rng.Bool(0.6) && len(naive) < 16 {
			ready := now + int64(rng.Intn(20))
			if cur, ok := naive[b]; !ok || ready < cur {
				naive[b] = ready
			}
			m.Allocate(b, now, ready)
		} else {
			m.Expire(now)
			for nb, r := range naive {
				if r <= now {
					delete(naive, nb)
				}
			}
		}
		if m.InFlight() != len(naive) {
			t.Fatalf("op %d: InFlight %d, naive %d", op, m.InFlight(), len(naive))
		}
	}
}
