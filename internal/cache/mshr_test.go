package cache

import "testing"

func TestMSHRBasic(t *testing.T) {
	m := NewMSHRs(4)
	if m.Cap() != 4 {
		t.Fatalf("Cap = %d", m.Cap())
	}
	if _, ok := m.Lookup(1); ok {
		t.Fatal("lookup in empty MSHRs hit")
	}
	if acc := m.Allocate(1, 100, 120); acc != 100 {
		t.Fatalf("accepted at %d, want 100", acc)
	}
	if r, ok := m.Lookup(1); !ok || r != 120 {
		t.Fatalf("Lookup = %d, %v", r, ok)
	}
	m.Complete(1)
	if _, ok := m.Lookup(1); ok {
		t.Fatal("entry survived Complete")
	}
}

func TestMSHRDuplicateKeepsEarlier(t *testing.T) {
	m := NewMSHRs(4)
	m.Allocate(1, 0, 50)
	m.Allocate(1, 0, 80) // later completion must not extend
	if r, _ := m.Lookup(1); r != 50 {
		t.Errorf("ready = %d, want 50", r)
	}
	m.Allocate(1, 0, 30) // earlier completion wins
	if r, _ := m.Lookup(1); r != 30 {
		t.Errorf("ready = %d, want 30", r)
	}
}

func TestMSHRFullWithCompleted(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(1, 0, 5)
	m.Allocate(2, 0, 500)
	// At now=10, entry 1 has completed; allocation should proceed at 10.
	if acc := m.Allocate(3, 10, 100); acc != 10 {
		t.Errorf("accepted at %d, want 10", acc)
	}
	if m.InFlight() != 2 {
		t.Errorf("InFlight = %d, want 2", m.InFlight())
	}
}

func TestMSHRFullStalls(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(1, 0, 40)
	m.Allocate(2, 0, 60)
	// Nothing completed at now=10: must wait until the earliest (40).
	if acc := m.Allocate(3, 10, 100); acc != 40 {
		t.Errorf("accepted at %d, want 40", acc)
	}
}

func TestMSHRExpire(t *testing.T) {
	m := NewMSHRs(8)
	m.Allocate(1, 0, 10)
	m.Allocate(2, 0, 20)
	m.Allocate(3, 0, 30)
	m.Expire(20)
	if m.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", m.InFlight())
	}
	if _, ok := m.Lookup(3); !ok {
		t.Error("unexpired entry dropped")
	}
}

func TestMSHRZeroCap(t *testing.T) {
	m := NewMSHRs(0)
	if m.Cap() != 1 {
		t.Errorf("zero capacity should clamp to 1, got %d", m.Cap())
	}
}
