package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"shift"
)

// tinyConfig is a fast fully-specified cell for wire-level tests.
func tinyConfig(d shift.Design) shift.Config {
	cfg := shift.DefaultRunConfig("Web Search", d)
	cfg.Cores = 8
	cfg.WarmupRecords = 6000
	cfg.MeasureRecords = 6000
	cfg.Seed = 1
	return cfg
}

// newTestWorker starts an httptest worker serving /v1/batch and
// /v1/healthz on a fresh engine with an in-memory result store.
func newTestWorker(t *testing.T) (*httptest.Server, *Worker, *shift.Engine) {
	t.Helper()
	eng := shift.NewEngine(2, shift.NewResultCache())
	w := NewWorker(eng)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", w.HandleBatch)
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, w, eng
}

// postBatch posts cfgs to the worker and decodes the reply.
func postBatch(t *testing.T, url string, cfgs []shift.Config) (BatchResponse, int) {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Cells: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatalf("decoding reply: %v", err)
		}
	}
	return br, resp.StatusCode
}

// TestConfigResultWireRoundTrip pins the property the whole fabric
// rests on: a Config survives JSON bit-exactly (same content-address
// key on both sides of the wire) and so does a RunResult.
func TestConfigResultWireRoundTrip(t *testing.T) {
	cfg := tinyConfig(shift.DesignSHIFT)
	cfg.ElimProb = 0.123456789012345678 // exercise float round-tripping
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back shift.Config
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("Config changed over the wire:\n  sent %+v\n  got  %+v", cfg, back)
	}
	if cfg.Key() != back.Key() {
		t.Fatalf("key changed over the wire: %s vs %s", cfg.Key(), back.Key())
	}

	res, err := shift.Run(tinyConfig(shift.DesignBaseline))
	if err != nil {
		t.Fatal(err)
	}
	rblob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var rback shift.RunResult
	if err := json.Unmarshal(rblob, &rback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rback) {
		t.Fatalf("RunResult changed over the wire:\n  sent %+v\n  got  %+v", res, rback)
	}
}

func TestWorkerHandleBatch(t *testing.T) {
	srv, w, _ := newTestWorker(t)
	cfgs := []shift.Config{
		tinyConfig(shift.DesignBaseline),
		tinyConfig(shift.DesignSHIFT),
	}
	br, code := postBatch(t, srv.URL, cfgs)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(br.Results) != len(cfgs) {
		t.Fatalf("%d results, want %d", len(br.Results), len(cfgs))
	}
	for i, r := range br.Results {
		if r.Error != "" {
			t.Fatalf("cell %d failed: %s", i, r.Error)
		}
		if r.Key != cfgs[i].Key() {
			t.Fatalf("cell %d key %s, want %s", i, r.Key, cfgs[i].Key())
		}
		want, err := shift.Run(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*r.Result, want) {
			t.Fatalf("cell %d result differs from local Run", i)
		}
	}
	if w.Batches() != 1 || w.Cells() != 2 {
		t.Fatalf("counters: %d batches / %d cells, want 1 / 2", w.Batches(), w.Cells())
	}
}

func TestWorkerHandleBatchRejectsBadInput(t *testing.T) {
	srv, _, _ := newTestWorker(t)
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	if _, code := postBatch(t, srv.URL, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
}

// TestWorkerErrorParity checks the error contract of the wire: a
// failing cell's error travels raw (no worker-side "cell <label>:"
// prefix), positioned among succeeding neighbors, and matches what a
// local Run of the same config reports.
func TestWorkerErrorParity(t *testing.T) {
	srv, _, _ := newTestWorker(t)
	bad := tinyConfig(shift.Design(99))
	cfgs := []shift.Config{tinyConfig(shift.DesignBaseline), bad}
	br, code := postBatch(t, srv.URL, cfgs)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if br.Results[0].Error != "" || br.Results[0].Result == nil {
		t.Fatalf("healthy neighbor damaged: %+v", br.Results[0])
	}
	_, wantErr := shift.Run(bad)
	if wantErr == nil {
		t.Fatal("local Run of the bad config succeeded")
	}
	got := br.Results[1].Error
	if got != wantErr.Error() {
		t.Fatalf("wire error %q, want local error %q", got, wantErr.Error())
	}
	if strings.HasPrefix(got, "cell ") {
		t.Fatalf("wire error still carries the engine prefix: %q", got)
	}
}
