package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"shift"
)

// tinyOptions is a fast two-workload sweep: two distinct stream keys,
// so the grid genuinely shards across workers.
func tinyOptions(eng *shift.Engine) shift.Options {
	return shift.Options{
		Workloads:      []string{"OLTP Oracle", "Web Search"},
		Cores:          8,
		WarmupRecords:  6000,
		MeasureRecords: 6000,
		Seed:           1,
		Engine:         eng,
	}
}

// quadOptions widens tinyOptions to four workloads — four distinct
// stream-key batches, enough for chaos scenarios to guarantee the
// victims actually receive traffic.
func quadOptions(eng *shift.Engine) shift.Options {
	o := tinyOptions(eng)
	o.Workloads = []string{"OLTP DB2", "OLTP Oracle", "Web Frontend", "Web Search"}
	return o
}

// figureBytes renders a figure to canonical JSON for byte-identity
// comparison.
func figureBytes(t *testing.T, fig *shift.Figure7) []byte {
	t.Helper()
	b, err := json.Marshal(fig)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// singleHostFigure7 is the golden reference: the plain in-process
// engine.
func singleHostFigure7(t *testing.T) []byte {
	t.Helper()
	fig, err := shift.RunFigure7(tinyOptions(shift.NewEngine(2, shift.NewResultCache())))
	if err != nil {
		t.Fatal(err)
	}
	return figureBytes(t, fig)
}

// newCoordinatorEngine builds a coordinator over peers and an engine
// routing through it.
func newCoordinatorEngine(t *testing.T, cfg Config) (*Coordinator, *shift.Engine) {
	t.Helper()
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	eng := shift.NewEngine(4, shift.NewResultCache())
	eng.SetExecutor(coord)
	return coord, eng
}

// TestGoldenFigure7CrossWorker is the acceptance test: a Figure-7
// sweep sharded across two in-process workers is byte-identical to the
// single-host engine, under both affinity and round-robin routing
// (round-robin guarantees both workers receive work regardless of how
// rendezvous hashing maps this run's ephemeral ports).
func TestGoldenFigure7CrossWorker(t *testing.T) {
	want := singleHostFigure7(t)
	for _, route := range []string{"affinity", "round-robin"} {
		t.Run(route, func(t *testing.T) {
			srv1, w1, _ := newTestWorker(t)
			srv2, w2, _ := newTestWorker(t)
			coord, eng := newCoordinatorEngine(t, Config{
				Peers: []string{srv1.URL, srv2.URL},
				Route: route,
				Seed:  42,
			})
			fig, err := shift.RunFigure7(tinyOptions(eng))
			if err != nil {
				t.Fatal(err)
			}
			if got := figureBytes(t, fig); string(got) != string(want) {
				t.Fatalf("clustered figure differs from single-host:\n cluster %s\n single  %s", got, want)
			}
			st := coord.Stats()
			if st.BatchesRouted == 0 {
				t.Fatal("no batches were routed to workers")
			}
			if st.CellsFallback != 0 {
				t.Fatalf("%d cells fell back in-process with healthy workers", st.CellsFallback)
			}
			if w1.Cells()+w2.Cells() == 0 {
				t.Fatal("workers executed no cells")
			}
			if route == "round-robin" && (w1.Batches() == 0 || w2.Batches() == 0) {
				t.Fatalf("round-robin left a worker idle: %d / %d batches", w1.Batches(), w2.Batches())
			}
		})
	}
}

// chaosRule scripts one worker's failure mode in the chaos transport.
type chaosRule struct {
	// killAfter fails every request once the worker has served this
	// many (-1 = never).
	killAfter int
	served    int
	// stall blocks requests until their context expires.
	stall bool
	// partitioned fails every request immediately.
	partitioned bool
}

// chaosTransport injects seeded worker kills, stalls, and partitions
// into the coordinator's HTTP client, keyed by worker host.
type chaosTransport struct {
	inner http.RoundTripper
	mu    sync.Mutex
	rules map[string]*chaosRule
}

func newChaosTransport() *chaosTransport {
	return &chaosTransport{inner: http.DefaultTransport, rules: map[string]*chaosRule{}}
}

// set installs a rule for the worker at base URL u.
func (c *chaosTransport) set(t *testing.T, u string, r *chaosRule) {
	t.Helper()
	parsed, err := url.Parse(u)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.rules[parsed.Host] = r
	c.mu.Unlock()
}

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	r := c.rules[req.URL.Host]
	if r != nil {
		if r.partitioned {
			c.mu.Unlock()
			return nil, fmt.Errorf("chaos: %s partitioned", req.URL.Host)
		}
		if r.stall {
			c.mu.Unlock()
			<-req.Context().Done()
			return nil, req.Context().Err()
		}
		if r.killAfter >= 0 && r.served >= r.killAfter {
			c.mu.Unlock()
			return nil, fmt.Errorf("chaos: %s killed", req.URL.Host)
		}
		r.served++
	}
	c.mu.Unlock()
	return c.inner.RoundTrip(req)
}

// TestClusterChaosKillAndPartition is the cluster chaos suite's core:
// across seeded scenarios, one worker is killed mid-sweep (it serves
// one batch, then drops off) and another is partitioned from the
// start; the surviving workers absorb the re-routed batches and the
// figure stays byte-identical to single-host. Whether a victim is
// even routed to depends on how rendezvous hashing maps this run's
// ephemeral ports, so the failover-exercised assertion aggregates
// across all seeds instead of binding to each.
func TestClusterChaosKillAndPartition(t *testing.T) {
	ref, err := shift.RunFigure7(quadOptions(shift.NewEngine(2, shift.NewResultCache())))
	if err != nil {
		t.Fatal(err)
	}
	want := figureBytes(t, ref)
	var totalDispatchErrors int64
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			srvs := make([]*httptest.Server, 3)
			for i := range srvs {
				srvs[i], _, _ = newTestWorker(t)
			}
			chaos := newChaosTransport()
			rng := rand.New(rand.NewSource(seed))
			victims := rng.Perm(3)
			chaos.set(t, srvs[victims[0]].URL, &chaosRule{killAfter: 1})
			chaos.set(t, srvs[victims[1]].URL, &chaosRule{partitioned: true, killAfter: -1})

			coord, eng := newCoordinatorEngine(t, Config{
				Peers:      []string{srvs[0].URL, srvs[1].URL, srvs[2].URL},
				Client:     &http.Client{Transport: chaos},
				RetryDelay: time.Millisecond,
				Seed:       seed,
			})
			fig, err := shift.RunFigure7(quadOptions(eng))
			if err != nil {
				t.Fatal(err)
			}
			if got := figureBytes(t, fig); string(got) != string(want) {
				t.Fatalf("figure under chaos differs from single-host:\n chaos  %s\n single %s", got, want)
			}
			st := coord.Stats()
			totalDispatchErrors += st.DispatchErrors
			t.Logf("seed %d: routed=%d rerouted=%d fallback=%d dispatch_errors=%d",
				seed, st.BatchesRouted, st.BatchesRerouted, st.CellsFallback, st.DispatchErrors)
		})
	}
	if totalDispatchErrors == 0 {
		t.Fatal("no chaos scenario injected a dispatch error — failover never exercised")
	}
}

// TestClusterRerouteMidSweep pins re-routing specifically: two
// workers, one dies right after serving its first batch, every later
// batch routed its way must re-route to the survivor — and the output
// stays byte-identical. Four workloads give four stream-key batches,
// so round-robin sends the doomed worker at least two.
func TestClusterRerouteMidSweep(t *testing.T) {
	ref, err := shift.RunFigure7(quadOptions(shift.NewEngine(2, shift.NewResultCache())))
	if err != nil {
		t.Fatal(err)
	}
	want := figureBytes(t, ref)

	srv1, _, _ := newTestWorker(t)
	srv2, _, _ := newTestWorker(t)
	chaos := newChaosTransport()
	chaos.set(t, srv1.URL, &chaosRule{killAfter: 1})
	coord, eng := newCoordinatorEngine(t, Config{
		Peers:      []string{srv1.URL, srv2.URL},
		Route:      "round-robin", // guarantees srv1 is picked for some batch
		Client:     &http.Client{Transport: chaos},
		RetryDelay: time.Millisecond,
		Seed:       7,
	})
	fig, err := shift.RunFigure7(quadOptions(eng))
	if err != nil {
		t.Fatal(err)
	}
	if got := figureBytes(t, fig); string(got) != string(want) {
		t.Fatal("figure after mid-sweep worker kill differs from single-host")
	}
	st := coord.Stats()
	if st.BatchesRerouted == 0 && st.CellsFallback == 0 {
		t.Fatalf("kill produced neither re-routes nor fallback: %+v", st)
	}
	if st.DispatchErrors == 0 {
		t.Fatalf("kill injected no dispatch errors: %+v", st)
	}
}

// TestClusterStallHedges pins hedging: the router prefers a stalled
// worker, the hedge timer fires, and the batch completes on the backup
// before the primary's timeout.
func TestClusterStallHedges(t *testing.T) {
	srvStall, _, _ := newTestWorker(t)
	srvFast, _, _ := newTestWorker(t)
	chaos := newChaosTransport()
	chaos.set(t, srvStall.URL, &chaosRule{stall: true, killAfter: -1})
	coord, eng := newCoordinatorEngine(t, Config{
		Peers:        []string{srvStall.URL, srvFast.URL},
		Router:       preferRouter{prefix: srvStall.URL},
		Client:       &http.Client{Transport: chaos},
		HedgeAfter:   20 * time.Millisecond,
		BatchTimeout: 10 * time.Second,
		RetryDelay:   time.Millisecond,
		Seed:         7,
	})
	res, err := eng.RunOne(tinyConfig(shift.DesignSHIFT))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := shift.Run(tinyConfig(shift.DesignSHIFT))
	if err != nil {
		t.Fatal(err)
	}
	if res != wantRes {
		t.Fatal("hedged result differs from local Run")
	}
	if st := coord.Stats(); st.BatchesHedged == 0 {
		t.Fatalf("stalled primary was never hedged: %+v", st)
	}
}

// preferRouter orders the member whose address has the given prefix
// first — a deterministic way to aim traffic at a scripted worker.
type preferRouter struct{ prefix string }

// Pick moves the preferred member to the front, keeping the rest in
// candidate order.
func (r preferRouter) Pick(_ string, candidates []*Member) []*Member {
	out := make([]*Member, 0, len(candidates))
	var rest []*Member
	for _, m := range candidates {
		if strings.HasPrefix(m.Addr(), r.prefix) {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	return append(out, rest...)
}

// TestAllWorkersDownFallsBack pins graceful degradation: with every
// peer unreachable, the coordinator runs batches in-process and the
// sweep still matches single-host output exactly.
func TestAllWorkersDownFallsBack(t *testing.T) {
	want := singleHostFigure7(t)
	chaos := newChaosTransport()
	srv, _, _ := newTestWorker(t)
	chaos.set(t, srv.URL, &chaosRule{partitioned: true, killAfter: -1})
	coord, eng := newCoordinatorEngine(t, Config{
		Peers:      []string{srv.URL, "127.0.0.1:1"},
		Client:     &http.Client{Transport: chaos},
		RetryDelay: time.Millisecond,
		Seed:       7,
	})
	fig, err := shift.RunFigure7(tinyOptions(eng))
	if err != nil {
		t.Fatal(err)
	}
	if got := figureBytes(t, fig); string(got) != string(want) {
		t.Fatal("degraded in-process figure differs from single-host")
	}
	if st := coord.Stats(); st.CellsFallback == 0 {
		t.Fatalf("no cells fell back with all workers down: %+v", st)
	}
}

// TestProbeHealthStateMachine drives the up → suspect → down → up
// lifecycle through manual probes against a health endpoint that can
// be failed and restored.
func TestProbeHealthStateMachine(t *testing.T) {
	var healthy sync.Map
	healthy.Store("ok", true)
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if ok, _ := healthy.Load("ok"); ok.(bool) {
			rw.WriteHeader(http.StatusOK)
			return
		}
		rw.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	coord, err := New(Config{Peers: []string{srv.URL}, SuspectAfter: 1, DownAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	state := func() string { return coord.Members()[0].State }
	coord.Probe()
	if got := state(); got != "up" {
		t.Fatalf("after healthy probe: %s, want up", got)
	}
	healthy.Store("ok", false)
	coord.Probe()
	if got := state(); got != "suspect" {
		t.Fatalf("after 1 failure: %s, want suspect", got)
	}
	coord.Probe()
	coord.Probe()
	if got := state(); got != "down" {
		t.Fatalf("after 3 failures: %s, want down", got)
	}
	if st := coord.Stats(); st.WorkersDown != 1 || st.WorkersUp != 0 {
		t.Fatalf("stats disagree with state machine: %+v", st)
	}
	// Down workers keep being probed: recovery rejoins automatically.
	healthy.Store("ok", true)
	coord.Probe()
	if got := state(); got != "up" {
		t.Fatalf("after recovery probe: %s, want up", got)
	}
	ms := coord.Members()[0]
	if ms.Fails != 0 || ms.LastErr != "" || ms.LastSeen.IsZero() {
		t.Fatalf("recovered member keeps failure residue: %+v", ms)
	}
}

// TestClusterErrorParity pins end-to-end error equivalence: a grid
// with a failing cell reports the same error string through the
// cluster as through the single-host engine.
func TestClusterErrorParity(t *testing.T) {
	bad := tinyConfig(shift.Design(99))
	cells := []shift.Cell{
		{Label: "good", Config: tinyConfig(shift.DesignBaseline)},
		{Label: "bad", Config: bad},
	}
	local := shift.NewEngine(2, nil)
	_, wantErr := local.RunAll(cells)
	if wantErr == nil {
		t.Fatal("single-host RunAll succeeded on a bad cell")
	}

	srv, _, _ := newTestWorker(t)
	_, eng := newCoordinatorEngine(t, Config{Peers: []string{srv.URL}, Seed: 7})
	_, gotErr := eng.RunAll(cells)
	if gotErr == nil {
		t.Fatal("clustered RunAll succeeded on a bad cell")
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("clustered error %q, want single-host error %q", gotErr, wantErr)
	}
}

// TestBatchErrorClassification pins the two failure classes at the
// coordinator API: definitive per-cell failures surface as BatchError
// from ExecBatch (and as the raw error from ExecCell), with no
// re-route and the worker still healthy.
func TestBatchErrorClassification(t *testing.T) {
	srv, w, _ := newTestWorker(t)
	coord, err := New(Config{Peers: []string{srv.URL}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	bad := tinyConfig(shift.Design(99))
	_, execErr := coord.ExecBatch([]shift.Config{tinyConfig(shift.DesignBaseline), bad})
	var be *BatchError
	if !errors.As(execErr, &be) {
		t.Fatalf("ExecBatch error %v, want *BatchError", execErr)
	}
	if len(be.Cells) != 1 || be.Cells[1] == "" {
		t.Fatalf("BatchError cells %+v, want exactly cell 1", be.Cells)
	}
	_, wantErr := shift.Run(bad)
	if _, cellErr := coord.ExecCell(bad); cellErr == nil || cellErr.Error() != wantErr.Error() {
		t.Fatalf("ExecCell error %v, want %v", cellErr, wantErr)
	}
	st := coord.Stats()
	if st.BatchesRerouted != 0 || st.DispatchErrors != 0 {
		t.Fatalf("definitive failure was treated as transport trouble: %+v", st)
	}
	if st.WorkersUp != 1 {
		t.Fatalf("worker marked unhealthy by a simulation failure: %+v", st)
	}
	if w.Batches() < 2 {
		t.Fatalf("worker served %d batches, want >= 2", w.Batches())
	}
}
