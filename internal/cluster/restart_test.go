package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shift"
	"shift/internal/store"
)

// newRemoteStoreWorker starts a worker whose engine persists results
// to the shared remote blob store at blobURL (hot in-memory tier over
// the remote tier, CRC-verified end to end).
func newRemoteStoreWorker(t *testing.T, blobURL string) (*httptest.Server, *shift.Engine) {
	t.Helper()
	eng := shift.NewEngine(2, shift.NewTieredRemoteStore(blobURL, nil))
	w := NewWorker(eng)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", w.HandleBatch)
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, eng
}

// TestClusterPersistsAcrossWorkerRestarts extends the engine's
// crash-restart determinism guarantee to the cluster boundary: a
// sweep's workers share one remote result store; one worker is killed
// mid-grid and its batches re-route; then EVERY worker goes away and a
// freshly restarted one serves the same figure byte-identically
// without simulating a single cell — the whole grid is memoized in the
// shared store.
func TestClusterPersistsAcrossWorkerRestarts(t *testing.T) {
	blobSrv := httptest.NewServer(store.NewBlobHandler(store.NewMem()))
	defer blobSrv.Close()

	ref, err := shift.RunFigure7(quadOptions(shift.NewEngine(2, shift.NewResultCache())))
	if err != nil {
		t.Fatal(err)
	}
	want := figureBytes(t, ref)

	// Generation 1: two workers over the shared store; one dies after
	// its first batch, so the sweep finishes on re-routed dispatches.
	srv1, _ := newRemoteStoreWorker(t, blobSrv.URL)
	srv2, _ := newRemoteStoreWorker(t, blobSrv.URL)
	chaos := newChaosTransport()
	chaos.set(t, srv1.URL, &chaosRule{killAfter: 1})
	coord1, eng1 := newCoordinatorEngine(t, Config{
		Peers:      []string{srv1.URL, srv2.URL},
		Route:      "round-robin",
		Client:     &http.Client{Transport: chaos},
		RetryDelay: time.Millisecond,
		Seed:       7,
	})
	fig1, err := shift.RunFigure7(quadOptions(eng1))
	if err != nil {
		t.Fatal(err)
	}
	if got := figureBytes(t, fig1); string(got) != string(want) {
		t.Fatal("generation-1 clustered figure differs from single-host")
	}
	if st := coord1.Stats(); st.CellsFallback != 0 {
		// Fallback cells would be stored only in the coordinator's local
		// cache, weakening the restart assertion below.
		t.Fatalf("generation 1 fell back in-process (%d cells); expected the survivor to absorb re-routes", st.CellsFallback)
	}
	srv1.Close()
	srv2.Close()

	// Generation 2: a brand-new worker against the same store, a
	// brand-new coordinator and engine. Same bytes, zero simulations.
	srv3, eng3 := newRemoteStoreWorker(t, blobSrv.URL)
	_, eng2 := newCoordinatorEngine(t, Config{Peers: []string{srv3.URL}, Seed: 8})
	fig2, err := shift.RunFigure7(quadOptions(eng2))
	if err != nil {
		t.Fatal(err)
	}
	if got := figureBytes(t, fig2); string(got) != string(want) {
		t.Fatal("restarted cluster re-served a different figure")
	}
	if sim := eng3.Stats().Simulated; sim != 0 {
		t.Fatalf("restarted worker re-simulated %d cells; want 0 (memoized in the shared store)", sim)
	}
	if hits, _ := eng3.Stats().StoreHits, 0; hits == 0 {
		t.Fatal("restarted worker recorded no store hits")
	}
}
