// Package cluster promotes shiftd into a fault-tolerant
// coordinator/worker sweep fabric. The coordinator implements the
// engine's Executor hook: once the engine has decided a shared-stream
// batch must actually run (store miss, not in flight), the coordinator
// routes the whole batch to a worker over POST /v1/batch instead of
// simulating it in-process. Routing is pluggable (stream-key affinity
// via rendezvous hashing by default; round-robin and least-loaded
// alternatives), worker health is tracked up/suspect/down from
// dispatch outcomes and periodic heartbeat probes, transport failures
// re-route the batch to the next worker in the failover order with
// jittered backoff, stragglers are hedged to a second worker, and when
// no worker is reachable the coordinator degrades to in-process
// execution — a cluster of zero healthy workers behaves exactly like
// single-host shiftd.
//
// Determinism is inherited, not engineered: the simulator is a pure
// function of its Config, configs travel the wire as exact JSON (all
// fields exported, floats round-trip), and the engine's cell-keyed
// merge is unchanged — so a clustered sweep is byte-identical to a
// single-host one no matter which worker ran which batch, how many
// times a batch was re-routed, or whether a hedge produced a duplicate
// completion (duplicates carry identical content-addressed results).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shift"
)

// State is a worker's health as seen by the coordinator.
type State int

// Worker health states. A worker starts Up (optimistically routable),
// turns Suspect after SuspectAfter consecutive failures (deprioritized
// but still routable when nothing healthier exists), and Down after
// DownAfter (not routed to, but still probed — a recovered worker
// rejoins automatically on its next successful heartbeat or dispatch).
const (
	// Up marks a worker answering dispatches and probes.
	Up State = iota
	// Suspect marks a worker with recent consecutive failures.
	Suspect
	// Down marks a worker past the failure threshold.
	Down
)

// String names the state for logs, stats, and readiness reports.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Member is one worker in the coordinator's membership view.
type Member struct {
	addr     string
	inflight atomic.Int64

	mu       sync.Mutex
	state    State
	fails    int
	lastErr  string
	lastSeen time.Time
}

// Addr returns the worker's normalized base URL.
func (m *Member) Addr() string { return m.addr }

// Inflight returns the number of batches currently dispatched to this
// worker (the load signal behind least-loaded routing).
func (m *Member) Inflight() int64 { return m.inflight.Load() }

// state snapshot under the member lock.
func (m *Member) snapshot() MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemberStatus{
		Addr:     m.addr,
		State:    m.state.String(),
		Fails:    m.fails,
		LastErr:  m.lastErr,
		LastSeen: m.lastSeen,
		Inflight: m.inflight.Load(),
	}
}

// MemberStatus is a point-in-time health report for one worker,
// exposed by shiftd's /v1/cluster and /v1/readyz.
type MemberStatus struct {
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// State is the health state name: "up", "suspect", or "down".
	State string `json:"state"`
	// Fails is the current consecutive-failure count.
	Fails int `json:"fails,omitempty"`
	// LastErr is the most recent dispatch or probe error (empty when
	// healthy).
	LastErr string `json:"last_err,omitempty"`
	// LastSeen is when the worker last answered successfully.
	LastSeen time.Time `json:"last_seen,omitempty"`
	// Inflight is the number of batches currently dispatched to it.
	Inflight int64 `json:"inflight"`
}

// Stats is a point-in-time snapshot of the coordinator's counters,
// surfaced through shiftd's /v1/stats and /v1/metrics.
type Stats struct {
	// WorkersUp, WorkersSuspect, and WorkersDown count members by
	// health state.
	WorkersUp, WorkersSuspect, WorkersDown int
	// BatchesRouted counts batches successfully executed on a worker.
	BatchesRouted int64
	// BatchesRerouted counts dispatch attempts re-routed to another
	// worker after a transport failure.
	BatchesRerouted int64
	// BatchesHedged counts straggler batches speculatively re-dispatched
	// to a second worker before the first answered.
	BatchesHedged int64
	// CellsFallback counts cells executed in-process because no worker
	// was reachable (graceful degradation).
	CellsFallback int64
	// DispatchErrors counts transport-level dispatch failures
	// (unreachable worker, timeout, bad status, undecodable reply).
	DispatchErrors int64
}

// Config configures a Coordinator.
type Config struct {
	// Peers are the workers' base URLs ("host:port" or
	// "http://host:port").
	Peers []string
	// Route names the routing policy ("affinity", "round-robin",
	// "least-loaded"; empty = affinity). Ignored when Router is set.
	Route string
	// Router overrides the routing policy with a custom implementation.
	Router Router
	// Client is the HTTP client for dispatches and probes (nil = a
	// default client; per-request deadlines come from BatchTimeout).
	Client *http.Client
	// HeartbeatEvery is the health-probe period (0 disables the
	// background prober; Probe can still be called manually — tests
	// drive health deterministically this way).
	HeartbeatEvery time.Duration
	// SuspectAfter is the consecutive-failure count that turns a worker
	// Suspect (0 = default 1).
	SuspectAfter int
	// DownAfter is the consecutive-failure count that turns a worker
	// Down (0 = default 3).
	DownAfter int
	// BatchTimeout bounds one dispatch attempt (0 = default 2m).
	BatchTimeout time.Duration
	// Retries is how many additional workers a failed batch is
	// re-routed to before degrading to in-process execution (0 =
	// default: every remaining worker; negative = none).
	Retries int
	// RetryDelay is the base of the jittered backoff between re-routes
	// (0 = default 25ms; full jitter, doubling per attempt).
	RetryDelay time.Duration
	// HedgeAfter is how long a dispatch may run before a speculative
	// duplicate is sent to the next worker in the failover order
	// (0 disables hedging).
	HedgeAfter time.Duration
	// Seed seeds the backoff jitter for reproducible schedules
	// (0 = a fixed default seed).
	Seed int64
}

// Coordinator routes shared-stream batches to a cluster of workers
// with affinity, failover, hedging, and graceful degradation. It
// implements shift.Executor: install it with Engine.SetExecutor and
// every figure, grid, and job transparently shards across the cluster.
// Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	router Router
	client *http.Client

	mu      sync.Mutex
	members []*Member
	rng     *rand.Rand

	routed    atomic.Int64
	rerouted  atomic.Int64
	hedged    atomic.Int64
	fallback  atomic.Int64
	dispErrs  atomic.Int64
	closeOnce sync.Once
	done      chan struct{}
}

// New returns a coordinator over the configured peers. When
// HeartbeatEvery is set, a background prober starts immediately; Close
// stops it.
func New(cfg Config) (*Coordinator, error) {
	router := cfg.Router
	if router == nil {
		var err error
		if router, err = NewRouter(cfg.Route); err != nil {
			return nil, err
		}
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 1
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = 2 * time.Minute
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 25 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{
		cfg:    cfg,
		router: router,
		client: client,
		rng:    rand.New(rand.NewSource(seed)),
		done:   make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		c.Join(p)
	}
	if cfg.HeartbeatEvery > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// Close stops the background health prober. In-flight dispatches
// complete normally.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.done) })
}

// normalizeAddr turns a peer spec into a base URL: a missing scheme
// defaults to http, and trailing slashes are dropped.
func normalizeAddr(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// Join adds a worker to the membership, reporting whether the address
// was new (idempotent: re-joining an existing address is a no-op and
// returns false — callers persisting membership append first joins
// only). New members start Up — optimistic routing discovers dead
// peers on the first dispatch or probe, which is cheaper than blocking
// joins on a health check.
func (c *Coordinator) Join(addr string) bool {
	addr = normalizeAddr(addr)
	if addr == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.addr == addr {
			return false
		}
	}
	c.members = append(c.members, &Member{addr: addr, state: Up})
	return true
}

// Members returns a health snapshot of every worker, address-ordered.
func (c *Coordinator) Members() []MemberStatus {
	c.mu.Lock()
	ms := append([]*Member(nil), c.members...)
	c.mu.Unlock()
	out := make([]MemberStatus, len(ms))
	for i, m := range ms {
		out[i] = m.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		BatchesRouted:   c.routed.Load(),
		BatchesRerouted: c.rerouted.Load(),
		BatchesHedged:   c.hedged.Load(),
		CellsFallback:   c.fallback.Load(),
		DispatchErrors:  c.dispErrs.Load(),
	}
	for _, m := range c.Members() {
		switch m.State {
		case "up":
			s.WorkersUp++
		case "suspect":
			s.WorkersSuspect++
		default:
			s.WorkersDown++
		}
	}
	return s
}

// markUp records a successful dispatch or probe: the worker is Up and
// its failure streak resets.
func (c *Coordinator) markUp(m *Member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = Up
	m.fails = 0
	m.lastErr = ""
	m.lastSeen = time.Now()
}

// markFailed records a failed dispatch or probe and advances the
// health state machine: SuspectAfter consecutive failures turn the
// worker Suspect, DownAfter turn it Down.
func (c *Coordinator) markFailed(m *Member, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fails++
	if err != nil {
		m.lastErr = err.Error()
	}
	switch {
	case m.fails >= c.cfg.DownAfter:
		m.state = Down
	case m.fails >= c.cfg.SuspectAfter:
		m.state = Suspect
	}
}

// routable returns the members the router may choose from: the Up
// members, or — when nothing is Up — the Suspect ones (better a shaky
// worker than none; Down workers are never routed to, only probed).
func (c *Coordinator) routable() []*Member {
	c.mu.Lock()
	ms := append([]*Member(nil), c.members...)
	c.mu.Unlock()
	var up, suspect []*Member
	for _, m := range ms {
		m.mu.Lock()
		st := m.state
		m.mu.Unlock()
		switch st {
		case Up:
			up = append(up, m)
		case Suspect:
			suspect = append(suspect, m)
		}
	}
	if len(up) > 0 {
		return up
	}
	return suspect
}

// heartbeatLoop probes all members every HeartbeatEvery until Close.
func (c *Coordinator) heartbeatLoop() {
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.Probe()
		}
	}
}

// Probe health-checks every member once (GET /v1/healthz), including
// Down ones — a recovered worker rejoins on its first passing probe.
// The background prober calls this on its ticker; tests call it
// directly to drive the health state machine deterministically.
func (c *Coordinator) Probe() {
	c.mu.Lock()
	ms := append([]*Member(nil), c.members...)
	c.mu.Unlock()
	timeout := c.cfg.HeartbeatEvery
	if timeout <= 0 || timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.addr+"/v1/healthz", nil)
			if err != nil {
				c.markFailed(m, err)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				c.markFailed(m, fmt.Errorf("heartbeat: %w", err))
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				c.markFailed(m, fmt.Errorf("heartbeat: status %d", resp.StatusCode))
				return
			}
			c.markUp(m)
		}(m)
	}
	wg.Wait()
}

// ExecCell implements shift.Executor for a single cell: a one-cell
// batch through the same routing, failover, and fallback machinery.
func (c *Coordinator) ExecCell(cfg shift.Config) (shift.RunResult, error) {
	rs, err := c.exec([]shift.Config{cfg})
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			// Definitive single-cell failure: surface the worker's raw
			// simulation error so the engine's "cell <label>:" wrap
			// reproduces the exact single-host message.
			if msg, ok := be.Cells[0]; ok {
				return shift.RunResult{}, errors.New(msg)
			}
		}
		return shift.RunResult{}, err
	}
	return rs[0], nil
}

// ExecBatch implements shift.Executor for a shared-stream batch. A
// definitive per-cell failure surfaces as a BatchError, on which the
// engine falls back to per-cell ExecCell calls that reproduce each
// member's exact error.
func (c *Coordinator) ExecBatch(cfgs []shift.Config) ([]shift.RunResult, error) {
	return c.exec(cfgs)
}

// jitter returns a full-jitter backoff delay for the k-th re-route:
// uniform in [0, RetryDelay·2^k), from the seeded source.
func (c *Coordinator) jitter(k int) time.Duration {
	max := c.cfg.RetryDelay << uint(k)
	if max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(max)))
}

// exec routes one batch: order the routable workers for the batch's
// stream key, dispatch to the first (hedging to the second when the
// first straggles), re-route transport failures down the failover
// order with jittered backoff, and degrade to in-process execution
// when no worker remains. Definitive worker answers (results or
// BatchError) return immediately — re-routing a deterministic
// simulation failure would just reproduce it.
func (c *Coordinator) exec(cfgs []shift.Config) ([]shift.RunResult, error) {
	streamKey := cfgs[0].StreamKey()
	tried := make(map[string]bool)
	retries := c.cfg.Retries
	for attempt := 0; ; attempt++ {
		order := c.pickOrder(streamKey, tried)
		if len(order) == 0 || (retries > 0 && attempt > retries) || retries < 0 && attempt > 0 {
			break
		}
		if attempt > 0 {
			c.rerouted.Add(1)
			if d := c.jitter(attempt - 1); d > 0 {
				time.Sleep(d)
			}
		}
		target := order[0]
		tried[target.addr] = true
		var hedge *Member
		if len(order) > 1 {
			hedge = order[1]
		}
		rs, err := c.dispatch(target, hedge, cfgs)
		if err == nil {
			c.routed.Add(1)
			return rs, nil
		}
		var be *BatchError
		if errors.As(err, &be) {
			return nil, be
		}
		// Transport failure: fall through to the next worker.
	}
	// Graceful degradation: no worker reachable — run in-process, which
	// is trivially byte-identical to the single-host engine.
	c.fallback.Add(int64(len(cfgs)))
	if len(cfgs) == 1 {
		r, err := shift.Run(cfgs[0])
		if err != nil {
			return nil, err
		}
		return []shift.RunResult{r}, nil
	}
	return shift.RunBatch(cfgs)
}

// pickOrder returns the untried routable workers in the router's
// preference order for streamKey.
func (c *Coordinator) pickOrder(streamKey string, tried map[string]bool) []*Member {
	candidates := c.routable()
	if len(tried) > 0 {
		kept := candidates[:0:0]
		for _, m := range candidates {
			if !tried[m.addr] {
				kept = append(kept, m)
			}
		}
		candidates = kept
	}
	if len(candidates) == 0 {
		return nil
	}
	return c.router.Pick(streamKey, candidates)
}

// dispatchReply is one worker's answer to a (possibly hedged)
// dispatch.
type dispatchReply struct {
	m   *Member
	rs  []shift.RunResult
	err error
}

// dispatch posts the batch to target, speculatively duplicating it to
// hedge if target has not answered within HedgeAfter. The first
// definitive answer wins; duplicate completions are harmless because
// results are content-addressed and identical. Health bookkeeping
// happens per worker: whichever answered well is marked up, whichever
// failed is marked failed.
func (c *Coordinator) dispatch(target, hedge *Member, cfgs []shift.Config) ([]shift.RunResult, error) {
	ch := make(chan dispatchReply, 2)
	post := func(m *Member) {
		rs, err := c.post(m, cfgs)
		ch <- dispatchReply{m: m, rs: rs, err: err}
	}
	go post(target)
	outstanding := 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedge != nil && c.cfg.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	var firstErr error
	for outstanding > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			c.hedged.Add(1)
			outstanding++
			go post(hedge)
		case r := <-ch:
			outstanding--
			if r.err == nil {
				c.markUp(r.m)
				return r.rs, nil
			}
			var be *BatchError
			if errors.As(r.err, &be) {
				// Definitive: the worker is healthy, the simulation
				// failed. Hedge duplicates (if any) drain in background.
				c.markUp(r.m)
				return nil, r.err
			}
			c.dispErrs.Add(1)
			c.markFailed(r.m, r.err)
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	return nil, firstErr
}

// post performs one POST /v1/batch to m, bounded by BatchTimeout, and
// decodes the reply. Transport-level problems (unreachable, timeout,
// bad status, short or mismatched reply) return errDispatch-wrapped
// errors — the re-routable class; worker-reported per-cell simulation
// failures return a *BatchError — the definitive class.
func (c *Coordinator) post(m *Member, cfgs []shift.Config) ([]shift.RunResult, error) {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	body, err := json.Marshal(BatchRequest{Cells: cfgs})
	if err != nil {
		return nil, fmt.Errorf("%w: encoding batch: %v", errDispatch, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.BatchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.addr+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errDispatch, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errDispatch, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%w: %s: status %d: %s", errDispatch, m.addr, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("%w: decoding reply: %v", errDispatch, err)
	}
	if len(br.Results) != len(cfgs) {
		return nil, fmt.Errorf("%w: %d cells sent, %d results returned", errDispatch, len(cfgs), len(br.Results))
	}
	out := make([]shift.RunResult, len(cfgs))
	be := &BatchError{Cells: make(map[int]string)}
	for i, r := range br.Results {
		if r.Error != "" {
			be.Cells[i] = r.Error
			continue
		}
		if r.Result == nil {
			return nil, fmt.Errorf("%w: cell %d: no result and no error", errDispatch, i)
		}
		if want := cfgs[i].Key(); r.Key != want {
			return nil, fmt.Errorf("%w: cell %d: key mismatch (worker %s, coordinator %s)", errDispatch, i, r.Key, want)
		}
		out[i] = *r.Result
	}
	if len(be.Cells) > 0 {
		return nil, be
	}
	return out, nil
}
