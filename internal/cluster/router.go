package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
)

// Router orders the candidate workers for dispatching one batch: the
// coordinator tries the returned members front to back, so position 0
// is the preferred worker and the rest are the failover order. The
// candidates passed in are routable (up, or suspect when nothing is
// up); a router never needs to filter health itself. Implementations
// must be safe for concurrent use and must not mutate or retain the
// candidate slice.
type Router interface {
	// Pick orders candidates for the batch with the given stream key.
	Pick(streamKey string, candidates []*Member) []*Member
}

// NewRouter returns the named routing policy: "affinity" (stream-key
// affinity via rendezvous hashing — the default), "round-robin", or
// "least-loaded".
func NewRouter(name string) (Router, error) {
	switch name {
	case "", "affinity":
		return &AffinityRouter{}, nil
	case "round-robin":
		return &RoundRobinRouter{}, nil
	case "least-loaded":
		return &LeastLoadedRouter{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (valid: affinity, round-robin, least-loaded)", name)
}

// AffinityRouter routes by stream-key affinity using rendezvous
// (highest-random-weight) hashing: each worker scores hash(streamKey,
// addr) and the batch goes to the highest score. The same stream key
// always lands on the same worker while membership is unchanged — so a
// batch's shared trace stream, and the memoized results of every cell
// that consumed it, live on one worker — while distinct stream keys
// spread uniformly across the cluster. When a worker dies, only its
// keys move (each to its second-highest scorer, which is exactly the
// failover order Pick returns), and they move back when it rejoins:
// affinity is rebuilt from membership alone, with no state to migrate.
type AffinityRouter struct{}

// score is the rendezvous weight of addr for streamKey.
func (*AffinityRouter) score(streamKey, addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(streamKey))
	h.Write([]byte{0})
	h.Write([]byte(addr))
	return h.Sum64()
}

// Pick orders candidates by descending rendezvous score.
func (r *AffinityRouter) Pick(streamKey string, candidates []*Member) []*Member {
	out := append([]*Member(nil), candidates...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := r.score(streamKey, out[i].Addr()), r.score(streamKey, out[j].Addr())
		if si != sj {
			return si > sj
		}
		return out[i].Addr() < out[j].Addr()
	})
	return out
}

// RoundRobinRouter ignores the stream key and deals batches out in
// rotation. Simple and perfectly balanced, but stream-key locality is
// lost: the same workload's batches land on different workers across
// sweeps, so worker-side memoization and trace-stream reuse suffer.
// Useful as a baseline and for perfectly homogeneous sweeps.
type RoundRobinRouter struct {
	next atomic.Uint64
}

// Pick rotates the candidate order by an advancing counter.
func (r *RoundRobinRouter) Pick(_ string, candidates []*Member) []*Member {
	if len(candidates) == 0 {
		return nil
	}
	// Sort by address first so rotation is over a stable ring, not over
	// whatever order membership happened to arrive in.
	ring := append([]*Member(nil), candidates...)
	sort.Slice(ring, func(i, j int) bool { return ring[i].Addr() < ring[j].Addr() })
	k := int(r.next.Add(1)-1) % len(ring)
	out := make([]*Member, 0, len(ring))
	out = append(out, ring[k:]...)
	out = append(out, ring[:k]...)
	return out
}

// LeastLoadedRouter orders workers by the coordinator's view of their
// outstanding batches (fewest first, address-ordered on ties, so the
// order is deterministic for a given load state). Good when batch
// costs vary wildly; like round-robin it sacrifices stream-key
// locality.
type LeastLoadedRouter struct{}

// Pick orders candidates by ascending in-flight batch count.
func (*LeastLoadedRouter) Pick(_ string, candidates []*Member) []*Member {
	out := append([]*Member(nil), candidates...)
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := out[i].Inflight(), out[j].Inflight()
		if li != lj {
			return li < lj
		}
		return out[i].Addr() < out[j].Addr()
	})
	return out
}
