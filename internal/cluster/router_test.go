package cluster

import (
	"reflect"
	"testing"
)

func members(addrs ...string) []*Member {
	out := make([]*Member, len(addrs))
	for i, a := range addrs {
		out[i] = &Member{addr: a, state: Up}
	}
	return out
}

func addrs(ms []*Member) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.addr
	}
	return out
}

func TestNewRouterUnknown(t *testing.T) {
	if _, err := NewRouter("random"); err == nil {
		t.Fatal("NewRouter(random) succeeded; want error")
	}
	for _, name := range []string{"", "affinity", "round-robin", "least-loaded"} {
		if _, err := NewRouter(name); err != nil {
			t.Fatalf("NewRouter(%q): %v", name, err)
		}
	}
}

// TestAffinityStableFailover checks the two rendezvous properties the
// fabric relies on: the same stream key always orders the same
// membership identically (stability), and removing the preferred
// worker leaves the remaining order unchanged (minimal-disruption
// failover: only the dead worker's keys move).
func TestAffinityStableFailover(t *testing.T) {
	r := &AffinityRouter{}
	ms := members("http://a:1", "http://b:1", "http://c:1", "http://d:1")
	keys := []string{"s1|oltp", "s1|web", "s1|media", "s1|dss"}
	for _, k := range keys {
		first := addrs(r.Pick(k, ms))
		if again := addrs(r.Pick(k, ms)); !reflect.DeepEqual(first, again) {
			t.Fatalf("key %q: unstable order %v then %v", k, first, again)
		}
		// Drop the winner: the failover order must be the old order's
		// tail, exactly.
		survivors := r.Pick(k, ms)[1:]
		failover := addrs(r.Pick(k, survivors))
		if !reflect.DeepEqual(failover, addrs(survivors)) {
			t.Fatalf("key %q: failover order %v, want tail %v", k, failover, addrs(survivors))
		}
	}
	// Distinct keys should not all pile on one worker.
	firsts := map[string]bool{}
	for _, k := range keys {
		firsts[r.Pick(k, ms)[0].addr] = true
	}
	if len(firsts) < 2 {
		t.Fatalf("4 keys all routed to one of 4 workers: %v", firsts)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	r := &RoundRobinRouter{}
	ms := members("http://b:1", "http://a:1", "http://c:1")
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		order := r.Pick("ignored", ms)
		if len(order) != 3 {
			t.Fatalf("Pick returned %d members, want 3", len(order))
		}
		seen[order[0].addr]++
	}
	for _, m := range ms {
		if seen[m.addr] != 2 {
			t.Fatalf("uneven rotation: %v", seen)
		}
	}
	if r.Pick("x", nil) != nil {
		t.Fatal("Pick with no candidates returned members")
	}
}

func TestLeastLoadedOrders(t *testing.T) {
	r := &LeastLoadedRouter{}
	ms := members("http://a:1", "http://b:1", "http://c:1")
	ms[0].inflight.Store(5)
	ms[2].inflight.Store(1)
	got := addrs(r.Pick("ignored", ms))
	want := []string{"http://b:1", "http://c:1", "http://a:1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("least-loaded order %v, want %v", got, want)
	}
}
