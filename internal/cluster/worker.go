package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"shift"
)

// This file is the worker half of the fabric: the wire protocol of
// POST /v1/batch and the handler that executes a routed batch on the
// worker's local engine. The worker is deliberately dumb — it runs
// whatever whole batch arrives and answers per-cell — because all
// placement, failover, and merge intelligence lives in the
// coordinator. Running through the local engine (never bare
// shift.RunBatch) gives every routed batch the worker's store
// memoization, in-flight deduplication, and containment for free, so a
// re-routed or re-dispatched batch whose cells were already computed
// here is served from the store instead of re-simulated.

// BatchRequest is the wire form of POST /v1/batch: one shared-stream
// batch of fully-resolved simulation configs. Configs travel as their
// exact JSON encoding (all fields exported; floats round-trip
// bit-exactly), so the worker computes the same content-address keys
// as the coordinator.
type BatchRequest struct {
	// Cells is the batch, in coordinator cell order. Members of one
	// request normally share a StreamKey (that is the routing unit),
	// but the worker does not require it — the engine re-partitions.
	Cells []shift.Config `json:"cells"`
}

// BatchResponse is the wire form of a POST /v1/batch reply: one entry
// per requested cell, positionally aligned with the request.
type BatchResponse struct {
	// Results holds one outcome per request cell.
	Results []BatchResult `json:"results"`
}

// BatchResult is one cell's outcome within a BatchResponse.
type BatchResult struct {
	// Key is the cell's content address (shift.Config.Key), computed on
	// the worker; the coordinator cross-checks it against its own.
	Key string `json:"key"`
	// Result is the simulation result (success only).
	Result *shift.RunResult `json:"result,omitempty"`
	// Error is the cell's raw simulation error (failure only), without
	// the engine's "cell <label>:" prefix — the coordinator's engine
	// re-attaches its own label, so clustered error messages match
	// single-host ones.
	Error string `json:"error,omitempty"`
}

// Worker executes routed batches on a local engine. It serves POST
// /v1/batch (HandleBatch); the blob tier and health probes are served
// by the surrounding process (shiftd mounts /v1/blobs and /v1/healthz
// alongside).
type Worker struct {
	engine  *shift.Engine
	batches atomic.Int64
	cells   atomic.Int64
}

// NewWorker returns a worker executing batches on engine.
func NewWorker(engine *shift.Engine) *Worker {
	return &Worker{engine: engine}
}

// Batches returns the number of batch requests served.
func (w *Worker) Batches() int64 { return w.batches.Load() }

// Cells returns the number of cells received across all batches.
func (w *Worker) Cells() int64 { return w.cells.Load() }

// workerLabel is the default cell label the worker runs a routed config
// under — the same "workload/design" derivation the engine uses for
// grid cells, so worker-side diagnostics read like single-host ones.
func workerLabel(cfg shift.Config) string {
	return cfg.Workload + "/" + cfg.Design.String()
}

// stripCellPrefix removes the engine's "cell <label>: " error prefix so
// the raw simulation error travels the wire and the coordinator's
// engine can attach its own label exactly once.
func stripCellPrefix(msg, label string) string {
	return strings.TrimPrefix(msg, "cell "+label+": ")
}

// HandleBatch serves POST /v1/batch: decode the batch, execute it on
// the local engine, answer per-cell. A batch with a failing cell is
// re-executed cell by cell so every cell reports its own exact result
// or error (the simulator is deterministic, so the re-execution is
// mostly store hits).
func (w *Worker) HandleBatch(rw http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	r.Body = http.MaxBytesReader(rw, r.Body, 16<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, fmt.Sprintf("decoding batch: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Cells) == 0 {
		http.Error(rw, "empty batch", http.StatusBadRequest)
		return
	}
	w.batches.Add(1)
	w.cells.Add(int64(len(req.Cells)))

	cells := make([]shift.Cell, len(req.Cells))
	for i, cfg := range req.Cells {
		cells[i] = shift.Cell{Label: workerLabel(cfg), Config: cfg}
	}
	resp := BatchResponse{Results: make([]BatchResult, len(cells))}
	results, err := w.engine.RunAll(cells)
	for i := range cells {
		resp.Results[i].Key = cells[i].Config.Key()
		if err == nil {
			res := results[i]
			resp.Results[i].Result = &res
			continue
		}
		// Per-cell fallback: RunAll surfaced only the lowest-index
		// failure; re-run each cell individually for its own outcome.
		res, cerr := w.engine.RunOne(cells[i].Config)
		if cerr != nil {
			resp.Results[i].Error = stripCellPrefix(cerr.Error(), cells[i].Label)
			continue
		}
		resp.Results[i].Result = &res
	}
	rw.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(rw).Encode(resp); err != nil {
		// The header is committed; nothing to do but note it — the
		// coordinator sees a truncated body and retries elsewhere.
		return
	}
}

// BatchError reports a batch whose worker answered definitively — the
// dispatch succeeded but one or more cells failed in simulation. It is
// never transient: re-routing re-runs the same deterministic failure,
// so the coordinator surfaces it instead, and the engine's per-cell
// fallback then reproduces each member's exact error.
type BatchError struct {
	// Cells maps batch position to the worker's raw error message.
	Cells map[int]string
}

// Error summarizes the failing cells by batch position.
func (e *BatchError) Error() string {
	return fmt.Sprintf("cluster: %d of a batch's cells failed on the worker", len(e.Cells))
}

// errDispatch marks transport-level dispatch failures (unreachable
// worker, timeout, bad status, undecodable reply) — the re-routable
// class, as opposed to a BatchError.
var errDispatch = errors.New("cluster: dispatch failed")
