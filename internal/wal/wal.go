// Package wal is an append-only write-ahead log of opaque records,
// the durability substrate behind shiftd's restartable jobs and
// persistent cluster membership.
//
// The on-disk format is a flat sequence of framed records:
//
//	[4-byte big-endian payload length][payload][4-byte big-endian CRC-32C]
//
// The CRC-32C footer covers the payload bytes and uses the same
// Castagnoli table as the result store's blob integrity footers
// (store.Checksum), so the whole tree shares one checksum convention.
// Payloads are opaque to this package; callers journal JSON.
//
// Torn-tail contract: a crash mid-append leaves a final record whose
// frame is incomplete (missing length bytes, short payload, or a
// mismatching footer with nothing after it). Open detects that tail,
// discards it, truncates the file back to the last intact record, and
// reports how much it dropped — losing at most the single record that
// was being written when the process died. A record that fails its CRC
// with further data behind it can never be a torn append (appends are
// sequential), so it is interior corruption — bit rot or an outside
// writer — and Open fails loudly with ErrCorrupt rather than silently
// dropping journaled state.
//
// Rotation/compaction: Rewrite atomically replaces the log's contents
// with a compacted snapshot (temp file + fsync + rename), so callers
// whose live state is a small fraction of the accumulated log can fold
// it down without a durability gap — a crash during Rewrite leaves the
// old log intact.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"shift/internal/store"
)

// ErrCorrupt marks a log whose interior failed verification: a record
// that is not the torn tail of a crashed append has a mismatching
// CRC-32C footer or an impossible frame. Replaying past it could
// silently drop journaled state, so Open refuses to open the log;
// the operator keeps the evidence and decides.
var ErrCorrupt = errors.New("wal: corrupt record")

// maxRecord bounds a single record's payload (16 MiB). Appends beyond
// it are refused, so a length prefix above it on disk can only be
// corruption — a torn append never fabricates a large length, because
// the 4 length bytes are written before any payload byte.
const maxRecord = 16 << 20

// frameOverhead is the framing cost per record: the 4-byte length
// prefix plus the 4-byte CRC-32C footer.
const frameOverhead = 8

// Tail describes the torn tail Open discarded, if any.
type Tail struct {
	// Records is the number of trailing records dropped (0 or 1: a
	// sequential append can tear at most the record being written).
	Records int
	// Bytes is the number of trailing bytes truncated away.
	Bytes int64
}

// Log is an append-only record log backed by one file. All methods are
// safe for concurrent use; appends are serialized and synced to disk
// before returning, so an acknowledged record survives process death.
type Log struct {
	mu          sync.Mutex
	f           *os.File
	path        string
	size        int64
	records     int
	nosync      bool
	tail        Tail
	compactions int64
}

// Open opens (creating if absent) the log at path, replays every
// intact record into recs, truncates away a torn tail (reported in
// tail), and positions the log for appending. Interior corruption
// fails with an error wrapping ErrCorrupt and the byte offset of the
// offending record; nothing is modified in that case.
func Open(path string) (l *Log, recs [][]byte, tail Tail, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, Tail{}, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, Tail{}, err
	}
	recs, good, err := scan(data)
	if err != nil {
		f.Close()
		return nil, nil, Tail{}, fmt.Errorf("%s: %w", path, err)
	}
	if good < int64(len(data)) {
		tail.Bytes = int64(len(data)) - good
		tail.Records = 1
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, Tail{}, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, Tail{}, err
	}
	return &Log{f: f, path: path, size: good, records: len(recs), tail: tail}, recs, tail, nil
}

// scan parses data into records, returning the byte offset of the end
// of the last intact record. A frame that runs past the end of data is
// the torn tail (good < len(data)); a complete frame that fails its
// CRC with data behind it — or an impossible length prefix — is
// interior corruption.
func scan(data []byte) (recs [][]byte, good int64, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < 4 {
			return recs, int64(off), nil // torn length prefix
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n == 0 || n > maxRecord {
			return nil, 0, fmt.Errorf("%w: impossible record length %d at offset %d", ErrCorrupt, n, off)
		}
		if len(data)-off < n+frameOverhead {
			return recs, int64(off), nil // torn payload or footer
		}
		payload := data[off+4 : off+4+n]
		sum := binary.BigEndian.Uint32(data[off+4+n:])
		if store.Checksum(payload) != sum {
			if off+n+frameOverhead == len(data) {
				return recs, int64(off), nil // damaged final record: tail
			}
			return nil, 0, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, off)
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += n + frameOverhead
	}
	return recs, int64(off), nil
}

// frame returns rec framed for the log: length prefix, payload,
// CRC-32C footer.
func frame(rec []byte) []byte {
	buf := make([]byte, len(rec)+frameOverhead)
	binary.BigEndian.PutUint32(buf, uint32(len(rec)))
	copy(buf[4:], rec)
	binary.BigEndian.PutUint32(buf[4+len(rec):], store.Checksum(rec))
	return buf
}

// Append durably appends one record: the framed bytes are written and
// fsynced before Append returns, so an acknowledged record survives a
// crash (a torn write of the record itself is discarded as the tail on
// the next Open). Empty or oversized records are refused.
func (l *Log) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("wal: empty record")
	}
	if len(rec) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(rec), maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	if _, err := l.f.Write(frame(rec)); err != nil {
		return err
	}
	if !l.nosync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.size += int64(len(rec) + frameOverhead)
	l.records++
	return nil
}

// Rewrite atomically replaces the log's contents with recs — the
// rotation/compaction primitive. The snapshot is written to a temp
// file in the same directory, fsynced, and renamed over the log, so a
// crash at any point leaves either the old log or the new one intact,
// never a mix. Appends block for the duration and land in the new
// file afterwards.
func (l *Log) Rewrite(recs [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log closed")
	}
	dir, base := filepath.Split(l.path)
	tmp, err := os.CreateTemp(dir, base+".rewrite-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var size int64
	for _, rec := range recs {
		if len(rec) == 0 || len(rec) > maxRecord {
			tmp.Close()
			return fmt.Errorf("wal: rewrite record of %d bytes out of bounds", len(rec))
		}
		if _, err := tmp.Write(frame(rec)); err != nil {
			tmp.Close()
			return err
		}
		size += int64(len(rec) + frameOverhead)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f.Close()
	l.f = f
	l.size = size
	l.records = len(recs)
	l.compactions++
	return nil
}

// SetNoSync disables the per-append fsync — for tests and fuzzing
// only, where throughput matters and durability does not.
func (l *Log) SetNoSync(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nosync = on
}

// Size returns the log's current size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records currently in the log
// (replayed at Open plus appended since, minus rewrites).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// TailDiscarded reports the torn tail Open truncated away, if any.
func (l *Log) TailDiscarded() Tail {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// Compactions returns the number of Rewrite calls that completed.
func (l *Log) Compactions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactions
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log file. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
