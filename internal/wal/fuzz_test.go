package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen throws arbitrary bytes at the log parser. Properties: Open
// never panics; when it succeeds, the replayed records re-frame to a
// clean prefix of the input (nothing is invented), and reopening the
// truncated file replays identically with no further tail discard
// (recovery is idempotent).
func FuzzOpen(f *testing.F) {
	// Seeds: empty, a clean two-record log, a torn tail, a corrupt
	// interior payload, and a zero length prefix.
	f.Add([]byte{})
	var clean bytes.Buffer
	clean.Write(frame([]byte(`{"op":"submit","job":"j-000001"}`)))
	clean.Write(frame([]byte(`{"op":"cell","job":"j-000001","cell":0}`)))
	f.Add(clean.Bytes())
	f.Add(clean.Bytes()[:clean.Len()-3])
	interior := append([]byte(nil), clean.Bytes()...)
	interior[6] ^= 0x20
	f.Add(interior)
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, recs, tail, err := Open(path)
		if err != nil {
			return // loud failure is a valid outcome; no file handle leaked
		}
		// Replayed records must re-frame to exactly the retained prefix.
		var reframed bytes.Buffer
		for _, r := range recs {
			reframed.Write(frame(r))
		}
		kept := int64(len(data)) - tail.Bytes
		if int64(reframed.Len()) != kept {
			t.Fatalf("reframed %d bytes, file kept %d", reframed.Len(), kept)
		}
		if !bytes.Equal(reframed.Bytes(), data[:kept]) {
			t.Fatal("replayed records do not match the retained prefix")
		}
		l.Close()

		l2, recs2, tail2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after recovery failed: %v", err)
		}
		defer l2.Close()
		if tail2.Records != 0 || tail2.Bytes != 0 {
			t.Fatalf("recovery not idempotent: second open discarded %+v", tail2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("second open replayed %d records, first %d", len(recs2), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("record %d differs across reopens", i)
			}
		}
	})
}
