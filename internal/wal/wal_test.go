package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Log, [][]byte, Tail) {
	t.Helper()
	l, recs, tail, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	l.SetNoSync(true)
	t.Cleanup(func() { l.Close() })
	return l, recs, tail
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, recs, tail := openT(t, path)
	if len(recs) != 0 || tail.Records != 0 {
		t.Fatalf("fresh log: recs=%d tail=%+v", len(recs), tail)
	}
	want := [][]byte{[]byte(`{"op":"a"}`), []byte(`{"op":"b","n":2}`), {0x00, 0xff, 0x10}}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Records() != 3 {
		t.Fatalf("Records = %d, want 3", l.Records())
	}
	l.Close()

	_, got, tail := openT(t, path)
	if tail.Records != 0 {
		t.Fatalf("clean log reported a torn tail: %+v", tail)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// write builds a valid log file of the given payloads directly.
func write(t *testing.T, path string, recs ...[]byte) {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		buf.Write(frame(r))
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailDiscarded(t *testing.T) {
	full := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var clean bytes.Buffer
	for _, r := range full {
		clean.Write(frame(r))
	}
	lastLen := len(frame(full[2]))
	// Every possible truncation inside the final record — mid length
	// prefix, mid payload, mid footer — must recover the first two
	// records and discard the tail.
	for cut := 1; cut < lastLen; cut++ {
		path := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(path, clean.Bytes()[:clean.Len()-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, tail := openT(t, path)
		if len(recs) != 2 || !bytes.Equal(recs[0], full[0]) || !bytes.Equal(recs[1], full[1]) {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		if tail.Records != 1 || tail.Bytes != int64(lastLen-cut) {
			t.Fatalf("cut %d: tail = %+v, want {1 %d}", cut, tail, lastLen-cut)
		}
		// The truncation is physical: appending after recovery yields a
		// clean log.
		if err := l.Append([]byte("delta")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		_, recs2, tail2 := openT(t, path)
		if len(recs2) != 3 || tail2.Records != 0 {
			t.Fatalf("cut %d: after append recs=%d tail=%+v", cut, len(recs2), tail2)
		}
	}
}

func TestWALDamagedFinalRecordIsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	write(t, path, []byte("alpha"), []byte("beta"))
	// Flip a payload byte of the final record: a complete frame whose
	// CRC fails with nothing behind it is indistinguishable from a torn
	// append and is discarded as the tail.
	data, _ := os.ReadFile(path)
	data[len(data)-6] ^= 0x40
	os.WriteFile(path, data, 0o644)
	_, recs, tail := openT(t, path)
	if len(recs) != 1 || !bytes.Equal(recs[0], []byte("alpha")) {
		t.Fatalf("recovered %d records", len(recs))
	}
	if tail.Records != 1 {
		t.Fatalf("tail = %+v", tail)
	}
}

func TestWALInteriorCorruptionFailsLoudly(t *testing.T) {
	t.Run("crc", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j.wal")
		write(t, path, []byte("alpha"), []byte("beta"), []byte("gamma"))
		data, _ := os.ReadFile(path)
		data[5] ^= 0x01 // first byte of record 0's payload
		os.WriteFile(path, data, 0o644)
		_, _, _, err := Open(path)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
		// Nothing was modified: the evidence is preserved.
		after, _ := os.ReadFile(path)
		if !bytes.Equal(after, data) {
			t.Fatal("Open modified a corrupt log")
		}
	})
	t.Run("length", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j.wal")
		write(t, path, []byte("alpha"), []byte("beta"))
		data, _ := os.ReadFile(path)
		binary.BigEndian.PutUint32(data, uint32(maxRecord+1))
		os.WriteFile(path, data, 0o644)
		if _, _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("zero-length", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j.wal")
		write(t, path, []byte("alpha"))
		data, _ := os.ReadFile(path)
		binary.BigEndian.PutUint32(data, 0)
		os.WriteFile(path, data, 0o644)
		if _, _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
}

func TestWALRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, _ := openT(t, path)
	for i := 0; i < 100; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()
	snap := [][]byte{[]byte("live-1"), []byte("live-2")}
	if err := l.Rewrite(snap); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if l.Records() != 2 || l.Size() >= before || l.Compactions() != 1 {
		t.Fatalf("after rewrite: records=%d size=%d (before %d) compactions=%d",
			l.Records(), l.Size(), before, l.Compactions())
	}
	// Appends land in the new file.
	if err := l.Append([]byte("live-3")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, tail := openT(t, path)
	if tail.Records != 0 || len(recs) != 3 {
		t.Fatalf("reopen after rewrite: recs=%d tail=%+v", len(recs), tail)
	}
	if !bytes.Equal(recs[0], snap[0]) || !bytes.Equal(recs[2], []byte("live-3")) {
		t.Fatalf("rewrite contents wrong: %q", recs)
	}
	// No leftover temp files.
	matches, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.rewrite-*"))
	if len(matches) != 0 {
		t.Fatalf("leftover rewrite temp files: %v", matches)
	}
}

func TestWALAppendBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, _ := openT(t, path)
	if err := l.Append(nil); err == nil {
		t.Fatal("empty append accepted")
	}
	if err := l.Append(make([]byte, maxRecord+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
	l.Close()
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close accepted")
	}
}

// TestWALScanPrefixProperty is the recovery invariant as a plain test:
// for any truncation point of a valid log, scan yields a prefix of the
// written records and never an error.
func TestWALScanPrefixProperty(t *testing.T) {
	want := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), []byte("dddd")}
	var buf bytes.Buffer
	for _, r := range want {
		buf.Write(frame(r))
	}
	data := buf.Bytes()
	for cut := 0; cut <= len(data); cut++ {
		recs, good, err := scan(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: scan error %v", cut, err)
		}
		if good > int64(cut) {
			t.Fatalf("cut %d: good offset %d past end", cut, good)
		}
		for i, r := range recs {
			if !bytes.Equal(r, want[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, r, want[i])
			}
		}
	}
}
