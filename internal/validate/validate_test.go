package validate

import (
	"errors"
	"testing"
)

// ok is a Cell that passes every check.
func ok() Cell {
	return Cell{
		Cores:            16,
		HistEntries:      8192,
		ElimProb:         0.5,
		WarmupRecords:    1000,
		MeasureRecords:   1000,
		SamplePeriod:     10,
		SampleInterval:   50,
		SampleWarmup:     0.25,
		SampleConfidence: 0.95,
	}
}

// TestCellCheck enumerates every rejection of the shared constraint
// table, with the canonical field name each one must carry. The CLI
// (shift.Options), the service (shiftd cells and figure queries), and
// the spec layer all funnel through this table; their own tests cover
// only the per-front-end field-name rendering.
func TestCellCheck(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Cell)
		field  string
	}{
		{"cores low", func(c *Cell) { c.Cores = 0 }, "cores"},
		{"cores high", func(c *Cell) { c.Cores = 17 }, "cores"},
		{"cores negative inherit", func(c *Cell) { c.Cores = -1; c.CoresZeroInherits = true }, "cores"},
		{"hist entries", func(c *Cell) { c.HistEntries = -1 }, "hist_entries"},
		{"elim low", func(c *Cell) { c.ElimProb = -0.1 }, "elim_prob"},
		{"elim high", func(c *Cell) { c.ElimProb = 1.1 }, "elim_prob"},
		{"warmup", func(c *Cell) { c.WarmupRecords = -1 }, "warmup_records"},
		{"measure", func(c *Cell) { c.MeasureRecords = -1 }, "measure_records"},
		{"sample period", func(c *Cell) { c.SamplePeriod = -1 }, "sample_period"},
		{"sample interval", func(c *Cell) { c.SampleInterval = -1 }, "sample_interval"},
		{"sample warmup low", func(c *Cell) { c.SampleWarmup = -0.1 }, "sample_warmup"},
		{"sample warmup high", func(c *Cell) { c.SampleWarmup = 1 }, "sample_warmup"},
		{"sample confidence", func(c *Cell) { c.SampleConfidence = 0.8 }, "sample_confidence"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := ok()
			tc.mutate(&c)
			fe := c.Check()
			if fe == nil {
				t.Fatal("accepted")
			}
			if fe.Field != tc.field {
				t.Errorf("field = %q (%v), want %q", fe.Field, fe, tc.field)
			}
			if fe.Msg == "" {
				t.Error("empty message")
			}
		})
	}
}

func TestCellCheckAccepts(t *testing.T) {
	if fe := ok().Check(); fe != nil {
		t.Errorf("valid cell rejected: %v", fe)
	}
	// The zero value is a valid "all defaults" wire cell.
	if fe := (Cell{CoresZeroInherits: true}).Check(); fe != nil {
		t.Errorf("zero wire cell rejected: %v", fe)
	}
	// Every accepted confidence level.
	for _, conf := range []float64{0, 0.90, 0.95, 0.99} {
		c := ok()
		c.SampleConfidence = conf
		if fe := c.Check(); fe != nil {
			t.Errorf("confidence %g rejected: %v", conf, fe)
		}
	}
}

func TestSampledWindow(t *testing.T) {
	// Exact simulation always fits.
	if fe := SampledWindow(0, 0, 10); fe != nil {
		t.Errorf("period 0 rejected: %v", fe)
	}
	if fe := SampledWindow(1, 1000, 1); fe != nil {
		t.Errorf("period 1 rejected: %v", fe)
	}
	// Two chunks fit exactly.
	if fe := SampledWindow(10, 50, 1000); fe != nil {
		t.Errorf("exact fit rejected: %v", fe)
	}
	// One record short of two chunks.
	fe := SampledWindow(10, 50, 999)
	if fe == nil {
		t.Fatal("undersized window accepted")
	}
	if fe.Field != "sample_period" {
		t.Errorf("field = %q, want sample_period", fe.Field)
	}
	// The 500-record default interval applies when interval is 0.
	if fe := SampledWindow(10, 0, 9999); fe == nil {
		t.Error("undersized window with default interval accepted")
	}
	if fe := SampledWindow(10, 0, 10000); fe != nil {
		t.Errorf("fitting window with default interval rejected: %v", fe)
	}
}

func TestFieldError(t *testing.T) {
	fe := Fieldf("cores", "must be in [%d,%d], got %d", 1, 16, 20)
	if fe.Error() != "cores: must be in [1,16], got 20" {
		t.Errorf("Error() = %q", fe.Error())
	}
	var target *FieldError
	if !errors.As(error(fe), &target) || target.Field != "cores" {
		t.Error("errors.As failed to recover the field")
	}
}
