// Package validate centralizes the request-range rules shared by every
// front end of the simulator: the CLI option normalization (shift.Options),
// the shiftd wire-cell and figure-query validation, and the workload spec
// layer (internal/spec). Each front end previously spelled these checks
// out by hand, which let the three drift; they now share one table of
// constraints and differ only in how they render the offending field's
// name (wire cells quote JSON field names, figure queries use query
// parameter names).
package validate

import "fmt"

// FieldError is a validation failure naming the offending field. Field
// is the canonical (JSON wire) name — "cores", "sample_warmup", ... —
// and Msg the human-readable constraint. Front ends unwrap it to render
// the field in their own naming convention; the default rendering is
// "field: msg".
type FieldError struct {
	// Field is the canonical wire name of the offending field.
	Field string
	// Msg states the violated constraint, e.g. "must be in [1,16], got 20".
	Msg string
}

// Error implements error.
func (e *FieldError) Error() string { return e.Field + ": " + e.Msg }

// Fieldf builds a FieldError with a formatted message.
func Fieldf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Cell bundles the range-checked knobs shared by every front end. Field
// names follow the wire (JSON) spelling of shiftd's cellSpec, which is
// also the spelling the spec layer and the table-driven rejection test
// use.
type Cell struct {
	// Cores is the CMP size. Zero is accepted when CoresZeroInherits is
	// set (wire cells inherit the server's base); otherwise it is
	// range-checked like any other value.
	Cores int
	// CoresZeroInherits marks Cores==0 as "inherit the default" rather
	// than a value to range-check.
	CoresZeroInherits bool
	// HistEntries is the history-capacity override (0 = design default).
	HistEntries int
	// ElimProb is the Figure 1 miss-elimination probability.
	ElimProb float64
	// WarmupRecords and MeasureRecords are the per-core window lengths.
	WarmupRecords, MeasureRecords int64
	// SamplePeriod and SampleInterval are the interval-sampling policy
	// knobs (0 = default/disabled).
	SamplePeriod, SampleInterval int64
	// SampleWarmup is the detailed-warmup fraction of each sampled
	// interval (must be in [0,1)).
	SampleWarmup float64
	// SampleConfidence is the error-bound confidence level (0, 0.90,
	// 0.95, or 0.99).
	SampleConfidence float64
}

// Check returns the first violated constraint as a *FieldError, or nil.
// It is pure range validation: cross-field rules that depend on
// resolved defaults (the sampled-window fit) live in SampledWindow so
// callers can apply them after base-option inheritance.
func (c Cell) Check() *FieldError {
	if (c.Cores != 0 || !c.CoresZeroInherits) && (c.Cores < 1 || c.Cores > 16) {
		return Fieldf("cores", "must be in [1,16], got %d", c.Cores)
	}
	if c.HistEntries < 0 {
		return Fieldf("hist_entries", "must be >= 0, got %d", c.HistEntries)
	}
	if c.ElimProb < 0 || c.ElimProb > 1 {
		return Fieldf("elim_prob", "must be in [0,1], got %g", c.ElimProb)
	}
	if c.WarmupRecords < 0 {
		return Fieldf("warmup_records", "must be >= 0, got %d", c.WarmupRecords)
	}
	if c.MeasureRecords < 0 {
		return Fieldf("measure_records", "must be >= 0, got %d", c.MeasureRecords)
	}
	if c.SamplePeriod < 0 {
		return Fieldf("sample_period", "must be >= 0, got %d", c.SamplePeriod)
	}
	if c.SampleInterval < 0 {
		return Fieldf("sample_interval", "must be >= 0, got %d", c.SampleInterval)
	}
	if c.SampleWarmup < 0 || c.SampleWarmup >= 1 {
		return Fieldf("sample_warmup", "must be in [0,1), got %g", c.SampleWarmup)
	}
	switch c.SampleConfidence {
	case 0, 0.90, 0.95, 0.99:
	default:
		return Fieldf("sample_confidence", "must be one of 0.90, 0.95, 0.99, got %g", c.SampleConfidence)
	}
	return nil
}

// SampledWindow rejects a sampling policy whose chunk (period x
// interval) does not fit at least twice in the measurement window — the
// simulator needs two measured intervals for a standard error. period
// <= 1 is exact simulation and always fits. The result names
// "sample_period"; callers rendering query parameters map the name.
func SampledWindow(period, interval, measure int64) *FieldError {
	if period <= 1 {
		return nil
	}
	if interval == 0 {
		interval = 500
	}
	if chunk := period * interval; measure < 2*chunk {
		return Fieldf("sample_period",
			"measurement window %d fits fewer than two sampling chunks (chunk is %d records: period %d x interval %d)",
			measure, chunk, period, interval)
	}
	return nil
}
