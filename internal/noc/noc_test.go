package noc

import (
	"testing"
	"testing/quick"

	"shift/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Width: 0, Height: 4, HopCycles: 3},
		{Width: 4, Height: -1, HopCycles: 3},
		{Width: 4, Height: 4, HopCycles: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if DefaultConfig().Tiles() != 16 {
		t.Errorf("Tiles = %d, want 16", DefaultConfig().Tiles())
	}
}

func TestHops(t *testing.T) {
	m := MustNew(DefaultConfig())
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},  // one row down
		{0, 5, 2},  // diagonal neighbor
		{0, 15, 6}, // corner to corner: 3+3
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := m.Hops(c.b, c.a); got != c.want {
			t.Errorf("Hops not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestLatencyAndRoundTrip(t *testing.T) {
	m := MustNew(DefaultConfig())
	if got := m.Latency(0, 15); got != 18 { // 6 hops * 3 cycles
		t.Errorf("Latency = %d, want 18", got)
	}
	if got := m.RoundTrip(0, 15); got != 36 {
		t.Errorf("RoundTrip = %d, want 36", got)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	m := MustNew(DefaultConfig())
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%16), int(b%16), int(c%16)
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankForBlockCoversAllBanks(t *testing.T) {
	m := MustNew(DefaultConfig())
	seen := make(map[int]bool)
	for b := 0; b < 1000; b++ {
		bank := m.BankForBlock(trace.BlockAddr(b))
		if bank < 0 || bank >= 16 {
			t.Fatalf("bank %d out of range", bank)
		}
		seen[bank] = true
	}
	if len(seen) != 16 {
		t.Errorf("only %d banks used", len(seen))
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := MustNew(DefaultConfig())
	m.Send(DemandInstr, 0, 15)
	m.Send(DemandInstr, 0, 1)
	m.Send(HistRead, 2, 3)
	m.Account(Discard, 0)
	if m.Traffic(DemandInstr) != 2 || m.Traffic(HistRead) != 1 || m.Traffic(Discard) != 1 {
		t.Errorf("traffic: %d %d %d", m.Traffic(DemandInstr), m.Traffic(HistRead), m.Traffic(Discard))
	}
	if m.TotalTraffic() != 4 {
		t.Errorf("TotalTraffic = %d, want 4", m.TotalTraffic())
	}
	if m.TotalTraffic(DemandInstr, HistRead) != 3 {
		t.Errorf("class subset total = %d, want 3", m.TotalTraffic(DemandInstr, HistRead))
	}
	if m.HopCount(DemandInstr) != 7 {
		t.Errorf("HopCount = %d, want 7", m.HopCount(DemandInstr))
	}
	if m.AvgHops() <= 0 {
		t.Error("AvgHops should be positive")
	}
	m.ResetTraffic()
	if m.TotalTraffic() != 0 || m.AvgHops() != 0 {
		t.Error("ResetTraffic did not zero counters")
	}
}

func TestMsgClassString(t *testing.T) {
	names := map[MsgClass]string{
		DemandInstr: "DemandInstr", DemandData: "DemandData",
		PrefetchFill: "PrefetchFill", HistRead: "HistRead",
		HistWrite: "HistWrite", IndexUpdate: "IndexUpdate", Discard: "Discard",
	}
	for cls, want := range names {
		if cls.String() != want {
			t.Errorf("%d.String() = %q, want %q", cls, cls.String(), want)
		}
	}
	if MsgClass(99).String() == "" {
		t.Error("unknown class should still format")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{})
}
