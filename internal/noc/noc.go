// Package noc models the on-chip interconnect of the simulated CMP: the
// 4x4 2D mesh with 3 cycles/hop of Table I. It provides latency estimates
// for core↔LLC-bank round trips and per-message-class traffic accounting,
// which feeds both the Figure 9 LLC-traffic study and the Section 5.7
// power analysis.
//
// The paper notes that LLC bandwidth is ample (utilization well under 10%),
// so the mesh is modelled contention-free: latency is hop count times
// per-hop delay, and traffic is accounted, not throttled.
package noc

import (
	"fmt"

	"shift/internal/trace"
)

// MsgClass labels the traffic classes distinguished in the paper's LLC
// overhead analysis (Section 5.4).
type MsgClass uint8

const (
	// DemandInstr is a demand instruction-block request + fill.
	DemandInstr MsgClass = iota
	// DemandData is a demand data-block request + fill.
	DemandData
	// PrefetchFill is a prefetch request + instruction block fill.
	PrefetchFill
	// HistRead is a history-buffer block read (the paper's "LogRead").
	HistRead
	// HistWrite is a history-buffer block write (the paper's "LogWrite").
	HistWrite
	// IndexUpdate is an index-pointer update (LLC tag array only).
	IndexUpdate
	// Discard is the fill of a mispredicted block that is evicted before
	// use (counted when the discard is detected).
	Discard
	msgClassCount
)

var msgClassNames = [...]string{
	"DemandInstr", "DemandData", "PrefetchFill",
	"HistRead", "HistWrite", "IndexUpdate", "Discard",
}

// String names the class.
func (m MsgClass) String() string {
	if int(m) < len(msgClassNames) {
		return msgClassNames[m]
	}
	return fmt.Sprintf("MsgClass(%d)", uint8(m))
}

// NumClasses is the number of message classes.
const NumClasses = int(msgClassCount)

// Config sizes the mesh.
type Config struct {
	// Width and Height are the mesh dimensions (4x4 in Table I).
	Width, Height int
	// HopCycles is the per-hop latency (3 in Table I).
	HopCycles int
}

// DefaultConfig is the Table I mesh.
func DefaultConfig() Config { return Config{Width: 4, Height: 4, HopCycles: 3} }

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("noc: bad mesh %dx%d", c.Width, c.Height)
	}
	if c.HopCycles < 0 {
		return fmt.Errorf("noc: negative hop latency %d", c.HopCycles)
	}
	return nil
}

// Tiles returns the number of mesh tiles.
func (c Config) Tiles() int { return c.Width * c.Height }

// Mesh is the interconnect model plus its traffic counters.
type Mesh struct {
	cfg Config
	// hopTable[a*tiles+b] caches the Manhattan distance between every
	// tile pair (256 entries for the 4x4 mesh), keeping the per-message
	// routing math off the simulator hot path.
	hopTable []int8
	tiles    int
	// bankMask enables mask-based bank interleaving when the tile count
	// is a power of two (-1 otherwise, falling back to modulo).
	bankMask int64
	// traffic[class] counts messages; hops[class] accumulates hop counts
	// (for energy).
	traffic [NumClasses]int64
	hops    [NumClasses]int64
}

// New builds a mesh.
func New(cfg Config) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{cfg: cfg, tiles: cfg.Tiles(), bankMask: -1}
	if m.tiles&(m.tiles-1) == 0 {
		m.bankMask = int64(m.tiles - 1)
	}
	m.hopTable = make([]int8, m.tiles*m.tiles)
	for a := 0; a < m.tiles; a++ {
		ax, ay := m.coord(a)
		for b := 0; b < m.tiles; b++ {
			bx, by := m.coord(b)
			m.hopTable[a*m.tiles+b] = int8(abs(ax-bx) + abs(ay-by))
		}
	}
	return m, nil
}

// MustNew panics on config errors.
func MustNew(cfg Config) *Mesh {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the mesh geometry.
func (m *Mesh) Config() Config { return m.cfg }

// coord returns the (x, y) position of tile t.
func (m *Mesh) coord(t int) (x, y int) { return t % m.cfg.Width, t / m.cfg.Width }

// Hops returns the Manhattan hop distance between tiles a and b.
func (m *Mesh) Hops(a, b int) int {
	return int(m.hopTable[a*m.tiles+b])
}

// Latency returns the one-way latency in cycles between tiles a and b.
func (m *Mesh) Latency(a, b int) int64 { return int64(m.Hops(a, b) * m.cfg.HopCycles) }

// RoundTrip returns the request+response latency between tiles a and b.
func (m *Mesh) RoundTrip(a, b int) int64 { return 2 * m.Latency(a, b) }

// BankForBlock statically interleaves block addresses across LLC banks
// (one bank per tile, as in the paper's tiled design).
func (m *Mesh) BankForBlock(b trace.BlockAddr) int {
	if m.bankMask >= 0 {
		return int(int64(b) & m.bankMask)
	}
	return int(uint64(b) % uint64(m.tiles))
}

// Send accounts one message of class cls travelling from tile a to tile b
// and returns its latency.
func (m *Mesh) Send(cls MsgClass, a, b int) int64 {
	m.traffic[cls]++
	m.hops[cls] += int64(m.Hops(a, b))
	return m.Latency(a, b)
}

// Account records a message without computing a route (used for events
// whose endpoints are implicit, e.g. discard detection inside a bank).
func (m *Mesh) Account(cls MsgClass, hops int) {
	m.traffic[cls]++
	m.hops[cls] += int64(hops)
}

// AccountN records n messages of one class carrying `hops` hops in
// aggregate. Both counters are plain integer sums, so one AccountN is
// bit-identical to n Account calls — the batched runner uses it to
// replay the lead member's design-independent data traffic into the
// followers without re-drawing it.
func (m *Mesh) AccountN(cls MsgClass, n, hops int64) {
	m.traffic[cls] += n
	m.hops[cls] += hops
}

// Traffic returns the message count for a class.
func (m *Mesh) Traffic(cls MsgClass) int64 { return m.traffic[cls] }

// TotalTraffic sums messages over the given classes (all if none given).
func (m *Mesh) TotalTraffic(classes ...MsgClass) int64 {
	if len(classes) == 0 {
		var sum int64
		for _, v := range m.traffic {
			sum += v
		}
		return sum
	}
	var sum int64
	for _, c := range classes {
		sum += m.traffic[c]
	}
	return sum
}

// HopCount returns the accumulated hop count for a class (energy proxy).
func (m *Mesh) HopCount(cls MsgClass) int64 { return m.hops[cls] }

// ResetTraffic zeroes the counters (e.g. after warmup).
func (m *Mesh) ResetTraffic() {
	m.traffic = [NumClasses]int64{}
	m.hops = [NumClasses]int64{}
}

// AvgHops returns the mean hops per message over all classes, or 0.
func (m *Mesh) AvgHops() float64 {
	var msgs, hops int64
	for i := range m.traffic {
		msgs += m.traffic[i]
		hops += m.hops[i]
	}
	if msgs == 0 {
		return 0
	}
	return float64(hops) / float64(msgs)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
