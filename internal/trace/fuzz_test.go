package trace

import (
	"bytes"
	"io"
	"testing"
)

// encodeSeed builds a valid trace byte stream for the fuzz corpus.
func encodeSeed(t *testing.F, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := enc.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecoder feeds arbitrary byte streams to the trace decoder. The
// contract under fuzzing is purely defensive: malformed input must
// surface as an error from NewDecoder or Next, never as a panic, and
// every record returned without error must validate.
func FuzzDecoder(f *testing.F) {
	valid := encodeSeed(f, []Record{
		{Block: 0x100, Instrs: 7, Kind: KindSeq},
		{Block: 0x101, Instrs: 3, Kind: KindCall},
		{Block: 0x400, Instrs: 16, Kind: KindReturn},
		{Block: 0x101, Instrs: 1, Kind: KindTrap},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                                       // truncated final record
	f.Add(valid[:5])                                                  // header only
	f.Add([]byte{})                                                   // empty stream
	f.Add([]byte("SHFT"))                                             // magic without version
	f.Add([]byte("SHFT\x02\x00\x01\x00"))                             // unsupported version
	f.Add([]byte("JUNKJUNKJUNK"))                                     // wrong magic
	f.Add([]byte("SHFT\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // huge delta
	f.Add([]byte("SHFT\x01\x00\x00\x00"))                             // zero-instruction record

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			rec, err := dec.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("decoder returned invalid record %+v: %v", rec, verr)
			}
		}
	})
}

// TestDecoderMalformedInputs pins the defensive behaviour down outside
// the fuzzer: each malformed stream returns a typed error, no panic.
func TestDecoderMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("SH")},
		{"bad magic", []byte("NOPE\x01")},
		{"bad version", []byte("SHFT\x09")},
		{"truncated record", []byte("SHFT\x01\x80")},
		{"zero instrs", []byte("SHFT\x01\x00\x00\x00")},
		{"bad kind", []byte("SHFT\x01\x02\x01\x63")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dec, err := NewDecoder(bytes.NewReader(c.data))
			if err != nil {
				return
			}
			for {
				_, err := dec.Next()
				if err == io.EOF {
					t.Fatal("malformed stream decoded cleanly")
				}
				if err != nil {
					return
				}
			}
		})
	}
}
