// Package trace defines the retire-order instruction fetch trace records
// exchanged between the synthetic workload generators, the prefetchers, and
// the timing simulator, together with a compact binary codec for storing
// traces on disk.
//
// The unit of interest for instruction prefetching is the 64-byte
// instruction cache block (the paper's spatial-region machinery operates on
// block addresses). A Record therefore describes one visit to an instruction
// block in retire order: the block address, how many instructions retired
// during the visit, and the control-flow event that ended the visit.
package trace

import (
	"errors"
	"fmt"
	"io"
)

// Physical address geometry. The paper assumes a 40-bit physical address
// space and 64-byte cache blocks (Section 4.2, "Hardware cost").
const (
	// BlockBytes is the size of an instruction cache block.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
	// AddrBits is the width of a physical byte address.
	AddrBits = 40
	// BlockAddrBits is the width of a physical block address (40-6=34 bits,
	// matching the 34-bit trigger addresses in the paper's storage math).
	BlockAddrBits = AddrBits - BlockShift
	// MaxBlockAddr is the largest representable block address.
	MaxBlockAddr BlockAddr = (1 << BlockAddrBits) - 1
)

// Addr is a physical byte address.
type Addr uint64

// BlockAddr is a physical address at cache-block granularity (Addr >> 6).
type BlockAddr uint64

// Block converts a byte address to its block address.
func (a Addr) Block() BlockAddr { return BlockAddr(a >> BlockShift) }

// Addr returns the byte address of the first byte in the block.
func (b BlockAddr) Addr() Addr { return Addr(b << BlockShift) }

// String formats the block address in hex at byte granularity.
func (b BlockAddr) String() string { return fmt.Sprintf("0x%x", uint64(b)<<BlockShift) }

// Kind describes the control-flow event that terminated a block visit.
// It lets consumers distinguish sequential fall-through (which a next-line
// prefetcher can cover) from discontinuities (which it cannot).
type Kind uint8

const (
	// KindSeq means execution fell through to the sequentially next block.
	KindSeq Kind = iota
	// KindBranch means a taken branch redirected fetch inside the same
	// routine (target may be any block).
	KindBranch
	// KindCall means a function call redirected fetch to a callee.
	KindCall
	// KindReturn means a return redirected fetch back to a caller.
	KindReturn
	// KindTrap means an OS trap/interrupt/context switch redirected fetch
	// into system code (the paper's "spontaneous events": scheduler, TLB
	// miss handlers, interrupts).
	KindTrap
	kindCount
)

var kindNames = [...]string{"seq", "branch", "call", "return", "trap"}

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < kindCount }

// Record is one retire-order visit to an instruction cache block.
type Record struct {
	// Block is the instruction block address being fetched from.
	Block BlockAddr
	// Instrs is the number of instructions retired during this visit
	// (at least 1; a 64-byte block holds at most 16 4-byte instructions,
	// but a visit may re-execute a loop body within a block).
	Instrs uint16
	// Kind is the control-flow event that ended the visit.
	Kind Kind
}

// Validate checks internal consistency of the record.
func (r Record) Validate() error {
	if r.Block > MaxBlockAddr {
		return fmt.Errorf("trace: block address %#x exceeds %d bits", uint64(r.Block), BlockAddrBits)
	}
	if r.Instrs == 0 {
		return errors.New("trace: record with zero retired instructions")
	}
	if !r.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", r.Kind)
	}
	return nil
}

// Reader yields successive trace records. Implementations must return
// io.EOF after the final record.
type Reader interface {
	// Next returns the next record, or io.EOF when the trace is exhausted.
	Next() (Record, error)
}

// Writer consumes trace records.
type Writer interface {
	Write(Record) error
}

// SliceReader adapts an in-memory record slice to the Reader interface.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewSliceReader returns a Reader over recs. The slice is not copied.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (s *SliceReader) Next() (Record, error) {
	if s.pos >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

// Reset rewinds the reader to the beginning of the slice.
func (s *SliceReader) Reset() { s.pos = 0 }

// Supply implements Supplier: the records remaining before EOF.
func (s *SliceReader) Supply() int64 { return int64(len(s.recs) - s.pos) }

// Len returns the total number of records in the underlying slice.
func (s *SliceReader) Len() int { return len(s.recs) }

// Collect drains r into a slice, up to max records (max<=0 means unlimited).
func Collect(r Reader, max int) ([]Record, error) {
	var out []Record
	for max <= 0 || len(out) < max {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Supplier is implemented by readers that know how many records they
// can still produce. Consumers with a fixed record budget (the
// simulator's warmup+measure window) use it to reject an undersized
// stream up front instead of silently measuring a shorter window.
// Unbounded readers (the synthetic workload generators) do not
// implement it.
type Supplier interface {
	// Supply returns the number of records the reader can still
	// deterministically produce.
	Supply() int64
}

// Limit wraps r so that at most n records are produced.
func Limit(r Reader, n int64) Reader { return &limitReader{r: r, n: n} }

type limitReader struct {
	r Reader
	n int64
}

func (l *limitReader) Next() (Record, error) {
	if l.n <= 0 {
		return Record{}, io.EOF
	}
	l.n--
	return l.r.Next()
}

// Supply implements Supplier: the remaining limit, clamped by the
// underlying reader's own supply when it declares one.
func (l *limitReader) Supply() int64 {
	if s, ok := l.r.(Supplier); ok {
		if under := s.Supply(); under < l.n {
			return under
		}
	}
	return l.n
}

// Stats summarizes a trace: record/instruction counts, unique block
// footprint, and the control-flow kind mix. It is used by cmd/tracegen and
// by workload calibration tests.
type Stats struct {
	Records      int64
	Instructions int64
	UniqueBlocks int
	KindCounts   [int(kindCount)]int64
}

// FootprintBytes returns the instruction footprint touched by the trace.
func (s Stats) FootprintBytes() int64 { return int64(s.UniqueBlocks) * BlockBytes }

// SeqFraction returns the fraction of records that ended with sequential
// fall-through; this is the upper bound on next-line prefetcher coverage.
func (s Stats) SeqFraction() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.KindCounts[KindSeq]) / float64(s.Records)
}

// Measure drains r (up to max records; max<=0 unlimited) and returns stats.
func Measure(r Reader, max int64) (Stats, error) {
	var st Stats
	seen := make(map[BlockAddr]struct{})
	for max <= 0 || st.Records < max {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		st.Records++
		st.Instructions += int64(rec.Instrs)
		st.KindCounts[rec.Kind]++
		if _, ok := seen[rec.Block]; !ok {
			seen[rec.Block] = struct{}{}
		}
	}
	st.UniqueBlocks = len(seen)
	return st, nil
}
