package trace

import (
	"io"
	"testing"
	"testing/quick"
)

func TestAddrBlockRoundTrip(t *testing.T) {
	cases := []struct {
		addr Addr
		blk  BlockAddr
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{0x12345678, 0x48d159},
		{(1 << AddrBits) - 1, MaxBlockAddr},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.blk {
			t.Errorf("Addr(%#x).Block() = %#x, want %#x", uint64(c.addr), uint64(got), uint64(c.blk))
		}
	}
}

func TestBlockAddrAddr(t *testing.T) {
	if got := BlockAddr(3).Addr(); got != 192 {
		t.Errorf("BlockAddr(3).Addr() = %d, want 192", got)
	}
}

func TestBlockAddrString(t *testing.T) {
	if got := BlockAddr(1).String(); got != "0x40" {
		t.Errorf("String() = %q, want 0x40", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindSeq:    "seq",
		KindBranch: "branch",
		KindCall:   "call",
		KindReturn: "return",
		KindTrap:   "trap",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
		if !k.Valid() {
			t.Errorf("Kind(%d) should be valid", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) should be invalid")
	}
	if Kind(200).String() == "" {
		t.Error("invalid kind should still format")
	}
}

func TestRecordValidate(t *testing.T) {
	ok := Record{Block: 10, Instrs: 4, Kind: KindSeq}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := []Record{
		{Block: MaxBlockAddr + 1, Instrs: 1, Kind: KindSeq},
		{Block: 1, Instrs: 0, Kind: KindSeq},
		{Block: 1, Instrs: 1, Kind: Kind(99)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestSliceReader(t *testing.T) {
	recs := []Record{
		{Block: 1, Instrs: 4, Kind: KindSeq},
		{Block: 2, Instrs: 8, Kind: KindCall},
	}
	r := NewSliceReader(recs)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if got != recs[i] {
			t.Errorf("Next %d = %+v, want %+v", i, got, recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after end: err = %v, want io.EOF", err)
	}
	r.Reset()
	if got, err := r.Next(); err != nil || got != recs[0] {
		t.Errorf("after Reset: got %+v, %v", got, err)
	}
}

func TestCollectAndLimit(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = Record{Block: BlockAddr(i), Instrs: 1, Kind: KindSeq}
	}
	got, err := Collect(NewSliceReader(recs), 0)
	if err != nil || len(got) != 10 {
		t.Fatalf("Collect all: %d records, err=%v", len(got), err)
	}
	got, err = Collect(NewSliceReader(recs), 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("Collect limited: %d records, err=%v", len(got), err)
	}
	got, err = Collect(Limit(NewSliceReader(recs), 4), 0)
	if err != nil || len(got) != 4 {
		t.Fatalf("Limit: %d records, err=%v", len(got), err)
	}
}

func TestMeasure(t *testing.T) {
	recs := []Record{
		{Block: 1, Instrs: 4, Kind: KindSeq},
		{Block: 2, Instrs: 8, Kind: KindCall},
		{Block: 1, Instrs: 4, Kind: KindSeq},
	}
	st, err := Measure(NewSliceReader(recs), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || st.Instructions != 16 || st.UniqueBlocks != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.FootprintBytes() != 2*BlockBytes {
		t.Errorf("FootprintBytes = %d", st.FootprintBytes())
	}
	if got := st.SeqFraction(); got < 0.66 || got > 0.67 {
		t.Errorf("SeqFraction = %v, want ~2/3", got)
	}
	var empty Stats
	if empty.SeqFraction() != 0 {
		t.Error("empty SeqFraction should be 0")
	}
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if frac < 0.08 || frac > 0.12 {
			t.Errorf("bucket %d frequency %v outside [0.08,0.12]", i, frac)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 100, 1.0)
	const draws = 50000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate rank 50 heavily under s=1.
	if counts[0] < counts[50]*5 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != draws {
		t.Errorf("draws out of range: %d != %d", total, draws)
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) should panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1.0)
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(3)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("Bool(0.25) frequency %v", frac)
	}
}
