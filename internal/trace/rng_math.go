package trace

import "math"

// stdPow delegates to math.Pow; split into its own file so rng.go reads as a
// dependency-free PRNG.
func stdPow(base, exp float64) float64 { return math.Pow(base, exp) }
