package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace codec.
//
// Layout: a fixed header ("SHFT", version, record count placeholder of
// 0xFFFFFFFFFFFFFFFF when streaming), followed by one varint-encoded record
// per block visit. Block addresses are delta-encoded (zigzag) against the
// previous record's block address, because instruction fetch is dominated by
// short forward jumps; this typically compresses traces ~4x versus fixed
// 10-byte records.

const (
	codecMagic   = "SHFT"
	codecVersion = 1
)

var (
	// ErrBadMagic indicates the stream does not begin with a trace header.
	ErrBadMagic = errors.New("trace: bad magic (not a SHIFT trace)")
	// ErrBadVersion indicates an unsupported codec version.
	ErrBadVersion = errors.New("trace: unsupported trace version")
)

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder writes records in the binary trace format.
type Encoder struct {
	w     *bufio.Writer
	prev  BlockAddr
	count int64
	buf   [3 * binary.MaxVarintLen64]byte
}

// NewEncoder writes a trace header to w and returns an Encoder.
func NewEncoder(w io.Writer) (*Encoder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return nil, err
	}
	return &Encoder{w: bw}, nil
}

// Write implements Writer.
func (e *Encoder) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	n := binary.PutUvarint(e.buf[:], zigzag(int64(r.Block)-int64(e.prev)))
	n += binary.PutUvarint(e.buf[n:], uint64(r.Instrs))
	e.buf[n] = byte(r.Kind)
	n++
	if _, err := e.w.Write(e.buf[:n]); err != nil {
		return err
	}
	e.prev = r.Block
	e.count++
	return nil
}

// Count returns the number of records written so far.
func (e *Encoder) Count() int64 { return e.count }

// Flush flushes buffered output. It must be called before the underlying
// writer is closed.
func (e *Encoder) Flush() error { return e.w.Flush() }

// Decoder reads records in the binary trace format.
type Decoder struct {
	r    *bufio.Reader
	prev BlockAddr
}

// NewDecoder validates the trace header and returns a Decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic[:]) != codecMagic {
		return nil, ErrBadMagic
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	return &Decoder{r: br}, nil
}

// Next implements Reader. It returns io.EOF cleanly at end of stream and
// io.ErrUnexpectedEOF for a truncated record.
func (d *Decoder) Next() (Record, error) {
	delta, err := binary.ReadUvarint(d.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: decoding block delta: %w", err)
	}
	instrs, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Record{}, unexpected(err, "instr count")
	}
	kind, err := d.r.ReadByte()
	if err != nil {
		return Record{}, unexpected(err, "kind")
	}
	blk := BlockAddr(int64(d.prev) + unzigzag(delta))
	rec := Record{Block: blk, Instrs: uint16(instrs), Kind: Kind(kind)}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	d.prev = blk
	return rec, nil
}

func unexpected(err error, what string) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("trace: decoding %s: %w", what, err)
}
