package trace

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256**) used throughout the simulator. A dedicated implementation
// (rather than math/rand) guarantees that trace generation is reproducible
// across Go releases, which matters because the experiment outputs recorded
// in EXPERIMENTS.md must be regenerable bit-for-bit.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds an RNG. Distinct seeds give independent-looking streams; the
// seed is expanded with splitmix64 so that small seeds (0, 1, 2, ...) are
// safe.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0. For powers
// of two the modulo is a mask — the same bits, so identical draws —
// which keeps the integer divide off the simulator's per-record path
// (bank selection over 16 banks, two-way call-site picks).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: RNG.Intn with non-positive n")
	}
	if n&(n-1) == 0 {
		return int(r.Uint64() & uint64(n-1))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1). The scale factor is the
// exact reciprocal of 2^53 — for powers of two, multiplying is
// bit-identical to dividing and avoids a hardware divide on the per-
// record trace-generation path.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Zipf draws from a truncated Zipf-like distribution over [0, n) with skew
// s in (0, ~2]. It uses a simple inverse-CDF over precomputed weights for
// small n; callers cache a Zipf via NewZipf for large n.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over [0,n) with exponent s, drawing
// randomness from rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("trace: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / pow(float64(i+1), s)
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow is a minimal float power for positive bases (avoids importing math in
// the hot path; exactness is irrelevant for workload shaping).
func pow(base, exp float64) float64 {
	// exp in (0,2] for our uses; use exp(log) via the math identity with a
	// short Taylor-free approach: delegate to repeated sqrt-free approach is
	// overkill — just use the standard library.
	return stdPow(base, exp)
}
