package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	for _, r := range recs {
		if err := enc.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if enc.Count() != int64(len(recs)) {
		t.Fatalf("Count = %d, want %d", enc.Count(), len(recs))
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	dec, err := NewDecoder(&buf)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	var got []Record
	for {
		r, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, r)
	}
	return got
}

func TestCodecRoundTripBasic(t *testing.T) {
	recs := []Record{
		{Block: 100, Instrs: 16, Kind: KindSeq},
		{Block: 101, Instrs: 3, Kind: KindCall},
		{Block: 50, Instrs: 9, Kind: KindReturn},
		{Block: MaxBlockAddr, Instrs: 65535, Kind: KindTrap},
		{Block: 0, Instrs: 1, Kind: KindBranch},
	}
	got := roundTrip(t, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(blocks []uint32, seed int64) bool {
		rng := NewRNG(seed)
		recs := make([]Record, len(blocks))
		for i, b := range blocks {
			recs[i] = Record{
				Block:  BlockAddr(b),
				Instrs: uint16(1 + rng.Intn(64)),
				Kind:   Kind(rng.Intn(int(kindCount))),
			}
		}
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf)
		if err != nil {
			return false
		}
		for _, r := range recs {
			if err := enc.Write(r); err != nil {
				return false
			}
		}
		if err := enc.Flush(); err != nil {
			return false
		}
		dec, err := NewDecoder(&buf)
		if err != nil {
			return false
		}
		for i := range recs {
			got, err := dec.Next()
			if err != nil || got != recs[i] {
				return false
			}
		}
		_, err = dec.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCodecCompression(t *testing.T) {
	// Mostly-sequential traces should compress well below 10 bytes/record.
	const n = 10000
	recs := make([]Record, n)
	blk := BlockAddr(1 << 20)
	rng := NewRNG(1)
	for i := range recs {
		recs[i] = Record{Block: blk, Instrs: 16, Kind: KindSeq}
		if rng.Bool(0.2) {
			blk = BlockAddr(1<<20 + rng.Intn(4096))
		} else {
			blk++
		}
	}
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	enc.Flush()
	perRec := float64(buf.Len()) / n
	if perRec > 5 {
		t.Errorf("codec too fat: %.2f bytes/record", perRec)
	}
}

func TestDecoderBadMagic(t *testing.T) {
	_, err := NewDecoder(bytes.NewReader([]byte("NOPE\x01")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecoderBadVersion(t *testing.T) {
	_, err := NewDecoder(bytes.NewReader([]byte("SHFT\x7f")))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecoderTruncated(t *testing.T) {
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf)
	enc.Write(Record{Block: 12345, Instrs: 7, Kind: KindCall})
	enc.Flush()
	full := buf.Bytes()
	// Chop mid-record (header is 5 bytes; the record needs >=3).
	trunc := full[:len(full)-1]
	dec, err := NewDecoder(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated record: err = %v, want unexpected EOF", err)
	}
}

func TestDecoderShortHeader(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("SH"))); err == nil {
		t.Error("short header accepted")
	}
	if _, err := NewDecoder(bytes.NewReader([]byte("SHFT"))); err == nil {
		t.Error("missing version accepted")
	}
}

func TestEncoderRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf)
	if err := enc.Write(Record{Block: 1, Instrs: 0, Kind: KindSeq}); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestZigzagExtremes(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag round-trip failed for %d", v)
		}
	}
}
