// Package bpred implements the branch predictors of the simulated fetch
// unit: a 16K-entry gShare, a 16K-entry bimodal, and the hybrid chooser
// combining them (Table I: "Hybrid branch predictor (16K gShare & 16K
// bimodal)").
//
// In this reproduction the predictor's role is to set the frontend's
// branch-misprediction bubble rate in the timing model (the paper records
// prefetcher history at *retire* order precisely so that wrong-path
// fetches never pollute it; see PIF). The predictors are nonetheless
// implemented fully so the frontend model is driven by measured, not
// assumed, accuracy.
package bpred

import (
	"fmt"

	"shift/internal/trace"
)

// counter2 is a 2-bit saturating counter. 0-1 predict not-taken, 2-3 taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predictor is the common interface of the direction predictors.
type Predictor interface {
	// Predict returns the predicted direction for a branch at pc.
	Predict(pc trace.Addr) bool
	// Update trains the predictor with the resolved direction.
	Update(pc trace.Addr, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// Bimodal is a classic PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal builds a bimodal predictor with `entries` counters
// (power of two).
func NewBimodal(entries int) (*Bimodal, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: bimodal entries %d not a positive power of two", entries)
	}
	b := &Bimodal{table: make([]counter2, entries), mask: uint64(entries - 1)}
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
	return b, nil
}

func (b *Bimodal) index(pc trace.Addr) uint64 { return (uint64(pc) >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc trace.Addr) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc trace.Addr, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// GShare XORs a global history register into the PC index.
type GShare struct {
	table   []counter2
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare builds a gshare predictor with `entries` counters and a
// history length of log2(entries) bits.
func NewGShare(entries int) (*GShare, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: gshare entries %d not a positive power of two", entries)
	}
	g := &GShare{table: make([]counter2, entries), mask: uint64(entries - 1)}
	for n := entries; n > 1; n >>= 1 {
		g.histLen++
	}
	for i := range g.table {
		g.table[i] = 1
	}
	return g, nil
}

func (g *GShare) index(pc trace.Addr) uint64 {
	return ((uint64(pc) >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *GShare) Predict(pc trace.Addr) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. It also shifts the resolved direction into
// the global history register.
func (g *GShare) Update(pc trace.Addr, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

// Hybrid combines bimodal and gshare with a chooser table of 2-bit
// counters (the Table I fetch-unit predictor).
type Hybrid struct {
	bimodal *Bimodal
	gshare  *GShare
	chooser []counter2 // >=2 selects gshare
	mask    uint64

	predictions int64
	mispredicts int64
}

// NewHybrid builds the Table I predictor: 16K gshare, 16K bimodal, 16K
// chooser when entries=16384.
func NewHybrid(entries int) (*Hybrid, error) {
	bi, err := NewBimodal(entries)
	if err != nil {
		return nil, err
	}
	gs, err := NewGShare(entries)
	if err != nil {
		return nil, err
	}
	h := &Hybrid{bimodal: bi, gshare: gs, chooser: make([]counter2, entries), mask: uint64(entries - 1)}
	for i := range h.chooser {
		h.chooser[i] = 2 // weakly prefer gshare
	}
	return h, nil
}

// MustNewHybrid panics on config errors.
func MustNewHybrid(entries int) *Hybrid {
	h, err := NewHybrid(entries)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *Hybrid) index(pc trace.Addr) uint64 { return (uint64(pc) >> 2) & h.mask }

// Predict implements Predictor.
func (h *Hybrid) Predict(pc trace.Addr) bool {
	if h.chooser[h.index(pc)].taken() {
		return h.gshare.Predict(pc)
	}
	return h.bimodal.Predict(pc)
}

// Update implements Predictor, training both components and the chooser,
// and maintaining accuracy statistics.
func (h *Hybrid) Update(pc trace.Addr, taken bool) {
	bp := h.bimodal.Predict(pc)
	gp := h.gshare.Predict(pc)
	chosen := bp
	if h.chooser[h.index(pc)].taken() {
		chosen = gp
	}
	h.predictions++
	if chosen != taken {
		h.mispredicts++
	}
	// Chooser trains toward whichever component was right when they
	// disagree.
	if bp != gp {
		i := h.index(pc)
		h.chooser[i] = h.chooser[i].update(gp == taken)
	}
	h.bimodal.Update(pc, taken)
	h.gshare.Update(pc, taken)
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "hybrid" }

// Accuracy returns the fraction of correct predictions so far (1.0 if no
// predictions were made).
func (h *Hybrid) Accuracy() float64 {
	if h.predictions == 0 {
		return 1
	}
	return 1 - float64(h.mispredicts)/float64(h.predictions)
}

// Mispredicts returns the misprediction count.
func (h *Hybrid) Mispredicts() int64 { return h.mispredicts }

// Predictions returns the prediction count.
func (h *Hybrid) Predictions() int64 { return h.predictions }

var (
	_ Predictor = (*Bimodal)(nil)
	_ Predictor = (*GShare)(nil)
	_ Predictor = (*Hybrid)(nil)
)
