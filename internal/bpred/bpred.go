// Package bpred implements the branch predictors of the simulated fetch
// unit: a 16K-entry gShare, a 16K-entry bimodal, and the hybrid chooser
// combining them (Table I: "Hybrid branch predictor (16K gShare & 16K
// bimodal)").
//
// In this reproduction the predictor's role is to set the frontend's
// branch-misprediction bubble rate in the timing model (the paper records
// prefetcher history at *retire* order precisely so that wrong-path
// fetches never pollute it; see PIF). The predictors are nonetheless
// implemented fully so the frontend model is driven by measured, not
// assumed, accuracy.
package bpred

import (
	"fmt"

	"shift/internal/trace"
)

// counter2 is a 2-bit saturating counter. 0-1 predict not-taken, 2-3 taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predictor is the common interface of the direction predictors.
type Predictor interface {
	// Predict returns the predicted direction for a branch at pc.
	Predict(pc trace.Addr) bool
	// Update trains the predictor with the resolved direction.
	Update(pc trace.Addr, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// Bimodal is a classic PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal builds a bimodal predictor with `entries` counters
// (power of two).
func NewBimodal(entries int) (*Bimodal, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: bimodal entries %d not a positive power of two", entries)
	}
	b := &Bimodal{table: make([]counter2, entries), mask: uint64(entries - 1)}
	for i := range b.table {
		b.table[i] = 1 // weakly not-taken
	}
	return b, nil
}

func (b *Bimodal) index(pc trace.Addr) uint64 { return (uint64(pc) >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc trace.Addr) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc trace.Addr, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// GShare XORs a global history register into the PC index. Counters are
// packed 32 per word (2 bits each), quartering the table's cache
// footprint with identical predictions.
type GShare struct {
	bits    []uint64
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare builds a gshare predictor with `entries` counters and a
// history length of log2(entries) bits.
func NewGShare(entries int) (*GShare, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: gshare entries %d not a positive power of two", entries)
	}
	g := &GShare{bits: make([]uint64, (entries+31)/32), mask: uint64(entries - 1)}
	for n := entries; n > 1; n >>= 1 {
		g.histLen++
	}
	for i := range g.bits {
		g.bits[i] = 0x5555555555555555 // every counter 1: weakly not-taken
	}
	return g, nil
}

func (g *GShare) index(pc trace.Addr) uint64 {
	return ((uint64(pc) >> 2) ^ g.history) & g.mask
}

// counter returns the 2-bit counter at index i.
func (g *GShare) counter(i uint64) counter2 {
	return counter2(g.bits[i>>5] >> ((i & 31) * 2) & 3)
}

// setCounter stores the 2-bit counter at index i.
func (g *GShare) setCounter(i uint64, c counter2) {
	shift := (i & 31) * 2
	g.bits[i>>5] = g.bits[i>>5]&^(3<<shift) | uint64(c)<<shift
}

// Predict implements Predictor.
func (g *GShare) Predict(pc trace.Addr) bool { return g.counter(g.index(pc)).taken() }

// predictAt returns the prediction and the index it used, for callers
// that train the same entry immediately (Hybrid.PredictUpdate).
func (g *GShare) predictAt(pc trace.Addr) (taken bool, i uint64) {
	i = g.index(pc)
	return g.counter(i).taken(), i
}

// updateAt trains the counter at index i and shifts the resolved
// direction into the global history register.
func (g *GShare) updateAt(i uint64, taken bool) {
	g.setCounter(i, g.counter(i).update(taken))
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Update implements Predictor. It also shifts the resolved direction into
// the global history register.
func (g *GShare) Update(pc trace.Addr, taken bool) {
	g.updateAt(g.index(pc), taken)
}

// Name implements Predictor.
func (g *GShare) Name() string { return "gshare" }

// Hybrid combines bimodal and gshare with a chooser table of 2-bit
// counters (the Table I fetch-unit predictor).
//
// Layout is optimized for the simulator's per-record path, with behavior
// identical to the separate-byte-table formulation:
//
//   - the bimodal and chooser counters share a PC index, so they are
//     fused into one 4-bit nibble (bits 0-1 bimodal, bits 2-3 chooser)
//     — one random load serves both;
//   - the gshare table packs 32 2-bit counters per word;
//
// which shrinks a 16K-entry predictor from 48KB of byte counters to
// 12KB, small enough that sixteen cores' predictors stay resident in the
// host cache.
type Hybrid struct {
	gshare *GShare
	// bc packs 16 bimodal+chooser nibbles per word.
	bc   []uint64
	mask uint64

	predictions int64
	mispredicts int64
}

// NewHybrid builds the Table I predictor: 16K gshare, 16K bimodal, 16K
// chooser when entries=16384.
func NewHybrid(entries int) (*Hybrid, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: hybrid entries %d not a positive power of two", entries)
	}
	gs, err := NewGShare(entries)
	if err != nil {
		return nil, err
	}
	h := &Hybrid{gshare: gs, bc: make([]uint64, (entries+15)/16), mask: uint64(entries - 1)}
	// Every entry: bimodal=1 (weakly not-taken), chooser=2 (weakly
	// prefer gshare) → nibble 0b1001.
	for i := range h.bc {
		h.bc[i] = 0x9999999999999999
	}
	return h, nil
}

// MustNewHybrid panics on config errors.
func MustNewHybrid(entries int) *Hybrid {
	h, err := NewHybrid(entries)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *Hybrid) index(pc trace.Addr) uint64 { return (uint64(pc) >> 2) & h.mask }

// nibble returns the packed bimodal and chooser counters at index i.
func (h *Hybrid) nibble(i uint64) (bim, ch counter2) {
	nib := h.bc[i>>4] >> ((i & 15) * 4)
	return counter2(nib & 3), counter2(nib >> 2 & 3)
}

// setNibble stores the counters back at index i.
func (h *Hybrid) setNibble(i uint64, bim, ch counter2) {
	shift := (i & 15) * 4
	word := h.bc[i>>4] &^ (0xF << shift)
	h.bc[i>>4] = word | (uint64(ch)<<2|uint64(bim))<<shift
}

// Predict implements Predictor.
func (h *Hybrid) Predict(pc trace.Addr) bool {
	bim, ch := h.nibble(h.index(pc))
	if ch.taken() {
		return h.gshare.Predict(pc)
	}
	return bim.taken()
}

// Update implements Predictor, training both components and the chooser,
// and maintaining accuracy statistics.
func (h *Hybrid) Update(pc trace.Addr, taken bool) {
	h.PredictUpdate(pc, taken)
}

// PredictUpdate is Predict followed by Update in a single pass: the
// component predictions and table indices are computed once instead of
// twice. It returns the (pre-update) prediction and is behaviorally
// identical to calling Predict then Update.
func (h *Hybrid) PredictUpdate(pc trace.Addr, taken bool) (predicted bool) {
	i := h.index(pc)
	bim, ch := h.nibble(i)
	bp := bim.taken()
	// Fused gshare predict+update: the prediction and the training hit
	// the same packed table word, so it is loaded once.
	g := h.gshare
	gp, gi := g.predictAt(pc)
	chosen := bp
	if ch.taken() {
		chosen = gp
	}
	h.predictions++
	if chosen != taken {
		h.mispredicts++
	}
	// Chooser trains toward whichever component was right when they
	// disagree.
	if bp != gp {
		ch = ch.update(gp == taken)
	}
	h.setNibble(i, bim.update(taken), ch)
	g.updateAt(gi, taken)
	return chosen
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "hybrid" }

// Accuracy returns the fraction of correct predictions so far (1.0 if no
// predictions were made).
func (h *Hybrid) Accuracy() float64 {
	if h.predictions == 0 {
		return 1
	}
	return 1 - float64(h.mispredicts)/float64(h.predictions)
}

// Mispredicts returns the misprediction count.
func (h *Hybrid) Mispredicts() int64 { return h.mispredicts }

// Predictions returns the prediction count.
func (h *Hybrid) Predictions() int64 { return h.predictions }

var (
	_ Predictor = (*Bimodal)(nil)
	_ Predictor = (*GShare)(nil)
	_ Predictor = (*Hybrid)(nil)
)
