package bpred

import (
	"testing"

	"shift/internal/trace"
)

func TestCounter2Saturates(t *testing.T) {
	c := counter2(0)
	c = c.update(false)
	if c != 0 {
		t.Errorf("counter underflowed: %d", c)
	}
	c = counter2(3)
	c = c.update(true)
	if c != 3 {
		t.Errorf("counter overflowed: %d", c)
	}
	c = counter2(1)
	if c.taken() {
		t.Error("1 should predict not-taken")
	}
	c = c.update(true)
	if !c.taken() {
		t.Error("2 should predict taken")
	}
}

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 1000} {
		if _, err := NewBimodal(n); err == nil {
			t.Errorf("NewBimodal(%d) accepted", n)
		}
		if _, err := NewGShare(n); err == nil {
			t.Errorf("NewGShare(%d) accepted", n)
		}
		if _, err := NewHybrid(n); err == nil {
			t.Errorf("NewHybrid(%d) accepted", n)
		}
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(1024)
	if err != nil {
		t.Fatal(err)
	}
	pc := trace.Addr(0x1000)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn always-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn always-not-taken")
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	g, err := NewGShare(4096)
	if err != nil {
		t.Fatal(err)
	}
	pc := trace.Addr(0x2000)
	// Alternating pattern T,N,T,N is history-predictable; a bimodal
	// cannot beat 50% on it but gshare can approach 100% after warmup.
	pattern := []bool{true, false}
	// Train.
	for i := 0; i < 2000; i++ {
		g.Update(pc, pattern[i%2])
	}
	correct := 0
	for i := 0; i < 200; i++ {
		want := pattern[i%2]
		if g.Predict(pc) == want {
			correct++
		}
		g.Update(pc, want)
	}
	if correct < 190 {
		t.Errorf("gshare learned alternating pattern at only %d/200", correct)
	}
}

func TestHybridBeatsWorstComponent(t *testing.T) {
	h := MustNewHybrid(4096)
	// Mix: one strongly biased branch plus one alternating branch.
	biased, alt := trace.Addr(0x100), trace.Addr(0x204)
	correct, total := 0, 0
	rng := trace.NewRNG(9)
	altState := false
	for i := 0; i < 20000; i++ {
		var pc trace.Addr
		var taken bool
		if rng.Bool(0.5) {
			pc, taken = biased, true
		} else {
			altState = !altState
			pc, taken = alt, altState
		}
		if i > 4000 {
			total++
			if h.Predict(pc) == taken {
				correct++
			}
		}
		h.Update(pc, taken)
	}
	// The random interleaving pollutes gshare's global history, so the
	// alternating branch is only partially predictable; 0.8 is well above
	// what either component alone achieves on this mix.
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("hybrid accuracy %.3f < 0.8", acc)
	}
	if h.Accuracy() <= 0.5 {
		t.Errorf("running Accuracy = %v", h.Accuracy())
	}
	if h.Predictions() == 0 || h.Mispredicts() < 0 {
		t.Error("stats not maintained")
	}
}

func TestHybridAccuracyEmptyIsOne(t *testing.T) {
	h := MustNewHybrid(16)
	if h.Accuracy() != 1 {
		t.Errorf("Accuracy with no predictions = %v, want 1", h.Accuracy())
	}
}

func TestNames(t *testing.T) {
	b, _ := NewBimodal(16)
	g, _ := NewGShare(16)
	h := MustNewHybrid(16)
	if b.Name() != "bimodal" || g.Name() != "gshare" || h.Name() != "hybrid" {
		t.Error("wrong predictor names")
	}
}

func TestMustNewHybridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewHybrid should panic on bad size")
		}
	}()
	MustNewHybrid(3)
}

func TestTableIPredictorSize(t *testing.T) {
	// Table I: 16K gShare & 16K bimodal.
	if _, err := NewHybrid(16384); err != nil {
		t.Fatalf("Table I predictor rejected: %v", err)
	}
}
