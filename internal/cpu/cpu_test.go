package cpu

import "testing"

func TestCoreTypeNames(t *testing.T) {
	if FatOoO.String() != "Fat-OoO" || LeanOoO.String() != "Lean-OoO" || LeanIO.String() != "Lean-IO" {
		t.Error("core type names do not match the paper")
	}
	if CoreType(9).String() == "" {
		t.Error("unknown type should format")
	}
	if !LeanOoO.Valid() || CoreType(9).Valid() {
		t.Error("Valid wrong")
	}
	if len(AllCoreTypes()) != 3 {
		t.Error("AllCoreTypes should list 3 designs")
	}
}

func TestTableIParams(t *testing.T) {
	fat := ParamsFor(FatOoO)
	if fat.Width != 4 || fat.ROB != 128 || fat.LSQ != 32 || fat.AreaMM2 != 25.0 {
		t.Errorf("Fat-OoO params %+v do not match Table I", fat)
	}
	lean := ParamsFor(LeanOoO)
	if lean.Width != 3 || lean.ROB != 60 || lean.LSQ != 16 || lean.AreaMM2 != 4.5 {
		t.Errorf("Lean-OoO params %+v do not match Table I", lean)
	}
	io := ParamsFor(LeanIO)
	if io.Width != 2 || io.AreaMM2 != 1.3 {
		t.Errorf("Lean-IO params %+v do not match Table I", io)
	}
	// In-order cores expose the full stall.
	if io.StallExposure != 1.0 {
		t.Errorf("Lean-IO exposure = %v, want 1.0", io.StallExposure)
	}
	// Fatter cores hide more and have lower base CPI.
	if !(fat.StallExposure < lean.StallExposure && lean.StallExposure < io.StallExposure) {
		t.Error("exposure should increase as cores get leaner")
	}
	if !(fat.BaseCPI < lean.BaseCPI && lean.BaseCPI < io.BaseCPI) {
		t.Error("base CPI should increase as cores get leaner")
	}
}

func TestParamsForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ParamsFor should panic on unknown type")
		}
	}()
	ParamsFor(CoreType(42))
}

func TestClockRetire(t *testing.T) {
	c := NewClock(LeanIO) // BaseCPI 1.10
	c.Retire(1000)
	if c.Instructions() != 1000 {
		t.Errorf("Instructions = %d", c.Instructions())
	}
	// 1000 instrs at CPI 1.10 ≈ 1100 cycles (fixed-point rounding ≤ 1).
	if got := c.Now(); got < 1098 || got > 1101 {
		t.Errorf("Now = %d, want ~1100", got)
	}
	ipc := c.IPC()
	if ipc < 0.89 || ipc > 0.92 {
		t.Errorf("IPC = %v, want ~1/1.1", ipc)
	}
}

func TestClockFixedPointPrecision(t *testing.T) {
	// One instruction at a time must accumulate the same cycles as bulk.
	a, b := NewClock(LeanOoO), NewClock(LeanOoO)
	for i := 0; i < 10000; i++ {
		a.Retire(1)
	}
	b.Retire(10000)
	if a.Now() != b.Now() {
		t.Errorf("incremental %d != bulk %d", a.Now(), b.Now())
	}
}

func TestClockFetchStallExposure(t *testing.T) {
	io := NewClock(LeanIO)
	io.FetchStall(100)
	if io.FetchStallCycles() != 100 {
		t.Errorf("in-order exposed %d of 100", io.FetchStallCycles())
	}
	fat := NewClock(FatOoO)
	fat.FetchStall(100)
	if fat.FetchStallCycles() != 55 {
		t.Errorf("Fat-OoO exposed %d, want 55", fat.FetchStallCycles())
	}
	// Zero and negative stalls are no-ops.
	before := fat.Now()
	fat.FetchStall(0)
	fat.FetchStall(-5)
	if fat.Now() != before {
		t.Error("non-positive stall changed the clock")
	}
}

func TestClockMispredict(t *testing.T) {
	c := NewClock(LeanOoO)
	c.Mispredict()
	if c.BranchStallCycles() != int64(ParamsFor(LeanOoO).MispredictPenalty) {
		t.Errorf("branch stall = %d", c.BranchStallCycles())
	}
}

func TestFetchStallFraction(t *testing.T) {
	c := NewClock(LeanIO)
	if c.FetchStallFraction() != 0 {
		t.Error("empty clock stall fraction should be 0")
	}
	c.Retire(1000) // ~1100 cycles
	c.FetchStall(1100)
	f := c.FetchStallFraction()
	if f < 0.45 || f > 0.55 {
		t.Errorf("stall fraction = %v, want ~0.5", f)
	}
	if c.IPC() <= 0 {
		t.Error("IPC should be positive")
	}
}
