// Package cpu provides the timing models of the three core
// microarchitectures the paper evaluates (Table I and Section 2.3):
//
//   - Fat-OoO: a Xeon-class 4-wide out-of-order core (25 mm²);
//   - Lean-OoO: an ARM Cortex-A15-class 3-wide out-of-order core (4.5 mm²);
//   - Lean-IO: an ARM Cortex-A8-class 2-wide in-order core (1.3 mm²).
//
// The model is deliberately frontend-centric, matching what the paper
// measures: cycles accrue from (a) a base CPI capturing backend execution
// of low-ILP server code, (b) instruction-fetch stalls whose exposure
// depends on how much latency the core's window can hide, and (c) branch
// misprediction refill bubbles. Absolute IPC is not claimed — only the
// relative effect of removing fetch stalls, which is what Figures 1, 8
// and 10 report.
package cpu

import "fmt"

// CoreType selects a core microarchitecture.
type CoreType int

const (
	// LeanOoO is the ARM Cortex-A15-class core used for the paper's main
	// performance results (Section 5.1: "We model a tiled SHIFT
	// architecture with a lean-OoO core modeled after an ARM-Cortex A15").
	LeanOoO CoreType = iota
	// FatOoO is the Xeon-class core.
	FatOoO
	// LeanIO is the ARM Cortex-A8-class in-order core.
	LeanIO
	coreTypeCount
)

var coreTypeNames = [...]string{"Lean-OoO", "Fat-OoO", "Lean-IO"}

// String names the core type as in the paper.
func (t CoreType) String() string {
	if int(t) < len(coreTypeNames) {
		return coreTypeNames[t]
	}
	return fmt.Sprintf("CoreType(%d)", int(t))
}

// Valid reports whether t is a defined core type.
func (t CoreType) Valid() bool { return t >= 0 && t < coreTypeCount }

// AllCoreTypes returns the three core types in paper order
// (Fat-OoO, Lean-OoO, Lean-IO as listed in Table I).
func AllCoreTypes() []CoreType { return []CoreType{FatOoO, LeanOoO, LeanIO} }

// Params are the microarchitectural and model parameters of a core type.
type Params struct {
	// Width is dispatch/retirement width (Table I).
	Width int
	// ROB is the reorder buffer capacity (Table I; 0 for in-order).
	ROB int
	// LSQ is the load/store queue capacity (Table I; 0 for in-order).
	LSQ int
	// AreaMM2 is the core+L1 area at 40nm (Section 2.3).
	AreaMM2 float64
	// BaseCPI is the cycles/instruction of the backend on low-ILP server
	// code with a perfect frontend.
	BaseCPI float64
	// StallExposure is the fraction of an instruction-fetch stall the
	// core cannot hide (1.0 for in-order; OoO cores overlap some of the
	// front-end bubble with draining the window).
	StallExposure float64
	// MispredictPenalty is the pipeline refill bubble in cycles.
	MispredictPenalty int
}

// ParamsFor returns the model parameters for t.
func ParamsFor(t CoreType) Params {
	switch t {
	case FatOoO:
		return Params{Width: 4, ROB: 128, LSQ: 32, AreaMM2: 25.0,
			BaseCPI: 0.60, StallExposure: 0.55, MispredictPenalty: 14}
	case LeanOoO:
		return Params{Width: 3, ROB: 60, LSQ: 16, AreaMM2: 4.5,
			BaseCPI: 0.80, StallExposure: 0.75, MispredictPenalty: 12}
	case LeanIO:
		return Params{Width: 2, ROB: 0, LSQ: 0, AreaMM2: 1.3,
			BaseCPI: 1.10, StallExposure: 1.00, MispredictPenalty: 8}
	default:
		panic(fmt.Sprintf("cpu: unknown core type %d", t))
	}
}

// fpShift is the fixed-point fraction width of the cycle accumulator.
const fpShift = 10

// Clock accumulates one core's cycles in fixed point so fractional base
// CPI contributions do not lose precision over billions of instructions.
type Clock struct {
	p        Params
	cyclesFP int64
	instrs   int64

	baseFP      int64 // precomputed BaseCPI in fixed point
	fetchStall  int64 // whole cycles of exposed fetch stall
	branchStall int64 // whole cycles of mispredict bubbles
}

// NewClock builds a cycle accumulator for core type t.
func NewClock(t CoreType) *Clock {
	p := ParamsFor(t)
	return &Clock{p: p, baseFP: int64(p.BaseCPI * (1 << fpShift))}
}

// Params returns the core parameters driving this clock.
func (c *Clock) Params() Params { return c.p }

// Retire accounts n retired instructions of backend work.
func (c *Clock) Retire(n int) {
	c.instrs += int64(n)
	c.cyclesFP += int64(n) * c.baseFP
}

// FetchStall accounts an instruction-fetch stall of `cycles`, scaled by
// the core's exposure factor.
func (c *Clock) FetchStall(cycles int64) {
	if cycles <= 0 {
		return
	}
	exposed := int64(float64(cycles)*c.p.StallExposure + 0.5)
	c.cyclesFP += exposed << fpShift
	c.fetchStall += exposed
}

// Mispredict accounts one branch misprediction bubble.
func (c *Clock) Mispredict() {
	c.cyclesFP += int64(c.p.MispredictPenalty) << fpShift
	c.branchStall += int64(c.p.MispredictPenalty)
}

// Now returns the current cycle (whole cycles).
func (c *Clock) Now() int64 { return c.cyclesFP >> fpShift }

// Instructions returns retired instructions.
func (c *Clock) Instructions() int64 { return c.instrs }

// IPC returns instructions per cycle so far (0 when no cycles).
func (c *Clock) IPC() float64 {
	if c.Now() == 0 {
		return 0
	}
	return float64(c.instrs) / float64(c.Now())
}

// FetchStallCycles returns total exposed fetch-stall cycles.
func (c *Clock) FetchStallCycles() int64 { return c.fetchStall }

// BranchStallCycles returns total mispredict bubble cycles.
func (c *Clock) BranchStallCycles() int64 { return c.branchStall }

// FetchStallFraction returns the share of all cycles spent in exposed
// fetch stalls (the paper's "frontend stalls ... account for up to 40% of
// execution time" metric).
func (c *Clock) FetchStallFraction() float64 {
	if c.Now() == 0 {
		return 0
	}
	return float64(c.fetchStall) / float64(c.Now())
}
