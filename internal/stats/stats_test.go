package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean should be 0")
	}
	if !almostEq(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean(2,8) = %v", GeoMean([]float64{2, 8}))
	}
	if !almostEq(GeoMean([]float64{1.2}), 1.2) {
		t.Error("single-element GeoMean")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean(0) should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMeanStdDevCI(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("StdDev = %v", sd)
	}
	if ci := CI95(xs); ci <= 0 {
		t.Errorf("CI95 = %v", ci)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 || CI95([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty extrema should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Must not mutate the input.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMeanLEMaxProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 1 + float64(r)/100
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	tab := NewTable("Workload", "Speedup")
	tab.AddRow("OLTP DB2", "1.21")
	tab.AddRow("Web Search") // short row padded
	s := tab.String()
	if !strings.Contains(s, "Workload") || !strings.Contains(s, "OLTP DB2") {
		t.Errorf("table missing content:\n%s", s)
	}
	if !strings.Contains(s, "---") {
		t.Error("table missing separator")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "Workload,Speedup\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("over-max Bar = %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" || Bar(1, 10, 0) != "" {
		t.Error("degenerate bars should be empty")
	}
}
