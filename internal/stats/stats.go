// Package stats provides the statistics helpers used by the experiment
// drivers: geometric means (the paper reports geo-mean speedups),
// mean/confidence intervals (the paper's SimFlex-style 95% confidence
// reporting), and fixed-width ASCII tables and bar charts for emitting
// paper-figure-shaped output from the CLIs and benchmarks.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs (0 if empty; panics on
// non-positive values, which would indicate a broken speedup computation).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 if fewer than 2 values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (the paper: "average error of less than 5%
// at the 95% confidence level").
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min and Max return extrema (0 if empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 if empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0<=p<=100) using linear
// interpolation; 0 if empty.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Table renders fixed-width ASCII tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Bar renders a horizontal ASCII bar of value v scaled so that maxV fills
// width characters.
func Bar(v, maxV float64, width int) string {
	if maxV <= 0 || v < 0 || width <= 0 {
		return ""
	}
	n := int(v/maxV*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
