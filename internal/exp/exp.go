// Package exp is the parallel experiment engine underneath the public
// experiment drivers: it evaluates a grid of independent cells across a
// bounded worker pool and merges the results deterministically.
//
// The engine's contract is that parallel execution is observationally
// identical to serial execution. Results are stored by cell index, never
// by completion order, and when several cells fail the error of the
// lowest-index failing cell is returned — exactly the error a serial
// loop would have stopped on. Callers may therefore flip Parallelism
// between 1 and N without changing a single output bit.
package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures one engine invocation.
type Options struct {
	// Parallelism bounds the worker pool: 1 runs cells serially on the
	// calling goroutine, N>1 uses N workers, and <=0 defaults to
	// runtime.GOMAXPROCS(0).
	Parallelism int
}

// workers resolves the pool size for n cells.
func (o Options) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Map evaluates fn(0..n-1) across the worker pool and returns the
// results ordered by index: out[i] is fn(i)'s value. If any cell fails,
// Map returns the error of the lowest failing index (the serial-loop
// error) and discards the partial results. fn must be safe for
// concurrent invocation when Parallelism != 1.
func Map[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if o.workers(n) == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // work-stealing cell cursor
		errIdx atomic.Int64 // lowest failing index seen so far
		wg     sync.WaitGroup
	)
	errIdx.Store(int64(n))
	errs := make([]error, n)
	for w := o.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				// Cells above the lowest known failure cannot change the
				// outcome; skipping them mirrors a serial loop's early
				// exit. The minimal failing index itself is never above
				// another failure, so it is always evaluated.
				if int64(i) > errIdx.Load() {
					continue
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						cur := errIdx.Load()
						if int64(i) >= cur || errIdx.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if idx := errIdx.Load(); idx < int64(n) {
		return nil, errs[idx]
	}
	return out, nil
}
