package exp

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// square is a deterministic cell function.
func square(i int) (int, error) { return i * i, nil }

func TestMapOrdersByIndex(t *testing.T) {
	for _, par := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Options{Parallelism: par}, 100, square)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("cell-%d-%d", i, i%7), nil }
	serial, err := Map(Options{Parallelism: 1}, 257, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(Options{Parallelism: 16}, 257, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel results differ from serial")
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Options{}, 0, square)
	if err != nil || got != nil {
		t.Errorf("Map(0) = %v, %v; want nil, nil", got, err)
	}
}

// TestMapLowestErrorWins checks the determinism contract for failures:
// whatever the parallelism, the returned error is the one a serial loop
// would have stopped on.
func TestMapLowestErrorWins(t *testing.T) {
	fail := map[int]bool{5: true, 23: true, 60: true}
	fn := func(i int) (int, error) {
		if fail[i] {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	}
	for _, par := range []int{1, 4, 32} {
		_, err := Map(Options{Parallelism: par}, 64, fn)
		if err == nil || err.Error() != "cell 5 failed" {
			t.Errorf("par=%d: err = %v, want cell 5 failed", par, err)
		}
	}
}

// TestMapBoundedConcurrency verifies the pool never exceeds Parallelism
// simultaneous cells.
func TestMapBoundedConcurrency(t *testing.T) {
	const par = 3
	var inFlight, peak atomic.Int64
	_, err := Map(Options{Parallelism: par}, 200, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > par {
		t.Errorf("observed %d concurrent cells, bound is %d", p, par)
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct{ par, n, want int }{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},
		{-1, 1, 1},
	}
	for _, c := range cases {
		if got := (Options{Parallelism: c.par}).workers(c.n); got != c.want {
			t.Errorf("workers(par=%d, n=%d) = %d, want %d", c.par, c.n, got, c.want)
		}
	}
	if got := (Options{}).workers(1000); got < 1 {
		t.Errorf("default workers = %d", got)
	}
}
