package sim

import (
	"testing"

	"shift/internal/core"
	"shift/internal/pif"
	"shift/internal/tifs"
	"shift/internal/trace"
	"shift/internal/workload"
)

// The zero-allocation contract: in steady state, System.Step performs no
// heap allocations for the paper's evaluated design points. Warmup may
// grow reusable buffers (stream queues, request slices, reader stacks);
// after it, the per-record hot path — trace generation, branch
// prediction, cache probes, MSHR bookkeeping, the Prefetcher.OnAccess
// replay/record machinery, and prefetch issue — must run allocation-free.
// This is the regression gate behind the throughput work: a single
// alloc/record costs ~30% of simulator throughput in GC and malloc
// overhead.

// buildSteadySystem constructs a warmed 4-core system for the given
// prefetcher spec.
func buildSteadySystem(t *testing.T, spec PrefetcherSpec) *System {
	t.Helper()
	cfg := testConfig()
	cfg.Prefetcher = spec
	w, err := workload.New(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]trace.Reader, cfg.Cores)
	for i := range readers {
		readers[i] = w.NewCoreReader(i)
	}
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	// Warmup: populate caches, histories, stream buffers, and grow every
	// reusable buffer to its steady-state capacity.
	if err := sys.Run(30000); err != nil {
		t.Fatal(err)
	}
	return sys
}

// measureStepAllocs returns allocations per Step over `rounds` lockstep
// rounds of all cores. testing.AllocsPerRun runs a GC first and counts
// mallocs, so slice growth that still happens in "steady" state shows up
// directly.
func measureStepAllocs(t *testing.T, sys *System, rounds int) float64 {
	t.Helper()
	steps := float64(rounds * sys.cfg.Cores)
	per := testing.AllocsPerRun(1, func() {
		for r := 0; r < rounds; r++ {
			for c := 0; c < sys.cfg.Cores; c++ {
				if _, err := sys.Step(c); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	return per / steps
}

func testZeroAllocs(t *testing.T, spec PrefetcherSpec) {
	sys := buildSteadySystem(t, spec)
	// One extra settling pass inside the measurement harness: the first
	// AllocsPerRun invocation also runs the function once as warmup, so
	// residual growth (e.g. a stream queue that first overflows here)
	// does not count against the steady-state figure.
	if got := measureStepAllocs(t, sys, 2000); got != 0 {
		t.Fatalf("%s: %.6f allocs/record in steady-state Step, want 0", spec.Name(), got)
	}
}

// TestStepZeroAllocSteadyStateSHIFT covers the paper's contribution
// design point (virtualized SHIFT, shared history in the LLC).
func TestStepZeroAllocSteadyStateSHIFT(t *testing.T) {
	shift := core.DefaultConfig()
	shift.HistEntries = 8192
	testZeroAllocs(t, PrefetcherSpec{Kind: KindSHIFT, SHIFT: shift})
}

// TestStepZeroAllocSteadyStatePIF covers the per-core state-of-the-art
// comparison point.
func TestStepZeroAllocSteadyStatePIF(t *testing.T) {
	testZeroAllocs(t, PrefetcherSpec{Kind: KindPIF, PIF: pif.Config2K()})
}

// TestStepZeroAllocSteadyStateBaselines covers the remaining
// Prefetcher implementations (no prefetch, next-line, TIFS) — the
// contract holds for all five, not just the headline designs.
func TestStepZeroAllocSteadyStateBaselines(t *testing.T) {
	testZeroAllocs(t, PrefetcherSpec{Kind: KindNone})
	testZeroAllocs(t, PrefetcherSpec{Kind: KindNextLine, NextLineDegree: 2})
	testZeroAllocs(t, PrefetcherSpec{Kind: KindTIFS, TIFS: tifs.DefaultConfig()})
}
