package sim

import (
	"fmt"
	"io"

	"shift/internal/bpred"
	"shift/internal/cache"
	"shift/internal/core"
	"shift/internal/cpu"
	"shift/internal/noc"
	"shift/internal/pif"
	"shift/internal/prefetch"
	"shift/internal/tifs"
	"shift/internal/trace"
	"shift/internal/workload"
)

// System is one simulated CMP bound to per-core trace readers.
type System struct {
	cfg Config

	readers []trace.Reader
	// fastReaders[i] is readers[i] when it is a concrete synthetic-
	// workload reader, letting the per-record Next call skip interface
	// dispatch (nil entries fall back to the interface); fastViews is
	// the same devirtualization for the batched path's shared-stream
	// views.
	fastReaders []*workload.CoreReader
	fastViews   []*workload.StreamView
	done        []bool

	// tiles[coreID] is the core's mesh tile (coreID mod tile count).
	tiles []int

	clocks  []*cpu.Clock
	bp      []*bpred.Hybrid
	l1i     []*cache.Cache
	pb      []*cache.Cache // per-core prefetch buffers
	l1mshr  []*cache.MSHRs
	llc     []*cache.Cache
	mesh    *noc.Mesh
	pf      []prefetch.Prefetcher
	shared  []*core.SharedHistory
	groupOf []int // core -> shared history index (SHIFT only)
	rng     []*trace.RNG

	dataAcc []float64
	// dataStep[n] caches float64(n) * DataMPKI / 1000 for small retire
	// counts, sparing the per-record floating divide. Entries are
	// computed with exactly the expression they replace, so accumulation
	// is bit-identical.
	dataStep []float64
	records  []int64
	fetch    []FetchStats
	adapt    []adaptState
	rounds   int64

	// hot gathers each core's per-record state behind a single bounds
	// check; see coreHot.
	hot []coreHot

	// adaptive and adaptEvery are the Section 6.1 generator-rotation
	// switches, resolved once at construction so the per-round check is
	// two loads.
	adaptive   bool
	adaptEvery int64

	// Shared branch prediction for batched runs (RunBatch). Every batch
	// member consumes an identical record stream, so the hybrid
	// predictor — a pure function of that stream — evolves identically
	// in all of them. When bpBuf is non-nil the lead member (bpLead)
	// evaluates its predictor per record and writes the outcome at
	// bpPos; followers, whose bp slices alias the lead's predictors for
	// result accounting, consume the outcome instead of re-evaluating.
	// The batch runner resets bpPos on every member at each lockstep
	// block, which keeps the cursors aligned across members.
	bpBuf  []uint8
	bpLead bool
	bpPos  int

	// Shared record decoding and L1-I stepping for the functional
	// segments of sampled batches. The instruction cache's content is a
	// pure function of the shared record stream (demand insert on every
	// miss; prefetches fill a separate buffer), so during functional
	// fast-forwarding the lead member decodes each record, probes its
	// L1-I once, and publishes (block, kind, hit) into fnBlkBuf at
	// l1Pos; followers replay the buffer instead of walking their
	// stream views or maintaining their own caches, and the batch
	// runner bulk-copies the lead's cache state into every follower at
	// each functional segment boundary (cache.CopyStateFrom) —
	// bit-identical to per-member stepping, minus K-1 decodes and
	// probes per record. Detailed segments never touch these cursors:
	// every member steps its own L1-I there.
	fnBlkBuf []uint64
	l1Lead   bool
	l1Pos    int

	// Miss-list replay for the shared-L1 fast-forward: the lead appends
	// every missed block to fnMissBuf (fnMissCnt/fnRounds hold the
	// per-core miss and round counts of the current lockstep block), so
	// followers whose warming is miss-driven replay the misses and skip
	// record decoding entirely; missPos is each member's cursor.
	fnMissBuf []uint64
	fnMissCnt []int32
	fnRounds  []int32
	missPos   int

	// Shared background data traffic for batched runs. With equal seeds
	// and data rates and no miss elimination, the data-side accumulator
	// and its RNG draws are functions of the shared record stream alone,
	// so the lead packs each record's (message count, hop sum) into
	// dsBuf and followers replay the aggregate (integer sums —
	// bit-identical accounting) instead of re-drawing it.
	dsBuf  []uint64
	dsLead bool
	dsPos  int

	base measurement // snapshot at measurement start

	// Sampled-execution state (see sampling.go): functional selects the
	// fast-forward stepping path in runRounds; intervalStart/sampleAgg
	// and the per-interval metric samples feed SampledResults;
	// llcWarmCnt[core] counts functional L1 misses for the strided LLC
	// warming.
	functional    bool
	llcMask       uint32
	intervalStart measurement
	sampleAgg     measurement
	mpkiSamples   []float64
	tputSamples   []float64
	llcWarmCnt    []uint32
}

// coreHot aliases the per-core objects Step touches on every record, so
// the hot loop performs one slice index instead of ten. The canonical
// owners remain the System slices above (the pointers alias, never
// duplicate, their state).
type coreHot struct {
	clk  *cpu.Clock
	bp   *bpred.Hybrid // nil when branch modelling is off
	l1i  *cache.Cache
	pb   *cache.Cache
	mshr *cache.MSHRs
	rng  *trace.RNG
	pf   prefetch.Prefetcher
	// rep devirtualizes OnAccess for the SHIFT replayer, the design
	// point that dominates every figure's grid (nil otherwise).
	rep   *core.Replayer
	fetch *FetchStats
	// warm is the design's functional-warming hook (nil when the design
	// has no history to keep warm); see warmCore in sampling.go.
	warm prefetch.Warmer
}

// buildHot populates the hot aliases; must run after buildPrefetchers.
func (s *System) buildHot() {
	s.hot = make([]coreHot, s.cfg.Cores)
	for i := range s.hot {
		h := &s.hot[i]
		h.clk = s.clocks[i]
		if s.bp != nil {
			h.bp = s.bp[i]
		}
		h.l1i = s.l1i[i]
		h.pb = s.pb[i]
		h.mshr = s.l1mshr[i]
		h.rng = s.rng[i]
		h.pf = s.pf[i]
		h.rep, _ = s.pf[i].(*core.Replayer)
		h.warm, _ = s.pf[i].(prefetch.Warmer)
		h.fetch = &s.fetch[i]
	}
}

// New builds a system over per-core trace readers (len must equal
// cfg.Cores).
func New(cfg Config, readers []trace.Reader) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(readers) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d readers for %d cores", len(readers), cfg.Cores)
	}
	s := &System{cfg: cfg, readers: readers}
	s.fastReaders = make([]*workload.CoreReader, len(readers))
	s.fastViews = make([]*workload.StreamView, len(readers))
	for i, r := range readers {
		switch cr := r.(type) {
		case *workload.CoreReader:
			s.fastReaders[i] = cr
		case *workload.StreamView:
			s.fastViews[i] = cr
		}
	}
	s.dataStep = make([]float64, 4096)
	for i := range s.dataStep {
		s.dataStep[i] = float64(i) * cfg.DataMPKI / 1000
	}
	n := cfg.Cores
	s.done = make([]bool, n)
	s.clocks = make([]*cpu.Clock, n)
	s.l1i = make([]*cache.Cache, n)
	s.pb = make([]*cache.Cache, n)
	s.l1mshr = make([]*cache.MSHRs, n)
	s.rng = make([]*trace.RNG, n)
	s.dataAcc = make([]float64, n)
	s.records = make([]int64, n)
	s.fetch = make([]FetchStats, n)
	s.llcWarmCnt = make([]uint32, n)
	if cfg.BranchPredictorEntries > 0 {
		s.bp = make([]*bpred.Hybrid, n)
	}
	for i := 0; i < n; i++ {
		s.clocks[i] = cpu.NewClock(cfg.CoreType)
		l1, err := cache.New(cfg.L1I)
		if err != nil {
			return nil, err
		}
		s.l1i[i] = l1
		// Fully-associative prefetch buffer: prefetched blocks wait here
		// and move into the L1-I on first demand use, so mispredicted
		// prefetches never pollute the instruction cache (the
		// stream-prefetcher design PIF and SHIFT assume).
		pbEntries := cfg.PrefetchBufferEntries
		if pbEntries == 0 {
			pbEntries = 128
		}
		pbuf, err := cache.New(cache.Config{
			SizeBytes: pbEntries * 64, Assoc: pbEntries, BlockBytes: 64,
		})
		if err != nil {
			return nil, err
		}
		s.pb[i] = pbuf
		s.l1mshr[i] = cache.NewMSHRs(cfg.L1MSHRs)
		s.rng[i] = trace.NewRNG(cfg.Seed*7919 + int64(i))
		if s.bp != nil {
			h, err := bpred.NewHybrid(cfg.BranchPredictorEntries)
			if err != nil {
				return nil, err
			}
			s.bp[i] = h
		}
	}
	s.mesh = noc.MustNew(cfg.Mesh)
	s.tiles = make([]int, n)
	for i := range s.tiles {
		s.tiles[i] = i % cfg.Mesh.Tiles()
	}
	banks := cfg.Mesh.Tiles()
	// Banks are selected by (block mod banks), so bank-local set indexing
	// must skip those low bits.
	shift := uint(0)
	for 1<<shift < banks {
		shift++
	}
	s.llc = make([]*cache.Cache, banks)
	for b := 0; b < banks; b++ {
		bank, err := cache.New(cache.Config{
			SizeBytes: cfg.LLCBankBytes, Assoc: cfg.LLCAssoc,
			BlockBytes: 64, TagPointers: true, IndexShift: shift,
		})
		if err != nil {
			return nil, err
		}
		s.llc[b] = bank
	}
	if err := s.buildPrefetchers(); err != nil {
		return nil, err
	}
	s.buildHot()
	s.adaptEvery = cfg.Prefetcher.AdaptWindow
	if s.adaptEvery <= 0 {
		s.adaptEvery = defaultAdaptWindow
	}
	s.adaptive = cfg.Prefetcher.AdaptiveGenerator && len(s.shared) > 0
	s.base = s.snapshot()
	return s, nil
}

// buildPrefetchers instantiates the configured design point.
func (s *System) buildPrefetchers() error {
	n := s.cfg.Cores
	s.pf = make([]prefetch.Prefetcher, n)
	s.groupOf = make([]int, n)
	spec := s.cfg.Prefetcher
	switch spec.Kind {
	case KindNone:
		for i := range s.pf {
			s.pf[i] = prefetch.NewNull()
		}
	case KindNextLine:
		for i := range s.pf {
			s.pf[i] = prefetch.NewNextLine(spec.NextLineDegree)
		}
	case KindPIF:
		for i := range s.pf {
			p, err := pif.New(spec.PIF)
			if err != nil {
				return err
			}
			s.pf[i] = p
		}
	case KindTIFS:
		for i := range s.pf {
			p, err := tifs.New(spec.TIFS)
			if err != nil {
				return err
			}
			s.pf[i] = p
		}
	case KindSHIFT:
		var backend core.LLCBackend
		if spec.SHIFT.Variant == core.Virtualized {
			backend = (*llcBackend)(s)
		}
		groups := spec.Groups
		if len(groups) == 0 {
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			groups = []core.Group{{Name: "all", Cores: all}}
		}
		base := spec.SHIFT
		shs, err := core.NewGroups(base, groups, backend)
		if err != nil {
			return err
		}
		s.shared = shs
		s.adapt = make([]adaptState, len(shs))
		// Pin every group's history range in every LLC bank. NewGroups
		// allocates consecutive ranges, so the union is contiguous.
		lo, _ := shs[0].Config().HBRange()
		_, hi := shs[len(shs)-1].Config().HBRange()
		if spec.SHIFT.Variant == core.Virtualized {
			for _, bank := range s.llc {
				bank.PinRange(lo, hi)
			}
		}
		for gi, g := range groups {
			for _, c := range g.Cores {
				if c < 0 || c >= n {
					return fmt.Errorf("sim: group %q core %d out of range", g.Name, c)
				}
				s.groupOf[c] = gi
				s.pf[c] = shs[gi].CorePrefetcher(c)
			}
		}
		for i := range s.pf {
			if s.pf[i] == nil {
				return fmt.Errorf("sim: core %d not covered by any group", i)
			}
		}
	default:
		return fmt.Errorf("sim: unknown prefetcher kind %d", spec.Kind)
	}
	return nil
}

// tileOf maps a core to its mesh tile (tiled design: one core and one LLC
// bank per tile). The modulo is precomputed per core at construction.
func (s *System) tileOf(coreID int) int { return s.tiles[coreID] }

// transact models one LLC transaction by core coreID to the bank holding
// blk: accounts one message of class cls with round-trip hops and returns
// (bank, latency). The latency includes the bank hit time; callers add
// memory latency on an LLC miss.
func (s *System) transact(cls noc.MsgClass, coreID int, blk trace.BlockAddr) (bank int, lat int64) {
	bank = s.mesh.BankForBlock(blk)
	t := s.tileOf(coreID)
	hops := s.mesh.Hops(t, bank)
	s.mesh.Account(cls, 2*hops)
	lat = s.cfg.L2HitCycles + int64(2*hops*s.cfg.Mesh.HopCycles)
	return bank, lat
}

// llcFetch performs a demand or prefetch fill from the LLC (or memory on
// an LLC miss), returning the total latency. The combined LookupInsert
// probes the bank's tag index once for the common miss path.
func (s *System) llcFetch(cls noc.MsgClass, coreID int, blk trace.BlockAddr) int64 {
	bank, lat := s.transact(cls, coreID, blk)
	hit, _, _, _ := s.llc[bank].LookupInsert(blk, false)
	if !hit {
		lat += s.cfg.MemCycles
	}
	return lat
}

// Step advances core coreID by one trace record. It reports false when
// the core's trace is exhausted.
func (s *System) Step(coreID int) (bool, error) {
	if s.done[coreID] {
		return false, nil
	}
	var rec trace.Record
	var err error
	if cr := s.fastReaders[coreID]; cr != nil {
		rec, err = cr.Next()
	} else if sv := s.fastViews[coreID]; sv != nil {
		rec, err = sv.Next()
	} else {
		rec, err = s.readers[coreID].Next()
	}
	if err == io.EOF {
		s.done[coreID] = true
		return false, nil
	}
	if err != nil {
		return false, err
	}
	s.records[coreID]++
	h := &s.hot[coreID]
	clk := h.clk

	// Branch direction modelling: every record that does not fall
	// through ends in a taken control transfer. In a batched run the
	// outcome is computed once by the lead member and replayed by the
	// followers (see the bpBuf field doc); the predictor's inputs and
	// state are functions of the shared record stream alone, so the
	// replayed outcome is exactly what a local evaluation would return.
	if h.bp != nil {
		var mis bool
		if s.bpBuf != nil && !s.bpLead {
			mis = s.bpBuf[s.bpPos] != 0
			s.bpPos++
		} else {
			pc := rec.Block.Addr()
			taken := rec.Kind != trace.KindSeq
			mis = h.bp.PredictUpdate(pc, taken) != taken
			if s.bpBuf != nil {
				out := uint8(0)
				if mis {
					out = 1
				}
				s.bpBuf[s.bpPos] = out
				s.bpPos++
			}
		}
		if mis {
			clk.Mispredict()
		}
	}

	now := clk.Now()
	blk := rec.Block
	fs := h.fetch
	fs.Accesses++
	// The L1 fill that follows every L1 miss is folded into the lookup
	// probe; the demand fill is unconditional on a miss, so inserting
	// before the prefetch-buffer/LLC legs below is equivalent (the L1 is
	// not touched again until the next record).
	hit, _, _, _ := h.l1i.LookupInsert(blk, false)
	wasPf := false
	var stall int64
	if !hit {
		if pbHit, _ := h.pb.Extract(blk); pbHit {
			// Covered: the prefetch buffer holds the block. Expose only
			// the remaining in-flight latency, move the block into the
			// L1-I (Extract drains the buffered line in the same probe),
			// and report the access as a prefetch-covered hit.
			fs.PBHits++
			wasPf = true
			hit = true
			if ready, ok := h.mshr.Take(blk); ok {
				if ready > now {
					stall = ready - now
					fs.LatePBHits++
				}
			}
		} else {
			fs.Misses++
			eliminated := s.cfg.ElimProb > 0 && h.rng.Bool(s.cfg.ElimProb)
			lat := s.llcFetch(noc.DemandInstr, coreID, blk)
			if !eliminated {
				stall = lat
			}
		}
	}
	clk.FetchStall(stall)
	clk.Retire(int(rec.Instrs))

	// Prefetcher hook (retire order == access order in this frontend).
	// The SHIFT replayer is called directly when present; other designs
	// go through the interface.
	acc := prefetch.Access{Now: now, Block: blk, Hit: hit, WasPrefetch: wasPf}
	var reqs []prefetch.Request
	if h.rep != nil {
		reqs = h.rep.OnAccess(acc)
	} else {
		reqs = h.pf.OnAccess(acc)
	}
	if s.cfg.Mode == ModePrefetch {
		for _, r := range reqs {
			s.issuePrefetch(coreID, h, r)
		}
	}

	// Background data-side LLC traffic (normalization denominator for
	// the Figure 9 study).
	// Note: the per-record addend must be computed as (instrs*MPKI)/1000 —
	// hoisting the division would change the floating-point rounding and
	// with it the exact record at which the accumulator crosses 1.0,
	// shifting the RNG stream and breaking bit-identical output. dataStep
	// caches that exact expression per retire count.
	// Batch followers replay the lead's recorded (count, hop sum)
	// instead: the accumulator and the draws are functions of the shared
	// record stream alone (see the dsBuf field doc).
	if s.dsBuf != nil && !s.dsLead {
		if d := s.dsBuf[s.dsPos]; d != 0 {
			s.mesh.AccountN(noc.DemandData, int64(d>>32), int64(d&0xFFFFFFFF))
		}
		s.dsPos++
	} else {
		if int(rec.Instrs) < len(s.dataStep) {
			s.dataAcc[coreID] += s.dataStep[rec.Instrs]
		} else {
			s.dataAcc[coreID] += float64(rec.Instrs) * s.cfg.DataMPKI / 1000
		}
		var msgs, hopSum int64
		for s.dataAcc[coreID] >= 1 {
			s.dataAcc[coreID]--
			bank := h.rng.Intn(len(s.llc))
			hops := s.mesh.Hops(s.tileOf(coreID), bank)
			s.mesh.Account(noc.DemandData, 2*hops)
			msgs++
			hopSum += int64(2 * hops)
		}
		if s.dsBuf != nil {
			s.dsBuf[s.dsPos] = uint64(msgs)<<32 | uint64(hopSum)
			s.dsPos++
		}
	}
	h.mshr.Expire(clk.Now())
	return true, nil
}

// issuePrefetch brings r.Block into coreID's prefetch buffer unless it is
// already cached, buffered, or in flight.
func (s *System) issuePrefetch(coreID int, h *coreHot, r prefetch.Request) {
	blk := r.Block
	if h.l1i.Contains(blk) || h.pb.Contains(blk) {
		return
	}
	if _, ok := h.mshr.Lookup(blk); ok {
		return
	}
	issue := h.clk.Now() + r.Delay
	lat := s.llcFetch(noc.PrefetchFill, coreID, blk)
	h.mshr.Allocate(blk, issue, issue+lat)
	if ev, evicted := h.pb.Insert(blk, true); evicted && ev.PrefetchUnused {
		h.fetch.Discards++
		s.mesh.Account(noc.Discard, 0)
	}
}

// Run advances every core by up to `records` records in lockstep
// (round-robin, one record per core per round), preserving the recency
// relationships a real concurrent system would have between the history
// generator and the replaying cores.
func (s *System) Run(records int64) error {
	_, err := s.runRounds(records)
	return err
}

// runRounds advances up to n lockstep rounds, returning the number
// completed (fewer only when every core's trace is exhausted). It is
// the shared inner loop of Run and the batch runner's block-lockstep
// schedule. On the functional fast-forward path the rounds run
// core-major instead (see runRoundsFunctional).
func (s *System) runRounds(n int64) (int64, error) {
	if s.functional {
		return s.runRoundsFunctional(n)
	}
	for r := int64(0); r < n; r++ {
		active, err := s.runRound()
		if err != nil {
			return r, err
		}
		if !active {
			return r, nil
		}
	}
	return n, nil
}

// runRound advances every core by one record and applies the adaptive
// generator check; it reports false when no core made progress. The
// adaptive monitor never sees functional rounds (those run through
// runRoundsFunctional): its coverage signal comes from the prefetch-
// buffer counters functional stepping deliberately freezes.
func (s *System) runRound() (bool, error) {
	active := false
	for c := 0; c < s.cfg.Cores; c++ {
		ok, err := s.Step(c)
		if err != nil {
			return false, err
		}
		active = active || ok
	}
	if !active {
		return false, nil
	}
	s.rounds++
	if s.adaptive && s.rounds%s.adaptEvery == 0 {
		s.checkAdaptive()
	}
	return true, nil
}

// MarkMeasurement snapshots all counters; Results reports deltas from
// this point (warmup exclusion, as in the paper's SimFlex methodology).
func (s *System) MarkMeasurement() { s.base = s.snapshot() }

// Mesh exposes the interconnect (read-only use: traffic inspection).
func (s *System) Mesh() *noc.Mesh { return s.mesh }

// SharedHistories returns SHIFT's shared histories (nil otherwise).
func (s *System) SharedHistories() []*core.SharedHistory { return s.shared }

// LLCPinnedLines returns the total pinned (history) lines across banks.
func (s *System) LLCPinnedLines() int {
	n := 0
	for _, b := range s.llc {
		n += b.PinnedCount()
	}
	return n
}

// llcBackend adapts System to core.LLCBackend for virtualized SHIFT.
type llcBackend System

func (b *llcBackend) sys() *System { return (*System)(b) }

// PointerFor implements core.LLCBackend. The pointer piggybacks on the
// demand fill, so no extra traffic is accounted.
func (b *llcBackend) PointerFor(coreID int, blk trace.BlockAddr) (uint32, bool) {
	s := b.sys()
	bank := s.mesh.BankForBlock(blk)
	return s.llc[bank].Pointer(blk)
}

// UpdatePointer implements core.LLCBackend: an index-update message to
// the bank's tag array.
func (b *llcBackend) UpdatePointer(coreID int, blk trace.BlockAddr, ptr uint32) bool {
	s := b.sys()
	bank, _ := s.transact(noc.IndexUpdate, coreID, blk)
	return s.llc[bank].SetPointer(blk, ptr)
}

// ReadHistoryBlock implements core.LLCBackend: a history-block read
// ("LogRead" traffic) with full LLC round-trip latency.
func (b *llcBackend) ReadHistoryBlock(coreID int, hbBlock trace.BlockAddr) int64 {
	s := b.sys()
	bank, lat := s.transact(noc.HistRead, coreID, hbBlock)
	if !s.llc[bank].Contains(hbBlock) {
		// History blocks are pinned once written; a read before the
		// first write simply installs the (empty) block.
		s.llc[bank].Insert(hbBlock, false)
	}
	return lat
}

// WriteHistoryBlock implements core.LLCBackend: a CBB flush ("LogWrite").
func (b *llcBackend) WriteHistoryBlock(coreID int, hbBlock trace.BlockAddr) int64 {
	s := b.sys()
	bank, lat := s.transact(noc.HistWrite, coreID, hbBlock)
	s.llc[bank].Insert(hbBlock, false)
	return lat
}

var _ core.LLCBackend = (*llcBackend)(nil)
