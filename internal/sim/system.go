package sim

import (
	"fmt"
	"io"

	"shift/internal/bpred"
	"shift/internal/cache"
	"shift/internal/core"
	"shift/internal/cpu"
	"shift/internal/noc"
	"shift/internal/pif"
	"shift/internal/prefetch"
	"shift/internal/tifs"
	"shift/internal/trace"
)

// System is one simulated CMP bound to per-core trace readers.
type System struct {
	cfg Config

	readers []trace.Reader
	done    []bool

	clocks  []*cpu.Clock
	bp      []*bpred.Hybrid
	l1i     []*cache.Cache
	pb      []*cache.Cache // per-core prefetch buffers
	l1mshr  []*cache.MSHRs
	llc     []*cache.Cache
	mesh    *noc.Mesh
	pf      []prefetch.Prefetcher
	shared  []*core.SharedHistory
	groupOf []int // core -> shared history index (SHIFT only)
	rng     []*trace.RNG

	dataAcc []float64
	records []int64
	fetch   []FetchStats
	adapt   []adaptState
	rounds  int64

	base measurement // snapshot at measurement start
}

// New builds a system over per-core trace readers (len must equal
// cfg.Cores).
func New(cfg Config, readers []trace.Reader) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(readers) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d readers for %d cores", len(readers), cfg.Cores)
	}
	s := &System{cfg: cfg, readers: readers}
	n := cfg.Cores
	s.done = make([]bool, n)
	s.clocks = make([]*cpu.Clock, n)
	s.l1i = make([]*cache.Cache, n)
	s.pb = make([]*cache.Cache, n)
	s.l1mshr = make([]*cache.MSHRs, n)
	s.rng = make([]*trace.RNG, n)
	s.dataAcc = make([]float64, n)
	s.records = make([]int64, n)
	s.fetch = make([]FetchStats, n)
	if cfg.BranchPredictorEntries > 0 {
		s.bp = make([]*bpred.Hybrid, n)
	}
	for i := 0; i < n; i++ {
		s.clocks[i] = cpu.NewClock(cfg.CoreType)
		l1, err := cache.New(cfg.L1I)
		if err != nil {
			return nil, err
		}
		s.l1i[i] = l1
		// Fully-associative prefetch buffer: prefetched blocks wait here
		// and move into the L1-I on first demand use, so mispredicted
		// prefetches never pollute the instruction cache (the
		// stream-prefetcher design PIF and SHIFT assume).
		pbEntries := cfg.PrefetchBufferEntries
		if pbEntries == 0 {
			pbEntries = 128
		}
		pbuf, err := cache.New(cache.Config{
			SizeBytes: pbEntries * 64, Assoc: pbEntries, BlockBytes: 64,
		})
		if err != nil {
			return nil, err
		}
		s.pb[i] = pbuf
		s.l1mshr[i] = cache.NewMSHRs(cfg.L1MSHRs)
		s.rng[i] = trace.NewRNG(cfg.Seed*7919 + int64(i))
		if s.bp != nil {
			h, err := bpred.NewHybrid(cfg.BranchPredictorEntries)
			if err != nil {
				return nil, err
			}
			s.bp[i] = h
		}
	}
	s.mesh = noc.MustNew(cfg.Mesh)
	banks := cfg.Mesh.Tiles()
	// Banks are selected by (block mod banks), so bank-local set indexing
	// must skip those low bits.
	shift := uint(0)
	for 1<<shift < banks {
		shift++
	}
	s.llc = make([]*cache.Cache, banks)
	for b := 0; b < banks; b++ {
		bank, err := cache.New(cache.Config{
			SizeBytes: cfg.LLCBankBytes, Assoc: cfg.LLCAssoc,
			BlockBytes: 64, TagPointers: true, IndexShift: shift,
		})
		if err != nil {
			return nil, err
		}
		s.llc[b] = bank
	}
	if err := s.buildPrefetchers(); err != nil {
		return nil, err
	}
	s.base = s.snapshot()
	return s, nil
}

// buildPrefetchers instantiates the configured design point.
func (s *System) buildPrefetchers() error {
	n := s.cfg.Cores
	s.pf = make([]prefetch.Prefetcher, n)
	s.groupOf = make([]int, n)
	spec := s.cfg.Prefetcher
	switch spec.Kind {
	case KindNone:
		for i := range s.pf {
			s.pf[i] = prefetch.NewNull()
		}
	case KindNextLine:
		for i := range s.pf {
			s.pf[i] = prefetch.NewNextLine(spec.NextLineDegree)
		}
	case KindPIF:
		for i := range s.pf {
			p, err := pif.New(spec.PIF)
			if err != nil {
				return err
			}
			s.pf[i] = p
		}
	case KindTIFS:
		for i := range s.pf {
			p, err := tifs.New(spec.TIFS)
			if err != nil {
				return err
			}
			s.pf[i] = p
		}
	case KindSHIFT:
		var backend core.LLCBackend
		if spec.SHIFT.Variant == core.Virtualized {
			backend = (*llcBackend)(s)
		}
		groups := spec.Groups
		if len(groups) == 0 {
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			groups = []core.Group{{Name: "all", Cores: all}}
		}
		base := spec.SHIFT
		shs, err := core.NewGroups(base, groups, backend)
		if err != nil {
			return err
		}
		s.shared = shs
		s.adapt = make([]adaptState, len(shs))
		// Pin every group's history range in every LLC bank. NewGroups
		// allocates consecutive ranges, so the union is contiguous.
		lo, _ := shs[0].Config().HBRange()
		_, hi := shs[len(shs)-1].Config().HBRange()
		if spec.SHIFT.Variant == core.Virtualized {
			for _, bank := range s.llc {
				bank.PinRange(lo, hi)
			}
		}
		for gi, g := range groups {
			for _, c := range g.Cores {
				if c < 0 || c >= n {
					return fmt.Errorf("sim: group %q core %d out of range", g.Name, c)
				}
				s.groupOf[c] = gi
				s.pf[c] = shs[gi].CorePrefetcher(c)
			}
		}
		for i := range s.pf {
			if s.pf[i] == nil {
				return fmt.Errorf("sim: core %d not covered by any group", i)
			}
		}
	default:
		return fmt.Errorf("sim: unknown prefetcher kind %d", spec.Kind)
	}
	return nil
}

// tileOf maps a core to its mesh tile (tiled design: one core and one LLC
// bank per tile).
func (s *System) tileOf(coreID int) int { return coreID % s.cfg.Mesh.Tiles() }

// transact models one LLC transaction by core coreID to the bank holding
// blk: accounts one message of class cls with round-trip hops and returns
// (bank, latency). The latency includes the bank hit time; callers add
// memory latency on an LLC miss.
func (s *System) transact(cls noc.MsgClass, coreID int, blk trace.BlockAddr) (bank int, lat int64) {
	bank = s.mesh.BankForBlock(blk)
	t := s.tileOf(coreID)
	hops := s.mesh.Hops(t, bank)
	s.mesh.Account(cls, 2*hops)
	lat = s.cfg.L2HitCycles + int64(2*hops*s.cfg.Mesh.HopCycles)
	return bank, lat
}

// llcFetch performs a demand or prefetch fill from the LLC (or memory on
// an LLC miss), returning the total latency.
func (s *System) llcFetch(cls noc.MsgClass, coreID int, blk trace.BlockAddr) int64 {
	bank, lat := s.transact(cls, coreID, blk)
	hit, _ := s.llc[bank].Lookup(blk)
	if !hit {
		lat += s.cfg.MemCycles
		s.llc[bank].Insert(blk, false)
	}
	return lat
}

// Step advances core coreID by one trace record. It reports false when
// the core's trace is exhausted.
func (s *System) Step(coreID int) (bool, error) {
	if s.done[coreID] {
		return false, nil
	}
	rec, err := s.readers[coreID].Next()
	if err == io.EOF {
		s.done[coreID] = true
		return false, nil
	}
	if err != nil {
		return false, err
	}
	s.records[coreID]++
	clk := s.clocks[coreID]

	// Branch direction modelling: every record that does not fall
	// through ends in a taken control transfer.
	if s.bp != nil {
		pc := rec.Block.Addr()
		taken := rec.Kind != trace.KindSeq
		if s.bp[coreID].Predict(pc) != taken {
			clk.Mispredict()
		}
		s.bp[coreID].Update(pc, taken)
	}

	now := clk.Now()
	blk := rec.Block
	fs := &s.fetch[coreID]
	fs.Accesses++
	hit, _ := s.l1i[coreID].Lookup(blk)
	wasPf := false
	var stall int64
	if !hit {
		if pbHit, _ := s.pb[coreID].Lookup(blk); pbHit {
			// Covered: the prefetch buffer holds the block. Expose only
			// the remaining in-flight latency, move the block into the
			// L1-I, and report the access as a prefetch-covered hit.
			fs.PBHits++
			wasPf = true
			hit = true
			if ready, ok := s.l1mshr[coreID].Lookup(blk); ok {
				if ready > now {
					stall = ready - now
					fs.LatePBHits++
				}
				s.l1mshr[coreID].Complete(blk)
			}
			s.pb[coreID].Invalidate(blk)
			s.l1i[coreID].Insert(blk, false)
		} else {
			fs.Misses++
			eliminated := s.cfg.ElimProb > 0 && s.rng[coreID].Bool(s.cfg.ElimProb)
			lat := s.llcFetch(noc.DemandInstr, coreID, blk)
			if !eliminated {
				stall = lat
			}
			s.l1i[coreID].Insert(blk, false)
		}
	}
	clk.FetchStall(stall)
	clk.Retire(int(rec.Instrs))

	// Prefetcher hook (retire order == access order in this frontend).
	reqs := s.pf[coreID].OnAccess(prefetch.Access{
		Now: now, Block: blk, Hit: hit, WasPrefetch: wasPf,
	})
	if s.cfg.Mode == ModePrefetch {
		for _, r := range reqs {
			s.issuePrefetch(coreID, r)
		}
	}

	// Background data-side LLC traffic (normalization denominator for
	// the Figure 9 study).
	s.dataAcc[coreID] += float64(rec.Instrs) * s.cfg.DataMPKI / 1000
	for s.dataAcc[coreID] >= 1 {
		s.dataAcc[coreID]--
		bank := s.rng[coreID].Intn(len(s.llc))
		hops := s.mesh.Hops(s.tileOf(coreID), bank)
		s.mesh.Account(noc.DemandData, 2*hops)
	}
	s.l1mshr[coreID].Expire(clk.Now())
	return true, nil
}

// issuePrefetch brings r.Block into coreID's prefetch buffer unless it is
// already cached, buffered, or in flight.
func (s *System) issuePrefetch(coreID int, r prefetch.Request) {
	blk := r.Block
	if s.l1i[coreID].Contains(blk) || s.pb[coreID].Contains(blk) {
		return
	}
	if _, ok := s.l1mshr[coreID].Lookup(blk); ok {
		return
	}
	issue := s.clocks[coreID].Now() + r.Delay
	lat := s.llcFetch(noc.PrefetchFill, coreID, blk)
	s.l1mshr[coreID].Allocate(blk, issue, issue+lat)
	if ev, evicted := s.pb[coreID].Insert(blk, true); evicted && ev.PrefetchUnused {
		s.fetch[coreID].Discards++
		s.mesh.Account(noc.Discard, 0)
	}
}

// Run advances every core by up to `records` records in lockstep
// (round-robin, one record per core per round), preserving the recency
// relationships a real concurrent system would have between the history
// generator and the replaying cores.
func (s *System) Run(records int64) error {
	window := s.cfg.Prefetcher.AdaptWindow
	if window <= 0 {
		window = defaultAdaptWindow
	}
	adaptive := s.cfg.Prefetcher.AdaptiveGenerator && len(s.shared) > 0
	for r := int64(0); r < records; r++ {
		active := false
		for c := 0; c < s.cfg.Cores; c++ {
			ok, err := s.Step(c)
			if err != nil {
				return err
			}
			active = active || ok
		}
		if !active {
			return nil
		}
		s.rounds++
		if adaptive && s.rounds%window == 0 {
			s.checkAdaptive()
		}
	}
	return nil
}

// MarkMeasurement snapshots all counters; Results reports deltas from
// this point (warmup exclusion, as in the paper's SimFlex methodology).
func (s *System) MarkMeasurement() { s.base = s.snapshot() }

// Mesh exposes the interconnect (read-only use: traffic inspection).
func (s *System) Mesh() *noc.Mesh { return s.mesh }

// SharedHistories returns SHIFT's shared histories (nil otherwise).
func (s *System) SharedHistories() []*core.SharedHistory { return s.shared }

// LLCPinnedLines returns the total pinned (history) lines across banks.
func (s *System) LLCPinnedLines() int {
	n := 0
	for _, b := range s.llc {
		n += b.PinnedCount()
	}
	return n
}

// llcBackend adapts System to core.LLCBackend for virtualized SHIFT.
type llcBackend System

func (b *llcBackend) sys() *System { return (*System)(b) }

// PointerFor implements core.LLCBackend. The pointer piggybacks on the
// demand fill, so no extra traffic is accounted.
func (b *llcBackend) PointerFor(coreID int, blk trace.BlockAddr) (uint32, bool) {
	s := b.sys()
	bank := s.mesh.BankForBlock(blk)
	return s.llc[bank].Pointer(blk)
}

// UpdatePointer implements core.LLCBackend: an index-update message to
// the bank's tag array.
func (b *llcBackend) UpdatePointer(coreID int, blk trace.BlockAddr, ptr uint32) bool {
	s := b.sys()
	bank, _ := s.transact(noc.IndexUpdate, coreID, blk)
	return s.llc[bank].SetPointer(blk, ptr)
}

// ReadHistoryBlock implements core.LLCBackend: a history-block read
// ("LogRead" traffic) with full LLC round-trip latency.
func (b *llcBackend) ReadHistoryBlock(coreID int, hbBlock trace.BlockAddr) int64 {
	s := b.sys()
	bank, lat := s.transact(noc.HistRead, coreID, hbBlock)
	if !s.llc[bank].Contains(hbBlock) {
		// History blocks are pinned once written; a read before the
		// first write simply installs the (empty) block.
		s.llc[bank].Insert(hbBlock, false)
	}
	return lat
}

// WriteHistoryBlock implements core.LLCBackend: a CBB flush ("LogWrite").
func (b *llcBackend) WriteHistoryBlock(coreID int, hbBlock trace.BlockAddr) int64 {
	s := b.sys()
	bank, lat := s.transact(noc.HistWrite, coreID, hbBlock)
	s.llc[bank].Insert(hbBlock, false)
	return lat
}

var _ core.LLCBackend = (*llcBackend)(nil)
