package sim

import (
	"reflect"
	"testing"

	"shift/internal/core"
	"shift/internal/pif"
	"shift/internal/tifs"
	"shift/internal/workload"
)

// batchDesigns returns one spec per design point over the shared test
// stream, with deliberate variety in the design-independent degrees of
// freedom a batch must tolerate: seeds, modes, and ElimProb.
func batchDesigns() []RunSpec {
	mk := func(mut func(*Config)) RunSpec {
		cfg := testConfig()
		mut(&cfg)
		return testSpec(cfg)
	}
	specs := []RunSpec{
		mk(func(c *Config) {}),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindNextLine, NextLineDegree: 1} }),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config2K()} }),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config32K()} }),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Dedicated)} }),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)} }),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindTIFS, TIFS: tifs.DefaultConfig()} }),
		mk(func(c *Config) { c.Seed = 42; c.ElimProb = 0.5 }),
		mk(func(c *Config) {
			c.Mode = ModePrediction
			c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
		}),
	}
	return specs
}

// TestRunBatchMatchesRun is the batched ≡ unbatched differential: every
// design point (plus seed/mode/elim variants) simulated in one batched
// pass must be bit-identical to its standalone Run. The "uniform" batch
// (designs only — equal seeds, no elimination) exercises the fully
// shared frontend (stream + branch predictor + data traffic); the
// "mixed" batch adds members that force the data-side sharing off and
// checks the partial-sharing fallbacks.
func TestRunBatchMatchesRun(t *testing.T) {
	all := batchDesigns()
	for _, tc := range []struct {
		name  string
		specs []RunSpec
	}{
		{"uniform", all[:7]},
		{"mixed", all},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batched, err := RunBatch(tc.specs)
			if err != nil {
				t.Fatal(err)
			}
			if len(batched) != len(tc.specs) {
				t.Fatalf("%d results for %d specs", len(batched), len(tc.specs))
			}
			for i, spec := range tc.specs {
				solo, err := Run(spec)
				if err != nil {
					t.Fatalf("spec %d: %v", i, err)
				}
				if !reflect.DeepEqual(batched[i], solo) {
					t.Errorf("spec %d (%s): batched result differs from Run", i, spec.Config.Prefetcher.Name())
				}
			}
		})
	}
}

// TestRunBatchMixedPredictors checks the no-shared-bp fallback: members
// with different branch-predictor sizes still batch (the stream is the
// same) and still match their standalone runs exactly.
func TestRunBatchMixedPredictors(t *testing.T) {
	a := testConfig()
	b := testConfig()
	b.BranchPredictorEntries = 4096
	c := testConfig()
	c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config2K()}
	c.BranchPredictorEntries = 0 // no branch modelling at all
	specs := []RunSpec{testSpec(a), testSpec(b), testSpec(c)}
	batched, err := RunBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		solo, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("spec %d: mixed-predictor batch diverged from Run", i)
		}
	}
}

// TestRunBatchGroups runs a consolidated (multi-group) batch and
// checks it against standalone runs.
func TestRunBatchGroups(t *testing.T) {
	wlA := testWorkload()
	wlB := testWorkload()
	wlB.Name = "sim-test-B"
	wlB.Seed = 99
	mk := func(mut func(*Config)) RunSpec {
		cfg := testConfig()
		mut(&cfg)
		return RunSpec{
			Config: cfg,
			Groups: []core.Group{
				{Name: "A", Cores: []int{0, 1}},
				{Name: "B", Cores: []int{2, 3}},
			},
			GroupWorkloads: []workload.Params{wlA, wlB},
			WarmupRecords:  10000,
			MeasureRecords: 15000,
		}
	}
	specs := []RunSpec{
		mk(func(c *Config) {}),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)} }),
		mk(func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config2K()} }),
	}
	batched, err := RunBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		solo, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("group spec %d: batched result differs from Run", i)
		}
	}
}

// TestRunBatchSingleAndEmpty covers the degenerate batch sizes.
func TestRunBatchSingleAndEmpty(t *testing.T) {
	if rs, err := RunBatch(nil); err != nil || rs != nil {
		t.Fatalf("empty batch: %v, %v", rs, err)
	}
	spec := testSpec(testConfig())
	rs, err := RunBatch([]RunSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs[0], solo) {
		t.Error("single-spec batch differs from Run")
	}
}

// TestRunBatchRejectsMismatchedStreams asserts incompatible specs are
// refused with the offending index named.
func TestRunBatchRejectsMismatchedStreams(t *testing.T) {
	base := testSpec(testConfig())
	muts := []func(*RunSpec){
		func(s *RunSpec) { s.Workload.Seed++ },
		func(s *RunSpec) { s.Workload.Name = "other" },
		func(s *RunSpec) { s.WarmupRecords++ },
		func(s *RunSpec) { s.MeasureRecords++ },
		func(s *RunSpec) { s.Config.Cores = 2 },
	}
	for i, mut := range muts {
		bad := base
		mut(&bad)
		if _, err := RunBatch([]RunSpec{base, bad}); err == nil {
			t.Errorf("mutation %d: mismatched batch accepted", i)
		}
	}
	invalid := base
	invalid.MeasureRecords = 0
	if _, err := RunBatch([]RunSpec{base, invalid}); err == nil {
		t.Error("invalid spec accepted in batch")
	}
}
