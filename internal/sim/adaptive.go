package sim

// Adaptive generator rotation (paper Section 6.1): "In case of a
// long-lasting deviation in the program control flow of the history
// generator core, a sampling mechanism that monitors the instruction miss
// coverage and changes the history generator core accordingly can
// overcome the disturbance."
//
// The monitor samples each shared history's aggregate miss coverage over
// fixed windows of lockstep rounds. If a window's coverage falls below a
// fraction of the best coverage seen so far, the generator role rotates
// to the next core of the group. The best-seen value decays slowly so the
// monitor adapts to genuine phase changes instead of rotating forever.

// defaultAdaptWindow is the sampling window in lockstep rounds.
const defaultAdaptWindow = 8192

// adaptDegradeFraction triggers rotation when windowed coverage drops
// below this fraction of the (decayed) best.
const adaptDegradeFraction = 0.7

// adaptBestDecay is applied to the best-seen coverage each window.
const adaptBestDecay = 0.999

// adaptCooldownWindows suppresses further rotations while a fresh
// generator warms the history back up.
const adaptCooldownWindows = 3

// adaptState tracks one shared history's coverage window.
type adaptState struct {
	prevCovered int64
	prevMisses  int64
	best        float64
	nextIdx     int // index into the group's core list for rotation
	cooldown    int // windows remaining before the next rotation is allowed
}

// checkAdaptive samples coverage and rotates degraded generators. Called
// from Run every AdaptWindow rounds when AdaptiveGenerator is enabled.
func (s *System) checkAdaptive() {
	for gi := range s.shared {
		st := &s.adapt[gi]
		// Health signal: the fraction of would-be misses covered by the
		// prefetch buffer (PBHits / (PBHits + effective misses)), summed
		// over the group's cores. In prefetch mode this is the quantity
		// the paper's Figure 7 calls "covered".
		var covered, misses int64
		for c := 0; c < s.cfg.Cores; c++ {
			if s.groupOf[c] != gi {
				continue
			}
			covered += s.fetch[c].PBHits
			misses += s.fetch[c].PBHits + s.fetch[c].Misses
		}
		dCov := covered - st.prevCovered
		dMiss := misses - st.prevMisses
		st.prevCovered, st.prevMisses = covered, misses
		if dMiss < 100 {
			continue // too few misses in the window to judge
		}
		if st.cooldown > 0 {
			st.cooldown--
			continue // let a fresh generator warm the history up
		}
		cov := float64(dCov) / float64(dMiss)
		if cov > st.best {
			st.best = cov
		} else {
			st.best *= adaptBestDecay
		}
		if st.best > 0 && cov < st.best*adaptDegradeFraction {
			s.rotateGenerator(gi, st)
			// Re-learn what "good" looks like under the new generator so
			// the ramp-up is not mistaken for degradation.
			st.best = 0
			st.cooldown = adaptCooldownWindows
		}
	}
}

// rotateGenerator hands the group's recording role to its next core.
func (s *System) rotateGenerator(gi int, st *adaptState) {
	cores := s.groupCores(gi)
	if len(cores) < 2 {
		return
	}
	cur := s.shared[gi].Generator()
	// Advance past the current generator.
	st.nextIdx = (st.nextIdx + 1) % len(cores)
	if cores[st.nextIdx] == cur {
		st.nextIdx = (st.nextIdx + 1) % len(cores)
	}
	s.shared[gi].SetGenerator(cores[st.nextIdx])
}

// groupCores lists the cores of shared-history group gi.
func (s *System) groupCores(gi int) []int {
	var out []int
	for c := 0; c < s.cfg.Cores; c++ {
		if s.groupOf[c] == gi {
			out = append(out, c)
		}
	}
	return out
}
