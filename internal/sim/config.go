// Package sim is the full-system simulator: it binds the synthetic
// workload traces, the per-core frontends (clock + branch predictor +
// L1-I), the banked NUCA LLC, the mesh interconnect, and a prefetcher
// design point into the 16-core tiled CMP of Table I, and runs them in
// lockstep to produce the measurements behind every figure of the paper.
//
// Two modes mirror the paper's two methodologies:
//
//   - ModePrefetch (default): prefetches are actually issued into the
//     L1-I, perturbing cache state; covered/uncovered/overpredicted come
//     from cache-level accounting (Figures 7-10).
//   - ModePrediction: prefetch requests are suppressed and only the
//     stream-address-buffer bookkeeping runs, exactly like the paper's
//     trace-based opportunity studies ("we only track the predictions
//     ... and do not prefetch or perturb the instruction cache state",
//     Section 5.2; used for Figures 3 and 6).
package sim

import (
	"fmt"

	"shift/internal/cache"
	"shift/internal/core"
	"shift/internal/cpu"
	"shift/internal/noc"
	"shift/internal/pif"
	"shift/internal/tifs"
)

// Mode selects the simulation methodology.
type Mode int

const (
	// ModePrefetch issues prefetches into the L1-I.
	ModePrefetch Mode = iota
	// ModePrediction only tracks would-be predictions.
	ModePrediction
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePrefetch:
		return "prefetch"
	case ModePrediction:
		return "prediction"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// PrefetcherKind selects the prefetcher design point.
type PrefetcherKind int

const (
	// KindNone is the no-prefetch baseline.
	KindNone PrefetcherKind = iota
	// KindNextLine is the next-line prefetcher of Section 2.2.
	KindNextLine
	// KindPIF is per-core Proactive Instruction Fetch.
	KindPIF
	// KindSHIFT is the shared-history prefetcher (both variants).
	KindSHIFT
	// KindTIFS is the miss-stream predecessor of PIF (extension; not in
	// the paper's evaluated set).
	KindTIFS
)

// String names the kind.
func (k PrefetcherKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindNextLine:
		return "nextline"
	case KindPIF:
		return "pif"
	case KindSHIFT:
		return "shift"
	case KindTIFS:
		return "tifs"
	default:
		return fmt.Sprintf("PrefetcherKind(%d)", int(k))
	}
}

// PrefetcherSpec fully describes the prefetcher configuration of a run.
type PrefetcherSpec struct {
	// Kind selects the design.
	Kind PrefetcherKind
	// NextLineDegree configures KindNextLine (default 1).
	NextLineDegree int
	// PIF configures KindPIF (per-core instances share nothing).
	PIF pif.Config
	// TIFS configures KindTIFS.
	TIFS tifs.Config
	// SHIFT configures KindSHIFT.
	SHIFT core.Config
	// Groups optionally consolidates the CMP into multiple workloads,
	// one shared history each (Section 4.3). Empty means a single
	// homogeneous workload across all cores.
	Groups []core.Group
	// AdaptiveGenerator enables the Section 6.1 sampling mechanism that
	// monitors miss coverage and rotates the history generator core on
	// long-lasting degradation. AdaptWindow is the sampling window in
	// lockstep rounds (default 8192).
	AdaptiveGenerator bool
	AdaptWindow       int64
}

// Name returns the design-point label used in figures.
func (p PrefetcherSpec) Name() string {
	switch p.Kind {
	case KindNone:
		return "Baseline"
	case KindNextLine:
		return "NextLine"
	case KindPIF:
		return p.PIF.Name()
	case KindTIFS:
		return "TIFS"
	case KindSHIFT:
		return p.SHIFT.Variant.String()
	default:
		return p.Kind.String()
	}
}

// Config describes one simulated system (Table I defaults via
// DefaultConfig).
type Config struct {
	// Cores is the core count (16 in the paper).
	Cores int
	// CoreType selects the core microarchitecture.
	CoreType cpu.CoreType
	// L1I is the per-core instruction cache geometry.
	L1I cache.Config
	// L1MSHRs is the per-core L1 MSHR count (Table I lists 32 for L1-D;
	// the same file is used for the fetch path here).
	L1MSHRs int
	// LLCBankBytes and LLCAssoc size each of the 16 NUCA banks
	// (512KB per core, 16-way).
	LLCBankBytes int
	LLCAssoc     int
	// Mesh is the interconnect geometry.
	Mesh noc.Config
	// L2HitCycles is the LLC bank hit latency (Table I: 5).
	L2HitCycles int64
	// MemCycles is main memory latency in cycles (Table I: 45ns at
	// 2GHz = 90).
	MemCycles int64
	// BranchPredictorEntries sizes the hybrid predictor (Table I: 16K).
	// Zero disables branch modelling.
	BranchPredictorEntries int
	// PrefetchBufferEntries sizes the per-core prefetch buffer that
	// holds prefetched blocks until first demand use. It must cover the
	// in-flight window of the stream prefetchers (4 streams x ~5 regions
	// x ~3.5 blocks); default 128.
	PrefetchBufferEntries int
	// Prefetcher is the design point under test.
	Prefetcher PrefetcherSpec
	// Mode selects prefetch vs prediction-only simulation.
	Mode Mode
	// ElimProb converts each instruction miss into a hit with this
	// probability without exposing its latency (the Figure 1
	// methodology). Zero disables.
	ElimProb float64
	// DataMPKI is the background data-side LLC traffic rate in accesses
	// per kilo-instruction, used to normalize Figure 9 against total
	// baseline LLC traffic (a documented substitution for the paper's
	// full data-path simulation).
	DataMPKI float64
	// Seed drives the simulator's internal randomness (miss elimination
	// sampling, data-traffic bank spreading).
	Seed int64
}

// DefaultConfig returns the Table I system with the baseline (no
// prefetching) design.
func DefaultConfig() Config {
	return Config{
		Cores:    16,
		CoreType: cpu.LeanOoO,
		L1I:      cache.Config{SizeBytes: 32 * 1024, Assoc: 2, BlockBytes: 64},
		L1MSHRs:  32,
		// 512KB per core, 16 banks, 16-way.
		LLCBankBytes:           512 * 1024,
		LLCAssoc:               16,
		Mesh:                   noc.DefaultConfig(),
		L2HitCycles:            5,
		MemCycles:              90,
		BranchPredictorEntries: 16384,
		PrefetchBufferEntries:  128,
		Prefetcher:             PrefetcherSpec{Kind: KindNone},
		DataMPKI:               12,
		Seed:                   1,
	}
}

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: Cores %d <= 0", c.Cores)
	}
	if err := c.Mesh.Validate(); err != nil {
		return err
	}
	if c.Cores > c.Mesh.Tiles() {
		return fmt.Errorf("sim: %d cores exceed %d mesh tiles", c.Cores, c.Mesh.Tiles())
	}
	if err := c.L1I.Validate(); err != nil {
		return fmt.Errorf("sim: L1I: %w", err)
	}
	bank := cache.Config{SizeBytes: c.LLCBankBytes, Assoc: c.LLCAssoc, BlockBytes: 64}
	if err := bank.Validate(); err != nil {
		return fmt.Errorf("sim: LLC bank: %w", err)
	}
	if c.L1MSHRs <= 0 {
		return fmt.Errorf("sim: L1MSHRs %d <= 0", c.L1MSHRs)
	}
	if c.PrefetchBufferEntries < 0 {
		return fmt.Errorf("sim: PrefetchBufferEntries %d < 0", c.PrefetchBufferEntries)
	}
	if c.L2HitCycles < 0 || c.MemCycles < 0 {
		return fmt.Errorf("sim: negative latency")
	}
	if c.ElimProb < 0 || c.ElimProb > 1 {
		return fmt.Errorf("sim: ElimProb %v out of [0,1]", c.ElimProb)
	}
	if c.DataMPKI < 0 {
		return fmt.Errorf("sim: DataMPKI %v < 0", c.DataMPKI)
	}
	if !c.CoreType.Valid() {
		return fmt.Errorf("sim: invalid core type %d", c.CoreType)
	}
	switch c.Prefetcher.Kind {
	case KindNone, KindNextLine:
	case KindPIF:
		if err := c.Prefetcher.PIF.Validate(); err != nil {
			return err
		}
	case KindSHIFT:
		if err := c.Prefetcher.SHIFT.Validate(); err != nil {
			return err
		}
	case KindTIFS:
		if err := c.Prefetcher.TIFS.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("sim: unknown prefetcher kind %d", c.Prefetcher.Kind)
	}
	return nil
}
