package sim

import (
	"testing"

	"shift/internal/core"
	"shift/internal/trace"
	"shift/internal/workload"
)

// switchReader yields from a until `after` records, then from b — the
// Section 6.1 scenario of a generator core whose control flow deviates
// for a long time (descheduled thread, different work).
type switchReader struct {
	a, b  trace.Reader
	after int64
	n     int64
}

func (s *switchReader) Next() (trace.Record, error) {
	s.n++
	if s.n <= s.after {
		return s.a.Next()
	}
	return s.b.Next()
}

// TestAdaptiveGeneratorRecovers models a generator core that starts
// healthy and then permanently deviates to unrelated code: the shared
// history it records becomes useless to the other cores. With the
// Section 6.1 adaptive monitor enabled, the generator role must rotate
// away and the healthy cores' coverage must recover; without it, coverage
// stays collapsed.
func TestAdaptiveGeneratorRecovers(t *testing.T) {
	main := testWorkload()
	alien := testWorkload()
	alien.Name = "alien"
	alien.Seed = 909 // different code layout entirely

	build := func(adaptive bool) (*System, error) {
		cfg := testConfig()
		sh := smallSHIFT(core.Dedicated)
		sh.GeneratorCore = 0
		cfg.Prefetcher = PrefetcherSpec{
			Kind: KindSHIFT, SHIFT: sh,
			AdaptiveGenerator: adaptive, AdaptWindow: 4096,
		}
		wm, err := workload.New(main)
		if err != nil {
			return nil, err
		}
		wa, err := workload.New(alien)
		if err != nil {
			return nil, err
		}
		readers := make([]trace.Reader, cfg.Cores)
		// The generator deviates after 15K records.
		readers[0] = &switchReader{a: wm.NewCoreReader(0), b: wa.NewCoreReader(0), after: 15000}
		for i := 1; i < cfg.Cores; i++ {
			readers[i] = wm.NewCoreReader(i)
		}
		return New(cfg, readers)
	}

	coverage := func(adaptive bool) (float64, int64) {
		sys, err := build(adaptive)
		if err != nil {
			t.Fatal(err)
		}
		// Healthy phase + deviation + time for detection and re-warm.
		if err := sys.Run(40000); err != nil {
			t.Fatal(err)
		}
		sys.MarkMeasurement()
		if err := sys.Run(30000); err != nil {
			t.Fatal(err)
		}
		res := sys.Results()
		// Coverage among the healthy cores only (1..N-1): prefetch-buffer
		// hits over would-be misses.
		var covered, misses int64
		for i := 1; i < res.Cores; i++ {
			covered += res.PerCore[i].Fetch.PBHits
			misses += res.PerCore[i].Fetch.PBHits + res.PerCore[i].Fetch.Misses
		}
		return float64(covered) / float64(misses), sys.SharedHistories()[0].Rotations()
	}

	stuckCov, stuckRot := coverage(false)
	adaptCov, adaptRot := coverage(true)

	if stuckRot != 0 {
		t.Errorf("non-adaptive run rotated %d times", stuckRot)
	}
	if adaptRot == 0 {
		t.Fatal("adaptive monitor never rotated away from the broken generator")
	}
	if adaptCov <= stuckCov+0.2 {
		t.Errorf("adaptive coverage %.2f did not clearly beat stuck coverage %.2f",
			adaptCov, stuckCov)
	}
}

// TestAdaptiveQuietWhenHealthy verifies the monitor does not thrash when
// the generator is fine: rotations on a homogeneous workload stay rare.
func TestAdaptiveQuietWhenHealthy(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{
		Kind: KindSHIFT, SHIFT: smallSHIFT(core.Dedicated),
		AdaptiveGenerator: true, AdaptWindow: 4096,
	}
	res, err := Run(RunSpec{
		Config: cfg, Workload: testWorkload(),
		WarmupRecords: 20000, MeasureRecords: 40000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pf.CoveredMisses == 0 {
		t.Error("no coverage with adaptive monitor enabled")
	}
}

// TestSetGeneratorIdempotent checks the handover API directly.
func TestSetGeneratorIdempotent(t *testing.T) {
	sh := core.MustNewSharedHistory(smallSHIFT(core.Dedicated), nil)
	if sh.Generator() != 0 {
		t.Fatalf("initial generator = %d", sh.Generator())
	}
	sh.SetGenerator(0) // no-op
	if sh.Rotations() != 0 {
		t.Error("self-handover counted as rotation")
	}
	sh.SetGenerator(5)
	if sh.Generator() != 5 || sh.Rotations() != 1 {
		t.Errorf("generator=%d rotations=%d", sh.Generator(), sh.Rotations())
	}
}
