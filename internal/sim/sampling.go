package sim

import (
	"fmt"
	"io"
	"math"

	"shift/internal/core"
	"shift/internal/tifs"
	"shift/internal/trace"
)

// This file implements SMARTS-style interval sampling: instead of
// stepping the full detailed model over every record of the measurement
// window, a sampled run alternates short detailed intervals with cheap
// functional fast-forwarding, and reports each metric together with the
// dispersion of its per-interval samples (standard error and a
// confidence interval).
//
// The schedule is deterministic — a pure function of the Sampling
// policy and the window lengths — so a sampled run is exactly as
// reproducible as an exact one: same policy, same seed, same stream →
// bit-identical Result, standalone or batched (RunBatch members share
// the schedule round for round).
//
// The functional stepping path (System.warmCore) keeps the
// slow-warming state learning while the clock stands still:
//
//   - the branch predictor keeps evolving (a pure function of the
//     record stream);
//   - the L1-I content keeps evolving through the identical demand
//     lookup/insert the detailed path performs (content is a pure
//     function of the record stream — prefetches fill a separate
//     buffer, never the L1-I — so functional and detailed stepping
//     leave bit-identical instruction caches);
//   - prefetcher history generation keeps appending through the
//     design's prefetch.Warmer hook (region compaction, history and
//     index writes).
//
// Everything that is timing, traffic, or replay bookkeeping is
// skipped: cycle accounting, exposed-stall computation, MSHR
// allocation/expiry, prefetch issue, the stream-address-buffer replay
// machinery, NoC message/hop accounting, background data-side traffic
// (and its RNG draws — functional rounds are RNG-neutral), and the
// per-record statistics counters. Those structures re-warm during each
// interval's detailed-warmup prefix, which is exactly what the warmup
// fraction of the policy buys.

// Sampling configures interval sampling for a run. The zero value (and
// any Period below 2) means exact simulation: every record is stepped
// through the full detailed model, which remains the default
// everywhere.
type Sampling struct {
	// Period is the sampling period in intervals: one interval of every
	// Period is simulated in detail and measured; the remaining
	// Period-1 are fast-forwarded with functional warming. 0 or 1
	// disables sampling (exact simulation).
	Period int64
	// IntervalRecords is the length of one interval in records per core
	// (equivalently, lockstep rounds). 0 means the default (500).
	IntervalRecords int64
	// WarmupFraction is the fraction of IntervalRecords simulated in
	// detail — but excluded from measurement — immediately before each
	// measured interval, re-warming the timing structures (prefetch
	// buffer, MSHRs, replay streams) that functional fast-forwarding
	// froze. 0 means the default (0.25); it must stay below 1.
	WarmupFraction float64
	// Confidence selects the confidence level of the reported
	// per-metric intervals: 0.90, 0.95, or 0.99. 0 means the default
	// (0.95).
	Confidence float64
}

// Default policy knobs (applied by withDefaults when a field is zero).
const (
	defaultIntervalRecords = 500
	defaultWarmupFraction  = 0.25
	defaultConfidence      = 0.95
)

// Functional LLC warming runs in two zones per gap (see segments): far
// from the next detailed interval, every llcFarStride-th L1-missed
// record per core performs the demand lookup/insert on its LLC bank —
// enough to keep megabyte-scale bank contents tracking the access
// stream at a fraction of the probe cost — while the final
// llcNearRounds of each gap warm on every miss, so the interval opens
// on a bank state whose recent working set matches what continuous
// detailed simulation would have inserted. Both are powers of two /
// fixed constants, so the schedule stays a pure function of the
// policy.
const (
	llcFarStride  = 8
	llcNearRounds = 3072
)

// Enabled reports whether the policy actually samples (Period >= 2).
func (p Sampling) Enabled() bool { return p.Period > 1 }

// Normalized returns the policy in canonical form: a disabled policy
// collapses to the zero value and an enabled one has its defaults
// filled in, so policies that run identically compare — and hash —
// equal. Storage keys and batch compatibility are computed over the
// normalized form.
func (p Sampling) Normalized() Sampling {
	if !p.Enabled() {
		return Sampling{}
	}
	return p.withDefaults()
}

// scheduleEqual reports whether two policies lay out the identical
// lockstep schedule; Confidence only affects how the error bounds are
// reported, never a single simulated record.
func (p Sampling) scheduleEqual(o Sampling) bool {
	p, o = p.Normalized(), o.Normalized()
	p.Confidence, o.Confidence = 0, 0
	return p == o
}

// withDefaults fills zero fields of an enabled policy.
func (p Sampling) withDefaults() Sampling {
	if !p.Enabled() {
		return p
	}
	if p.IntervalRecords == 0 {
		p.IntervalRecords = defaultIntervalRecords
	}
	if p.WarmupFraction == 0 {
		p.WarmupFraction = defaultWarmupFraction
	}
	if p.Confidence == 0 {
		p.Confidence = defaultConfidence
	}
	return p
}

// Validate reports the first problem with p, or nil. A disabled policy
// is always valid.
func (p Sampling) Validate() error {
	if p.Period < 0 {
		return fmt.Errorf("sim: sampling Period %d < 0", p.Period)
	}
	if !p.Enabled() {
		return nil
	}
	if p.IntervalRecords < 0 {
		return fmt.Errorf("sim: sampling IntervalRecords %d < 0", p.IntervalRecords)
	}
	if p.WarmupFraction < 0 || p.WarmupFraction >= 1 {
		return fmt.Errorf("sim: sampling WarmupFraction %v out of [0,1)", p.WarmupFraction)
	}
	switch p.Confidence {
	case 0, 0.90, 0.95, 0.99:
	default:
		return fmt.Errorf("sim: sampling Confidence %v (want 0.90, 0.95, or 0.99)", p.Confidence)
	}
	return nil
}

// z returns the normal quantile for the policy's confidence level.
func (p Sampling) z() float64 {
	switch p.withDefaults().Confidence {
	case 0.90:
		return 1.6449
	case 0.99:
		return 2.5758
	default:
		return 1.9600
	}
}

// chunkRounds is the length of one sampling unit (one measured interval
// plus its functional gap and detailed warmup) in lockstep rounds.
func (p Sampling) chunkRounds() int64 { return p.Period * p.IntervalRecords }

// warmupRounds is the detailed-but-unmeasured prefix of each measured
// interval in lockstep rounds.
func (p Sampling) warmupRounds() int64 {
	return int64(p.WarmupFraction * float64(p.IntervalRecords))
}

// Intervals returns how many measured intervals fit into a measurement
// window of `measure` records per core.
func (p Sampling) Intervals(measure int64) int64 {
	p = p.withDefaults()
	if !p.Enabled() || p.chunkRounds() <= 0 {
		return 0
	}
	return measure / p.chunkRounds()
}

// segment is one contiguous slice of the sampled schedule.
type segment struct {
	// rounds is the segment length in lockstep rounds.
	rounds int64
	// functional selects the fast-forward stepping path.
	functional bool
	// measured marks a detailed interval bracketed by Begin/EndInterval.
	measured bool
	// llcMask is the functional LLC-warming stride minus one (stride is
	// a power of two): 0 warms on every L1 miss, llcFarStride-1 on
	// every llcFarStride-th per core. Meaningful only with functional.
	llcMask uint32
}

// appendFunctional splits a functional stretch into the far (strided
// LLC warming) and near (full LLC warming) zones.
func appendFunctional(segs []segment, rounds int64) []segment {
	if rounds <= 0 {
		return segs
	}
	if far := rounds - llcNearRounds; far > 0 {
		segs = append(segs, segment{far, true, false, llcFarStride - 1})
		rounds = llcNearRounds
	}
	return append(segs, segment{rounds, true, false, 0})
}

// segments lays the whole run out deterministically: the spec warmup is
// fast-forwarded functionally, then the measurement window is cut into
// chunks of Period*IntervalRecords rounds — a functional gap, a
// detailed (unmeasured) warmup of WarmupFraction*IntervalRecords
// rounds, and the measured interval — with any trailing remainder
// fast-forwarded functionally, so a sampled run consumes exactly the
// records its exact counterpart would.
func (p Sampling) segments(warmup, measure int64) []segment {
	p = p.withDefaults()
	var segs []segment
	chunk := p.chunkRounds()
	warm := p.warmupRounds()
	gap := chunk - p.IntervalRecords - warm
	n := measure / chunk
	// The spec warmup runs functionally; when it flows directly into a
	// measured chunk's gap the two form one functional stretch, so the
	// near-zone split applies to their union.
	head := warmup
	if n > 0 {
		head += gap
	}
	segs = appendFunctional(segs, head)
	for i := int64(0); i < n; i++ {
		if i > 0 {
			segs = appendFunctional(segs, gap)
		}
		if warm > 0 {
			segs = append(segs, segment{warm, false, false, 0})
		}
		segs = append(segs, segment{p.IntervalRecords, false, true, 0})
	}
	if rem := measure - n*chunk; rem > 0 {
		segs = appendFunctional(segs, rem)
	}
	return segs
}

// MetricEstimate reports the per-interval dispersion of one metric of a
// sampled run.
type MetricEstimate struct {
	// Mean is the mean of the per-interval samples. It can differ
	// slightly from the headline (ratio-of-sums) point estimate in the
	// Result, which aggregates raw counters across intervals.
	Mean float64
	// StdErr is the standard error of the mean across intervals.
	StdErr float64
	// CIHalfWidth is the half width of the confidence interval at the
	// policy's confidence level (z * StdErr).
	CIHalfWidth float64
}

// estimate summarizes samples at normal quantile z.
func estimate(samples []float64, z float64) MetricEstimate {
	n := len(samples)
	if n == 0 {
		return MetricEstimate{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	est := MetricEstimate{Mean: mean}
	if n > 1 {
		var ss float64
		for _, v := range samples {
			d := v - mean
			ss += d * d
		}
		est.StdErr = math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
		est.CIHalfWidth = z * est.StdErr
	}
	return est
}

// SampleStats is the error-bound report of a sampled run, attached to
// its Result.
type SampleStats struct {
	// Intervals is the number of measured detailed intervals.
	Intervals int
	// Confidence is the confidence level of the CIHalfWidth fields.
	Confidence float64
	// MPKI and Throughput summarize the per-interval samples of the two
	// headline metrics.
	MPKI, Throughput MetricEstimate
}

// setFunctional switches the stepping mode used by runRounds.
func (s *System) setFunctional(on bool) { s.functional = on }

// applySegment arms the stepping mode and the functional LLC-warming
// stride for one schedule segment.
func (s *System) applySegment(seg segment) {
	s.functional = seg.functional
	s.llcMask = seg.llcMask
}

// BeginInterval snapshots all counters at the start of a measured
// interval; EndInterval turns the delta into one per-interval sample.
func (s *System) BeginInterval() { s.intervalStart = s.snapshot() }

// EndInterval closes the interval opened by BeginInterval: the counter
// delta joins the run's aggregate measurement and contributes one
// sample per tracked metric.
func (s *System) EndInterval() {
	d := s.snapshot()
	d.sub(&s.intervalStart)
	if s.sampleAgg.cycles == nil {
		s.sampleAgg = d
	} else {
		s.sampleAgg.add(&d)
	}
	var instrs, misses int64
	var tput float64
	for i := range d.instrs {
		instrs += d.instrs[i]
		misses += d.fetch[i].Misses
		if d.cycles[i] > 0 {
			tput += float64(d.instrs[i]) / float64(d.cycles[i])
		}
	}
	mpki := 0.0
	if instrs > 0 {
		mpki = float64(misses) / float64(instrs) * 1000
	}
	s.mpkiSamples = append(s.mpkiSamples, mpki)
	s.tputSamples = append(s.tputSamples, tput)
}

// SampledResults aggregates the measured intervals into a Result and
// attaches the per-metric error bounds.
func (s *System) SampledResults(p Sampling) Result {
	var r Result
	if s.sampleAgg.cycles == nil {
		// No interval completed; report an empty (but well-formed)
		// measurement rather than dereferencing a missing aggregate.
		empty := newMeasurement(s.cfg.Cores)
		r = s.resultFromDelta(&empty)
	} else {
		r = s.resultFromDelta(&s.sampleAgg)
	}
	p = p.withDefaults()
	z := p.z()
	r.Sampled = &SampleStats{
		Intervals:  len(s.mpkiSamples),
		Confidence: p.Confidence,
		MPKI:       estimate(s.mpkiSamples, z),
		Throughput: estimate(s.tputSamples, z),
	}
	return r
}

// packWarm packs one functional record for the follower replay buffer:
// block address, control-flow kind, and the L1-I hit bit.
func packWarm(blk trace.BlockAddr, kind trace.Kind, hit bool) uint64 {
	w := uint64(blk)<<4 | uint64(kind)<<1
	if hit {
		w |= 1
	}
	return w
}

// warmCore runs up to n functional steps of core coreID back to back —
// the tight inner loop of the fast-forward path, with the per-core
// invariants (reader, predictor, caches, warm hook, replay cursors)
// hoisted out of the record loop. It returns the number of records
// stepped (fewer than n only when the core's trace is exhausted).
//
// In a shared-L1 batch the lead decodes each record, performs the
// common L1-I probe (content is a pure function of the shared record
// stream, so every member's cache would evolve identically), and
// publishes (block, kind, hit) into fnBlkBuf; a follower core that
// must see every record replays that buffer without touching its
// stream view or an instruction cache at all — the batch runner
// bulk-copies the lead's cache state over at the segment boundary.
func (s *System) warmCore(coreID int, n int64) (int64, error) {
	if s.done[coreID] {
		return 0, nil
	}
	h := &s.hot[coreID]
	// The predictor is a pure function of the record stream, so its
	// state keeps evolving; the outcome drives no timing. In a shared-
	// predictor batch the lead's evaluation advances the predictors
	// every follower aliases, so followers skip the redundant
	// evaluation; no outcomes are recorded or consumed, which keeps the
	// replay cursors aligned with the detailed segments.
	bp := h.bp
	if s.bpBuf != nil && !s.bpLead {
		bp = nil
	}
	var (
		warm    = h.warm
		blkPos  = s.l1Pos
		warmCnt = s.llcWarmCnt[coreID]
		mask    = s.llcMask
	)

	if s.fnBlkBuf != nil && !s.l1Lead {
		// Follower replay: everything needed is in the lead's buffer.
		for r := int64(0); r < n; r++ {
			w := s.fnBlkBuf[blkPos]
			blkPos++
			blk := trace.BlockAddr(w >> 4)
			l1Hit := w&1 != 0
			if bp != nil {
				bp.PredictUpdate(blk.Addr(), trace.Kind(w>>1&7) != trace.KindSeq)
			}
			if !l1Hit {
				if warmCnt++; warmCnt&mask == 0 {
					s.llc[s.mesh.BankForBlock(blk)].LookupInsert(blk, false)
				}
			}
			if warm != nil {
				warm.WarmAccess(blk, l1Hit)
			}
		}
		if sv := s.fastViews[coreID]; sv != nil {
			sv.Skip(n)
		}
		s.records[coreID] += n
		s.l1Pos = blkPos
		s.llcWarmCnt[coreID] = warmCnt
		return n, nil
	}

	var (
		cr      = s.fastReaders[coreID]
		sv      = s.fastViews[coreID]
		l1      = h.l1i
		lead    = s.fnBlkBuf != nil
		missPos = s.missPos
		missCnt = int32(0)
	)
	var ran int64
	for ; ran < n; ran++ {
		var rec trace.Record
		var err error
		if cr != nil {
			rec, err = cr.Next()
		} else if sv != nil {
			rec, err = sv.Next()
		} else {
			rec, err = s.readers[coreID].Next()
		}
		if err == io.EOF {
			s.done[coreID] = true
			break
		}
		if err != nil {
			return ran, err
		}
		if bp != nil {
			bp.PredictUpdate(rec.Block.Addr(), rec.Kind != trace.KindSeq)
		}

		// The identical demand probe the detailed path performs: L1-I
		// content is a pure function of the record stream (prefetches
		// fill a separate buffer), so functional and detailed stepping
		// leave bit-identical instruction caches.
		l1Hit, _, _, _ := l1.LookupInsert(rec.Block, false)
		if lead {
			s.fnBlkBuf[blkPos] = packWarm(rec.Block, rec.Kind, l1Hit)
			blkPos++
			if !l1Hit {
				// Also publish the compact miss list, which followers
				// whose warming is miss-driven replay instead of
				// walking every record (see runFunctionalFollower).
				s.fnMissBuf[missPos] = uint64(rec.Block)
				missPos++
				missCnt++
			}
		}

		if !l1Hit {
			// Keep the LLC banks demand-warm, without any latency or
			// traffic modelling: bank contents — and, for virtualized
			// SHIFT, the index pointers riding on resident tags — track
			// the access stream instead of freezing for the whole gap.
			// Far from the next detailed interval a strided probe
			// suffices: the banks hold megabytes, so content freshness
			// is governed by the insertion horizon, not the per-miss
			// insertion rate; the llcNearRounds before each interval
			// warm on every miss so the interval opens on a fresh recent
			// working set. The prefetch buffer is left untouched
			// (frozen): it is a small timing structure whose steady-
			// state pressure the detailed warmup prefix restores, and
			// freezing preserves its age distribution.
			if warmCnt++; warmCnt&mask == 0 {
				s.llc[s.mesh.BankForBlock(rec.Block)].LookupInsert(rec.Block, false)
			}
		}

		// History generation — the slow-warming design state.
		if warm != nil {
			warm.WarmAccess(rec.Block, l1Hit)
		}
	}
	s.records[coreID] += ran
	s.l1Pos = blkPos
	s.missPos = missPos
	if lead && missCnt > 0 {
		s.fnMissCnt[coreID] += missCnt
	}
	s.llcWarmCnt[coreID] = warmCnt
	return ran, nil
}

// runRoundsFunctional advances up to n lockstep rounds on the
// functional path, core-major within blocks of batchBlockRounds: cores
// barely interact while timing stands still (the L1-I and history are
// per-core), so stepping each core through a whole block back to back
// keeps its stream chunk, instruction cache, and history builder hot
// instead of thrashing every core's state on every round — a large
// constant-factor win on the fast-forward path. The block structure
// matches the batch runner's lockstep blocks exactly, so the few
// cross-core touch points (shared-LLC warming order, the generator's
// index-pointer updates) happen in the identical global order
// standalone and batched — which keeps sampled batch members
// bit-identical to their standalone runs. It returns the number of
// full rounds completed (the minimum over cores when a stream runs
// dry).
func (s *System) runRoundsFunctional(n int64) (int64, error) {
	if s.fnMissBuf != nil && !s.l1Lead {
		return s.runFunctionalFollower(n)
	}
	var done int64
	for off := int64(0); off < n; {
		blk := n - off
		if blk > batchBlockRounds {
			blk = batchBlockRounds
		}
		if s.fnMissBuf != nil {
			// Lead of a shared-L1 batch: reset the per-core miss
			// bookkeeping the followers replay. The batch runner blocks
			// segments at batchBlockRounds, so one call is one block.
			for c := range s.fnMissCnt {
				s.fnMissCnt[c] = 0
				s.fnRounds[c] = 0
			}
		}
		min := blk
		for c := 0; c < s.cfg.Cores; c++ {
			ran, err := s.warmCore(c, blk)
			if err != nil {
				return done, err
			}
			if s.fnRounds != nil {
				s.fnRounds[c] = int32(ran)
			}
			if ran < min {
				min = ran
			}
		}
		s.rounds += min
		done += min
		off += blk
		if min < blk {
			return done, nil
		}
	}
	return done, nil
}

// fnNeedsRecords reports whether core c's functional warming must see
// every record rather than just the miss list: PIF compacts the full
// access stream on every core, and SHIFT's current generator core
// records it into the shared history; miss-stream warmers (TIFS) and
// cores with no warming state only react to misses.
func (s *System) fnNeedsRecords(c int) bool {
	switch w := s.hot[c].warm.(type) {
	case nil:
		return false
	case *core.Replayer:
		return w.IsGenerator()
	case *tifs.TIFS:
		return false
	default:
		// PIF — and any future warmer — conservatively sees everything.
		_ = w
		return true
	}
}

// runFunctionalFollower is the shared-L1 batch follower's fast-forward
// block: the lead already decoded every record, stepped the common
// L1-I, and published per-core hit bits, miss blocks, and per-core
// round/miss counts, so a follower core whose warming is miss-driven
// replays just the misses (LLC warming plus the miss-stream hook) and
// bulk-skips its stream view, while cores that must see every record
// (PIF; SHIFT's generator) step record by record off the published hit
// bits. State evolution is identical to the standalone functional path
// — the same (core, round) order, the same inputs — only the decoding
// and probing that sharing makes redundant are gone.
func (s *System) runFunctionalFollower(n int64) (int64, error) {
	if n > batchBlockRounds {
		// The batch runner blocks lockstep segments at batchBlockRounds,
		// so a follower call never exceeds one block.
		return 0, fmt.Errorf("sim: follower functional block of %d rounds exceeds %d", n, batchBlockRounds)
	}
	// A member that evaluates its own branch predictor (the batch could
	// not share predictors) must keep it evolving over every record:
	// the miss-only shortcut would silently freeze it across the gap.
	ownBP := s.bp != nil && s.bpBuf == nil
	min := n
	for c := 0; c < s.cfg.Cores; c++ {
		rounds := int64(s.fnRounds[c])
		cnt := int(s.fnMissCnt[c])
		if ownBP || s.fnNeedsRecords(c) {
			ran, err := s.warmCore(c, rounds)
			if err != nil {
				return 0, err
			}
			// warmCore consumed the hit bits but not the miss list;
			// skip this core's entries to stay aligned.
			s.missPos += cnt
			if ran < min {
				min = ran
			}
			continue
		}
		h := &s.hot[c]
		for i := 0; i < cnt; i++ {
			blk := trace.BlockAddr(s.fnMissBuf[s.missPos])
			s.missPos++
			if s.llcWarmCnt[c]++; s.llcWarmCnt[c]&s.llcMask == 0 {
				s.llc[s.mesh.BankForBlock(blk)].LookupInsert(blk, false)
			}
			if h.warm != nil {
				h.warm.WarmAccess(blk, false)
			}
		}
		s.l1Pos += int(rounds)
		s.records[c] += rounds
		if sv := s.fastViews[c]; sv != nil {
			sv.Skip(rounds)
		} else {
			// Non-view readers (not produced by the batch fan-out, but
			// kept correct): decode and discard.
			for r := int64(0); r < rounds; r++ {
				if _, err := s.readers[c].Next(); err != nil {
					break
				}
			}
		}
		if rounds < min {
			min = rounds
		}
	}
	s.rounds += min
	return min, nil
}
