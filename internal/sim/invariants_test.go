package sim

import (
	"testing"

	"shift/internal/core"
	"shift/internal/cpu"
	"shift/internal/noc"
)

// runFor executes a spec and returns results (integration helper).
func runFor(t *testing.T, mut func(*Config)) Result {
	t.Helper()
	cfg := testConfig()
	if mut != nil {
		mut(&cfg)
	}
	res, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAccountingInvariants checks cross-module conservation laws on a
// full SHIFT run: every covered miss was once a prefetch fill, every
// demand miss produced demand traffic, cycle counts decompose.
func TestAccountingInvariants(t *testing.T) {
	res := runFor(t, func(c *Config) {
		c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
	})
	f := res.Fetch
	if f.Accesses != res.Records {
		t.Errorf("accesses %d != records %d (one block visit each)", f.Accesses, res.Records)
	}
	if f.Misses+f.PBHits > f.Accesses {
		t.Errorf("misses %d + covered %d exceed accesses %d", f.Misses, f.PBHits, f.Accesses)
	}
	// Every PB hit and every discard consumed a prefetch fill; fills may
	// also still be resident, so fills >= hits + discards - PB capacity.
	fills := res.Traffic[noc.PrefetchFill]
	if fills < f.PBHits {
		t.Errorf("prefetch fills %d < PB hits %d", fills, f.PBHits)
	}
	if f.PBHits+f.Discards > fills+128*int64(res.Cores) {
		t.Errorf("PB outcomes %d exceed fills %d + residency", f.PBHits+f.Discards, fills)
	}
	// Demand instruction traffic equals effective misses (each miss does
	// exactly one LLC transaction).
	if res.Traffic[noc.DemandInstr] != f.Misses {
		t.Errorf("demand traffic %d != misses %d", res.Traffic[noc.DemandInstr], f.Misses)
	}
	// Per-core cycles decompose into backend + fetch stall + branch.
	for i, cr := range res.PerCore {
		if cr.FetchStall+cr.BranchStall > cr.Cycles {
			t.Errorf("core %d: stalls exceed cycles", i)
		}
		if cr.Instructions <= 0 || cr.Cycles <= 0 {
			t.Errorf("core %d: empty window", i)
		}
	}
}

// TestHistoryTrafficProportions checks the virtualized-SHIFT bookkeeping:
// one index update per record, one history write per 12 records.
func TestHistoryTrafficProportions(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
	spec := testSpec(cfg)
	spec.WarmupRecords = 0 // count from a cold start so totals align
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	records := res.Pf.RecordsWritten
	if records == 0 {
		t.Fatal("no records written")
	}
	if got := res.Traffic[noc.IndexUpdate]; got != records {
		t.Errorf("index updates %d != records %d", got, records)
	}
	wantWrites := records / 12
	if got := res.Traffic[noc.HistWrite]; got < wantWrites-1 || got > wantWrites+1 {
		t.Errorf("history writes %d, want ~%d (12 records per block)", got, wantWrites)
	}
}

// TestGeneratorCoreChoiceInsensitive reproduces Section 6.1 at test
// scale: picking a different generator core must not change SHIFT's
// benefit by more than a few percent.
func TestGeneratorCoreChoiceInsensitive(t *testing.T) {
	speedup := func(gen int) float64 {
		base := runFor(t, nil)
		res := runFor(t, func(c *Config) {
			sh := smallSHIFT(core.Dedicated)
			sh.GeneratorCore = gen
			c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: sh}
		})
		return res.Throughput / base.Throughput
	}
	s0, s3 := speedup(0), speedup(3)
	ratio := s0 / s3
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("generator choice changed speedup by >5%%: %.3f vs %.3f", s0, s3)
	}
}

// TestWarmupExclusion checks that MarkMeasurement actually excludes
// warmup activity: a run with warmup must report fewer records than one
// measuring everything.
func TestWarmupExclusion(t *testing.T) {
	with, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(testConfig())
	spec.WarmupRecords = 0
	spec.MeasureRecords = 50000
	without, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if with.Records != 4*30000 || without.Records != 4*50000 {
		t.Errorf("window accounting wrong: %d, %d", with.Records, without.Records)
	}
	// Warmed measurement should see a lower miss ratio than cold-start.
	if with.Fetch.MissRatio() >= without.Fetch.MissRatio() {
		t.Errorf("warmed miss ratio %.3f >= cold %.3f",
			with.Fetch.MissRatio(), without.Fetch.MissRatio())
	}
}

// TestElimProbPartial checks Figure 1's methodology at 50%: roughly half
// the misses' latency disappears, bounded well away from 0 and 100%.
func TestElimProbPartial(t *testing.T) {
	base := runFor(t, nil)
	half := runFor(t, func(c *Config) { c.ElimProb = 0.5 })
	full := runFor(t, func(c *Config) { c.ElimProb = 1.0 })
	if !(base.Throughput < half.Throughput && half.Throughput < full.Throughput) {
		t.Errorf("elimination not monotone: %.3f %.3f %.3f",
			base.Throughput, half.Throughput, full.Throughput)
	}
}

// TestLeanIOStallsMoreThanFatOoO checks the exposure model: the in-order
// core loses a larger cycle fraction to the same misses.
func TestLeanIOStallsMoreThanFatOoO(t *testing.T) {
	io := runFor(t, func(c *Config) { c.CoreType = cpu.LeanIO })
	fat := runFor(t, func(c *Config) { c.CoreType = cpu.FatOoO })
	if io.FetchStallFraction <= fat.FetchStallFraction {
		t.Errorf("Lean-IO stall %.3f <= Fat-OoO %.3f",
			io.FetchStallFraction, fat.FetchStallFraction)
	}
}
