package sim

import "fmt"

// StreamShortError reports a run whose trace streams cannot supply —
// or, detected at runtime, did not supply — the requested
// warmup+measure window. It replaces the former silent behavior of
// measuring however many records the streams happened to produce,
// which made short windows look like valid (but wrong) results.
//
// Match it with errors.As:
//
//	var short *sim.StreamShortError
//	if errors.As(err, &short) { ... }
type StreamShortError struct {
	// Phase names where the shortage was detected: "validate" (a
	// reader declared its remaining supply up front via
	// trace.Supplier), "warmup", or "measure" (the stream ended
	// mid-phase).
	Phase string
	// Core is the offending core for upfront checks, or -1 when the
	// shortage was detected mid-run (all cores were already exhausted).
	Core int
	// Need is the number of records per core the phase required; for
	// the validate phase it is the whole warmup+measure window.
	Need int64
	// Have is the number of records available (validate) or actually
	// completed (warmup/measure).
	Have int64
}

// Error implements error.
func (e *StreamShortError) Error() string {
	if e.Phase == "validate" {
		return fmt.Sprintf("sim: core %d stream supplies %d records, window needs %d",
			e.Core, e.Have, e.Need)
	}
	return fmt.Sprintf("sim: stream exhausted during %s after %d of %d records per core",
		e.Phase, e.Have, e.Need)
}
