package sim

import (
	"fmt"

	"shift/internal/trace"
	"shift/internal/workload"
)

// batchBlockRounds is the lockstep granularity of RunBatch: each member
// system runs this many rounds back to back before the next member
// takes the same block. Coarse blocks keep one system's simulation
// state hot in cache for cores×rounds records at a time (instead of
// thrashing K working sets against each other every record) while the
// shared stream's consumer views stay within one block of each other,
// bounding the live chunk window.
const batchBlockRounds = 8192

// RunBatch executes several specs that consume the same trace stream in
// a single pass: every spec must agree on the workload(s), the core
// count, the warmup/measure window, and the sampling policy, while the
// system configuration (design point, seed, mode, history sizes, core
// type...) is free to vary. The per-core record streams are generated once (chunked
// producers, one zero-copy consumer view per member) and each member's
// system steps off them in block-lockstep, so each member observes
// exactly the per-core record order of a standalone Run — results are
// bit-identical to running every spec through Run, record for record.
//
// When every member configures the same branch predictor, its per
// record work is also shared: the predictor is a pure function of the
// common record stream, so the first member evaluates it and the rest
// replay the recorded outcomes (and report the identical statistics).
//
// A batch of one degenerates to Run. An incompatible batch returns an
// error naming the first mismatched spec.
func RunBatch(specs []RunSpec) ([]Result, error) {
	switch len(specs) {
	case 0:
		return nil, nil
	case 1:
		r, err := Run(specs[0])
		if err != nil {
			return nil, err
		}
		return []Result{r}, nil
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("sim: batch spec %d: %w", i, err)
		}
	}
	if err := checkStreamCompatible(specs); err != nil {
		return nil, err
	}

	k := len(specs)
	cores := specs[0].Config.Cores
	readerSets := make([][]trace.Reader, k)
	for m := range readerSets {
		readerSets[m] = make([]trace.Reader, cores)
	}
	fanOut := func(cs *workload.CoreStream, core int) {
		for m := 0; m < k; m++ {
			readerSets[m][core] = cs.View(m)
		}
	}
	if src := specs[0].Source; src != nil {
		for c := 0; c < cores; c++ {
			r, err := src.NewCoreReader(c)
			if err != nil {
				return nil, fmt.Errorf("sim: source reader for core %d: %w", c, err)
			}
			fanOut(workload.NewStream(r, k), c)
		}
	} else if len(specs[0].Groups) == 0 {
		w, err := workload.Cached(specs[0].Workload)
		if err != nil {
			return nil, err
		}
		for c := 0; c < cores; c++ {
			fanOut(w.NewCoreStream(c, k), c)
		}
	} else {
		for gi, g := range specs[0].Groups {
			w, err := workload.Cached(specs[0].GroupWorkloads[gi])
			if err != nil {
				return nil, fmt.Errorf("group %q: %w", g.Name, err)
			}
			for _, c := range g.Cores {
				if c < 0 || c >= cores {
					return nil, fmt.Errorf("group %q core %d out of range", g.Name, c)
				}
				fanOut(w.NewCoreStream(c, k), c)
			}
		}
		for c, r := range readerSets[0] {
			if r == nil {
				return nil, fmt.Errorf("core %d not assigned to any group", c)
			}
		}
	}

	systems := make([]*System, k)
	for m := range systems {
		cfg := specs[m].Config
		if len(specs[m].Groups) > 0 && cfg.Prefetcher.Kind == KindSHIFT {
			cfg.Prefetcher.Groups = specs[m].Groups
		}
		sys, err := New(cfg, readerSets[m])
		if err != nil {
			return nil, err
		}
		systems[m] = sys
	}

	// Shared branch prediction: only when every member runs the same
	// predictor configuration (always true for the public experiment
	// grids, where the predictor is a Table I constant).
	shareBP := specs[0].Config.BranchPredictorEntries > 0
	for m := 1; m < k && shareBP; m++ {
		shareBP = specs[m].Config.BranchPredictorEntries == specs[0].Config.BranchPredictorEntries
	}
	if shareBP {
		buf := make([]uint8, batchBlockRounds*cores)
		for m, sys := range systems {
			sys.bpBuf = buf
			sys.bpLead = m == 0
			if m > 0 {
				// Followers alias the lead's predictors so their result
				// accounting (accuracy counters) reads the state the
				// shared evaluation advanced — identical, record for
				// record, to what a local predictor would have held.
				sys.bp = systems[0].bp
				for c := range sys.hot {
					sys.hot[c].bp = sys.bp[c]
				}
			}
		}
	}

	// Shared background data traffic: valid when every member draws the
	// identical data-side sequence — same per-core RNG seeds and data
	// rate, the same mesh, and no miss elimination anywhere (ElimProb
	// consumes the same RNG, which would shift the draw sequence
	// per-design).
	refCfg := specs[0].Config
	shareData := refCfg.ElimProb == 0
	for m := 1; m < k && shareData; m++ {
		c := specs[m].Config
		shareData = c.Seed == refCfg.Seed && c.DataMPKI == refCfg.DataMPKI &&
			c.ElimProb == 0 && c.Mesh == refCfg.Mesh
	}
	if shareData {
		buf := make([]uint64, batchBlockRounds*cores)
		for m, sys := range systems {
			sys.dsBuf = buf
			sys.dsLead = m == 0
		}
	}

	warm, meas := specs[0].WarmupRecords, specs[0].MeasureRecords
	for _, sys := range systems {
		if err := sys.checkSupply(warm + meas); err != nil {
			return nil, err
		}
	}
	if p := specs[0].Sampling.Normalized(); p.Enabled() {
		// Shared L1-I stepping for the functional segments: valid
		// whenever every member runs the identical instruction-cache
		// geometry (the cache's evolution is a pure function of the
		// shared record stream, so all members' L1-Is hold identical
		// content at every aligned round). The lead probes, followers
		// replay the hit bit, and each functional segment ends with a
		// bulk state copy into the followers.
		shareL1 := true
		for m := 1; m < k && shareL1; m++ {
			shareL1 = specs[m].Config.L1I == specs[0].Config.L1I
		}
		if shareL1 {
			blkBuf := make([]uint64, batchBlockRounds*cores)
			missBuf := make([]uint64, batchBlockRounds*cores)
			missCnt := make([]int32, cores)
			rounds := make([]int32, cores)
			for m, sys := range systems {
				sys.fnBlkBuf = blkBuf
				sys.l1Lead = m == 0
				sys.fnMissBuf = missBuf
				sys.fnMissCnt = missCnt
				sys.fnRounds = rounds
			}
		}
		// Sampled batch: every member walks the identical deterministic
		// segment schedule (validated equal by checkStreamCompatible),
		// so the lockstep replay buffers stay aligned across stepping
		// modes and each member's result is bit-identical to its
		// standalone RunSampled.
		var done int64
		for _, seg := range p.segments(warm, meas) {
			for _, sys := range systems {
				sys.applySegment(seg)
			}
			if seg.measured {
				for _, sys := range systems {
					sys.BeginInterval()
				}
			}
			ran, err := runLockstep(systems, seg.rounds)
			if err != nil {
				return nil, err
			}
			if seg.functional && shareL1 {
				// Catch the followers' instruction caches up with the
				// stepping the lead performed on everyone's behalf.
				lead := systems[0]
				for _, sys := range systems[1:] {
					for c := range sys.l1i {
						sys.l1i[c].CopyStateFrom(lead.l1i[c])
					}
				}
			}
			done += ran
			if ran < seg.rounds {
				phase := "measure"
				if done <= warm {
					phase = "warmup"
				}
				return nil, &StreamShortError{Phase: phase, Core: -1, Need: warm + meas, Have: done}
			}
			if seg.measured {
				for _, sys := range systems {
					sys.EndInterval()
				}
			}
		}
		out := make([]Result, k)
		for m, sys := range systems {
			sys.setFunctional(false)
			if err := sys.checkConsumed(make([]int64, cores), warm+meas); err != nil {
				return nil, err
			}
			// Per-member policy: members may differ in the reporting
			// confidence level (it never touches the schedule).
			out[m] = sys.SampledResults(specs[m].Sampling)
		}
		return out, nil
	}

	if warm > 0 {
		ran, err := runLockstep(systems, warm)
		if err != nil {
			return nil, err
		}
		if ran < warm {
			return nil, &StreamShortError{Phase: "warmup", Core: -1, Need: warm, Have: ran}
		}
	}
	for _, sys := range systems {
		sys.MarkMeasurement()
	}
	ran, err := runLockstep(systems, meas)
	if err != nil {
		return nil, err
	}
	if ran < meas {
		return nil, &StreamShortError{Phase: "measure", Core: -1, Need: meas, Have: ran}
	}
	out := make([]Result, k)
	for m, sys := range systems {
		// Catch a single dry stream the round loop papered over (see
		// System.checkConsumed); batch systems start at zero consumed.
		if err := sys.checkConsumed(make([]int64, cores), warm+meas); err != nil {
			return nil, err
		}
		out[m] = sys.Results()
	}
	return out, nil
}

// runLockstep advances every system by up to `records` rounds in blocks
// of batchBlockRounds — the lead runs a block (recording shared
// outcomes), then each follower replays the same block — and returns
// the rounds completed. Streams never end for the synthetic workload
// views, but if the lead ever stops early the followers are capped to
// the same round so the batch stays aligned, and the shortfall is
// visible to the caller.
func runLockstep(systems []*System, records int64) (int64, error) {
	for off := int64(0); off < records; {
		n := records - off
		if n > batchBlockRounds {
			n = batchBlockRounds
		}
		systems[0].bpPos, systems[0].dsPos, systems[0].l1Pos, systems[0].missPos = 0, 0, 0, 0
		ran, err := systems[0].runRounds(n)
		if err != nil {
			return off, err
		}
		for _, sys := range systems[1:] {
			sys.bpPos, sys.dsPos, sys.l1Pos, sys.missPos = 0, 0, 0, 0
			fran, err := sys.runRounds(ran)
			if err != nil {
				return off, err
			}
			if fran != ran {
				return off, fmt.Errorf("sim: batch member diverged: %d rounds vs lead's %d", fran, ran)
			}
		}
		off += ran
		if ran < n {
			return off, nil
		}
	}
	return records, nil
}

// checkStreamCompatible verifies that every spec consumes the same
// record stream as specs[0]: equal workload parameter sets (or group
// layouts), core counts, and warmup/measure windows.
func checkStreamCompatible(specs []RunSpec) error {
	ref := &specs[0]
	for i := 1; i < len(specs); i++ {
		s := &specs[i]
		switch {
		case s.Config.Cores != ref.Config.Cores:
			return fmt.Errorf("sim: batch spec %d: %d cores, spec 0 has %d", i, s.Config.Cores, ref.Config.Cores)
		case s.WarmupRecords != ref.WarmupRecords || s.MeasureRecords != ref.MeasureRecords:
			return fmt.Errorf("sim: batch spec %d: window %d+%d records, spec 0 has %d+%d",
				i, s.WarmupRecords, s.MeasureRecords, ref.WarmupRecords, ref.MeasureRecords)
		case !s.Sampling.scheduleEqual(ref.Sampling):
			return fmt.Errorf("sim: batch spec %d: sampling policy %+v differs from spec 0's %+v",
				i, s.Sampling, ref.Sampling)
		case s.Source != ref.Source:
			// Source is compared by interface identity: the engine hands
			// every member of a batch the same registered source value, and
			// two distinct sources cannot be assumed to generate the same
			// stream even with equal parameters.
			return fmt.Errorf("sim: batch spec %d: stream source differs from spec 0", i)
		case len(s.Groups) != len(ref.Groups):
			return fmt.Errorf("sim: batch spec %d: %d groups, spec 0 has %d", i, len(s.Groups), len(ref.Groups))
		}
		if ref.Source != nil {
			continue
		}
		if len(ref.Groups) == 0 {
			if s.Workload != ref.Workload {
				return fmt.Errorf("sim: batch spec %d: workload %q differs from spec 0's %q", i, s.Workload.Name, ref.Workload.Name)
			}
			continue
		}
		for gi := range ref.Groups {
			if s.GroupWorkloads[gi] != ref.GroupWorkloads[gi] {
				return fmt.Errorf("sim: batch spec %d group %d: workload differs from spec 0", i, gi)
			}
			if s.Groups[gi].Name != ref.Groups[gi].Name || len(s.Groups[gi].Cores) != len(ref.Groups[gi].Cores) {
				return fmt.Errorf("sim: batch spec %d group %d: layout differs from spec 0", i, gi)
			}
			for ci, c := range ref.Groups[gi].Cores {
				if s.Groups[gi].Cores[ci] != c {
					return fmt.Errorf("sim: batch spec %d group %d: core list differs from spec 0", i, gi)
				}
			}
		}
	}
	return nil
}
