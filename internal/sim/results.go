package sim

import (
	"shift/internal/cache"
	"shift/internal/noc"
	"shift/internal/prefetch"
)

// FetchStats counts the demand-fetch outcomes of one core (or, when
// aggregated, of the whole CMP). Misses are *effective* misses: demand
// accesses that found the block in neither the L1-I nor the prefetch
// buffer and therefore paid the LLC round trip.
type FetchStats struct {
	// Accesses is the number of demand instruction-block fetches.
	Accesses int64
	// Misses is the number of effective (stalling) misses.
	Misses int64
	// PBHits is the number of L1-I misses covered by the prefetch buffer
	// (the paper's "covered" misses in Figure 7).
	PBHits int64
	// LatePBHits counts PBHits that still exposed partial latency
	// because the prefetch was issued too late to fully hide the fill.
	LatePBHits int64
	// Discards counts prefetched blocks evicted from the prefetch buffer
	// before any demand use (the paper's overpredictions/discards).
	Discards int64
}

// MissRatio returns effective misses per access.
func (f FetchStats) MissRatio() float64 {
	if f.Accesses == 0 {
		return 0
	}
	return float64(f.Misses) / float64(f.Accesses)
}

func subFetch(a, b FetchStats) FetchStats {
	return FetchStats{
		Accesses:   a.Accesses - b.Accesses,
		Misses:     a.Misses - b.Misses,
		PBHits:     a.PBHits - b.PBHits,
		LatePBHits: a.LatePBHits - b.LatePBHits,
		Discards:   a.Discards - b.Discards,
	}
}

func addFetch(a, b FetchStats) FetchStats {
	return FetchStats{
		Accesses:   a.Accesses + b.Accesses,
		Misses:     a.Misses + b.Misses,
		PBHits:     a.PBHits + b.PBHits,
		LatePBHits: a.LatePBHits + b.LatePBHits,
		Discards:   a.Discards + b.Discards,
	}
}

// measurement is a raw counter snapshot used to subtract warmup activity.
type measurement struct {
	cycles      []int64
	instrs      []int64
	fetchStall  []int64
	branchStall []int64
	records     []int64
	l1          []cache.Stats
	fetch       []FetchStats
	traffic     [noc.NumClasses]int64
	hops        [noc.NumClasses]int64
	pf          []prefetch.Stats
	bpPred      []int64
	bpMiss      []int64
}

// newMeasurement returns a zeroed measurement with all per-core slices
// allocated.
func newMeasurement(n int) measurement {
	return measurement{
		cycles:      make([]int64, n),
		instrs:      make([]int64, n),
		fetchStall:  make([]int64, n),
		branchStall: make([]int64, n),
		records:     make([]int64, n),
		l1:          make([]cache.Stats, n),
		fetch:       make([]FetchStats, n),
		pf:          make([]prefetch.Stats, n),
		bpPred:      make([]int64, n),
		bpMiss:      make([]int64, n),
	}
}

// sub subtracts b from m in place (m -= b), turning two snapshots into
// a window delta.
func (m *measurement) sub(b *measurement) {
	for i := range m.cycles {
		m.cycles[i] -= b.cycles[i]
		m.instrs[i] -= b.instrs[i]
		m.fetchStall[i] -= b.fetchStall[i]
		m.branchStall[i] -= b.branchStall[i]
		m.records[i] -= b.records[i]
		m.l1[i] = subCache(m.l1[i], b.l1[i])
		m.fetch[i] = subFetch(m.fetch[i], b.fetch[i])
		m.pf[i] = subPf(m.pf[i], b.pf[i])
		m.bpPred[i] -= b.bpPred[i]
		m.bpMiss[i] -= b.bpMiss[i]
	}
	for c := 0; c < noc.NumClasses; c++ {
		m.traffic[c] -= b.traffic[c]
		m.hops[c] -= b.hops[c]
	}
}

// add accumulates the delta d into m (m += d); sampled runs sum their
// measured-interval deltas this way.
func (m *measurement) add(d *measurement) {
	for i := range m.cycles {
		m.cycles[i] += d.cycles[i]
		m.instrs[i] += d.instrs[i]
		m.fetchStall[i] += d.fetchStall[i]
		m.branchStall[i] += d.branchStall[i]
		m.records[i] += d.records[i]
		m.l1[i] = addCache(m.l1[i], d.l1[i])
		m.fetch[i] = addFetch(m.fetch[i], d.fetch[i])
		m.pf[i].Add(d.pf[i])
		m.bpPred[i] += d.bpPred[i]
		m.bpMiss[i] += d.bpMiss[i]
	}
	for c := 0; c < noc.NumClasses; c++ {
		m.traffic[c] += d.traffic[c]
		m.hops[c] += d.hops[c]
	}
}

func (s *System) snapshot() measurement {
	n := s.cfg.Cores
	m := measurement{
		cycles:      make([]int64, n),
		instrs:      make([]int64, n),
		fetchStall:  make([]int64, n),
		branchStall: make([]int64, n),
		records:     make([]int64, n),
		l1:          make([]cache.Stats, n),
		fetch:       make([]FetchStats, n),
		pf:          make([]prefetch.Stats, n),
		bpPred:      make([]int64, n),
		bpMiss:      make([]int64, n),
	}
	for i := 0; i < n; i++ {
		m.cycles[i] = s.clocks[i].Now()
		m.instrs[i] = s.clocks[i].Instructions()
		m.fetchStall[i] = s.clocks[i].FetchStallCycles()
		m.branchStall[i] = s.clocks[i].BranchStallCycles()
		m.records[i] = s.records[i]
		m.l1[i] = s.l1i[i].Stats()
		m.fetch[i] = s.fetch[i]
		if sr, ok := s.pf[i].(prefetch.StatsReporter); ok {
			m.pf[i] = sr.PrefetchStats()
		}
		if s.bp != nil {
			m.bpPred[i] = s.bp[i].Predictions()
			m.bpMiss[i] = s.bp[i].Mispredicts()
		}
	}
	for c := 0; c < noc.NumClasses; c++ {
		m.traffic[c] = s.mesh.Traffic(noc.MsgClass(c))
		m.hops[c] = s.mesh.HopCount(noc.MsgClass(c))
	}
	return m
}

// CoreResult is one core's measurement-window summary.
type CoreResult struct {
	Cycles       int64
	Instructions int64
	Records      int64
	FetchStall   int64
	BranchStall  int64
	IPC          float64
	L1I          cache.Stats
	Fetch        FetchStats
	Pf           prefetch.Stats
}

// Result summarizes the measurement window of one run.
type Result struct {
	Label    string
	PerCore  []CoreResult
	Cores    int
	CoreType string

	// Instructions and Records are totals across cores.
	Instructions int64
	Records      int64
	// Throughput is the sum over cores of per-core IPC — the system
	// throughput proxy the paper uses (application instructions divided
	// by cycles, summed over the CMP).
	Throughput float64
	// FetchStallFraction is the mean fraction of cycles lost to exposed
	// instruction-fetch stalls.
	FetchStallFraction float64
	// BranchAccuracy is the hybrid predictor's accuracy.
	BranchAccuracy float64

	// L1I aggregates the raw instruction-cache counters across cores.
	L1I cache.Stats
	// Fetch aggregates the effective demand-fetch outcomes (L1-I plus
	// prefetch buffer) across cores; the paper's coverage numbers are
	// computed from these.
	Fetch FetchStats
	// MPKI is effective misses per kilo-instruction.
	MPKI float64
	// Pf aggregates prefetcher bookkeeping across cores.
	Pf prefetch.Stats

	// Traffic per message class, and hop counts for energy estimation.
	Traffic [noc.NumClasses]int64
	Hops    [noc.NumClasses]int64

	// Sampled carries the per-metric error bounds of a sampled run
	// (interval count, standard errors, confidence intervals); it is
	// nil for exact runs. When set, every other field aggregates the
	// measured detailed intervals only.
	Sampled *SampleStats
}

func subCache(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:             a.Hits - b.Hits,
		Misses:           a.Misses - b.Misses,
		PrefetchHits:     a.PrefetchHits - b.PrefetchHits,
		Inserts:          a.Inserts - b.Inserts,
		Evictions:        a.Evictions - b.Evictions,
		PrefetchInserted: a.PrefetchInserted - b.PrefetchInserted,
		PrefetchDiscards: a.PrefetchDiscards - b.PrefetchDiscards,
	}
}

func subPf(a, b prefetch.Stats) prefetch.Stats {
	return prefetch.Stats{
		Accesses:        a.Accesses - b.Accesses,
		Misses:          a.Misses - b.Misses,
		CoveredAccesses: a.CoveredAccesses - b.CoveredAccesses,
		CoveredMisses:   a.CoveredMisses - b.CoveredMisses,
		StreamAllocs:    a.StreamAllocs - b.StreamAllocs,
		HistoryReads:    a.HistoryReads - b.HistoryReads,
		HistoryWrites:   a.HistoryWrites - b.HistoryWrites,
		IndexUpdates:    a.IndexUpdates - b.IndexUpdates,
		RecordsWritten:  a.RecordsWritten - b.RecordsWritten,
	}
}

// Results computes the measurement-window deltas since MarkMeasurement.
func (s *System) Results() Result {
	cur := s.snapshot()
	cur.sub(&s.base)
	return s.resultFromDelta(&cur)
}

// resultFromDelta summarizes one window delta (an exact run's whole
// measurement window, or a sampled run's aggregated intervals) into a
// Result.
func (s *System) resultFromDelta(d *measurement) Result {
	n := s.cfg.Cores
	res := Result{
		Label:    s.cfg.Prefetcher.Name(),
		Cores:    n,
		CoreType: s.cfg.CoreType.String(),
		PerCore:  make([]CoreResult, n),
	}
	var stallFracSum float64
	var bpPred, bpMiss int64
	for i := 0; i < n; i++ {
		cr := CoreResult{
			Cycles:       d.cycles[i],
			Instructions: d.instrs[i],
			Records:      d.records[i],
			FetchStall:   d.fetchStall[i],
			BranchStall:  d.branchStall[i],
			L1I:          d.l1[i],
			Fetch:        d.fetch[i],
			Pf:           d.pf[i],
		}
		if cr.Cycles > 0 {
			cr.IPC = float64(cr.Instructions) / float64(cr.Cycles)
			stallFracSum += float64(cr.FetchStall) / float64(cr.Cycles)
		}
		res.PerCore[i] = cr
		res.Instructions += cr.Instructions
		res.Records += cr.Records
		res.Throughput += cr.IPC
		res.L1I = addCache(res.L1I, cr.L1I)
		res.Fetch = addFetch(res.Fetch, cr.Fetch)
		res.Pf.Add(cr.Pf)
		bpPred += d.bpPred[i]
		bpMiss += d.bpMiss[i]
	}
	res.FetchStallFraction = stallFracSum / float64(n)
	if bpPred > 0 {
		res.BranchAccuracy = 1 - float64(bpMiss)/float64(bpPred)
	} else {
		res.BranchAccuracy = 1
	}
	if res.Instructions > 0 {
		res.MPKI = float64(res.Fetch.Misses) / float64(res.Instructions) * 1000
	}
	res.Traffic = d.traffic
	res.Hops = d.hops
	return res
}

func addCache(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:             a.Hits + b.Hits,
		Misses:           a.Misses + b.Misses,
		PrefetchHits:     a.PrefetchHits + b.PrefetchHits,
		Inserts:          a.Inserts + b.Inserts,
		Evictions:        a.Evictions + b.Evictions,
		PrefetchInserted: a.PrefetchInserted + b.PrefetchInserted,
		PrefetchDiscards: a.PrefetchDiscards + b.PrefetchDiscards,
	}
}

// DemandTraffic returns the demand LLC traffic (instruction + data), the
// baseline-normalization denominator of Figure 9.
func (r Result) DemandTraffic() int64 {
	return r.Traffic[noc.DemandInstr] + r.Traffic[noc.DemandData]
}

// AccessCoverage and MissCoverage expose the prediction-mode coverages.
func (r Result) AccessCoverage() float64 { return r.Pf.AccessCoverage() }

// MissCoverage returns the prediction-mode miss coverage.
func (r Result) MissCoverage() float64 { return r.Pf.MissCoverage() }
