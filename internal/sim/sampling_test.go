package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"shift/internal/core"
	"shift/internal/pif"
	"shift/internal/tifs"
	"shift/internal/trace"
	"shift/internal/workload"
)

// testSampling is a small, fast policy for unit tests.
func testSampling() Sampling {
	return Sampling{Period: 5, IntervalRecords: 1000, WarmupFraction: 0.25}
}

func TestSamplingValidate(t *testing.T) {
	good := []Sampling{
		{},
		{Period: 1},
		testSampling(),
		{Period: 2}, // all defaults
		{Period: 10, IntervalRecords: 100, WarmupFraction: 0.5, Confidence: 0.99},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good policy %d rejected: %v", i, err)
		}
	}
	bad := []Sampling{
		{Period: -1},
		{Period: 4, IntervalRecords: -5},
		{Period: 4, WarmupFraction: -0.1},
		{Period: 4, WarmupFraction: 1},
		{Period: 4, Confidence: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestSamplingSegments(t *testing.T) {
	p := Sampling{Period: 4, IntervalRecords: 100, WarmupFraction: 0.25}
	segs := p.segments(1000, 850)
	// warmup+first gap fused (1275,F) + [25 D, 100 D-measured] + gap
	// (275,F) + [25 D, 100 D-measured] + 50 F tail.
	var total int64
	intervals := 0
	measuredRounds := int64(0)
	for _, s := range segs {
		total += s.rounds
		if s.measured {
			intervals++
			measuredRounds += s.rounds
			if s.functional {
				t.Fatal("measured functional segment")
			}
		}
	}
	if total != 1850 {
		t.Fatalf("segments cover %d rounds, want 1850", total)
	}
	if intervals != 2 || measuredRounds != 200 {
		t.Fatalf("got %d intervals over %d rounds, want 2 over 200", intervals, measuredRounds)
	}
	if got := p.Intervals(850); got != 2 {
		t.Fatalf("Intervals(850) = %d, want 2", got)
	}
	if segs[0].rounds != 1275 || !segs[0].functional || segs[0].llcMask != 0 {
		t.Fatalf("fused warmup segment %+v not full-warm functional", segs[0])
	}

	// A gap longer than the near zone splits into a strided far zone
	// and a full-warm near zone.
	long := Sampling{Period: 40, IntervalRecords: 250, WarmupFraction: 0.3}
	segs = long.segments(25000, 10000)
	if len(segs) < 3 {
		t.Fatalf("unexpected schedule %+v", segs)
	}
	far, near := segs[0], segs[1]
	gap := int64(40*250 - 250 - 75)
	if far.rounds != 25000+gap-llcNearRounds || !far.functional || far.llcMask != llcFarStride-1 {
		t.Fatalf("far zone %+v", far)
	}
	if near.rounds != llcNearRounds || !near.functional || near.llcMask != 0 {
		t.Fatalf("near zone %+v", near)
	}
}

func TestRunSpecRejectsUnsampleableWindow(t *testing.T) {
	spec := testSpec(testConfig())
	spec.MeasureRecords = 3000 // one chunk of the policy below is 5000
	spec.Sampling = testSampling()
	if _, err := Run(spec); err == nil {
		t.Fatal("window smaller than one sampling chunk accepted")
	}
	spec.Sampling.Period = -3
	if _, err := Run(spec); err == nil {
		t.Fatal("negative period accepted")
	}
}

// TestRunSampledReportsErrorBounds checks the shape of a sampled
// result: interval count, confidence metadata, and plausible headline
// metrics close to the exact run's.
func TestRunSampledReportsErrorBounds(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
	spec := testSpec(cfg)
	spec.Sampling = testSampling()

	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sampled
	if st == nil {
		t.Fatal("sampled run returned no SampleStats")
	}
	wantIntervals := int(spec.Sampling.Intervals(spec.MeasureRecords))
	if st.Intervals != wantIntervals {
		t.Fatalf("got %d intervals, want %d", st.Intervals, wantIntervals)
	}
	if st.Confidence != 0.95 {
		t.Fatalf("confidence %v, want default 0.95", st.Confidence)
	}
	if st.MPKI.StdErr < 0 || st.Throughput.StdErr < 0 {
		t.Fatal("negative standard error")
	}
	if st.MPKI.CIHalfWidth < st.MPKI.StdErr {
		t.Fatal("CI narrower than one standard error")
	}
	// The measured window is Intervals*IntervalRecords rounds.
	wantRecords := int64(wantIntervals) * spec.Sampling.IntervalRecords * int64(cfg.Cores)
	if res.Records != wantRecords {
		t.Fatalf("measured %d records, want %d", res.Records, wantRecords)
	}

	exact, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Sampled != nil {
		t.Fatal("exact run carries SampleStats")
	}
	// Throughput (cycle-side) estimates are tight even at this tiny
	// 4-core scale; MPKI rides the bursty coverage process, so its
	// bound here is only a sanity check — the statistically meaningful
	// contract is that the run's own confidence interval covers the
	// deviation (see TestSampledAccuracy at the package root for the
	// full-scale accuracy gates).
	if relErr := math.Abs(res.Throughput-exact.Throughput) / exact.Throughput; relErr > 0.03 {
		t.Fatalf("sampled Throughput %.3f vs exact %.3f: rel err %.1f%% (sanity bound 3%%)",
			res.Throughput, exact.Throughput, relErr*100)
	}
	if relErr := math.Abs(res.MPKI-exact.MPKI) / exact.MPKI; relErr > 0.35 {
		t.Fatalf("sampled MPKI %.3f vs exact %.3f: rel err %.1f%% (sanity bound 35%%)",
			res.MPKI, exact.MPKI, relErr*100)
	}
}

// TestRunSampledDeterministic locks the reproducibility contract:
// identical spec, identical Result, bit for bit.
func TestRunSampledDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config2K()}
	spec := testSpec(cfg)
	spec.Sampling = testSampling()
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical sampled runs differ")
	}
}

// warmSystems builds two identical systems over the same workload
// stream and steps one through the detailed path and the other through
// the functional path for the same rounds.
func warmSystems(t *testing.T, cfg Config, rounds int64) (detailed, functional *System) {
	t.Helper()
	build := func() *System {
		w, err := workload.Cached(testWorkload())
		if err != nil {
			t.Fatal(err)
		}
		readers := make([]trace.Reader, cfg.Cores)
		for i := range readers {
			readers[i] = w.NewCoreReader(i)
		}
		sys, err := New(cfg, readers)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	detailed = build()
	if err := detailed.Run(rounds); err != nil {
		t.Fatal(err)
	}
	functional = build()
	functional.setFunctional(true)
	if err := functional.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return detailed, functional
}

// TestFunctionalWarmStateMatchesDetailed is the warmed-structure
// differential: for every design point, stepping a system N records
// through the functional path must leave the slow-warming structures —
// per-core L1-I content (canonical fingerprint), L1-I hit/miss
// counters, branch predictor state, and (where the history is a pure
// function of the record stream) the prefetcher history — bit-identical
// to stepping the detailed path over the same records. TIFS's history
// follows the effective miss stream, which prefetching itself perturbs,
// so its history row runs in prediction mode where the two coincide
// (the access-vs-miss-stream fragility of the paper's Section 2.2).
func TestFunctionalWarmStateMatchesDetailed(t *testing.T) {
	type historyOf func(s *System) interface{}
	shiftHist := func(s *System) interface{} {
		hs := s.SharedHistories()
		if len(hs) != 1 {
			t.Fatalf("%d shared histories", len(hs))
		}
		return hs[0].History()
	}
	cases := []struct {
		name    string
		mut     func(*Config)
		history historyOf
	}{
		{"baseline", func(c *Config) {}, nil},
		{"nextline", func(c *Config) {
			c.Prefetcher = PrefetcherSpec{Kind: KindNextLine, NextLineDegree: 1}
		}, nil},
		{"pif2k", func(c *Config) {
			c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config2K()}
		}, func(s *System) interface{} { return s.pf[1].(*pif.PIF).History() }},
		{"pif32k", func(c *Config) {
			c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config32K()}
		}, func(s *System) interface{} { return s.pf[1].(*pif.PIF).History() }},
		{"zerolat-shift", func(c *Config) {
			c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Dedicated)}
		}, shiftHist},
		{"shift", func(c *Config) {
			c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
		}, shiftHist},
		{"tifs-prediction", func(c *Config) {
			c.Mode = ModePrediction
			c.Prefetcher = PrefetcherSpec{Kind: KindTIFS, TIFS: tifs.DefaultConfig()}
		}, func(s *System) interface{} { return s.pf[1].(*tifs.TIFS).History() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(&cfg)
			det, fun := warmSystems(t, cfg, 20000)
			for i := 0; i < cfg.Cores; i++ {
				if det.l1i[i].Fingerprint() != fun.l1i[i].Fingerprint() {
					t.Errorf("core %d: L1-I content diverged", i)
				}
				if det.l1i[i].Stats() != fun.l1i[i].Stats() {
					t.Errorf("core %d: L1-I counters diverged: detailed %+v functional %+v",
						i, det.l1i[i].Stats(), fun.l1i[i].Stats())
				}
				if !reflect.DeepEqual(det.bp[i], fun.bp[i]) {
					t.Errorf("core %d: branch predictor state diverged", i)
				}
			}
			if tc.history != nil && !reflect.DeepEqual(tc.history(det), tc.history(fun)) {
				t.Error("history contents diverged between detailed and functional stepping")
			}
		})
	}
}

// TestRunBatchSampledMatchesRun mirrors TestRunBatchMatchesRun for the
// sampled mode: every design simulated in one sampled batched pass must
// be bit-identical to its standalone sampled Run — including the
// per-interval error bounds.
func TestRunBatchSampledMatchesRun(t *testing.T) {
	specs := batchDesigns()
	for i := range specs {
		specs[i].Sampling = testSampling()
	}
	batched, err := RunBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		solo, err := Run(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("spec %d (%s): sampled batched result differs from sampled Run",
				i, spec.Config.Prefetcher.Name())
		}
	}
}

// TestRunBatchSampledMixedPredictors is the shared-L1 fast path's
// predictor regression: followers that evaluate their own branch
// predictor (the batch could not share predictors) must keep it
// evolving through functional gaps — the miss-only replay shortcut
// once froze it, silently skewing mispredict accounting.
func TestRunBatchSampledMixedPredictors(t *testing.T) {
	a := testConfig()
	b := testConfig()
	b.BranchPredictorEntries = 4096
	c := testConfig()
	c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
	c.BranchPredictorEntries = 0
	specs := []RunSpec{testSpec(a), testSpec(b), testSpec(c)}
	for i := range specs {
		specs[i].Sampling = testSampling()
	}
	batched, err := RunBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		solo, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("spec %d: mixed-predictor sampled batch diverged from Run", i)
		}
	}
}

// TestRunBatchRejectsMixedSampling: cells with different sampling
// schedules never share a lockstep schedule, while normalization-
// equivalent (and confidence-only-different) policies batch fine.
func TestRunBatchRejectsMixedSampling(t *testing.T) {
	exact := testSpec(testConfig())
	sampled := exact
	sampled.Sampling = testSampling()
	if _, err := RunBatch([]RunSpec{exact, sampled}); err == nil {
		t.Fatal("mixed exact/sampled batch accepted")
	}
	other := sampled
	other.Sampling.Period = 10
	if _, err := RunBatch([]RunSpec{sampled, other}); err == nil {
		t.Fatal("mixed-period batch accepted")
	}
	// Period 0 and Period 1 both mean "exact": schedules are equal.
	one := exact
	one.Sampling.Period = 1
	if _, err := RunBatch([]RunSpec{exact, one}); err != nil {
		t.Fatalf("disabled-policy spelling rejected: %v", err)
	}
	// Confidence shapes only the reported bounds; each member keeps its
	// own level and stays bit-identical to its standalone run.
	conf := sampled
	conf.Sampling.Confidence = 0.99
	batched, err := RunBatch([]RunSpec{sampled, conf})
	if err != nil {
		t.Fatalf("confidence-only batch rejected: %v", err)
	}
	for i, spec := range []RunSpec{sampled, conf} {
		solo, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("member %d: confidence-only batch diverged from Run", i)
		}
	}
	if batched[0].Sampled.Confidence != 0.95 || batched[1].Sampled.Confidence != 0.99 {
		t.Errorf("per-member confidence lost: %v / %v",
			batched[0].Sampled.Confidence, batched[1].Sampled.Confidence)
	}
}

// TestRunMeasuredSingleDryCore: a single core's stream running dry must
// surface as a typed error even while the other cores keep the lockstep
// round loop alive.
func TestRunMeasuredSingleDryCore(t *testing.T) {
	cfg := testConfig()
	w, err := workload.Cached(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]trace.Reader, cfg.Cores)
	for i := range readers {
		if i == 2 {
			recs, err := trace.Collect(trace.Limit(w.NewCoreReader(i), 8000), 8000)
			if err != nil {
				t.Fatal(err)
			}
			readers[i] = &opaqueReader{r: trace.NewSliceReader(recs)}
		} else {
			readers[i] = w.NewCoreReader(i)
		}
	}
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunMeasured(5000, 10000)
	var short *StreamShortError
	if !errors.As(err, &short) {
		t.Fatalf("single dry core: got %v, want StreamShortError", err)
	}
	if short.Core != 2 || short.Have != 8000 {
		t.Fatalf("unexpected error detail: %+v", short)
	}
}

// TestRunSpecRejectsSingleInterval: one measured interval has no
// dispersion to estimate, so the window must fit at least two.
func TestRunSpecRejectsSingleInterval(t *testing.T) {
	spec := testSpec(testConfig())
	spec.Sampling = testSampling() // chunk = 5000 rounds
	spec.MeasureRecords = 5000     // exactly one interval
	if _, err := Run(spec); err == nil {
		t.Fatal("single-interval window accepted")
	}
	spec.MeasureRecords = 10000 // two intervals
	if _, err := Run(spec); err != nil {
		t.Fatalf("two-interval window rejected: %v", err)
	}
}

// shortReaders builds per-core readers that can supply only n records.
func shortReaders(t *testing.T, cfg Config, n int64, declare bool) []trace.Reader {
	t.Helper()
	w, err := workload.Cached(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]trace.Reader, cfg.Cores)
	for i := range readers {
		if declare {
			readers[i] = trace.Limit(w.NewCoreReader(i), n)
		} else {
			// Collect then replay without implementing trace.Supplier's
			// declaration... SliceReader implements Supplier too, so wrap
			// it in an opaque reader to exercise the runtime detection.
			recs, err := trace.Collect(trace.Limit(w.NewCoreReader(i), n), int(n))
			if err != nil {
				t.Fatal(err)
			}
			readers[i] = &opaqueReader{r: trace.NewSliceReader(recs)}
		}
	}
	return readers
}

// opaqueReader hides any Supplier implementation of the wrapped reader.
type opaqueReader struct{ r trace.Reader }

func (o *opaqueReader) Next() (trace.Record, error) { return o.r.Next() }

// TestRunMeasuredStreamShort locks the supply validation: a stream that
// declares too small a supply fails up front, and one that silently
// runs dry fails with the typed runtime error instead of short-
// measuring.
func TestRunMeasuredStreamShort(t *testing.T) {
	cfg := testConfig()
	const warm, measure = 5000, 10000

	// Upfront: the reader declares its supply via trace.Supplier.
	sys, err := New(cfg, shortReaders(t, cfg, 8000, true))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunMeasured(warm, measure)
	var short *StreamShortError
	if !errors.As(err, &short) {
		t.Fatalf("declared-short stream: got %v, want StreamShortError", err)
	}
	if short.Phase != "validate" || short.Need != warm+measure || short.Have != 8000 {
		t.Fatalf("unexpected error detail: %+v", short)
	}

	// Runtime: an opaque reader runs dry mid-measure.
	sys, err = New(cfg, shortReaders(t, cfg, 8000, false))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunMeasured(warm, measure)
	short = nil
	if !errors.As(err, &short) {
		t.Fatalf("opaque short stream: got %v, want StreamShortError", err)
	}
	if short.Phase != "measure" || short.Have != 8000-warm {
		t.Fatalf("unexpected runtime error detail: %+v", short)
	}

	// Dry during warmup.
	sys, err = New(cfg, shortReaders(t, cfg, 3000, false))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunMeasured(warm, measure)
	short = nil
	if !errors.As(err, &short) || short.Phase != "warmup" {
		t.Fatalf("warmup-short stream: got %v (%+v)", err, short)
	}

	// A sufficient declared supply passes.
	sys, err = New(cfg, shortReaders(t, cfg, warm+measure, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunMeasured(warm, measure); err != nil {
		t.Fatalf("sufficient stream rejected: %v", err)
	}
}

// TestRunSampledStreamShort: the sampled runner applies the same
// supply contract.
func TestRunSampledStreamShort(t *testing.T) {
	cfg := testConfig()
	p := testSampling()
	sys, err := New(cfg, shortReaders(t, cfg, 9000, true))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunSampled(5000, 10000, p)
	var short *StreamShortError
	if !errors.As(err, &short) || short.Phase != "validate" {
		t.Fatalf("got %v, want upfront StreamShortError", err)
	}

	sys, err = New(cfg, shortReaders(t, cfg, 9000, false))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.RunSampled(5000, 10000, p)
	short = nil
	if !errors.As(err, &short) || short.Phase != "measure" {
		t.Fatalf("got %v (%+v), want runtime StreamShortError in measure", err, short)
	}
}
