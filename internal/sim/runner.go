package sim

import (
	"fmt"

	"shift/internal/core"
	"shift/internal/trace"
	"shift/internal/workload"
)

// RunSpec bundles everything needed for one measured simulation: the
// system configuration, the workload(s), and the warmup/measurement
// window lengths (in trace records per core, the SimFlex-style warmup
// exclusion of Section 5.1).
type RunSpec struct {
	// Config is the system under test.
	Config Config
	// Workload runs on all cores (homogeneous server workload).
	Workload workload.Params
	// Groups optionally consolidates the CMP: Groups[i] runs
	// GroupWorkloads[i] (Section 4.3 / Figure 10). When set, Workload is
	// ignored and, for SHIFT, one shared history is created per group.
	Groups         []core.Group
	GroupWorkloads []workload.Params
	// Source optionally supplies the per-core record streams directly
	// (phase-sequenced workloads, trace replay — anything implementing
	// workload.Source). When set, Workload is ignored and Groups must be
	// empty. The source must be deterministic per core: batch members
	// and standalone runs draw fresh readers from it and must observe
	// identical records.
	Source workload.Source
	// WarmupRecords and MeasureRecords are per-core record counts.
	WarmupRecords  int64
	MeasureRecords int64
	// Sampling optionally enables SMARTS-style interval sampling with
	// functional warming between detailed intervals (see Sampling). The
	// zero value keeps the exact methodology, which is the default.
	Sampling Sampling
}

// Validate reports the first problem with r, or nil.
func (r RunSpec) Validate() error {
	if err := r.Config.Validate(); err != nil {
		return err
	}
	if r.MeasureRecords <= 0 {
		return fmt.Errorf("sim: MeasureRecords %d <= 0", r.MeasureRecords)
	}
	if r.WarmupRecords < 0 {
		return fmt.Errorf("sim: WarmupRecords %d < 0", r.WarmupRecords)
	}
	if err := r.Sampling.Validate(); err != nil {
		return err
	}
	// At least two measured intervals must fit: a single interval has
	// no dispersion to estimate, so its "error bounds" would read as
	// zero — false confidence for the least-trustworthy configuration.
	if p := r.Sampling.withDefaults(); p.Enabled() && p.Intervals(r.MeasureRecords) < 2 {
		return fmt.Errorf("sim: MeasureRecords %d fits fewer than two sampling intervals (chunk is %d records: period %d x interval %d)",
			r.MeasureRecords, p.chunkRounds(), p.Period, p.IntervalRecords)
	}
	if r.Source != nil {
		if len(r.Groups) != 0 {
			return fmt.Errorf("sim: Source cannot be combined with Groups")
		}
		return nil
	}
	if len(r.Groups) != len(r.GroupWorkloads) {
		return fmt.Errorf("sim: %d groups but %d group workloads", len(r.Groups), len(r.GroupWorkloads))
	}
	if len(r.Groups) == 0 {
		return r.Workload.Validate()
	}
	for _, p := range r.GroupWorkloads {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the spec: build workloads and readers, construct the
// system, run warmup, measure, and return the results.
func Run(spec RunSpec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	cfg := spec.Config
	readers := make([]trace.Reader, cfg.Cores)

	if spec.Source != nil {
		for i := range readers {
			r, err := spec.Source.NewCoreReader(i)
			if err != nil {
				return Result{}, fmt.Errorf("sim: source reader for core %d: %w", i, err)
			}
			readers[i] = r
		}
	} else if len(spec.Groups) == 0 {
		w, err := workload.Cached(spec.Workload)
		if err != nil {
			return Result{}, err
		}
		for i := range readers {
			readers[i] = w.NewCoreReader(i)
		}
	} else {
		// Consolidated: per-group workloads; the prefetcher spec (for
		// SHIFT) gets the same groups so histories align with traces.
		if cfg.Prefetcher.Kind == KindSHIFT {
			cfg.Prefetcher.Groups = spec.Groups
		}
		for gi, g := range spec.Groups {
			w, err := workload.Cached(spec.GroupWorkloads[gi])
			if err != nil {
				return Result{}, fmt.Errorf("group %q: %w", g.Name, err)
			}
			for _, c := range g.Cores {
				if c < 0 || c >= cfg.Cores {
					return Result{}, fmt.Errorf("group %q core %d out of range", g.Name, c)
				}
				readers[c] = w.NewCoreReader(c)
			}
		}
		for i, r := range readers {
			if r == nil {
				return Result{}, fmt.Errorf("core %d not assigned to any group", i)
			}
		}
	}

	sys, err := New(cfg, readers)
	if err != nil {
		return Result{}, err
	}
	if spec.Sampling.Enabled() {
		return sys.RunSampled(spec.WarmupRecords, spec.MeasureRecords, spec.Sampling)
	}
	return sys.RunMeasured(spec.WarmupRecords, spec.MeasureRecords)
}

// checkSupply rejects, up front, streams that declare (via
// trace.Supplier) fewer records than the window needs.
func (s *System) checkSupply(need int64) error {
	for i, r := range s.readers {
		if sup, ok := r.(trace.Supplier); ok {
			if have := sup.Supply(); have < need {
				return &StreamShortError{Phase: "validate", Core: i, Need: need, Have: have}
			}
		}
	}
	return nil
}

// consumedBase snapshots the per-core consumed-record counters so
// checkConsumed can verify a window afterwards.
func (s *System) consumedBase() []int64 {
	base := make([]int64, len(s.records))
	copy(base, s.records)
	return base
}

// checkConsumed verifies that every core consumed the full window since
// base. The lockstep round loop keeps counting rounds while any core is
// still active, so a single dry stream would otherwise short-measure
// its core silently while the run as a whole reports success.
func (s *System) checkConsumed(base []int64, need int64) error {
	for c := range s.records {
		if got := s.records[c] - base[c]; got < need {
			return &StreamShortError{Phase: "measure", Core: c, Need: need, Have: got}
		}
	}
	return nil
}

// RunMeasured executes the exact methodology on an already-constructed
// system: warmup, measurement mark, measure window, Results. Unlike Run
// (which it backs) it works with custom trace readers; a stream that
// cannot supply the full window fails with a *StreamShortError instead
// of silently measuring fewer records.
func (s *System) RunMeasured(warmup, measure int64) (Result, error) {
	if measure <= 0 {
		return Result{}, fmt.Errorf("sim: MeasureRecords %d <= 0", measure)
	}
	if err := s.checkSupply(warmup + measure); err != nil {
		return Result{}, err
	}
	base := s.consumedBase()
	if warmup > 0 {
		ran, err := s.runRounds(warmup)
		if err != nil {
			return Result{}, err
		}
		if ran < warmup {
			return Result{}, &StreamShortError{Phase: "warmup", Core: -1, Need: warmup, Have: ran}
		}
	}
	s.MarkMeasurement()
	ran, err := s.runRounds(measure)
	if err != nil {
		return Result{}, err
	}
	if ran < measure {
		return Result{}, &StreamShortError{Phase: "measure", Core: -1, Need: measure, Have: ran}
	}
	if err := s.checkConsumed(base, warmup+measure); err != nil {
		return Result{}, err
	}
	return s.Results(), nil
}

// RunSampled executes the sampled methodology on an already-constructed
// system: the deterministic schedule of functional fast-forwarding and
// detailed intervals that p lays out over the warmup+measure window
// (see Sampling). Short streams fail with a *StreamShortError exactly
// like RunMeasured.
func (s *System) RunSampled(warmup, measure int64, p Sampling) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if !p.Enabled() {
		return s.RunMeasured(warmup, measure)
	}
	if p.withDefaults().Intervals(measure) < 2 {
		return Result{}, fmt.Errorf("sim: MeasureRecords %d fits fewer than two sampling intervals", measure)
	}
	if err := s.checkSupply(warmup + measure); err != nil {
		return Result{}, err
	}
	base := s.consumedBase()
	var done int64
	need := warmup + measure
	for _, seg := range p.segments(warmup, measure) {
		s.applySegment(seg)
		if seg.measured {
			s.BeginInterval()
		}
		ran, err := s.runRounds(seg.rounds)
		if err != nil {
			s.setFunctional(false)
			return Result{}, err
		}
		done += ran
		if ran < seg.rounds {
			s.setFunctional(false)
			phase := "measure"
			if done <= warmup {
				phase = "warmup"
			}
			return Result{}, &StreamShortError{Phase: phase, Core: -1, Need: need, Have: done}
		}
		if seg.measured {
			s.EndInterval()
		}
	}
	s.setFunctional(false)
	if err := s.checkConsumed(base, need); err != nil {
		return Result{}, err
	}
	return s.SampledResults(p), nil
}
