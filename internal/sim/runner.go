package sim

import (
	"fmt"

	"shift/internal/core"
	"shift/internal/trace"
	"shift/internal/workload"
)

// RunSpec bundles everything needed for one measured simulation: the
// system configuration, the workload(s), and the warmup/measurement
// window lengths (in trace records per core, the SimFlex-style warmup
// exclusion of Section 5.1).
type RunSpec struct {
	// Config is the system under test.
	Config Config
	// Workload runs on all cores (homogeneous server workload).
	Workload workload.Params
	// Groups optionally consolidates the CMP: Groups[i] runs
	// GroupWorkloads[i] (Section 4.3 / Figure 10). When set, Workload is
	// ignored and, for SHIFT, one shared history is created per group.
	Groups         []core.Group
	GroupWorkloads []workload.Params
	// WarmupRecords and MeasureRecords are per-core record counts.
	WarmupRecords  int64
	MeasureRecords int64
}

// Validate reports the first problem with r, or nil.
func (r RunSpec) Validate() error {
	if err := r.Config.Validate(); err != nil {
		return err
	}
	if r.MeasureRecords <= 0 {
		return fmt.Errorf("sim: MeasureRecords %d <= 0", r.MeasureRecords)
	}
	if r.WarmupRecords < 0 {
		return fmt.Errorf("sim: WarmupRecords %d < 0", r.WarmupRecords)
	}
	if len(r.Groups) != len(r.GroupWorkloads) {
		return fmt.Errorf("sim: %d groups but %d group workloads", len(r.Groups), len(r.GroupWorkloads))
	}
	if len(r.Groups) == 0 {
		return r.Workload.Validate()
	}
	for _, p := range r.GroupWorkloads {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the spec: build workloads and readers, construct the
// system, run warmup, measure, and return the results.
func Run(spec RunSpec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	cfg := spec.Config
	readers := make([]trace.Reader, cfg.Cores)

	if len(spec.Groups) == 0 {
		w, err := workload.Cached(spec.Workload)
		if err != nil {
			return Result{}, err
		}
		for i := range readers {
			readers[i] = w.NewCoreReader(i)
		}
	} else {
		// Consolidated: per-group workloads; the prefetcher spec (for
		// SHIFT) gets the same groups so histories align with traces.
		if cfg.Prefetcher.Kind == KindSHIFT {
			cfg.Prefetcher.Groups = spec.Groups
		}
		for gi, g := range spec.Groups {
			w, err := workload.Cached(spec.GroupWorkloads[gi])
			if err != nil {
				return Result{}, fmt.Errorf("group %q: %w", g.Name, err)
			}
			for _, c := range g.Cores {
				if c < 0 || c >= cfg.Cores {
					return Result{}, fmt.Errorf("group %q core %d out of range", g.Name, c)
				}
				readers[c] = w.NewCoreReader(c)
			}
		}
		for i, r := range readers {
			if r == nil {
				return Result{}, fmt.Errorf("core %d not assigned to any group", i)
			}
		}
	}

	sys, err := New(cfg, readers)
	if err != nil {
		return Result{}, err
	}
	if spec.WarmupRecords > 0 {
		if err := sys.Run(spec.WarmupRecords); err != nil {
			return Result{}, err
		}
	}
	sys.MarkMeasurement()
	if err := sys.Run(spec.MeasureRecords); err != nil {
		return Result{}, err
	}
	return sys.Results(), nil
}
