package sim

import (
	"testing"

	"shift/internal/core"
	"shift/internal/noc"
	"shift/internal/pif"
	"shift/internal/workload"
)

// catalogConfig shrinks the CMP to 4 cores on a 2x2 mesh so the whole
// catalog sweep stays test-sized.
func catalogConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Mesh = noc.Config{Width: 2, Height: 2, HopCycles: 3}
	return cfg
}

// runCatalog executes one design point on a catalog workload.
func runCatalog(t *testing.T, wp workload.Params, mut func(*Config)) Result {
	t.Helper()
	cfg := catalogConfig()
	if mut != nil {
		mut(&cfg)
	}
	res, err := Run(RunSpec{
		Config:         cfg,
		Workload:       wp,
		WarmupRecords:  10000,
		MeasureRecords: 15000,
	})
	if err != nil {
		t.Fatalf("%s: %v", wp.Name, err)
	}
	return res
}

// checkCounters asserts the self-consistency every run must satisfy,
// whatever the design: non-negative counters, accesses == records,
// covered + missed bounded by accesses, and demand traffic equal to
// effective misses.
func checkCounters(t *testing.T, label string, res Result) {
	t.Helper()
	f := res.Fetch
	for name, v := range map[string]int64{
		"accesses": f.Accesses, "misses": f.Misses, "pb-hits": f.PBHits,
		"late-pb-hits": f.LatePBHits, "discards": f.Discards,
		"records": res.Records, "instructions": res.Instructions,
	} {
		if v < 0 {
			t.Errorf("%s: %s = %d < 0", label, name, v)
		}
	}
	if f.Accesses != res.Records {
		t.Errorf("%s: accesses %d != records %d", label, f.Accesses, res.Records)
	}
	if f.Misses+f.PBHits > f.Accesses {
		t.Errorf("%s: misses %d + covered %d > accesses %d", label, f.Misses, f.PBHits, f.Accesses)
	}
	if f.LatePBHits > f.PBHits {
		t.Errorf("%s: late hits %d > hits %d", label, f.LatePBHits, f.PBHits)
	}
	if got := res.Traffic[noc.DemandInstr]; got != f.Misses {
		t.Errorf("%s: demand instr traffic %d != misses %d", label, got, f.Misses)
	}
	for cls, v := range res.Traffic {
		if v < 0 {
			t.Errorf("%s: traffic[%d] = %d < 0", label, cls, v)
		}
	}
	for i, cr := range res.PerCore {
		if cr.Cycles <= 0 || cr.Instructions <= 0 {
			t.Errorf("%s: core %d empty window", label, i)
		}
		if cr.FetchStall+cr.BranchStall > cr.Cycles {
			t.Errorf("%s: core %d stalls exceed cycles", label, i)
		}
	}
}

// TestCrossDesignInvariants sweeps every workload in the catalog across
// the four history-based design points and checks the orderings the
// paper's evaluation rests on: dedicated zero-latency history storage
// never covers fewer baseline misses than the virtualized (in-LLC)
// history, and a 32K-record PIF never covers fewer than the 2K-record
// equal-cost PIF. Coverage is measured as the fraction of baseline
// misses eliminated, the Figure 7 metric.
func TestCrossDesignInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog sweep is not short")
	}
	for _, wp := range workload.Catalog() {
		wp := wp
		t.Run(wp.Name, func(t *testing.T) {
			t.Parallel()
			base := runCatalog(t, wp, nil)
			checkCounters(t, wp.Name+"/baseline", base)
			if base.Fetch.Misses == 0 {
				t.Fatalf("%s: baseline saw no misses", wp.Name)
			}
			coverage := func(res Result) float64 {
				return 1 - float64(res.Fetch.Misses)/float64(base.Fetch.Misses)
			}

			zero := runCatalog(t, wp, func(c *Config) {
				c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Dedicated)}
			})
			virt := runCatalog(t, wp, func(c *Config) {
				c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
			})
			pif32 := runCatalog(t, wp, func(c *Config) {
				c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config32K()}
			})
			pif2 := runCatalog(t, wp, func(c *Config) {
				c.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: pif.Config2K()}
			})
			checkCounters(t, wp.Name+"/zerolat", zero)
			checkCounters(t, wp.Name+"/virtualized", virt)
			checkCounters(t, wp.Name+"/pif32k", pif32)
			checkCounters(t, wp.Name+"/pif2k", pif2)

			if cz, cv := coverage(zero), coverage(virt); cz < cv {
				t.Errorf("ZeroLat coverage %.3f < virtualized %.3f", cz, cv)
			}
			if c32, c2 := coverage(pif32), coverage(pif2); c32 < c2 {
				t.Errorf("PIF_32K coverage %.3f < PIF_2K %.3f", c32, c2)
			}
		})
	}
}
