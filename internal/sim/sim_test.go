package sim

import (
	"testing"

	"shift/internal/core"
	"shift/internal/noc"
	"shift/internal/pif"
	"shift/internal/trace"
	"shift/internal/workload"
)

// testWorkload is a small, fast workload for unit tests.
func testWorkload() workload.Params {
	return workload.Params{
		Name: "sim-test", Seed: 7,
		FootprintBytes:   192 * 1024,
		OSFootprintBytes: 16 * 1024,
		RequestTypes:     6, RequestZipf: 0.5,
		FuncBlocksMean: 5, CallDepth: 6, CallSiteDensity: 0.3,
		VaryProb: 0.05, SkipProb: 0.05,
		TrapRate: 0.003, SchedProb: 0.2,
		LoopWeight: 0.1,
	}
}

// testConfig shrinks the system to 4 cores on a 2x2 mesh for speed.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Mesh = noc.Config{Width: 2, Height: 2, HopCycles: 3}
	cfg.BranchPredictorEntries = 1024
	return cfg
}

func testSpec(cfg Config) RunSpec {
	return RunSpec{
		Config:         cfg,
		Workload:       testWorkload(),
		WarmupRecords:  20000,
		MeasureRecords: 30000,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no cores", func(c *Config) { c.Cores = 0 }},
		{"too many cores", func(c *Config) { c.Cores = 99 }},
		{"bad L1I", func(c *Config) { c.L1I.Assoc = 0 }},
		{"bad LLC", func(c *Config) { c.LLCBankBytes = 1000 }},
		{"no MSHRs", func(c *Config) { c.L1MSHRs = 0 }},
		{"negative latency", func(c *Config) { c.MemCycles = -1 }},
		{"bad elim", func(c *Config) { c.ElimProb = 1.5 }},
		{"bad data rate", func(c *Config) { c.DataMPKI = -1 }},
		{"bad pf kind", func(c *Config) { c.Prefetcher.Kind = PrefetcherKind(9) }},
		{"bad pif", func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindPIF} }},
		{"bad shift", func(c *Config) { c.Prefetcher = PrefetcherSpec{Kind: KindSHIFT} }},
	}
	for _, m := range mutations {
		c := DefaultConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestSpecNames(t *testing.T) {
	if (PrefetcherSpec{Kind: KindNone}).Name() != "Baseline" {
		t.Error("baseline name")
	}
	if (PrefetcherSpec{Kind: KindNextLine}).Name() != "NextLine" {
		t.Error("nextline name")
	}
	s := PrefetcherSpec{Kind: KindPIF, PIF: pif.Config32K()}
	if s.Name() != "PIF_32K" {
		t.Error("pif name")
	}
	sh := PrefetcherSpec{Kind: KindSHIFT, SHIFT: core.DefaultConfig()}
	if sh.Name() != "SHIFT" {
		t.Error("shift name")
	}
	if ModePrediction.String() != "prediction" || ModePrefetch.String() != "prefetch" {
		t.Error("mode names")
	}
	if KindPIF.String() != "pif" {
		t.Error("kind names")
	}
}

func TestBaselineRun(t *testing.T) {
	res, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 4*30000 {
		t.Errorf("Records = %d, want 120000", res.Records)
	}
	if res.Instructions <= res.Records {
		t.Error("instructions should exceed records")
	}
	if res.Throughput <= 0 {
		t.Error("throughput should be positive")
	}
	if res.Fetch.Misses == 0 {
		t.Error("a 192KB footprint should miss in a 32KB L1-I")
	}
	if res.MPKI <= 0 {
		t.Error("MPKI should be positive")
	}
	if res.FetchStallFraction <= 0 || res.FetchStallFraction >= 1 {
		t.Errorf("FetchStallFraction = %v", res.FetchStallFraction)
	}
	if res.BranchAccuracy < 0.5 || res.BranchAccuracy > 1 {
		t.Errorf("BranchAccuracy = %v", res.BranchAccuracy)
	}
	if res.Traffic[noc.DemandInstr] == 0 || res.Traffic[noc.DemandData] == 0 {
		t.Error("demand traffic not accounted")
	}
	if res.DemandTraffic() != res.Traffic[noc.DemandInstr]+res.Traffic[noc.DemandData] {
		t.Error("DemandTraffic mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Fetch.Misses != b.Fetch.Misses {
		t.Error("identical specs produced different results")
	}
}

func TestElimProbSpeedsUp(t *testing.T) {
	base, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.ElimProb = 1.0
	perfect, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if perfect.Throughput <= base.Throughput {
		t.Errorf("perfect I-cache throughput %v <= baseline %v", perfect.Throughput, base.Throughput)
	}
	if perfect.FetchStallFraction >= base.FetchStallFraction {
		t.Error("eliminating misses did not reduce stall fraction")
	}
}

func TestNextLineImproves(t *testing.T) {
	base, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindNextLine, NextLineDegree: 1}
	nl, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Fetch.PBHits == 0 {
		t.Error("next-line produced no useful prefetches")
	}
	if nl.Throughput <= base.Throughput {
		t.Errorf("next-line throughput %v <= baseline %v", nl.Throughput, base.Throughput)
	}
	if nl.Traffic[noc.PrefetchFill] == 0 {
		t.Error("no prefetch traffic accounted")
	}
}

func smallPIF() pif.Config {
	c := pif.Config32K()
	c.HistEntries = 4096
	c.IndexEntries = 1024
	c.Label = "PIF_small"
	return c
}

func TestPIFImprovesOverNextLine(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindNextLine}
	nl, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg = testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindPIF, PIF: smallPIF()}
	pf, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Throughput <= nl.Throughput {
		t.Errorf("PIF throughput %v <= next-line %v", pf.Throughput, nl.Throughput)
	}
	if pf.Fetch.Misses >= nl.Fetch.Misses {
		t.Errorf("PIF misses %d >= next-line %d", pf.Fetch.Misses, nl.Fetch.Misses)
	}
}

func smallSHIFT(v core.Variant) core.Config {
	c := core.DefaultConfig()
	c.Variant = v
	c.HistEntries = 4096
	return c
}

func TestSHIFTDedicatedWorks(t *testing.T) {
	base, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Dedicated)}
	sh, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Throughput <= base.Throughput {
		t.Errorf("SHIFT throughput %v <= baseline %v", sh.Throughput, base.Throughput)
	}
	if sh.Pf.CoveredMisses == 0 {
		t.Error("SHIFT covered no misses")
	}
}

func TestSHIFTVirtualizedTrafficAndPinning(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
	spec := testSpec(cfg)

	w, err := workload.New(spec.Workload)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]trace.Reader, cfg.Cores)
	for i := range readers {
		readers[i] = w.NewCoreReader(i)
	}
	sys, err := New(cfg, readers)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50000); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	if res.Traffic[noc.HistRead] == 0 {
		t.Error("no LogRead traffic")
	}
	if res.Traffic[noc.HistWrite] == 0 {
		t.Error("no LogWrite traffic")
	}
	if res.Traffic[noc.IndexUpdate] == 0 {
		t.Error("no index-update traffic")
	}
	if sys.LLCPinnedLines() == 0 {
		t.Error("no pinned history lines in the LLC")
	}
	maxPinned := smallSHIFT(core.Virtualized).HistoryBlocks()
	if got := sys.LLCPinnedLines(); got > maxPinned {
		t.Errorf("pinned lines %d exceed history size %d", got, maxPinned)
	}
	if len(sys.SharedHistories()) != 1 {
		t.Error("expected one shared history")
	}
	if sys.SharedHistories()[0].Stats().RecordsWritten == 0 {
		t.Error("generator wrote no records")
	}
}

func TestSHIFTVirtualizedSlowerThanDedicated(t *testing.T) {
	cfgD := testConfig()
	cfgD.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Dedicated)}
	ded, err := Run(testSpec(cfgD))
	if err != nil {
		t.Fatal(err)
	}
	cfgV := testConfig()
	cfgV.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
	vir, err := Run(testSpec(cfgV))
	if err != nil {
		t.Fatal(err)
	}
	// ZeroLat-SHIFT must be at least as fast as virtualized SHIFT
	// (Figure 8's ~1.5% gap).
	if vir.Throughput > ded.Throughput*1.01 {
		t.Errorf("virtualized %v implausibly faster than dedicated %v", vir.Throughput, ded.Throughput)
	}
}

func TestPredictionModeDoesNotPerturb(t *testing.T) {
	base, err := Run(testSpec(testConfig()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Mode = ModePrediction
	cfg.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Dedicated)}
	pred, err := Run(testSpec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if pred.Fetch.Misses != base.Fetch.Misses {
		t.Errorf("prediction mode changed miss count: %d vs %d", pred.Fetch.Misses, base.Fetch.Misses)
	}
	if pred.Pf.CoveredMisses == 0 {
		t.Error("prediction mode tracked no covered misses")
	}
	if pred.MissCoverage() <= 0 || pred.MissCoverage() > 1 {
		t.Errorf("MissCoverage = %v", pred.MissCoverage())
	}
}

func TestConsolidationRun(t *testing.T) {
	cfg := testConfig()
	cfg.Prefetcher = PrefetcherSpec{Kind: KindSHIFT, SHIFT: smallSHIFT(core.Virtualized)}
	wlA := testWorkload()
	wlB := testWorkload()
	wlB.Name = "sim-test-B"
	wlB.Seed = 99
	spec := RunSpec{
		Config: cfg,
		Groups: []core.Group{
			{Name: "A", Cores: []int{0, 1}},
			{Name: "B", Cores: []int{2, 3}},
		},
		GroupWorkloads: []workload.Params{wlA, wlB},
		WarmupRecords:  20000,
		MeasureRecords: 20000,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pf.CoveredMisses == 0 {
		t.Error("consolidated SHIFT covered nothing")
	}
}

func TestRunSpecValidation(t *testing.T) {
	ok := testSpec(testConfig())
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := ok
	bad.MeasureRecords = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero measure accepted")
	}
	bad = ok
	bad.WarmupRecords = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
	bad = ok
	bad.Workload.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("invalid workload accepted")
	}
	bad = ok
	bad.Groups = []core.Group{{Name: "A", Cores: []int{0}}}
	if err := bad.Validate(); err == nil {
		t.Error("groups without workloads accepted")
	}
}

func TestNewRejectsReaderMismatch(t *testing.T) {
	cfg := testConfig()
	if _, err := New(cfg, nil); err == nil {
		t.Error("nil readers accepted")
	}
}
