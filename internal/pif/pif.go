// Package pif implements Proactive Instruction Fetch (Ferdman et al.,
// MICRO 2011), the state-of-the-art per-core stream-based instruction
// prefetcher the paper compares against (Section 5.1).
//
// Each core owns a private history: a circular buffer of spatial region
// records built from its own retire-order instruction cache accesses, an
// index table from trigger addresses to history positions, and a stream
// address buffer file that replays streams and issues prefetches.
//
// Two design points from the paper are provided:
//
//   - PIF_32K: 32K-record history + 8K-entry index per core (the original
//     design, ~213KB/core, targeting 90% miss coverage);
//   - PIF_2K: 2K-record history + 512-entry index per core (equal total
//     storage to SHIFT's 240KB LLC tag overhead across 16 cores).
package pif

import (
	"fmt"

	"shift/internal/history"
	"shift/internal/prefetch"
	"shift/internal/trace"
)

// Config sizes one core's PIF.
type Config struct {
	// HistEntries is the per-core history buffer capacity in spatial
	// region records.
	HistEntries int
	// IndexEntries and IndexAssoc size the per-core index table.
	IndexEntries, IndexAssoc int
	// SAB configures the stream address buffers.
	SAB history.SABConfig
	// Label overrides the reported name (defaults to PIF_<HistEntries>).
	Label string
}

// Config32K is the paper's original PIF design point.
func Config32K() Config {
	return Config{HistEntries: 32768, IndexEntries: 8192, IndexAssoc: 4,
		SAB: history.DefaultSABConfig(), Label: "PIF_32K"}
}

// Config2K is the equal-storage-to-SHIFT design point.
func Config2K() Config {
	return Config{HistEntries: 2048, IndexEntries: 512, IndexAssoc: 4,
		SAB: history.DefaultSABConfig(), Label: "PIF_2K"}
}

// WithHistEntries returns the 32K config rescaled to n history records,
// with the index table scaled proportionally (for the Figure 6 sweep).
func WithHistEntries(n int) Config {
	c := Config32K()
	c.HistEntries = n
	idx := n / 4
	if idx < c.SAB.Streams {
		idx = c.SAB.Streams
	}
	// Keep the index set-associative with assoc 4 when divisible.
	c.IndexAssoc = 4
	for idx%c.IndexAssoc != 0 {
		idx++
	}
	c.IndexEntries = idx
	c.Label = fmt.Sprintf("PIF_%d", n)
	return c
}

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	if c.HistEntries <= 0 {
		return fmt.Errorf("pif: HistEntries %d <= 0", c.HistEntries)
	}
	if c.IndexEntries <= 0 || c.IndexAssoc <= 0 || c.IndexEntries%c.IndexAssoc != 0 {
		return fmt.Errorf("pif: bad index table %d/%d", c.IndexEntries, c.IndexAssoc)
	}
	return c.SAB.Validate()
}

// Name returns the design-point label.
func (c Config) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("PIF_%d", c.HistEntries)
}

// PIF is one core's prefetcher instance.
type PIF struct {
	cfg     Config
	builder *history.Builder
	buf     *history.Buffer
	index   *history.IndexTable
	sab     *history.SAB

	stats prefetch.Stats
	out   []prefetch.Request
	tmp   []history.Region
	blks  []trace.BlockAddr
}

// New builds a per-core PIF.
func New(cfg Config) (*PIF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &PIF{cfg: cfg}
	p.builder = history.MustNewBuilder(cfg.SAB.Span)
	p.buf = history.MustNewBuffer(cfg.HistEntries)
	p.index = history.MustNewIndexTable(cfg.IndexEntries, cfg.IndexAssoc)
	p.sab = history.MustNewSAB(cfg.SAB)
	return p, nil
}

// MustNew panics on config errors.
func MustNew(cfg Config) *PIF {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *PIF) Name() string { return p.cfg.Name() }

// PrefetchStats implements prefetch.StatsReporter.
func (p *PIF) PrefetchStats() prefetch.Stats { return p.stats }

// OnAccess implements prefetch.Prefetcher: replay (advance or allocate a
// stream) and record (append to the private history).
func (p *PIF) OnAccess(a prefetch.Access) []prefetch.Request {
	p.out = p.out[:0]
	p.stats.Accesses++
	if !a.Hit {
		p.stats.Misses++
	}

	// Replay: advance the covering stream, if any.
	si, needed, covered := p.sab.Advance(a.Block)
	if covered {
		p.stats.CoveredAccesses++
		if !a.Hit {
			p.stats.CoveredMisses++
		}
		if needed > 0 {
			p.readAhead(si, needed)
		}
		p.emitWindow(si, a.Block)
	} else if !a.Hit {
		// New stream: look up the most recent occurrence of the missed
		// block as a trigger.
		if pos, ok := p.index.Lookup(a.Block); ok && p.buf.Valid(pos) {
			si := p.sab.Alloc()
			p.stats.StreamAllocs++
			recs, next := p.buf.ReadSeq(p.tmp[:0], pos, p.cfg.SAB.Lookahead)
			p.tmp = recs // retain the grown backing array across calls
			p.sab.FillRegions(si, recs, next)
			p.emitWindow(si, a.Block)
		}
	}

	// Record: PIF records every core's own access stream.
	if rec, done := p.builder.Add(a.Block); done {
		pos := p.buf.Append(rec)
		p.index.Update(rec.Trigger, pos)
		p.stats.RecordsWritten++
		p.stats.IndexUpdates++
	}
	return p.out
}

// WarmAccess implements prefetch.Warmer: during functional warming only
// the recording side of OnAccess runs — the core keeps compacting its
// access stream into history records and index updates, while replay
// state (the SAB file) and prefetch issue are skipped. PIF records the
// full access stream, which is a property of the program alone, so the
// warmed history is identical to what detailed stepping would build.
func (p *PIF) WarmAccess(blk trace.BlockAddr, _ bool) {
	if rec, done := p.builder.Add(blk); done {
		pos := p.buf.Append(rec)
		p.index.Update(rec.Trigger, pos)
		p.stats.RecordsWritten++
		p.stats.IndexUpdates++
	}
}

// History exposes the private history buffer (read-only use: the
// functional-vs-detailed warm-state differential tests compare history
// contents across stepping modes).
func (p *PIF) History() *history.Buffer { return p.buf }

// readAhead tops stream si up with `needed` records.
func (p *PIF) readAhead(si, needed int) {
	pos := p.sab.NextPos(si)
	if !p.buf.Valid(pos) {
		return
	}
	recs, next := p.buf.ReadSeq(p.tmp[:0], pos, needed)
	p.tmp = recs
	if len(recs) == 0 {
		return
	}
	p.sab.FillRegions(si, recs, next)
}

// emitWindow issues prefetches for the stream's un-issued records inside
// the lookahead window, skipping the block being fetched right now.
func (p *PIF) emitWindow(si int, current trace.BlockAddr) {
	p.blks = p.sab.TakePrefetchBlocks(si, current, p.blks[:0])
	for _, b := range p.blks {
		p.out = append(p.out, prefetch.Request{Block: b})
	}
}

// StorageBits returns the per-core history storage cost in bits
// (Section 5.1's math: 41-bit records, 49-bit index entries at span 8).
func (c Config) StorageBits() int64 {
	recordBits := int64(history.BitsPerRecord(c.SAB.Span))
	indexBits := int64(trace.BlockAddrBits + 15) // tag + history pointer
	return int64(c.HistEntries)*recordBits + int64(c.IndexEntries)*indexBits
}

var (
	_ prefetch.Prefetcher    = (*PIF)(nil)
	_ prefetch.StatsReporter = (*PIF)(nil)
	_ prefetch.Warmer        = (*PIF)(nil)
)
