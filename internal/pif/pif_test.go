package pif

import (
	"testing"

	"shift/internal/history"
	"shift/internal/prefetch"
	"shift/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{Config32K(), Config2K()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name(), err)
		}
	}
	bad := []Config{
		{HistEntries: 0, IndexEntries: 8, IndexAssoc: 4, SAB: history.DefaultSABConfig()},
		{HistEntries: 8, IndexEntries: 0, IndexAssoc: 4, SAB: history.DefaultSABConfig()},
		{HistEntries: 8, IndexEntries: 9, IndexAssoc: 4, SAB: history.DefaultSABConfig()},
		{HistEntries: 8, IndexEntries: 8, IndexAssoc: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPaperDesignPoints(t *testing.T) {
	c32 := Config32K()
	if c32.HistEntries != 32768 || c32.IndexEntries != 8192 {
		t.Errorf("PIF_32K = %+v", c32)
	}
	if c32.Name() != "PIF_32K" {
		t.Errorf("Name = %q", c32.Name())
	}
	c2 := Config2K()
	if c2.HistEntries != 2048 || c2.IndexEntries != 512 {
		t.Errorf("PIF_2K = %+v", c2)
	}
	// Section 5.1 storage math: 32K*41 bits = 164KB history;
	// 8K*49 bits = 49KB index; total ~213KB.
	bits := c32.StorageBits()
	kb := float64(bits) / 8 / 1024
	if kb < 205 || kb < 0 || kb > 220 {
		t.Errorf("PIF_32K storage = %.1f KB, want ~213KB", kb)
	}
}

func TestWithHistEntries(t *testing.T) {
	for _, n := range []int{1024, 2048, 65536} {
		c := WithHistEntries(n)
		if err := c.Validate(); err != nil {
			t.Errorf("WithHistEntries(%d) invalid: %v", n, err)
		}
		if c.HistEntries != n {
			t.Errorf("HistEntries = %d", c.HistEntries)
		}
	}
}

func testConfig() Config {
	c := Config32K()
	c.HistEntries = 256
	c.IndexEntries = 64
	c.Label = "PIF_test"
	return c
}

// runStream feeds a block sequence as misses and returns all requests.
func runStream(p *PIF, blocks []trace.BlockAddr, hit bool) []prefetch.Request {
	var all []prefetch.Request
	for _, b := range blocks {
		reqs := p.OnAccess(prefetch.Access{Block: b, Hit: hit})
		all = append(all, reqs...)
	}
	return all
}

func TestRecordThenReplay(t *testing.T) {
	p := MustNew(testConfig())
	// A recurring temporal stream with discontinuities: the second
	// traversal should be predicted from history.
	stream := []trace.BlockAddr{100, 101, 102, 500, 501, 900, 901, 902, 903, 2000, 2001}
	runStream(p, stream, false) // first pass: record
	// Re-run the stream: on the first miss (block 100), the index should
	// find the recorded stream and prefetch ahead.
	reqs := p.OnAccess(prefetch.Access{Block: 100, Hit: false})
	if len(reqs) == 0 {
		t.Fatal("no prefetches on recurrence of recorded stream head")
	}
	want := map[trace.BlockAddr]bool{}
	for _, r := range reqs {
		want[r.Block] = true
	}
	// The stream's following blocks should be among the prefetches.
	for _, b := range []trace.BlockAddr{101, 102, 500} {
		if !want[b] {
			t.Errorf("block %d not prefetched; got %v", b, reqs)
		}
	}
	st := p.PrefetchStats()
	if st.StreamAllocs == 0 || st.RecordsWritten == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCoverageOnReplay(t *testing.T) {
	p := MustNew(testConfig())
	stream := []trace.BlockAddr{100, 101, 102, 500, 501, 900, 901, 902, 903, 2000, 2001}
	// Record the stream a few times so the index is warm.
	for i := 0; i < 3; i++ {
		runStream(p, stream, false)
	}
	before := p.PrefetchStats()
	runStream(p, stream, false)
	after := p.PrefetchStats()
	coveredDelta := after.CoveredMisses - before.CoveredMisses
	// All but the stream head should be covered on the final pass.
	if coveredDelta < int64(len(stream))-3 {
		t.Errorf("covered %d of %d misses on replay", coveredDelta, len(stream))
	}
}

func TestNoReplayWithoutHistory(t *testing.T) {
	p := MustNew(testConfig())
	reqs := p.OnAccess(prefetch.Access{Block: 42, Hit: false})
	if len(reqs) != 0 {
		t.Errorf("cold prefetcher issued %v", reqs)
	}
}

func TestHitsDoNotAllocateStreams(t *testing.T) {
	p := MustNew(testConfig())
	stream := []trace.BlockAddr{100, 101, 102, 500, 501}
	runStream(p, stream, false)
	before := p.PrefetchStats().StreamAllocs
	runStream(p, stream, true) // all hits: no allocation needed
	if got := p.PrefetchStats().StreamAllocs; got != before {
		t.Errorf("hits allocated streams: %d -> %d", before, got)
	}
}

func TestHistoryCapacityLimitsReplay(t *testing.T) {
	// A tiny history cannot retain a long loop; coverage should be far
	// lower than with a big history. This is the Figure 6 effect.
	small := testConfig()
	small.HistEntries = 16
	small.IndexEntries = 16
	big := testConfig()
	big.HistEntries = 4096
	big.IndexEntries = 1024

	// Build a long working loop: 600 discontinuous mini-streams.
	var loop []trace.BlockAddr
	for i := 0; i < 600; i++ {
		base := trace.BlockAddr(1000 + i*97)
		loop = append(loop, base, base+1)
	}
	coverage := func(cfg Config) float64 {
		p := MustNew(cfg)
		for pass := 0; pass < 4; pass++ {
			runStream(p, loop, false)
		}
		return p.PrefetchStats().MissCoverage()
	}
	cs, cb := coverage(small), coverage(big)
	if cb <= cs+0.2 {
		t.Errorf("big history coverage %.2f not clearly above small %.2f", cb, cs)
	}
}

func TestStaleIndexPointerIgnored(t *testing.T) {
	cfg := testConfig()
	cfg.HistEntries = 8 // tiny: wraps fast
	cfg.IndexEntries = 64
	p := MustNew(cfg)
	runStream(p, []trace.BlockAddr{100, 200, 300, 400}, false)
	// Overwrite history with unrelated streams; index entry for 100 is
	// now stale.
	for i := 0; i < 50; i++ {
		runStream(p, []trace.BlockAddr{trace.BlockAddr(5000 + i*10), trace.BlockAddr(5001 + i*10)}, false)
	}
	allocsBefore := p.PrefetchStats().StreamAllocs
	p.OnAccess(prefetch.Access{Block: 100, Hit: false})
	// Either no allocation (stale detected) or an allocation replaying
	// wrong data; our model detects staleness.
	if got := p.PrefetchStats().StreamAllocs; got != allocsBefore {
		t.Errorf("stale pointer allocated a stream")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(Config{})
}
