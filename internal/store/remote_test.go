package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBlobServer serves a fresh Mem over the blob wire protocol and
// returns a Remote client pointed at it plus the backing Mem.
func newBlobServer(t *testing.T) (*Remote, *Mem) {
	t.Helper()
	mem := NewMem()
	srv := httptest.NewServer(NewBlobHandler(mem))
	t.Cleanup(srv.Close)
	return NewRemote(srv.URL, nil), mem
}

func TestRemoteRoundTrip(t *testing.T) {
	remote, _ := newBlobServer(t)
	key := "deadbeef01"
	blob := []byte(`{"ipc":1.25}` + "\n#crc32c:00000000\n") // footers travel verbatim

	if _, ok, err := remote.Get(key); err != nil || ok {
		t.Fatalf("Get before Put: ok=%v err=%v, want miss", ok, err)
	}
	if err := remote.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := remote.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("blob changed over the wire:\n sent %q\n got  %q", blob, got)
	}
	if n, err := remote.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
	if remote.Errors() != 0 {
		t.Fatalf("healthy roundtrip counted %d errors", remote.Errors())
	}
}

func TestRemoteRejectsMalformedKeys(t *testing.T) {
	remote, mem := newBlobServer(t)
	for _, key := range []string{"..", "a/b", "xyz", "AB", strings.Repeat("f", 129)} {
		if err := remote.Put(key, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted a malformed key", key)
		}
	}
	if n, _ := mem.Len(); n != 0 {
		t.Fatalf("malformed keys reached the backing store: %d blobs", n)
	}
}

func TestRemoteCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	remote := NewRemote(srv.URL, nil)
	if _, _, err := remote.Get("deadbeef"); err == nil {
		t.Fatal("Get against a broken peer succeeded")
	}
	if err := remote.Put("deadbeef", []byte("x")); err == nil {
		t.Fatal("Put against a broken peer succeeded")
	}
	if remote.Errors() != 2 {
		t.Fatalf("Errors() = %d, want 2", remote.Errors())
	}
}

// TestRemoteEndToEndCRC pins the trust boundary of the remote tier:
// the client stack Integrity(Retry(Remote)) verifies CRC footers on
// the client side, so bytes corrupted anywhere past it — in the server
// process, on its disk, or on the wire — surface as ErrCorrupt, never
// as silently wrong results.
func TestRemoteEndToEndCRC(t *testing.T) {
	remote, mem := newBlobServer(t)
	stack := WithIntegrity(WithRetry(remote, RetryPolicy{}))
	key := "c0ffee4242"
	payload := []byte(`{"ipc":2.5}`)

	if err := stack.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	// The server stores the footered form; the client strips and
	// verifies on read.
	raw, ok, _ := mem.Get(key)
	if !ok || !bytes.Contains(raw, []byte(footerMarker)) {
		t.Fatalf("server-side blob missing CRC footer: %q", raw)
	}
	got, ok, err := stack.Get(key)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("verified read: %q ok=%v err=%v", got, ok, err)
	}

	// Flip a payload byte server-side: the client CRC must catch it.
	raw[0] ^= 0x40
	if err := mem.Put(key, raw); err != nil {
		t.Fatal(err)
	}
	if _, _, err := stack.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted remote blob read: %v, want ErrCorrupt", err)
	}
}

// alwaysFailing is a Blobs whose operations always fail with a
// transient-looking error, for exercising the full retry schedule.
type alwaysFailing struct{}

func (alwaysFailing) Get(string) ([]byte, bool, error) { return nil, false, fmt.Errorf("flaky io") }
func (alwaysFailing) Put(string, []byte) error         { return fmt.Errorf("flaky io") }
func (alwaysFailing) Len() (int, error)                { return 0, fmt.Errorf("flaky io") }

// TestRetryCancellationInterruptsBackoff is the regression test for
// the backoff sleeps ignoring context cancellation: with a 10-second
// base delay, a context cancelled after 20ms must abandon the schedule
// immediately instead of sleeping out the full backoff.
func TestRetryCancellationInterruptsBackoff(t *testing.T) {
	r := WithRetry(alwaysFailing{}, RetryPolicy{Attempts: 3, BaseDelay: 10 * time.Second, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := r.GetCtx(ctx, "deadbeef")
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("cancelled GetCtx took %v; the backoff sleep ignored cancellation", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not carry the context error", err)
	}
	if !strings.Contains(err.Error(), "flaky io") {
		t.Fatalf("error %v dropped the last operation failure", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start = time.Now()
	if err := r.PutCtx(ctx2, "deadbeef", []byte("x")); err == nil {
		t.Fatal("cancelled PutCtx succeeded")
	} else if time.Since(start) > time.Second {
		t.Fatal("cancelled PutCtx slept out the backoff")
	}
}

// blockingCtxBlobs blocks every operation until its context is done,
// standing in for a remote peer that has stopped answering.
type blockingCtxBlobs struct{}

func (blockingCtxBlobs) Get(string) ([]byte, bool, error) { return nil, false, nil }
func (blockingCtxBlobs) Put(string, []byte) error         { return nil }
func (blockingCtxBlobs) Len() (int, error)                { return 0, nil }
func (blockingCtxBlobs) GetCtx(ctx context.Context, _ string) ([]byte, bool, error) {
	<-ctx.Done()
	return nil, false, ctx.Err()
}
func (blockingCtxBlobs) PutCtx(ctx context.Context, _ string, _ []byte) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestRetryForwardsContextToInner checks that a context-aware inner
// store receives the caller's context: cancellation interrupts the
// in-flight operation itself, and the resulting context error is not
// retried (it is deliberate, not transient).
func TestRetryForwardsContextToInner(t *testing.T) {
	r := WithRetry(blockingCtxBlobs{}, RetryPolicy{Attempts: 3, BaseDelay: 10 * time.Second, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := r.GetCtx(ctx, "deadbeef")
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not reach the in-flight inner operation")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want the context error", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("context error was retried %d times; cancellation is not transient", r.Retries())
	}
}
