package store

import "sync"

// Mem is the reference in-memory Blobs implementation: a mutex-guarded
// map. It is safe for concurrent use; a nil *Mem is not valid (use
// NewMem).
type Mem struct {
	mu   sync.RWMutex
	m    map[string][]byte
	quar map[string][]byte
}

// NewMem returns an empty in-memory blob store.
func NewMem() *Mem {
	return &Mem{m: make(map[string][]byte)}
}

// Get returns a copy of the blob stored under key.
func (s *Mem) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, true, nil
}

// Put stores a copy of blob under key.
func (s *Mem) Put(key string, blob []byte) error {
	b := make([]byte, len(blob))
	copy(b, blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = b
	return nil
}

// Len returns the number of stored blobs.
func (s *Mem) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m), nil
}

// Quarantine moves the blob under key into a shadow map, mirroring
// Disk.Quarantine for the in-memory store chaos tests drive: the key
// reads as a miss afterwards and the next Put recreates it.
func (s *Mem) Quarantine(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		return nil
	}
	if s.quar == nil {
		s.quar = make(map[string][]byte)
	}
	s.quar[key] = b
	delete(s.m, key)
	return nil
}

// QuarantineLen returns the number of quarantined blobs.
func (s *Mem) QuarantineLen() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.quar))
}
