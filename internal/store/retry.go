package store

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// RetryPolicy parameterizes a Retry wrapper. The zero value selects the
// defaults noted on each field.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation, first
	// included (0 = 3). Only transient errors are retried.
	Attempts int
	// BaseDelay is the backoff unit: before retry k the wrapper sleeps
	// a uniformly jittered duration in (0, BaseDelay<<k] — "full
	// jitter", so a thundering herd of workers retrying one hiccup
	// spreads out instead of hammering the disk in lockstep (0 = 1ms).
	BaseDelay time.Duration
	// Seed seeds the jitter source, making test schedules reproducible
	// (0 = 1).
	Seed int64
	// Sleep performs the backoff wait (nil = a context-aware timer
	// sleep; tests inject a recorder so retry tests take nanoseconds).
	// An injected Sleep is not interruptible itself, but cancellation
	// is still observed immediately after it returns.
	Sleep func(time.Duration)
}

// Retry wraps a Blobs with bounded retry of transient errors under
// jittered exponential backoff. Non-transient failures — corruption
// (re-reading yields the same bytes), a full disk (ENOSPC does not
// clear in milliseconds), permission errors — fail immediately; only
// the flaky-IO class (EIO under load, antivirus/file-lock collisions,
// overloaded network filesystems) is worth paying latency for.
//
// Retry implements CtxBlobs: the context-aware operations abandon the
// backoff schedule the moment the context is cancelled — a cancelled
// request never pins its worker slot through the remaining sleeps —
// and forward the context to the inner store when it is context-aware
// too (a Remote peer), so an in-flight transfer is cancelled as well.
// The context-free Get/Put/Len run the full schedule, as before.
type Retry struct {
	inner   Blobs
	policy  RetryPolicy
	mu      sync.Mutex // guards rng
	rng     *rand.Rand
	retries atomic.Int64
}

// WithRetry wraps inner with the given retry policy.
func WithRetry(inner Blobs, policy RetryPolicy) *Retry {
	if policy.Attempts <= 0 {
		policy.Attempts = 3
	}
	if policy.BaseDelay <= 0 {
		policy.BaseDelay = time.Millisecond
	}
	if policy.Seed == 0 {
		policy.Seed = 1
	}
	return &Retry{inner: inner, policy: policy, rng: rand.New(rand.NewSource(policy.Seed))}
}

// transientIO reports whether err is worth retrying: an IO error that
// plausibly clears within milliseconds. Corruption, full disk,
// permission failures, malformed keys, and cancellation are
// deterministic (or deliberate) and excluded.
func transientIO(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCorrupt) || errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, fs.ErrPermission) || errors.Is(err, fs.ErrNotExist) ||
		errors.Is(err, fs.ErrInvalid) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// backoff waits the jittered delay before retry attempt k (0-based),
// returning early with the context's error if ctx is cancelled first.
func (s *Retry) backoff(ctx context.Context, k int) error {
	max := s.policy.BaseDelay << uint(k)
	s.mu.Lock()
	d := time.Duration(s.rng.Int63n(int64(max))) + 1
	s.mu.Unlock()
	if s.policy.Sleep != nil {
		s.policy.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do runs op up to Attempts times, backing off between transient
// failures. Cancellation interrupts the backoff sleep immediately; the
// returned error then carries both the last operation failure and the
// context's error.
func (s *Retry) do(ctx context.Context, op func() error) error {
	var err error
	for k := 0; k < s.policy.Attempts; k++ {
		if k > 0 {
			s.retries.Add(1)
			if cerr := s.backoff(ctx, k-1); cerr != nil {
				return fmt.Errorf("store: retry abandoned: %w (last error: %w)", cerr, err)
			}
		}
		if err = op(); !transientIO(err) {
			return err
		}
	}
	return err
}

// innerGet dispatches a read to the inner store, forwarding ctx when
// the inner store is context-aware.
func (s *Retry) innerGet(ctx context.Context, key string) ([]byte, bool, error) {
	if cb, ok := s.inner.(CtxBlobs); ok {
		return cb.GetCtx(ctx, key)
	}
	return s.inner.Get(key)
}

// innerPut dispatches a write to the inner store, forwarding ctx when
// the inner store is context-aware.
func (s *Retry) innerPut(ctx context.Context, key string, blob []byte) error {
	if cb, ok := s.inner.(CtxBlobs); ok {
		return cb.PutCtx(ctx, key, blob)
	}
	return s.inner.Put(key, blob)
}

// Get returns the blob stored under key, retrying transient read
// errors through the full backoff schedule.
func (s *Retry) Get(key string) (blob []byte, found bool, err error) {
	return s.GetCtx(context.Background(), key)
}

// GetCtx is Get bounded by ctx: cancellation interrupts both the
// backoff sleeps and (for a context-aware inner store) the read itself.
func (s *Retry) GetCtx(ctx context.Context, key string) (blob []byte, found bool, err error) {
	err = s.do(ctx, func() error {
		var e error
		blob, found, e = s.innerGet(ctx, key)
		return e
	})
	return blob, found, err
}

// Put stores blob under key, retrying transient write errors through
// the full backoff schedule.
func (s *Retry) Put(key string, blob []byte) error {
	return s.PutCtx(context.Background(), key, blob)
}

// PutCtx is Put bounded by ctx: cancellation interrupts both the
// backoff sleeps and (for a context-aware inner store) the write
// itself.
func (s *Retry) PutCtx(ctx context.Context, key string, blob []byte) error {
	return s.do(ctx, func() error { return s.innerPut(ctx, key, blob) })
}

// Len returns the inner store's blob count, retrying transient errors.
func (s *Retry) Len() (n int, err error) {
	err = s.do(context.Background(), func() error {
		var e error
		n, e = s.inner.Len()
		return e
	})
	return n, err
}

// Quarantine forwards to the inner store's Quarantiner, if any.
func (s *Retry) Quarantine(key string) error {
	if q, ok := s.inner.(Quarantiner); ok {
		return q.Quarantine(key)
	}
	return nil
}

// Retries returns the number of retry attempts performed (not counting
// each operation's first try).
func (s *Retry) Retries() int64 { return s.retries.Load() }
