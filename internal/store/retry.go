package store

import (
	"errors"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// RetryPolicy parameterizes a Retry wrapper. The zero value selects the
// defaults noted on each field.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation, first
	// included (0 = 3). Only transient errors are retried.
	Attempts int
	// BaseDelay is the backoff unit: before retry k the wrapper sleeps
	// a uniformly jittered duration in (0, BaseDelay<<k] — "full
	// jitter", so a thundering herd of workers retrying one hiccup
	// spreads out instead of hammering the disk in lockstep (0 = 1ms).
	BaseDelay time.Duration
	// Seed seeds the jitter source, making test schedules reproducible
	// (0 = 1).
	Seed int64
	// Sleep performs the backoff wait (nil = time.Sleep; tests inject a
	// recorder so retry tests take nanoseconds).
	Sleep func(time.Duration)
}

// Retry wraps a Blobs with bounded retry of transient errors under
// jittered exponential backoff. Non-transient failures — corruption
// (re-reading yields the same bytes), a full disk (ENOSPC does not
// clear in milliseconds), permission errors — fail immediately; only
// the flaky-IO class (EIO under load, antivirus/file-lock collisions,
// overloaded network filesystems) is worth paying latency for.
type Retry struct {
	inner   Blobs
	policy  RetryPolicy
	mu      sync.Mutex // guards rng
	rng     *rand.Rand
	retries atomic.Int64
}

// WithRetry wraps inner with the given retry policy.
func WithRetry(inner Blobs, policy RetryPolicy) *Retry {
	if policy.Attempts <= 0 {
		policy.Attempts = 3
	}
	if policy.BaseDelay <= 0 {
		policy.BaseDelay = time.Millisecond
	}
	if policy.Seed == 0 {
		policy.Seed = 1
	}
	if policy.Sleep == nil {
		policy.Sleep = time.Sleep
	}
	return &Retry{inner: inner, policy: policy, rng: rand.New(rand.NewSource(policy.Seed))}
}

// transientIO reports whether err is worth retrying: an IO error that
// plausibly clears within milliseconds. Corruption, full disk, and
// permission failures are deterministic and excluded.
func transientIO(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCorrupt) || errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, fs.ErrPermission) || errors.Is(err, fs.ErrNotExist) {
		return false
	}
	return true
}

// backoff sleeps the jittered delay before retry attempt k (0-based).
func (s *Retry) backoff(k int) {
	max := s.policy.BaseDelay << uint(k)
	s.mu.Lock()
	d := time.Duration(s.rng.Int63n(int64(max))) + 1
	s.mu.Unlock()
	s.policy.Sleep(d)
}

// do runs op up to Attempts times, backing off between transient
// failures.
func (s *Retry) do(op func() error) error {
	var err error
	for k := 0; k < s.policy.Attempts; k++ {
		if k > 0 {
			s.retries.Add(1)
			s.backoff(k - 1)
		}
		if err = op(); !transientIO(err) {
			return err
		}
	}
	return err
}

// Get returns the blob stored under key, retrying transient read
// errors.
func (s *Retry) Get(key string) (blob []byte, found bool, err error) {
	err = s.do(func() error {
		var e error
		blob, found, e = s.inner.Get(key)
		return e
	})
	return blob, found, err
}

// Put stores blob under key, retrying transient write errors.
func (s *Retry) Put(key string, blob []byte) error {
	return s.do(func() error { return s.inner.Put(key, blob) })
}

// Len returns the inner store's blob count, retrying transient errors.
func (s *Retry) Len() (n int, err error) {
	err = s.do(func() error {
		var e error
		n, e = s.inner.Len()
		return e
	})
	return n, err
}

// Quarantine forwards to the inner store's Quarantiner, if any.
func (s *Retry) Quarantine(key string) error {
	if q, ok := s.inner.(Quarantiner); ok {
		return q.Quarantine(key)
	}
	return nil
}

// Retries returns the number of retry attempts performed (not counting
// each operation's first try).
func (s *Retry) Retries() int64 { return s.retries.Load() }
