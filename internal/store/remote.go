package store

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// This file is the HTTP face of the blob store — both halves of it. The
// client half, Remote, is a Blobs whose backend lives in another
// process; the server half, NewBlobHandler, exposes any local Blobs
// over the same three-route wire protocol. A shiftd cluster points the
// two at each other: workers (or the coordinator) serve their raw blob
// tier, peers mount Remote under the usual Integrity/Retry stack, and
// the whole cluster converges on one content-addressed result tier.
//
// The wire carries blobs verbatim — including the CRC-32C integrity
// footers Integrity appends — so a client stack layered as
// Integrity(Retry(Remote)) verifies every blob end-to-end: a payload
// corrupted on the remote disk, in the server process, or on the wire
// itself fails the client-side CRC exactly as a local bit-flip would.

// CtxBlobs is the optional context-aware extension of Blobs: a backend
// whose operations can be abandoned mid-flight (a remote store's HTTP
// requests, a retry wrapper's backoff sleeps). Wrappers forward the
// context to their inner store when it implements CtxBlobs and fall
// back to the context-free methods otherwise, so a stack mixing aware
// and unaware layers still cancels at every layer that can.
type CtxBlobs interface {
	// GetCtx is Get bounded by ctx.
	GetCtx(ctx context.Context, key string) (blob []byte, found bool, err error)
	// PutCtx is Put bounded by ctx.
	PutCtx(ctx context.Context, key string, blob []byte) error
}

// Remote is a Blobs client over HTTP: Get/Put/Len map to GET/PUT on a
// peer's blob routes (see NewBlobHandler for the wire protocol). Every
// transport or server failure is reported as an error — transient by
// Retry's classification, so the usual stack retries network hiccups
// with backoff and a persistent outage trips the tiered store's
// breaker into memory-only operation.
//
// Remote is safe for concurrent use. It implements CtxBlobs, so a
// caller holding a request context can abandon an in-flight transfer.
type Remote struct {
	base   string // ".../v1/blobs", no trailing slash
	client *http.Client
	errors atomic.Int64
}

// NewRemote returns a blob client for the peer's blob routes rooted at
// baseURL (e.g. "http://worker-1:8080/v1/blobs"). A nil client selects
// a default with a 30-second overall timeout.
func NewRemote(baseURL string, client *http.Client) *Remote {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Remote{base: strings.TrimRight(baseURL, "/"), client: client}
}

// Errors returns the number of failed remote operations (transport
// errors and non-2xx statuses other than 404) since creation.
func (s *Remote) Errors() int64 { return s.errors.Load() }

// fail counts and wraps a remote failure.
func (s *Remote) fail(op, key string, err error) error {
	s.errors.Add(1)
	if key != "" {
		return fmt.Errorf("store: remote %s %q: %w", op, key, err)
	}
	return fmt.Errorf("store: remote %s: %w", op, err)
}

// Get returns the blob stored under key on the remote peer.
func (s *Remote) Get(key string) ([]byte, bool, error) {
	return s.GetCtx(context.Background(), key)
}

// GetCtx is Get bounded by ctx.
func (s *Remote) GetCtx(ctx context.Context, key string) ([]byte, bool, error) {
	if !validBlobKey(key) {
		// Validate before building a URL: a non-hex key could carry path
		// segments ("../") that the HTTP layer resolves into a different
		// route entirely. Deliberate, not transient — never retried.
		return nil, false, s.fail("get", key, fmt.Errorf("malformed blob key: %w", fs.ErrInvalid))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/"+key, nil)
	if err != nil {
		return nil, false, s.fail("get", key, err)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, false, s.fail("get", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, s.fail("get", key, err)
		}
		return blob, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, s.fail("get", key, fmt.Errorf("status %s", resp.Status))
	}
}

// Put stores blob under key on the remote peer.
func (s *Remote) Put(key string, blob []byte) error {
	return s.PutCtx(context.Background(), key, blob)
}

// PutCtx is Put bounded by ctx.
func (s *Remote) PutCtx(ctx context.Context, key string, blob []byte) error {
	if !validBlobKey(key) {
		return s.fail("put", key, fmt.Errorf("malformed blob key: %w", fs.ErrInvalid))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, s.base+"/"+key, strings.NewReader(string(blob)))
	if err != nil {
		return s.fail("put", key, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return s.fail("put", key, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return s.fail("put", key, fmt.Errorf("status %s", resp.Status))
	}
	return nil
}

// blobCount is the wire form of the blob-count route.
type blobCount struct {
	Len int `json:"len"`
}

// Len returns the remote peer's blob count.
func (s *Remote) Len() (int, error) {
	req, err := http.NewRequest(http.MethodGet, s.base, nil)
	if err != nil {
		return 0, s.fail("len", "", err)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, s.fail("len", "", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, s.fail("len", "", fmt.Errorf("status %s", resp.Status))
	}
	var c blobCount
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		return 0, s.fail("len", "", err)
	}
	return c.Len, nil
}

// validBlobKey reports whether key is shaped like a content address —
// hex of reasonable length — so a crafted key can never traverse the
// serving store's directory layout. Disk.path revalidates, but the
// handler rejects garbage before it reaches any backend.
func validBlobKey(key string) bool {
	if len(key) < 4 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// NewBlobHandler serves inner over the blob wire protocol, rooted at
// the mount point (mount with http.StripPrefix):
//
//	GET  /{key}  the raw stored bytes (200), or 404 when absent
//	PUT  /{key}  store the request body under key (204)
//	GET  /       {"len": n} — the blob count
//
// Bytes are served and stored verbatim: the handler sits below any
// Integrity layer, so blobs keep their CRC footers on the wire and
// remote clients verify them end-to-end. Keys must look like content
// addresses (hex); anything else is a 400.
func NewBlobHandler(inner Blobs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validBlobKey(key) {
			http.Error(w, "malformed blob key", http.StatusBadRequest)
			return
		}
		blob, ok, err := inner.Get(key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "blob not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
	})
	mux.HandleFunc("PUT /{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		if !validBlobKey(key) {
			http.Error(w, "malformed blob key", http.StatusBadRequest)
			return
		}
		blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		if err := inner.Put(key, blob); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The count route: the bare mount point, whether the stripping
		// wrapper left "/" or "".
		if r.URL.Path == "" || r.URL.Path == "/" {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			n, err := inner.Len()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(blobCount{Len: n})
			return
		}
		mux.ServeHTTP(w, r)
	})
}
