package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testBackends returns each Blobs implementation under a fresh state.
func testBackends(t *testing.T) map[string]Blobs {
	t.Helper()
	disk, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Blobs{"mem": NewMem(), "disk": disk}
}

// TestBlobsConformance runs the Blobs contract over every backend:
// misses before Put, byte-exact round trips, atomic replacement, and
// Len counting distinct keys.
func TestBlobsConformance(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := s.Get("deadbeef"); err != nil || ok {
				t.Fatalf("Get on empty store = (ok=%v, err=%v), want miss", ok, err)
			}
			blob := []byte(`{"x":1}`)
			if err := s.Put("deadbeef", blob); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get("deadbeef")
			if err != nil || !ok || !bytes.Equal(got, blob) {
				t.Fatalf("Get = (%q, ok=%v, err=%v), want stored blob", got, ok, err)
			}
			// Replacement is total: the new blob fully supersedes the old.
			if err := s.Put("deadbeef", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if got, _, _ := s.Get("deadbeef"); string(got) != "v2" {
				t.Errorf("after replace Get = %q, want v2", got)
			}
			if err := s.Put("cafe", []byte("v3")); err != nil {
				t.Fatal(err)
			}
			if n, err := s.Len(); err != nil || n != 2 {
				t.Errorf("Len = (%d, %v), want 2", n, err)
			}
		})
	}
}

// TestBlobsCallerOwnsSlices checks that mutating a slice passed to Put
// or returned from Get never corrupts the stored blob.
func TestBlobsCallerOwnsSlices(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			in := []byte("original")
			if err := s.Put("aa11", in); err != nil {
				t.Fatal(err)
			}
			copy(in, "clobber!")
			out, _, _ := s.Get("aa11")
			if string(out) != "original" {
				t.Fatalf("stored blob aliased Put argument: %q", out)
			}
			copy(out, "clobber!")
			again, _, _ := s.Get("aa11")
			if string(again) != "original" {
				t.Fatalf("stored blob aliased Get result: %q", again)
			}
		})
	}
}

// TestBlobsConcurrent hammers each backend from many goroutines; run
// under -race this is the concurrency-safety gate.
func TestBlobsConcurrent(t *testing.T) {
	for name, s := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						key := fmt.Sprintf("k%d", i%5)
						blob := []byte(fmt.Sprintf("g%d-i%d", g, i))
						if err := s.Put(key, blob); err != nil {
							t.Error(err)
							return
						}
						if got, ok, err := s.Get(key); err != nil || (ok && len(got) == 0) {
							t.Errorf("Get(%s) = (%q, %v, %v)", key, got, ok, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if n, err := s.Len(); err != nil || n != 5 {
				t.Errorf("Len = (%d, %v), want 5", n, err)
			}
		})
	}
}

// TestDiskCrashConsistency is the crash-safety gate: a partial write —
// the temp file a crashed process would leave behind — must never
// become visible as a blob, and must not count toward Len.
func TestDiskCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("deadbeef", []byte("complete")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: a tmp- file sitting in the shard
	// directory with partial content for the same and for a new key.
	shard := filepath.Join(dir, "de")
	for _, name := range []string{tmpPrefix + "1234", tmpPrefix + "5678"} {
		if err := os.WriteFile(filepath.Join(shard, name), []byte(`{"x":`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := s.Get("deadbeef")
	if err != nil || !ok || string(got) != "complete" {
		t.Fatalf("Get after simulated crash = (%q, %v, %v), want the complete blob", got, ok, err)
	}
	if _, ok, _ := s.Get("de5678"); ok {
		t.Error("partial write visible as a blob")
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = (%d, %v), want 1 (tmp files ignored)", n, err)
	}
	// Reopening the directory (a fresh process) sees the same state.
	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s2.Get("deadbeef"); !ok || string(got) != "complete" {
		t.Errorf("reopened store lost the blob: (%q, %v)", got, ok)
	}
}

// TestDiskBlobMode checks that published blobs are world-readable:
// CreateTemp's private 0600 would silently break directory sharing
// across users (every Get by the second user degrades to a miss).
func TestDiskBlobMode(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("deadbeef", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(s.Dir(), "de", "deadbeef"+blobExt))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("blob mode = %v, want 0644", fi.Mode().Perm())
	}
}

// TestDiskLenSemantics checks the cached count: seeded at open,
// incremented only by fresh keys, and re-seeded on reopen.
func TestDiskLenSemantics(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"aa11", "bb22", "aa11"} { // aa11 twice: a replace, not a new cell
		if err := s.Put(key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.Len(); n != 2 {
		t.Errorf("Len = %d, want 2 (replacement must not double-count)", n)
	}
	reopened, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := reopened.Len(); n != 2 {
		t.Errorf("reopened Len = %d, want 2", n)
	}
}

// TestDiskKeyValidation checks that malformed keys are rejected rather
// than mapped to paths outside the store directory.
func TestDiskKeyValidation(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", "a\\b", "..", "key.json", "k\x00v"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
		if _, _, err := s.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a malformed key", key)
		}
	}
	// Short-but-valid keys land in the fallback shard.
	if err := s.Put("a", []byte("x")); err != nil {
		t.Errorf("Put(short key) = %v", err)
	}
	if got, ok, _ := s.Get("a"); !ok || string(got) != "x" {
		t.Errorf("short key round trip = (%q, %v)", got, ok)
	}
}

// TestDiskSharedDirectory simulates two processes sharing one cache
// directory via two independent Disk handles.
func TestDiskSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("deadbeef", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := b.Get("deadbeef"); !ok || string(got) != "from-a" {
		t.Fatalf("second handle missed the first handle's blob: (%q, %v)", got, ok)
	}
}
