package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestIntegrityRoundTrip checks that a footer-checked write reads back
// exactly, that the stored bytes carry the footer, and that Len is
// transparent.
func TestIntegrityRoundTrip(t *testing.T) {
	mem := NewMem()
	s := WithIntegrity(mem)
	payload := []byte(`{"throughput":1.5}`)
	if err := s.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	raw, ok, err := mem.Get("k1")
	if err != nil || !ok {
		t.Fatalf("raw get: %v %v", ok, err)
	}
	if !bytes.HasPrefix(raw, payload) || !bytes.Contains(raw, []byte(footerMarker)) {
		t.Fatalf("stored blob missing payload or footer: %q", raw)
	}
	got, ok, err := s.Get("k1")
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got %q want %q", got, payload)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("len: got %d want 1", n)
	}
}

// TestIntegrityLegacyBlobServedUnverified: a blob written without a
// footer (the pre-integrity format) must read back as-is — enabling
// integrity over an existing directory is backward compatible.
func TestIntegrityLegacyBlobServedUnverified(t *testing.T) {
	mem := NewMem()
	legacy := []byte(`{"legacy":true}`)
	if err := mem.Put("old", legacy); err != nil {
		t.Fatal(err)
	}
	s := WithIntegrity(mem)
	got, ok, err := s.Get("old")
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if !bytes.Equal(got, legacy) {
		t.Fatalf("legacy blob mangled: got %q want %q", got, legacy)
	}
}

// TestIntegrityDetectsCorruptionAndQuarantines covers the corruption
// classes the fault store injects: flipped payload bytes, a torn
// (truncated) footer, and a malformed footer. Each must be reported as
// ErrCorrupt, quarantined on the inner store, and then read as a plain
// miss; a re-Put must self-heal the key.
func TestIntegrityDetectsCorruptionAndQuarantines(t *testing.T) {
	payload := []byte(`{"throughput":2.25,"mpki":11.0}`)
	damage := map[string]func([]byte) []byte{
		"bitflip": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)/3] ^= 0xff
			return out
		},
		"torn": func(b []byte) []byte { return b[:len(b)-4] },
		"malformed-footer": func(b []byte) []byte {
			return append(append([]byte(nil), b[:len(b)-9]...), []byte("zzzzzzzz\n")...)
		},
	}
	for name, injure := range damage {
		t.Run(name, func(t *testing.T) {
			mem := NewMem()
			s := WithIntegrity(mem)
			if err := s.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			raw, _, _ := mem.Get("k")
			if err := mem.Put("k", injure(raw)); err != nil {
				t.Fatal(err)
			}
			_, ok, err := s.Get("k")
			if ok || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corrupt get: ok=%v err=%v, want miss with ErrCorrupt", ok, err)
			}
			if got := s.Quarantined(); got != 1 {
				t.Fatalf("quarantined: got %d want 1", got)
			}
			if got := mem.QuarantineLen(); got != 1 {
				t.Fatalf("inner quarantine: got %d want 1", got)
			}
			// Quarantined key is now a plain miss, not an error.
			if _, ok, err := s.Get("k"); ok || err != nil {
				t.Fatalf("post-quarantine get: ok=%v err=%v, want clean miss", ok, err)
			}
			// Self-heal: the next Put recreates the blob.
			if err := s.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get("k")
			if err != nil || !ok || !bytes.Equal(got, payload) {
				t.Fatalf("self-heal get: %q %v %v", got, ok, err)
			}
		})
	}
}

// TestRetryRecoversTransientErrors: scripted one-shot failures must be
// retried (with backoff sleeps recorded, not slept) and succeed within
// the attempt budget.
func TestRetryRecoversTransientErrors(t *testing.T) {
	var slept []time.Duration
	var mu sync.Mutex
	mem := NewMem()
	f := NewFault(mem, FaultPlan{})
	r := WithRetry(f, RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, Seed: 7,
		Sleep: func(d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() }})

	f.FailNextPuts(2)
	if err := r.Put("k", []byte("v")); err != nil {
		t.Fatalf("put should recover after 2 injected failures: %v", err)
	}
	f.FailNextGets(1)
	got, ok, err := r.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("get should recover: %q %v %v", got, ok, err)
	}
	if r.Retries() != 3 {
		t.Fatalf("retries: got %d want 3", r.Retries())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 3 {
		t.Fatalf("backoff sleeps: got %d want 3", len(slept))
	}
	for i, d := range slept {
		if d <= 0 || d > 4*time.Millisecond {
			t.Fatalf("sleep %d out of jitter bounds: %v", i, d)
		}
	}
}

// TestRetryGivesUpAndSkipsNonTransient: an error storm longer than the
// attempt budget surfaces the last error; ENOSPC and corruption are
// never retried.
func TestRetryGivesUpAndSkipsNonTransient(t *testing.T) {
	mem := NewMem()
	f := NewFault(mem, FaultPlan{})
	r := WithRetry(f, RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}})

	f.FailNextPuts(100)
	if err := r.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error after exhausting retries, got %v", err)
	}
	if r.Retries() != 2 {
		t.Fatalf("retries: got %d want 2", r.Retries())
	}
	f.FailNextPuts(0)

	// ENOSPC must fail fast: no further retries recorded.
	f.SetPlan(FaultPlan{ENOSPCRate: 1})
	before := r.Retries()
	if err := r.Put("k", []byte("v")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if r.Retries() != before {
		t.Fatal("ENOSPC was retried; it must fail fast")
	}

	// Corruption must fail fast through a Retry(Integrity(...)) stack.
	f.SetPlan(FaultPlan{})
	ri := WithRetry(WithIntegrity(mem), RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}})
	if err := ri.Put("c", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw, _, _ := mem.Get("c")
	raw[0] ^= 0xff
	mem.Put("c", raw)
	before = ri.Retries()
	if _, _, err := ri.Get("c"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if ri.Retries() != before {
		t.Fatal("corruption was retried; it must fail fast")
	}
}

// TestBreakerTripOpenHalfOpenRecover drives the full state machine with
// a fake clock: errors trip it, the cooldown gates the half-open probe,
// a failed probe re-opens, a successful probe closes.
func TestBreakerTripOpenHalfOpenRecover(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{Window: 8, Threshold: 4, Cooldown: 5 * time.Second,
		Now: func() time.Time { return now }})

	if b.State() != BreakerClosed {
		t.Fatalf("initial state %s", b.State())
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatal("3 failures below threshold must not trip")
	}
	b.Allow()
	b.Record(true) // 4th failure: trip
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state %s trips %d, want open/1", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker must reject before cooldown")
	}
	if b.Rejected() != 1 {
		t.Fatalf("rejected: got %d want 1", b.Rejected())
	}

	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker must admit a half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("only one probe at a time in half-open")
	}
	b.Record(true) // probe failed: re-open
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state %s trips %d, want open/2", b.State(), b.Trips())
	}

	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe must be admitted")
	}
	b.Record(false) // probe succeeded: close
	if b.State() != BreakerClosed {
		t.Fatalf("state %s, want closed after successful probe", b.State())
	}
	// The window was reset: old failures must not linger.
	b.Allow()
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatal("one failure after recovery must not trip a reset window")
	}
}

// TestBreakerSlidingWindowEvicts: failures older than the window must
// stop counting toward the threshold.
func TestBreakerSlidingWindowEvicts(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 4, Threshold: 3})
	outcomes := []bool{true, true, false, false, false, true} // last 4: f,f,f,t → 1 failure... then add 2 more true
	for _, failed := range outcomes {
		b.Allow()
		b.Record(failed)
	}
	if b.State() != BreakerClosed {
		t.Fatal("evicted failures must not trip")
	}
	b.Allow()
	b.Record(true)
	b.Allow()
	b.Record(true) // window now t,f,t,t? → 3 failures: trip
	if b.State() != BreakerOpen {
		t.Fatalf("state %s, want open once window holds threshold failures", b.State())
	}
}

// TestFaultDeterminism: the same seed and operation sequence must
// reproduce the same fault schedule.
func TestFaultDeterminism(t *testing.T) {
	run := func() []bool {
		f := NewFault(NewMem(), FaultPlan{Seed: 42, PutErrorRate: 0.4})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			outcomes = append(outcomes, f.Put("k", []byte("v")) != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedules diverge at op %d", i)
		}
	}
	var failures int
	for _, failed := range a {
		if failed {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("rate 0.4 produced %d/%d failures; injection looks broken", failures, len(a))
	}
}

// TestFaultCorruptReadsLandInQuarantine: a stack Integrity(Fault(Mem))
// must convert injected bit-rot reads into a quarantine event and a
// clean miss. A torn read that truncates away the whole footer is the
// one corruption this layer cannot see (it is indistinguishable from a
// legacy blob); the root DiskStore catches it when the JSON payload
// fails to decode — proven by the root package's chaos tests.
func TestFaultCorruptReadsLandInQuarantine(t *testing.T) {
	mem := NewMem()
	f := NewFault(mem, FaultPlan{Seed: 3})
	s := WithIntegrity(f)
	payload := []byte(`{"x":1,"y":[2,3,4],"z":"abcdefgh"}`)

	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	f.SetPlan(FaultPlan{Seed: 5, CorruptRate: 1})
	_, ok, err := s.Get("k")
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-rot get: ok=%v err=%v, want ErrCorrupt miss", ok, err)
	}
	if mem.QuarantineLen() != 1 {
		t.Fatalf("quarantined: got %d want 1", mem.QuarantineLen())
	}

	// A half-truncated blob loses its footer entirely: served as
	// legacy bytes here, rejected (and quarantined) by the JSON layer
	// above.
	f.SetPlan(FaultPlan{})
	if err := s.Put("t", payload); err != nil {
		t.Fatal(err)
	}
	f.SetPlan(FaultPlan{Seed: 5, TornRate: 1})
	got, ok, err := s.Get("t")
	if err != nil || !ok {
		t.Fatalf("torn get: ok=%v err=%v", ok, err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("torn read unexpectedly intact")
	}
}

// TestDiskQuarantineMovesBlobAside: Disk.Quarantine must move the file
// under <dir>/quarantine (preserving bytes), drop it from Get and Len,
// survive reopen, and let a re-Put self-heal.
func TestDiskQuarantineMovesBlobAside(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("abcd1234", []byte("blob-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := d.Quarantine("abcd1234"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Get("abcd1234"); ok || err != nil {
		t.Fatalf("quarantined key must be a clean miss: %v %v", ok, err)
	}
	if n, _ := d.Len(); n != 0 {
		t.Fatalf("len after quarantine: got %d want 0", n)
	}
	if d.QuarantineLen() != 1 {
		t.Fatalf("quarantine len: got %d want 1", d.QuarantineLen())
	}
	held, err := os.ReadFile(filepath.Join(dir, quarantineDir, "abcd1234"+blobExt))
	if err != nil || string(held) != "blob-bytes" {
		t.Fatalf("quarantined bytes not preserved: %q %v", held, err)
	}
	// Quarantining an absent key is a no-op.
	if err := d.Quarantine("ffff0000"); err != nil {
		t.Fatal(err)
	}
	if d.QuarantineLen() != 1 {
		t.Fatal("no-op quarantine must not count")
	}
	// Self-heal, then reopen: counts seed correctly and quarantined
	// blobs stay invisible to the walk.
	if err := d.Put("abcd1234", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d2.Len(); n != 1 {
		t.Fatalf("reopened len: got %d want 1", n)
	}
	if d2.QuarantineLen() != 1 {
		t.Fatalf("reopened quarantine len: got %d want 1", d2.QuarantineLen())
	}
}

// TestFaultScriptedFailuresAreExact: FailNext* must inject exactly N
// failures and then heal.
func TestFaultScriptedFailuresAreExact(t *testing.T) {
	f := NewFault(NewMem(), FaultPlan{})
	f.FailNextPuts(3)
	var failed int
	for i := 0; i < 10; i++ {
		if f.Put("k", []byte("v")) != nil {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("scripted put failures: got %d want 3", failed)
	}
	f.FailNextLens(1)
	if _, err := f.Len(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected len error, got %v", err)
	}
	if _, err := f.Len(); err != nil {
		t.Fatalf("len must heal after scripted failure: %v", err)
	}
}

// TestIntegrityFooterNeverCollidesWithJSON: the footer marker starts
// with a newline, which json.Marshal output cannot contain — so footer
// detection cannot misfire on payload bytes. Guard that assumption.
func TestIntegrityFooterNeverCollidesWithJSON(t *testing.T) {
	tricky := []byte(`{"s":"#crc32c:deadbeef","t":"\n#crc32c:00000000\n"}`)
	if strings.Contains(string(tricky), footerMarker) {
		t.Fatal("JSON-escaped payload must not contain the raw footer marker")
	}
	s := WithIntegrity(NewMem())
	if err := s.Put("k", tricky); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || !bytes.Equal(got, tricky) {
		t.Fatalf("tricky payload round trip: %q %v %v", got, ok, err)
	}
}
