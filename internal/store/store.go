// Package store provides the content-addressed blob backends beneath
// the public ResultStore implementations in the root shift package, plus
// the single-flight primitive the experiment engine uses to share one
// simulation across concurrent identical requests.
//
// A blob store maps a content-address key (in practice Config.Key(), a
// hex hash of the simulation configuration) to an opaque byte blob (in
// practice the JSON encoding of a RunResult). The store layer knows
// nothing about the blob contents; encoding lives with the caller. Two
// backends are provided: Mem, the reference in-memory implementation,
// and Disk, a directory of one file per key whose writes are atomic
// (temp file + rename) so that concurrent processes sharing a directory
// never observe a partial blob.
package store

// A Blobs is a content-addressed blob store: an opaque byte blob per
// key. Implementations must be safe for concurrent use; Get and Put on
// the same key may race, in which case Get returns either the previous
// complete blob or the new complete blob, never a mixture.
type Blobs interface {
	// Get returns the blob stored under key, or found=false if the key
	// is absent. The returned slice is owned by the caller.
	Get(key string) (blob []byte, found bool, err error)
	// Put stores blob under key, replacing any previous blob atomically.
	Put(key string, blob []byte) error
	// Len returns the number of stored blobs.
	Len() (int, error)
}
