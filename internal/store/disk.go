package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Disk is a Blobs backed by a content-addressed directory: one file per
// key at <dir>/<key[:2]>/<key>.json (two-character fan-out keeps shard
// directories small under hundreds of thousands of cells). It is safe
// for concurrent use within a process and across processes sharing the
// directory: a blob is written to a temporary file in the shard
// directory and published with os.Rename, which is atomic on POSIX
// filesystems, so readers observe either the previous complete blob or
// the new complete blob — never a torn write. A crash mid-write leaves
// only a tmp-* file, which every reader and Len ignore.
type Disk struct {
	dir string

	// count caches the blob count so Len is O(1) instead of a directory
	// walk (shiftd polls it on every /v1/stats): seeded by one walk at
	// open, then maintained across Puts. putMu serializes the
	// exists-check/rename/count update so two in-process writers of one
	// new key cannot double-count. Another process's writes are not
	// observed until reopen — Len is a this-handle view.
	putMu sync.Mutex
	count int

	// quarCount counts blobs under <dir>/quarantine: those already
	// there at open plus this handle's Quarantine calls.
	quarCount atomic.Int64
}

// tmpPrefix marks in-progress writes; such files are never visible
// through Get or Len and are safe to delete at any time.
const tmpPrefix = "tmp-"

// blobExt is the stored-file extension. The store is blob-agnostic, but
// in practice blobs are JSON (see the root package's DiskStore), and the
// extension keeps the directory greppable and editor-friendly.
const blobExt = ".json"

// quarantineDir is the subdirectory corrupt blobs are moved into by
// Quarantine. Its contents are invisible to Get and Len — a quarantined
// key reads as a miss and is recreated by the next Put — but preserved
// byte-for-byte for inspection. Operators delete the directory once
// the corruption is understood.
const quarantineDir = "quarantine"

// OpenDisk opens (creating if necessary) a disk blob store rooted at
// dir, counting the blobs already present.
func OpenDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Disk{dir: dir}
	n, err := s.walkCount()
	if err != nil {
		return nil, err
	}
	s.count = n
	s.quarCount.Store(s.quarantineWalk())
	return s, nil
}

// Dir returns the store's root directory.
func (s *Disk) Dir() string { return s.dir }

// path maps a key to its blob file, validating the key so a malformed
// one can never escape the store directory.
func (s *Disk) path(key string) (string, error) {
	if key == "" {
		return "", errors.New("store: empty key")
	}
	for _, r := range key {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		default:
			return "", fmt.Errorf("store: invalid key %q", key)
		}
	}
	shard := "_"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+blobExt), nil
}

// Get returns the blob stored under key.
func (s *Disk) Get(key string) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return b, true, nil
}

// Put atomically stores blob under key: the bytes are written to a
// temporary file in the destination shard directory (same filesystem,
// so the final rename cannot degrade to a copy), made world-readable
// (CreateTemp's 0600 would break directory sharing across users), and
// renamed into place.
func (s *Disk) Put(key string, blob []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	shard := filepath.Dir(p)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(shard, tmpPrefix)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	s.putMu.Lock()
	defer s.putMu.Unlock()
	_, statErr := os.Stat(p)
	fresh := errors.Is(statErr, fs.ErrNotExist)
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if fresh {
		s.count++
	}
	return nil
}

// Len returns the number of published blobs as seen by this handle:
// the count at open plus this handle's fresh Puts (in-progress tmp-*
// files never count; another process's concurrent writes appear after
// reopen).
func (s *Disk) Len() (int, error) {
	s.putMu.Lock()
	defer s.putMu.Unlock()
	return s.count, nil
}

// walkCount counts published blobs on disk (skipping in-progress
// tmp-* files and the quarantine directory); one walk at open seeds the
// cached count.
func (s *Disk) walkCount() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && d.Name() == quarantineDir {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), blobExt) && !strings.HasPrefix(d.Name(), tmpPrefix) {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return n, nil
}

// quarantineWalk counts blobs already in quarantine (best effort: a
// missing directory is simply zero).
func (s *Disk) quarantineWalk() int64 {
	entries, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), blobExt) {
			n++
		}
	}
	return n
}

// Quarantine moves the blob stored under key into <dir>/quarantine,
// removing it from the visible keyspace while preserving its bytes for
// inspection. The next Put of the same key recreates the blob (self-
// heal). Quarantining an absent key is a no-op.
func (s *Disk) Quarantine(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.putMu.Lock()
	defer s.putMu.Unlock()
	err = os.Rename(p, filepath.Join(qdir, key+blobExt))
	if errors.Is(err, fs.ErrNotExist) {
		return nil // already gone: a concurrent quarantine or delete won
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.count--
	s.quarCount.Add(1)
	return nil
}

// QuarantineLen returns the number of quarantined blobs as seen by this
// handle: those under <dir>/quarantine at open plus this handle's
// Quarantine calls.
func (s *Disk) QuarantineLen() int64 { return s.quarCount.Load() }
