package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected marks a failure synthesized by a Fault store, so chaos
// tests can distinguish injected faults from real ones.
var ErrInjected = errors.New("store: injected fault")

// FaultPlan parameterizes a Fault store: per-operation probabilities of
// each failure mode, drawn from a seeded deterministic source. All
// rates are in [0,1]; the zero value injects nothing.
type FaultPlan struct {
	// Seed seeds the fault schedule; the same seed and operation
	// sequence reproduce the same faults (0 = 1).
	Seed int64
	// GetErrorRate is the probability a Get fails with a transient IO
	// error (ErrInjected).
	GetErrorRate float64
	// PutErrorRate is the probability a Put fails with a transient IO
	// error (ErrInjected).
	PutErrorRate float64
	// CorruptRate is the probability a successful Get returns the blob
	// with flipped bytes — a bit-rot read.
	CorruptRate float64
	// TornRate is the probability a successful Get returns a prefix of
	// the blob — a torn read, as after a crash on a non-atomic
	// filesystem.
	TornRate float64
	// ENOSPCRate is the probability a Put fails with syscall.ENOSPC —
	// a full disk, which Retry must not retry.
	ENOSPCRate float64
	// Latency is added to every operation via Sleep when nonzero.
	Latency time.Duration
	// Sleep performs the latency wait (nil = time.Sleep).
	Sleep func(time.Duration)
}

// Fault wraps a Blobs with deterministic, seedable fault injection:
// transient IO errors, bit-rot and torn reads, ENOSPC writes, and added
// latency, each at a configured rate — the failure model the chaos
// suite drives every resilience layer with. Faults are drawn per
// operation from the plan's seeded source, so a test's fault schedule
// is a pure function of (seed, operation sequence). SetPlan swaps the
// plan at runtime, so a test can storm errors, watch the breaker trip,
// then heal the backend and watch recovery.
type Fault struct {
	inner Blobs

	mu   sync.Mutex // guards plan + rng
	plan FaultPlan
	rng  *rand.Rand

	// Scripted one-shot faults, consumed before the probabilistic plan:
	// FailNextGets/Puts/Lens force exactly-N deterministic failures.
	failGets atomic.Int64
	failPuts atomic.Int64
	failLens atomic.Int64

	injected atomic.Int64
	ops      atomic.Int64
}

// NewFault wraps inner with the given fault plan.
func NewFault(inner Blobs, plan FaultPlan) *Fault {
	f := &Fault{inner: inner}
	f.SetPlan(plan)
	return f
}

// SetPlan replaces the fault plan (and reseeds the fault schedule).
// Safe to call concurrently with operations.
func (f *Fault) SetPlan(plan FaultPlan) {
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	if plan.Sleep == nil {
		plan.Sleep = time.Sleep
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
	f.rng = rand.New(rand.NewSource(plan.Seed))
}

// FailNextGets forces the next n Gets to fail with a transient
// injected error, ahead of the probabilistic plan.
func (f *Fault) FailNextGets(n int64) { f.failGets.Store(n) }

// FailNextPuts forces the next n Puts to fail with a transient
// injected error, ahead of the probabilistic plan.
func (f *Fault) FailNextPuts(n int64) { f.failPuts.Store(n) }

// FailNextLens forces the next n Lens to fail with a transient
// injected error, ahead of the probabilistic plan.
func (f *Fault) FailNextLens(n int64) { f.failLens.Store(n) }

// Injected returns the number of faults injected so far.
func (f *Fault) Injected() int64 { return f.injected.Load() }

// Ops returns the number of operations that reached the inner store.
func (f *Fault) Ops() int64 { return f.ops.Load() }

// roll draws one uniform sample and the current plan under the lock.
func (f *Fault) roll() (float64, FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64(), f.plan
}

// corrupt returns blob with deterministic damage: torn (prefix) or
// bit-rot (flipped bytes), chosen by the caller.
func (f *Fault) corrupt(blob []byte, torn bool) []byte {
	out := make([]byte, len(blob))
	copy(out, blob)
	if len(out) == 0 {
		return out
	}
	if torn {
		return out[:len(out)/2]
	}
	// Flip a byte in the middle and the last byte: the middle flip
	// breaks the payload CRC, the last flip breaks footer parsing —
	// both must land in quarantine.
	out[len(out)/2] ^= 0xff
	out[len(out)-1] ^= 0xff
	return out
}

// scripted consumes one scripted failure from ctr, if any remain.
func scripted(ctr *atomic.Int64) bool {
	for {
		n := ctr.Load()
		if n <= 0 {
			return false
		}
		if ctr.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// Get returns the blob under key, subject to injected errors and
// corrupt/torn reads.
func (f *Fault) Get(key string) ([]byte, bool, error) {
	p, plan := f.roll()
	if plan.Latency > 0 {
		plan.Sleep(plan.Latency)
	}
	if scripted(&f.failGets) || p < plan.GetErrorRate {
		f.injected.Add(1)
		return nil, false, fmt.Errorf("%w: get %q", ErrInjected, key)
	}
	blob, ok, err := f.inner.Get(key)
	f.ops.Add(1)
	if err != nil || !ok {
		return blob, ok, err
	}
	q, plan := f.roll()
	switch {
	case q < plan.TornRate:
		f.injected.Add(1)
		return f.corrupt(blob, true), true, nil
	case q < plan.TornRate+plan.CorruptRate:
		f.injected.Add(1)
		return f.corrupt(blob, false), true, nil
	}
	return blob, true, nil
}

// Put stores blob under key, subject to injected errors and ENOSPC.
func (f *Fault) Put(key string, blob []byte) error {
	p, plan := f.roll()
	if plan.Latency > 0 {
		plan.Sleep(plan.Latency)
	}
	if scripted(&f.failPuts) || p < plan.PutErrorRate {
		f.injected.Add(1)
		return fmt.Errorf("%w: put %q", ErrInjected, key)
	}
	if p < plan.PutErrorRate+plan.ENOSPCRate {
		f.injected.Add(1)
		return fmt.Errorf("store: put %q: %w", key, syscall.ENOSPC)
	}
	err := f.inner.Put(key, blob)
	f.ops.Add(1)
	return err
}

// Len returns the inner store's count, subject to injected errors.
func (f *Fault) Len() (int, error) {
	if scripted(&f.failLens) {
		f.injected.Add(1)
		return 0, fmt.Errorf("%w: len", ErrInjected)
	}
	n, err := f.inner.Len()
	f.ops.Add(1)
	return n, err
}

// Quarantine forwards to the inner store's Quarantiner, if any —
// quarantining is part of the recovery path under test, never faulted.
func (f *Fault) Quarantine(key string) error {
	if q, ok := f.inner.(Quarantiner); ok {
		return q.Quarantine(key)
	}
	return nil
}
