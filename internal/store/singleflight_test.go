package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightSharesOneComputation is the single-flight property: N
// concurrent claimants of one key produce exactly one owner, and every
// waiter observes the owner's published value.
func TestFlightSharesOneComputation(t *testing.T) {
	var f Flight[int]
	const n = 16
	var owners atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	got := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			c, owner := f.Claim("key")
			if owner {
				owners.Add(1)
				f.Resolve("key", c, 42, nil)
				got[i] = 42
				return
			}
			v, err := c.Wait()
			if err != nil {
				t.Errorf("waiter got error: %v", err)
			}
			got[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	// All claims overlap before the owner resolves only in the common
	// case; a late claimant may become a second owner after the first
	// resolution. Either way every claimant must see 42, and at least
	// one owner must exist.
	if owners.Load() < 1 {
		t.Fatal("no owner")
	}
	for i, v := range got {
		if v != 42 {
			t.Errorf("claimant %d saw %d, want 42", i, v)
		}
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d after all resolutions, want 0", f.Len())
	}
}

// TestFlightSequentialClaimsAreIndependent checks that Resolve forgets
// the key: a claim after resolution starts a fresh computation.
func TestFlightSequentialClaimsAreIndependent(t *testing.T) {
	var f Flight[string]
	c1, owner := f.Claim("k")
	if !owner {
		t.Fatal("first claim is not the owner")
	}
	f.Resolve("k", c1, "v1", nil)
	c2, owner := f.Claim("k")
	if !owner {
		t.Fatal("claim after resolution should own a fresh computation")
	}
	f.Resolve("k", c2, "v2", nil)
	if v, _ := c2.Wait(); v != "v2" {
		t.Errorf("second computation published %q, want v2", v)
	}
	if v, _ := c1.Wait(); v != "v1" {
		t.Errorf("first call mutated after resolution: %q", v)
	}
}

// TestFlightPropagatesErrors checks that waiters share the owner's
// error.
func TestFlightPropagatesErrors(t *testing.T) {
	var f Flight[int]
	c, owner := f.Claim("k")
	if !owner {
		t.Fatal("not owner")
	}
	waiter, owner2 := f.Claim("k")
	if owner2 {
		t.Fatal("second claim stole ownership")
	}
	want := errors.New("boom")
	go f.Resolve("k", c, 0, want)
	if _, err := waiter.Wait(); !errors.Is(err, want) {
		t.Errorf("waiter error = %v, want %v", err, want)
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d, want 0", f.Len())
	}
}

// TestFlightDistinctKeysDoNotBlock checks that unrelated keys are
// independent owners.
func TestFlightDistinctKeysDoNotBlock(t *testing.T) {
	var f Flight[int]
	a, ownerA := f.Claim("a")
	b, ownerB := f.Claim("b")
	if !ownerA || !ownerB {
		t.Fatal("distinct keys must both be owned")
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
	f.Resolve("a", a, 1, nil)
	f.Resolve("b", b, 2, nil)
	if va, _ := a.Wait(); va != 1 {
		t.Errorf("a = %d", va)
	}
	if vb, _ := b.Wait(); vb != 2 {
		t.Errorf("b = %d", vb)
	}
}
