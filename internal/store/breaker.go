package store

import (
	"sync"
	"time"
)

// Breaker states.
const (
	// BreakerClosed is the healthy state: every operation is allowed.
	BreakerClosed = "closed"
	// BreakerOpen is the tripped state: operations are rejected until
	// the cooldown elapses.
	BreakerOpen = "open"
	// BreakerHalfOpen is the probing state: exactly one operation is
	// allowed through; its outcome decides between Closed and Open.
	BreakerHalfOpen = "half-open"
)

// BreakerConfig parameterizes a Breaker. The zero value selects the
// defaults noted on each field.
type BreakerConfig struct {
	// Window is the number of most-recent operations considered when
	// deciding to trip (0 = 16).
	Window int
	// Threshold is the number of failed operations within the window
	// that trips the breaker (0 = 8; with the default window, a
	// sustained 50% error rate).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open recovery probe (0 = 5s).
	Cooldown time.Duration
	// Now supplies the clock (nil = time.Now; tests inject a fake).
	Now func() time.Time
}

// Breaker is a circuit breaker over an error-prone resource (in this
// tree, the disk tier of a TieredStore). It watches a sliding window of
// operation outcomes; when failures within the window reach the
// threshold it trips open and Allow rejects every operation — the
// caller degrades (memory-only) instead of paying a failing disk's
// latency on every cell. After the cooldown, one half-open probe is let
// through: success closes the breaker, failure re-opens it for another
// cooldown. All methods are safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    string
	ring     []bool // outcome window; true = failure
	pos      int
	filled   int
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
	rejected int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, state: BreakerClosed, ring: make([]bool, cfg.Window)}
}

// Allow reports whether the protected operation may run now. While
// open it returns false (and counts the rejection) until the cooldown
// elapses, then moves to half-open and admits exactly one probe; every
// admitted operation's outcome must be reported via Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejected++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			b.rejected++
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an operation Allow admitted. In the
// closed state a failure may trip the breaker; in the half-open state
// the probe's outcome closes (success) or re-opens (failure) it.
func (b *Breaker) Record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if b.ring[b.pos] {
			b.failures--
		}
		b.ring[b.pos] = failed
		if failed {
			b.failures++
		}
		b.pos = (b.pos + 1) % len(b.ring)
		if b.filled < len(b.ring) {
			b.filled++
		}
		if b.failures >= b.cfg.Threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		if failed {
			b.trip()
		} else {
			b.state = BreakerClosed
			b.reset()
		}
	case BreakerOpen:
		// A late Record from an operation admitted before the trip;
		// the window was already reset, nothing to account.
	}
}

// trip opens the breaker and clears the window. Called with mu held.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.trips++
	b.probing = false
	b.reset()
}

// reset clears the outcome window. Called with mu held.
func (b *Breaker) reset() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.pos, b.filled, b.failures = 0, 0, 0
}

// State returns the current state: BreakerClosed, BreakerOpen, or
// BreakerHalfOpen. The open→half-open transition happens lazily in
// Allow, so a cooled-down breaker still reports open until the next
// operation probes it.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns the number of closed→open (and half-open→open)
// transitions since creation.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Rejected returns the number of operations Allow refused while open.
func (b *Breaker) Rejected() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}
