package store

import "sync"

// Flight is a single-flight group: it deduplicates concurrent
// computations of the same key so one owner does the work and every
// concurrent claimant shares the published result. Unlike the classic
// Do(key, fn) shape, Flight splits claiming from resolving so a caller
// can claim a batch of keys, compute them through a worker pool, and
// publish each as it completes (the experiment engine's shape).
//
// The zero Flight is ready to use. All methods are safe for concurrent
// use.
type Flight[V any] struct {
	mu sync.Mutex
	m  map[string]*Call[V]
}

// Call is one in-flight computation. The owner publishes through
// Flight.Resolve; every other claimant blocks in Wait.
type Call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Wait blocks until the owner resolves the call and returns the
// published value.
func (c *Call[V]) Wait() (V, error) {
	<-c.done
	return c.val, c.err
}

// Done returns a channel that is closed once the call has been
// resolved, for non-blocking resolution checks.
func (c *Call[V]) Done() <-chan struct{} { return c.done }

// Claim registers interest in key. If no computation of key is in
// flight the caller becomes the owner (owner=true) and MUST eventually
// call Resolve with the returned Call, or every future claimant of key
// deadlocks. Otherwise the caller shares the existing in-flight Call
// (owner=false) and should Wait on it.
func (f *Flight[V]) Claim(key string) (c *Call[V], owner bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.m[key]; ok {
		return c, false
	}
	c = &Call[V]{done: make(chan struct{})}
	if f.m == nil {
		f.m = make(map[string]*Call[V])
	}
	f.m[key] = c
	return c, true
}

// Resolve publishes the owner's result to every waiter and forgets the
// key, so later Claims start a fresh computation (by then the result is
// expected to live in a result store). Resolve must be called exactly
// once per owned Call.
func (f *Flight[V]) Resolve(key string, c *Call[V], val V, err error) {
	c.val, c.err = val, err
	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
}

// Len returns the number of keys currently in flight.
func (f *Flight[V]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}
