package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"sync/atomic"
)

// ErrCorrupt marks a blob whose integrity footer failed verification:
// the stored bytes are not the bytes that were written. Callers treat
// it as a miss (the blob has been quarantined and will be recreated by
// the next Put of the same key), never retry it (re-reading corrupt
// bytes yields the same corrupt bytes), and may count it separately
// from transient IO failures.
var ErrCorrupt = errors.New("store: corrupt blob")

// footerMarker introduces the integrity footer Integrity appends to
// every blob it writes: a trailing line "\n#crc32c:%08x\n" carrying the
// Castagnoli CRC of the payload bytes. The marker begins with a newline
// so it can never occur inside a single-line JSON payload, which keeps
// footer detection unambiguous; a blob without the marker is a legacy
// blob from before integrity checking and is served as-is.
const footerMarker = "\n#crc32c:"

// castagnoli is the CRC-32C table (the polynomial used by iSCSI, ext4,
// and most storage checksums — hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C (Castagnoli) checksum of b — the same
// polynomial the blob integrity footers use, exported so other
// durability layers (internal/wal's record footers) share one table
// and one on-disk checksum convention.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Quarantiner is the optional Blobs extension for isolating corrupt
// blobs: Quarantine moves the blob stored under key aside (out of the
// visible keyspace, but preserved for inspection) so the corruption is
// observed once, not re-served forever. Disk moves the file into
// <dir>/quarantine/; Mem drops the entry into a shadow map. Wrappers
// (Retry, Fault, Integrity) forward Quarantine to their inner store.
type Quarantiner interface {
	// Quarantine isolates the blob stored under key. Quarantining an
	// absent key is a no-op.
	Quarantine(key string) error
}

// Integrity wraps a Blobs with checksummed writes and verified reads:
// Put appends a CRC-32C footer to every blob, Get verifies and strips
// it, and a blob that fails verification is quarantined on the inner
// store (when it implements Quarantiner) and reported as ErrCorrupt —
// so a torn or bit-flipped blob costs one observable miss and is
// recreated by the next Put, instead of being silently re-missed on
// every lookup forever. Blobs without a footer (written before
// integrity checking existed) are served unverified, so enabling
// Integrity over an existing directory is backward compatible.
type Integrity struct {
	inner       Blobs
	quarantined atomic.Int64
}

// WithIntegrity wraps inner with checksummed writes and verified reads.
func WithIntegrity(inner Blobs) *Integrity {
	return &Integrity{inner: inner}
}

// appendFooter returns blob with its integrity footer appended.
func appendFooter(blob []byte) []byte {
	out := make([]byte, 0, len(blob)+len(footerMarker)+9)
	out = append(out, blob...)
	out = append(out, fmt.Sprintf("%s%08x\n", footerMarker, crc32.Checksum(blob, castagnoli))...)
	return out
}

// verifyFooter splits blob into payload and footer and checks the CRC.
// A blob without a footer marker is legacy: returned whole, reported
// unverified, and never an error.
func verifyFooter(blob []byte) (payload []byte, verified bool, err error) {
	i := bytes.LastIndex(blob, []byte(footerMarker))
	if i < 0 {
		return blob, false, nil
	}
	rest := blob[i+len(footerMarker):]
	if len(rest) != 9 || rest[8] != '\n' {
		return nil, false, fmt.Errorf("%w: malformed footer", ErrCorrupt)
	}
	sum, perr := strconv.ParseUint(string(rest[:8]), 16, 32)
	if perr != nil {
		return nil, false, fmt.Errorf("%w: malformed footer", ErrCorrupt)
	}
	payload = blob[:i]
	if got := crc32.Checksum(payload, castagnoli); uint64(got) != sum {
		return nil, false, fmt.Errorf("%w: crc32c %08x, footer says %08x", ErrCorrupt, got, sum)
	}
	return payload, true, nil
}

// Get returns the verified payload stored under key. A blob whose
// footer fails verification is quarantined and reported as
// (nil, false, ErrCorrupt); a legacy blob without a footer is returned
// unverified.
func (s *Integrity) Get(key string) ([]byte, bool, error) {
	return s.GetCtx(context.Background(), key)
}

// GetCtx is Get bounded by ctx, forwarded to the inner store when it is
// context-aware (see CtxBlobs).
func (s *Integrity) GetCtx(ctx context.Context, key string) ([]byte, bool, error) {
	var (
		blob []byte
		ok   bool
		err  error
	)
	if cb, aware := s.inner.(CtxBlobs); aware {
		blob, ok, err = cb.GetCtx(ctx, key)
	} else {
		blob, ok, err = s.inner.Get(key)
	}
	if err != nil || !ok {
		return nil, false, err
	}
	payload, _, err := verifyFooter(blob)
	if err != nil {
		s.Quarantine(key)
		return nil, false, err
	}
	return payload, true, nil
}

// Put stores blob under key with an integrity footer appended.
func (s *Integrity) Put(key string, blob []byte) error {
	return s.PutCtx(context.Background(), key, blob)
}

// PutCtx is Put bounded by ctx, forwarded to the inner store when it is
// context-aware (see CtxBlobs).
func (s *Integrity) PutCtx(ctx context.Context, key string, blob []byte) error {
	if cb, aware := s.inner.(CtxBlobs); aware {
		return cb.PutCtx(ctx, key, appendFooter(blob))
	}
	return s.inner.Put(key, appendFooter(blob))
}

// Len returns the inner store's blob count.
func (s *Integrity) Len() (int, error) { return s.inner.Len() }

// Quarantine isolates the blob under key on the inner store (when it
// supports quarantining) and counts the event. The root DiskStore calls
// this for corruption the footer cannot see — a blob whose bytes verify
// but whose JSON payload no longer decodes (legacy blobs carry no
// footer).
func (s *Integrity) Quarantine(key string) error {
	s.quarantined.Add(1)
	if q, ok := s.inner.(Quarantiner); ok {
		return q.Quarantine(key)
	}
	return nil
}

// Quarantined returns the number of blobs this wrapper quarantined
// since creation (not counting blobs already in quarantine at open —
// see Disk.QuarantineLen for the on-disk total).
func (s *Integrity) Quarantined() int64 { return s.quarantined.Load() }
