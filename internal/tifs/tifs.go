// Package tifs implements Temporal Instruction Fetch Streaming (Ferdman
// et al., MICRO 2008), the stream-based instruction prefetcher that PIF
// and SHIFT build on (paper Section 7: "TIFS records streams of
// discontinuities in its history, enhancing the lookahead of
// discontinuity prefetching").
//
// TIFS records each core's L1-I *miss* stream — not the full access
// stream — into a per-core circular history indexed by miss address. On a
// miss, the most recent occurrence of that miss address is located and
// the misses that followed it are prefetched.
//
// The paper's Section 2.2 explains why PIF superseded it: miss streams
// depend on cache content, which changes over time (and changes under
// prefetching itself), while access streams are a property of the
// program alone. This package exists so that the repository contains the
// full lineage (next-line → TIFS → PIF → SHIFT) and so the
// access-vs-miss-stream design choice can be measured; it is not part of
// the paper's evaluated design set.
package tifs

import (
	"fmt"

	"shift/internal/history"
	"shift/internal/prefetch"
	"shift/internal/trace"
)

// Config sizes one core's TIFS.
type Config struct {
	// HistEntries is the per-core miss-history capacity in records
	// (each record is a single miss block address).
	HistEntries int
	// IndexEntries and IndexAssoc size the per-core index table.
	IndexEntries, IndexAssoc int
	// SAB configures the stream address buffers (span is irrelevant for
	// single-block records but kept for the shared machinery).
	SAB history.SABConfig
}

// DefaultConfig mirrors PIF_32K's aggregate budget: 32K single-address
// records and an 8K-entry index.
func DefaultConfig() Config {
	sab := history.DefaultSABConfig()
	return Config{HistEntries: 32768, IndexEntries: 8192, IndexAssoc: 4, SAB: sab}
}

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	if c.HistEntries <= 0 {
		return fmt.Errorf("tifs: HistEntries %d <= 0", c.HistEntries)
	}
	if c.IndexEntries <= 0 || c.IndexAssoc <= 0 || c.IndexEntries%c.IndexAssoc != 0 {
		return fmt.Errorf("tifs: bad index table %d/%d", c.IndexEntries, c.IndexAssoc)
	}
	return c.SAB.Validate()
}

// TIFS is one core's prefetcher instance.
type TIFS struct {
	cfg   Config
	buf   *history.Buffer
	index *history.IndexTable
	sab   *history.SAB

	stats prefetch.Stats
	out   []prefetch.Request
	tmp   []history.Region
	blks  []trace.BlockAddr
}

// New builds a per-core TIFS.
func New(cfg Config) (*TIFS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &TIFS{
		cfg:   cfg,
		buf:   history.MustNewBuffer(cfg.HistEntries),
		index: history.MustNewIndexTable(cfg.IndexEntries, cfg.IndexAssoc),
		sab:   history.MustNewSAB(cfg.SAB),
	}, nil
}

// MustNew panics on config errors.
func MustNew(cfg Config) *TIFS {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements prefetch.Prefetcher.
func (t *TIFS) Name() string { return "TIFS" }

// PrefetchStats implements prefetch.StatsReporter.
func (t *TIFS) PrefetchStats() prefetch.Stats { return t.stats }

// OnAccess implements prefetch.Prefetcher. Only misses are recorded and
// only misses start or advance streams — the defining property of
// miss-stream prefetching.
func (t *TIFS) OnAccess(a prefetch.Access) []prefetch.Request {
	t.out = t.out[:0]
	t.stats.Accesses++
	if a.Hit && !a.WasPrefetch {
		// Plain hits are invisible to a miss-stream prefetcher.
		return nil
	}
	// A miss, or the first use of a prefetched block (which would have
	// been a miss without the prefetcher): both belong to the miss
	// stream.
	if !a.Hit {
		t.stats.Misses++
	}

	si, needed, covered := t.sab.Advance(a.Block)
	if covered {
		t.stats.CoveredAccesses++
		if !a.Hit {
			t.stats.CoveredMisses++
		}
		if needed > 0 {
			t.readAhead(si, needed)
		}
		t.emitWindow(si, a.Block)
	} else if !a.Hit {
		if pos, ok := t.index.Lookup(a.Block); ok && t.buf.Valid(pos) {
			si := t.sab.Alloc()
			t.stats.StreamAllocs++
			recs, next := t.buf.ReadSeq(t.tmp[:0], pos, t.cfg.SAB.Lookahead)
			t.tmp = recs // retain the grown backing array across calls
			t.sab.FillRegions(si, recs, next)
			t.emitWindow(si, a.Block)
		}
	}

	// Record the miss stream: one single-block record per miss.
	if !a.Hit || a.WasPrefetch {
		pos := t.buf.Append(history.Region{Trigger: a.Block})
		t.index.Update(a.Block, pos)
		t.stats.RecordsWritten++
		t.stats.IndexUpdates++
	}
	return t.out
}

// WarmAccess implements prefetch.Warmer: during functional warming only
// the recording side of OnAccess runs. TIFS records the *miss* stream,
// which depends on cache content; functional warming models the L1-I
// but not the prefetch buffer, so the warmed history follows the raw L1
// miss stream (identical to detailed stepping exactly when no
// prefetches perturb coverage, e.g. in prediction mode — the
// access-vs-miss-stream fragility the paper's Section 2.2 describes).
func (t *TIFS) WarmAccess(blk trace.BlockAddr, l1Hit bool) {
	if l1Hit {
		return
	}
	pos := t.buf.Append(history.Region{Trigger: blk})
	t.index.Update(blk, pos)
	t.stats.RecordsWritten++
	t.stats.IndexUpdates++
}

// History exposes the private miss-history buffer (read-only use: the
// functional-vs-detailed warm-state differential tests compare history
// contents across stepping modes).
func (t *TIFS) History() *history.Buffer { return t.buf }

// readAhead tops stream si up with `needed` records.
func (t *TIFS) readAhead(si, needed int) {
	pos := t.sab.NextPos(si)
	if !t.buf.Valid(pos) {
		return
	}
	recs, next := t.buf.ReadSeq(t.tmp[:0], pos, needed)
	t.tmp = recs
	if len(recs) == 0 {
		return
	}
	t.sab.FillRegions(si, recs, next)
}

// emitWindow issues prefetches for un-issued records in the lookahead
// window. TIFS records are single miss addresses (empty vectors), so
// the fused block emission yields exactly the triggers.
func (t *TIFS) emitWindow(si int, current trace.BlockAddr) {
	t.blks = t.sab.TakePrefetchBlocks(si, current, t.blks[:0])
	for _, b := range t.blks {
		t.out = append(t.out, prefetch.Request{Block: b})
	}
}

// StorageBits returns the per-core storage cost in bits: single 34-bit
// miss addresses plus the index (34-bit tag + pointer).
func (c Config) StorageBits() int64 {
	ptrBits := int64(15)
	return int64(c.HistEntries)*int64(trace.BlockAddrBits) +
		int64(c.IndexEntries)*(int64(trace.BlockAddrBits)+ptrBits)
}

var (
	_ prefetch.Prefetcher    = (*TIFS)(nil)
	_ prefetch.StatsReporter = (*TIFS)(nil)
	_ prefetch.Warmer        = (*TIFS)(nil)
)
