package tifs

import (
	"testing"

	"shift/internal/history"
	"shift/internal/prefetch"
	"shift/internal/trace"
)

func testCfg() Config {
	c := DefaultConfig()
	c.HistEntries = 256
	c.IndexEntries = 64
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{HistEntries: 0, IndexEntries: 8, IndexAssoc: 4, SAB: history.DefaultSABConfig()},
		{HistEntries: 8, IndexEntries: 0, IndexAssoc: 4, SAB: history.DefaultSABConfig()},
		{HistEntries: 8, IndexEntries: 9, IndexAssoc: 4, SAB: history.DefaultSABConfig()},
		{HistEntries: 8, IndexEntries: 8, IndexAssoc: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// missStream drives blocks through as misses.
func missStream(p *TIFS, blocks []trace.BlockAddr) []prefetch.Request {
	var all []prefetch.Request
	for _, b := range blocks {
		all = append(all, p.OnAccess(prefetch.Access{Block: b, Hit: false})...)
	}
	return all
}

func TestRecordsOnlyMisses(t *testing.T) {
	p := MustNew(testCfg())
	p.OnAccess(prefetch.Access{Block: 1, Hit: true})
	p.OnAccess(prefetch.Access{Block: 2, Hit: true})
	if p.PrefetchStats().RecordsWritten != 0 {
		t.Error("hits were recorded into the miss history")
	}
	p.OnAccess(prefetch.Access{Block: 3, Hit: false})
	if p.PrefetchStats().RecordsWritten != 1 {
		t.Error("miss not recorded")
	}
	// First use of a prefetched block is a would-be miss: recorded.
	p.OnAccess(prefetch.Access{Block: 4, Hit: true, WasPrefetch: true})
	if p.PrefetchStats().RecordsWritten != 2 {
		t.Error("prefetched first-use not recorded in miss stream")
	}
}

func TestReplayMissStream(t *testing.T) {
	p := MustNew(testCfg())
	stream := []trace.BlockAddr{100, 205, 311, 450, 520}
	missStream(p, stream)
	missStream(p, []trace.BlockAddr{9000}) // push the stream into history
	// Recurrence of the stream head should prefetch the following misses.
	reqs := p.OnAccess(prefetch.Access{Block: 100, Hit: false})
	if len(reqs) == 0 {
		t.Fatal("no prefetches on miss-stream recurrence")
	}
	got := map[trace.BlockAddr]bool{}
	for _, r := range reqs {
		got[r.Block] = true
	}
	for _, b := range []trace.BlockAddr{205, 311, 450} {
		if !got[b] {
			t.Errorf("block %d not prefetched; got %v", b, reqs)
		}
	}
}

func TestCoverageOnReplay(t *testing.T) {
	p := MustNew(testCfg())
	stream := []trace.BlockAddr{100, 205, 311, 450, 520}
	for i := 0; i < 3; i++ {
		missStream(p, stream)
	}
	before := p.PrefetchStats().CoveredMisses
	missStream(p, stream)
	delta := p.PrefetchStats().CoveredMisses - before
	if delta < int64(len(stream))-2 {
		t.Errorf("covered %d of %d recurring misses", delta, len(stream))
	}
}

func TestPlainHitsInvisible(t *testing.T) {
	p := MustNew(testCfg())
	stream := []trace.BlockAddr{10, 20, 30}
	missStream(p, stream)
	allocs := p.PrefetchStats().StreamAllocs
	// Hits must not start streams.
	for _, b := range stream {
		p.OnAccess(prefetch.Access{Block: b, Hit: true})
	}
	if p.PrefetchStats().StreamAllocs != allocs {
		t.Error("hits allocated streams")
	}
}

func TestStorageCheaperThanPIF(t *testing.T) {
	// At equal record counts, TIFS records (34 bits) are cheaper than
	// PIF's region records (41 bits) — but each covers only one block.
	c := DefaultConfig()
	bits := c.StorageBits()
	kb := float64(bits) / 8 / 1024
	if kb < 180 || kb > 200 {
		t.Errorf("TIFS storage = %.1f KB, want ~184KB", kb)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(Config{})
}
