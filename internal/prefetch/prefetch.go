// Package prefetch defines the interface between the simulator and the
// instruction prefetchers, plus the baseline prefetchers of the paper's
// evaluation: the null prefetcher (baseline system, Section 5.3) and the
// next-line prefetcher ("a common design choice in today's processors",
// Section 2.2).
//
// The state-of-the-art comparison prefetcher (PIF) lives in internal/pif;
// the paper's contribution (SHIFT) lives in internal/core.
package prefetch

import (
	"fmt"

	"shift/internal/trace"
)

// Request asks the simulator to prefetch an instruction block into the
// issuing core's L1-I.
type Request struct {
	// Block is the instruction block to prefetch.
	Block trace.BlockAddr
	// Delay is extra latency (in cycles) before the request can issue,
	// e.g. the round trip to read a history buffer block from the LLC in
	// virtualized SHIFT.
	Delay int64
}

// Access describes one demand L1-I access, in retire order.
type Access struct {
	// Now is the core-local cycle of the access.
	Now int64
	// Block is the instruction block address.
	Block trace.BlockAddr
	// Hit is the L1-I outcome.
	Hit bool
	// WasPrefetch is true when Hit is true and the line was installed by
	// a prefetch that had not been demand-referenced yet.
	WasPrefetch bool
}

// Prefetcher reacts to a core's demand accesses by issuing prefetches.
// One instance serves one core; implementations may share state across
// instances (SHIFT's shared history).
type Prefetcher interface {
	// Name identifies the design point ("NextLine", "PIF_32K", "SHIFT"...).
	Name() string
	// OnAccess observes a retire-order demand access and returns the
	// prefetches to issue. The returned slice is only valid until the
	// next call.
	//
	// OnAccess sits on the simulator's per-record hot path and MUST be
	// allocation-free in steady state: implementations return a slice
	// backed by a buffer they own and reuse across calls, and keep any
	// internal scratch (history reads, stream fills) in reused buffers
	// as well. Warmup growth of those buffers is fine; per-call slice or
	// map churn is not. The contract is enforced for the evaluated
	// design points by TestStepZeroAllocSteadyState in internal/sim and
	// by the allocs/record gate in the repository's benchmarks.
	OnAccess(a Access) []Request
}

// Stats is the prediction bookkeeping common to the stream-based
// prefetchers; the simulator combines it with cache-level covered /
// overpredicted accounting.
type Stats struct {
	// Accesses and Misses count demand activity observed.
	Accesses, Misses int64
	// CoveredAccesses counts accesses that fell inside an active stream
	// (the commonality metric of Figure 3).
	CoveredAccesses int64
	// CoveredMisses counts misses that fell inside an active stream (the
	// prediction-mode coverage of Figure 6).
	CoveredMisses int64
	// StreamAllocs counts new stream activations.
	StreamAllocs int64
	// HistoryReads and HistoryWrites count history-buffer block
	// transfers (virtualized SHIFT's LogRead/LogWrite traffic).
	HistoryReads, HistoryWrites int64
	// IndexUpdates counts index-pointer updates.
	IndexUpdates int64
	// RecordsWritten counts spatial region records appended to history.
	RecordsWritten int64
}

// AccessCoverage returns CoveredAccesses/Accesses (0 if no accesses).
func (s Stats) AccessCoverage() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.CoveredAccesses) / float64(s.Accesses)
}

// MissCoverage returns CoveredMisses/Misses (0 if no misses).
func (s Stats) MissCoverage() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.CoveredMisses) / float64(s.Misses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Misses += other.Misses
	s.CoveredAccesses += other.CoveredAccesses
	s.CoveredMisses += other.CoveredMisses
	s.StreamAllocs += other.StreamAllocs
	s.HistoryReads += other.HistoryReads
	s.HistoryWrites += other.HistoryWrites
	s.IndexUpdates += other.IndexUpdates
	s.RecordsWritten += other.RecordsWritten
}

// StatsReporter is implemented by prefetchers that expose Stats.
type StatsReporter interface {
	PrefetchStats() Stats
}

// Warmer is implemented by prefetchers whose history must keep learning
// while the simulator fast-forwards between detailed intervals of a
// sampled run (SMARTS-style functional warming). WarmAccess applies the
// history-generation side of OnAccess — region compaction and history/
// index appends — without the replay machinery (stream address buffers,
// prefetch issue) or any timing and traffic modelling, so the history a
// detailed interval replays from is exactly as warm as continuous
// detailed simulation would have left it.
//
// Like OnAccess, WarmAccess is on the hot path of its (functional) loop
// and must be allocation-free in steady state.
type Warmer interface {
	// WarmAccess observes one retire-order access during functional
	// warming. l1Hit is the L1-I outcome of the access; prefetch-buffer
	// coverage is not modelled while warming (the buffer is a small
	// timing structure that detailed warmup re-warms), so history
	// generators keyed on the effective miss stream see the raw L1 miss
	// stream instead.
	WarmAccess(blk trace.BlockAddr, l1Hit bool)
}

// Null is the no-prefetch baseline.
type Null struct{}

// NewNull returns the baseline (no prefetching) design.
func NewNull() *Null { return &Null{} }

// Name implements Prefetcher.
func (*Null) Name() string { return "Baseline" }

// OnAccess implements Prefetcher.
func (*Null) OnAccess(Access) []Request { return nil }

// NextLine prefetches the next Degree sequential blocks on a miss or on
// the first use of a prefetched block (tagged next-line prefetching).
type NextLine struct {
	degree int
	out    []Request
	stats  Stats
}

// NewNextLine builds a next-line prefetcher with the given degree
// (1 if degree <= 0).
func NewNextLine(degree int) *NextLine {
	if degree <= 0 {
		degree = 1
	}
	return &NextLine{degree: degree}
}

// Name implements Prefetcher.
func (n *NextLine) Name() string {
	if n.degree == 1 {
		return "NextLine"
	}
	return fmt.Sprintf("NextLine%d", n.degree)
}

// OnAccess implements Prefetcher.
func (n *NextLine) OnAccess(a Access) []Request {
	n.stats.Accesses++
	if !a.Hit {
		n.stats.Misses++
	}
	if a.Hit && !a.WasPrefetch {
		return nil
	}
	n.out = n.out[:0]
	for d := 1; d <= n.degree; d++ {
		blk := a.Block + trace.BlockAddr(d)
		if blk > trace.MaxBlockAddr {
			break
		}
		n.out = append(n.out, Request{Block: blk})
	}
	return n.out
}

// PrefetchStats implements StatsReporter.
func (n *NextLine) PrefetchStats() Stats { return n.stats }

var (
	_ Prefetcher    = (*Null)(nil)
	_ Prefetcher    = (*NextLine)(nil)
	_ StatsReporter = (*NextLine)(nil)
)
