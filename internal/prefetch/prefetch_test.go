package prefetch

import (
	"testing"

	"shift/internal/trace"
)

func TestNullPrefetcher(t *testing.T) {
	p := NewNull()
	if p.Name() != "Baseline" {
		t.Errorf("Name = %q", p.Name())
	}
	if reqs := p.OnAccess(Access{Block: 5}); reqs != nil {
		t.Errorf("Null issued requests: %v", reqs)
	}
}

func TestNextLineOnMiss(t *testing.T) {
	p := NewNextLine(1)
	reqs := p.OnAccess(Access{Block: 100, Hit: false})
	if len(reqs) != 1 || reqs[0].Block != 101 {
		t.Fatalf("reqs = %v, want [101]", reqs)
	}
}

func TestNextLineDegree(t *testing.T) {
	p := NewNextLine(4)
	reqs := p.OnAccess(Access{Block: 100, Hit: false})
	if len(reqs) != 4 {
		t.Fatalf("degree 4 issued %d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.Block != trace.BlockAddr(101+i) {
			t.Errorf("req %d = %v", i, r.Block)
		}
	}
	if p.Name() != "NextLine4" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestNextLineTagged(t *testing.T) {
	p := NewNextLine(1)
	// Plain hit: no prefetch.
	if reqs := p.OnAccess(Access{Block: 100, Hit: true}); len(reqs) != 0 {
		t.Error("prefetched on plain hit")
	}
	// First use of a prefetched line continues the stream.
	reqs := p.OnAccess(Access{Block: 101, Hit: true, WasPrefetch: true})
	if len(reqs) != 1 || reqs[0].Block != 102 {
		t.Errorf("tagged continuation missing: %v", reqs)
	}
}

func TestNextLineAddressSpaceEdge(t *testing.T) {
	p := NewNextLine(4)
	reqs := p.OnAccess(Access{Block: trace.MaxBlockAddr, Hit: false})
	if len(reqs) != 0 {
		t.Errorf("prefetched past the address space: %v", reqs)
	}
}

func TestNextLineDefaultDegree(t *testing.T) {
	p := NewNextLine(0)
	if p.Name() != "NextLine" {
		t.Errorf("Name = %q", p.Name())
	}
	if reqs := p.OnAccess(Access{Block: 1, Hit: false}); len(reqs) != 1 {
		t.Errorf("default degree issued %d", len(reqs))
	}
}

func TestNextLineStats(t *testing.T) {
	p := NewNextLine(1)
	p.OnAccess(Access{Block: 1, Hit: false})
	p.OnAccess(Access{Block: 2, Hit: true})
	st := p.PrefetchStats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.AccessCoverage() != 0 || s.MissCoverage() != 0 {
		t.Error("empty stats coverage should be 0")
	}
	s = Stats{Accesses: 10, CoveredAccesses: 9, Misses: 4, CoveredMisses: 2}
	if s.AccessCoverage() != 0.9 {
		t.Errorf("AccessCoverage = %v", s.AccessCoverage())
	}
	if s.MissCoverage() != 0.5 {
		t.Errorf("MissCoverage = %v", s.MissCoverage())
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Accesses != 20 || sum.CoveredMisses != 4 {
		t.Errorf("Add: %+v", sum)
	}
}
