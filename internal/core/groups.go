package core

import (
	"fmt"

	"shift/internal/trace"
)

// Group assigns a contiguous range of cores to one consolidated workload
// (Section 4.3: one history buffer and one generator core per workload).
type Group struct {
	// Name labels the workload.
	Name string
	// Cores lists the core IDs running this workload.
	Cores []int
}

// NewGroups builds one SharedHistory per consolidated workload. Each
// group's generator core is its first core, and each history gets a
// disjoint HBBase range ("the operating system or the hypervisor needs to
// assign one history generator core per workload and set the history
// buffer base address").
//
// The backend is shared: the histories live side by side in the same LLC.
func NewGroups(base Config, groups []Group, backend LLCBackend) ([]*SharedHistory, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no workload groups")
	}
	seen := make(map[int]bool)
	shs := make([]*SharedHistory, len(groups))
	hb := base.HBBase
	if hb == 0 {
		hb = HBBaseBlock
	}
	for i, g := range groups {
		if len(g.Cores) == 0 {
			return nil, fmt.Errorf("core: group %q has no cores", g.Name)
		}
		for _, c := range g.Cores {
			if seen[c] {
				return nil, fmt.Errorf("core: core %d assigned to two groups", c)
			}
			seen[c] = true
		}
		cfg := base
		cfg.GeneratorCore = g.Cores[0]
		cfg.HBBase = hb
		sh, err := NewSharedHistory(cfg, backend)
		if err != nil {
			return nil, fmt.Errorf("core: group %q: %w", g.Name, err)
		}
		shs[i] = sh
		// Advance the base past this history's range (block-aligned).
		hb += trace.BlockAddr(cfg.HistoryBlocks())
	}
	return shs, nil
}

// GroupFor returns the index of the group containing core, or -1.
func GroupFor(groups []Group, core int) int {
	for i, g := range groups {
		for _, c := range g.Cores {
			if c == core {
				return i
			}
		}
	}
	return -1
}
