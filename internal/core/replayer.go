package core

import (
	"shift/internal/history"
	"shift/internal/prefetch"
	"shift/internal/trace"
)

// Replayer is the per-core SHIFT logic: a stream address buffer file plus
// the "simple logic to read instruction streams from the shared history
// buffer and issue prefetch requests" (Section 4). It implements
// prefetch.Prefetcher.
type Replayer struct {
	sh     *SharedHistory
	coreID int
	sab    *history.SAB

	stats prefetch.Stats
	out   []prefetch.Request
	tmp   []history.Region
	blks  []trace.BlockAddr
}

// CorePrefetcher creates the per-core replay logic for coreID. The
// instance records into the shared history if coreID is the generator.
func (sh *SharedHistory) CorePrefetcher(coreID int) *Replayer {
	return &Replayer{
		sh:     sh,
		coreID: coreID,
		sab:    history.MustNewSAB(sh.cfg.SAB),
	}
}

// Name implements prefetch.Prefetcher.
func (r *Replayer) Name() string { return r.sh.cfg.Variant.String() }

// PrefetchStats implements prefetch.StatsReporter.
func (r *Replayer) PrefetchStats() prefetch.Stats { return r.stats }

// IsGenerator reports whether this core currently records the shared
// history (the role may rotate; see SharedHistory.SetGenerator).
func (r *Replayer) IsGenerator() bool { return r.coreID == r.sh.generator }

// OnAccess implements prefetch.Prefetcher.
func (r *Replayer) OnAccess(a prefetch.Access) []prefetch.Request {
	r.out = r.out[:0]
	r.stats.Accesses++
	if !a.Hit {
		r.stats.Misses++
	}

	// Replay: advance the covering stream.
	si, needed, covered := r.sab.Advance(a.Block)
	if covered {
		r.stats.CoveredAccesses++
		if !a.Hit {
			r.stats.CoveredMisses++
		}
		var delay int64
		if needed > 0 {
			delay = r.readAhead(si, needed)
		}
		r.emitWindow(si, a.Block, delay)
	} else if !a.Hit || r.sh.cfg.AllocOnAccess {
		// Start a new stream from the most recent occurrence of this
		// block as a trigger in the *shared* history.
		if pos, ok := r.sh.lookup(r.coreID, a.Block); ok {
			r.allocate(pos, a.Block)
		}
	}

	// Record: only the history generator core writes the shared history.
	if r.IsGenerator() {
		if r.sh.record(r.coreID, a.Block) {
			r.stats.RecordsWritten++
			r.stats.IndexUpdates++
		}
	}
	return r.out
}

// WarmAccess implements prefetch.Warmer: during functional warming only
// the recording side of OnAccess runs — the generator core keeps
// appending region records to the shared history (with the variant's
// index updates and CBB flushes), while replay state (the SAB file) and
// prefetch issue are skipped. Non-generator cores do nothing: SHIFT's
// only slow-warming per-workload state is the shared history itself.
func (r *Replayer) WarmAccess(blk trace.BlockAddr, _ bool) {
	if r.IsGenerator() {
		if r.sh.record(r.coreID, blk) {
			r.stats.RecordsWritten++
			r.stats.IndexUpdates++
		}
	}
}

// allocate claims a stream, performs the initial history read, and emits
// the first prefetch window.
func (r *Replayer) allocate(pos uint64, current trace.BlockAddr) {
	si := r.sab.Alloc()
	r.stats.StreamAllocs++
	delay := r.fill(si, pos, r.sh.cfg.SAB.Lookahead)
	r.emitWindow(si, current, delay)
}

// readAhead tops stream si up by `needed` records, returning the history
// access latency incurred.
func (r *Replayer) readAhead(si, needed int) int64 {
	pos := r.sab.NextPos(si)
	if !r.sh.buf.Valid(pos) {
		return 0
	}
	return r.fill(si, pos, needed)
}

// fill reads `want` records starting at pos into stream si, modelling the
// storage variant's access granularity and latency. It returns the
// accumulated history read latency (zero for dedicated storage).
func (r *Replayer) fill(si int, pos uint64, want int) int64 {
	switch r.sh.cfg.Variant {
	case Dedicated:
		recs, next := r.sh.buf.ReadSeq(r.tmp[:0], pos, want)
		r.tmp = recs // retain the grown backing array across calls
		if len(recs) == 0 {
			return 0
		}
		r.sab.FillRegions(si, recs, next)
		return 0

	case Virtualized:
		// History is read at cache-block granularity: fetch the block
		// containing pos (records at positions >= pos within it), and at
		// most one more block if the lookahead demands it. Each block
		// read is an LLC round trip whose latency delays the resulting
		// prefetches (Section 4.2 replay steps 2-4). All records of a
		// fetched block enter the stream queue; prefetch issue is still
		// paced by the SAB's lookahead window.
		rpb := uint64(r.sh.cfg.RecordsPerBlock())
		var delay int64
		got := 0
		for reads := 0; got < want && reads < 2; reads++ {
			if !r.sh.buf.Valid(pos) {
				break
			}
			blockEnd := pos - pos%rpb + rpb
			n := int(blockEnd - pos)
			recs, next := r.sh.buf.ReadSeq(r.tmp[:0], pos, n)
			r.tmp = recs
			if len(recs) == 0 {
				break
			}
			delay += r.sh.backend.ReadHistoryBlock(r.coreID, r.sh.hbBlockFor(pos))
			r.stats.HistoryReads++
			r.sab.FillRegions(si, recs, next)
			got += len(recs)
			pos = next
		}
		return delay
	}
	return 0
}

// emitWindow issues prefetch requests for the stream's un-issued records
// inside the lookahead window, skipping the block being demand-fetched.
func (r *Replayer) emitWindow(si int, current trace.BlockAddr, delay int64) {
	r.blks = r.sab.TakePrefetchBlocks(si, current, r.blks[:0])
	for _, b := range r.blks {
		r.out = append(r.out, prefetch.Request{Block: b, Delay: delay})
	}
}

var (
	_ prefetch.Prefetcher    = (*Replayer)(nil)
	_ prefetch.StatsReporter = (*Replayer)(nil)
	_ prefetch.Warmer        = (*Replayer)(nil)
)
