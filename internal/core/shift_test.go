package core

import (
	"testing"

	"shift/internal/history"
	"shift/internal/prefetch"
	"shift/internal/trace"
)

func testCfg(v Variant) Config {
	c := DefaultConfig()
	c.Variant = v
	c.HistEntries = 240 // 20 blocks at 12 records/block
	return c
}

// fakeLLC is a test double for the LLCBackend: pointers stored in a map,
// fixed latency, call counters.
type fakeLLC struct {
	pointers   map[trace.BlockAddr]uint32
	resident   map[trace.BlockAddr]bool // nil means everything resident
	reads      int
	writes     int
	updates    int
	latency    int64
	lastHBRead trace.BlockAddr
}

func newFakeLLC() *fakeLLC {
	return &fakeLLC{pointers: make(map[trace.BlockAddr]uint32), latency: 20}
}

func (f *fakeLLC) PointerFor(core int, blk trace.BlockAddr) (uint32, bool) {
	p, ok := f.pointers[blk]
	return p, ok
}

func (f *fakeLLC) UpdatePointer(core int, blk trace.BlockAddr, ptr uint32) bool {
	f.updates++
	if f.resident != nil && !f.resident[blk] {
		return false
	}
	f.pointers[blk] = ptr
	return true
}

func (f *fakeLLC) ReadHistoryBlock(core int, hb trace.BlockAddr) int64 {
	f.reads++
	f.lastHBRead = hb
	return f.latency
}

func (f *fakeLLC) WriteHistoryBlock(core int, hb trace.BlockAddr) int64 {
	f.writes++
	return f.latency
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Variant: Dedicated, HistEntries: 0, SAB: history.DefaultSABConfig()},
		{Variant: Dedicated, HistEntries: 8, GeneratorCore: -1, SAB: history.DefaultSABConfig()},
		{Variant: Variant(9), HistEntries: 8, SAB: history.DefaultSABConfig()},
		{Variant: Dedicated, HistEntries: 8, SAB: history.SABConfig{}},
		{Variant: Dedicated, HistEntries: 8, IndexEntries: -1, SAB: history.DefaultSABConfig()},
		{Variant: Dedicated, HistEntries: 8, IndexEntries: 7, IndexAssoc: 4, SAB: history.DefaultSABConfig()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPaperSizing(t *testing.T) {
	c := DefaultConfig()
	// Section 4.2: 12 records per 64B block; 32K records need 2,731
	// cache lines = ~171KB of LLC capacity.
	if c.RecordsPerBlock() != 12 {
		t.Errorf("RecordsPerBlock = %d, want 12", c.RecordsPerBlock())
	}
	if c.HistoryBlocks() != 2731 {
		t.Errorf("HistoryBlocks = %d, want 2731", c.HistoryBlocks())
	}
	kb := float64(c.HistoryFootprintBytes()) / 1024
	if kb < 170 || kb > 172 {
		t.Errorf("history footprint = %.1fKB, want ~171KB", kb)
	}
	lo, hi := c.HBRange()
	if hi-lo != trace.BlockAddr(c.HistoryBlocks()) {
		t.Error("HBRange size mismatch")
	}
}

func TestVariantString(t *testing.T) {
	if Dedicated.String() != "ZeroLat-SHIFT" || Virtualized.String() != "SHIFT" {
		t.Error("variant names do not match the paper's figures")
	}
	if Variant(7).String() == "" {
		t.Error("unknown variant should format")
	}
}

func TestVirtualizedRequiresBackend(t *testing.T) {
	if _, err := NewSharedHistory(testCfg(Virtualized), nil); err == nil {
		t.Error("virtualized SHIFT without backend accepted")
	}
	if _, err := NewSharedHistory(testCfg(Dedicated), nil); err != nil {
		t.Errorf("dedicated SHIFT rejected: %v", err)
	}
}

// feed drives a block stream through a replayer as misses.
func feed(r *Replayer, blocks []trace.BlockAddr) []prefetch.Request {
	var all []prefetch.Request
	for _, b := range blocks {
		all = append(all, r.OnAccess(prefetch.Access{Block: b, Hit: false})...)
	}
	return all
}

func TestSharedHistoryCrossCoreReplay(t *testing.T) {
	sh := MustNewSharedHistory(testCfg(Dedicated), nil)
	gen := sh.CorePrefetcher(0)   // generator
	other := sh.CorePrefetcher(5) // pure consumer

	stream := []trace.BlockAddr{100, 101, 102, 500, 501, 900, 901, 2000}
	feed(gen, stream)
	feed(gen, []trace.BlockAddr{7000, 7001}) // flush the last region

	// The *other* core now misses on the stream head: it must replay the
	// generator's history even though it never recorded anything.
	reqs := other.OnAccess(prefetch.Access{Block: 100, Hit: false})
	if len(reqs) == 0 {
		t.Fatal("consumer core got no prefetches from shared history")
	}
	got := map[trace.BlockAddr]bool{}
	for _, r := range reqs {
		got[r.Block] = true
	}
	for _, b := range []trace.BlockAddr{101, 102, 500} {
		if !got[b] {
			t.Errorf("block %d not prefetched from shared history", b)
		}
	}
	if other.PrefetchStats().StreamAllocs != 1 {
		t.Errorf("allocs = %d", other.PrefetchStats().StreamAllocs)
	}
}

func TestOnlyGeneratorRecords(t *testing.T) {
	sh := MustNewSharedHistory(testCfg(Dedicated), nil)
	other := sh.CorePrefetcher(3)
	feed(other, []trace.BlockAddr{100, 101, 5000, 5001, 9000})
	if sh.Stats().RecordsWritten != 0 {
		t.Errorf("non-generator core wrote %d records", sh.Stats().RecordsWritten)
	}
	gen := sh.CorePrefetcher(0)
	feed(gen, []trace.BlockAddr{100, 101, 5000, 5001, 9000})
	if sh.Stats().RecordsWritten == 0 {
		t.Error("generator core wrote no records")
	}
	if !gen.IsGenerator() || other.IsGenerator() {
		t.Error("IsGenerator wrong")
	}
}

func TestVirtualizedRecordingTraffic(t *testing.T) {
	llc := newFakeLLC()
	cfg := testCfg(Virtualized)
	sh := MustNewSharedHistory(cfg, llc)
	gen := sh.CorePrefetcher(0)

	// Feed enough discontinuous blocks to close >24 regions (2+ CBB
	// flushes at 12 records/block).
	var stream []trace.BlockAddr
	for i := 0; i < 40; i++ {
		stream = append(stream, trace.BlockAddr(1000+i*50))
	}
	feed(gen, stream)

	st := sh.Stats()
	if st.RecordsWritten < 24 {
		t.Fatalf("records written = %d", st.RecordsWritten)
	}
	if llc.updates != int(st.IndexUpdates) || llc.updates == 0 {
		t.Errorf("index updates: llc=%d stats=%d", llc.updates, st.IndexUpdates)
	}
	wantFlushes := int(st.RecordsWritten) / cfg.RecordsPerBlock()
	if llc.writes != wantFlushes {
		t.Errorf("CBB flushes = %d, want %d", llc.writes, wantFlushes)
	}
}

func TestVirtualizedReplayLatencyAndPointer(t *testing.T) {
	llc := newFakeLLC()
	cfg := testCfg(Virtualized)
	sh := MustNewSharedHistory(cfg, llc)
	gen := sh.CorePrefetcher(0)
	other := sh.CorePrefetcher(7)

	stream := []trace.BlockAddr{100, 101, 102, 500, 501, 900, 901, 2000}
	feed(gen, stream)
	feed(gen, []trace.BlockAddr{7000, 7001})

	// The trigger 100's pointer should be in the LLC tags.
	if _, ok := llc.pointers[100]; !ok {
		t.Fatal("no index pointer recorded for trigger 100")
	}
	reqs := other.OnAccess(prefetch.Access{Block: 100, Hit: false})
	if len(reqs) == 0 {
		t.Fatal("no prefetches via LLC pointer")
	}
	// Prefetches must be delayed by the history-read round trip.
	for _, r := range reqs {
		if r.Delay != llc.latency {
			t.Errorf("request %v delay = %d, want %d", r.Block, r.Delay, llc.latency)
		}
	}
	if llc.reads == 0 || other.PrefetchStats().HistoryReads == 0 {
		t.Error("no history block reads accounted")
	}
	// The history block address must fall in the reserved range.
	lo, hi := cfg.HBRange()
	if llc.lastHBRead < lo || llc.lastHBRead >= hi {
		t.Errorf("history read at %v outside reserved range [%v,%v)", llc.lastHBRead, lo, hi)
	}
}

func TestVirtualizedPointerLostWhenNotResident(t *testing.T) {
	llc := newFakeLLC()
	llc.resident = map[trace.BlockAddr]bool{} // nothing resident
	sh := MustNewSharedHistory(testCfg(Virtualized), llc)
	gen := sh.CorePrefetcher(0)
	feed(gen, []trace.BlockAddr{100, 101, 500, 501, 900})
	st := sh.Stats()
	if st.IndexDropped != st.IndexUpdates || st.IndexDropped == 0 {
		t.Errorf("dropped=%d updates=%d; all updates should drop", st.IndexDropped, st.IndexUpdates)
	}
	other := sh.CorePrefetcher(1)
	if reqs := other.OnAccess(prefetch.Access{Block: 100, Hit: false}); len(reqs) != 0 {
		t.Error("replay started without a resident pointer")
	}
}

func TestStalePointerRejected(t *testing.T) {
	llc := newFakeLLC()
	cfg := testCfg(Virtualized)
	cfg.HistEntries = 24 // wraps after 24 records
	sh := MustNewSharedHistory(cfg, llc)
	gen := sh.CorePrefetcher(0)
	feed(gen, []trace.BlockAddr{100, 101, 500})
	// Overwrite the whole history.
	var churn []trace.BlockAddr
	for i := 0; i < 60; i++ {
		churn = append(churn, trace.BlockAddr(10000+i*100))
	}
	feed(gen, churn)
	other := sh.CorePrefetcher(1)
	if reqs := other.OnAccess(prefetch.Access{Block: 100, Hit: false}); len(reqs) != 0 {
		t.Error("stale pointer replayed overwritten history")
	}
}

func TestAllocOnAccessMode(t *testing.T) {
	cfg := testCfg(Dedicated)
	cfg.AllocOnAccess = true
	sh := MustNewSharedHistory(cfg, nil)
	gen := sh.CorePrefetcher(0)
	stream := []trace.BlockAddr{100, 101, 500, 501, 900}
	feed(gen, stream)
	feed(gen, []trace.BlockAddr{7000, 7001})
	other := sh.CorePrefetcher(2)
	// A *hit* (not a miss) should still start replay in commonality mode.
	other.OnAccess(prefetch.Access{Block: 100, Hit: true})
	if other.PrefetchStats().StreamAllocs != 1 {
		t.Errorf("allocs = %d, want 1 (AllocOnAccess)", other.PrefetchStats().StreamAllocs)
	}
}

func TestAdvanceCountsCoverage(t *testing.T) {
	sh := MustNewSharedHistory(testCfg(Dedicated), nil)
	gen := sh.CorePrefetcher(0)
	stream := []trace.BlockAddr{100, 101, 102, 500, 501, 900, 901, 2000}
	for i := 0; i < 3; i++ {
		feed(gen, stream)
	}
	other := sh.CorePrefetcher(4)
	feed(other, stream) // first pass allocates on the head miss
	st := other.PrefetchStats()
	if st.CoveredMisses < int64(len(stream))-3 {
		t.Errorf("covered %d of %d misses", st.CoveredMisses, len(stream))
	}
	if st.MissCoverage() <= 0.5 {
		t.Errorf("MissCoverage = %v", st.MissCoverage())
	}
}

func TestGroups(t *testing.T) {
	base := testCfg(Dedicated)
	groups := []Group{
		{Name: "A", Cores: []int{0, 1, 2, 3}},
		{Name: "B", Cores: []int{4, 5, 6, 7}},
	}
	shs, err := NewGroups(base, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shs) != 2 {
		t.Fatalf("got %d histories", len(shs))
	}
	if shs[0].Config().GeneratorCore != 0 || shs[1].Config().GeneratorCore != 4 {
		t.Error("generator cores not the first core of each group")
	}
	// HB ranges must be disjoint.
	lo0, hi0 := shs[0].Config().HBRange()
	lo1, hi1 := shs[1].Config().HBRange()
	if hi0 > lo1 && hi1 > lo0 {
		t.Errorf("HB ranges overlap: [%v,%v) and [%v,%v)", lo0, hi0, lo1, hi1)
	}
	if GroupFor(groups, 5) != 1 || GroupFor(groups, 0) != 0 || GroupFor(groups, 99) != -1 {
		t.Error("GroupFor wrong")
	}
}

func TestGroupsValidation(t *testing.T) {
	base := testCfg(Dedicated)
	if _, err := NewGroups(base, nil, nil); err == nil {
		t.Error("empty groups accepted")
	}
	if _, err := NewGroups(base, []Group{{Name: "A"}}, nil); err == nil {
		t.Error("group without cores accepted")
	}
	dup := []Group{{Name: "A", Cores: []int{1}}, {Name: "B", Cores: []int{1}}}
	if _, err := NewGroups(base, dup, nil); err == nil {
		t.Error("duplicate core accepted")
	}
}

func TestGroupIsolation(t *testing.T) {
	// Streams recorded in group A's history must not be replayable from
	// group B's history.
	base := testCfg(Dedicated)
	shs, err := NewGroups(base, []Group{
		{Name: "A", Cores: []int{0, 1}},
		{Name: "B", Cores: []int{2, 3}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	genA := shs[0].CorePrefetcher(0)
	stream := []trace.BlockAddr{100, 101, 500, 501, 900}
	feed(genA, stream)
	feed(genA, []trace.BlockAddr{7000, 7001})

	coreB := shs[1].CorePrefetcher(2)
	if reqs := coreB.OnAccess(prefetch.Access{Block: 100, Hit: false}); len(reqs) != 0 {
		t.Error("group B replayed group A's history")
	}
}

func TestMustNewSharedHistoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewSharedHistory should panic")
		}
	}()
	MustNewSharedHistory(Config{}, nil)
}
