// Package core implements SHIFT, the paper's contribution: a shared-
// history instruction prefetcher for lean-core server CMPs (Section 4).
//
// One history generator core records its retire-order instruction-cache
// access stream as spatial region records into a single history buffer
// shared by all cores running the workload. Every core owns only a light
// stream-address-buffer file and replays the shared history to prefetch.
//
// Two variants are provided:
//
//   - Dedicated: the history buffer and index table are dedicated SRAM
//     reachable in zero cycles. This is the paper's "ZeroLat-SHIFT"
//     comparison point (Section 5.3), which isolates SHIFT's prediction
//     quality from its LLC-residency costs.
//
//   - Virtualized: the history buffer lives in the LLC at a reserved,
//     non-evictable physical range starting at HBBase, written through a
//     12-record cache-block buffer (CBB); the index table is folded into
//     the LLC tag array as a pointer per instruction-block tag
//     (Section 4.2). History reads/writes and index updates become LLC
//     traffic with real latency, mediated by the LLCBackend interface.
//
// Workload consolidation (Section 4.3) instantiates one SharedHistory per
// workload, each with its own generator core and HBBase; see NewGroups.
package core

import (
	"fmt"

	"shift/internal/history"
	"shift/internal/trace"
)

// Variant selects the history storage implementation.
type Variant int

const (
	// Dedicated is zero-latency dedicated storage (ZeroLat-SHIFT).
	Dedicated Variant = iota
	// Virtualized embeds the history in the LLC (the real SHIFT design).
	Virtualized
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case Dedicated:
		return "ZeroLat-SHIFT"
	case Virtualized:
		return "SHIFT"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// HBBaseBlock is the default base block address of the reserved history
// range (paper: "reserves a small portion of the physical address space
// that is hidden from the operating system"). It sits far above both code
// regions.
const HBBaseBlock trace.BlockAddr = 0xC000000

// LLCBackend is what virtualized SHIFT needs from the LLC and
// interconnect. The simulator implements it; unit tests use fakes.
type LLCBackend interface {
	// PointerFor returns the index pointer piggybacked on core's demand
	// LLC access for instruction block blk (Section 4.2 replay step 1).
	// ok is false when the block is not LLC-resident or has no pointer.
	PointerFor(core int, blk trace.BlockAddr) (ptr uint32, ok bool)
	// UpdatePointer sets blk's pointer in the LLC tag array, if blk is
	// resident (recording step 2). It accounts index-update traffic and
	// reports whether the update landed.
	UpdatePointer(core int, blk trace.BlockAddr, ptr uint32) bool
	// ReadHistoryBlock accounts a history-buffer block read by core and
	// returns the round-trip latency in cycles (replay steps 2-3).
	ReadHistoryBlock(core int, hbBlock trace.BlockAddr) int64
	// WriteHistoryBlock accounts a CBB flush into the LLC (recording
	// step 4) and returns its latency.
	WriteHistoryBlock(core int, hbBlock trace.BlockAddr) int64
}

// Config parameterizes one shared history and its per-core replay logic.
type Config struct {
	// Variant selects dedicated (ZeroLat) or LLC-virtualized storage.
	Variant Variant
	// HistEntries is the shared history capacity in region records
	// (32K in the paper's design).
	HistEntries int
	// GeneratorCore is the single core that records the history
	// ("one core picked at random", Section 6.1).
	GeneratorCore int
	// SAB configures each core's stream address buffers.
	SAB history.SABConfig
	// HBBase is the base block address of the virtualized history range.
	HBBase trace.BlockAddr
	// AllocOnAccess makes replay start on any uncovered access rather
	// than only on misses; used by the Section 3 commonality study,
	// which replays streams at access granularity.
	AllocOnAccess bool
	// IndexEntries/IndexAssoc size the dedicated variant's index table.
	// Zero means one entry per history record (the virtualized design's
	// effective capacity is the whole LLC tag array, so the dedicated
	// stand-in is not artificially capacity-limited).
	IndexEntries, IndexAssoc int
}

// DefaultConfig is the paper's SHIFT design point.
func DefaultConfig() Config {
	return Config{
		Variant:       Virtualized,
		HistEntries:   32768,
		GeneratorCore: 0,
		SAB:           history.DefaultSABConfig(),
		HBBase:        HBBaseBlock,
	}
}

// Validate reports the first problem with c, or nil.
func (c Config) Validate() error {
	if c.HistEntries <= 0 {
		return fmt.Errorf("core: HistEntries %d <= 0", c.HistEntries)
	}
	if c.GeneratorCore < 0 {
		return fmt.Errorf("core: GeneratorCore %d < 0", c.GeneratorCore)
	}
	if c.Variant != Dedicated && c.Variant != Virtualized {
		return fmt.Errorf("core: unknown variant %d", c.Variant)
	}
	if c.IndexEntries < 0 {
		return fmt.Errorf("core: IndexEntries %d < 0", c.IndexEntries)
	}
	if c.IndexEntries > 0 && (c.IndexAssoc <= 0 || c.IndexEntries%c.IndexAssoc != 0) {
		return fmt.Errorf("core: bad index table %d/%d", c.IndexEntries, c.IndexAssoc)
	}
	return c.SAB.Validate()
}

// RecordsPerBlock returns how many region records share one history cache
// block (12 at the paper's span of 8).
func (c Config) RecordsPerBlock() int { return history.RecordsPerCacheBlock(c.SAB.Span) }

// HistoryBlocks returns the number of LLC blocks the virtualized history
// occupies (2,731 at the paper's design point).
func (c Config) HistoryBlocks() int {
	rpb := c.RecordsPerBlock()
	return (c.HistEntries + rpb - 1) / rpb
}

// HistoryFootprintBytes returns the LLC capacity consumed by the history
// (171KB at the paper's design point).
func (c Config) HistoryFootprintBytes() int {
	return c.HistoryBlocks() * trace.BlockBytes
}

// HBRange returns the [lo, hi) block range of the virtualized history.
func (c Config) HBRange() (lo, hi trace.BlockAddr) {
	return c.HBBase, c.HBBase + trace.BlockAddr(c.HistoryBlocks())
}

// SharedHistory is the single history shared by all cores running one
// workload: the generator-side recording state plus the storage.
type SharedHistory struct {
	cfg     Config
	buf     *history.Buffer
	index   *history.IndexTable // dedicated variant only
	builder *history.Builder
	backend LLCBackend // virtualized variant only

	// generator is the core currently recording the history. It starts
	// at cfg.GeneratorCore and may be rotated at runtime (the Section 6.1
	// sampling mechanism for long-lasting control-flow deviations).
	generator int
	rotations int64

	cbbCount int // records accumulated in the cache-block buffer

	// Shared-side statistics.
	recordsWritten int64
	histWrites     int64
	indexUpdates   int64
	indexDropped   int64 // updates dropped because the trigger left the LLC
}

// NewSharedHistory builds the shared history. backend is required for the
// Virtualized variant and ignored for Dedicated.
func NewSharedHistory(cfg Config, backend LLCBackend) (*SharedHistory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Variant == Virtualized && backend == nil {
		return nil, fmt.Errorf("core: virtualized SHIFT requires an LLC backend")
	}
	sh := &SharedHistory{cfg: cfg, backend: backend, generator: cfg.GeneratorCore}
	sh.buf = history.MustNewBuffer(cfg.HistEntries)
	sh.builder = history.MustNewBuilder(cfg.SAB.Span)
	if cfg.Variant == Dedicated {
		entries, assoc := cfg.IndexEntries, cfg.IndexAssoc
		if entries == 0 {
			entries, assoc = cfg.HistEntries, 8
			for entries%assoc != 0 {
				entries++
			}
		}
		sh.index = history.MustNewIndexTable(entries, assoc)
	}
	return sh, nil
}

// MustNewSharedHistory panics on config errors.
func MustNewSharedHistory(cfg Config, backend LLCBackend) *SharedHistory {
	sh, err := NewSharedHistory(cfg, backend)
	if err != nil {
		panic(err)
	}
	return sh
}

// Config returns the configuration.
func (sh *SharedHistory) Config() Config { return sh.cfg }

// Generator returns the core currently recording the shared history.
func (sh *SharedHistory) Generator() int { return sh.generator }

// SetGenerator hands history recording over to another core (Section 6.1:
// "a sampling mechanism that monitors the instruction miss coverage and
// changes the history generator core accordingly"). The region builder
// and cache-block buffer restart; history contents and index pointers
// remain valid, so replay continues uninterrupted.
func (sh *SharedHistory) SetGenerator(coreID int) {
	if coreID == sh.generator {
		return
	}
	sh.generator = coreID
	sh.builder = history.MustNewBuilder(sh.cfg.SAB.Span)
	sh.cbbCount = 0
	sh.rotations++
}

// Rotations returns how many times the generator role moved.
func (sh *SharedHistory) Rotations() int64 { return sh.rotations }

// hbBlockFor maps an absolute record position to its LLC-resident history
// block (write pointer + HBBase, Section 4.2 recording step 3).
func (sh *SharedHistory) hbBlockFor(pos uint64) trace.BlockAddr {
	slot := pos % uint64(sh.cfg.HistEntries)
	return sh.cfg.HBBase + trace.BlockAddr(slot/uint64(sh.cfg.RecordsPerBlock()))
}

// record consumes one retired block access of the generator core. It
// reports whether a completed region record was appended to the history.
func (sh *SharedHistory) record(coreID int, blk trace.BlockAddr) bool {
	rec, done := sh.builder.Add(blk)
	if !done {
		return false
	}
	pos := sh.buf.Append(rec)
	sh.recordsWritten++
	switch sh.cfg.Variant {
	case Dedicated:
		sh.index.Update(rec.Trigger, pos)
		sh.indexUpdates++
	case Virtualized:
		// Index update request to the LLC for the trigger address,
		// carrying the current write pointer (recording step 2). The
		// update is dropped if the trigger block is not LLC-resident.
		sh.indexUpdates++
		if !sh.backend.UpdatePointer(coreID, rec.Trigger, uint32(pos)) {
			sh.indexDropped++
		}
		// Accumulate into the CBB; flush a full block to the LLC
		// (recording steps 1, 3, 4).
		sh.cbbCount++
		if sh.cbbCount >= sh.cfg.RecordsPerBlock() {
			sh.backend.WriteHistoryBlock(coreID, sh.hbBlockFor(pos))
			sh.histWrites++
			sh.cbbCount = 0
		}
	}
	return true
}

// lookup finds the history position to replay from for a missed block.
func (sh *SharedHistory) lookup(coreID int, blk trace.BlockAddr) (uint64, bool) {
	switch sh.cfg.Variant {
	case Dedicated:
		pos, ok := sh.index.Lookup(blk)
		if !ok || !sh.buf.Valid(pos) {
			return 0, false
		}
		return pos, true
	case Virtualized:
		ptr, ok := sh.backend.PointerFor(coreID, blk)
		if !ok {
			return 0, false
		}
		pos := uint64(ptr)
		if !sh.buf.Valid(pos) {
			return 0, false // pointer refers to overwritten history
		}
		return pos, true
	}
	return 0, false
}

// SharedStats reports generator-side counters.
type SharedStats struct {
	RecordsWritten int64
	HistWrites     int64
	IndexUpdates   int64
	IndexDropped   int64
	WritePos       uint64
}

// History exposes the shared history buffer (read-only use: the
// functional-vs-detailed warm-state differential tests compare history
// contents across stepping modes).
func (sh *SharedHistory) History() *history.Buffer { return sh.buf }

// Stats returns the shared-side counters.
func (sh *SharedHistory) Stats() SharedStats {
	return SharedStats{
		RecordsWritten: sh.recordsWritten,
		HistWrites:     sh.histWrites,
		IndexUpdates:   sh.indexUpdates,
		IndexDropped:   sh.indexDropped,
		WritePos:       sh.buf.WritePos(),
	}
}
