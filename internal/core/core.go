package core
