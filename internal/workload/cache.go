package workload

import "sync"

// graphCache memoizes built workloads process-wide, keyed by their full
// parameter set. Params is a flat value type (strings and numbers
// only), so it is directly usable as a map key and two equal Params
// always describe the same static program.
var graphCache sync.Map // Params -> *graphEntry

// graphEntry is one memoized build; once guards the (single) New call
// so concurrent first requests for the same Params build the graph
// exactly once while requests for other Params proceed in parallel.
type graphEntry struct {
	once sync.Once
	w    *Workload
	err  error
}

// Cached returns the workload built from p, building it at most once
// per parameter set for the lifetime of the process. A Workload is
// immutable and safe for concurrent use (all mutable state lives in
// per-core readers), so every simulation cell — and every member of a
// batched run — sharing a workload reuses one function/block graph
// instead of re-running New.
//
// The cache never evicts: its population is bounded by the number of
// distinct parameter sets the process touches (the seven Table I
// workloads plus any custom/scaled variants), each a few hundred
// kilobytes of static graph. Build errors are memoized too — New is
// deterministic, so retrying an invalid Params cannot succeed.
func Cached(p Params) (*Workload, error) {
	e, _ := graphCache.LoadOrStore(p, &graphEntry{})
	ent := e.(*graphEntry)
	ent.once.Do(func() { ent.w, ent.err = New(p) })
	return ent.w, ent.err
}
