package workload

import (
	"testing"

	"shift/internal/trace"
)

// streamTestWorkload builds a small-but-real workload for stream tests.
func streamTestWorkload(t *testing.T) *Workload {
	t.Helper()
	p := Catalog()[0]
	p = Scaled(p, 0.1)
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStreamViewMatchesCoreReader drives several views in skewed
// lockstep and asserts each yields exactly the record sequence of an
// independent CoreReader for the same core.
func TestStreamViewMatchesCoreReader(t *testing.T) {
	w := streamTestWorkload(t)
	const core = 3
	const total = 50000
	ref, err := trace.Collect(trace.Limit(w.NewCoreReader(core), total), total)
	if err != nil {
		t.Fatal(err)
	}

	cs := w.NewCoreStream(core, 3)
	views := []*StreamView{cs.View(0), cs.View(1), cs.View(2)}
	// Uneven lockstep: view 0 advances in blocks of 1000, view 1 in
	// blocks of 700, view 2 in blocks of 1300 — consumers lead and lag
	// across chunk boundaries.
	steps := []int{1000, 700, 1300}
	got := make([][]trace.Record, len(views))
	for done := false; !done; {
		done = true
		for i, v := range views {
			for j := 0; j < steps[i] && len(got[i]) < total; j++ {
				rec, err := v.Next()
				if err != nil {
					t.Fatal(err)
				}
				got[i] = append(got[i], rec)
			}
			if len(got[i]) < total {
				done = false
			}
		}
	}
	for i := range got {
		if len(got[i]) != total {
			t.Fatalf("view %d: %d records, want %d", i, len(got[i]), total)
		}
		for j := range got[i] {
			if got[i][j] != ref[j] {
				t.Fatalf("view %d record %d: got %+v, want %+v", i, j, got[i][j], ref[j])
			}
		}
	}
}

// TestStreamWindowBounded asserts that chunks consumed by every view
// are recycled: with consumers in bounded lockstep, the live window
// stays at a handful of chunks and steady state stops allocating new
// chunk buffers.
func TestStreamWindowBounded(t *testing.T) {
	w := streamTestWorkload(t)
	cs := w.NewCoreStream(0, 4)
	const rounds = 200
	const blk = 2048 // two chunks per lockstep block
	for r := 0; r < rounds; r++ {
		for i := 0; i < 4; i++ {
			v := cs.View(i)
			for j := 0; j < blk; j++ {
				if _, err := v.Next(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if n := len(cs.chunks); n > 2*blk/streamChunk+1 {
			t.Fatalf("round %d: live window %d chunks, want <= %d", r, n, 2*blk/streamChunk+1)
		}
	}
	if cs.produced != rounds*blk {
		t.Fatalf("produced %d records, want %d", cs.produced, rounds*blk)
	}
	// Total chunk buffers ever allocated = live + free; steady state
	// must reuse, not grow.
	if alloced := len(cs.chunks) + len(cs.free); alloced > 8 {
		t.Fatalf("allocated %d chunk buffers for a lockstep skew of %d records", alloced, blk)
	}
}

// TestCachedReturnsSharedGraph asserts the process-wide memoization:
// same Params yield the same *Workload, different Params do not, and
// build errors are reported.
func TestCachedReturnsSharedGraph(t *testing.T) {
	p := Scaled(Catalog()[1], 0.1)
	w1, err := Cached(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Cached(p)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("Cached built the same Params twice")
	}
	q := p
	q.Seed++
	w3, err := Cached(q)
	if err != nil {
		t.Fatal(err)
	}
	if w3 == w1 {
		t.Fatal("Cached shared a graph across different Params")
	}
	if _, err := Cached(Params{}); err == nil {
		t.Fatal("Cached accepted invalid Params")
	}
}
