package workload

import (
	"math"

	"shift/internal/trace"
)

// streamChunk is the record-production granularity of a CoreStream: the
// producer runs the stack-machine executor for this many records in one
// tight loop, which amortizes its setup and keeps the executor's state
// hot instead of interleaving one record of generation with thousands
// of simulation instructions. 1024 records is 16KB of chunk storage —
// small enough that a live window of a few chunks stays cache-resident.
const streamChunk = 1024

// CoreStream splits a core's trace generation into a chunked record
// producer and any number of zero-copy consumer views: the underlying
// CoreReader (the stack-machine executor plus its RNG — pure per-record
// overhead when duplicated) runs exactly once, filling shared chunks
// that every StreamView reads in place. It is the fan-out mechanism of
// the batched execution path (sim.RunBatch): K design points of one
// workload consume one generated stream instead of generating K
// identical ones.
//
// Chunks are produced lazily when the most-advanced view steps past the
// produced window, and recycled once every view has fully consumed
// them, so the live window is bounded by the views' skew (the batch
// runner steps consumers in bounded lockstep) plus one chunk — steady
// state allocates nothing.
//
// A CoreStream and its views are NOT safe for concurrent use: all
// views must be advanced from a single goroutine, exactly how the
// batch runner drives its systems.
type CoreStream struct {
	src *CoreReader
	// gen is the generic record source when the stream wraps something
	// other than the synthetic generator (a phased or replay Source);
	// exactly one of src and gen is set. Keeping the concrete generator
	// in its own field devirtualizes the production hot path for the
	// common case.
	gen   trace.Reader
	views []StreamView

	// supply is the total record count a bounded source (trace.Supplier)
	// can produce, or -1 for unbounded sources. Views report it through
	// their own Supply method so the simulator's up-front window check
	// sees through the fan-out.
	supply int64
	// pad is the record used to fill a chunk past a bounded source's
	// end. Chunks are fixed-size, so the tail of the final chunk is
	// padded; a run validated against supply never consumes pad records.
	pad trace.Record

	// chunks is the live window; chunks[0] holds records starting at
	// absolute index base. Every chunk is exactly streamChunk records
	// (the synthetic stream never ends), packed 8 bytes per record —
	// block (34 bits), instruction count, and kind fit one word, and
	// halving the chunk footprint halves the memory traffic of
	// consumers that read a chunk long after it was produced (the
	// coarse-block lockstep schedule of sim.RunBatch).
	chunks [][]uint64
	base   int64
	// produced is the total number of records generated so far.
	produced int64
	// free holds recycled chunk buffers for reuse.
	free [][]uint64
}

// packRecord packs a record into one word: block in the high bits (a
// valid block address is 34 bits — far below the 45 available), then
// the 16-bit retire count, then the 3-bit kind.
func packRecord(rec trace.Record) uint64 {
	return uint64(rec.Block)<<19 | uint64(rec.Instrs)<<3 | uint64(rec.Kind)
}

// unpackRecord inverts packRecord.
func unpackRecord(w uint64) trace.Record {
	return trace.Record{Block: trace.BlockAddr(w >> 19), Instrs: uint16(w >> 3), Kind: trace.Kind(w & 7)}
}

// NewCoreStream returns a chunked single-producer replay of core's
// instruction stream for `consumers` lockstep consumers. The record
// sequence seen by every view is identical to w.NewCoreReader(core) —
// bit-for-bit, including RNG-driven control-flow decisions — because
// the views share one such reader.
func (w *Workload) NewCoreStream(core, consumers int) *CoreStream {
	cs := &CoreStream{src: w.NewCoreReader(core), supply: -1}
	cs.init(consumers)
	return cs
}

// NewStream returns a chunked single-producer replay of an arbitrary
// record source for `consumers` lockstep consumers — the fan-out path
// for Source-backed batches (phase sequences, trace replay). The record
// sequence seen by every view is identical to reading src directly.
// When src is bounded (trace.Supplier), the views are bounded too: they
// report the source's remaining supply through their own Supply method,
// and production past the source's end pads with the last real record
// (padding is only ever produced, never consumed, in a run that passed
// the supply check).
func NewStream(src trace.Reader, consumers int) *CoreStream {
	cs := &CoreStream{supply: -1}
	if cr, ok := src.(*CoreReader); ok {
		cs.src = cr
	} else {
		cs.gen = src
		cs.pad = trace.Record{Block: AppBaseBlock, Instrs: 1, Kind: trace.KindSeq}
		if s, ok := src.(trace.Supplier); ok {
			cs.supply = s.Supply()
		}
	}
	cs.init(consumers)
	return cs
}

// init allocates the consumer views.
func (cs *CoreStream) init(consumers int) {
	cs.views = make([]StreamView, consumers)
	for i := range cs.views {
		cs.views[i].cs = cs
	}
}

// View returns consumer i's reader over the shared stream.
func (cs *CoreStream) View(i int) *StreamView { return &cs.views[i] }

// produce generates the next chunk, first recycling chunks that every
// view has fully consumed.
func (cs *CoreStream) produce() {
	min := cs.views[0].pos
	for i := 1; i < len(cs.views); i++ {
		if cs.views[i].pos < min {
			min = cs.views[i].pos
		}
	}
	// A view whose cached chunk is recycled has already consumed it
	// completely, so its fast path can never read the re-filled buffer:
	// the next Next() falls into nextSlow and re-resolves the chunk.
	for len(cs.chunks) > 0 && cs.base+streamChunk <= min {
		cs.free = append(cs.free, cs.chunks[0])
		n := copy(cs.chunks, cs.chunks[1:])
		cs.chunks = cs.chunks[:n]
		cs.base += streamChunk
	}
	var buf []uint64
	if n := len(cs.free); n > 0 {
		buf = cs.free[n-1]
		cs.free = cs.free[:n-1]
	} else {
		buf = make([]uint64, streamChunk)
	}
	if cs.src != nil {
		for i := range buf {
			rec, _ := cs.src.Next() // CoreReader.Next never fails
			buf[i] = packRecord(rec)
		}
	} else {
		for i := range buf {
			rec, err := cs.gen.Next()
			if err != nil {
				// Bounded source exhausted mid-chunk: pad the fixed-size
				// chunk with the last real record. A simulation window
				// validated against the views' Supply never reads pads.
				rec = cs.pad
			} else {
				cs.pad = rec
			}
			buf[i] = packRecord(rec)
		}
	}
	cs.chunks = append(cs.chunks, buf)
	cs.produced += streamChunk
}

// StreamView is one consumer's zero-copy cursor over a CoreStream. It
// implements trace.Reader and, like CoreReader, never returns io.EOF:
// the synthetic stream is unbounded and callers limit it by record
// budget.
type StreamView struct {
	cs  *CoreStream
	pos int64
	// cur caches the chunk containing pos (curBase is its first
	// record's absolute index), so the steady-state Next is one bounds
	// check, one indexed load, and an unpack.
	cur     []uint64
	curBase int64
}

// Next implements trace.Reader; the error is always nil.
func (v *StreamView) Next() (trace.Record, error) {
	if i := v.pos - v.curBase; uint64(i) < uint64(len(v.cur)) {
		w := v.cur[i]
		v.pos++
		return unpackRecord(w), nil
	}
	return v.nextSlow()
}

// nextSlow advances the view into the next chunk, producing it if this
// view is the most advanced consumer.
func (v *StreamView) nextSlow() (trace.Record, error) {
	cs := v.cs
	if v.pos >= cs.produced {
		cs.produce()
	}
	idx := (v.pos - cs.base) / streamChunk
	v.cur = cs.chunks[idx]
	v.curBase = cs.base + idx*streamChunk
	w := v.cur[v.pos-v.curBase]
	v.pos++
	return unpackRecord(w), nil
}

// Skip advances the view past n records without decoding them. The
// skipped records must already have been produced (the sampled batch
// runner only skips followers across stretches the lead has consumed);
// the cached-chunk fast path self-invalidates because the position
// leaves the cached bounds. Skipping keeps the view's recycling
// bookkeeping exact: chunks the skip passes become reclaimable exactly
// as if the records had been read.
func (v *StreamView) Skip(n int64) {
	v.pos += n
	for v.pos > v.cs.produced {
		v.cs.produce()
	}
}

// Records returns the number of records this view has consumed.
func (v *StreamView) Records() int64 { return v.pos }

// Supply implements trace.Supplier: the records the view can still
// deterministically produce. Views over the unbounded synthetic
// generators report an effectively infinite supply; views over a
// bounded source (trace replay) report the recording's remainder, so
// the simulator's up-front window check rejects undersized recordings
// in batched runs exactly as it does standalone.
func (v *StreamView) Supply() int64 {
	if v.cs.supply < 0 {
		return math.MaxInt64
	}
	if left := v.cs.supply - v.pos; left > 0 {
		return left
	}
	return 0
}

var (
	_ trace.Reader   = (*StreamView)(nil)
	_ trace.Supplier = (*StreamView)(nil)
)
