package workload

import "fmt"

// Catalog returns the seven server workloads of the paper's Table I as
// synthetic-workload parameter sets. The knobs are calibrated (see
// EXPERIMENTS.md) so that the *relative* behaviour matches the paper:
//
//   - OLTP workloads have the largest instruction working sets and the
//     deepest stacks; OLTP Oracle is the largest (the paper reports SHIFT's
//     largest win over PIF_2K there).
//   - DSS queries run long loop-heavy scans: fewer request types, smaller
//     per-request instruction footprints, lower I-MPKI.
//   - Media streaming has a moderate footprint and regular request loops.
//   - Web frontend (SPECweb99/Apache) has a large footprint, many handler
//     types, and the highest trap/context-switch activity (the paper's
//     worst case for SHIFT LLC traffic).
//   - Web search has the smallest footprint of the suite.
func Catalog() []Params {
	return []Params{
		{
			Name: "OLTP DB2", Seed: 101,
			FootprintBytes:   2304 * 1024,
			OSFootprintBytes: 96 * 1024,
			RequestTypes:     12, RequestZipf: 0.6,
			FuncBlocksMean: 5, CallDepth: 7, CallSiteDensity: 0.32,
			VaryProb: 0.045, SkipProb: 0.25, CoreBias: 0.05,
			TrapRate: 0.0035, SchedProb: 0.25,
			LoopWeight: 0.42,
		},
		{
			Name: "OLTP Oracle", Seed: 102,
			FootprintBytes:   3328 * 1024,
			OSFootprintBytes: 128 * 1024,
			RequestTypes:     16, RequestZipf: 0.5,
			FuncBlocksMean: 5, CallDepth: 8, CallSiteDensity: 0.34,
			VaryProb: 0.05, SkipProb: 0.25, CoreBias: 0.06,
			TrapRate: 0.004, SchedProb: 0.3,
			LoopWeight: 0.44,
		},
		{
			Name: "DSS Qry 2", Seed: 103,
			FootprintBytes:   1152 * 1024,
			OSFootprintBytes: 64 * 1024,
			RequestTypes:     4, RequestZipf: 0.3,
			FuncBlocksMean: 6, CallDepth: 6, CallSiteDensity: 0.26,
			VaryProb: 0.03, SkipProb: 0.20, CoreBias: 0.035,
			TrapRate: 0.002, SchedProb: 0.12,
			LoopWeight: 0.52,
		},
		{
			Name: "DSS Qry 17", Seed: 104,
			FootprintBytes:   1408 * 1024,
			OSFootprintBytes: 64 * 1024,
			RequestTypes:     5, RequestZipf: 0.3,
			FuncBlocksMean: 6, CallDepth: 6, CallSiteDensity: 0.28,
			VaryProb: 0.035, SkipProb: 0.20, CoreBias: 0.035,
			TrapRate: 0.002, SchedProb: 0.12,
			LoopWeight: 0.50,
		},
		{
			Name: "Media Streaming", Seed: 105,
			FootprintBytes:   1024 * 1024,
			OSFootprintBytes: 96 * 1024,
			RequestTypes:     6, RequestZipf: 0.4,
			FuncBlocksMean: 5, CallDepth: 6, CallSiteDensity: 0.3,
			VaryProb: 0.04, SkipProb: 0.22, CoreBias: 0.04,
			TrapRate: 0.005, SchedProb: 0.35,
			LoopWeight: 0.46,
		},
		{
			Name: "Web Frontend", Seed: 106,
			FootprintBytes:   2176 * 1024,
			OSFootprintBytes: 128 * 1024,
			RequestTypes:     10, RequestZipf: 0.5,
			FuncBlocksMean: 5, CallDepth: 7, CallSiteDensity: 0.34,
			VaryProb: 0.055, SkipProb: 0.28, CoreBias: 0.05,
			TrapRate: 0.006, SchedProb: 0.45,
			LoopWeight: 0.40,
		},
		{
			Name: "Web Search", Seed: 107,
			FootprintBytes:   832 * 1024,
			OSFootprintBytes: 64 * 1024,
			RequestTypes:     8, RequestZipf: 0.6,
			FuncBlocksMean: 5, CallDepth: 6, CallSiteDensity: 0.28,
			VaryProb: 0.04, SkipProb: 0.22, CoreBias: 0.04,
			TrapRate: 0.003, SchedProb: 0.2,
			LoopWeight: 0.50,
		},
	}
}

// Names returns the workload names in catalog order.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, p := range cat {
		names[i] = p.Name
	}
	return names
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Params, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Scaled returns a copy of p with the footprint and request-type count
// scaled by f (useful for fast unit tests and sensitivity sweeps).
func Scaled(p Params, f float64) Params {
	q := p
	q.FootprintBytes = int(float64(p.FootprintBytes) * f)
	if q.FootprintBytes < 16*64 {
		q.FootprintBytes = 16 * 64
	}
	q.OSFootprintBytes = int(float64(p.OSFootprintBytes) * f)
	if q.OSFootprintBytes < 4*64 {
		q.OSFootprintBytes = 4 * 64
	}
	rt := int(float64(p.RequestTypes) * f)
	if rt < 1 {
		rt = 1
	}
	q.RequestTypes = rt
	return q
}
