package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"shift/internal/trace"
)

func smallParams() Params {
	return Params{
		Name: "test", Seed: 1,
		FootprintBytes:   64 * 1024,
		OSFootprintBytes: 8 * 1024,
		RequestTypes:     4, RequestZipf: 0.5,
		FuncBlocksMean: 5, CallDepth: 5, CallSiteDensity: 0.3,
		VaryProb: 0.05, SkipProb: 0.05,
		TrapRate: 0.003, SchedProb: 0.2,
		LoopWeight: 0.1,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := smallParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"empty name", func(p *Params) { p.Name = "" }},
		{"tiny footprint", func(p *Params) { p.FootprintBytes = 10 }},
		{"tiny OS", func(p *Params) { p.OSFootprintBytes = 10 }},
		{"no request types", func(p *Params) { p.RequestTypes = 0 }},
		{"zero func size", func(p *Params) { p.FuncBlocksMean = 0 }},
		{"zero depth", func(p *Params) { p.CallDepth = 0 }},
		{"bad density", func(p *Params) { p.CallSiteDensity = 1.5 }},
		{"bad vary", func(p *Params) { p.VaryProb = -0.1 }},
		{"bad skip", func(p *Params) { p.SkipProb = 2 }},
		{"bad trap", func(p *Params) { p.TrapRate = -1 }},
		{"bad sched", func(p *Params) { p.SchedProb = 1.1 }},
		{"bad loop", func(p *Params) { p.LoopWeight = -0.5 }},
		{"bad zipf", func(p *Params) { p.RequestZipf = -1 }},
	}
	for _, m := range mutations {
		p := smallParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestNewBuildsProgram(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if w.NumFunctions() < 10 {
		t.Errorf("too few functions: %d", w.NumFunctions())
	}
	wantApp := smallParams().FootprintBytes / trace.BlockBytes
	if got := w.AppBlocks(); got != wantApp {
		t.Errorf("AppBlocks = %d, want %d", got, wantApp)
	}
	wantOS := smallParams().OSFootprintBytes / trace.BlockBytes
	if got := w.OSBlocks(); got != wantOS {
		t.Errorf("OSBlocks = %d, want %d", got, wantOS)
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	p := smallParams()
	p.RequestTypes = 0
	if _, err := New(p); err == nil {
		t.Error("invalid params accepted")
	}
	// Footprint too small for the request-type count.
	p = smallParams()
	p.FootprintBytes = 16 * trace.BlockBytes
	p.RequestTypes = 100
	if _, err := New(p); err == nil {
		t.Error("footprint/request-type mismatch accepted")
	}
}

func TestReaderEmitsValidRecords(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewCoreReader(0)
	for i := 0; i < 50000; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v (%+v)", i, err, rec)
		}
	}
	if r.Records() != 50000 {
		t.Errorf("Records = %d", r.Records())
	}
}

func TestReaderDeterministic(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	a := w.NewCoreReader(3)
	b := w.NewCoreReader(3)
	for i := 0; i < 10000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestReaderCoresDiffer(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	a := w.NewCoreReader(0)
	b := w.NewCoreReader(1)
	same := 0
	const n = 10000
	for i := 0; i < n; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra.Block == rb.Block {
			same++
		}
	}
	if same > n/2 {
		t.Errorf("cores 0 and 1 identical on %d/%d records; should be independent interleavings", same, n)
	}
}

func TestReaderAddressesInRegions(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	appLo, appHi := AppBaseBlock, AppBaseBlock+trace.BlockAddr(w.AppBlocks())
	osLo, osHi := OSBaseBlock, OSBaseBlock+trace.BlockAddr(w.OSBlocks())
	r := w.NewCoreReader(0)
	osSeen := false
	for i := 0; i < 100000; i++ {
		rec, _ := r.Next()
		inApp := rec.Block >= appLo && rec.Block < appHi
		inOS := rec.Block >= osLo && rec.Block < osHi
		if !inApp && !inOS {
			t.Fatalf("record %d outside both regions: %v", i, rec.Block)
		}
		if inOS {
			osSeen = true
		}
	}
	if !osSeen {
		t.Error("no OS code observed in 100k records despite TrapRate/SchedProb > 0")
	}
}

func TestReaderKindMix(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.Measure(trace.Limit(w.NewCoreReader(0), 200000), 0)
	if err != nil {
		t.Fatal(err)
	}
	// All kinds should occur.
	for k := trace.KindSeq; k <= trace.KindTrap; k++ {
		if st.KindCounts[k] == 0 {
			t.Errorf("kind %v never occurred", k)
		}
	}
	// Sequential fraction should be substantial but not dominant
	// (the next-line coverage band of server workloads).
	if f := st.SeqFraction(); f < 0.2 || f > 0.75 {
		t.Errorf("SeqFraction = %v outside [0.2, 0.75]", f)
	}
}

func TestReaderTouchesMostOfFootprint(t *testing.T) {
	p := smallParams()
	p.TrapRate = 0
	p.SchedProb = 0
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.Measure(trace.Limit(w.NewCoreReader(0), 400000), 0)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(st.UniqueBlocks) / float64(w.AppBlocks())
	if frac < 0.5 {
		t.Errorf("only %.0f%% of footprint touched in 400k records", frac*100)
	}
}

func TestCallDepthBounded(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewCoreReader(0)
	maxDepth := 0
	for i := 0; i < 100000; i++ {
		r.Next()
		if d := len(r.stack); d > maxDepth {
			maxDepth = d
		}
	}
	// CallDepth app frames + at most a few OS frames.
	limit := smallParams().CallDepth + 8
	if maxDepth > limit {
		t.Errorf("stack depth reached %d, want <= %d", maxDepth, limit)
	}
}

func TestStackNeverNegative(t *testing.T) {
	f := func(seed int64) bool {
		p := smallParams()
		p.Seed = seed % 1000
		w, err := New(p)
		if err != nil {
			return false
		}
		r := w.NewCoreReader(int(seed % 7))
		for i := 0; i < 5000; i++ {
			if _, err := r.Next(); err != nil {
				return false
			}
			if len(r.stack) < 0 || r.osDepth < 0 || r.osDepth > len(r.stack) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d workloads, want 7 (Table I)", len(cat))
	}
	want := []string{"OLTP DB2", "OLTP Oracle", "DSS Qry 2", "DSS Qry 17",
		"Media Streaming", "Web Frontend", "Web Search"}
	for i, p := range cat {
		if p.Name != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, p.Name, want[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("catalog[%d] invalid: %v", i, err)
		}
		if _, err := New(Scaled(p, 0.05)); err != nil {
			t.Errorf("catalog[%d] scaled build failed: %v", i, err)
		}
	}
	if !strings.Contains(strings.Join(Names(), ","), "OLTP Oracle") {
		t.Error("Names missing OLTP Oracle")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Web Search")
	if err != nil || p.Name != "Web Search" {
		t.Errorf("ByName(Web Search) = %+v, %v", p.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestScaledFloors(t *testing.T) {
	p := smallParams()
	q := Scaled(p, 0.0001)
	if q.FootprintBytes < 16*64 || q.OSFootprintBytes < 4*64 || q.RequestTypes < 1 {
		t.Errorf("Scaled did not floor: %+v", q)
	}
}

func TestOLTPBiggerThanSearch(t *testing.T) {
	oracle, _ := ByName("OLTP Oracle")
	search, _ := ByName("Web Search")
	if oracle.FootprintBytes <= search.FootprintBytes {
		t.Error("OLTP Oracle should have the larger instruction footprint")
	}
}
