package workload

import (
	"fmt"

	"shift/internal/trace"
)

// Source is a factory of per-core instruction streams — the abstraction
// that lets the simulator consume streams that are not a single
// synthetic Workload: phase sequences that switch parameter sets on a
// record schedule (Phased) and replays of externally recorded traces
// (Replay).
//
// A Source must be deterministic and safe for concurrent use: every
// NewCoreReader(core) call returns a fresh reader positioned at the
// start of core's stream, and two readers for the same core always
// produce identical record sequences. The batched execution path
// (sim.RunBatch) relies on this to fan one generated stream out to many
// consumers and still match standalone runs bit for bit, and the
// experiment engine relies on it to re-run a cell from a memoized
// source at any time.
type Source interface {
	// NewCoreReader returns a new reader over core's stream, starting
	// from the first record.
	NewCoreReader(core int) (trace.Reader, error)
}

// AsSource adapts the workload's own per-core generators to the Source
// interface (the method set differs: Workload.NewCoreReader returns the
// concrete *CoreReader the simulator's hot path devirtualizes).
func (w *Workload) AsSource() Source { return generatedSource{w} }

// generatedSource wraps a Workload as a Source.
type generatedSource struct{ w *Workload }

// NewCoreReader implements Source.
func (g generatedSource) NewCoreReader(core int) (trace.Reader, error) {
	return g.w.NewCoreReader(core), nil
}

// Replay is a Source serving pre-recorded traces: core i replays
// recording i%len(recordings), and its stream ends when the recording
// does. Replay readers implement trace.Supplier, so a recording shorter
// than a simulation's warmup+measure window is rejected up front with a
// typed *sim.StreamShortError instead of silently truncating the run.
type Replay struct {
	traces [][]trace.Record
}

// NewReplay builds a replay source over the given recordings. The
// record slices are shared, not copied; callers must not mutate them
// afterwards.
func NewReplay(traces [][]trace.Record) (*Replay, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("workload: replay source with no recordings")
	}
	for i, t := range traces {
		if len(t) == 0 {
			return nil, fmt.Errorf("workload: replay recording %d is empty", i)
		}
	}
	return &Replay{traces: traces}, nil
}

// NewCoreReader implements Source.
func (r *Replay) NewCoreReader(core int) (trace.Reader, error) {
	if core < 0 {
		return nil, fmt.Errorf("workload: replay core %d < 0", core)
	}
	return trace.NewSliceReader(r.traces[core%len(r.traces)]), nil
}

// Recordings returns the number of distinct per-core recordings.
func (r *Replay) Recordings() int { return len(r.traces) }

// MinSupply returns the length of the shortest recording — the largest
// warmup+measure window a simulation over this source can run.
func (r *Replay) MinSupply() int64 {
	min := int64(len(r.traces[0]))
	for _, t := range r.traces[1:] {
		if n := int64(len(t)); n < min {
			min = n
		}
	}
	return min
}
