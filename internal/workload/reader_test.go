package workload

import (
	"testing"

	"shift/internal/trace"
)

// TestSegmentsFixedPerType verifies that a request type's segment
// sequence is identical across cores — the basis of cross-core stream
// commonality.
func TestSegmentsFixedPerType(t *testing.T) {
	w, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.segments) != smallParams().RequestTypes {
		t.Fatalf("segments = %d, want %d", len(w.segments), smallParams().RequestTypes)
	}
	for rt, seg := range w.segments {
		if len(seg) < 6 || len(seg) > 8 {
			t.Errorf("type %d has %d segments, want 6-8", rt, len(seg))
		}
		for _, fi := range seg {
			if fi < 2 || fi >= len(w.funcs) {
				t.Errorf("type %d segment %d out of range", rt, fi)
			}
		}
	}
}

// TestStaticSkipsAreStable verifies the always-taken branches are a
// property of the program, not of the execution: two traversals of the
// same function must take identical skips.
func TestStaticSkipsAreStable(t *testing.T) {
	p := smallParams()
	p.SkipProb = 0.3
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	skips := 0
	for fi := range w.funcs {
		for b, m := range w.funcs[fi].meta {
			if m.skip == 0 {
				continue
			}
			skips++
			if m.skip < 2 || m.skip > 3 {
				t.Errorf("func %d pos %d: skip %d out of [2,3]", fi, b, m.skip)
			}
			if b+int(m.skip) >= w.funcs[fi].blocks {
				t.Errorf("func %d pos %d: skip %d exits the function", fi, b, m.skip)
			}
			if m.site != -1 {
				t.Errorf("func %d pos %d: both call site and skip", fi, b)
			}
		}
	}
	if skips == 0 {
		t.Error("no static skips with SkipProb=0.3")
	}
}

// TestCoreBiasDeterministicPerCore verifies that a biased call site
// always resolves the same way for a given core, and differently across
// at least some cores.
func TestCoreBiasDeterministicPerCore(t *testing.T) {
	p := smallParams()
	p.CoreBias = 1.0 // every call site biased
	p.VaryProb = 0
	p.TrapRate = 0
	p.SchedProb = 0
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Two fresh readers for the same core must agree exactly.
	a, b := w.NewCoreReader(2), w.NewCoreReader(2)
	for i := 0; i < 20000; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra.Block != rb.Block {
			t.Fatalf("same core diverged at record %d", i)
		}
	}
}

// TestTrapNeverNests verifies OS handlers do not take traps themselves.
func TestTrapNeverNests(t *testing.T) {
	p := smallParams()
	p.TrapRate = 0.2 // aggressive
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r := w.NewCoreReader(0)
	inOS := false
	for i := 0; i < 50000; i++ {
		rec, _ := r.Next()
		isOS := rec.Block >= OSBaseBlock
		if isOS && rec.Kind == trace.KindTrap && inOS {
			t.Fatal("trap taken inside a trap handler")
		}
		inOS = isOS
	}
}

// TestSkipRaisesDiscontinuity verifies the SkipProb knob moves the
// sequential fraction in the right direction.
func TestSkipRaisesDiscontinuity(t *testing.T) {
	seqFrac := func(skip float64) float64 {
		p := smallParams()
		p.SkipProb = skip
		w, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.Measure(trace.Limit(w.NewCoreReader(0), 100000), 0)
		if err != nil {
			t.Fatal(err)
		}
		return st.SeqFraction()
	}
	low, high := seqFrac(0.0), seqFrac(0.35)
	if high >= low {
		t.Errorf("SkipProb 0.35 seq fraction %.3f >= SkipProb 0 %.3f", high, low)
	}
}

// TestLoopWeightRaisesInstrs verifies the LoopWeight knob raises
// instructions per block visit (the MPKI calibration lever).
func TestLoopWeightRaisesInstrs(t *testing.T) {
	ipv := func(lw float64) float64 {
		p := smallParams()
		p.LoopWeight = lw
		w, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.Measure(trace.Limit(w.NewCoreReader(0), 50000), 0)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.Instructions) / float64(st.Records)
	}
	if ipv(0.6) <= ipv(0.0)*1.3 {
		t.Error("LoopWeight 0.6 did not clearly raise instructions per visit")
	}
}

// TestRequestZipfSkewsMix verifies the Zipf knob concentrates the request
// mix: under skew, the hot request type's segment functions are visited
// far more often than the coldest type's.
func TestRequestZipfSkewsMix(t *testing.T) {
	p := smallParams()
	p.RequestZipf = 1.2
	p.TrapRate = 0
	p.SchedProb = 0
	w, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	hot := w.funcs[w.segments[0][0]]
	cold := w.funcs[w.segments[p.RequestTypes-1][0]]
	r := w.NewCoreReader(0)
	hotVisits, coldVisits := 0, 0
	for i := 0; i < 200000; i++ {
		rec, _ := r.Next()
		if rec.Block == hot.entry {
			hotVisits++
		}
		if rec.Block == cold.entry {
			coldVisits++
		}
	}
	// The entries may be shared across types via calls, so only require a
	// clear asymmetry, not an exact ratio.
	if hotVisits <= coldVisits {
		t.Errorf("hot type entry visited %d <= cold %d under Zipf skew", hotVisits, coldVisits)
	}
}
