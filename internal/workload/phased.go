package workload

import (
	"fmt"

	"shift/internal/trace"
)

// Phase is one element of a phase-sequenced workload: run Params for
// Records records per core, then hand over to the next phase.
type Phase struct {
	// Params is the workload generating this phase's stream.
	Params Params
	// Records is the phase length in records per core (>= 1).
	Records int64
}

// Phased is a Source that cycles through a sequence of workload phases,
// modelling time-varying instruction footprints (a batch window cutting
// into an OLTP day, a cache-warming burst before steady state, ...).
//
// Each phase keeps a persistent executor per core: when the sequence
// wraps around, a phase's stream resumes exactly where it left off
// rather than restarting, so revisited phases re-touch their footprint
// the way a real recurring workload does. The interleaved stream is a
// pure function of the phase sequence and the per-phase seeds —
// deterministic per core, independent of when or how often readers are
// created.
type Phased struct {
	phases []Phase
	ws     []*Workload
}

// NewPhased builds the phased source, building (or reusing, via the
// process-wide graph cache) every phase's static program up front.
func NewPhased(phases []Phase) (*Phased, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: phased source with no phases")
	}
	p := &Phased{phases: append([]Phase(nil), phases...), ws: make([]*Workload, len(phases))}
	for i, ph := range phases {
		if ph.Records < 1 {
			return nil, fmt.Errorf("workload: phase %d: Records %d < 1", i, ph.Records)
		}
		w, err := Cached(ph.Params)
		if err != nil {
			return nil, fmt.Errorf("workload: phase %d: %w", i, err)
		}
		p.ws[i] = w
	}
	return p, nil
}

// Phases returns a copy of the phase sequence.
func (p *Phased) Phases() []Phase { return append([]Phase(nil), p.phases...) }

// NewCoreReader implements Source.
func (p *Phased) NewCoreReader(core int) (trace.Reader, error) {
	rs := make([]*CoreReader, len(p.ws))
	for i, w := range p.ws {
		rs[i] = w.NewCoreReader(core)
	}
	return &phasedReader{src: p, readers: rs, left: p.phases[0].Records}, nil
}

// phasedReader interleaves the persistent per-phase executors of one
// core on the phase schedule. Like CoreReader it never returns io.EOF:
// the sequence cycles and every phase's stream is unbounded.
type phasedReader struct {
	src     *Phased
	readers []*CoreReader
	idx     int
	left    int64
}

// Next implements trace.Reader; the error is always nil.
func (r *phasedReader) Next() (trace.Record, error) {
	if r.left == 0 {
		r.idx++
		if r.idx == len(r.readers) {
			r.idx = 0
		}
		r.left = r.src.phases[r.idx].Records
	}
	r.left--
	return r.readers[r.idx].Next()
}

var (
	_ Source = (*Phased)(nil)
	_ Source = (*Replay)(nil)
	_ Source = generatedSource{}
)
