package workload

import (
	"shift/internal/trace"
)

// frame is one call-stack entry of the core's executor.
type frame struct {
	fi  int32 // function index; OS functions are encoded as ^index
	pos int32 // next block offset within the function
}

// CoreReader generates the retire-order instruction fetch stream of one
// core executing the workload. It implements trace.Reader and never returns
// io.EOF: callers bound it with trace.Limit or a record budget.
//
// The executor is an explicit stack machine: each Next() call decides how
// the current block visit terminates (sequential, call, return, branch,
// trap) and emits exactly one record.
type CoreReader struct {
	w      *Workload
	coreID int
	rng    *trace.RNG
	zipf   *trace.Zipf

	stack []frame
	// pendingSegs are the remaining segment entry functions of the
	// current request; the next one starts when the stack drains.
	pendingSegs []int
	// osDepth counts OS frames on the stack, so traps never nest.
	osDepth int
	// records counts emitted records.
	records int64
}

// NewCoreReader returns the instruction stream of core `core`. Streams for
// different cores are independent interleavings of the same request types.
func (w *Workload) NewCoreReader(core int) *CoreReader {
	rng := trace.NewRNG(w.params.Seed*1000003 + int64(core)*7919 + 17)
	r := &CoreReader{w: w, coreID: core, rng: rng}
	if w.params.RequestZipf > 0 && w.params.RequestTypes > 1 {
		r.zipf = trace.NewZipf(rng, w.params.RequestTypes, w.params.RequestZipf)
	}
	return r
}

// Records returns the number of records generated so far.
func (r *CoreReader) Records() int64 { return r.records }

func (r *CoreReader) fn(fi int32) *function {
	if fi < 0 {
		return &r.w.osFuncs[^fi]
	}
	return &r.w.funcs[fi]
}

func (r *CoreReader) push(fi int32) {
	r.stack = append(r.stack, frame{fi: fi})
	if fi < 0 {
		r.osDepth++
	}
}

func (r *CoreReader) pop() {
	top := r.stack[len(r.stack)-1]
	if top.fi < 0 {
		r.osDepth--
	}
	r.stack = r.stack[:len(r.stack)-1]
}

// pushOSSeq pushes a fixed sequence of OS functions so they execute in
// order (last pushed runs first, so push in reverse).
func (r *CoreReader) pushOSSeq(seq []int) {
	for i := len(seq) - 1; i >= 0; i-- {
		r.push(int32(^seq[i]))
	}
}

// startRequest selects the next request from the mix and primes the
// executor: (optionally) the scheduler path, then the dispatch functions,
// then the request's segment sequence one entry at a time.
func (r *CoreReader) startRequest() {
	p := &r.w.params
	rt := 0
	if r.zipf != nil {
		rt = r.zipf.Next()
	} else if p.RequestTypes > 1 {
		rt = r.rng.Intn(p.RequestTypes)
	}
	r.pendingSegs = r.w.segments[rt]
	for i := len(r.w.dispatch) - 1; i >= 0; i-- {
		r.push(int32(r.w.dispatch[i]))
	}
	if r.rng.Bool(p.SchedProb) {
		r.pushOSSeq(r.w.schedSeq)
	}
}

// refill tops up the stack: the next pending segment of the current
// request, or a fresh request when the segment list is drained.
func (r *CoreReader) refill() {
	for len(r.stack) == 0 {
		if len(r.pendingSegs) > 0 {
			r.push(int32(r.pendingSegs[0]))
			r.pendingSegs = r.pendingSegs[1:]
			return
		}
		r.startRequest()
	}
}

// appDepth returns the number of application frames on the stack.
func (r *CoreReader) appDepth() int { return len(r.stack) - r.osDepth }

// Next implements trace.Reader. It never returns an error.
func (r *CoreReader) Next() (trace.Record, error) {
	if len(r.stack) == 0 {
		r.refill()
	}
	p := &r.w.params // by pointer: Params is too fat to copy per record
	top := &r.stack[len(r.stack)-1]
	f := r.fn(top.fi)
	blk := f.entry + trace.BlockAddr(top.pos)
	inOS := top.fi < 0

	// Decide how this visit terminates. Precedence: trap interrupts
	// anything (but never nests); then call sites; then skip branches;
	// then end-of-function return; else sequential fall-through.
	// The static block metadata is consulted once per visit.
	siteIdx, skip := int16(-1), int8(0)
	if int(top.pos) < len(f.meta) {
		m := f.meta[top.pos]
		siteIdx, skip = m.site, m.skip
	}
	var kind trace.Kind
	switch {
	case r.osDepth == 0 && r.rng.Bool(p.TrapRate):
		kind = trace.KindTrap
		top.pos++ // resume at the next block after the handler returns
		if top.pos >= int32(f.blocks) {
			// The interrupted frame was on its last block: let it finish
			// by popping after the handler. Push handler first, then the
			// pop happens naturally when this frame is re-entered and
			// pos >= blocks: guard in the re-entry path below.
		}
		h := r.w.handlers[r.rng.Intn(len(r.w.handlers))]
		r.pushOSSeq(h)
	case !inOS && siteIdx >= 0 && r.appDepth() < p.CallDepth:
		site := r.w.sites[siteIdx]
		callee := site.callee
		if site.biased {
			// Stable per-core preference: the same core always takes the
			// same alternate here, but different cores take different
			// ones (cross-core control-flow divergence).
			callee = site.alts[(r.coreID+int(siteIdx))%len(site.alts)]
		} else if r.rng.Bool(p.VaryProb) {
			callee = site.alts[r.rng.Intn(len(site.alts))]
		}
		kind = trace.KindCall
		top.pos++
		r.push(int32(callee))
	case !inOS && skip > 0:
		kind = trace.KindBranch
		top.pos += int32(skip) // static always-taken branch
	case top.pos >= int32(f.blocks)-1:
		kind = trace.KindReturn
		r.pop()
	default:
		kind = trace.KindSeq
		top.pos++
	}

	// Clean up any frames that were left positioned past their end by a
	// trap or skip: they return immediately on re-entry. (Handled lazily
	// here so a single Next() emits exactly one record.)
	r.trimDeadFrames()

	rec := trace.Record{Block: blk, Instrs: r.instrs(kind), Kind: kind}
	r.records++
	return rec, nil
}

// trimDeadFrames pops frames whose position ran past the function end
// without emitting their return record; the *previous* record already
// carried the control transfer (branch past end / trap on last block), so
// these frames have nothing left to execute.
func (r *CoreReader) trimDeadFrames() {
	for len(r.stack) > 0 {
		top := &r.stack[len(r.stack)-1]
		if top.pos < int32(r.fn(top.fi).blocks) {
			return
		}
		r.pop()
	}
}

// instrs models the number of instructions retired during a block visit.
// A 64-byte block holds 16 4-byte instructions; a visit cut short by a
// control transfer retires fewer, while loop-heavy code (high LoopWeight)
// re-executes within the block and retires more.
func (r *CoreReader) instrs(kind trace.Kind) uint16 {
	base := 0
	switch kind {
	case trace.KindSeq:
		base = 16
	default:
		base = 4 + r.rng.Intn(12) // cut short at a uniform point
	}
	if lw := r.w.params.LoopWeight; lw > 0 && r.rng.Bool(lw) {
		base += 8 + r.rng.Intn(40) // loop iterations resident in the block
	}
	if base > 0xFFFF {
		base = 0xFFFF
	}
	return uint16(base)
}

var _ trace.Reader = (*CoreReader)(nil)
