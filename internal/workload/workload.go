// Package workload synthesizes retire-order instruction fetch traces with
// the statistical structure of the server workloads evaluated in the SHIFT
// paper (Table I): multi-megabyte instruction working sets spread over deep
// software stacks, highly recurring request-level control flow with small
// per-request variations, and low-rate OS interference (traps, scheduler
// invocations, context switches).
//
// The paper used full-system traces of commercial applications (TPC-C on
// DB2/Oracle, TPC-H, Darwin streaming, SPECweb99, Nutch) on Solaris. Those
// traces are proprietary; this package is the substitution documented in
// DESIGN.md. It reproduces the properties the prefetchers exploit:
//
//   - a static code layout of functions made of contiguous basic blocks,
//     connected by a layered call graph with hot shared callees;
//   - request types whose canonical paths recur exactly, so temporal
//     streams repeat across requests and across cores;
//   - stochastic control-flow variation (alternate callees, skipped
//     blocks) that fragments streams at a controlled rate;
//   - OS trap handlers injected at a controlled rate;
//   - a shared dispatch loop executed between requests.
//
// Every core running the same Workload observes the same program and the
// same request types but an independent interleaving, which is exactly the
// cross-core commonality SHIFT exploits (paper Section 3).
package workload

import (
	"errors"
	"fmt"

	"shift/internal/trace"
)

// Code-region bases (block addresses). Application and OS code live in
// disjoint regions of the 40-bit physical space, far apart so spatial
// regions never straddle them.
const (
	// AppBaseBlock is the first application code block (byte 0x1_0000_0000).
	AppBaseBlock trace.BlockAddr = 0x4000000
	// OSBaseBlock is the first OS/trap-handler code block (byte 0x2_0000_0000).
	OSBaseBlock trace.BlockAddr = 0x8000000
)

// Params describes one synthetic workload. The seven presets in Catalog()
// model the Table I applications; custom workloads may be built directly.
type Params struct {
	// Name identifies the workload in reports ("OLTP DB2", ...).
	Name string
	// Seed determines the static code layout and, combined with a core
	// index, each core's dynamic stream.
	Seed int64

	// FootprintBytes is the application instruction working set size.
	FootprintBytes int
	// OSFootprintBytes is the OS/trap-handler code size.
	OSFootprintBytes int

	// RequestTypes is the number of distinct request classes (transaction
	// types, query plans, URL handlers, ...).
	RequestTypes int
	// RequestZipf skews the request mix toward low-numbered types
	// (0 = uniform).
	RequestZipf float64

	// FuncBlocksMean is the mean function size in 64-byte blocks.
	FuncBlocksMean int
	// CallDepth bounds the call stack depth below the request root.
	CallDepth int
	// CallSiteDensity is the probability that a given block position
	// within a function hosts a call site.
	CallSiteDensity float64

	// VaryProb is the probability that a call site diverts to an alternate
	// callee (per-request control-flow variation, paper Section 1:
	// "small, yet numerous differences in the control flow").
	VaryProb float64
	// SkipProb is the probability that a block position hosts a *static*
	// always-taken forward branch skipping 1-2 blocks. These are fixed at
	// program build time, modelling the taken branches and cold basic
	// blocks (error paths) that break sequential runs in real server code
	// without fragmenting temporal streams: the same path recurs exactly
	// on every traversal.
	SkipProb float64
	// CoreBias is the fraction of call sites whose callee choice is a
	// stable per-core preference rather than the canonical callee. Such
	// sites model persistent cross-core control-flow differences
	// (core-local state, scheduling affinity): a core's *own* history
	// predicts them perfectly, but a history recorded by another core
	// systematically mispredicts them. This is what separates PIF's 92%
	// miss coverage from SHIFT's 81% in the paper while cross-core
	// stream commonality stays above 90%.
	CoreBias float64
	// TrapRate is the per-block-visit probability of an OS trap
	// (TLB miss handler, interrupt).
	TrapRate float64
	// SchedProb is the probability that the OS scheduler path runs
	// between two requests (context switch).
	SchedProb float64

	// LoopWeight in [0,1] biases per-visit retired-instruction counts
	// upward, modelling loop-heavy computation (DSS scans) which lowers
	// the workload's I-MPKI without changing its block stream.
	LoopWeight float64
}

// Validate reports the first problem with p, or nil.
func (p Params) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("workload: empty Name")
	case p.FootprintBytes < 16*trace.BlockBytes:
		return fmt.Errorf("workload %s: FootprintBytes %d too small", p.Name, p.FootprintBytes)
	case p.OSFootprintBytes < 4*trace.BlockBytes:
		return fmt.Errorf("workload %s: OSFootprintBytes %d too small", p.Name, p.OSFootprintBytes)
	case p.RequestTypes < 1:
		return fmt.Errorf("workload %s: RequestTypes %d < 1", p.Name, p.RequestTypes)
	case p.FuncBlocksMean < 1:
		return fmt.Errorf("workload %s: FuncBlocksMean %d < 1", p.Name, p.FuncBlocksMean)
	case p.CallDepth < 1:
		return fmt.Errorf("workload %s: CallDepth %d < 1", p.Name, p.CallDepth)
	case p.CallSiteDensity < 0 || p.CallSiteDensity > 1:
		return fmt.Errorf("workload %s: CallSiteDensity %v out of [0,1]", p.Name, p.CallSiteDensity)
	case p.VaryProb < 0 || p.VaryProb > 1:
		return fmt.Errorf("workload %s: VaryProb %v out of [0,1]", p.Name, p.VaryProb)
	case p.SkipProb < 0 || p.SkipProb > 1:
		return fmt.Errorf("workload %s: SkipProb %v out of [0,1]", p.Name, p.SkipProb)
	case p.CoreBias < 0 || p.CoreBias > 1:
		return fmt.Errorf("workload %s: CoreBias %v out of [0,1]", p.Name, p.CoreBias)
	case p.TrapRate < 0 || p.TrapRate > 1:
		return fmt.Errorf("workload %s: TrapRate %v out of [0,1]", p.Name, p.TrapRate)
	case p.SchedProb < 0 || p.SchedProb > 1:
		return fmt.Errorf("workload %s: SchedProb %v out of [0,1]", p.Name, p.SchedProb)
	case p.LoopWeight < 0 || p.LoopWeight > 1:
		return fmt.Errorf("workload %s: LoopWeight %v out of [0,1]", p.Name, p.LoopWeight)
	case p.RequestZipf < 0:
		return fmt.Errorf("workload %s: RequestZipf %v < 0", p.Name, p.RequestZipf)
	}
	return nil
}

// callSite is a static call site: position pos within a function calls
// callee; under variation it calls one of alts instead. A biased site
// always calls the alt selected by the executing core's identity.
type callSite struct {
	callee int
	alts   [2]int
	biased bool
}

// blockMeta is the per-block static control-flow metadata of a function,
// packed so the reader's per-record lookups of the call site and branch
// skip touch one array (and usually one cache line) instead of two.
type blockMeta struct {
	// site is the index into w.sites of the call site at this block,
	// or -1.
	site int16
	// skip is the position advance of a static always-taken forward
	// branch (0 = fall through; >=2 skips blocks).
	skip int8
}

// function is a contiguous run of blocks with call sites and static taken
// branches at fixed positions.
type function struct {
	entry  trace.BlockAddr
	blocks int
	// meta maps block offset -> static metadata. Lookups are on the hot
	// path, so it is a dense slice with sentinels packed at build time.
	meta []blockMeta
}

// Workload is an immutable synthetic program plus its parameters. It is
// safe for concurrent use; per-core readers carry all mutable state.
type Workload struct {
	params Params

	funcs []function
	sites []callSite

	// osFuncs are trap-handler functions in the OS region; handlers[i]
	// is the function sequence run by trap handler i.
	osFuncs  []function
	handlers [][]int
	// schedSeq is the OS scheduler path run between requests.
	schedSeq []int

	// dispatch are the request-dispatch functions run before each request.
	dispatch []int

	// segments[rt] is the fixed sequence of entry functions a request of
	// type rt executes (its "phases": parse, plan, execute, commit, ...).
	// Each entry is executed with its full call subtree. Fixing the
	// sequence per type makes request paths long, spread across the
	// footprint, and exactly recurring — the temporal-stream structure
	// the paper's prefetchers exploit.
	segments [][]int
}

// New builds the static program for p.
func New(p Params) (*Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := &Workload{params: p}
	rng := trace.NewRNG(p.Seed)

	appBlocks := p.FootprintBytes / trace.BlockBytes
	w.buildAppCode(rng, appBlocks)
	if len(w.funcs) < p.RequestTypes+4 {
		return nil, fmt.Errorf("workload %s: footprint too small for %d request types (%d functions)",
			p.Name, p.RequestTypes, len(w.funcs))
	}
	w.buildOSCode(rng, p.OSFootprintBytes/trace.BlockBytes)
	w.wireCallGraph(rng)
	return w, nil
}

// Params returns the workload's parameters.
func (w *Workload) Params() Params { return w.params }

// NumFunctions returns the number of application functions.
func (w *Workload) NumFunctions() int { return len(w.funcs) }

// AppBlocks returns the number of application code blocks.
func (w *Workload) AppBlocks() int {
	n := 0
	for _, f := range w.funcs {
		n += f.blocks
	}
	return n
}

// OSBlocks returns the number of OS code blocks.
func (w *Workload) OSBlocks() int {
	n := 0
	for _, f := range w.osFuncs {
		n += f.blocks
	}
	return n
}

// buildAppCode lays out application functions contiguously from
// AppBaseBlock until the footprint is consumed.
func (w *Workload) buildAppCode(rng *trace.RNG, appBlocks int) {
	next := AppBaseBlock
	remaining := appBlocks
	mean := w.params.FuncBlocksMean
	for remaining > 0 {
		size := 1 + rng.Intn(2*mean-1) // uniform on [1, 2*mean-1], mean = FuncBlocksMean
		if size > remaining {
			size = remaining
		}
		w.funcs = append(w.funcs, function{entry: next, blocks: size})
		next += trace.BlockAddr(size)
		remaining -= size
	}
}

// buildOSCode lays out trap handlers and the scheduler path in the OS
// region. Handlers are short (1-3 functions); the scheduler is longer.
func (w *Workload) buildOSCode(rng *trace.RNG, osBlocks int) {
	next := OSBaseBlock
	remaining := osBlocks
	for remaining > 0 {
		size := 1 + rng.Intn(5) // OS handler helpers are small
		if size > remaining {
			size = remaining
		}
		w.osFuncs = append(w.osFuncs, function{entry: next, blocks: size})
		next += trace.BlockAddr(size)
		remaining -= size
	}
	nos := len(w.osFuncs)
	// A few distinct trap handlers, each a fixed short sequence of OS funcs.
	handlerCount := 4
	if handlerCount > nos {
		handlerCount = nos
	}
	for h := 0; h < handlerCount; h++ {
		seqLen := 1 + rng.Intn(3)
		seq := make([]int, 0, seqLen)
		for i := 0; i < seqLen; i++ {
			seq = append(seq, rng.Intn(nos))
		}
		w.handlers = append(w.handlers, seq)
	}
	// Scheduler path: a longer fixed sequence.
	schedLen := 3 + rng.Intn(4)
	for i := 0; i < schedLen; i++ {
		w.schedSeq = append(w.schedSeq, rng.Intn(nos))
	}
}

// wireCallGraph assigns request roots, dispatch functions, and call sites.
//
// The call graph is layered: a function may only call functions with a
// strictly greater index, bounding recursion structurally. Callee choice is
// Zipf-skewed toward the region immediately following the caller, with a
// bias toward the top third of the index space, which models hot shared
// library/OS-interface code reused by all request types.
func (w *Workload) wireCallGraph(rng *trace.RNG) {
	n := len(w.funcs)
	p := w.params

	// Dispatch: two fixed functions run before every request.
	w.dispatch = []int{0, 1}

	// Request segments: each request type executes a fixed sequence of
	// 6-8 entry functions spread uniformly across the code footprint.
	segBase := 2
	w.segments = make([][]int, p.RequestTypes)
	for rt := range w.segments {
		segLen := 6 + rng.Intn(3)
		seg := make([]int, segLen)
		for i := range seg {
			seg[i] = segBase + rng.Intn(n-segBase)
		}
		w.segments[rt] = seg
	}

	pickCallee := func(caller int) int {
		lo := caller + 1
		if lo >= n {
			return -1
		}
		span := n - lo
		// 60%: near the caller (forward locality within the same layer);
		// 40%: anywhere forward, Zipf toward hot shared tail functions.
		if rng.Bool(0.6) {
			reach := span
			if reach > 64 {
				reach = 64
			}
			return lo + rng.Intn(reach)
		}
		// Hot shared code: map a Zipf-ish draw onto the upper region.
		off := rng.Intn(span)
		if rng.Bool(0.5) {
			off = span - 1 - off/4 // compress toward the top of the space
		}
		return lo + off
	}

	for fi := range w.funcs {
		f := &w.funcs[fi]
		f.meta = make([]blockMeta, f.blocks)
		for b := 0; b < f.blocks; b++ {
			f.meta[b].site = -1
			// Static taken branch: skip 1-2 blocks (advance 2-3), only
			// when the target stays inside the function.
			if b < f.blocks-3 && rng.Bool(p.SkipProb) {
				f.meta[b].skip = int8(2 + rng.Intn(2))
				continue // a taken branch ends the block; no call here
			}
			if !rng.Bool(p.CallSiteDensity) {
				continue
			}
			callee := pickCallee(fi)
			if callee < 0 {
				continue
			}
			cs := callSite{callee: callee, biased: rng.Bool(p.CoreBias)}
			for a := range cs.alts {
				alt := pickCallee(fi)
				if alt < 0 {
					alt = callee
				}
				cs.alts[a] = alt
			}
			if len(w.sites) >= 1<<15-1 {
				continue // site table full; extremely large footprints only
			}
			w.sites = append(w.sites, cs)
			f.meta[b].site = int16(len(w.sites) - 1)
		}
	}
}
