// Package spec implements declarative workload specifications: small
// YAML or JSON documents that compile into the simulator's native
// workload forms (workload.Params, core groups, workload.Source). A
// spec composes the existing synthetic-workload primitives — catalog
// bases, parameter overrides, footprint scaling, phase sequences,
// multi-client mixes — and can replay externally recorded instruction
// traces through the trace codec.
//
// The contract mirrors the rest of the simulator:
//
//   - Validation is up front and field-named: every rejection is a
//     *validate.FieldError naming the offending field ("phases[2].records",
//     "workload.scale", ...), never a panic, so front ends (shiftsim,
//     shiftd's 400s) render precise errors.
//   - Compiled specs are deterministic per seed: the same document and
//     seed produce bit-identical record streams, in standalone and
//     batched runs alike.
//   - Identity is content-addressed: a compiled spec's ID embeds a hash
//     of its normalized form (and, for trace replay, the trace file
//     bytes), so spec-driven cells memoize, batch, and sample through
//     the existing Config.Key/StreamKey machinery with no special
//     cases.
//
// Parse accepts a document, Normalize resolves it to a fully-explicit
// fixed point (catalog bases and scaling folded into concrete fields),
// and Compile turns it into a registered, runnable form.
package spec

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"

	"shift/internal/validate"
	"shift/internal/workload"
)

// Spec-level bounds. These are deliberately stricter than
// workload.Params.Validate (which trusts programmatic callers): specs
// arrive from untrusted documents, and the bounds keep a validated spec
// cheap enough to build and run.
const (
	// maxNameLen bounds spec, client, and workload names.
	maxNameLen = 64
	// maxPhases bounds the phase sequence length.
	maxPhases = 64
	// maxPhaseRecords bounds one phase's per-core length.
	maxPhaseRecords = 1_000_000_000
	// maxClients bounds a mix; it cannot exceed the CMP size anyway.
	maxClients = 16
	// maxTracePaths bounds the per-core recordings of a replay spec.
	maxTracePaths = 16
	// maxPathLen bounds one trace path.
	maxPathLen = 4096
	// footprint bounds (bytes). The lower bounds match workload.Validate;
	// the upper bounds cap the block-graph build cost.
	minFootprint   = 16 * 64
	maxFootprint   = 64 << 20
	minOSFootprint = 4 * 64
	maxOSFootprint = 8 << 20
	// Remaining generator-knob caps.
	maxRequestTypes   = 4096
	maxRequestZipf    = 8
	maxFuncBlocksMean = 1024
	maxCallDepth      = 64
	// maxScale bounds the footprint-scaling factor.
	minScale = 0.01
	maxScale = 16
)

// Spec is the top-level workload specification. Exactly one of
// Workload, Phases, Mix, and Trace must be set; Name and Seed apply to
// whichever is.
type Spec struct {
	// Name is the display name: figure rows and results render it where
	// catalog runs render the catalog workload name. It also appears in
	// the compiled spec's ID.
	Name string `json:"name"`
	// Seed is the base RNG seed; 0 means 1. Per-workload seed overrides
	// take precedence.
	Seed int64 `json:"seed,omitempty"`
	// Workload is a single homogeneous workload on all cores.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Phases is a time-varying workload: each phase runs for its record
	// count per core, then the stream moves to the next, cycling.
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Mix consolidates the CMP: each client runs its own workload on its
	// own cores (the Section 4.3 / Figure 10 form). The client core
	// counts pin the spec to their total.
	Mix []ClientSpec `json:"mix,omitempty"`
	// Trace replays externally recorded instruction traces (the
	// trace codec's binary format) instead of generating records.
	Trace *TraceSpec `json:"trace,omitempty"`
}

// WorkloadSpec describes one synthetic workload as a catalog base (or
// the built-in neutral template), an optional footprint scale, and
// field overrides. Normalization folds base and scale into explicit
// fields; in normalized form Base and Scale are empty and every field
// is set.
type WorkloadSpec struct {
	// Base names a catalog workload to start from; empty starts from the
	// neutral template.
	Base string `json:"base,omitempty"`
	// Scale multiplies the footprints (workload.Scaled) before field
	// overrides apply; 0 means unscaled.
	Scale float64 `json:"scale,omitempty"`
	// Seed overrides the spec-level seed for this workload.
	Seed *int64 `json:"seed,omitempty"`

	// The remaining fields override the corresponding workload.Params
	// knobs; nil leaves the base (or template) value in place. See the
	// workload package for each knob's semantics.

	// FootprintBytes is the application instruction footprint.
	FootprintBytes *int `json:"footprint_bytes,omitempty"`
	// OSFootprintBytes is the OS/trap-handler instruction footprint.
	OSFootprintBytes *int `json:"os_footprint_bytes,omitempty"`
	// RequestTypes is the number of distinct request handlers.
	RequestTypes *int `json:"request_types,omitempty"`
	// RequestZipf skews request-type popularity (0 = uniform).
	RequestZipf *float64 `json:"request_zipf,omitempty"`
	// FuncBlocksMean is the mean function size in cache blocks.
	FuncBlocksMean *int `json:"func_blocks_mean,omitempty"`
	// CallDepth is the typical call-graph depth of a request.
	CallDepth *int `json:"call_depth,omitempty"`
	// CallSiteDensity is the fraction of blocks containing a call site.
	CallSiteDensity *float64 `json:"call_site_density,omitempty"`
	// VaryProb is the per-visit control-flow variation probability.
	VaryProb *float64 `json:"vary_prob,omitempty"`
	// SkipProb is the probability of skipping a callee entirely.
	SkipProb *float64 `json:"skip_prob,omitempty"`
	// CoreBias skews request dispatch toward a core's preferred types.
	CoreBias *float64 `json:"core_bias,omitempty"`
	// TrapRate is the per-record OS trap probability.
	TrapRate *float64 `json:"trap_rate,omitempty"`
	// SchedProb is the context-switch probability at trap boundaries.
	SchedProb *float64 `json:"sched_prob,omitempty"`
	// LoopWeight is the share of loop-heavy code in the footprint.
	LoopWeight *float64 `json:"loop_weight,omitempty"`
}

// PhaseSpec is one phase of a time-varying workload.
type PhaseSpec struct {
	// Workload is the phase's workload.
	Workload WorkloadSpec `json:"workload"`
	// Records is the phase's per-core length in trace records.
	Records int64 `json:"records"`
}

// ClientSpec is one client of a consolidated mix.
type ClientSpec struct {
	// Name labels the client; empty defaults to "client<i>" (1-based).
	Name string `json:"name,omitempty"`
	// Cores is the client's core count; the mix's total pins the
	// configuration's core count.
	Cores int `json:"cores"`
	// Workload is the client's workload.
	Workload WorkloadSpec `json:"workload"`
}

// TraceSpec replays recorded instruction traces. Exactly one of Path
// and Paths must be set; normalization folds Path into Paths. With
// fewer recordings than cores, core i replays recording i mod len.
type TraceSpec struct {
	// Path is a single recording replayed on every core.
	Path string `json:"path,omitempty"`
	// Paths are per-core recordings.
	Paths []string `json:"paths,omitempty"`
}

// Parse decodes a spec document. It accepts strict JSON (first
// significant byte '{') or the YAML subset documented in this package;
// unknown fields and type mismatches are rejected with field-named
// errors. Parse does not validate ranges — call Normalize (or Compile,
// which normalizes) next.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var jsonDoc []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		jsonDoc = trimmed
	} else {
		m, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		// The YAML layer produces exactly the JSON value shapes, so one
		// strict decoding path serves both input formats.
		jsonDoc, _ = json.Marshal(m)
	}
	dec := json.NewDecoder(bytes.NewReader(jsonDoc))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, jsonFieldError(err)
	}
	// Trailing garbage after the document object.
	if dec.More() {
		return nil, validate.Fieldf("json", "unexpected content after document")
	}
	return s, nil
}

// jsonFieldError converts encoding/json decode failures into
// field-named errors.
func jsonFieldError(err error) *validate.FieldError {
	if te, ok := err.(*json.UnmarshalTypeError); ok {
		field := te.Field
		if field == "" {
			field = "spec"
		}
		return validate.Fieldf(field, "expected %s, got %s", te.Type, te.Value)
	}
	msg := err.Error()
	if name, ok := strings.CutPrefix(msg, `json: unknown field `); ok {
		name = strings.Trim(name, `"`)
		if name == "" {
			return validate.Fieldf("json", "unknown field with empty name")
		}
		return validate.Fieldf(name, "unknown field")
	}
	return validate.Fieldf("json", "%s", msg)
}

// Normalize validates s and rewrites it into its fully-explicit
// canonical form: the default seed made explicit, catalog bases and
// scale factors folded into concrete workload fields, client names
// filled in, Path folded into Paths. Normalize is a fixed point —
// normalizing an already-normalized spec changes nothing — which makes
// the canonical JSON form (and therefore the compiled ID) stable under
// marshal/parse round trips.
func (s *Spec) Normalize() error {
	if err := checkName("name", s.Name); err != nil {
		return err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	n := 0
	for _, set := range []bool{s.Workload != nil, len(s.Phases) > 0, len(s.Mix) > 0, s.Trace != nil} {
		if set {
			n++
		}
	}
	if n != 1 {
		return validate.Fieldf("spec", "exactly one of workload, phases, mix, trace must be set, got %d", n)
	}
	switch {
	case s.Workload != nil:
		if _, err := resolveWorkload(s.Workload, s.Name, s.Seed, "workload"); err != nil {
			return err
		}
	case len(s.Phases) > 0:
		if len(s.Phases) > maxPhases {
			return validate.Fieldf("phases", "at most %d phases, got %d", maxPhases, len(s.Phases))
		}
		for i := range s.Phases {
			p := &s.Phases[i]
			field := fieldIndex("phases", i)
			if p.Records < 1 || p.Records > maxPhaseRecords {
				return validate.Fieldf(field+".records", "must be in [1,%d], got %d", int64(maxPhaseRecords), p.Records)
			}
			if _, err := resolveWorkload(&p.Workload, s.Name, s.Seed, field+".workload"); err != nil {
				return err
			}
		}
	case len(s.Mix) > 0:
		if len(s.Mix) > maxClients {
			return validate.Fieldf("mix", "at most %d clients, got %d", maxClients, len(s.Mix))
		}
		total := 0
		names := make(map[string]bool, len(s.Mix))
		for i := range s.Mix {
			c := &s.Mix[i]
			field := fieldIndex("mix", i)
			if c.Name == "" {
				c.Name = "client" + strconv.Itoa(i+1)
			}
			if err := checkName(field+".name", c.Name); err != nil {
				return err
			}
			if names[c.Name] {
				return validate.Fieldf(field+".name", "duplicate client name %q", c.Name)
			}
			names[c.Name] = true
			if c.Cores < 1 || c.Cores > maxClients {
				return validate.Fieldf(field+".cores", "must be in [1,%d], got %d", maxClients, c.Cores)
			}
			total += c.Cores
			if total > maxClients {
				return validate.Fieldf(field+".cores", "client core counts total more than %d", maxClients)
			}
			if _, err := resolveWorkload(&c.Workload, c.Name, s.Seed, field+".workload"); err != nil {
				return err
			}
		}
	default:
		t := s.Trace
		if t.Path != "" {
			if len(t.Paths) > 0 {
				return validate.Fieldf("trace.path", "path and paths are mutually exclusive")
			}
			t.Paths = []string{t.Path}
			t.Path = ""
		}
		if len(t.Paths) == 0 {
			return validate.Fieldf("trace.paths", "at least one recording path required")
		}
		if len(t.Paths) > maxTracePaths {
			return validate.Fieldf("trace.paths", "at most %d recordings, got %d", maxTracePaths, len(t.Paths))
		}
		for i, p := range t.Paths {
			field := fieldIndex("trace.paths", i)
			if p == "" {
				return validate.Fieldf(field, "empty path")
			}
			if len(p) > maxPathLen {
				return validate.Fieldf(field, "path longer than %d bytes", maxPathLen)
			}
			if strings.ContainsAny(p, "\x00\n\r") {
				return validate.Fieldf(field, "path contains control characters")
			}
		}
	}
	return nil
}

// checkName validates a display name: non-empty, bounded, printable,
// not padded with whitespace.
func checkName(field, name string) error {
	if name == "" {
		return validate.Fieldf(field, "required")
	}
	if len(name) > maxNameLen {
		return validate.Fieldf(field, "longer than %d bytes", maxNameLen)
	}
	if strings.TrimSpace(name) != name {
		return validate.Fieldf(field, "has leading or trailing whitespace")
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return validate.Fieldf(field, "contains control characters")
		}
	}
	return nil
}

// resolveWorkload folds ws's base, scale, and overrides into a concrete
// workload.Params (named name, seeded seed unless overridden),
// range-checks the result, and rewrites ws into its normalized
// fully-explicit form (every field set, Base and Scale cleared).
func resolveWorkload(ws *WorkloadSpec, name string, seed int64, field string) (workload.Params, error) {
	p := defaultTemplate()
	if ws.Base != "" {
		var err error
		p, err = workload.ByName(ws.Base)
		if err != nil {
			return p, validate.Fieldf(field+".base", "unknown catalog workload %q (valid: %s)",
				ws.Base, strings.Join(workload.Names(), ", "))
		}
	}
	if ws.Scale != 0 {
		if ws.Scale < minScale || ws.Scale > maxScale {
			return p, validate.Fieldf(field+".scale", "must be in [%g,%g], got %g", float64(minScale), float64(maxScale), ws.Scale)
		}
		p = workload.Scaled(p, ws.Scale)
	}
	p.Name = name
	p.Seed = seed
	if ws.Seed != nil {
		p.Seed = *ws.Seed
	}
	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setFloat := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setInt(&p.FootprintBytes, ws.FootprintBytes)
	setInt(&p.OSFootprintBytes, ws.OSFootprintBytes)
	setInt(&p.RequestTypes, ws.RequestTypes)
	setFloat(&p.RequestZipf, ws.RequestZipf)
	setInt(&p.FuncBlocksMean, ws.FuncBlocksMean)
	setInt(&p.CallDepth, ws.CallDepth)
	setFloat(&p.CallSiteDensity, ws.CallSiteDensity)
	setFloat(&p.VaryProb, ws.VaryProb)
	setFloat(&p.SkipProb, ws.SkipProb)
	setFloat(&p.CoreBias, ws.CoreBias)
	setFloat(&p.TrapRate, ws.TrapRate)
	setFloat(&p.SchedProb, ws.SchedProb)
	setFloat(&p.LoopWeight, ws.LoopWeight)

	if err := checkParams(p, field); err != nil {
		return p, err
	}

	// Rewrite ws to the fully-explicit normalized form. Re-resolving it
	// starts from the neutral template and overrides every field, so the
	// result — and therefore the canonical document — is a fixed point.
	*ws = WorkloadSpec{
		Seed:             ptr(p.Seed),
		FootprintBytes:   ptr(p.FootprintBytes),
		OSFootprintBytes: ptr(p.OSFootprintBytes),
		RequestTypes:     ptr(p.RequestTypes),
		RequestZipf:      ptr(p.RequestZipf),
		FuncBlocksMean:   ptr(p.FuncBlocksMean),
		CallDepth:        ptr(p.CallDepth),
		CallSiteDensity:  ptr(p.CallSiteDensity),
		VaryProb:         ptr(p.VaryProb),
		SkipProb:         ptr(p.SkipProb),
		CoreBias:         ptr(p.CoreBias),
		TrapRate:         ptr(p.TrapRate),
		SchedProb:        ptr(p.SchedProb),
		LoopWeight:       ptr(p.LoopWeight),
	}
	return p, nil
}

// checkParams applies the spec-level bounds to resolved parameters.
// The ranges guarantee that building the workload's block graph
// succeeds, so Compile-validated specs never fail lazily at run time.
func checkParams(p workload.Params, field string) error {
	type rng struct {
		name string
		got  float64
		lo   float64
		hi   float64
		isI  bool
	}
	checks := []rng{
		{"footprint_bytes", float64(p.FootprintBytes), minFootprint, maxFootprint, true},
		{"os_footprint_bytes", float64(p.OSFootprintBytes), minOSFootprint, maxOSFootprint, true},
		{"request_types", float64(p.RequestTypes), 1, maxRequestTypes, true},
		{"request_zipf", p.RequestZipf, 0, maxRequestZipf, false},
		{"func_blocks_mean", float64(p.FuncBlocksMean), 1, maxFuncBlocksMean, true},
		{"call_depth", float64(p.CallDepth), 1, maxCallDepth, true},
		{"call_site_density", p.CallSiteDensity, 0, 1, false},
		{"vary_prob", p.VaryProb, 0, 1, false},
		{"skip_prob", p.SkipProb, 0, 1, false},
		{"core_bias", p.CoreBias, 0, 1, false},
		{"trap_rate", p.TrapRate, 0, 1, false},
		{"sched_prob", p.SchedProb, 0, 1, false},
		{"loop_weight", p.LoopWeight, 0, 1, false},
	}
	for _, c := range checks {
		if c.got < c.lo || c.got > c.hi {
			if c.isI {
				return validate.Fieldf(field+"."+c.name, "must be in [%d,%d], got %d", int64(c.lo), int64(c.hi), int64(c.got))
			}
			return validate.Fieldf(field+"."+c.name, "must be in [%g,%g], got %g", c.lo, c.hi, c.got)
		}
	}
	// Worst-case function sizing (every function at the 2*mean-1 block
	// maximum) must still yield enough functions for the request types
	// plus the scheduler/trap entry points.
	appBlocks := p.FootprintBytes / 64
	if minFuncs := appBlocks / (2*p.FuncBlocksMean - 1); minFuncs < p.RequestTypes+4 {
		return validate.Fieldf(field+".request_types",
			"footprint %d bytes is too small for %d request types at func_blocks_mean %d",
			p.FootprintBytes, p.RequestTypes, p.FuncBlocksMean)
	}
	return nil
}

// defaultTemplate is the neutral base for specs without a catalog Base:
// a mid-sized server-like workload (1MB instruction footprint, moderate
// OS involvement). Every field can be overridden.
func defaultTemplate() workload.Params {
	return workload.Params{
		FootprintBytes:   1024 * 1024,
		OSFootprintBytes: 64 * 1024,
		RequestTypes:     8,
		RequestZipf:      0.5,
		FuncBlocksMean:   5,
		CallDepth:        6,
		CallSiteDensity:  0.30,
		VaryProb:         0.04,
		SkipProb:         0.22,
		CoreBias:         0.04,
		TrapRate:         0.003,
		SchedProb:        0.20,
		LoopWeight:       0.45,
	}
}

func ptr[T any](v T) *T { return &v }

// fieldIndex renders an indexed field path, e.g. "phases[2]".
func fieldIndex(base string, i int) string { return base + "[" + strconv.Itoa(i) + "]" }
