package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"sync"

	"shift/internal/trace"
	"shift/internal/validate"
	"shift/internal/workload"
)

// Replay-input bounds: a recording must fit comfortably in memory once
// decoded (records are held as a shared slice all cores replay from).
const (
	// maxTraceFileBytes caps one recording's encoded size.
	maxTraceFileBytes = 256 << 20
	// maxTraceRecords caps one recording's decoded length.
	maxTraceRecords = 16 << 20
)

// IDPrefix marks spec-compiled workload identifiers. A compiled spec's
// ID ("spec:<name>@<hash16>") is used wherever a catalog workload name
// is — Config.Workload, Config.Key, StreamKey — so spec-driven cells
// flow through memoization, batching, and sampling unchanged, while the
// embedded content hash keeps them distinct from catalog cells and from
// any other spec.
const IDPrefix = "spec:"

// IsID reports whether name identifies a compiled spec rather than a
// catalog workload.
func IsID(name string) bool {
	return len(name) > len(IDPrefix) && name[:len(IDPrefix)] == IDPrefix
}

// Opener opens a trace recording by path. Compile uses os.Open when nil;
// tests and fuzzing inject an Opener to keep compilation hermetic, and
// front ends use one to resolve paths relative to the spec document.
type Opener func(path string) (io.ReadCloser, error)

// Client is one compiled client of a mix spec.
type Client struct {
	// Name labels the client (group name in figure output).
	Name string
	// Cores is the client's core count.
	Cores int
	// Params is the client's resolved workload.
	Params workload.Params
}

// Compiled is a validated, normalized, content-addressed spec ready to
// run. Exactly one of the workload forms is populated: a single Params
// (homogeneous), clients (consolidated mix), phases, or a trace replay.
// The expensive phase-sequence build (block graphs for every phase) is
// deferred to the first Source call, and shared: every run of the same
// Compiled — batch members included — draws from one workload.Source
// instance, which is what lets the batch runner prove stream
// compatibility by identity.
type Compiled struct {
	spec      Spec
	id        string
	canonical []byte

	single  *workload.Params
	clients []Client
	phases  []workload.Phase
	replay  *workload.Replay

	srcOnce sync.Once
	src     workload.Source
	srcErr  error
}

// Load parses, normalizes, and compiles a spec document in one step.
func Load(data []byte, open Opener) (*Compiled, error) {
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return s.Compile(open)
}

// Compile validates and normalizes a copy of s (the receiver is left
// untouched), resolves every workload, loads and decodes trace
// recordings through open (os.Open when nil), and returns the compiled
// form. The ID is derived from the normalized document — plus, for
// replay specs, the recording bytes — so equal content compiles to
// equal IDs and any change to parameters or trace files changes the ID.
func (s *Spec) Compile(open Opener) (*Compiled, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, validate.Fieldf("spec", "encoding: %v", err)
	}
	c := &Compiled{}
	if err := json.Unmarshal(raw, &c.spec); err != nil {
		return nil, validate.Fieldf("spec", "encoding: %v", err)
	}
	if err := c.spec.Normalize(); err != nil {
		return nil, err
	}
	c.canonical, err = json.Marshal(&c.spec)
	if err != nil {
		return nil, validate.Fieldf("spec", "encoding: %v", err)
	}
	h := sha256.New()
	h.Write(c.canonical)

	ns := &c.spec
	switch {
	case ns.Workload != nil:
		p, err := resolveWorkload(ns.Workload, ns.Name, ns.Seed, "workload")
		if err != nil {
			return nil, err
		}
		c.single = &p
	case len(ns.Phases) > 0:
		c.phases = make([]workload.Phase, len(ns.Phases))
		for i := range ns.Phases {
			p, err := resolveWorkload(&ns.Phases[i].Workload, ns.Name, ns.Seed, fieldIndex("phases", i)+".workload")
			if err != nil {
				return nil, err
			}
			c.phases[i] = workload.Phase{Params: p, Records: ns.Phases[i].Records}
		}
	case len(ns.Mix) > 0:
		c.clients = make([]Client, len(ns.Mix))
		for i := range ns.Mix {
			cl := &ns.Mix[i]
			p, err := resolveWorkload(&cl.Workload, cl.Name, ns.Seed, fieldIndex("mix", i)+".workload")
			if err != nil {
				return nil, err
			}
			c.clients[i] = Client{Name: cl.Name, Cores: cl.Cores, Params: p}
		}
	default:
		recs, err := loadRecordings(ns.Trace.Paths, open, h)
		if err != nil {
			return nil, err
		}
		c.replay, err = workload.NewReplay(recs)
		if err != nil {
			return nil, validate.Fieldf("trace.paths", "%v", err)
		}
	}

	sum := h.Sum(nil)
	c.id = IDPrefix + ns.Name + "@" + hex.EncodeToString(sum)[:16]
	return c, nil
}

// loadRecordings reads and decodes each recording, folding the raw
// bytes (length-prefixed, so file boundaries are unambiguous) into the
// identity hash.
func loadRecordings(paths []string, open Opener, h io.Writer) ([][]trace.Record, error) {
	if open == nil {
		open = func(path string) (io.ReadCloser, error) { return os.Open(path) }
	}
	out := make([][]trace.Record, len(paths))
	for i, path := range paths {
		field := fieldIndex("trace.paths", i)
		f, err := open(path)
		if err != nil {
			return nil, validate.Fieldf(field, "open %s: %v", path, err)
		}
		data, err := io.ReadAll(io.LimitReader(f, maxTraceFileBytes+1))
		f.Close()
		if err != nil {
			return nil, validate.Fieldf(field, "read %s: %v", path, err)
		}
		if len(data) > maxTraceFileBytes {
			return nil, validate.Fieldf(field, "%s is larger than %d bytes", path, int64(maxTraceFileBytes))
		}
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(data)))
		h.Write(n[:])
		h.Write(data)

		dec, err := trace.NewDecoder(bytes.NewReader(data))
		if err != nil {
			return nil, validate.Fieldf(field, "%s: %v", path, err)
		}
		var recs []trace.Record
		for {
			rec, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, validate.Fieldf(field, "%s: record %d: %v", path, len(recs), err)
			}
			if len(recs) >= maxTraceRecords {
				return nil, validate.Fieldf(field, "%s holds more than %d records", path, int64(maxTraceRecords))
			}
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			return nil, validate.Fieldf(field, "%s holds no records", path)
		}
		out[i] = recs
	}
	return out, nil
}

// ID returns the content-addressed identifier, "spec:<name>@<hash16>".
func (c *Compiled) ID() string { return c.id }

// Name returns the spec's display name — what figure rows and results
// render where catalog runs render the workload name.
func (c *Compiled) Name() string { return c.spec.Name }

// Canonical returns a copy of the normalized canonical JSON document —
// the hash input, and the form a client can store to reproduce the run.
func (c *Compiled) Canonical() []byte { return append([]byte(nil), c.canonical...) }

// Single returns the resolved workload of a single-workload spec.
func (c *Compiled) Single() (workload.Params, bool) {
	if c.single == nil {
		return workload.Params{}, false
	}
	return *c.single, true
}

// Clients returns the compiled clients of a mix spec.
func (c *Compiled) Clients() ([]Client, bool) {
	if len(c.clients) == 0 {
		return nil, false
	}
	return append([]Client(nil), c.clients...), true
}

// Phases returns the compiled phases of a phase-sequenced spec.
func (c *Compiled) Phases() ([]workload.Phase, bool) {
	if len(c.phases) == 0 {
		return nil, false
	}
	return append([]workload.Phase(nil), c.phases...), true
}

// PinnedCores returns the core count a mix spec pins the configuration
// to (the sum of client core counts), or 0 when the spec runs on any
// core count.
func (c *Compiled) PinnedCores() int {
	n := 0
	for _, cl := range c.clients {
		n += cl.Cores
	}
	return n
}

// Source returns the workload.Source of a phase-sequenced or replay
// spec (nil, nil for single and mix specs, which compile to Params and
// groups instead). The phase build is lazy and happens once: all
// callers — every batch member included — share the returned instance,
// which the batch runner's stream-compatibility check relies on.
func (c *Compiled) Source() (workload.Source, error) {
	c.srcOnce.Do(func() {
		switch {
		case c.replay != nil:
			c.src = c.replay
		case len(c.phases) > 0:
			c.src, c.srcErr = workload.NewPhased(c.phases)
		}
	})
	return c.src, c.srcErr
}

// registry resolves compiled-spec IDs process-wide, so a Config whose
// Workload field carries a spec ID can be executed by any layer (engine
// cells, batch members, figure drivers) exactly like a catalog name.
var registry sync.Map // id -> *Compiled

// Register publishes c and returns the canonical instance for its ID:
// the first registration wins, so concurrent compilations of identical
// content converge on one instance (and therefore one shared Source).
func Register(c *Compiled) *Compiled {
	actual, _ := registry.LoadOrStore(c.id, c)
	return actual.(*Compiled)
}

// Lookup resolves a registered spec ID.
func Lookup(id string) (*Compiled, bool) {
	v, ok := registry.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*Compiled), true
}
