package spec

import (
	"fmt"
	"strconv"
	"strings"

	"shift/internal/validate"
)

// This file is a small YAML-subset parser, written in-tree because the
// module deliberately has no third-party dependencies. It covers the
// fragment workload specs need — block mappings and sequences nested by
// indentation, single-line flow collections ([a, b], {k: v}), double-
// and single-quoted strings, numbers, booleans, null, and '#' comments —
// and rejects everything else with a line-numbered *validate.FieldError
// (field "yaml"). Anchors, aliases, tags, multi-document streams,
// multi-line scalars, and tab indentation are out of scope.
//
// The parser produces the same map[string]any / []any / scalar shapes
// encoding/json produces, so spec decoding funnels YAML and JSON inputs
// through one strict JSON pass (see Parse in spec.go).

// maxYAMLDepth bounds block and flow nesting so hostile inputs (fuzzing)
// cannot drive the recursive parser into stack exhaustion.
const maxYAMLDepth = 64

// yline is one significant source line: 1-based number, indentation in
// spaces, and content with comments stripped.
type yline struct {
	n      int
	indent int
	text   string
}

// yamlErr builds the parser's uniform error shape.
func yamlErr(line int, format string, args ...any) *validate.FieldError {
	return validate.Fieldf("yaml", "line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseYAML parses a YAML-subset document into JSON-shaped values. The
// document must be a mapping at the top level (a workload spec).
func parseYAML(data []byte) (map[string]any, *validate.FieldError) {
	lines, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, yamlErr(1, "empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseNode(0, 0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, yamlErr(l.n, "unexpected content %q after document", l.text)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, yamlErr(lines[0].n, "top-level value must be a mapping")
	}
	return m, nil
}

// splitLines strips comments and blank lines and measures indentation.
func splitLines(s string) ([]yline, *validate.FieldError) {
	var out []yline
	for i, raw := range strings.Split(s, "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, yamlErr(i+1, "tab indentation is not allowed")
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" || text == "---" {
			continue
		}
		out = append(out, yline{n: i + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing '# ...' comment that is outside
// quotes and either starts the text or follows whitespace.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ') {
				return strings.TrimRight(s[:i], " ")
			}
		}
	}
	return s
}

// yamlParser walks the significant lines recursively by indentation.
type yamlParser struct {
	lines []yline
	pos   int
}

// parseNode parses the block node starting at the current line, which
// must be indented by at least minIndent.
func (p *yamlParser) parseNode(minIndent, depth int) (any, *validate.FieldError) {
	if depth > maxYAMLDepth {
		return nil, yamlErr(p.lines[p.pos].n, "nesting deeper than %d levels", maxYAMLDepth)
	}
	first := p.lines[p.pos]
	if first.indent < minIndent {
		return nil, yamlErr(first.n, "expected a nested block indented by at least %d spaces", minIndent)
	}
	block := first.indent
	if isSeqItem(first.text) {
		return p.parseSequence(block, depth)
	}
	if keyOf(first.text) != "" {
		return p.parseMapping(block, depth)
	}
	// A bare scalar line (only valid as a rewritten sequence item).
	p.pos++
	return parseFlowValue(first.text, first.n)
}

// isSeqItem reports whether a line starts a block-sequence entry.
func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// keyOf returns the raw key of a "key: value" line, or "" when the line
// is not a mapping entry. The separating colon must be outside quotes
// and followed by a space or end the line.
func keyOf(text string) string {
	inS, inD := false, false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case ':':
			if inS || inD {
				continue
			}
			if i+1 == len(text) || text[i+1] == ' ' {
				if i == 0 {
					return ""
				}
				return text[:i]
			}
		}
	}
	return ""
}

// parseSequence parses consecutive "- ..." lines at the block indent.
func (p *yamlParser) parseSequence(block, depth int) (any, *validate.FieldError) {
	out := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != block || !isSeqItem(l.text) {
			if l.indent > block {
				return nil, yamlErr(l.n, "unexpected indentation inside sequence")
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the nested block on following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= block {
				out = append(out, nil)
				continue
			}
			v, err := p.parseNode(block+1, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		// "- x": rewrite the line as the item's first line, indented past
		// the dash, so scalars, inline mappings ("- key: v"), and their
		// continuation lines all parse through the one node path.
		p.lines[p.pos] = yline{n: l.n, indent: block + 2, text: rest}
		v, err := p.parseNode(block+1, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseMapping parses consecutive "key: value" lines at the block indent.
func (p *yamlParser) parseMapping(block, depth int) (any, *validate.FieldError) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != block {
			if l.indent > block {
				return nil, yamlErr(l.n, "unexpected indentation")
			}
			break
		}
		rawKey := keyOf(l.text)
		if rawKey == "" {
			return nil, yamlErr(l.n, "expected \"key: value\", got %q", l.text)
		}
		key, err := unquoteKey(rawKey, l.n)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, yamlErr(l.n, "duplicate key %q", key)
		}
		rest := strings.TrimLeft(l.text[len(rawKey)+1:], " ")
		if rest == "" {
			// Value is the nested block on following, deeper lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= block {
				out[key] = nil
				continue
			}
			v, err := p.parseNode(block+1, depth+1)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		v, err := parseFlowValue(rest, l.n)
		if err != nil {
			return nil, err
		}
		out[key] = v
		p.pos++
	}
	return out, nil
}

// unquoteKey resolves a possibly-quoted mapping key.
func unquoteKey(s string, line int) (string, *validate.FieldError) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", yamlErr(line, "empty mapping key")
	}
	if s[0] == '"' || s[0] == '\'' {
		v, err := parseFlowValue(s, line)
		if err != nil {
			return "", err
		}
		str, ok := v.(string)
		if !ok {
			return "", yamlErr(line, "invalid quoted key %q", s)
		}
		return str, nil
	}
	return s, nil
}

// parseFlowValue parses a single-line value: a flow collection, a
// quoted string, or a plain scalar.
func parseFlowValue(s string, line int) (any, *validate.FieldError) {
	fs := &flowScanner{s: s, line: line}
	v, err := fs.value(0)
	if err != nil {
		return nil, err
	}
	fs.skipSpaces()
	if fs.i != len(fs.s) {
		return nil, yamlErr(line, "unexpected trailing content %q", fs.s[fs.i:])
	}
	return v, nil
}

// flowScanner is a recursive-descent scanner over one line's value.
type flowScanner struct {
	s    string
	i    int
	line int
}

func (f *flowScanner) skipSpaces() {
	for f.i < len(f.s) && f.s[f.i] == ' ' {
		f.i++
	}
}

// value parses the next value: flow sequence, flow mapping, quoted
// string, or plain scalar (terminated by the enclosing flow context).
func (f *flowScanner) value(depth int) (any, *validate.FieldError) {
	if depth > maxYAMLDepth {
		return nil, yamlErr(f.line, "flow nesting deeper than %d levels", maxYAMLDepth)
	}
	f.skipSpaces()
	if f.i >= len(f.s) {
		return nil, yamlErr(f.line, "missing value")
	}
	switch f.s[f.i] {
	case '[':
		return f.flowSeq(depth)
	case '{':
		return f.flowMap(depth)
	case '"':
		return f.doubleQuoted()
	case '\'':
		return f.singleQuoted()
	}
	return f.plainScalar(depth > 0)
}

// flowSeq parses "[a, b, ...]".
func (f *flowScanner) flowSeq(depth int) (any, *validate.FieldError) {
	f.i++ // consume '['
	out := []any{}
	f.skipSpaces()
	if f.i < len(f.s) && f.s[f.i] == ']' {
		f.i++
		return out, nil
	}
	for {
		v, err := f.value(depth + 1)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		f.skipSpaces()
		if f.i >= len(f.s) {
			return nil, yamlErr(f.line, "unterminated flow sequence")
		}
		switch f.s[f.i] {
		case ',':
			f.i++
		case ']':
			f.i++
			return out, nil
		default:
			return nil, yamlErr(f.line, "expected ',' or ']' in flow sequence, got %q", f.s[f.i:])
		}
	}
}

// flowMap parses "{k: v, ...}".
func (f *flowScanner) flowMap(depth int) (any, *validate.FieldError) {
	f.i++ // consume '{'
	out := map[string]any{}
	f.skipSpaces()
	if f.i < len(f.s) && f.s[f.i] == '}' {
		f.i++
		return out, nil
	}
	for {
		kv, err := f.value(depth + 1)
		if err != nil {
			return nil, err
		}
		key, ok := kv.(string)
		if !ok {
			key = fmt.Sprint(kv)
		}
		f.skipSpaces()
		if f.i >= len(f.s) || f.s[f.i] != ':' {
			return nil, yamlErr(f.line, "expected ':' after flow mapping key %q", key)
		}
		f.i++
		v, err := f.value(depth + 1)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, yamlErr(f.line, "duplicate key %q", key)
		}
		out[key] = v
		f.skipSpaces()
		if f.i >= len(f.s) {
			return nil, yamlErr(f.line, "unterminated flow mapping")
		}
		switch f.s[f.i] {
		case ',':
			f.i++
		case '}':
			f.i++
			return out, nil
		default:
			return nil, yamlErr(f.line, "expected ',' or '}' in flow mapping, got %q", f.s[f.i:])
		}
	}
}

// doubleQuoted parses a '"'-delimited string with JSON-style escapes.
func (f *flowScanner) doubleQuoted() (any, *validate.FieldError) {
	start := f.i
	for j := f.i + 1; j < len(f.s); j++ {
		switch f.s[j] {
		case '\\':
			j++
		case '"':
			v, err := strconv.Unquote(f.s[start : j+1])
			if err != nil {
				return nil, yamlErr(f.line, "invalid double-quoted string %s", f.s[start:j+1])
			}
			f.i = j + 1
			return v, nil
		}
	}
	return nil, yamlErr(f.line, "unterminated double-quoted string")
}

// singleQuoted parses a "'"-delimited string; a doubled quote escapes
// a quote.
func (f *flowScanner) singleQuoted() (any, *validate.FieldError) {
	var b strings.Builder
	j := f.i + 1
	for j < len(f.s) {
		if f.s[j] == '\'' {
			if j+1 < len(f.s) && f.s[j+1] == '\'' {
				b.WriteByte('\'')
				j += 2
				continue
			}
			f.i = j + 1
			return b.String(), nil
		}
		b.WriteByte(f.s[j])
		j++
	}
	return nil, yamlErr(f.line, "unterminated single-quoted string")
}

// plainScalar parses an unquoted scalar. Inside a flow collection it
// ends at the first structural character; at top level it runs to the
// end of the line.
func (f *flowScanner) plainScalar(inFlow bool) (any, *validate.FieldError) {
	j := f.i
	for j < len(f.s) {
		c := f.s[j]
		if inFlow && (c == ',' || c == ']' || c == '}' || c == ':') {
			break
		}
		j++
	}
	raw := strings.TrimSpace(f.s[f.i:j])
	f.i = j
	if raw == "" {
		return nil, yamlErr(f.line, "missing value")
	}
	return scalarValue(raw), nil
}

// scalarValue resolves an unquoted scalar to its JSON-shaped type.
func scalarValue(s string) any {
	switch s {
	case "true", "True":
		return true
	case "false", "False":
		return false
	case "null", "~", "Null":
		return nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if x, err := strconv.ParseFloat(s, 64); err == nil {
		return x
	}
	return s
}
