package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"shift/internal/trace"
	"shift/internal/validate"
	"shift/internal/workload"
)

// mustLoad compiles a document or fails the test.
func mustLoad(t *testing.T, doc string, open Opener) *Compiled {
	t.Helper()
	c, err := Load([]byte(doc), open)
	if err != nil {
		t.Fatalf("Load:\n%s\nerror: %v", doc, err)
	}
	return c
}

// fieldOf extracts the FieldError field name or fails.
func fieldOf(t *testing.T, err error) string {
	t.Helper()
	var fe *validate.FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v (%T) is not a *validate.FieldError", err, err)
	}
	return fe.Field
}

func TestParseYAMLAndJSONAgree(t *testing.T) {
	yamlDoc := `
# comment
name: tiny
seed: 3
workload:
  base: Web Search
  scale: 0.5
  request_zipf: 0.7   # trailing comment
`
	jsonDoc := `{"name": "tiny", "seed": 3,
		"workload": {"base": "Web Search", "scale": 0.5, "request_zipf": 0.7}}`
	cy := mustLoad(t, yamlDoc, nil)
	cj := mustLoad(t, jsonDoc, nil)
	if cy.ID() != cj.ID() {
		t.Errorf("YAML and JSON forms compile to different IDs: %s vs %s", cy.ID(), cj.ID())
	}
	if !bytes.Equal(cy.Canonical(), cj.Canonical()) {
		t.Errorf("canonical forms differ:\n%s\n%s", cy.Canonical(), cj.Canonical())
	}
}

func TestParseYAMLFlowAndBlockAgree(t *testing.T) {
	block := `
name: mix
mix:
  - name: a
    cores: 2
    workload:
      base: OLTP DB2
  - name: b
    cores: 2
    workload:
      base: Web Search
`
	flow := `
name: mix
mix: [{name: a, cores: 2, workload: {base: "OLTP DB2"}}, {name: b, cores: 2, workload: {base: 'Web Search'}}]
`
	cb := mustLoad(t, block, nil)
	cf := mustLoad(t, flow, nil)
	if cb.ID() != cf.ID() {
		t.Errorf("block and flow forms compile to different IDs: %s vs %s", cb.ID(), cf.ID())
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name  string
		doc   string
		field string
	}{
		{"tab indent", "name: x\nworkload:\n\tbase: y\n", "yaml"},
		{"duplicate key", "name: x\nname: y\nworkload: {}\n", "yaml"},
		{"unclosed flow", "name: x\nmix: [{cores: 2}\n", "yaml"},
		{"non-mapping root", "- a\n- b\n", "yaml"},
		{"unknown field", "name: x\nworkloads: {}\n", "workloads"},
		{"unknown nested field", `{"name": "x", "workload": {"bass": "y"}}`, "bass"},
		{"type mismatch", `{"name": "x", "seed": "soon"}`, "seed"},
		{"trailing garbage", `{"name": "x", "workload": {}} {"again": 1}`, "json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.doc)
			}
			if got := fieldOf(t, err); got != tc.field {
				t.Errorf("field = %q (%v), want %q", got, err, tc.field)
			}
		})
	}
}

// TestNormalizeRejections enumerates the spec layer's validation
// rejections and the field each one names.
func TestNormalizeRejections(t *testing.T) {
	cases := []struct {
		name  string
		doc   string
		field string
	}{
		{"missing name", "workload: {}\n", "name"},
		{"long name", "name: " + strings.Repeat("n", 65) + "\nworkload: {}\n", "name"},
		{"padded name", `{"name": " x", "workload": {}}`, "name"},
		{"control name", `{"name": "a\u0001b", "workload": {}}`, "name"},
		{"no form", "name: x\n", "spec"},
		{"two forms", "name: x\nworkload: {}\ntrace: {path: t}\n", "spec"},
		{"bad base", "name: x\nworkload: {base: nope}\n", "workload.base"},
		{"bad scale", "name: x\nworkload: {scale: 17}\n", "workload.scale"},
		{"footprint low", "name: x\nworkload: {footprint_bytes: 512}\n", "workload.footprint_bytes"},
		{"footprint high", "name: x\nworkload: {footprint_bytes: 134217728}\n", "workload.footprint_bytes"},
		{"os footprint", "name: x\nworkload: {os_footprint_bytes: 128}\n", "workload.os_footprint_bytes"},
		{"request types", "name: x\nworkload: {request_types: 0}\n", "workload.request_types"},
		{"zipf", "name: x\nworkload: {request_zipf: 9}\n", "workload.request_zipf"},
		{"blocks mean", "name: x\nworkload: {func_blocks_mean: 2000}\n", "workload.func_blocks_mean"},
		{"call depth", "name: x\nworkload: {call_depth: 0}\n", "workload.call_depth"},
		{"density", "name: x\nworkload: {call_site_density: 1.5}\n", "workload.call_site_density"},
		{"vary", "name: x\nworkload: {vary_prob: -0.1}\n", "workload.vary_prob"},
		{"skip", "name: x\nworkload: {skip_prob: 2}\n", "workload.skip_prob"},
		{"bias", "name: x\nworkload: {core_bias: 2}\n", "workload.core_bias"},
		{"trap", "name: x\nworkload: {trap_rate: 2}\n", "workload.trap_rate"},
		{"sched", "name: x\nworkload: {sched_prob: 2}\n", "workload.sched_prob"},
		{"loop", "name: x\nworkload: {loop_weight: 2}\n", "workload.loop_weight"},
		{"too small for types", "name: x\nworkload: {footprint_bytes: 1024, request_types: 64}\n", "workload.request_types"},
		{"phase records", "name: x\nphases: [{records: 0, workload: {}}]\n", "phases[0].records"},
		{"phase workload", "name: x\nphases: [{records: 10, workload: {base: nope}}]\n", "phases[0].workload.base"},
		{"mix cores", "name: x\nmix: [{cores: 0, workload: {}}]\n", "mix[0].cores"},
		{"mix total", "name: x\nmix: [{cores: 9, workload: {}}, {cores: 9, workload: {}}]\n", "mix[1].cores"},
		{"mix dup name", "name: x\nmix: [{name: a, cores: 1, workload: {}}, {name: a, cores: 1, workload: {}}]\n", "mix[1].name"},
		{"trace both", "name: x\ntrace: {path: a, paths: [b]}\n", "trace.path"},
		{"trace empty", "name: x\ntrace: {}\n", "trace.paths"},
		{"trace empty path", `{"name": "x", "trace": {"paths": [""]}}`, "trace.paths[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.doc))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			err = s.Normalize()
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.doc)
			}
			if got := fieldOf(t, err); got != tc.field {
				t.Errorf("field = %q (%v), want %q", got, err, tc.field)
			}
		})
	}
}

// TestNormalizeFixedPoint proves normalization is a fixed point: the
// canonical form re-parses, re-normalizes, and re-marshals to identical
// bytes, so the content hash is stable under round trips.
func TestNormalizeFixedPoint(t *testing.T) {
	docs := []string{
		"name: a\nworkload: {base: Web Search}\n",
		"name: b\nseed: 9\nphases: [{records: 100, workload: {scale: 0.5}}, {records: 200, workload: {base: OLTP DB2}}]\n",
		"name: c\nmix: [{cores: 3, workload: {}}, {cores: 5, workload: {base: DSS Qry 2, seed: 42}}]\n",
		`{"name": "d", "trace": {"path": "t.trace"}}`,
	}
	for _, doc := range docs {
		s, err := Parse([]byte(doc))
		if err != nil {
			t.Fatalf("Parse(%q): %v", doc, err)
		}
		if err := s.Normalize(); err != nil {
			t.Fatalf("Normalize(%q): %v", doc, err)
		}
		first, err := marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Parse(first)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", first, err)
		}
		if err := s2.Normalize(); err != nil {
			t.Fatalf("re-Normalize(%q): %v", first, err)
		}
		second, err := marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("not a fixed point:\n%s\n%s", first, second)
		}
	}
}

func marshal(s *Spec) ([]byte, error) { return json.Marshal(s) }

// tinyWorkload is a spec fragment cheap enough to build block graphs
// for in unit tests.
const tinyWorkload = "{footprint_bytes: 16384, os_footprint_bytes: 1024, request_types: 4}"

// TestSameSeedSameStream is the determinism property: two independent
// compilations of the same document generate bit-identical record
// streams, and a different seed generates a different stream.
func TestSameSeedSameStream(t *testing.T) {
	doc := "name: p\nseed: 5\nphases: [{records: 500, workload: " + tinyWorkload + "}, {records: 500, workload: {footprint_bytes: 32768, os_footprint_bytes: 1024, request_types: 4}}]\n"

	prefix := func(c *Compiled, core int) []trace.Record {
		t.Helper()
		src, err := c.Source()
		if err != nil {
			t.Fatal(err)
		}
		r, err := src.NewCoreReader(core)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := trace.Collect(trace.Limit(r, 1500), 1500)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	c1 := mustLoad(t, doc, nil)
	c2 := mustLoad(t, doc, nil)
	if c1.ID() != c2.ID() {
		t.Fatalf("same document, different IDs: %s vs %s", c1.ID(), c2.ID())
	}
	for core := 0; core < 2; core++ {
		a, b := prefix(c1, core), prefix(c2, core)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("core %d streams differ between identical compilations", core)
		}
		if !reflect.DeepEqual(a, prefix(c1, core)) {
			t.Fatalf("core %d stream differs between two readers of one compilation", core)
		}
	}

	c3 := mustLoad(t, strings.Replace(doc, "seed: 5", "seed: 6", 1), nil)
	if c3.ID() == c1.ID() {
		t.Error("different seed, same ID")
	}
	if reflect.DeepEqual(prefix(c1, 0), prefix(c3, 0)) {
		t.Error("different seed produced an identical stream prefix")
	}
}

// encodeTrace encodes records with the trace codec.
func encodeTrace(t *testing.T, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := trace.NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := enc.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mapOpener serves recordings from memory.
func mapOpener(files map[string][]byte) Opener {
	return func(path string) (io.ReadCloser, error) {
		data, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("no such recording %q", path)
		}
		return io.NopCloser(bytes.NewReader(data)), nil
	}
}

func testRecords(n int, salt uint64) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			Block:  trace.BlockAddr((uint64(i)*2654435761 + salt) & uint64(trace.MaxBlockAddr)),
			Instrs: uint16(1 + i%9),
			Kind:   trace.Kind(i % 5),
		}
	}
	return recs
}

// TestTraceReplayRoundTrip proves a replay spec serves exactly the
// encoded records (core i replays recording i mod len) and that the
// compiled ID is content-addressed over the trace bytes.
func TestTraceReplayRoundTrip(t *testing.T) {
	a, b := testRecords(100, 1), testRecords(120, 2)
	open := mapOpener(map[string][]byte{
		"a.trace": encodeTrace(t, a),
		"b.trace": encodeTrace(t, b),
	})
	doc := "name: r\ntrace: {paths: [a.trace, b.trace]}\n"
	c := mustLoad(t, doc, open)

	src, err := c.Source()
	if err != nil {
		t.Fatal(err)
	}
	for core, want := range [][]trace.Record{a, b, a, b} {
		r, err := src.NewCoreReader(core)
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Collect(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("core %d replayed %d records, want recording %d (%d records)", core, len(got), core%2, len(want))
		}
	}

	// Same document, different recording content: the ID must change.
	open2 := mapOpener(map[string][]byte{
		"a.trace": encodeTrace(t, testRecords(100, 3)),
		"b.trace": encodeTrace(t, b),
	})
	c2 := mustLoad(t, doc, open2)
	if c2.ID() == c.ID() {
		t.Error("different trace content compiled to the same ID")
	}
	// Same document, same content: the ID must not change.
	if c3 := mustLoad(t, doc, open); c3.ID() != c.ID() {
		t.Error("identical trace content compiled to different IDs")
	}
}

func TestTraceRejections(t *testing.T) {
	open := mapOpener(map[string][]byte{
		"empty.trace":  encodeTrace(t, nil),
		"junk.trace":   []byte("not a trace"),
		"short.header": {0x53},
	})
	cases := []struct {
		name string
		doc  string
	}{
		{"missing file", "name: r\ntrace: {path: nope.trace}\n"},
		{"empty recording", "name: r\ntrace: {path: empty.trace}\n"},
		{"bad magic", "name: r\ntrace: {path: junk.trace}\n"},
		{"truncated header", "name: r\ntrace: {path: short.header}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.doc), open)
			if err == nil {
				t.Fatal("accepted")
			}
			if got := fieldOf(t, err); got != "trace.paths[0]" {
				t.Errorf("field = %q (%v), want trace.paths[0]", got, err)
			}
		})
	}
}

func TestCompileLeavesReceiverUntouched(t *testing.T) {
	s, err := Parse([]byte("name: x\nworkload: {base: Web Search}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compile(nil); err != nil {
		t.Fatal(err)
	}
	if s.Seed != 0 || s.Workload.Base != "Web Search" || s.Workload.FootprintBytes != nil {
		t.Errorf("Compile normalized its receiver: %+v", s.Workload)
	}
}

func TestRegistry(t *testing.T) {
	doc := "name: reg\nseed: 77\nworkload: {base: Web Search}\n"
	c1 := Register(mustLoad(t, doc, nil))
	c2 := Register(mustLoad(t, doc, nil))
	if c1 != c2 {
		t.Error("equal-content registrations did not converge on one instance")
	}
	got, ok := Lookup(c1.ID())
	if !ok || got != c1 {
		t.Errorf("Lookup(%s) = %v, %v", c1.ID(), got, ok)
	}
	if _, ok := Lookup("spec:ghost@0000000000000000"); ok {
		t.Error("Lookup resolved an unregistered ID")
	}
	if !IsID(c1.ID()) || IsID("Web Search") || IsID("spec:") {
		t.Error("IsID misclassifies")
	}
}

func TestMixAccessors(t *testing.T) {
	c := mustLoad(t, "name: m\nmix: [{cores: 3, workload: {}}, {name: web, cores: 5, workload: {base: Web Search}}]\n", nil)
	clients, ok := c.Clients()
	if !ok || len(clients) != 2 {
		t.Fatalf("Clients = %v, %v", clients, ok)
	}
	if clients[0].Name != "client1" || clients[1].Name != "web" {
		t.Errorf("client names = %q, %q", clients[0].Name, clients[1].Name)
	}
	if c.PinnedCores() != 8 {
		t.Errorf("PinnedCores = %d, want 8", c.PinnedCores())
	}
	if src, err := c.Source(); src != nil || err != nil {
		t.Errorf("mix Source = %v, %v, want nil, nil", src, err)
	}
	if _, ok := c.Single(); ok {
		t.Error("mix reports a single workload")
	}
	var _ workload.Source = (*workload.Replay)(nil)
}
