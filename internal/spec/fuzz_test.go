package spec

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"shift/internal/trace"
	"shift/internal/validate"
)

// fuzzSeeds are representative documents: every spec form, both input
// formats, and a few near-misses. The on-disk corpus under
// testdata/fuzz/FuzzSpec extends these.
var fuzzSeeds = []string{
	"name: a\nworkload: {base: Web Search}\n",
	"name: b\nseed: 9\nworkload:\n  base: OLTP DB2\n  scale: 0.5\n  request_zipf: 0.7\n",
	"name: c\nphases:\n  - records: 100\n    workload: {footprint_bytes: 16384}\n  - records: 200\n    workload: {base: DSS Qry 2}\n",
	"name: d\nmix: [{name: x, cores: 2, workload: {}}, {cores: 14, workload: {base: \"Web Frontend\"}}]\n",
	"name: e\ntrace: {paths: [a.trace, b.trace]}\n",
	`{"name": "f", "seed": 3, "workload": {"base": "Media Streaming", "trap_rate": 0.01}}`,
	"name: 'quoted: name'\nworkload: {}\n",
	"name: g\nworkload: {footprint_bytes: 1024, request_types: 64}\n",
	"name: h\nname: h\nworkload: {}\n",
	"workload: {}\n",
	`{"": 1}`,
	"- just\n- a\n- list\n",
	"name: \"\\u00e9\\tbad\"\nworkload: {}\n",
	"{",
}

// fuzzTrace is the recording the fuzz opener serves for every path, so
// trace specs compile hermetically and deterministically.
var fuzzTrace = func() []byte {
	var buf bytes.Buffer
	enc, err := trace.NewEncoder(&buf)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 32; i++ {
		if err := enc.Write(trace.Record{Block: trace.BlockAddr(i * 7), Instrs: uint16(1 + i%5), Kind: trace.Kind(i % 5)}); err != nil {
			panic(err)
		}
	}
	if err := enc.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}()

func fuzzOpener(string) (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(fuzzTrace)), nil
}

// FuzzSpec drives arbitrary documents through the full pipeline and
// enforces the package contract: no panics, every rejection is a
// field-named *validate.FieldError, and accepted documents hit a fixed
// point — the canonical form re-compiles to the identical canonical
// bytes and ID, and recompiling the original input reproduces the ID.
func FuzzSpec(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		requireFieldError := func(err error) {
			t.Helper()
			var fe *validate.FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is %T (%v), not a *validate.FieldError", err, err)
			}
			if fe.Field == "" || fe.Msg == "" {
				t.Fatalf("rejection with empty field or message: %+v", fe)
			}
		}

		c1, err := Load(data, fuzzOpener)
		if err != nil {
			requireFieldError(err)
			return
		}
		c2, err := Load(c1.Canonical(), fuzzOpener)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ncanonical: %s", err, c1.Canonical())
		}
		if !bytes.Equal(c1.Canonical(), c2.Canonical()) {
			t.Fatalf("canonical form is not a fixed point:\n%s\n%s", c1.Canonical(), c2.Canonical())
		}
		if c1.ID() != c2.ID() {
			t.Fatalf("canonical form changed the ID: %s vs %s", c1.ID(), c2.ID())
		}
		c3, err := Load(data, fuzzOpener)
		if err != nil {
			t.Fatalf("recompiling the accepted input failed: %v", err)
		}
		if c3.ID() != c1.ID() {
			t.Fatalf("recompiling the same input changed the ID: %s vs %s", c1.ID(), c3.ID())
		}
	})
}
