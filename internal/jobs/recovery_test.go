package jobs

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"shift"
)

// memStore is a ResultStore-shaped map for recovery tests.
type memStore struct {
	mu sync.Mutex
	m  map[string]shift.RunResult
}

func newMemStore() *memStore { return &memStore{m: make(map[string]shift.RunResult)} }

func (s *memStore) put(key string, r shift.RunResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = r
}

func (s *memStore) Lookup(key string) (shift.RunResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok
}

// storingRunner simulates the engine contract: every successful run
// seeds the store under the cell's content address.
func storingRunner(store *memStore, fail map[string]bool) func(shift.Config) (shift.RunResult, error) {
	return func(cfg shift.Config) (shift.RunResult, error) {
		if fail != nil && fail[cfg.Workload] {
			return shift.RunResult{}, errors.New("boom: " + cfg.Workload)
		}
		r := shift.RunResult{MPKI: float64(cfg.MeasureRecords)}
		store.put(cfg.Key(), r)
		return r, nil
	}
}

func openJournal(t *testing.T, path string) Journal {
	t.Helper()
	jn, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return jn
}

// TestJournalRecovery is the core durability contract: a manager dies
// with one job fully done, one partially done, and one untouched; a
// new manager over the same journal and store finishes everything,
// restores stored results without re-running them, and produces
// results bit-identical to an uninterrupted run.
func TestJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	store := newMemStore()

	br := newBlockingRunner()
	m1, err := Open(Config{
		Workers: 1,
		Journal: openJournal(t, path),
		Lookup:  store.Lookup,
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			r, err := br.run(cfg)
			if err == nil {
				store.put(cfg.Key(), r)
			}
			return r, err
		},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Job A: one cheap cell, runs to completion.
	jA, err := m1.SubmitFrom("alice", []shift.Cell{testCell("loop", 1)})
	if err != nil {
		t.Fatal(err)
	}
	br.release <- struct{}{}
	br.awaitStart(t)
	waitTerminal(t, jA)

	// Job B: two cells; only the cheap one finishes before the "crash".
	jB, err := m1.SubmitFrom("alice", []shift.Cell{testCell("stream", 2), testCell("pointer", 500)})
	if err != nil {
		t.Fatal(err)
	}
	br.release <- struct{}{}
	br.awaitStart(t)
	waitFor(t, func() bool { return jB.Snapshot().Completed == 1 })

	// Job C: submitted, never started.
	if _, err := m1.SubmitFrom("bob", []shift.Cell{testCell("mix", 3)}); err != nil {
		t.Fatal(err)
	}

	// Crash: abandon m1 without Close or Drain — nothing is flushed
	// beyond what Append already synced. (Workers are idle; the journal
	// file is simply reopened.)
	m1.cfg.Journal.Close()

	runs := make(chan string, 16)
	m2, err := Open(Config{
		Workers: 2,
		Journal: openJournal(t, path),
		Lookup:  store.Lookup,
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			runs <- cfg.Workload
			r := shift.RunResult{MPKI: float64(cfg.MeasureRecords)}
			store.put(cfg.Key(), r)
			return r, nil
		},
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()

	rec := m2.Recovery()
	if rec.JobsTerminal != 1 || rec.JobsRecovered != 2 {
		t.Fatalf("recovery = %+v, want 1 terminal + 2 recovered", rec)
	}
	if rec.CellsRestored != 2 {
		t.Fatalf("CellsRestored = %d, want 2 (job A's cell and job B's finished cell)", rec.CellsRestored)
	}
	if rec.CellsRequeued != 2 {
		t.Fatalf("CellsRequeued = %d, want 2", rec.CellsRequeued)
	}

	// Job A was reconstructed terminal with its stored result.
	gA, ok := m2.Get(jA.ID())
	if !ok {
		t.Fatalf("job %s lost across restart", jA.ID())
	}
	stA := gA.Snapshot()
	if stA.State != StateDone || stA.Results[0].MPKI != 1 {
		t.Fatalf("job A after restart: state=%v results=%v", stA.State, stA.Results)
	}

	// Jobs B and C run to completion; only the two unfinished cells are
	// re-simulated.
	gB, _ := m2.Get(jB.ID())
	waitTerminal(t, gB)
	stB := gB.Snapshot()
	if stB.State != StateDone || stB.Results[0].MPKI != 2 || stB.Results[1].MPKI != 500 {
		t.Fatalf("job B after recovery: state=%v results=%v", stB.State, stB.Results)
	}
	var rerun []string
	for len(runs) > 0 {
		rerun = append(rerun, <-runs)
	}
	for _, w := range rerun {
		if w == "stream" {
			t.Fatal("recovery re-simulated a cell whose result was in the store")
		}
	}
	waitFor(t, func() bool { return m2.Stats().Recovering == 0 })

	// New IDs never collide with journaled ones.
	jNew, err := m2.Submit([]shift.Cell{testCell("loop", 9)})
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := map[string]bool{jA.ID(): true, jB.ID(): true}[jNew.ID()]; taken {
		t.Fatalf("new job reused journaled ID %s", jNew.ID())
	}
	waitTerminal(t, jNew)
	// Recovered jobs are excluded from the latency percentiles: only
	// the fresh job counts (its latency would otherwise span the
	// simulated outage).
	if n := m2.Stats().LatencyCount; n != 1 {
		t.Fatalf("LatencyCount = %d, want 1 (only the fresh job)", n)
	}
}

// TestJournalRecoveryStoreMiss: a completed cell whose result was
// evicted from the store is re-simulated, and determinism makes the
// result identical.
func TestJournalRecoveryStoreMiss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	store := newMemStore()
	m1, err := Open(Config{Workers: 1, Journal: openJournal(t, path),
		Lookup: store.Lookup, Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit([]shift.Cell{testCell("loop", 7)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	m1.Close()

	// Evict everything: recovery must fall back to re-simulation.
	empty := newMemStore()
	m2, err := Open(Config{Workers: 1, Journal: openJournal(t, path),
		Lookup: empty.Lookup, Run: storingRunner(empty, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rec := m2.Recovery(); rec.CellsRestored != 0 || rec.CellsRequeued != 1 {
		t.Fatalf("recovery = %+v, want 0 restored / 1 requeued", rec)
	}
	g, _ := m2.Get(j.ID())
	waitTerminal(t, g)
	if st := g.Snapshot(); st.State != StateDone || st.Results[0].MPKI != 7 {
		t.Fatalf("re-simulated job: state=%v results=%v", st.State, st.Results)
	}
}

// TestJournalRecoveryFailed: deterministic failures are replayed from
// the journal, not re-run.
func TestJournalRecoveryFailed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	store := newMemStore()
	m1, err := Open(Config{Workers: 1, Journal: openJournal(t, path),
		Lookup: store.Lookup, Run: storingRunner(store, map[string]bool{"bad": true})})
	if err != nil {
		t.Fatal(err)
	}
	jF, err := m1.Submit([]shift.Cell{testCell("bad", 1)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jF)
	m1.Close()

	m2, err := Open(Config{Workers: 1, Journal: openJournal(t, path),
		Lookup: store.Lookup, Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	gF, _ := m2.Get(jF.ID())
	if st := gF.Snapshot(); st.State != StateFailed || st.CellErrs[0] != "boom: bad" {
		t.Fatalf("failed job after restart: state=%v errs=%v", st.State, st.CellErrs)
	}
	// The failure was replayed from the journal, not re-executed.
	if rec := m2.Recovery(); rec.CellsRequeued != 0 {
		t.Fatalf("recovery requeued %d cells, want 0", rec.CellsRequeued)
	}
}

// TestRecoveryCancelledJobDropsQueuedCells: a job cancelled before the
// crash with never-run cells recovers straight to cancelled.
func TestRecoveryCancelledJobDropsQueuedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	store := newMemStore()
	mgr, err := Open(Config{Workers: 1, Journal: openJournal(t, path), Lookup: store.Lookup,
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			time.Sleep(10 * time.Millisecond)
			return shift.RunResult{}, nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	j, err := mgr.Submit([]shift.Cell{testCell("loop", 1), testCell("stream", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mgr.Cancel(j.ID()); !ok {
		t.Fatal("cancel failed")
	}
	waitTerminal(t, j)
	mgr.Close()

	m2, err := Open(Config{Workers: 1, Journal: openJournal(t, path),
		Lookup: store.Lookup, Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	g, _ := m2.Get(j.ID())
	st := g.Snapshot()
	if st.State != StateCancelled {
		t.Fatalf("cancelled job after restart: state=%v", st.State)
	}
	if rec := m2.Recovery(); rec.JobsTerminal == 0 {
		t.Fatalf("recovery = %+v, want the cancelled job terminal", rec)
	}
}

// TestDrain: draining stops new pops, running cells finish, queued
// cells survive in the checkpoint, and Submit is refused.
func TestDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	store := newMemStore()
	br := newBlockingRunner()
	m, err := Open(Config{Workers: 1, Journal: openJournal(t, path),
		Lookup: store.Lookup,
		Run: func(cfg shift.Config) (shift.RunResult, error) {
			r, err := br.run(cfg)
			if err == nil {
				store.put(cfg.Key(), r)
			}
			return r, err
		}})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit([]shift.Cell{testCell("loop", 1), testCell("pointer", 500)})
	if err != nil {
		t.Fatal(err)
	}
	br.awaitStart(t) // cheap cell is running; expensive one queued

	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	waitFor(t, func() bool { return m.Draining() })

	if _, err := m.Submit([]shift.Cell{testCell("mix", 1)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit during drain = %v, want ErrDraining", err)
	}

	br.release <- struct{}{} // let the running cell finish
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not complete")
	}
	if st := j.Snapshot(); st.Completed != 1 {
		t.Fatalf("after drain: completed=%d, want 1", st.Completed)
	}
	m.Close()

	// The checkpointed journal recovers the job with its finished cell
	// restored and the queued one re-admitted.
	m2, err := Open(Config{Workers: 1, Journal: openJournal(t, path),
		Lookup: store.Lookup, Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if rec.JobsRecovered != 1 || rec.CellsRestored != 1 || rec.CellsRequeued != 1 {
		t.Fatalf("recovery after drain = %+v", rec)
	}
	g, _ := m2.Get(j.ID())
	waitTerminal(t, g)
	if st := g.Snapshot(); st.State != StateDone {
		t.Fatalf("job after drained restart: %v", st.State)
	}
}

// TestDrainGraceExpiry: a drain whose context expires returns the
// context error while the journal still holds the unfinished work.
func TestDrainGraceExpiry(t *testing.T) {
	br := newBlockingRunner()
	m := New(Config{Workers: 1, Run: br.run})
	defer m.Close()
	if _, err := m.Submit([]shift.Cell{testCell("loop", 1)}); err != nil {
		t.Fatal(err)
	}
	br.awaitStart(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want deadline exceeded", err)
	}
	br.release <- struct{}{}
}

// TestJournalCompaction: enough submit/cell churn triggers automatic
// compaction, and the compacted journal still recovers everything.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	store := newMemStore()
	m, err := Open(Config{Workers: 2, Burst: 1024, Journal: openJournal(t, path),
		Lookup: store.Lookup, Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	var jobsSubmitted []*Job
	for i := 0; i < 8; i++ {
		cells := make([]shift.Cell, 16)
		for c := range cells {
			cells[c] = testCell(fmt.Sprintf("w-%d-%d", i, c), int64(c+1))
		}
		j, err := m.Submit(cells)
		if err != nil {
			t.Fatal(err)
		}
		jobsSubmitted = append(jobsSubmitted, j)
	}
	for _, j := range jobsSubmitted {
		waitTerminal(t, j)
	}
	waitFor(t, func() bool {
		st, _ := m.JournalStats()
		return st.Compactions >= 1
	})
	m.Close()

	m2, err := Open(Config{Workers: 2, Journal: openJournal(t, path),
		Lookup: store.Lookup, Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rec := m2.Recovery(); rec.JobsTerminal != len(jobsSubmitted) {
		t.Fatalf("recovered %d terminal jobs from compacted journal, want %d",
			rec.JobsTerminal, len(jobsSubmitted))
	}
	for _, j := range jobsSubmitted {
		g, ok := m2.Get(j.ID())
		if !ok {
			t.Fatalf("job %s lost in compaction", j.ID())
		}
		if st := g.Snapshot(); st.State != StateDone {
			t.Fatalf("job %s state %v after compacted recovery", j.ID(), st.State)
		}
	}
}

// TestEventWindowBounded: a job emitting more events than the window
// keeps memory bounded while EventsSince still serves every event —
// the trimmed prefix synthesized, absolute cursors unshifted.
func TestEventWindowBounded(t *testing.T) {
	store := newMemStore()
	m, err := Open(Config{Workers: 2, Burst: 1024, EventWindow: 4,
		Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cells := make([]shift.Cell, 32)
	for i := range cells {
		cells[i] = testCell(fmt.Sprintf("w-%d", i), int64(i+1))
	}
	j, err := m.Submit(cells)
	if err != nil {
		t.Fatal(err)
	}

	// A live follower with an advancing cursor sees every event exactly
	// once despite trimming.
	seen := make(map[int]bool)
	n := 0
	sawEnd := false
	deadline := time.After(10 * time.Second)
	for !sawEnd {
		evs, terminal, changed := j.EventsSince(n)
		for _, ev := range evs {
			switch ev.Type {
			case EventCell:
				if seen[ev.Index] {
					t.Fatalf("cell %d delivered twice", ev.Index)
				}
				seen[ev.Index] = true
			case EventEnd:
				sawEnd = true
			}
		}
		n += len(evs)
		if terminal && sawEnd {
			break
		}
		select {
		case <-changed:
		case <-deadline:
			t.Fatal("follower timed out")
		}
	}
	if len(seen) != len(cells) {
		t.Fatalf("follower saw %d cells, want %d", len(seen), len(cells))
	}

	// The retained window is bounded.
	j.mu.Lock()
	retained := len(j.events)
	base := j.eventsBase
	j.mu.Unlock()
	if retained > 4 {
		t.Fatalf("window holds %d events, bound is 4", retained)
	}
	if base == 0 {
		t.Fatal("window never trimmed")
	}

	// A late subscriber replaying from zero gets one event per cell
	// (synthesized prefix + window) and exactly one end event.
	evs, terminal, _ := j.EventsSince(0)
	if !terminal {
		t.Fatal("job not terminal for late subscriber")
	}
	if len(evs) != len(cells)+1 {
		t.Fatalf("late subscriber got %d events, want %d", len(evs), len(cells)+1)
	}
	cellSeen := make(map[int]bool)
	for i, ev := range evs {
		if ev.Type == EventEnd {
			if i != len(evs)-1 {
				t.Fatal("end event not last")
			}
			continue
		}
		if cellSeen[ev.Index] {
			t.Fatalf("late replay duplicated cell %d", ev.Index)
		}
		cellSeen[ev.Index] = true
		if ev.Result.MPKI == 0 && ev.Err == "" {
			t.Fatalf("late replay event %d carries no payload", i)
		}
	}
}

// TestSubmitJournalFailureRejects: a journal that cannot append makes
// Submit fail rather than admit a job a restart would forget.
func TestSubmitJournalFailureRejects(t *testing.T) {
	store := newMemStore()
	m, err := Open(Config{Workers: 1, Journal: brokenJournal{},
		Run: storingRunner(store, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Submit([]shift.Cell{testCell("loop", 1)}); err == nil {
		t.Fatal("Submit with a broken journal succeeded")
	}
	if m.Stats().JournalErrors == 0 {
		t.Fatal("journal error not counted")
	}
}

// brokenJournal fails every append.
type brokenJournal struct{}

func (brokenJournal) Replay() ([]Entry, error) { return nil, nil }
func (brokenJournal) Append(Entry) error       { return errors.New("disk full") }
func (brokenJournal) Compact([]Entry) error    { return errors.New("disk full") }
func (brokenJournal) Stats() JournalStats      { return JournalStats{} }
func (brokenJournal) Close() error             { return nil }

// waitFor polls cond until true or a 5s deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
