package jobs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"shift"
)

// testCell builds a cell whose estimated cost is (warm+meas) for one
// core, so tests can order the SJF queue precisely.
func testCell(workload string, meas int64) shift.Cell {
	return shift.Cell{
		Label: workload,
		Config: shift.Config{
			Workload:       workload,
			Cores:          1,
			WarmupRecords:  1,
			MeasureRecords: meas,
		},
	}
}

// blockingRunner records the workload of each started cell and blocks
// until released, one token per call.
type blockingRunner struct {
	started chan string
	release chan struct{}
	fail    map[string]bool
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{
		started: make(chan string, 64),
		release: make(chan struct{}, 64),
	}
}

func (b *blockingRunner) run(cfg shift.Config) (shift.RunResult, error) {
	b.started <- cfg.Workload
	<-b.release
	if b.fail[cfg.Workload] {
		return shift.RunResult{}, errors.New("boom: " + cfg.Workload)
	}
	return shift.RunResult{MPKI: float64(cfg.MeasureRecords)}, nil
}

func (b *blockingRunner) awaitStart(t *testing.T) string {
	t.Helper()
	select {
	case w := <-b.started:
		return w
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a cell to start")
		return ""
	}
}

// waitTerminal follows the job's event log until the end event.
func waitTerminal(t *testing.T, j *Job) []Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	var all []Event
	n := 0
	for {
		evs, terminal, changed := j.EventsSince(n)
		all = append(all, evs...)
		n += len(evs)
		if terminal {
			return all
		}
		select {
		case <-changed:
		case <-deadline:
			t.Fatalf("timed out waiting for job %s to finish (state %v)", j.ID(), j.Snapshot().State)
		}
	}
}

func TestSJFOrder(t *testing.T) {
	r := newBlockingRunner()
	m := New(Config{Workers: 1, Run: r.run})
	defer m.Close()

	// Occupy the single worker so subsequent submissions queue up.
	plug, err := m.Submit([]shift.Cell{testCell("plug", 100)})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.awaitStart(t); got != "plug" {
		t.Fatalf("first start = %q, want plug", got)
	}

	// Submit most-expensive-first; SJF must start them cheapest-first.
	for _, c := range []struct {
		w    string
		meas int64
	}{{"big", 90000}, {"mid", 50000}, {"small", 10000}} {
		if _, err := m.Submit([]shift.Cell{testCell(c.w, c.meas)}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"small", "mid", "big"}
	for i := 0; i < 4; i++ {
		r.release <- struct{}{}
	}
	for _, w := range want {
		if got := r.awaitStart(t); got != w {
			t.Fatalf("start order: got %q, want %q", got, w)
		}
	}
	waitTerminal(t, plug)
}

func TestEqualCostIsFIFO(t *testing.T) {
	r := newBlockingRunner()
	m := New(Config{Workers: 1, Run: r.run})
	defer m.Close()

	if _, err := m.Submit([]shift.Cell{testCell("plug", 100)}); err != nil {
		t.Fatal(err)
	}
	r.awaitStart(t)
	for _, w := range []string{"first", "second", "third"} {
		c := testCell(w, 1000)
		c.Config.Seed = int64(len(w)) // distinct keys, equal cost
		if _, err := m.Submit([]shift.Cell{c}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		r.release <- struct{}{}
	}
	for _, w := range []string{"first", "second", "third"} {
		if got := r.awaitStart(t); got != w {
			t.Fatalf("equal-cost start order: got %q, want %q", got, w)
		}
	}
}

func TestJobLifecycleAndEvents(t *testing.T) {
	r := newBlockingRunner()
	m := New(Config{Workers: 1, Run: r.run})
	defer m.Close()

	j, err := m.Submit([]shift.Cell{testCell("a", 1000), testCell("b", 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Snapshot(); st.State != StateQueued || st.Cells != 2 {
		t.Fatalf("fresh snapshot = %+v, want queued with 2 cells", st)
	}
	r.release <- struct{}{}
	r.release <- struct{}{}
	evs := waitTerminal(t, j)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 (2 cells + end): %+v", len(evs), evs)
	}
	// SJF runs "a" (cheaper) first; events arrive in completion order.
	if evs[0].Type != EventCell || evs[0].Index != 0 || evs[0].Label != "a" {
		t.Fatalf("event 0 = %+v, want cell 0 (a)", evs[0])
	}
	if evs[1].Type != EventCell || evs[1].Index != 1 {
		t.Fatalf("event 1 = %+v, want cell 1", evs[1])
	}
	if evs[2].Type != EventEnd || evs[2].State != StateDone {
		t.Fatalf("event 2 = %+v, want end/done", evs[2])
	}
	st := j.Snapshot()
	if st.State != StateDone || st.Completed != 2 || st.Failed != 0 {
		t.Fatalf("final snapshot = %+v, want done with 2 completed", st)
	}
	if st.Results[0].MPKI != 1000 || st.Results[1].MPKI != 2000 {
		t.Fatalf("results landed out of slot: %+v", st.Results)
	}
	if st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatal("missing lifecycle timestamps")
	}
	// Replay from the start returns the full log again.
	replay, terminal, _ := j.EventsSince(0)
	if !terminal || len(replay) != 3 {
		t.Fatalf("replay: terminal=%v events=%d, want true/3", terminal, len(replay))
	}
}

func TestFailedCellFailsJob(t *testing.T) {
	r := newBlockingRunner()
	r.fail = map[string]bool{"bad": true}
	m := New(Config{Workers: 1, Run: r.run})
	defer m.Close()

	j, err := m.Submit([]shift.Cell{testCell("bad", 1000), testCell("good", 2000)})
	if err != nil {
		t.Fatal(err)
	}
	r.release <- struct{}{}
	r.release <- struct{}{}
	evs := waitTerminal(t, j)
	if evs[len(evs)-1].State != StateFailed {
		t.Fatalf("end state = %v, want failed", evs[len(evs)-1].State)
	}
	st := j.Snapshot()
	if st.Completed != 1 || st.Failed != 1 {
		t.Fatalf("snapshot = %+v, want 1 completed 1 failed", st)
	}
	if st.CellErrs[0] == "" || st.CellErrs[1] != "" {
		t.Fatalf("cell errors = %q, want error only at index 0", st.CellErrs)
	}
}

func TestCancelDropsQueuedFinishesRunning(t *testing.T) {
	r := newBlockingRunner()
	m := New(Config{Workers: 1, Run: r.run})
	defer m.Close()

	// Cell 0 is cheapest, so the single worker picks it first and the
	// other two stay queued.
	j, err := m.Submit([]shift.Cell{
		testCell("running", 1000),
		testCell("queued1", 2000),
		testCell("queued2", 3000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.awaitStart(t); got != "running" {
		t.Fatalf("started %q, want running", got)
	}

	got, ok := m.Cancel(j.ID())
	if !ok || got != j {
		t.Fatal("Cancel did not find the job")
	}
	st := j.Snapshot()
	if !st.CancelRequested || st.Dropped != 2 || st.State.Terminal() {
		t.Fatalf("post-cancel snapshot = %+v, want 2 dropped, not yet terminal", st)
	}
	// Cancelling again is a no-op.
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("second Cancel did not find the job")
	}
	if s := m.Stats(); s.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1 (second cancel is a no-op)", s.Cancelled)
	}

	// The running cell finishes and publishes; then the job finalizes.
	r.release <- struct{}{}
	evs := waitTerminal(t, j)
	if evs[len(evs)-1].State != StateCancelled {
		t.Fatalf("end state = %v, want cancelled", evs[len(evs)-1].State)
	}
	st = j.Snapshot()
	if st.Completed != 1 || st.Dropped != 2 || !st.Done[0] {
		t.Fatalf("final snapshot = %+v, want the running cell completed", st)
	}

	// The dropped cells' stale heap entries are reaped; the queue
	// drains to empty.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d", m.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCancelQueuedJobFinalizesImmediately(t *testing.T) {
	r := newBlockingRunner()
	m := New(Config{Workers: 1, Run: r.run})
	defer m.Close()

	// Occupy the worker so the target job never starts.
	if _, err := m.Submit([]shift.Cell{testCell("plug", 100)}); err != nil {
		t.Fatal(err)
	}
	r.awaitStart(t)
	j, err := m.Submit([]shift.Cell{testCell("a", 1000), testCell("b", 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("Cancel did not find the job")
	}
	st := j.Snapshot()
	if st.State != StateCancelled || st.Dropped != 2 {
		t.Fatalf("snapshot = %+v, want immediately cancelled with 2 dropped", st)
	}
	evs, terminal, _ := j.EventsSince(0)
	if !terminal || len(evs) != 1 || evs[0].Type != EventEnd {
		t.Fatalf("events = %+v, want just the end event", evs)
	}
	r.release <- struct{}{}
}

func TestQueueBound(t *testing.T) {
	r := newBlockingRunner()
	m := New(Config{Workers: 1, MaxQueue: 2, Run: r.run})
	defer m.Close()

	if _, err := m.Submit([]shift.Cell{testCell("plug", 100)}); err != nil {
		t.Fatal(err)
	}
	r.awaitStart(t) // the plug cell left the queue and occupies the worker
	if _, err := m.Submit([]shift.Cell{testCell("a", 1000), testCell("b", 2000)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit([]shift.Cell{testCell("c", 3000)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	if s := m.Stats(); s.Rejected != 1 || s.QueueDepth != 2 {
		t.Fatalf("stats = %+v, want 1 rejected, depth 2", s)
	}
	for i := 0; i < 3; i++ {
		r.release <- struct{}{}
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m := New(Config{Workers: 1, Run: func(shift.Config) (shift.RunResult, error) {
		return shift.RunResult{}, nil
	}})
	m.Close()
	if _, err := m.Submit([]shift.Cell{testCell("a", 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if _, err := m.Submit(nil); err == nil {
		t.Fatal("empty submit succeeded, want error")
	}
}

func TestAdmitCountsRejections(t *testing.T) {
	m := New(Config{Workers: 1, Rate: 1, Burst: 2, Run: func(shift.Config) (shift.RunResult, error) {
		return shift.RunResult{}, nil
	}})
	defer m.Close()
	if d := m.Admit("c1", 2); !d.OK {
		t.Fatalf("first admit = %+v, want OK", d)
	}
	d := m.Admit("c1", 1)
	if d.OK || d.Never || d.RetryAfter < time.Second {
		t.Fatalf("drained admit = %+v, want rejection with Retry-After >= 1s", d)
	}
	if d := m.Admit("c1", 3); !d.Never {
		t.Fatalf("oversized admit = %+v, want Never", d)
	}
	if s := m.Stats(); s.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", s.Rejected)
	}
}

func TestLatencyStats(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	r := newBlockingRunner()
	m := New(Config{Workers: 1, Run: r.run, Now: clock})
	defer m.Close()

	j, err := m.Submit([]shift.Cell{testCell("a", 1000)})
	if err != nil {
		t.Fatal(err)
	}
	r.awaitStart(t)
	now = now.Add(3 * time.Second)
	r.release <- struct{}{}
	waitTerminal(t, j)
	s := m.Stats()
	if s.LatencyCount != 1 || s.LatencySum != 3 || s.LatencyP50 != 3 {
		t.Fatalf("latency stats = %+v, want count 1, sum 3, p50 3", s)
	}
}

func TestPercentile(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1)
	}
	for _, tc := range []struct {
		q, want float64
	}{{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}} {
		if got := percentile(samples, tc.q); got != tc.want {
			t.Errorf("percentile(1..100, %g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %g, want 0", got)
	}
}

func TestEstimateCostPrefersSampled(t *testing.T) {
	exact := shift.Config{Cores: 4, WarmupRecords: 60000, MeasureRecords: 60000}
	sampled := exact
	sampled.Sampling = shift.Sampling{Period: 10}
	ce, cs := EstimateCost(exact), EstimateCost(sampled)
	if cs >= ce {
		t.Fatalf("sampled cost %g >= exact cost %g; SJF would not prefer probes", cs, ce)
	}
	if cs <= 0 || ce != 120000*4 {
		t.Fatalf("unexpected costs: sampled %g exact %g", cs, ce)
	}
}

// flakyRunner fails each cell a configured number of times before
// succeeding, recording total calls per workload.
type flakyRunner struct {
	mu       sync.Mutex
	failures map[string]int // remaining failures per workload
	calls    map[string]int
	err      error
}

func newFlakyRunner(err error, failures map[string]int) *flakyRunner {
	return &flakyRunner{failures: failures, calls: make(map[string]int), err: err}
}

func (f *flakyRunner) run(cfg shift.Config) (shift.RunResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[cfg.Workload]++
	if f.failures[cfg.Workload] > 0 {
		f.failures[cfg.Workload]--
		return shift.RunResult{}, f.err
	}
	return shift.RunResult{MPKI: float64(cfg.MeasureRecords)}, nil
}

func (f *flakyRunner) callCount(workload string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[workload]
}

func TestTransientRetryRecoversCell(t *testing.T) {
	transient := &shift.TimeoutError{Timeout: time.Millisecond, Cells: 1}
	r := newFlakyRunner(transient, map[string]int{"flaky": 2})
	m := New(Config{
		Workers:   2,
		Run:       r.run,
		Retries:   3,
		Transient: shift.IsTransient,
	})
	defer m.Close()

	j, err := m.Submit([]shift.Cell{testCell("flaky", 10), testCell("steady", 20)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st := j.Snapshot()
	if st.State != StateDone {
		t.Fatalf("state = %v, want done (cell errs %v)", st.State, st.CellErrs)
	}
	if got := r.callCount("flaky"); got != 3 {
		t.Fatalf("flaky cell ran %d times, want 3 (2 failures + 1 success)", got)
	}
	if got := m.Stats().Retried; got != 2 {
		t.Fatalf("Stats.Retried = %d, want 2", got)
	}
}

func TestTransientRetryExhaustsAttempts(t *testing.T) {
	transient := &shift.TimeoutError{Timeout: time.Millisecond, Cells: 1}
	r := newFlakyRunner(transient, map[string]int{"doomed": 100})
	m := New(Config{
		Workers:   1,
		Run:       r.run,
		Retries:   2,
		Transient: shift.IsTransient,
	})
	defer m.Close()

	j, err := m.Submit([]shift.Cell{testCell("doomed", 10)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st := j.Snapshot()
	if st.State != StateFailed {
		t.Fatalf("state = %v, want failed", st.State)
	}
	if got := r.callCount("doomed"); got != 3 {
		t.Fatalf("doomed cell ran %d times, want 3 (initial + 2 retries)", got)
	}
	if st.CellErrs[0] == "" {
		t.Fatal("exhausted cell should record its error")
	}
	if got := m.Stats().Retried; got != 2 {
		t.Fatalf("Stats.Retried = %d, want 2", got)
	}
}

func TestDeterministicErrorsAreNotRetried(t *testing.T) {
	r := newFlakyRunner(errors.New("bad config"), map[string]int{"broken": 100})
	m := New(Config{
		Workers:   1,
		Run:       r.run,
		Retries:   5,
		Transient: shift.IsTransient,
	})
	defer m.Close()

	j, err := m.Submit([]shift.Cell{testCell("broken", 10)})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if st := j.Snapshot(); st.State != StateFailed {
		t.Fatalf("state = %v, want failed", st.State)
	}
	if got := r.callCount("broken"); got != 1 {
		t.Fatalf("deterministic failure ran %d times, want 1", got)
	}
	if got := m.Stats().Retried; got != 0 {
		t.Fatalf("Stats.Retried = %d, want 0", got)
	}
}

func TestCancelledJobIsNotRequeued(t *testing.T) {
	b := newBlockingRunner()
	b.fail = map[string]bool{"w": true}
	transient := func(error) bool { return true }
	m := New(Config{Workers: 1, Run: b.run, Retries: 5, Transient: transient})
	defer m.Close()

	j, err := m.Submit([]shift.Cell{testCell("w", 10)})
	if err != nil {
		t.Fatal(err)
	}
	b.awaitStart(t)
	if _, ok := m.Cancel(j.ID()); !ok {
		t.Fatal("cancel failed")
	}
	b.release <- struct{}{}
	waitTerminal(t, j)
	if st := j.Snapshot(); st.State != StateCancelled {
		t.Fatalf("state = %v, want cancelled", st.State)
	}
	if got := m.Stats().Retried; got != 0 {
		t.Fatalf("Stats.Retried = %d, want 0: cancelled cells must not requeue", got)
	}
}
