package jobs

import (
	"encoding/json"
	"fmt"
	"time"

	"shift"
	"shift/internal/wal"
)

// This file is the durability seam of the job subsystem: the Entry
// record schema the manager journals, the Journal interface it
// journals through, and the write-ahead-log implementation (OpenWAL)
// shiftd plugs in under -state-dir. The manager journals intent and
// outcome — submission, per-cell completion, cancellation,
// finalization — never results: cell results are content-addressed in
// the ResultStore, so recovery resolves completed cells by key and the
// journal stays small and append-cheap.

// Entry op codes. A job's journaled life is one opSubmit, zero or more
// opCell entries in completion order, at most one opCancel, and one
// opEnd; opSnap folds that whole history into a single record during
// compaction.
const (
	// OpSubmit records an admitted job: id, client, creation time, and
	// every cell as its canonical Config JSON (plus the canonical spec
	// document for spec-compiled workloads, so replay can re-register
	// the spec in a fresh process).
	OpSubmit = "submit"
	// OpCell records one cell's terminal outcome: its index and, for a
	// failure, the error message. Success carries no result — the
	// result lives in the store under the cell's content address.
	OpCell = "cell"
	// OpCancel records a cancellation that took effect.
	OpCancel = "cancel"
	// OpEnd records a job reaching a terminal state. Replay derives the
	// state from the cell ops (the entry is advisory), so a crash
	// between the last OpCell and its OpEnd loses nothing.
	OpEnd = "end"
	// OpSnap is a compacted job: submission, completion history,
	// cancellation flag, and terminal state in one record. Replay
	// expands it to the primitive ops.
	OpSnap = "snap"
)

// EntryCell is one cell of an OpSubmit/OpSnap entry: the label plus
// the full Config in its exact JSON encoding, which round-trips keys
// bit-identically (the cluster wire codec contract), so a replayed
// cell resolves the same content address it was submitted under.
type EntryCell struct {
	// Label names the cell in responses and diagnostics.
	Label string `json:"label,omitempty"`
	// Config is the resolved simulation configuration.
	Config shift.Config `json:"config"`
	// Spec is the canonical document of a spec-compiled workload
	// (Config.Workload "spec:..."), re-registered at replay so the ID
	// resolves in the recovered process. Empty for catalog workloads.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// CellOp is one completed cell inside an OpSnap entry.
type CellOp struct {
	// Cell is the cell's index in the submitted job.
	Cell int `json:"cell"`
	// Err is the failure message; empty means the cell succeeded.
	Err string `json:"err,omitempty"`
}

// Entry is one journal record. Which fields are meaningful depends on
// Op; unused fields stay zero and are omitted from the JSON.
type Entry struct {
	// Op is the record type (OpSubmit, OpCell, OpCancel, OpEnd, OpSnap).
	Op string `json:"op"`
	// Job is the job ID the record belongs to.
	Job string `json:"job"`
	// Client is the admission-control client key (OpSubmit/OpSnap).
	Client string `json:"client,omitempty"`
	// Created is the job's creation time (OpSubmit/OpSnap).
	Created time.Time `json:"created,omitempty"`
	// Cells is the submitted cell list (OpSubmit/OpSnap).
	Cells []EntryCell `json:"cells,omitempty"`
	// Cell is the completed cell's index (OpCell).
	Cell int `json:"cell,omitempty"`
	// Err is the completed cell's failure message (OpCell).
	Err string `json:"err,omitempty"`
	// Cancelled marks a job whose cancellation took effect (OpSnap).
	Cancelled bool `json:"cancelled,omitempty"`
	// State is the job's terminal state (OpEnd; OpSnap when terminal).
	State State `json:"state,omitempty"`
	// Ops is the completion history in completion order (OpSnap).
	Ops []CellOp `json:"ops,omitempty"`
}

// JournalStats is a point-in-time snapshot of a journal's footprint,
// surfaced through shiftd's /v1/stats and /v1/metrics.
type JournalStats struct {
	// Records is the number of records currently in the journal.
	Records int
	// Bytes is the journal's current size on disk.
	Bytes int64
	// TailRecords reports the torn tail discarded when the journal was
	// opened (at most one record — the append in flight when the
	// previous process died).
	TailRecords int
	// TailBytes is the size of that discarded tail.
	TailBytes int64
	// Compactions counts snapshot rewrites since open.
	Compactions int64
}

// Journal persists the manager's state transitions. Append must be
// durable when it returns (a journaled record survives process death);
// Compact atomically replaces the journal's contents with a snapshot.
// Implementations are safe for concurrent use; the manager may append
// from several workers at once.
type Journal interface {
	// Replay returns the entries found when the journal was opened, in
	// append order. The manager calls it once, before scheduling work.
	Replay() ([]Entry, error)
	// Append durably adds one entry.
	Append(Entry) error
	// Compact atomically replaces the journal with the snapshot
	// entries. Entries appended concurrently with the snapshot's
	// assembly may be dropped; replay is idempotent and re-executes the
	// affected cells, so the cost is recomputation, never lost jobs.
	Compact([]Entry) error
	// Stats reports the journal's current footprint.
	Stats() JournalStats
	// Close releases the journal. Appends after Close fail.
	Close() error
}

// walJournal is the production Journal: Entry records as JSON over an
// append-only wal.Log with per-record CRC-32C footers.
type walJournal struct {
	log      *wal.Log
	replayed []Entry
}

// OpenWAL opens (creating if absent) the write-ahead journal at path
// and decodes its records. A torn tail — the append in flight when the
// previous process died — is discarded and reported through Stats; a
// corrupt interior record fails loudly here (wrapping wal.ErrCorrupt)
// rather than silently dropping journaled jobs.
func OpenWAL(path string) (Journal, error) {
	log, recs, _, err := wal.Open(path)
	if err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, len(recs))
	for i, rec := range recs {
		var e Entry
		if err := json.Unmarshal(rec, &e); err != nil {
			log.Close()
			return nil, fmt.Errorf("jobs: journal %s record %d: %w", path, i, err)
		}
		entries = append(entries, e)
	}
	return &walJournal{log: log, replayed: entries}, nil
}

// Replay returns the entries decoded at open.
func (w *walJournal) Replay() ([]Entry, error) { return w.replayed, nil }

// Append marshals and durably appends one entry.
func (w *walJournal) Append(e Entry) error {
	rec, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return w.log.Append(rec)
}

// Compact atomically replaces the journal with the snapshot entries.
func (w *walJournal) Compact(entries []Entry) error {
	recs := make([][]byte, len(entries))
	for i, e := range entries {
		rec, err := json.Marshal(e)
		if err != nil {
			return err
		}
		recs[i] = rec
	}
	return w.log.Rewrite(recs)
}

// Stats reports the journal's footprint.
func (w *walJournal) Stats() JournalStats {
	tail := w.log.TailDiscarded()
	return JournalStats{
		Records:     w.log.Records(),
		Bytes:       w.log.Size(),
		TailRecords: tail.Records,
		TailBytes:   tail.Bytes,
		Compactions: w.log.Compactions(),
	}
}

// Close releases the underlying log.
func (w *walJournal) Close() error { return w.log.Close() }

// entryCells converts submitted cells to their journaled form,
// embedding the canonical spec document for spec-compiled workloads so
// a fresh process can re-register them at replay.
func entryCells(cells []shift.Cell) []EntryCell {
	ecs := make([]EntryCell, len(cells))
	for i, c := range cells {
		ecs[i] = EntryCell{Label: c.Label, Config: c.Config}
		if doc, err := shift.SpecCanonical(c.Config.Workload); err == nil {
			ecs[i].Spec = doc
		}
	}
	return ecs
}
