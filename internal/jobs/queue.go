package jobs

// cellItem is one schedulable cell in the priority queue: a (job, cell
// index) pair with its estimated cost and a submission sequence number
// for deterministic FIFO tie-breaking among equal-cost cells.
type cellItem struct {
	job  *Job
	cell int
	cost float64
	seq  int64
}

// cellHeap is a min-heap over (cost, seq): the scheduler always pops
// the cheapest estimated cell first (shortest-job-first), and among
// equal costs the earliest-submitted — so sampled probe cells overtake
// exact confirmations while equal work stays first-come-first-served.
// It implements container/heap.Interface.
type cellHeap []cellItem

// Len reports the number of queued cells (including stale entries for
// cancelled jobs, reaped lazily on pop).
func (h cellHeap) Len() int { return len(h) }

// Less orders by estimated cost, then submission order.
func (h cellHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].seq < h[j].seq
}

// Swap exchanges two entries.
func (h cellHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push appends x (heap.Interface contract).
func (h *cellHeap) Push(x any) { *h = append(*h, x.(cellItem)) }

// Pop removes and returns the last entry (heap.Interface contract).
func (h *cellHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
