package jobs

import (
	"math"
	"sync"
	"time"
)

// maxClients bounds the bucket map: when a Take would grow it past
// this, full (fully-refilled, i.e. idle) buckets are swept first. A
// full bucket is behaviorally identical to a fresh one, so sweeping
// never changes an admission decision.
const maxClients = 4096

// Buckets is a set of per-client token buckets for admission control.
// Each client key owns an independent bucket that refills continuously
// at Rate tokens per second up to a capacity of Burst; a request for n
// tokens is admitted iff the client's bucket holds at least n. New
// clients start with a full bucket, so a client's first Burst tokens
// are always admitted.
//
// Buckets is safe for concurrent use.
type Buckets struct {
	mu    sync.Mutex
	rate  float64
	burst float64
	now   func() time.Time
	m     map[string]*bucket
}

// bucket is one client's token state: the balance as of the last Take.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewBuckets returns a bucket set refilling at rate tokens/second with
// capacity burst per client. Non-positive rate or burst are clamped to
// 1. The now function supplies the clock (nil = time.Now; tests inject
// a fake).
func NewBuckets(rate, burst float64, now func() time.Time) *Buckets {
	if rate <= 0 {
		rate = 1
	}
	if burst <= 0 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Buckets{rate: rate, burst: burst, now: now, m: make(map[string]*bucket)}
}

// Decision is the outcome of one admission check.
type Decision struct {
	// OK reports whether the request was admitted (the tokens have been
	// debited).
	OK bool
	// RetryAfter is the wait after which a retry of the same request
	// would be admitted, rounded up to whole seconds (only meaningful
	// when OK is false and Never is false).
	RetryAfter time.Duration
	// Never reports that the request can never be admitted because its
	// cost exceeds the bucket capacity — no amount of waiting helps.
	Never bool
}

// Take requests cost tokens from client's bucket and reports the
// decision. On admission the tokens are debited; on rejection the
// bucket is untouched and RetryAfter says when to come back.
func (b *Buckets) Take(client string, cost float64) Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	if cost > b.burst {
		return Decision{Never: true}
	}
	now := b.now()
	bk, ok := b.m[client]
	if !ok {
		if len(b.m) >= maxClients {
			b.sweep()
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[client] = bk
	}
	// Refill since the last touch, capped at capacity.
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(b.burst, bk.tokens+dt*b.rate)
	}
	bk.last = now
	if bk.tokens >= cost {
		bk.tokens -= cost
		return Decision{OK: true}
	}
	secs := math.Ceil((cost - bk.tokens) / b.rate)
	if secs < 1 {
		secs = 1
	}
	return Decision{RetryAfter: time.Duration(secs) * time.Second}
}

// sweep drops idle buckets (those that would refill to capacity),
// which are indistinguishable from fresh ones. Called with mu held.
func (b *Buckets) sweep() {
	now := b.now()
	for k, bk := range b.m {
		if bk.tokens+now.Sub(bk.last).Seconds()*b.rate >= b.burst {
			delete(b.m, k)
		}
	}
}

// Clients returns the number of tracked client buckets.
func (b *Buckets) Clients() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}
