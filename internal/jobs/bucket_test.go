package jobs

import (
	"fmt"
	"testing"
	"time"
)

func TestBucketTakeRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBuckets(1, 10, func() time.Time { return now })

	// A fresh client starts with a full bucket.
	if d := b.Take("a", 10); !d.OK {
		t.Fatalf("fresh full-burst take = %+v, want OK", d)
	}
	// Drained: one token short needs one second at rate 1.
	if d := b.Take("a", 1); d.OK || d.RetryAfter != time.Second {
		t.Fatalf("drained take = %+v, want Retry-After 1s", d)
	}
	// Rejections must not debit the bucket.
	now = now.Add(5 * time.Second)
	if d := b.Take("a", 5); !d.OK {
		t.Fatalf("take after 5s refill = %+v, want OK", d)
	}
	// Retry-After rounds up: 3 tokens short at 1/s is 3 seconds.
	if d := b.Take("a", 3); d.OK || d.RetryAfter != 3*time.Second {
		t.Fatalf("take = %+v, want Retry-After 3s", d)
	}
	// Refill caps at burst: a long idle client cannot exceed capacity.
	now = now.Add(time.Hour)
	if d := b.Take("a", 10); !d.OK {
		t.Fatalf("capped refill take = %+v, want OK", d)
	}
	if d := b.Take("a", 1); d.OK {
		t.Fatalf("take past capacity = %+v, want rejection", d)
	}
}

func TestBucketNever(t *testing.T) {
	b := NewBuckets(1, 10, nil)
	d := b.Take("a", 11)
	if !d.Never || d.OK {
		t.Fatalf("over-burst take = %+v, want Never", d)
	}
	// The bucket is untouched by a Never decision.
	if d := b.Take("a", 10); !d.OK {
		t.Fatalf("follow-up take = %+v, want OK", d)
	}
}

func TestBucketsAreIndependent(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBuckets(1, 5, func() time.Time { return now })
	if d := b.Take("a", 5); !d.OK {
		t.Fatal("client a should start full")
	}
	if d := b.Take("b", 5); !d.OK {
		t.Fatal("client b should be unaffected by client a")
	}
	if b.Clients() != 2 {
		t.Fatalf("Clients() = %d, want 2", b.Clients())
	}
}

func TestBucketSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBuckets(1, 4, func() time.Time { return now })
	for i := 0; i < maxClients; i++ {
		b.Take(fmt.Sprintf("c%d", i), 1)
	}
	if b.Clients() != maxClients {
		t.Fatalf("Clients() = %d, want %d", b.Clients(), maxClients)
	}
	// After every bucket refills to capacity, the next new client sweeps
	// them all: full buckets are indistinguishable from fresh ones.
	now = now.Add(time.Hour)
	if d := b.Take("fresh", 1); !d.OK {
		t.Fatal("fresh client should be admitted")
	}
	if b.Clients() != 1 {
		t.Fatalf("Clients() after sweep = %d, want 1", b.Clients())
	}
}

func TestBucketClamps(t *testing.T) {
	b := NewBuckets(-1, 0, nil)
	if d := b.Take("a", 1); !d.OK {
		t.Fatalf("clamped bucket take = %+v, want OK (rate and burst clamp to 1)", d)
	}
}
