// Package jobs is the asynchronous job subsystem behind shiftd's
// /v1/jobs API: a job registry, per-client token-bucket admission
// control, and a bounded shortest-job-first cell scheduler.
//
// A job is an ordered list of simulation cells (the same shape as a
// synchronous /v1/grid request). Submitted jobs enqueue one schedulable
// unit per cell into a single process-wide priority queue ordered by
// estimated cost (EstimateCost), so cheap sampled probe cells overtake
// expensive exact confirmations regardless of arrival order — the
// SJF-style batch formation of BLIS-like inference schedulers. Workers
// pop cells and execute them through the caller-supplied run function
// (shiftd passes Engine.RunOne, so job cells share the engine's store,
// in-flight deduplication, and concurrency bound with every
// synchronous request).
//
// Completion fan-in is cell-keyed, never completion-ordered: each
// result lands in its cell's slot, so a drained job's result list is
// deterministically ordered like the request — and, because the
// simulator is a pure function of its config and both paths run the
// same engine, bit-identical to the synchronous /v1/grid reply for the
// same cells.
//
// Cancellation drops queued cells (lazily reaped from the queue) while
// running cells finish and publish their results — the engine seeds
// the result store either way, so cancelled work is never wasted.
package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"shift"
)

// State is a job lifecycle state.
type State string

// The job lifecycle: Queued → Running → one of the terminal states
// Done (every cell succeeded), Failed (at least one cell errored), or
// Cancelled (cancellation requested before completion).
const (
	// StateQueued means no cell has started executing yet.
	StateQueued State = "queued"
	// StateRunning means at least one cell has started.
	StateRunning State = "running"
	// StateDone means every cell completed successfully.
	StateDone State = "done"
	// StateFailed means all cells finished and at least one errored.
	StateFailed State = "failed"
	// StateCancelled means the job was cancelled; queued cells were
	// dropped and any running cells have since finished.
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event types carried by Event.Type.
const (
	// EventCell announces one finished cell (success or failure).
	EventCell = "cell"
	// EventEnd announces the job's terminal state; it is always the
	// last event of a job.
	EventEnd = "end"
)

// Event is one entry of a job's append-only event log, consumed by the
// streaming endpoint: one EventCell per finished cell as it lands,
// then exactly one EventEnd.
type Event struct {
	// Type is EventCell or EventEnd.
	Type string
	// Index is the cell's position in the submitted job (EventCell).
	Index int
	// Label is the cell's label (EventCell).
	Label string
	// Key is the cell's content-address, shift.Config.Key (EventCell).
	Key string
	// Result is the cell's result (EventCell with empty Err).
	Result shift.RunResult
	// Err is the cell's error message (EventCell of a failed cell).
	Err string
	// State is the job's terminal state (EventEnd).
	State State
}

// cell execution states (per cell, guarded by Job.mu).
type cellState uint8

const (
	cellQueued cellState = iota
	cellRunning
	cellDone
	cellFailed
	cellDropped
)

// Job is one submitted asynchronous job. All exported methods are safe
// for concurrent use.
type Job struct {
	id      string
	cells   []shift.Cell
	keys    []string
	created time.Time
	client  string
	// wire is the journaled form of the cells (canonical Config JSON
	// plus spec documents), kept so compaction snapshots and the
	// original submit entry encode identically.
	wire []EntryCell
	// recovered marks a job rebuilt from the journal; its finalization
	// decrements the manager's recovering count and is excluded from
	// the latency percentiles (a latency spanning a process restart
	// measures the outage, not the scheduler).
	recovered bool
	// eventWindow caps the in-memory event log (see EventsSince).
	eventWindow int

	mu        sync.Mutex
	state     State
	cancelled bool
	cellState []cellState
	attempts  []int // extra attempts consumed per cell (retry policy)
	results   []shift.RunResult
	cellErrs  []string
	completed int
	failed    int
	dropped   int
	running   int
	started   time.Time
	finished  time.Time
	events    []Event
	// eventsBase is the absolute index of events[0]: how many events
	// the window has discarded. EventsSince positions are absolute, so
	// trimming never shifts a follower's cursor.
	eventsBase int
	// order records the completion order of finished cells — one index
	// per cell event ever appended. Four bytes per cell (versus a full
	// buffered Event with its embedded RunResult) is what lets the
	// window discard old events yet rebuild any trimmed prefix exactly:
	// the payloads are recovered from the per-cell result slots.
	order   []int32
	changed chan struct{}
}

// ID returns the job's registry identifier.
func (j *Job) ID() string { return j.id }

// Status is a point-in-time snapshot of a job, safe to read without
// further locking. Slices are index-aligned with the submitted cells.
type Status struct {
	// ID is the job identifier.
	ID string
	// State is the lifecycle state at snapshot time.
	State State
	// CancelRequested reports that cancellation was requested; the
	// state turns StateCancelled once running cells drain.
	CancelRequested bool
	// Cells is the number of submitted cells.
	Cells int
	// Completed counts cells that finished successfully.
	Completed int
	// Failed counts cells whose simulation errored.
	Failed int
	// Dropped counts queued cells dropped by cancellation.
	Dropped int
	// Created, Started, and Finished are the lifecycle timestamps
	// (zero when the transition has not happened yet).
	Created, Started, Finished time.Time
	// Done[i] reports whether Results[i] is valid.
	Done []bool
	// Labels[i] is cell i's label.
	Labels []string
	// Keys[i] is cell i's content-address (shift.Config.Key).
	Keys []string
	// Results[i] is cell i's result, valid iff Done[i].
	Results []shift.RunResult
	// CellErrs[i] is cell i's error message, empty unless the cell
	// failed.
	CellErrs []string
}

// Snapshot returns the job's current status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:              j.id,
		State:           j.state,
		CancelRequested: j.cancelled,
		Cells:           len(j.cells),
		Completed:       j.completed,
		Failed:          j.failed,
		Dropped:         j.dropped,
		Created:         j.created,
		Started:         j.started,
		Finished:        j.finished,
		Done:            make([]bool, len(j.cells)),
		Labels:          make([]string, len(j.cells)),
		Keys:            append([]string(nil), j.keys...),
		Results:         append([]shift.RunResult(nil), j.results...),
		CellErrs:        append([]string(nil), j.cellErrs...),
	}
	for i := range j.cells {
		st.Done[i] = j.cellState[i] == cellDone
		st.Labels[i] = j.cells[i].Label
	}
	return st
}

// EventsSince returns the events appended at or after absolute index
// n, whether the job has reached a terminal state, and a channel
// closed on the next change — so a streaming consumer can replay the
// log from the beginning and then follow it live without polling.
//
// The in-memory log is a bounded window (Config.EventWindow): once a
// huge grid has emitted more events than the window holds, the oldest
// are discarded — each carries a full RunResult, so an unbounded log
// would balloon RSS with the grid size. Positions stay absolute, so a
// live follower's cursor is never shifted by trimming, and a cursor
// that points into the discarded prefix is served by rebuilding those
// events from the per-cell completion-order index and result slots —
// byte-identical to the originals, in the original order. The stream
// contract (one event per finished cell in completion order, then
// exactly one end event, each delivered exactly once to a cursor-
// advancing follower) therefore holds for every subscriber, however
// late or slow.
func (j *Job) EventsSince(n int) (evs []Event, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < j.eventsBase {
		// Rebuild the trimmed positions [n, eventsBase). Every trimmed
		// event is a cell event (the end event is always the newest, so
		// it is never trimmed) and order[p] is the cell that completed
		// at position p.
		evs = make([]Event, 0, j.eventsBase-n+len(j.events))
		for _, idx := range j.order[n:j.eventsBase] {
			evs = append(evs, j.cellEventLocked(int(idx)))
		}
		evs = append(evs, j.events...)
	} else if k := n - j.eventsBase; k < len(j.events) {
		evs = append([]Event(nil), j.events[k:]...)
	}
	return evs, j.state.Terminal(), j.changed
}

// cellEventLocked reconstructs finished cell i's event from its result
// slot. Called with mu held.
func (j *Job) cellEventLocked(i int) Event {
	ev := Event{Type: EventCell, Index: i, Label: j.cells[i].Label, Key: j.keys[i]}
	if j.cellState[i] == cellFailed {
		ev.Err = j.cellErrs[i]
	} else {
		ev.Result = j.results[i]
	}
	return ev
}

// appendEventLocked appends one event and trims the window to the most
// recent eventWindow events. Cell events are also recorded in the
// completion-order index so a trimmed prefix stays reconstructible.
// Called with mu held.
func (j *Job) appendEventLocked(ev Event) {
	if ev.Type == EventCell {
		j.order = append(j.order, int32(ev.Index))
	}
	j.events = append(j.events, ev)
	if j.eventWindow > 0 && len(j.events) > j.eventWindow {
		drop := len(j.events) - j.eventWindow
		j.events = append([]Event(nil), j.events[drop:]...)
		j.eventsBase += drop
	}
}

// broadcast wakes every EventsSince follower. Called with mu held.
func (j *Job) broadcast() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// startCell transitions cell i to running, or reports false if it is
// no longer runnable (dropped by cancellation, or the job is closed).
func (j *Job) startCell(i int, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled || j.cellState[i] != cellQueued {
		return false
	}
	j.cellState[i] = cellRunning
	j.running++
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = now
	}
	return true
}

// completeCell records cell i's outcome, appends its event, and
// finalizes the job if it was the last outstanding cell. It returns
// whether the job just reached a terminal state and, if so, its
// submit-to-finish latency in seconds.
func (j *Job) completeCell(i int, r shift.RunResult, err error, now time.Time) (finished bool, latency float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.running--
	ev := Event{Type: EventCell, Index: i, Label: j.cells[i].Label, Key: j.keys[i]}
	if err != nil {
		j.cellState[i] = cellFailed
		j.failed++
		j.cellErrs[i] = err.Error()
		ev.Err = err.Error()
	} else {
		j.cellState[i] = cellDone
		j.completed++
		j.results[i] = r
		ev.Result = r
	}
	j.appendEventLocked(ev)
	finished, latency = j.maybeFinalize(now)
	j.broadcast()
	return finished, latency
}

// maybeFinalize moves the job to its terminal state once no cell is
// queued or running. Called with mu held; returns whether it
// finalized and the job latency in seconds.
func (j *Job) maybeFinalize(now time.Time) (bool, float64) {
	if j.state.Terminal() || j.running > 0 ||
		j.completed+j.failed+j.dropped < len(j.cells) {
		return false, 0
	}
	switch {
	case j.cancelled:
		j.state = StateCancelled
	case j.failed > 0:
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	j.finished = now
	j.appendEventLocked(Event{Type: EventEnd, State: j.state})
	return true, now.Sub(j.created).Seconds()
}

// cancel requests cancellation: queued cells are dropped immediately,
// running cells keep going. It returns how many queued cells it
// dropped, whether the request took effect (the job was not already
// terminal), whether the job finalized right away (nothing was
// running), and the job latency if it did.
func (j *Job) cancel(now time.Time) (droppedQueued int, tookEffect, finished bool, latency float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.cancelled {
		return 0, false, false, 0
	}
	j.cancelled = true
	for i, cs := range j.cellState {
		if cs == cellQueued {
			j.cellState[i] = cellDropped
			j.dropped++
			droppedQueued++
		}
	}
	finished, latency = j.maybeFinalize(now)
	j.broadcast()
	return droppedQueued, true, finished, latency
}

// ErrQueueFull is returned by Submit when admitting the job would push
// the queue past its bound; the caller should back off and retry.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// ErrDraining is returned by Submit while the manager is draining:
// shutdown has begun, running cells are finishing, and no new work is
// admitted. The caller should retry against another instance or after
// the process restarts.
var ErrDraining = errors.New("jobs: draining")

// Config parameterizes a Manager.
type Config struct {
	// Workers is the number of scheduler goroutines executing cells
	// (0 = runtime.GOMAXPROCS). The engine's own semaphore still bounds
	// concurrent simulations process-wide, so Workers only caps how
	// many job cells compete for engine slots at once.
	Workers int
	// MaxQueue bounds the number of queued (not yet running) cells
	// across all jobs (0 = 1024). Submissions that would exceed it
	// fail with ErrQueueFull.
	MaxQueue int
	// Rate is the per-client admission refill rate in tokens per
	// second; one cell costs one token (0 = 1).
	Rate float64
	// Burst is the per-client bucket capacity; a job with more cells
	// than Burst can never be admitted (0 = 64).
	Burst float64
	// Run executes one cell (required). shiftd passes Engine.RunOne so
	// job cells share the engine with synchronous requests.
	Run func(shift.Config) (shift.RunResult, error)
	// Retries is the number of extra attempts granted to a cell whose
	// run fails with an error Transient classifies as retryable: the
	// cell is re-enqueued (at its original cost priority) instead of
	// failing the job. 0 disables retry.
	Retries int
	// Transient classifies a cell error as retryable (shiftd passes
	// shift.IsTransient, so watchdog timeouts retry but deterministic
	// failures — validation errors, panics — fail immediately). nil
	// disables retry.
	Transient func(error) bool
	// Journal optionally makes accepted jobs durable: submissions,
	// per-cell completions, cancellations, and finalizations are
	// journaled, and Open replays the journal into a recovered job
	// registry (see OpenWAL). nil — the default — keeps the manager
	// purely in-memory, byte-for-byte the pre-durability behavior.
	Journal Journal
	// Lookup resolves a content-address against the result store
	// during recovery (shiftd passes the store's Lookup): a journaled
	// completed cell whose result is still stored is restored without
	// re-simulation; a miss re-enqueues the cell — deterministic
	// simulation makes the recomputed result bit-identical. nil treats
	// every completed cell as a miss.
	Lookup func(key string) (shift.RunResult, bool)
	// EventWindow caps each job's in-memory event log: the most recent
	// EventWindow events are kept verbatim and older ones are
	// reconstructed on demand from cell state (see Job.EventsSince).
	// 0 = 256; negative = unbounded.
	EventWindow int
	// Now supplies the clock (nil = time.Now; tests inject a fake).
	Now func() time.Time
}

// Manager owns the job registry, the admission buckets, and the
// SJF scheduler. All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	buckets *Buckets

	mu       sync.Mutex
	cond     *sync.Cond
	heap     cellHeap
	stale    int // heap entries for cells no longer runnable (cancelled)
	seq      int64
	nextID   int64
	jobs     map[string]*Job
	closed   bool
	draining bool
	running  int // cells currently executing in workers

	// recoveredPending counts recovered non-terminal jobs that have not
	// reached a terminal state since restart; shiftd reports the
	// "recovering" readiness phase while it is nonzero.
	recoveredPending int
	recovery         RecoveryStats

	admitted    int64
	rejected    int64
	cancelled   int64
	retried     int64
	journalErrs int64

	// Completed-job latencies, a bounded ring feeding the percentile
	// stats; count/sum cover every completed job regardless of ring
	// eviction.
	latencies []float64
	latPos    int
	latCount  int64
	latSum    float64
}

// latencyRing bounds the latency samples kept for percentiles.
const latencyRing = 1024

// New returns a running manager with cfg.Workers scheduler goroutines.
// Call Close to stop them. It panics if the journal replay fails; a
// caller wiring a journal should use Open and handle the error.
func New(cfg Config) *Manager {
	m, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("jobs: %v", err))
	}
	return m
}

// Open returns a running manager with cfg.Workers scheduler
// goroutines, first replaying cfg.Journal (when set) into the job
// registry: terminal jobs are reconstructed, incomplete ones are
// re-admitted into the queue with their already-completed cells
// resolved through cfg.Lookup, and new job IDs are guaranteed not to
// collide with journaled ones. Recovery happens before any worker
// starts, so a recovered queue is scheduled exactly like a fresh one.
// Call Close to stop the workers.
func Open(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.EventWindow == 0 {
		cfg.EventWindow = 256
	} else if cfg.EventWindow < 0 {
		cfg.EventWindow = 0 // unbounded
	}
	if cfg.Run == nil {
		panic("jobs: Config.Run is required")
	}
	m := &Manager{
		cfg:     cfg,
		buckets: NewBuckets(cfg.Rate, cfg.Burst, cfg.Now),
		jobs:    make(map[string]*Job),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.Journal != nil {
		if err := m.recover(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// Admit runs the token-bucket admission check for a job of cells cells
// from the given client, debiting the bucket on admission and counting
// rejections. Call it before Submit.
func (m *Manager) Admit(client string, cells int) Decision {
	d := m.buckets.Take(client, float64(cells))
	if !d.OK {
		m.mu.Lock()
		m.rejected++
		m.mu.Unlock()
	}
	return d
}

// Submit registers a new job and enqueues its cells, like SubmitFrom
// with an empty client key.
func (m *Manager) Submit(cells []shift.Cell) (*Job, error) {
	return m.SubmitFrom("", cells)
}

// SubmitFrom registers a new job from the given admission-control
// client and enqueues its cells. It returns ErrQueueFull when the
// queued-cell bound would be exceeded (the rejection is counted),
// ErrDraining during graceful shutdown, and ErrClosed after Close.
// With a journal configured the submission is journaled — durably —
// before it is acknowledged; a journal write failure rejects the
// submission rather than admitting a job that a restart would forget.
func (m *Manager) SubmitFrom(client string, cells []shift.Cell) (*Job, error) {
	if len(cells) == 0 {
		return nil, errors.New("jobs: empty job")
	}
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.draining {
		m.rejected++
		return nil, ErrDraining
	}
	if len(m.heap)-m.stale+len(cells) > m.cfg.MaxQueue {
		m.rejected++
		return nil, ErrQueueFull
	}
	m.nextID++
	j := &Job{
		id:          fmt.Sprintf("j-%06d", m.nextID),
		cells:       append([]shift.Cell(nil), cells...),
		keys:        make([]string, len(cells)),
		created:     now,
		client:      client,
		eventWindow: m.cfg.EventWindow,
		state:       StateQueued,
		cellState:   make([]cellState, len(cells)),
		attempts:    make([]int, len(cells)),
		results:     make([]shift.RunResult, len(cells)),
		cellErrs:    make([]string, len(cells)),
		changed:     make(chan struct{}),
	}
	for i := range j.cells {
		j.keys[i] = j.cells[i].Config.Key()
	}
	if m.cfg.Journal != nil {
		j.wire = entryCells(j.cells)
		e := Entry{Op: OpSubmit, Job: j.id, Client: client, Created: now, Cells: j.wire}
		if err := m.cfg.Journal.Append(e); err != nil {
			m.nextID--
			m.journalErrs++
			return nil, fmt.Errorf("jobs: journal submit: %w", err)
		}
	}
	m.jobs[j.id] = j
	for i := range j.cells {
		m.seq++
		heap.Push(&m.heap, cellItem{job: j, cell: i, cost: EstimateCost(j.cells[i].Config), seq: m.seq})
	}
	m.admitted++
	m.cond.Broadcast()
	return j, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of the job with the given id: queued
// cells are dropped, running cells finish and publish their results.
// It reports whether the id exists; cancelling a terminal job is a
// no-op.
func (m *Manager) Cancel(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	dropped, tookEffect, finished, lat := j.cancel(m.cfg.Now())
	if tookEffect {
		m.journalAppend(Entry{Op: OpCancel, Job: id})
	}
	if finished {
		m.journalEnd(j)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stale += dropped
	if tookEffect {
		m.cancelled++
	}
	if finished {
		m.jobFinishedLocked(j, lat)
	}
	return j, true
}

// Close stops the scheduler: queued cells are discarded and workers
// exit; cells already running finish (and publish) in the background.
// Jobs with discarded cells never reach a terminal state in this
// process — but with a journal their submissions persist, so a restart
// recovers and finishes them. For a clean shutdown call Drain first.
// The journal, if any, is closed; a cell still running when Close
// returns fails its completion append (counted, never fatal) and is
// simply re-run on recovery.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.heap = nil
	m.stale = 0
	m.cond.Broadcast()
	m.mu.Unlock()
	if m.cfg.Journal != nil {
		m.cfg.Journal.Close()
	}
}

// Drain begins graceful shutdown and blocks until every running cell
// has finished (and journaled) or ctx expires. While draining, workers
// stop popping the queue — queued cells stay in the heap, and with a
// journal their submissions are already durable, so they resume after
// restart — and Submit fails with ErrDraining. After a complete drain
// the journal is checkpointed, so the next boot replays one compact
// snapshot instead of the full append history. Drain returns ctx.Err()
// when the grace period expires first; the journal still holds
// everything needed to recover the unfinished cells.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		m.cond.Broadcast()
	}
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()
	for m.running > 0 && ctx.Err() == nil && !m.closed {
		m.cond.Wait()
	}
	err := ctx.Err()
	if err == nil {
		m.checkpointLocked()
	}
	m.mu.Unlock()
	return err
}

// Draining reports whether graceful shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Checkpoint compacts the journal down to a snapshot of the current
// job registry (one record per job). No-op without a journal.
func (m *Manager) Checkpoint() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checkpointLocked()
}

// checkpointLocked compacts the journal. Called with mu held. Cell
// completions appended by workers between the snapshot's assembly and
// the rewrite can be dropped (workers append without mu); replay is
// idempotent and re-runs those cells, so the cost is recomputation,
// never a lost job.
func (m *Manager) checkpointLocked() {
	if m.cfg.Journal == nil {
		return
	}
	if err := m.cfg.Journal.Compact(m.snapshotEntriesLocked()); err != nil {
		m.journalErrs++
	}
}

// maybeCompactLocked compacts once the journal has accumulated enough
// history that a snapshot would shrink it substantially: at least 64
// records and at least 8× the live job count (a snapshot is one record
// per job). Called with mu held.
func (m *Manager) maybeCompactLocked() {
	if m.cfg.Journal == nil {
		return
	}
	if st := m.cfg.Journal.Stats(); st.Records >= 64 && st.Records >= 8*len(m.jobs) {
		m.checkpointLocked()
	}
}

// snapshotEntriesLocked folds the registry into one OpSnap entry per
// job, ID-sorted for a deterministic snapshot. Called with mu held.
func (m *Manager) snapshotEntriesLocked() []Entry {
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]Entry, 0, len(ids))
	for _, id := range ids {
		entries = append(entries, m.jobs[id].snapEntry())
	}
	return entries
}

// snapEntry folds the job's journaled history into one OpSnap record.
func (j *Job) snapEntry() Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wire == nil {
		j.wire = entryCells(j.cells)
	}
	e := Entry{Op: OpSnap, Job: j.id, Client: j.client, Created: j.created,
		Cells: j.wire, Cancelled: j.cancelled}
	if j.state.Terminal() {
		e.State = j.state
	}
	for i, cs := range j.cellState {
		switch cs {
		case cellDone:
			e.Ops = append(e.Ops, CellOp{Cell: i})
		case cellFailed:
			e.Ops = append(e.Ops, CellOp{Cell: i, Err: j.cellErrs[i]})
		}
	}
	return e
}

// journalAppend appends one entry, counting (never propagating) the
// failure: the job still completes in memory, and recovery re-runs
// whatever the journal missed. Must not be called with mu held.
func (m *Manager) journalAppend(e Entry) {
	if m.cfg.Journal == nil {
		return
	}
	if err := m.cfg.Journal.Append(e); err != nil {
		m.mu.Lock()
		m.journalErrs++
		m.mu.Unlock()
	}
}

// journalEnd journals a job's terminal state. Must not be called with
// mu held.
func (m *Manager) journalEnd(j *Job) {
	if m.cfg.Journal == nil {
		return
	}
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	m.journalAppend(Entry{Op: OpEnd, Job: j.id, State: st})
}

// jobFinishedLocked records a job reaching a terminal state: recovered
// jobs decrement the recovering count and are excluded from the
// latency percentiles (their latency would measure the outage, not the
// scheduler); fresh jobs record their latency. Called with mu held.
func (m *Manager) jobFinishedLocked(j *Job, lat float64) {
	if j.recovered {
		if m.recoveredPending > 0 {
			m.recoveredPending--
		}
		return
	}
	m.recordLatencyLocked(lat)
}

// worker pops the cheapest runnable cell and executes it, forever.
// While the manager drains, workers idle instead of popping — the heap
// is preserved for the journal checkpoint — and running cells finish
// normally.
func (m *Manager) worker() {
	for {
		m.mu.Lock()
		for (len(m.heap) == 0 || m.draining) && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		it := heap.Pop(&m.heap).(cellItem)
		started := it.job.startCell(it.cell, m.cfg.Now())
		if !started {
			m.stale--
			m.mu.Unlock()
			continue
		}
		m.running++
		m.mu.Unlock()
		r, err := m.cfg.Run(it.job.cells[it.cell].Config)
		if err != nil && m.retryable(err) && m.requeue(it.job, it.cell) {
			continue
		}
		// Journal the outcome before publishing it: once a follower has
		// seen the completion event, a restart must not forget it. The
		// result itself is already in the store (the engine seeded it
		// during Run), so the journal carries only the index and error.
		e := Entry{Op: OpCell, Job: it.job.id, Cell: it.cell}
		if err != nil {
			e.Err = err.Error()
		}
		m.journalAppend(e)
		finished, lat := it.job.completeCell(it.cell, r, err, m.cfg.Now())
		if finished {
			m.journalEnd(it.job)
		}
		m.mu.Lock()
		m.running--
		if finished {
			m.jobFinishedLocked(it.job, lat)
		}
		m.maybeCompactLocked()
		if m.running == 0 {
			m.cond.Broadcast() // wake a Drain waiter
		}
		m.mu.Unlock()
	}
}

// retryable reports whether the retry policy is on and classifies err
// as transient.
func (m *Manager) retryable(err error) bool {
	return m.cfg.Retries > 0 && m.cfg.Transient != nil && m.cfg.Transient(err)
}

// requeue puts a transiently-failed running cell back on the queue,
// consuming one of its retry attempts. It refuses — so the failure is
// recorded normally — when the cell's attempts are exhausted, the job
// was cancelled, or the manager is closed. Requeue is allowed during a
// drain: the cell re-enters the heap, is checkpointed as unresolved,
// and re-runs after restart. Locks nest Manager.mu → Job.mu, the same
// order the worker's pop-then-start path uses.
func (m *Manager) requeue(j *Job, i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	j.mu.Lock()
	if j.cancelled || j.cellState[i] != cellRunning || j.attempts[i] >= m.cfg.Retries {
		j.mu.Unlock()
		return false
	}
	j.attempts[i]++
	j.cellState[i] = cellQueued
	j.running--
	j.mu.Unlock()
	m.seq++
	heap.Push(&m.heap, cellItem{job: j, cell: i, cost: EstimateCost(j.cells[i].Config), seq: m.seq})
	m.retried++
	m.running--
	m.cond.Broadcast()
	return true
}

// recordLatencyLocked adds one completed-job latency to the ring.
// Called with mu held.
func (m *Manager) recordLatencyLocked(lat float64) {
	if len(m.latencies) < latencyRing {
		m.latencies = append(m.latencies, lat)
	} else {
		m.latencies[m.latPos] = lat
		m.latPos = (m.latPos + 1) % latencyRing
	}
	m.latCount++
	m.latSum += lat
}

// Stats is a point-in-time snapshot of the manager's counters, served
// by shiftd's /v1/stats and /v1/metrics.
type Stats struct {
	// QueueDepth is the number of queued runnable cells (stale entries
	// for cancelled cells excluded).
	QueueDepth int
	// Admitted counts jobs accepted into the queue.
	Admitted int64
	// Rejected counts submissions refused by admission control or the
	// queue bound.
	Rejected int64
	// Cancelled counts jobs whose cancellation took effect.
	Cancelled int64
	// Retried counts cell re-enqueues by the transient-retry policy
	// (one per consumed attempt, across all jobs).
	Retried int64
	// Running is the number of cells currently executing in workers.
	Running int
	// Draining reports that graceful shutdown has begun.
	Draining bool
	// Recovering is the number of recovered jobs that have not reached
	// a terminal state since restart.
	Recovering int
	// JournalErrors counts journal writes that failed (the affected
	// cells re-run on the next recovery; the jobs still completed).
	JournalErrors int64
	// LatencyCount and LatencySum aggregate submit-to-finish latencies
	// (seconds) over every job that reached a terminal state.
	LatencyCount int64
	// LatencySum is the sum of those latencies in seconds.
	LatencySum float64
	// LatencyP50, LatencyP90, and LatencyP99 are percentile latencies
	// in seconds over the most recent completed jobs (up to 1024).
	LatencyP50, LatencyP90, LatencyP99 float64
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		QueueDepth:    len(m.heap) - m.stale,
		Admitted:      m.admitted,
		Rejected:      m.rejected,
		Cancelled:     m.cancelled,
		Retried:       m.retried,
		Running:       m.running,
		Draining:      m.draining,
		Recovering:    m.recoveredPending,
		JournalErrors: m.journalErrs,
		LatencyCount:  m.latCount,
		LatencySum:    m.latSum,
	}
	s.LatencyP50 = percentile(m.latencies, 0.50)
	s.LatencyP90 = percentile(m.latencies, 0.90)
	s.LatencyP99 = percentile(m.latencies, 0.99)
	return s
}

// Recovery returns the recovery counters from the journal replay at
// Open (all zero without a journal or on a fresh state dir).
func (m *Manager) Recovery() RecoveryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// JournalStats reports the journal's current footprint; ok is false
// when no journal is configured.
func (m *Manager) JournalStats() (st JournalStats, ok bool) {
	if m.cfg.Journal == nil {
		return JournalStats{}, false
	}
	return m.cfg.Journal.Stats(), true
}

// percentile returns the nearest-rank q-percentile of samples (0 when
// empty).
func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
