package jobs

import (
	"container/heap"
	"fmt"
	"sort"

	"shift"
)

// This file is journal replay: Open calls recover before any worker
// goroutine exists, so everything here runs single-threaded and
// touches Job fields without locking.

// RecoveryStats counts what the journal replay at Open reconstructed,
// surfaced through shiftd's /v1/stats and /v1/metrics.
type RecoveryStats struct {
	// JobsRecovered is the number of incomplete jobs re-admitted into
	// the queue.
	JobsRecovered int
	// JobsTerminal is the number of jobs replayed directly to a
	// terminal state (done, failed, or cancelled before the restart).
	JobsTerminal int
	// CellsRestored is the number of journaled completed cells whose
	// results were resolved from the result store without
	// re-simulation.
	CellsRestored int
	// CellsRequeued is the number of cells re-enqueued for execution:
	// never finished before the crash, or finished but evicted from the
	// store since (re-running them reproduces the identical result).
	CellsRequeued int
	// TailRecords reports the torn tail the journal discarded at open —
	// the append in flight when the previous process died.
	TailRecords int
	// TailBytes is the size of that discarded tail.
	TailBytes int64
}

// recover replays the journal into the registry. Replay is idempotent
// (duplicate submit or cell entries are no-ops) and order-tolerant:
// terminal states are recomputed from the cell entries, so OpEnd
// records are advisory and a crash between a cell entry and its end
// entry loses nothing.
func (m *Manager) recover() error {
	entries, err := m.cfg.Journal.Replay()
	if err != nil {
		return fmt.Errorf("jobs: journal replay: %w", err)
	}
	js := m.cfg.Journal.Stats()
	m.recovery.TailRecords = js.TailRecords
	m.recovery.TailBytes = js.TailBytes
	for _, e := range entries {
		if e.Op == OpSnap {
			// A compacted job expands to its primitive ops.
			m.applyEntry(Entry{Op: OpSubmit, Job: e.Job, Client: e.Client, Created: e.Created, Cells: e.Cells})
			for _, op := range e.Ops {
				m.applyEntry(Entry{Op: OpCell, Job: e.Job, Cell: op.Cell, Err: op.Err})
			}
			if e.Cancelled {
				m.applyEntry(Entry{Op: OpCancel, Job: e.Job})
			}
			continue
		}
		m.applyEntry(e)
	}
	m.finishRecovery()
	return nil
}

// applyEntry folds one journal record into the registry.
func (m *Manager) applyEntry(e Entry) {
	switch e.Op {
	case OpSubmit:
		if _, ok := m.jobs[e.Job]; ok {
			return
		}
		cells := make([]shift.Cell, len(e.Cells))
		for i, ec := range e.Cells {
			if len(ec.Spec) > 0 {
				// Re-register the spec-compiled workload so the config's
				// "spec:" ID resolves in this process. Registration is
				// content-addressed, so replaying it twice is a no-op; a
				// document that no longer compiles leaves the ID dangling
				// and the cell fails loudly at run time.
				shift.LoadSpec(ec.Spec)
			}
			cells[i] = shift.Cell{Label: ec.Label, Config: ec.Config}
		}
		j := &Job{
			id:          e.Job,
			cells:       cells,
			keys:        make([]string, len(cells)),
			created:     e.Created,
			client:      e.Client,
			wire:        e.Cells,
			recovered:   true,
			eventWindow: m.cfg.EventWindow,
			state:       StateQueued,
			cellState:   make([]cellState, len(cells)),
			attempts:    make([]int, len(cells)),
			results:     make([]shift.RunResult, len(cells)),
			cellErrs:    make([]string, len(cells)),
			changed:     make(chan struct{}),
		}
		for i := range cells {
			j.keys[i] = cells[i].Config.Key()
		}
		m.jobs[e.Job] = j
		// New IDs must never collide with journaled ones.
		var n int64
		if _, err := fmt.Sscanf(e.Job, "j-%d", &n); err == nil && n > m.nextID {
			m.nextID = n
		}
	case OpCell:
		j, ok := m.jobs[e.Job]
		if !ok || e.Cell < 0 || e.Cell >= len(j.cells) {
			return
		}
		if j.cellState[e.Cell] == cellDone || j.cellState[e.Cell] == cellFailed {
			return // duplicate entry; replay is idempotent
		}
		if e.Err != "" {
			// The failure was deterministic (transient errors are retried,
			// not journaled as terminal): replay it rather than re-run it.
			j.cellState[e.Cell] = cellFailed
			j.failed++
			j.cellErrs[e.Cell] = e.Err
			j.appendEventLocked(Event{Type: EventCell, Index: e.Cell,
				Label: j.cells[e.Cell].Label, Key: j.keys[e.Cell], Err: e.Err})
			return
		}
		// A completed cell's result lives content-addressed in the
		// store; a hit restores it without re-simulation, a miss leaves
		// the cell queued — deterministic simulation makes the re-run
		// bit-identical.
		if m.cfg.Lookup != nil {
			if r, ok := m.cfg.Lookup(j.keys[e.Cell]); ok {
				j.cellState[e.Cell] = cellDone
				j.completed++
				j.results[e.Cell] = r
				j.appendEventLocked(Event{Type: EventCell, Index: e.Cell,
					Label: j.cells[e.Cell].Label, Key: j.keys[e.Cell], Result: r})
				m.recovery.CellsRestored++
				return
			}
		}
		// Store miss: the cell stays cellQueued and finishRecovery
		// re-enqueues it.
	case OpCancel:
		if j, ok := m.jobs[e.Job]; ok {
			j.cancelled = true
		}
	case OpEnd:
		// Advisory: the terminal state is recomputed from the cell ops.
	}
}

// finishRecovery settles every replayed job — dropping queued cells of
// cancelled jobs, finalizing jobs whose cells all resolved, and
// re-enqueuing the rest — in ID order so the recovered queue's
// tie-break sequence is deterministic.
func (m *Manager) finishRecovery() {
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	now := m.cfg.Now()
	for _, id := range ids {
		j := m.jobs[id]
		if j.cancelled {
			for i, cs := range j.cellState {
				if cs == cellQueued {
					j.cellState[i] = cellDropped
					j.dropped++
				}
			}
		}
		if finished, _ := j.maybeFinalize(now); finished {
			m.recovery.JobsTerminal++
			continue
		}
		if j.completed+j.failed > 0 {
			j.state = StateRunning
			j.started = j.created
		}
		m.recovery.JobsRecovered++
		m.recoveredPending++
		// Re-enqueue the unresolved cells. Recovery ignores the MaxQueue
		// bound: these cells were admitted before the restart, and
		// refusing them now would strand their jobs.
		for i, cs := range j.cellState {
			if cs != cellQueued {
				continue
			}
			m.seq++
			heap.Push(&m.heap, cellItem{job: j, cell: i, cost: EstimateCost(j.cells[i].Config), seq: m.seq})
			m.recovery.CellsRequeued++
		}
	}
}
