package jobs

import "shift"

// functionalCostFraction is the estimated per-record cost of functional
// fast-forwarding relative to detailed simulation. The measured sampled
// Figure-7 sweep runs ~5x faster at period 40 (BENCH_5.json), which
// puts the functional path at roughly a tenth of the detailed path per
// record; the exact value only shifts SJF ordering between sampled
// policies, never the sampled-before-exact preference.
const functionalCostFraction = 0.1

// EstimateCost returns the estimated execution cost of one cell in
// detailed-record-equivalents: the number of (core × record) steps the
// simulator will take, with functionally fast-forwarded records
// weighted at functionalCostFraction. The scheduler uses it for
// shortest-job-first ordering, so sampled probe cells (whose measure
// window is mostly fast-forwarded) are preferred over exact
// confirmations of the same window. It is a heuristic for ordering
// only — it never affects results.
func EstimateCost(cfg shift.Config) float64 {
	cores := cfg.Cores
	if cores == 0 {
		cores = 16
	}
	warm := float64(cfg.WarmupRecords)
	if warm == 0 {
		warm = 60000
	}
	meas := float64(cfg.MeasureRecords)
	if meas == 0 {
		meas = 60000
	}
	cost := warm + meas
	if p := cfg.Sampling; p.Enabled() {
		interval := float64(p.IntervalRecords)
		if interval == 0 {
			interval = 500
		}
		wf := p.WarmupFraction
		if wf == 0 {
			wf = 0.25
		}
		// One chunk = Period×interval records, of which interval×(1+wf)
		// run detailed (measured interval + detailed warmup prefix) and
		// the rest fast-forward functionally. The spec warmup is fully
		// functional in sampled mode.
		detailed := interval * (1 + wf) / (float64(p.Period) * interval)
		if detailed > 1 {
			detailed = 1
		}
		cost = warm*functionalCostFraction +
			meas*(detailed+(1-detailed)*functionalCostFraction)
	}
	return cost * float64(cores)
}
