module shift

go 1.22
