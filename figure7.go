package shift

import (
	"fmt"
	"strings"

	"shift/internal/stats"
)

// CoverageRow is one bar group of Figure 7: instruction misses covered,
// uncovered, and overpredicted by a design, as percentages of the
// baseline (no-prefetch) miss count.
type CoverageRow struct {
	// Workload and Design identify the bar group.
	Workload, Design string
	// Covered/Uncovered/Overpredicted are percentages of the baseline
	// miss count: misses eliminated by a prefetch, misses remaining,
	// and prefetches issued for blocks never demanded.
	Covered, Uncovered, Overpredicted float64
}

// Figure7 reproduces the paper's Figure 7: covered/uncovered/
// overpredicted instruction misses for PIF_2K, PIF_32K, and SHIFT on each
// workload, normalized to the baseline system's misses. The paper
// reports, on average: SHIFT 81% covered / 16% overpredicted; PIF_32K
// 92% / 13%; PIF_2K 53% / 20%.
type Figure7 struct {
	// Rows holds one entry per (workload, design), in Workloads-major
	// order.
	Rows []CoverageRow
	// Workloads is the outer grid axis, in rendering order.
	Workloads []string
	// Designs is the inner grid axis, in rendering order.
	Designs []Design
}

// RunFigure7 regenerates Figure 7 with real prefetching (cache
// perturbation included). The grid — per workload, a baseline for the
// normalization denominator plus the three compared designs — runs on
// the experiment engine.
func RunFigure7(o Options) (*Figure7, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	designs := []Design{DesignPIF2K, DesignPIF32K, DesignSHIFT}
	var cells []Cell
	for _, w := range o.Workloads {
		cells = append(cells, cell(o.config(w, DesignBaseline)))
		for _, d := range designs {
			cells = append(cells, cell(o.config(w, d)))
		}
	}
	results, err := o.engine().RunAll(cells)
	if err != nil {
		return nil, err
	}

	fig := &Figure7{Workloads: displayNames(o.Workloads), Designs: designs}
	stride := 1 + len(designs)
	for wi, w := range o.Workloads {
		bm := float64(results[wi*stride].Misses)
		for di, d := range designs {
			res := results[wi*stride+1+di]
			row := CoverageRow{
				Workload:      WorkloadDisplayName(w),
				Design:        d.String(),
				Uncovered:     float64(res.Misses) / bm * 100,
				Overpredicted: float64(res.Discards) / bm * 100,
			}
			row.Covered = 100 - row.Uncovered
			if row.Covered < 0 {
				row.Covered = 0
			}
			fig.Rows = append(fig.Rows, row)
		}
	}
	return fig, nil
}

// MeanCovered returns the average covered percentage for a design.
func (f *Figure7) MeanCovered(design Design) float64 {
	var vals []float64
	for _, r := range f.Rows {
		if r.Design == design.String() {
			vals = append(vals, r.Covered)
		}
	}
	return stats.Mean(vals)
}

// MeanOverpredicted returns the average overprediction percentage for a
// design.
func (f *Figure7) MeanOverpredicted(design Design) float64 {
	var vals []float64
	for _, r := range f.Rows {
		if r.Design == design.String() {
			vals = append(vals, r.Overpredicted)
		}
	}
	return stats.Mean(vals)
}

// String renders the figure as a table of bar groups.
func (f *Figure7) String() string {
	t := stats.NewTable("Workload", "Design", "Covered (%)", "Uncovered (%)", "Overpredicted (%)")
	for _, r := range f.Rows {
		t.AddRow(r.Workload, r.Design,
			fmt.Sprintf("%.1f", r.Covered),
			fmt.Sprintf("%.1f", r.Uncovered),
			fmt.Sprintf("%.1f", r.Overpredicted))
	}
	var b strings.Builder
	b.WriteString("Figure 7: Instruction misses covered and overpredicted (% of baseline misses)\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Averages: SHIFT %.1f%%+%.1f%%  PIF_32K %.1f%%+%.1f%%  PIF_2K %.1f%%+%.1f%%\n",
		f.MeanCovered(DesignSHIFT), f.MeanOverpredicted(DesignSHIFT),
		f.MeanCovered(DesignPIF32K), f.MeanOverpredicted(DesignPIF32K),
		f.MeanCovered(DesignPIF2K), f.MeanOverpredicted(DesignPIF2K))
	b.WriteString("(paper: SHIFT 81%+16%, PIF_32K 92%+13%, PIF_2K 53%+20%)\n")
	return b.String()
}
