package shift

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"shift/internal/exp"
	"shift/internal/store"
)

// errCellSkipped marks an in-flight claim abandoned un-simulated
// because its owning RunAll failed on a different cell. Waiters treat
// it as "nobody computed this" and take the cell over rather than
// failing a perfectly simulable request.
var errCellSkipped = errors.New("skipped: owning grid failed on another cell")

// Cell is one independent unit of an experiment grid: a fully-specified
// simulation (workload × design × config variant) that the engine can
// execute in any order relative to every other cell.
type Cell struct {
	// Label names the cell in diagnostics ("workload/design/variant");
	// it has no effect on execution or on result identity.
	Label string
	// Config is the simulation to run.
	Config Config
}

// cell is a convenience constructor for grid builders.
func cell(cfg Config, labelParts ...string) Cell {
	label := cfg.Workload + "/" + cfg.Design.String()
	for _, p := range labelParts {
		label += "/" + p
	}
	return Cell{Label: label, Config: cfg}
}

// Engine executes experiment cells across a bounded worker pool and
// merges results deterministically: results are keyed and ordered by
// cell, never by completion time, so a parallel run is bit-identical to
// a serial run for the same seed. An optional ResultStore memoizes
// cells content-addressed by config hash, so repeated sweeps (and grids
// sharing cells, e.g. the per-workload baselines common to most
// figures) skip already-computed work.
//
// Cells that consume the same trace stream (equal Config.StreamKeys —
// the common shape of a figure grid, where every design of a workload
// reads the identical per-core record stream) are partitioned into
// batches and scheduled as units on the pool: each batch runs through
// RunBatch, generating its stream once and fanning it out to every
// member, and resolves all of its cells' in-flight claims when it
// completes. A batch occupies one worker slot (its members execute in
// lockstep on one goroutine), so Parallelism keeps meaning "concurrent
// worker threads". Batching never changes results — only which work is
// shared — and falls back to per-cell execution if a batch cannot run.
//
// An Engine is safe for concurrent use: RunAll may be called from many
// goroutines (the shiftd service shares one Engine across all
// requests), and concurrent calls that need the same cell share a
// single simulation through in-flight deduplication — the first caller
// simulates, every overlapping caller waits for that result. The
// deduplication is best-effort (a cell finishing in the instant between
// another caller's store miss and in-flight check is recomputed —
// harmlessly, since the simulator is deterministic) and never changes
// results, only work. The parallelism bound caps simulations across
// all concurrent callers combined, so operator limits hold under load.
type Engine struct {
	opts  exp.Options
	store ResultStore

	// sem bounds simulations ACROSS RunAll calls: exp.Map's pool only
	// bounds one call, but a shared engine (shiftd) serves many callers
	// concurrently, and the operator's parallelism setting must cap the
	// process, not each request. Every simulation site acquires a slot.
	sem chan struct{}

	// flight deduplicates concurrent computations of one cell across
	// RunAll calls; simulated/deduped feed Stats.
	flight    store.Flight[RunResult]
	simulated atomic.Int64
	deduped   atomic.Int64

	// batched counts cells executed through the shared-stream batch
	// path; streamsShared counts the trace-stream generations that path
	// avoided (K-1 per batch of K). noBatch forces per-cell execution
	// (Options.DisableBatching — diagnostics and A/B benchmarking).
	batched       atomic.Int64
	streamsShared atomic.Int64
	noBatch       bool

	// sampledCells counts cells simulated in sampled mode (interval
	// sampling with functional warming) rather than exactly.
	sampledCells atomic.Int64

	// Containment (containment.go): panics inside cell/batch execution
	// are recovered into typed PanicErrors, and when cellTimeout is
	// armed (SetCellTimeout) a per-cell watchdog converts stuck cells
	// into typed TimeoutErrors instead of wedging a worker slot.
	cellTimeout time.Duration
	panicked    atomic.Int64
	timedOut    atomic.Int64

	// runCell/runBatch are test seams for the chaos suite: when set
	// (per engine, never globally) they replace Run/RunBatch so tests
	// can inject panicking or wedged simulations.
	runCell  func(Config) (RunResult, error)
	runBatch func([]Config) ([]RunResult, error)
}

// NewEngine returns an engine with the given worker-pool bound
// (0 = runtime.GOMAXPROCS, 1 = serial) and optional result store
// (nil = none; every cell is simulated). The bound caps concurrent
// simulations across all callers of the engine combined.
func NewEngine(parallelism int, rs ResultStore) *Engine {
	p := parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		opts:  exp.Options{Parallelism: parallelism},
		store: rs,
		sem:   make(chan struct{}, p),
	}
}

// SetBatching enables or disables the shared-stream batch path.
// Batching is on by default and never changes results — only how much
// per-record work is shared — so disabling it is for diagnostics and
// A/B measurement. Not safe to call concurrently with RunAll.
func (e *Engine) SetBatching(on bool) { e.noBatch = !on }

// Executor is the engine's cell-execution strategy: how one cell, or
// one shared-stream batch, actually gets simulated once the engine has
// decided it must run (store miss, not already in flight). The default
// strategy is in-process Run/RunBatch; a cluster coordinator installs
// itself here to route batches to remote workers instead.
//
// The determinism contract transfers whole: ExecCell must return a
// result bit-identical to Run(cfg), and ExecBatch to RunBatch(cfgs) —
// the simulator is a pure function of its Config, so any executor that
// ultimately runs the same simulator (locally, on a worker, or on a
// retry after a worker died) satisfies this by construction. Everything
// else the engine does — store memoization, in-flight deduplication,
// stream-key batching, cell-keyed merge — is unchanged, which is what
// keeps a clustered sweep byte-identical to a single-host one.
type Executor interface {
	// ExecCell runs one cell's simulation.
	ExecCell(cfg Config) (RunResult, error)
	// ExecBatch runs one shared-stream batch (equal StreamKeys),
	// returning results positionally. An error fails the whole batch;
	// the engine then falls back to per-cell ExecCell calls, which
	// reproduce exact per-cell errors.
	ExecBatch(cfgs []Config) ([]RunResult, error)
}

// SetExecutor replaces the engine's execution strategy (nil restores
// the in-process default). Containment still wraps the executor: a
// panicking executor costs one cell, and the watchdog (SetCellTimeout)
// still frees wedged worker slots. Not safe to call concurrently with
// RunAll.
func (e *Engine) SetExecutor(x Executor) {
	if x == nil {
		e.runCell, e.runBatch = nil, nil
		return
	}
	e.runCell, e.runBatch = x.ExecCell, x.ExecBatch
}

// simulate runs one cell's simulation under the engine-wide
// concurrency bound and counts it.
func (e *Engine) simulate(cfg Config) (RunResult, error) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	e.simulated.Add(1)
	if cfg.Sampling.Enabled() {
		e.sampledCells.Add(1)
	}
	return e.execCell(cfg)
}

// engine builds the driver-facing engine from experiment options.
func (o Options) engine() *Engine {
	if o.Engine != nil {
		return o.Engine
	}
	e := NewEngine(o.Parallelism, o.Cache)
	e.noBatch = o.DisableBatching
	return e
}

// EngineStats is a point-in-time snapshot of an engine's work counters,
// exposed by shiftd's /v1/stats.
type EngineStats struct {
	// StoreHits and StoreMisses are the attached store's cumulative
	// lookup counts (zero when no store is attached).
	StoreHits, StoreMisses int64
	// StoreCells is the number of results currently stored.
	StoreCells int
	// Simulated counts cells this engine actually simulated.
	Simulated int64
	// Deduped counts cells served by waiting on a concurrent in-flight
	// simulation instead of re-running it.
	Deduped int64
	// Inflight is the number of cells being simulated right now.
	Inflight int
	// Batched counts cells executed through the shared-stream batch
	// path (batches of two or more cells with equal StreamKeys).
	Batched int64
	// StreamsShared counts trace-stream generations avoided by
	// batching: a batch of K cells generates its stream once instead of
	// K times, contributing K-1.
	StreamsShared int64
	// SampledCells counts cells simulated in sampled mode (interval
	// sampling with functional warming) rather than exactly. Sampled
	// and exact results are keyed separately, so the two populations
	// never mix in the store.
	SampledCells int64
	// Panicked counts simulation panics recovered into typed per-cell
	// errors (PanicError). A non-zero count is a simulator bug worth a
	// look — but it cost one cell, not the process.
	Panicked int64
	// TimedOut counts cells (and batches) the watchdog abandoned with a
	// TimeoutError after exceeding the cell timeout.
	TimedOut int64
	// Capacity is the worker-pool bound: the maximum number of
	// simulations in flight at once. Inflight ≥ Capacity means the pool
	// is saturated (shiftd's /v1/readyz reports it when work is also
	// queued).
	Capacity int
}

// Stats returns a snapshot of the engine's counters. Safe to call
// concurrently with RunAll.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Simulated:     e.simulated.Load(),
		Deduped:       e.deduped.Load(),
		Inflight:      e.flight.Len(),
		Batched:       e.batched.Load(),
		StreamsShared: e.streamsShared.Load(),
		SampledCells:  e.sampledCells.Load(),
		Panicked:      e.panicked.Load(),
		TimedOut:      e.timedOut.Load(),
		Capacity:      cap(e.sem),
	}
	if e.store != nil {
		s.StoreHits, s.StoreMisses = e.store.Stats()
		s.StoreCells = e.store.Len()
	}
	return s
}

// lookup consults the attached store, tolerating both a nil interface
// and a nil concrete store.
func (e *Engine) lookup(key string) (RunResult, bool) {
	if e.store == nil {
		return RunResult{}, false
	}
	return e.store.Lookup(key)
}

// RunAll executes every cell and returns the results in cell order:
// out[i] is cells[i]'s result. Duplicate configurations within the grid
// are simulated once and fanned out; cells present in the store are not
// re-simulated; cells already being simulated by a concurrent RunAll
// are waited on, not recomputed. On failure RunAll returns the error of
// the lowest-index failing cell, annotated with its label.
func (e *Engine) RunAll(cells []Cell) ([]RunResult, error) {
	keys := make([]string, len(cells))
	byKey := make(map[string]RunResult, len(cells))
	seen := make(map[string]bool, len(cells))
	// Partition first occurrences of unique uncached configs into cells
	// this call owns (it will simulate them and publish the results) and
	// cells owned by a concurrent RunAll (it will wait for theirs).
	type waiter struct {
		idx  int
		call *store.Call[RunResult]
	}
	var owned []int
	var ownedCalls []*store.Call[RunResult]
	var waits []waiter
	for i := range cells {
		k := cells[i].Config.Key()
		keys[i] = k
		if seen[k] {
			continue
		}
		seen[k] = true
		if r, ok := e.lookup(k); ok {
			byKey[k] = r
			continue
		}
		c, owner := e.flight.Claim(k)
		if owner {
			owned = append(owned, i)
			ownedCalls = append(ownedCalls, c)
		} else {
			waits = append(waits, waiter{i, c})
			e.deduped.Add(1)
		}
	}

	// Partition the owned cells into stream-sharing batches and
	// simulate batch by batch. Each result is stored and published to
	// concurrent waiters the moment its batch completes, inside the
	// worker — not after the barrier — so waiters never outlive the
	// work they wait on. Workers write disjoint ownedErrs/ownedResults
	// entries, so the shared slices need no locking.
	//
	// Workers report no error to the pool: exp.Map's early exit skips
	// indices above the lowest failure, and batch indices do not order
	// like cell indices (a later batch can hold an earlier cell), so a
	// skip could drop the error of the globally lowest-index failing
	// cell and make the returned error depend on Parallelism. Failing
	// grids are rare (config validation) and their cells cheap, so
	// every batch always runs and the selection below stays exactly the
	// serial-loop error.
	batches := batchOwned(cells, owned)
	ownedErrs := make([]error, len(owned))
	ownedResults := make([]RunResult, len(owned))
	_, _ = exp.Map(e.opts, len(batches), func(bi int) (struct{}, error) {
		e.runOwnedBatch(cells, keys, owned, ownedCalls, batches[bi], ownedErrs, ownedResults)
		return struct{}{}, nil
	})
	// Defensive: a claim left unresolved would hang concurrent waiters
	// forever. Every worker resolves its cells on success and on
	// failure, so this sweep is expected to find nothing; exp.Map has
	// quiesced, so an unresolved call can no longer race with a worker.
	for j, c := range ownedCalls {
		select {
		case <-c.Done():
		default:
			e.flight.Resolve(keys[owned[j]], c, RunResult{}, errCellSkipped)
		}
	}

	// Collect results simulated by concurrent RunAll calls. A waiter
	// whose owner abandoned the cell (errCellSkipped) computes it
	// itself — another caller's bad grid must not fail this one.
	waitErrs := make([]error, len(waits))
	for wi, w := range waits {
		r, err := w.call.Wait()
		if errors.Is(err, errCellSkipped) {
			r, err = e.runShared(keys[w.idx], cells[w.idx])
		}
		if err != nil {
			waitErrs[wi] = err
			continue
		}
		byKey[keys[w.idx]] = r
	}

	// Surface the error of the lowest-index failing cell — exactly the
	// error a serial loop would have stopped on, whether the cell was
	// simulated here or by a concurrent caller.
	failIdx, failErr := len(cells), error(nil)
	for j, err := range ownedErrs {
		if err != nil && owned[j] < failIdx {
			failIdx, failErr = owned[j], err
		}
	}
	for wi, err := range waitErrs {
		if err != nil && waits[wi].idx < failIdx {
			failIdx, failErr = waits[wi].idx, err
		}
	}
	if failErr != nil {
		return nil, failErr
	}

	for j := range owned {
		byKey[keys[owned[j]]] = ownedResults[j]
	}
	out := make([]RunResult, len(cells))
	for i := range cells {
		out[i] = byKey[keys[i]]
	}
	return out, nil
}

// batchOwned partitions the owned cells (positions into `owned`) into
// batches of cells consuming the same trace stream, keyed by
// Config.StreamKey. Batch order follows the first appearance of each
// stream and members stay in ascending cell order, so the schedule is
// deterministic for a given grid.
func batchOwned(cells []Cell, owned []int) [][]int {
	idx := make(map[string]int, len(owned))
	var batches [][]int
	for j, i := range owned {
		sk := cells[i].Config.StreamKey()
		bi, ok := idx[sk]
		if !ok {
			bi = len(batches)
			idx[sk] = bi
			batches = append(batches, nil)
		}
		batches[bi] = append(batches[bi], j)
	}
	return batches
}

// runOwnedBatch executes one stream-sharing batch of owned cells under
// a single worker slot: the batched fast path generates the shared
// stream once and simulates every member off it; if the batch cannot
// run (or batching is disabled, or the batch is a single cell) the
// members run individually, which preserves exact per-cell errors. Each
// member's result is stored and its in-flight claim resolved here, in
// the worker; per-cell errors land in errs for RunAll's deterministic
// lowest-index selection.
func (e *Engine) runOwnedBatch(cells []Cell, keys []string, owned []int, ownedCalls []*store.Call[RunResult], members []int, errs []error, results []RunResult) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	if len(members) >= 2 && !e.noBatch {
		cfgs := make([]Config, len(members))
		for mi, j := range members {
			cfgs[mi] = cells[owned[j]].Config
		}
		rs, err := e.execBatch(cfgs)
		if err == nil {
			e.simulated.Add(int64(len(members)))
			e.batched.Add(int64(len(members)))
			e.streamsShared.Add(int64(len(members) - 1))
			if cfgs[0].Sampling.Enabled() {
				e.sampledCells.Add(int64(len(members)))
			}
			for mi, j := range members {
				results[j] = rs[mi]
				if e.store != nil {
					e.store.Store(keys[owned[j]], rs[mi])
				}
				e.flight.Resolve(keys[owned[j]], ownedCalls[j], rs[mi], nil)
			}
			return
		}
		// Fall through: per-cell execution reproduces the exact error
		// (and result) of every member — the simulator is deterministic,
		// so partially-simulated batch work is safely recomputed.
	}

	for _, j := range members {
		c := cells[owned[j]]
		e.simulated.Add(1)
		if c.Config.Sampling.Enabled() {
			e.sampledCells.Add(1)
		}
		r, err := e.execCell(c.Config)
		if err != nil {
			err = fmt.Errorf("cell %s: %w", c.Label, err)
			errs[j] = err
		} else if e.store != nil {
			e.store.Store(keys[owned[j]], r)
		}
		results[j] = r
		e.flight.Resolve(keys[owned[j]], ownedCalls[j], r, err)
	}
}

// runShared computes one cell through the store and the in-flight
// table: store hit, wait on a live owner, or simulate here. It loops on
// errCellSkipped so a chain of abandoned claims cannot starve the
// caller — eventually it either finds a result or owns the claim.
func (e *Engine) runShared(key string, c Cell) (RunResult, error) {
	for {
		if r, ok := e.lookup(key); ok {
			return r, nil
		}
		call, owner := e.flight.Claim(key)
		if !owner {
			r, err := call.Wait()
			if errors.Is(err, errCellSkipped) {
				continue
			}
			return r, err
		}
		r, err := e.simulate(c.Config)
		if err != nil {
			err = fmt.Errorf("cell %s: %w", c.Label, err)
		} else if e.store != nil {
			e.store.Store(key, r)
		}
		e.flight.Resolve(key, call, r, err)
		return r, err
	}
}

// RunOne executes a single configuration through the engine (hitting
// the result store when one is attached).
func (e *Engine) RunOne(cfg Config) (RunResult, error) {
	res, err := e.RunAll([]Cell{cell(cfg)})
	if err != nil {
		return RunResult{}, err
	}
	return res[0], nil
}

// run executes one configuration with the options' engine settings.
func (o Options) run(cfg Config) (RunResult, error) {
	return o.engine().RunOne(cfg)
}

// expOptions exposes the worker-pool bound to drivers whose cells are
// not plain Configs (consolidation groups, SAB parameter mutations).
func (o Options) expOptions() exp.Options {
	return exp.Options{Parallelism: o.Parallelism}
}
