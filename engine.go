package shift

import (
	"fmt"

	"shift/internal/exp"
)

// Cell is one independent unit of an experiment grid: a fully-specified
// simulation (workload × design × config variant) that the engine can
// execute in any order relative to every other cell.
type Cell struct {
	// Label names the cell in diagnostics ("workload/design/variant");
	// it has no effect on execution or on result identity.
	Label string
	// Config is the simulation to run.
	Config Config
}

// cell is a convenience constructor for grid builders.
func cell(cfg Config, labelParts ...string) Cell {
	label := cfg.Workload + "/" + cfg.Design.String()
	for _, p := range labelParts {
		label += "/" + p
	}
	return Cell{Label: label, Config: cfg}
}

// Engine executes experiment cells across a bounded worker pool and
// merges results deterministically: results are keyed and ordered by
// cell, never by completion time, so a parallel run is bit-identical to
// a serial run for the same seed. An optional ResultCache memoizes
// cells content-addressed by config hash, so repeated sweeps (and grids
// sharing cells, e.g. the per-workload baselines common to most
// figures) skip already-computed work.
type Engine struct {
	opts  exp.Options
	cache *ResultCache
}

// NewEngine returns an engine with the given worker-pool bound
// (0 = runtime.GOMAXPROCS, 1 = serial) and optional memoization cache
// (nil = none).
func NewEngine(parallelism int, cache *ResultCache) *Engine {
	return &Engine{opts: exp.Options{Parallelism: parallelism}, cache: cache}
}

// engine builds the driver-facing engine from experiment options.
func (o Options) engine() *Engine { return NewEngine(o.Parallelism, o.Cache) }

// RunAll executes every cell and returns the results in cell order:
// out[i] is cells[i]'s result. Duplicate configurations within the grid
// are simulated once and fanned out; cached cells are not re-simulated.
// On failure RunAll returns the error of the lowest-index failing cell,
// annotated with its label.
func (e *Engine) RunAll(cells []Cell) ([]RunResult, error) {
	keys := make([]string, len(cells))
	byKey := make(map[string]RunResult, len(cells))
	seen := make(map[string]bool, len(cells))
	var pending []int // first-occurrence index of each unique uncached config
	for i := range cells {
		k := cells[i].Config.Key()
		keys[i] = k
		if seen[k] {
			continue
		}
		seen[k] = true
		if r, ok := e.cache.lookup(k); ok {
			byKey[k] = r
			continue
		}
		pending = append(pending, i)
	}

	computed, err := exp.Map(e.opts, len(pending), func(j int) (RunResult, error) {
		c := cells[pending[j]]
		r, err := Run(c.Config)
		if err != nil {
			return RunResult{}, fmt.Errorf("cell %s: %w", c.Label, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for j, r := range computed {
		k := keys[pending[j]]
		byKey[k] = r
		e.cache.store(k, r)
	}

	out := make([]RunResult, len(cells))
	for i := range cells {
		out[i] = byKey[keys[i]]
	}
	return out, nil
}

// RunOne executes a single configuration through the engine (hitting
// the memo cache when one is attached).
func (e *Engine) RunOne(cfg Config) (RunResult, error) {
	res, err := e.RunAll([]Cell{cell(cfg)})
	if err != nil {
		return RunResult{}, err
	}
	return res[0], nil
}

// run executes one configuration with the options' engine settings.
func (o Options) run(cfg Config) (RunResult, error) {
	return o.engine().RunOne(cfg)
}

// expOptions exposes the worker-pool bound to drivers whose cells are
// not plain Configs (consolidation groups, SAB parameter mutations).
func (o Options) expOptions() exp.Options {
	return exp.Options{Parallelism: o.Parallelism}
}
