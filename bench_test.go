package shift

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// The benchmarks below regenerate every figure and table of the paper's
// evaluation at a reduced-but-meaningful scale (QuickOptions with two
// representative workloads where the full suite is not required), and
// report the headline metric of each figure via b.ReportMetric. Run the
// full-scale versions with cmd/shiftsim.

// benchOptions is the common reduced scale.
func benchOptions() Options {
	o := QuickOptions()
	o.Workloads = []string{"OLTP Oracle", "Web Search"}
	return o
}

// BenchmarkFigure1 regenerates the speedup-vs-miss-elimination study
// (paper: linear trend, 31% geo-mean speedup at 100%).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := RunFigure1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.PerfectGeoMean(), "perfect-speedup")
	}
}

// BenchmarkFigure2 regenerates the PIF performance-density scatter
// (paper: PD gain on Fat-OoO, PD loss on Lean-IO).
func BenchmarkFigure2(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"Web Search"}
	for i := 0; i < b.N; i++ {
		pd, err := RunPerfDensity(o)
		if err != nil {
			b.Fatal(err)
		}
		if p := pd.Point(LeanIO, DesignPIF32K); p != nil {
			b.ReportMetric(p.PD, "pif-leanio-pd")
		}
	}
}

// BenchmarkFigure3 regenerates the cross-core stream commonality study
// (paper: >90%, up to 96%).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := RunFigure3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Mean(), "commonality-%")
	}
}

// BenchmarkFigure6 regenerates the coverage-vs-history-size curves
// (paper: SHIFT strictly above PIF; knee at 32K records).
func BenchmarkFigure6(b *testing.B) {
	sizes := []int{2048, 8192, 32768, 131072}
	for i := 0; i < b.N; i++ {
		fig, err := RunFigure6(benchOptions(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.SHIFT[2], "shift-cov-32K-%")
		b.ReportMetric(fig.PIF[2], "pif-cov-32K-%")
	}
}

// BenchmarkFigure7 regenerates covered/uncovered/overpredicted misses
// (paper averages: SHIFT 81%, PIF_32K 92%, PIF_2K 53%).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := RunFigure7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.MeanCovered(DesignSHIFT), "shift-covered-%")
		b.ReportMetric(fig.MeanCovered(DesignPIF32K), "pif32k-covered-%")
		b.ReportMetric(fig.MeanCovered(DesignPIF2K), "pif2k-covered-%")
	}
}

// BenchmarkFigure7Sweep measures the Figure 7 grid on the experiment
// engine in three configurations: the default batched serial schedule
// (all designs of a workload simulated in one pass off a shared
// stream), the unbatched serial schedule (per-cell execution — the
// pre-batching baseline, kept for the committed batched-speedup
// record), and a 4-worker batched pool. The engine merges results by
// cell and batching shares only design-independent work, so all three
// produce identical numeric output (asserted against the first run);
// cmd/benchgate turns serial vs unbatched into the batched-speedup
// gate and serial vs parallel4 into the parallel-speedup gate (the
// latter needs >= 4 CPUs to mean anything — the grid holds one batch
// per workload).
// Compare with: go test -bench BenchmarkFigure7Sweep -benchtime 3x
func BenchmarkFigure7Sweep(b *testing.B) {
	reference, err := RunFigure7(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		par     int
		noBatch bool
	}{
		{"serial", 1, false},
		{"unbatched", 1, true},
		{"parallel4", 4, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			o := benchOptions()
			o.Parallelism = bc.par
			o.DisableBatching = bc.noBatch
			for i := 0; i < b.N; i++ {
				fig, err := RunFigure7(o)
				if err != nil {
					b.Fatal(err)
				}
				if !reflect.DeepEqual(fig, reference) {
					b.Fatalf("case %s changed the numeric output", bc.name)
				}
			}
			b.ReportMetric(reference.MeanCovered(DesignSHIFT), "shift-covered-%")
		})
	}
}

// BenchmarkSampledFigure7 measures the sampled execution mode against
// exact simulation on the Figure 7 grid at a long measurement window
// (25k warmup + 100k measured records per core, where sampling pays:
// the policy simulates 1 interval in 40 in detail and fast-forwards
// the rest with functional warming). Both cases run the engine's
// default batched serial schedule, so the ratio isolates what sampling
// buys. The sampled case also reports its accuracy against the exact
// reference results: max-rel-err is the worst relative Throughput
// (IPC-class) deviation across the grid's cells, and max-mpki-rel-err
// the worst MPKI deviation (informational — the effective-miss process
// is bursty at interval granularity, which is why sampled results
// carry confidence intervals; see ARCHITECTURE.md).
//
// cmd/benchgate turns exact vs sampled ns/op into the committed
// sampled_speedup and the max-rel-err metric into sampled_max_rel_err
// (CI gates: >= 5.0x and <= 0.02).
func BenchmarkSampledFigure7(b *testing.B) {
	exactOpts := QuickOptions()
	exactOpts.Workloads = []string{"OLTP Oracle", "Web Search"}
	exactOpts.Parallelism = 1
	exactOpts.MeasureRecords = 100000
	sampledOpts := exactOpts
	sampledOpts.Sampling = Sampling{Period: 40, IntervalRecords: 500, WarmupFraction: 0.3}

	grid := func(o Options) []Cell {
		var cells []Cell
		for _, w := range o.Workloads {
			for _, d := range []Design{DesignBaseline, DesignPIF2K, DesignPIF32K, DesignSHIFT} {
				cells = append(cells, Cell{Label: w + "/" + d.String(), Config: o.config(w, d)})
			}
		}
		return cells
	}
	run := func(b *testing.B, o Options) []RunResult {
		rs, err := NewEngine(1, nil).RunAll(grid(o))
		if err != nil {
			b.Fatal(err)
		}
		return rs
	}

	var reference []RunResult
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reference = run(b, exactOpts)
		}
	})
	b.Run("sampled", func(b *testing.B) {
		if reference == nil {
			// The exact case was filtered out; compute the (identical
			// on every run) reference without timing it.
			b.StopTimer()
			reference = run(b, exactOpts)
			b.StartTimer()
		}
		var maxTput, maxMPKI float64
		for i := 0; i < b.N; i++ {
			rs := run(b, sampledOpts)
			maxTput, maxMPKI = 0, 0
			for j := range rs {
				if r := relErr(rs[j].Throughput, reference[j].Throughput); r > maxTput {
					maxTput = r
				}
				if r := relErr(rs[j].MPKI, reference[j].MPKI); r > maxMPKI {
					maxMPKI = r
				}
			}
		}
		b.ReportMetric(maxTput, "max-rel-err")
		b.ReportMetric(maxMPKI, "max-mpki-rel-err")
	})
}

// relErr returns |got-want|/|want| (0 when want is 0).
func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	r := (got - want) / want
	if r < 0 {
		r = -r
	}
	return r
}

// BenchmarkFigure8 regenerates the headline performance comparison
// (paper: SHIFT 19% mean speedup, >90% of PIF_32K's benefit).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := RunFigure8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Geo[DesignSHIFT.String()], "shift-speedup")
		b.ReportMetric(fig.SHIFTRetainsPIFBenefit(), "benefit-vs-pif")
	}
}

// BenchmarkFigure9 regenerates the LLC traffic overhead study
// (paper: ~6% log + ~7% discard traffic on average).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := RunFigure9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.MeanLogTraffic(), "log-traffic-%")
		b.ReportMetric(fig.MeanDiscard(), "discard-traffic-%")
	}
}

// BenchmarkFigure10 regenerates the workload-consolidation study
// (paper: SHIFT at 95% of PIF_32K's absolute performance).
func BenchmarkFigure10(b *testing.B) {
	o := QuickOptions()
	for i := 0; i < b.N; i++ {
		fig, err := RunFigure10(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Geo[DesignSHIFT.String()], "shift-speedup")
		b.ReportMetric(fig.SHIFTvsPIF32KAbsolute(), "vs-pif32k")
	}
}

// BenchmarkPerfDensity regenerates the Section 5.6 PD table
// (paper: SHIFT beats PIF_32K's PD by 2%/16%/59% across core types).
func BenchmarkPerfDensity(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"Web Search"}
	for i := 0; i < b.N; i++ {
		pd, err := RunPerfDensity(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pd.SHIFTPDGainOver(DesignPIF32K, LeanIO), "pd-gain-leanio")
	}
}

// BenchmarkPower regenerates the Section 5.7 power estimate
// (paper: <150mW for the 16-core CMP).
func BenchmarkPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := RunPowerStudy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.MaxMW, "max-mW")
	}
}

// BenchmarkStorage regenerates the Section 5.1 storage table (analytic).
func BenchmarkStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunStorageReport()
		b.ReportMetric(r.AreaRatio, "pif/shift-area-ratio")
	}
}

// BenchmarkSensitivityRegionSpan ablates the spatial region size
// (paper Section 4.1: 8 is the tuned value).
func BenchmarkSensitivityRegionSpan(b *testing.B) {
	benchSensitivity(b, "region span")
}

// BenchmarkSensitivityLookahead ablates the stream lookahead
// (paper Section 4.1: 5 is the tuned value).
func BenchmarkSensitivityLookahead(b *testing.B) {
	benchSensitivity(b, "lookahead")
}

// BenchmarkSensitivitySABCapacity ablates the stream buffer capacity
// (paper Section 4.1: 12 is the tuned value).
func BenchmarkSensitivitySABCapacity(b *testing.B) {
	benchSensitivity(b, "SAB capacity")
}

// BenchmarkSensitivityStreams ablates the number of stream buffers
// (paper Section 4.1: 4 streams).
func BenchmarkSensitivityStreams(b *testing.B) {
	benchSensitivity(b, "streams")
}

func benchSensitivity(b *testing.B, param string) {
	o := benchOptions()
	o.Workloads = []string{"Web Search"}
	for i := 0; i < b.N; i++ {
		s, err := RunSensitivity(o)
		if err != nil {
			b.Fatal(err)
		}
		v, sp := s.Best(param)
		b.ReportMetric(float64(v), "best-value")
		b.ReportMetric(sp, "best-speedup")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (records simulated per second on the 16-core Table I system).
//
// It also reports allocs/record, the hot-path allocation gate: a run
// allocates only during construction and warmup growth (workload build,
// system setup, buffer sizing), so amortized over the ~400k simulated
// records the figure must stay well under the one-alloc-per-record
// level the steady-state test (internal/sim TestStepZeroAllocSteadyState*)
// pins to exactly zero. Regressions that reintroduce per-record churn
// show up here as a jump of 1.0 or more.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := DefaultRunConfig("Web Search", DesignSHIFT)
	cfg.WarmupRecords = 5000
	cfg.MeasureRecords = 20000
	b.ReportAllocs()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	var total, simulated int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Records
		simulated += (cfg.WarmupRecords + cfg.MeasureRecords) * int64(cfg.Cores)
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "records/s")
	if simulated > 0 {
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(simulated), "allocs/record")
	}
}

// Example of regenerating a figure programmatically; also exercises the
// String renderers under `go test`.
func ExampleRunStorageReport() {
	r := RunStorageReport()
	fmt.Println(r.SHIFTHistoryLines)
	// Output: 2731
}

// BenchmarkGeneratorChoice regenerates the Section 6.1 study
// (paper: no sensitivity to which core records the shared history).
func BenchmarkGeneratorChoice(b *testing.B) {
	o := benchOptions()
	o.Workloads = []string{"Web Search"}
	for i := 0; i < b.N; i++ {
		g, err := RunGeneratorStudy(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.Spread*100, "speedup-spread-%")
	}
}
