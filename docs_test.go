package shift

import (
	"go/ast"
	"go/parser"
	"go/token"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// This file is the documentation gate CI's docs job runs: every
// exported symbol in the public API surface must carry a doc comment
// stating its contract, and every relative link in the user-facing
// markdown must resolve. Both checks are pure stdlib (go/ast + a small
// link scanner), so the gate needs no external tooling.

// docLintDirs is the API surface under the doc-comment contract: the
// root package, the store subsystem it re-exports backends from, the
// async job subsystem behind shiftd's /v1/jobs API, the workload spec
// compiler behind LoadSpec, the shared request validator, the cluster
// coordinator behind shiftd's -peers/-worker roles, and the
// write-ahead log behind -state-dir durability.
var docLintDirs = []string{".", "internal/store", "internal/jobs", "internal/spec", "internal/validate", "internal/cluster", "internal/wal"}

// TestExportedSymbolsDocumented fails for every exported top-level
// symbol, method, struct field, or interface method without a doc
// comment.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range docLintDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDeclDocumented(t, fset, decl)
				}
			}
		}
	}
}

// checkDeclDocumented reports every undocumented exported symbol a
// top-level declaration introduces.
func checkDeclDocumented(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	undocumented := func(pos token.Pos, kind, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			undocumented(d.Pos(), "function", d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				// A doc comment may sit on the type or on a
				// single-spec declaration.
				if d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					undocumented(sp.Pos(), "type", sp.Name.Name)
				}
				checkFieldsDocumented(t, fset, sp)
			case *ast.ValueSpec:
				var exported []string
				for _, n := range sp.Names {
					if n.IsExported() {
						exported = append(exported, n.Name)
					}
				}
				if len(exported) == 0 {
					continue
				}
				// A group-level doc comment ("// The three core
				// types...") covers every name in the group.
				if d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					undocumented(sp.Pos(), "const/var", strings.Join(exported, ", "))
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types are not public API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver Foo[T]
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkFieldsDocumented reports undocumented exported struct fields and
// interface methods; a doc comment on a multi-name field covers every
// name.
func checkFieldsDocumented(t *testing.T, fset *token.FileSet, sp *ast.TypeSpec) {
	t.Helper()
	var fields *ast.FieldList
	switch tt := sp.Type.(type) {
	case *ast.StructType:
		fields = tt.Fields
	case *ast.InterfaceType:
		fields = tt.Methods
	default:
		return
	}
	for _, f := range fields.List {
		var exported []string
		for _, n := range f.Names {
			if n.IsExported() {
				exported = append(exported, n.Name)
			}
		}
		if len(exported) == 0 || f.Doc != nil || f.Comment != nil {
			continue
		}
		t.Errorf("%s: exported field/method %s.%s has no doc comment",
			fset.Position(f.Pos()), sp.Name.Name, strings.Join(exported, ", "))
	}
}

// markdownLink matches [text](target); targets are checked unless they
// are absolute URLs or intra-page anchors.
var markdownLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails for every relative link in the user-facing
// markdown (README, ARCHITECTURE, examples) whose target does not
// exist.
func TestMarkdownLinks(t *testing.T) {
	var docs []string
	for _, top := range []string{"README.md", "ARCHITECTURE.md"} {
		if _, err := os.Stat(top); err != nil {
			t.Errorf("missing %s", top)
			continue
		}
		docs = append(docs, top)
	}
	err := filepath.WalkDir("examples", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			docs = append(docs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, doc := range docs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if u, err := url.Parse(target); err == nil && u.Scheme != "" {
				continue // external URL; availability is not ours to gate
			}
			if strings.HasPrefix(target, "#") {
				continue // intra-page anchor
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", doc, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Log("no relative links found (nothing to check)")
	}
	// The README must document every binary under cmd/ — the "which
	// binary do I want" contract.
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && !strings.Contains(string(readme), e.Name()) {
			t.Errorf("README.md does not mention cmd/%s", e.Name())
		}
	}
}
