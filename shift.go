// Package shift is a from-scratch reproduction of "SHIFT: Shared History
// Instruction Fetch for Lean-Core Server Processors" (Kaynak, Grot,
// Falsafi; MICRO-46, 2013).
//
// The package exposes a public API over the full simulation stack in
// internal/: synthetic server workloads (Table I), a 16-core tiled CMP
// simulator (cores, L1-I caches, banked NUCA LLC, 2D mesh), the
// prefetcher design points of the paper's evaluation (next-line, PIF_2K,
// PIF_32K, ZeroLat-SHIFT, virtualized SHIFT), and one experiment driver
// per figure and table of the paper. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	res, err := shift.Run(shift.DefaultRunConfig("OLTP Oracle", shift.DesignSHIFT))
//	base, err := shift.Run(shift.DefaultRunConfig("OLTP Oracle", shift.DesignBaseline))
//	fmt.Printf("SHIFT speedup: %.2fx\n", res.Throughput/base.Throughput)
//
// or run a whole experiment:
//
//	fig8, err := shift.RunFigure8(shift.DefaultOptions())
//	fmt.Println(fig8)
//
// # Experiment engine
//
// Every experiment driver decomposes its figure into independent cells
// (workload × design × config variant) and submits them to an
// experiment engine that executes the grid across a bounded worker
// pool and merges results deterministically: results are keyed and
// ordered by cell, never by completion time, so a parallel run is
// bit-identical to a serial run for the same seed. Options.Parallelism
// bounds the pool (0 = GOMAXPROCS, 1 = serial) and Options.Cache
// attaches a ResultCache that memoizes cells content-addressed by
// Config hash, letting repeated sweeps — and figures that share cells,
// like the per-workload baselines — skip already-computed simulations:
//
//	o := shift.DefaultOptions()
//	o.Parallelism = 8                // 8 engine workers, same output
//	o.Cache = shift.NewResultCache() // reuse cells across figures
//	fig7, err := shift.RunFigure7(o)
//	fig8, err := shift.RunFigure8(o) // baselines served from cache
//
// Cells that consume the same trace stream (equal Config.StreamKeys —
// the different designs of one workload) are executed as a single
// batch: RunBatch generates the per-core record stream once and fans
// it out to every member, sharing the design-independent per-record
// work. Batching never changes results (each member sees exactly the
// record order of a standalone Run) and is on by default
// (Options.DisableBatching turns it off for diagnostics).
//
// # Sampled execution
//
// For sweeps where breadth matters more than per-cell exactness,
// Options.Sampling (or Config.Sampling, shiftsim -sample, shiftd's
// sample_period) switches a run to SMARTS-style interval sampling:
// one interval in Sampling.Period is simulated in detail and the rest
// are fast-forwarded with functional warming — caches, branch
// predictors, and prefetcher histories keep learning while timing
// stands still. Sampled results carry standard-error and confidence-
// interval fields (RunResult.MPKICI, ThroughputCI, ...), run ~5x
// faster on a long-window figure sweep, and are keyed separately from
// exact results in every store. Exact simulation remains the default;
// see ARCHITECTURE.md "Sampled execution" for the accuracy contract.
//
// Custom grids go through the engine directly:
//
//	e := shift.NewEngine(4, shift.NewResultCache())
//	results, err := e.RunAll(cells) // results[i] belongs to cells[i]
//
// cmd/shiftsim exposes the engine as -parallel and -cache flags.
//
// # Result stores and serving
//
// The engine's storage is pluggable (ResultStore): NewResultCache
// keeps results in memory, NewDiskStore persists one JSON blob per
// cell under a content-addressed directory (atomic writes; safe to
// share between processes), and NewTieredStore layers the two — so a
// sweep repeated across process restarts simulates nothing
// (cmd/shiftsim -cache-dir):
//
//	st, err := shift.NewTieredStore("~/.shiftcache")
//	o.Cache = st // every figure cell now survives this process
//
// The engine is safe for concurrent use and deduplicates identical
// in-flight cells across callers, which is what cmd/shiftd builds on:
// a long-running HTTP service holding one engine and one tiered store,
// serving single cells (POST /v1/run), grids (POST /v1/grid), and
// whole figures (GET /v1/figures/{n}) to many clients while paying for
// each unique simulation once. RunExperiment is the shared by-name
// dispatch behind both binaries, so served figures are byte-identical
// to CLI output. See ARCHITECTURE.md for the full tour.
package shift

import (
	"fmt"

	"shift/internal/core"
	"shift/internal/cpu"
	"shift/internal/noc"
	"shift/internal/pif"
	"shift/internal/sim"
	"shift/internal/tifs"
	"shift/internal/workload"
)

// CoreType selects a core microarchitecture (Table I / Section 2.3).
type CoreType int

const (
	// LeanOoO is the ARM Cortex-A15-class core used for the paper's main
	// results.
	LeanOoO CoreType = iota
	// FatOoO is the Xeon-class core.
	FatOoO
	// LeanIO is the ARM Cortex-A8-class in-order core.
	LeanIO
)

// String names the core type as in the paper.
func (t CoreType) String() string { return t.internal().String() }

func (t CoreType) internal() cpu.CoreType {
	switch t {
	case FatOoO:
		return cpu.FatOoO
	case LeanIO:
		return cpu.LeanIO
	default:
		return cpu.LeanOoO
	}
}

// AllCoreTypes returns the three evaluated core designs.
func AllCoreTypes() []CoreType { return []CoreType{FatOoO, LeanOoO, LeanIO} }

// Design is a prefetcher design point from the paper's evaluation.
type Design int

const (
	// DesignBaseline is the no-prefetch system.
	DesignBaseline Design = iota
	// DesignNextLine is the next-line prefetcher of Section 2.2.
	DesignNextLine
	// DesignPIF2K is per-core PIF with 2K records + 512 index entries
	// (equal aggregate storage to SHIFT).
	DesignPIF2K
	// DesignPIF32K is the original PIF design (32K records, 8K index).
	DesignPIF32K
	// DesignZeroLatSHIFT is SHIFT with dedicated zero-latency history
	// storage (the paper's ZeroLat-SHIFT).
	DesignZeroLatSHIFT
	// DesignSHIFT is the full virtualized SHIFT (history in the LLC).
	DesignSHIFT
	// DesignTIFS is the miss-stream predecessor of PIF (Ferdman et al.,
	// MICRO 2008) — an extension beyond the paper's evaluated set, for
	// studying the access-vs-miss-stream design choice of Section 2.2.
	DesignTIFS
)

var designNames = [...]string{"Baseline", "NextLine", "PIF_2K", "PIF_32K", "ZeroLat-SHIFT", "SHIFT", "TIFS"}

// String names the design point as in the paper's figures.
func (d Design) String() string {
	if int(d) < len(designNames) {
		return designNames[d]
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// FigureDesigns returns the comparison set of Figures 8 and 10.
func FigureDesigns() []Design {
	return []Design{DesignNextLine, DesignPIF2K, DesignPIF32K, DesignZeroLatSHIFT, DesignSHIFT}
}

// Workloads returns the names of the seven Table I server workloads.
func Workloads() []string { return workload.Names() }

// Config describes a single simulation run.
type Config struct {
	// Workload is one of Workloads().
	Workload string
	// Design is the prefetcher design point.
	Design Design
	// CoreType selects the core microarchitecture (default Lean-OoO).
	CoreType CoreType
	// Cores is the core count (default 16; must not exceed the 4x4 mesh).
	Cores int
	// HistEntries overrides the history-record capacity (0 = design
	// default: 32K for PIF_32K/SHIFT, 2K for PIF_2K). Used by the
	// Figure 6 sweep.
	HistEntries int
	// PredictionOnly runs the Section 5.2 trace-based methodology: no
	// prefetches are issued and coverage is tracked in the stream
	// address buffers only.
	PredictionOnly bool
	// CommonalityMode additionally starts replay on any uncovered access
	// (the Section 3 study); implies prediction-style accounting.
	CommonalityMode bool
	// ElimProb converts each instruction miss into a hit with this
	// probability (the Figure 1 methodology).
	ElimProb float64
	// WarmupRecords and MeasureRecords are per-core trace lengths
	// (defaults 60000/60000).
	WarmupRecords, MeasureRecords int64
	// Seed drives simulator-internal randomness.
	Seed int64
	// Sampling optionally runs the cell with interval sampling and
	// functional warming instead of exact simulation (see Sampling).
	// The zero value — the default everywhere — is exact simulation.
	Sampling Sampling
}

// Sampling configures SMARTS-style interval sampling for a run: instead
// of stepping the detailed model over every record of the measurement
// window, the simulator measures one short detailed interval out of
// every Period, fast-forwards between them with cheap functional
// warming (caches, branch predictors, and prefetcher histories keep
// learning; timing stands still), and reports each metric with a
// standard error and confidence interval computed from the
// per-interval samples. Exact simulation remains the default; sampled
// results are approximations with quantified error, never byte-
// comparable to exact ones.
type Sampling struct {
	// Period is the sampling period in intervals: one interval of every
	// Period is simulated in detail and measured. 0 or 1 disables
	// sampling (exact simulation).
	Period int64
	// IntervalRecords is the measured interval length in records per
	// core (default 500).
	IntervalRecords int64
	// WarmupFraction is the fraction of IntervalRecords re-simulated in
	// detail — but excluded from measurement — immediately before each
	// measured interval, re-warming the timing structures functional
	// fast-forwarding froze (default 0.25; must stay below 1).
	WarmupFraction float64
	// Confidence selects the confidence level of the reported error
	// bounds: 0.90, 0.95 (default), or 0.99.
	Confidence float64
}

// Enabled reports whether the policy actually samples (Period >= 2).
func (p Sampling) Enabled() bool { return p.Period > 1 }

// internal converts to the simulator's policy type.
func (p Sampling) internal() sim.Sampling {
	return sim.Sampling{
		Period:          p.Period,
		IntervalRecords: p.IntervalRecords,
		WarmupFraction:  p.WarmupFraction,
		Confidence:      p.Confidence,
	}
}

// DefaultRunConfig returns a 16-core Lean-OoO Table I configuration for
// the given workload and design.
func DefaultRunConfig(workloadName string, d Design) Config {
	return Config{
		Workload:       workloadName,
		Design:         d,
		CoreType:       LeanOoO,
		Cores:          16,
		WarmupRecords:  60000,
		MeasureRecords: 60000,
		Seed:           1,
	}
}

// shiftConfig builds the SHIFT configuration for a design point.
func shiftConfig(d Design, histEntries int, commonality bool) core.Config {
	sc := core.DefaultConfig()
	if d == DesignZeroLatSHIFT {
		sc.Variant = core.Dedicated
	}
	if histEntries > 0 {
		sc.HistEntries = histEntries
	}
	sc.AllocOnAccess = commonality
	return sc
}

// pifConfig builds the PIF configuration for a design point.
func pifConfig(d Design, histEntries int) pif.Config {
	var pc pif.Config
	if d == DesignPIF2K {
		pc = pif.Config2K()
	} else {
		pc = pif.Config32K()
	}
	if histEntries > 0 {
		pc = pif.WithHistEntries(histEntries)
	}
	return pc
}

// spec translates the public Config into an internal sim.RunSpec. The
// Workload field resolves either to a Table I catalog workload or — for
// "spec:" IDs — to a registered compiled spec, whose single/mix/source
// form maps onto the run spec's Workload/Groups/Source.
func (c Config) spec() (sim.RunSpec, error) {
	sc := sim.DefaultConfig()
	sc.CoreType = c.CoreType.internal()
	if c.Cores > 0 {
		sc.Cores = c.Cores
	}
	sc.Seed = c.Seed
	sc.ElimProb = c.ElimProb
	if c.PredictionOnly || c.CommonalityMode {
		sc.Mode = sim.ModePrediction
	}
	switch c.Design {
	case DesignBaseline:
		sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindNone}
	case DesignNextLine:
		sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindNextLine, NextLineDegree: 1}
	case DesignPIF2K, DesignPIF32K:
		sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindPIF, PIF: pifConfig(c.Design, c.HistEntries)}
	case DesignZeroLatSHIFT, DesignSHIFT:
		sc.Prefetcher = sim.PrefetcherSpec{
			Kind:  sim.KindSHIFT,
			SHIFT: shiftConfig(c.Design, c.HistEntries, c.CommonalityMode),
		}
	case DesignTIFS:
		tc := tifs.DefaultConfig()
		if c.HistEntries > 0 {
			tc.HistEntries = c.HistEntries
		}
		sc.Prefetcher = sim.PrefetcherSpec{Kind: sim.KindTIFS, TIFS: tc}
	default:
		return sim.RunSpec{}, fmt.Errorf("shift: unknown design %d", c.Design)
	}
	warm, meas := c.WarmupRecords, c.MeasureRecords
	if warm == 0 {
		warm = 60000
	}
	if meas == 0 {
		meas = 60000
	}
	rs := sim.RunSpec{
		Config:         sc,
		WarmupRecords:  warm,
		MeasureRecords: meas,
		Sampling:       c.Sampling.internal(),
	}
	if err := resolveWorkloadInto(c.Workload, &rs); err != nil {
		return sim.RunSpec{}, err
	}
	return rs, nil
}

// TrafficCounts breaks LLC/NoC traffic down by message class
// (message counts; Hops fields accumulate round-trip hop counts for the
// power model).
type TrafficCounts struct {
	// DemandInstr and DemandData are demand instruction and data
	// messages (the Figure 9 normalization base).
	DemandInstr, DemandData int64
	// PrefetchFill counts prefetched-block fills into the buffers.
	PrefetchFill int64
	// HistRead and HistWrite are shared-history log reads and writes.
	HistRead, HistWrite int64
	// IndexUpdate counts index writes (LLC tag array only).
	IndexUpdate int64
	// Discard counts prefetched blocks evicted before use.
	Discard int64
	// HistReadHops/HistWriteHops/IndexUpdateHops accumulate round-trip
	// mesh hop counts for the power model.
	HistReadHops, HistWriteHops, IndexUpdateHops int64
}

// Demand returns the demand traffic (instruction + data), the Figure 9
// normalization denominator.
func (t TrafficCounts) Demand() int64 { return t.DemandInstr + t.DemandData }

// RunResult summarizes one simulation run.
type RunResult struct {
	// Design and Workload identify the run.
	Design, Workload string
	// Cores is the simulated core count.
	Cores int
	// Instructions and Records are totals over the measurement window.
	Instructions, Records int64
	// MeanCoreCycles is the per-core average cycle count of the window.
	MeanCoreCycles int64
	// Throughput is the sum of per-core IPC (the paper's performance
	// metric: application instructions over cycles).
	Throughput float64
	// MPKI is effective L1-I misses per kilo-instruction.
	MPKI float64
	// FetchStallFraction is the share of cycles lost to exposed
	// instruction-fetch stalls.
	FetchStallFraction float64
	// BranchAccuracy is the hybrid predictor accuracy.
	BranchAccuracy float64
	// Accesses/Misses/CoveredByPrefetch/Discards are demand-fetch
	// outcomes (Misses are effective misses after the prefetch buffer).
	Accesses, Misses, CoveredByPrefetch, Discards int64
	// MissCoverage and AccessCoverage are the prediction-mode coverages
	// (Figures 6 and 3 respectively).
	MissCoverage, AccessCoverage float64
	// Traffic is the per-class traffic breakdown.
	Traffic TrafficCounts
	// HistRecordsWritten counts spatial region records appended to the
	// (shared or per-core) history.
	HistRecordsWritten int64

	// Sampled reports whether the run used interval sampling; when
	// true, every metric above aggregates the measured detailed
	// intervals only and the error-bound fields below are populated.
	Sampled bool
	// SampledIntervals is the number of measured detailed intervals.
	SampledIntervals int
	// SampleConfidence is the confidence level of the CI fields
	// (0.90, 0.95, or 0.99).
	SampleConfidence float64
	// MPKIStdErr and MPKICI are the standard error and the confidence-
	// interval half width of MPKI across the measured intervals.
	MPKIStdErr, MPKICI float64
	// ThroughputStdErr and ThroughputCI are the same bounds for
	// Throughput.
	ThroughputStdErr, ThroughputCI float64
}

func fromSim(r sim.Result, workloadName string) RunResult {
	out := RunResult{
		Design:             r.Label,
		Workload:           WorkloadDisplayName(workloadName),
		Cores:              r.Cores,
		Instructions:       r.Instructions,
		Records:            r.Records,
		Throughput:         r.Throughput,
		MPKI:               r.MPKI,
		FetchStallFraction: r.FetchStallFraction,
		BranchAccuracy:     r.BranchAccuracy,
		Accesses:           r.Fetch.Accesses,
		Misses:             r.Fetch.Misses,
		CoveredByPrefetch:  r.Fetch.PBHits,
		Discards:           r.Fetch.Discards,
		MissCoverage:       r.MissCoverage(),
		AccessCoverage:     r.AccessCoverage(),
		HistRecordsWritten: r.Pf.RecordsWritten,
	}
	var cycles int64
	for _, c := range r.PerCore {
		cycles += c.Cycles
	}
	if r.Cores > 0 {
		out.MeanCoreCycles = cycles / int64(r.Cores)
	}
	if st := r.Sampled; st != nil {
		out.Sampled = true
		out.SampledIntervals = st.Intervals
		out.SampleConfidence = st.Confidence
		out.MPKIStdErr = st.MPKI.StdErr
		out.MPKICI = st.MPKI.CIHalfWidth
		out.ThroughputStdErr = st.Throughput.StdErr
		out.ThroughputCI = st.Throughput.CIHalfWidth
	}
	out.Traffic = TrafficCounts{
		DemandInstr:     r.Traffic[noc.DemandInstr],
		DemandData:      r.Traffic[noc.DemandData],
		PrefetchFill:    r.Traffic[noc.PrefetchFill],
		HistRead:        r.Traffic[noc.HistRead],
		HistWrite:       r.Traffic[noc.HistWrite],
		IndexUpdate:     r.Traffic[noc.IndexUpdate],
		Discard:         r.Traffic[noc.Discard],
		HistReadHops:    r.Hops[noc.HistRead],
		HistWriteHops:   r.Hops[noc.HistWrite],
		IndexUpdateHops: r.Hops[noc.IndexUpdate],
	}
	return out
}

// Run executes one simulation.
func Run(cfg Config) (RunResult, error) {
	spec, err := cfg.spec()
	if err != nil {
		return RunResult{}, err
	}
	res, err := sim.Run(spec)
	if err != nil {
		return RunResult{}, err
	}
	return fromSim(res, cfg.Workload), nil
}
