package shift

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// engineTestOptions is a reduced Figure 7 scale: small enough for unit
// tests, large enough that every cell does real simulation work.
func engineTestOptions() Options {
	o := QuickOptions()
	o.Workloads = []string{"OLTP Oracle", "Web Search"}
	o.Cores = 4
	o.WarmupRecords = 6000
	o.MeasureRecords = 6000
	return o
}

// TestFigure7SerialParallelIdentical is the engine's key correctness
// property: running Figure 7's grid serially and with an 8-worker pool
// under the same seed must produce identical results structs — results
// are merged by cell, never by completion order.
func TestFigure7SerialParallelIdentical(t *testing.T) {
	serial := engineTestOptions()
	serial.Parallelism = 1
	parallel := engineTestOptions()
	parallel.Parallelism = 8

	fs, err := RunFigure7(serial)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := RunFigure7(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, fp) {
		t.Errorf("parallel Figure 7 differs from serial:\nserial:   %+v\nparallel: %+v", fs, fp)
	}
}

// TestEngineRunAllOrdersAndDedupes checks that RunAll returns results
// in cell order and simulates duplicate configurations only once.
func TestEngineRunAllOrdersAndDedupes(t *testing.T) {
	o := engineTestOptions()
	cfgA := o.config("Web Search", DesignBaseline)
	cfgB := o.config("Web Search", DesignNextLine)
	cache := NewResultCache()
	e := NewEngine(4, cache)
	res, err := e.RunAll([]Cell{cell(cfgA), cell(cfgB), cell(cfgA)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if !reflect.DeepEqual(res[0], res[2]) {
		t.Error("duplicate cells returned different results")
	}
	if res[0].Design != DesignBaseline.String() || res[1].Design != DesignNextLine.String() {
		t.Errorf("results out of cell order: %s, %s", res[0].Design, res[1].Design)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d cells, want 2 (duplicate simulated once)", cache.Len())
	}
}

// TestEngineCacheSkipsRecomputation checks the memoization path: with a
// shared cache, re-running the same grid performs no new simulations
// and returns identical results.
func TestEngineCacheSkipsRecomputation(t *testing.T) {
	o := engineTestOptions()
	o.Workloads = []string{"Web Search"}
	o.Cache = NewResultCache()
	first, err := RunFigure9(o)
	if err != nil {
		t.Fatal(err)
	}
	entries := o.Cache.Len()
	if entries == 0 {
		t.Fatal("cache is empty after a cached run")
	}
	second, err := RunFigure9(o)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cache.Len() != entries {
		t.Errorf("second run grew the cache: %d -> %d", entries, o.Cache.Len())
	}
	hits, _ := o.Cache.Stats()
	if hits == 0 {
		t.Error("second run recorded no cache hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached rerun differs from the original")
	}
	// The cache also serves other experiments sharing cells: Figure 7
	// reuses Figure 9's baseline.
	if _, err := RunFigure7(o); err != nil {
		t.Fatal(err)
	}
	if h, _ := o.Cache.Stats(); h <= hits {
		t.Error("Figure 7 did not reuse the shared baseline cell")
	}
}

// TestConfigKey pins down content addressing: identical configs share a
// key, any field change produces a new one.
func TestConfigKey(t *testing.T) {
	base := DefaultRunConfig("Web Search", DesignSHIFT)
	if base.Key() != DefaultRunConfig("Web Search", DesignSHIFT).Key() {
		t.Error("identical configs got different keys")
	}
	seen := map[string]string{base.Key(): "base"}
	mutations := map[string]Config{}
	for name, mut := range map[string]func(*Config){
		"workload":    func(c *Config) { c.Workload = "OLTP Oracle" },
		"design":      func(c *Config) { c.Design = DesignPIF32K },
		"core type":   func(c *Config) { c.CoreType = LeanIO },
		"cores":       func(c *Config) { c.Cores = 8 },
		"hist":        func(c *Config) { c.HistEntries = 2048 },
		"prediction":  func(c *Config) { c.PredictionOnly = true },
		"commonality": func(c *Config) { c.CommonalityMode = true },
		"elim":        func(c *Config) { c.ElimProb = 0.5 },
		"warmup":      func(c *Config) { c.WarmupRecords = 1000 },
		"measure":     func(c *Config) { c.MeasureRecords = 1000 },
		"seed":        func(c *Config) { c.Seed = 2 },
	} {
		c := base
		mut(&c)
		mutations[name] = c
	}
	for name, c := range mutations {
		k := c.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestEngineErrorDeterminism checks that a failing cell surfaces the
// same error regardless of parallelism, annotated with its cell label.
func TestEngineErrorDeterminism(t *testing.T) {
	o := engineTestOptions()
	bad := o.config("No Such Workload", DesignSHIFT)
	cells := []Cell{
		cell(o.config("Web Search", DesignBaseline)),
		cell(bad),
		cell(o.config("Web Search", DesignNextLine)),
	}
	serialErr := func() error {
		_, err := NewEngine(1, nil).RunAll(cells)
		return err
	}()
	parallelErr := func() error {
		_, err := NewEngine(8, nil).RunAll(cells)
		return err
	}()
	if serialErr == nil || parallelErr == nil {
		t.Fatal("bad workload accepted")
	}
	if serialErr.Error() != parallelErr.Error() {
		t.Errorf("error differs by parallelism:\nserial:   %v\nparallel: %v", serialErr, parallelErr)
	}
}

// TestFigure7ParallelSpeedup measures the acceptance property on
// multi-core hosts: the Figure 7 sweep at Parallelism 4 must beat the
// serial sweep by >= 2x wall-clock while producing identical output.
// The engine schedules whole stream-sharing batches (one per workload)
// on the pool, so the grid spans four workloads to expose four units
// of parallel work. The simulator is CPU-bound, so the property is
// only observable with enough hardware parallelism; single- and
// dual-core hosts skip.
func TestFigure7ParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement is not short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a 2x wall-clock bound, have %d", runtime.NumCPU())
	}
	serial := engineTestOptions()
	serial.Workloads = []string{"OLTP Oracle", "Web Search", "DSS Qry 2", "Media Streaming"}
	serial.Parallelism = 1
	parallel := serial
	parallel.Parallelism = 4

	t0 := time.Now()
	fs, err := RunFigure7(serial)
	if err != nil {
		t.Fatal(err)
	}
	serialDur := time.Since(t0)
	t0 = time.Now()
	fp, err := RunFigure7(parallel)
	if err != nil {
		t.Fatal(err)
	}
	parallelDur := time.Since(t0)

	if !reflect.DeepEqual(fs, fp) {
		t.Error("parallel output differs from serial")
	}
	speedup := float64(serialDur) / float64(parallelDur)
	t.Logf("serial %v, parallel(4) %v, speedup %.2fx", serialDur, parallelDur, speedup)
	if speedup < 2.0 {
		t.Errorf("parallel speedup %.2fx < 2x (serial %v, parallel %v)", speedup, serialDur, parallelDur)
	}
}
