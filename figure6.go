package shift

import (
	"fmt"
	"strings"

	"shift/internal/stats"
)

// Figure6 reproduces the paper's Figure 6: percentage of instruction
// misses correctly predicted as a function of *aggregate* history size,
// for SHIFT (one shared history of the given size) versus PIF (the
// aggregate split evenly across the cores' private histories). The study
// uses prediction-only simulation (no cache perturbation) and averages
// coverage across workloads. The paper shows SHIFT strictly above PIF at
// every size, with diminishing returns past 32K records.
type Figure6 struct {
	// Sizes are aggregate history capacities in spatial region records.
	Sizes []int
	// SHIFT[i] and PIF[i] are mean miss-coverage percentages at Sizes[i].
	SHIFT, PIF []float64
	// Workloads are the workloads averaged into each point.
	Workloads []string
}

// DefaultFigure6Sizes mirrors the paper's x-axis (1K..512K). The largest
// points need long warmup to fill; RunFigure6 scales warmup accordingly.
func DefaultFigure6Sizes() []int {
	return []int{1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288}
}

// RunFigure6 regenerates Figure 6 over the given aggregate sizes
// (DefaultFigure6Sizes if nil).
func RunFigure6(o Options, sizes []int) (*Figure6, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = DefaultFigure6Sizes()
	}
	// Grid: per (aggregate size, workload), a SHIFT cell with the full
	// aggregate capacity and a PIF cell with the aggregate divided
	// across private per-core histories.
	var cells []Cell
	for _, aggregate := range sizes {
		for _, w := range o.Workloads {
			cfg := o.config(w, DesignZeroLatSHIFT)
			cfg.PredictionOnly = true
			cfg.HistEntries = aggregate
			cells = append(cells, cell(cfg, "agg="+fmtSize(aggregate)))

			perCore := aggregate / o.Cores
			if perCore < 16 {
				perCore = 16
			}
			cfg = o.config(w, DesignPIF32K)
			cfg.PredictionOnly = true
			cfg.HistEntries = perCore
			cells = append(cells, cell(cfg, "agg="+fmtSize(aggregate)))
		}
	}
	results, err := o.engine().RunAll(cells)
	if err != nil {
		return nil, err
	}

	fig := &Figure6{Sizes: sizes, Workloads: displayNames(o.Workloads)}
	i := 0
	for range sizes {
		var shiftCov, pifCov []float64
		for range o.Workloads {
			shiftCov = append(shiftCov, results[i].MissCoverage*100)
			pifCov = append(pifCov, results[i+1].MissCoverage*100)
			i += 2
		}
		fig.SHIFT = append(fig.SHIFT, stats.Mean(shiftCov))
		fig.PIF = append(fig.PIF, stats.Mean(pifCov))
	}
	return fig, nil
}

// SHIFTAlwaysAbovePIF reports whether SHIFT's curve dominates PIF's, the
// paper's qualitative claim.
func (f *Figure6) SHIFTAlwaysAbovePIF() bool {
	for i := range f.Sizes {
		if f.SHIFT[i] < f.PIF[i] {
			return false
		}
	}
	return true
}

// String renders the two coverage curves.
func (f *Figure6) String() string {
	t := stats.NewTable("Aggregate history (records)", "SHIFT coverage (%)", "PIF coverage (%)")
	for i, s := range f.Sizes {
		t.AddRow(fmtSize(s), fmt.Sprintf("%.1f", f.SHIFT[i]), fmt.Sprintf("%.1f", f.PIF[i]))
	}
	var b strings.Builder
	b.WriteString("Figure 6: Percentage of instruction misses predicted vs aggregate history size\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "SHIFT above PIF at every size: %v (paper: yes)\n", f.SHIFTAlwaysAbovePIF())
	return b.String()
}

func fmtSize(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%d", n)
}
