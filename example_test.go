package shift_test

import (
	"fmt"

	"shift"
)

// The seven Table I server workloads are addressed by name.
func ExampleWorkloads() {
	for _, w := range shift.Workloads() {
		fmt.Println(w)
	}
	// Output:
	// OLTP DB2
	// OLTP Oracle
	// DSS Qry 2
	// DSS Qry 17
	// Media Streaming
	// Web Frontend
	// Web Search
}

// Design points carry the labels used in the paper's figures.
func ExampleDesign_String() {
	for _, d := range shift.FigureDesigns() {
		fmt.Println(d)
	}
	// Output:
	// NextLine
	// PIF_2K
	// PIF_32K
	// ZeroLat-SHIFT
	// SHIFT
}

// Core types match the paper's three evaluated microarchitectures.
func ExampleAllCoreTypes() {
	for _, t := range shift.AllCoreTypes() {
		fmt.Println(t)
	}
	// Output:
	// Fat-OoO
	// Lean-OoO
	// Lean-IO
}

// The storage report reproduces the paper's cost arithmetic without any
// simulation.
func ExampleRunStorageReport_headline() {
	r := shift.RunStorageReport()
	fmt.Printf("PIF per core: %.0f KB (%.2f mm^2)\n", r.PIF32KPerCoreKB, r.PIF32KPerCoreMM2)
	fmt.Printf("SHIFT total:  %.2f mm^2 (%.0fx cheaper)\n", r.SHIFTTotalMM2, r.AreaRatio)
	// Output:
	// PIF per core: 213 KB (0.90 mm^2)
	// SHIFT total:  0.96 mm^2 (15x cheaper)
}

// A minimal end-to-end run: measure SHIFT against the baseline on a
// scaled-down system (8 cores, short windows) so the example stays fast.
func ExampleRun() {
	cfg := shift.DefaultRunConfig("Web Search", shift.DesignSHIFT)
	cfg.Cores = 8
	cfg.WarmupRecords, cfg.MeasureRecords = 12000, 12000
	res, err := shift.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	base := cfg
	base.Design = shift.DesignBaseline
	ref, err := shift.Run(base)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("SHIFT faster than baseline: %v\n", res.Throughput > ref.Throughput)
	fmt.Printf("history traffic observed:   %v\n", res.Traffic.HistRead > 0)
	// Output:
	// SHIFT faster than baseline: true
	// history traffic observed:   true
}
