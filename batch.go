package shift

import (
	"fmt"

	"shift/internal/sim"
)

// RunBatch executes several configurations that share one trace stream
// (equal StreamKeys — same workload, core count, and warmup/measure
// window) in a single pass: the per-core record streams are generated
// once and fanned out to every member's system in lockstep, and the
// design-independent per-record work (trace generation, branch
// prediction) is paid once per record instead of once per member per
// record. Each member observes exactly the per-core record order of a
// standalone Run, so out[i] is bit-identical to Run(cfgs[i]).
//
// Configurations whose StreamKeys differ are rejected. The experiment
// engine calls this automatically for grid cells sharing a stream;
// call it directly when running a hand-built design comparison.
func RunBatch(cfgs []Config) ([]RunResult, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	specs := make([]sim.RunSpec, len(cfgs))
	for i := range cfgs {
		spec, err := cfgs[i].spec()
		if err != nil {
			return nil, fmt.Errorf("shift: batch config %d: %w", i, err)
		}
		specs[i] = spec
	}
	rs, err := sim.RunBatch(specs)
	if err != nil {
		return nil, err
	}
	out := make([]RunResult, len(rs))
	for i := range rs {
		out[i] = fromSim(rs[i], cfgs[i].Workload)
	}
	return out, nil
}
