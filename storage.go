package shift

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"shift/internal/area"
	"shift/internal/core"
	"shift/internal/stats"
)

// This file holds the analytical storage-cost report of the paper's
// Sections 4.2/5.1/5.6/6.2 (StorageReport, below), plus the
// content-address scheme (Config.Key) and in-memory backend
// (ResultCache) of the engine's result storage. The ResultStore
// interface and its persistent backends (DiskStore, TieredStore) live
// in store.go; Engine.RunAll in engine.go consumes them.

// Key returns a stable content hash of the configuration. Two Configs
// share a key iff they describe the same simulation, so the key
// content-addresses memoized results: a cached RunResult under this key
// is bit-identical to re-running the cell (the simulator is a pure
// function of its Config).
//
// A sampled cell appends its whole sampling policy — normalized, so a
// policy written with defaulted fields and one spelling them out hash
// identically — to the hashed identity; sampled and exact results, and
// sampled results under genuinely different policies, can therefore
// never collide in any ResultStore backend, while exact cells keep
// their historical ("v1") keys and existing disk stores stay valid.
func (c Config) Key() string {
	id := fmt.Sprintf("v1|%q|%d|%d|%d|%d|%t|%t|%g|%d|%d|%d",
		c.Workload, c.Design, c.CoreType, c.Cores, c.HistEntries,
		c.PredictionOnly, c.CommonalityMode, c.ElimProb,
		c.WarmupRecords, c.MeasureRecords, c.Seed)
	if p := c.Sampling.internal().Normalized(); p.Enabled() {
		id += fmt.Sprintf("|sampled|%d|%d|%g|%g",
			p.Period, p.IntervalRecords, p.WarmupFraction, p.Confidence)
	}
	h := sha256.Sum256([]byte(id))
	return hex.EncodeToString(h[:16])
}

// StreamKey returns a stable content hash of the configuration's trace
// -stream inputs — the workload, the core count, and the warmup/measure
// window lengths — plus the sampling policy, which fixes the lockstep
// schedule every batch member must share. Everything else — design
// point, seed, core type, history sizes, simulation mode, miss
// elimination — only changes how records are consumed, never which
// records are generated or on what schedule, so two Configs with equal
// StreamKeys read bit-identical per-core record streams in lockstep.
// The engine uses this key to partition a grid into batches that
// RunBatch executes off a single generated stream; sampled and exact
// cells of one workload therefore batch separately (their stepping
// schedules are incompatible) while each group still shares its stream
// internally.
func (c Config) StreamKey() string {
	cores := c.Cores
	if cores == 0 {
		cores = 16
	}
	warm, meas := c.WarmupRecords, c.MeasureRecords
	if warm == 0 {
		warm = 60000
	}
	if meas == 0 {
		meas = 60000
	}
	id := fmt.Sprintf("s1|%q|%d|%d|%d", c.Workload, cores, warm, meas)
	if p := c.Sampling.internal().Normalized(); p.Enabled() {
		// Confidence is deliberately absent: it shapes only how the
		// error bounds are reported, never the lockstep schedule, so
		// cells differing only in confidence still batch together.
		id += fmt.Sprintf("|sampled|%d|%d|%g",
			p.Period, p.IntervalRecords, p.WarmupFraction)
	}
	h := sha256.Sum256([]byte(id))
	return hex.EncodeToString(h[:16])
}

// ResultCache is the in-memory ResultStore: a mutex-guarded map of
// memoized simulation results content-addressed by Config key, so
// repeated sweeps skip already-computed cells. It is safe for
// concurrent use by the engine's workers; a nil *ResultCache is a valid
// no-op store (every Lookup misses, Store discards). Contents die with
// the process — use DiskStore or TieredStore to persist across runs.
type ResultCache struct {
	mu           sync.Mutex
	m            map[string]RunResult
	hits, misses int64
}

// NewResultCache returns an empty cache. Share one cache across
// experiment runs (Options.Cache) to reuse cells between figures — most
// figures re-run the same per-workload baselines.
func NewResultCache() *ResultCache {
	return &ResultCache{m: make(map[string]RunResult)}
}

// Lookup returns the memoized result for key, if any, and counts the
// outcome toward Stats.
func (c *ResultCache) Lookup(key string) (RunResult, bool) {
	if c == nil {
		return RunResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

// Store memoizes a result under key, replacing any previous entry.
func (c *ResultCache) Store(key string, r RunResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
}

// Len returns the number of memoized cells.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the lookup hit/miss counts since creation.
func (c *ResultCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// StorageReport reproduces the storage-cost arithmetic of Sections 4.2,
// 5.1, 5.6, and 6.2 — the numbers behind the paper's "14x less storage
// cost" headline. It is purely analytical (no simulation).
type StorageReport struct {
	// PIF32KPerCoreKB is PIF's per-core history+index storage (213KB).
	PIF32KPerCoreKB float64
	// PIF32KPerCoreMM2 is its area (0.9mm²).
	PIF32KPerCoreMM2 float64
	// PIF32KAggregateMM2 is the 16-core total (14.4mm²).
	PIF32KAggregateMM2 float64
	// PIF2KPerCoreKB is the equal-cost design's per-core storage.
	PIF2KPerCoreKB float64
	// SHIFTHistoryKB is the LLC capacity the shared history occupies
	// (171KB; 2,731 lines).
	SHIFTHistoryKB float64
	// SHIFTHistoryLines is that capacity in 64-byte LLC lines.
	SHIFTHistoryLines int
	// SHIFTIndexKB is the LLC tag-array extension (240KB).
	SHIFTIndexKB float64
	// SHIFTTotalMM2 is SHIFT's total area cost (0.96mm²).
	SHIFTTotalMM2 float64
	// AreaRatio is PIF32KAggregateMM2 / SHIFTTotalMM2 (~14x).
	AreaRatio float64
	// VirtualizedPIFMB is the LLC capacity a virtualized per-core PIF
	// would need (Section 6.2: 2.7MB, growing linearly with cores).
	VirtualizedPIFMB float64
	// Cores is the CMP size used for aggregates.
	Cores int
}

// RunStorageReport computes the storage report for a 16-core Table I CMP.
func RunStorageReport() *StorageReport {
	const cores = 16
	shiftCfg := core.DefaultConfig()
	r := &StorageReport{
		PIF32KPerCoreKB:   float64(area.PIFStorageBytes(32768, 8192)) / 1024,
		PIF32KPerCoreMM2:  area.PIFAreaPerCoreMM2(32768, 8192),
		PIF2KPerCoreKB:    float64(area.PIFStorageBytes(2048, 512)) / 1024,
		SHIFTHistoryKB:    float64(shiftCfg.HistoryFootprintBytes()) / 1024,
		SHIFTHistoryLines: shiftCfg.HistoryBlocks(),
		SHIFTIndexKB:      float64(area.SHIFTIndexBytes(llcBytesTotal)) / 1024,
		SHIFTTotalMM2:     area.SHIFTTotalAreaMM2(llcBytesTotal),
		VirtualizedPIFMB:  float64(area.VirtualizedPIFLLCBytes(32768, cores)) / (1024 * 1024),
		Cores:             cores,
	}
	r.PIF32KAggregateMM2 = r.PIF32KPerCoreMM2 * cores
	if r.SHIFTTotalMM2 > 0 {
		r.AreaRatio = r.PIF32KAggregateMM2 / r.SHIFTTotalMM2
	}
	return r
}

// String renders the storage table.
func (r *StorageReport) String() string {
	t := stats.NewTable("Quantity", "Value", "Paper")
	t.AddRow("PIF_32K per-core storage", fmt.Sprintf("%.0f KB", r.PIF32KPerCoreKB), "213 KB")
	t.AddRow("PIF_32K per-core area", fmt.Sprintf("%.2f mm^2", r.PIF32KPerCoreMM2), "0.9 mm^2")
	t.AddRow(fmt.Sprintf("PIF_32K aggregate (%d cores)", r.Cores), fmt.Sprintf("%.1f mm^2", r.PIF32KAggregateMM2), "14.4 mm^2")
	t.AddRow("PIF_2K per-core storage", fmt.Sprintf("%.1f KB", r.PIF2KPerCoreKB), "~13 KB")
	t.AddRow("SHIFT history in LLC", fmt.Sprintf("%.0f KB (%d lines)", r.SHIFTHistoryKB, r.SHIFTHistoryLines), "171 KB (2,731 lines)")
	t.AddRow("SHIFT index in LLC tags", fmt.Sprintf("%.0f KB", r.SHIFTIndexKB), "240 KB")
	t.AddRow("SHIFT total area", fmt.Sprintf("%.2f mm^2", r.SHIFTTotalMM2), "0.96 mm^2")
	t.AddRow("PIF_32K/SHIFT area ratio", fmt.Sprintf("%.1fx", r.AreaRatio), "~14x")
	t.AddRow("Virtualized per-core PIF (Sec 6.2)", fmt.Sprintf("%.1f MB of LLC", r.VirtualizedPIFMB), "2.7 MB")
	var b strings.Builder
	b.WriteString("Storage and area budget (Sections 4.2, 5.1, 5.6, 6.2)\n")
	b.WriteString(t.String())
	return b.String()
}
